package photon_test

import (
	"fmt"

	"photon"
)

// ExampleTableI reproduces the paper's Table I component budgets.
func ExampleTableI() {
	for _, r := range photon.TableI(photon.DefaultShape()) {
		fmt.Printf("%-10s %d data WG, %dK rings\n", r.Scheme, r.DataWaveguides, r.MicroRings/1024)
	}
	// Output:
	// Token Slot 256 data WG, 1024K rings
	// GHS        256 data WG, 1028K rings
	// DHS        256 data WG, 1028K rings
	// DHS-cir    256 data WG, 1040K rings
}

// ExampleNewNetwork runs a short tornado-traffic simulation; results are
// deterministic for a fixed seed.
func ExampleNewNetwork() {
	cfg := photon.DefaultConfig(photon.DHSSetaside)
	net, err := photon.NewNetwork(cfg, photon.Window{Warmup: 200, Measure: 1000, Drain: 800})
	if err != nil {
		panic(err)
	}
	inj, err := photon.NewInjector(photon.Tornado{}, 0.03, cfg.Nodes, cfg.CoresPerNode, 42)
	if err != nil {
		panic(err)
	}
	res := inj.Run(net)
	fmt.Printf("tornado @0.03: latency %.1f cycles, throughput %.3f\n", res.AvgLatency, res.Throughput)
	// Output:
	// tornado @0.03: latency 8.1 cycles, throughput 0.030
}

// ExampleAppModel_Synthesize generates a deterministic application trace.
func ExampleAppModel_Synthesize() {
	app, err := photon.AppByName("fft")
	if err != nil {
		panic(err)
	}
	tr := app.Synthesize(256, 64, 2000, 7)
	fmt.Printf("fft trace: %d records, rate %.4f\n", len(tr.Records), tr.Rate())
	// Output:
	// fft trace: 2648 records, rate 0.0052
}
