// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus engine micro-benchmarks and the ablation benches called
// out in DESIGN.md.
//
// Figure benchmarks execute the corresponding experiment at reduced (quick)
// fidelity once per iteration and report the figure's headline quantity as
// a custom metric, so `go test -bench=. -benchmem` regenerates the whole
// evaluation and EXPERIMENTS.md can quote the metrics. Full-fidelity tables
// come from the cmd/ binaries.
package photon_test

import (
	"testing"

	"photon"
	"photon/internal/core"
	"photon/internal/exp"
	"photon/internal/sim"
	"photon/internal/traffic"
)

func quickOpts() exp.Options { return exp.QuickOptions() }

// BenchmarkFig2b — Token Slot latency vs load by credit count (Fig 2b).
// Metric: saturation throughput with 4 vs 32 credits.
func BenchmarkFig2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, _, err := exp.Fig2b(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(curves[0].SaturationThroughput(), "sat4_pkt/cyc/core")
		b.ReportMetric(curves[3].SaturationThroughput(), "sat32_pkt/cyc/core")
	}
}

func benchFig8or9(b *testing.B, fig func(string, exp.Options) ([]exp.Curve, interface{ String() string }, error), pattern string, base, best core.Scheme) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		curves, _, err := fig(pattern, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var baseSat, bestSat float64
		for _, c := range curves {
			if c.Scheme == base {
				baseSat = c.SaturationThroughput()
			}
			if c.Scheme == best {
				bestSat = c.SaturationThroughput()
			}
		}
		b.ReportMetric(baseSat, "baseline_sat")
		b.ReportMetric(bestSat, "handshake_sat")
		if baseSat > 0 {
			b.ReportMetric(100*(bestSat-baseSat)/baseSat, "gain_%")
		}
	}
}

func fig8Adapter(p string, o exp.Options) ([]exp.Curve, interface{ String() string }, error) {
	c, t, err := exp.Fig8(p, o)
	return c, t, err
}

func fig9Adapter(p string, o exp.Options) ([]exp.Curve, interface{ String() string }, error) {
	c, t, err := exp.Fig9(p, o)
	return c, t, err
}

// BenchmarkFig8 — global-arbitration group (Token Channel vs GHS variants),
// one sub-benchmark per traffic pattern (Fig 8a-c).
func BenchmarkFig8(b *testing.B) {
	for _, pat := range []string{"UR", "BC", "TOR"} {
		b.Run(pat, func(b *testing.B) {
			benchFig8or9(b, fig8Adapter, pat, core.TokenChannel, core.GHSSetaside)
		})
	}
}

// BenchmarkFig9 — distributed-arbitration group (Token Slot vs DHS
// variants), one sub-benchmark per traffic pattern (Fig 9a-c).
func BenchmarkFig9(b *testing.B) {
	for _, pat := range []string{"UR", "BC", "TOR"} {
		b.Run(pat, func(b *testing.B) {
			benchFig8or9(b, fig9Adapter, pat, core.TokenSlot, core.DHSCirculation)
		})
	}
}

// BenchmarkFig10 — application-trace latency (Fig 10a/10b). Metrics: the
// average latency reduction of the enhanced handshake schemes over their
// baselines across the 13 benchmarks.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		global, distributed, _, _, err := exp.Fig10(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		avgG, maxG := exp.LatencyReduction(global, core.TokenChannel, core.GHSSetaside)
		avgD, _ := exp.LatencyReduction(distributed, core.TokenSlot, core.DHSSetaside)
		b.ReportMetric(avgG, "ghs_avg_red_%")
		b.ReportMetric(maxG, "ghs_max_red_%")
		b.ReportMetric(avgD, "dhs_avg_red_%")
	}
}

// BenchmarkIPC — the closed-loop CMP study of §V-B. Metrics: mean IPC gain
// of each handshake scheme over its baseline.
func BenchmarkIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.IPCStudy(core.TokenChannel, core.GHSSetaside, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exp.MeanIPCGain(rows), "ghs_ipc_gain_%")
		rows, _, err = exp.IPCStudy(core.TokenSlot, core.DHSSetaside, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exp.MeanIPCGain(rows), "dhs_ipc_gain_%")
	}
}

// BenchmarkFig11 — credit-count sensitivity of the handshake schemes
// (Fig 11a-e). Metric: worst-case latency ratio between 4 and 32 credits
// at sub-saturation loads (1.0 = perfectly credit-independent).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		worst := 1.0
		for _, s := range []core.Scheme{core.GHSSetaside, core.DHSSetaside, core.DHSCirculation} {
			curves, _, err := exp.Fig11(s, quickOpts())
			if err != nil {
				b.Fatal(err)
			}
			for j := range curves[0].Loads {
				l4, l32 := curves[0].Latency[j], curves[3].Latency[j]
				if l32 > 0 && l32 < 50 {
					if r := l4 / l32; r > worst {
						worst = r
					}
				}
			}
		}
		b.ReportMetric(worst, "worst_credit_ratio")
	}
}

// BenchmarkFig11f — setaside size study (Fig 11f). Metric: latency with 1
// vs 16 setaside slots at UR 0.11.
func BenchmarkFig11f(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.Fig11f(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == core.DHSSetaside && r.Setaside == 1 {
				b.ReportMetric(r.Latency, "dhs_set1_lat")
			}
			if r.Scheme == core.DHSSetaside && r.Setaside == 16 {
				b.ReportMetric(r.Latency, "dhs_set16_lat")
			}
		}
	}
}

// BenchmarkFig12a — power breakdown per scheme (Fig 12a). Metrics: total
// power of Token Channel (the most expensive) and Token Slot (the
// cheapest full-throughput scheme).
func BenchmarkFig12a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, _, err := exp.Fig12(0.11, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Scheme {
			case core.TokenChannel:
				b.ReportMetric(r.Breakdown.TotalW(), "tokenchannel_W")
			case core.TokenSlot:
				b.ReportMetric(r.Breakdown.TotalW(), "tokenslot_W")
			}
		}
	}
}

// BenchmarkFig12b — energy per packet per scheme (Fig 12b).
func BenchmarkFig12b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, _, err := exp.Fig12(0.11, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Scheme {
			case core.TokenChannel:
				b.ReportMetric(r.EnergyPerPktNJ, "tokenchannel_nJ")
			case core.DHSCirculation:
				b.ReportMetric(r.EnergyPerPktNJ, "dhscir_nJ")
			}
		}
	}
}

// BenchmarkTable1 — the optical component budget (Table I). Metric: GHS's
// micro-ring overhead over Token Slot in percent (the paper's 0.4%).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := exp.Table1()
		b.ReportMetric(100*rows[1].Overhead(rows[0]), "ghs_ring_overhead_%")
		b.ReportMetric(float64(rows[0].MicroRings)/1024, "tokenslot_rings_K")
	}
}

// BenchmarkNetworkStep measures the simulator engine itself: nanoseconds
// per simulated cycle of the full 64-node network under UR load, per
// scheme.
func BenchmarkNetworkStep(b *testing.B) {
	for _, s := range photon.Schemes() {
		b.Run(s.String(), func(b *testing.B) {
			cfg := photon.DefaultConfig(s)
			cfg.CheckInvariants = false
			net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 40, Drain: 0})
			if err != nil {
				b.Fatal(err)
			}
			inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.09, cfg.Nodes, cfg.CoresPerNode, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inj.Tick(net)
				net.Step()
			}
		})
	}
}

// BenchmarkInvariantOverhead quantifies the cost of per-cycle invariant
// checking (on by default in tests, off in production sweeps).
func BenchmarkInvariantOverhead(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := photon.DefaultConfig(photon.TokenSlot)
			cfg.CheckInvariants = on
			net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 40, Drain: 0})
			if err != nil {
				b.Fatal(err)
			}
			inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.09, cfg.Nodes, cfg.CoresPerNode, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inj.Tick(net)
				net.Step()
			}
		})
	}
}

// BenchmarkScalingRoundTrip is the DESIGN.md ring-size ablation: latency of
// the credit baseline vs the handshake scheme at fixed 8-deep buffers as
// the loop's round trip grows — the paper's large-scale feasibility
// argument. Metric: latency in cycles at UR 0.09.
func BenchmarkScalingRoundTrip(b *testing.B) {
	for _, rt := range []int{8, 16, 32} {
		for _, s := range []photon.Scheme{photon.TokenSlot, photon.DHSSetaside} {
			b.Run(s.String()+"/R"+itoa(rt), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := exp.RunPoint(exp.Point{
						Scheme:  s,
						Pattern: traffic.UniformRandom{},
						Rate:    0.09,
						Mod:     func(c *core.Config) { c.RoundTrip = rt },
					}, quickOpts())
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.AvgLatency, "latency_cycles")
				}
			})
		}
	}
}

// BenchmarkAblationFairness measures the throughput cost of the well-served
// sit-out policy at a saturating load.
func BenchmarkAblationFairness(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := exp.RunPoint(exp.Point{
					Scheme:  photon.DHSSetaside,
					Pattern: traffic.UniformRandom{},
					Rate:    0.23,
					Mod:     func(c *core.Config) { c.Fairness.Enabled = on },
				}, quickOpts())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Throughput, "sat_throughput")
				b.ReportMetric(res.FairnessSpread, "spread")
			}
		})
	}
}

// BenchmarkAblationEjectRate exposes the hidden receiver-drain parameter
// behind credit return: Token Slot's saturation vs the home buffer's drain
// rate.
func BenchmarkAblationEjectRate(b *testing.B) {
	for _, rate := range []int{1, 2, 4} {
		b.Run("eject"+itoa(rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := exp.RunPoint(exp.Point{
					Scheme:  photon.TokenSlot,
					Pattern: traffic.UniformRandom{},
					Rate:    0.21,
					Mod:     func(c *core.Config) { c.EjectRate = rate },
				}, quickOpts())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Throughput, "throughput")
			}
		})
	}
}

// BenchmarkSWMR runs the SWMR extension study (reservation vs handshake on
// a sender-owned-channel ring). Metrics: latency of each discipline at the
// swept low-load point.
func BenchmarkSWMR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.SWMRStudy([]float64{0.02}, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Scheme {
			case photon.SWMRReservation:
				b.ReportMetric(r.Result.AvgLatency, "reservation_lat")
			case photon.SWMRHandshakeSetaside:
				b.ReportMetric(r.Result.AvgLatency, "handshake_lat")
			}
		}
	}
}

// BenchmarkMeshCompare runs the §I motivation study: the electrical 2D
// mesh baseline vs the optical ring on identical traffic.
func BenchmarkMeshCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.MeshCompare([]float64{0.05}, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MeshLatency, "mesh_lat")
		b.ReportMetric(rows[0].RingLatency, "ring_lat")
	}
}

// BenchmarkMultiFlit runs the multi-flit message study (paper fn. 6: each
// flit carries its own header and routes independently).
func BenchmarkMultiFlit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.MultiFlitStudy(photon.DHSSetaside, 0.02, quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MsgLatency, "1flit_lat")
		b.ReportMetric(rows[2].MsgLatency, "4flit_lat")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
