// Package photon is a cycle-accurate simulator of ring-based MWSR
// nanophotonic networks-on-chip and a faithful reproduction of
// "A Case for Handshake in Nanophotonic Interconnects" (Wang et al.,
// IPDPS 2013). It implements the paper's two baselines — Token Channel and
// Token Slot arbitration with credit-based flow control — and its four
// contributions: Global Handshake (GHS), Distributed Handshake (DHS), the
// setaside-buffer enhancement and the circulation technique, together with
// the optical component/power models and the workloads needed to
// regenerate every figure and table of the paper's evaluation.
//
// # Quick start
//
//	cfg := photon.DefaultConfig(photon.DHSSetaside)
//	net, err := photon.NewNetwork(cfg, photon.DefaultWindow())
//	if err != nil { ... }
//	inj, err := photon.NewInjector(photon.UniformRandom{}, 0.11,
//	        cfg.Nodes, cfg.CoresPerNode, 1)
//	if err != nil { ... }
//	res := inj.Run(net)
//	fmt.Printf("latency %.1f cycles, throughput %.3f pkt/cycle/core\n",
//	        res.AvgLatency, res.Throughput)
//
// The package is a thin facade over the implementation packages:
// internal/core (the network and schemes), internal/ring (optical
// timing), internal/arbiter, internal/flow, internal/router (substrates),
// internal/traffic and internal/trace (workloads), internal/cpu (the
// closed-loop CMP model), internal/phys and internal/power (hardware
// budgets and power), and internal/exp (the per-figure experiment
// drivers). Everything is stdlib-only and deterministic: identical seeds
// give identical results.
package photon

import (
	"photon/internal/core"
	"photon/internal/cpu"
	"photon/internal/exp"
	"photon/internal/mesh"
	"photon/internal/phys"
	"photon/internal/power"
	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/stats"
	"photon/internal/swmr"
	"photon/internal/trace"
	"photon/internal/traffic"
)

// Scheme identifies an arbitration + flow-control scheme.
type Scheme = core.Scheme

// The seven schemes of the paper's evaluation.
const (
	TokenChannel   = core.TokenChannel
	TokenSlot      = core.TokenSlot
	GHS            = core.GHS
	GHSSetaside    = core.GHSSetaside
	DHS            = core.DHS
	DHSSetaside    = core.DHSSetaside
	DHSCirculation = core.DHSCirculation
)

// Schemes lists every implemented scheme in presentation order.
func Schemes() []Scheme { return core.Schemes() }

// ParseScheme converts a CLI name ("dhs-setaside", ...) into a Scheme.
func ParseScheme(name string) (Scheme, error) { return core.ParseScheme(name) }

// Config fully describes one simulated network; see DefaultConfig.
type Config = core.Config

// DefaultConfig returns the paper's 64-node, 256-core configuration for a
// scheme.
func DefaultConfig(s Scheme) Config { return core.DefaultConfig(s) }

// Network is one cycle-accurate simulation instance.
type Network = core.Network

// NewNetwork builds a network measuring over the given window.
func NewNetwork(cfg Config, w Window) (*Network, error) { return core.NewNetwork(cfg, w) }

// Result condenses a finished run into the quantities the paper reports.
type Result = core.Result

// Packet is the single-flit transfer unit; delivered packets carry their
// full timestamp history.
type Packet = router.Packet

// Packet classes for closed-loop workloads.
const (
	ClassData    = router.ClassData
	ClassRequest = router.ClassRequest
	ClassReply   = router.ClassReply
)

// Window carves a run into warmup / measurement / drain phases.
type Window = sim.Window

// DefaultWindow returns the standard 40k-cycle evaluation window.
func DefaultWindow() Window { return sim.DefaultWindow() }

// ShortWindow returns a reduced window for smoke runs and tests.
func ShortWindow() Window { return sim.ShortWindow() }

// RNG is the deterministic random number generator threaded through every
// stochastic element; custom Pattern implementations receive one.
type RNG = sim.RNG

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// Pattern maps source nodes to destination nodes.
type Pattern = traffic.Pattern

// The synthetic patterns (UR, BC and TOR are the paper's three).
type (
	UniformRandom = traffic.UniformRandom
	BitComplement = traffic.BitComplement
	Tornado       = traffic.Tornado
	Transpose     = traffic.Transpose
	Neighbor      = traffic.Neighbor
	Hotspot       = traffic.Hotspot
)

// PatternByName resolves a CLI pattern label (UR, BC, TOR, TP, NBR).
func PatternByName(name string) (Pattern, error) { return traffic.ByName(name) }

// Injector drives a network with Bernoulli arrivals at a per-core rate.
type Injector = traffic.Injector

// NewInjector builds an injector for a pattern at rate packets/cycle/core.
func NewInjector(p Pattern, rate float64, nodes, coresPerNode int, seed uint64) (*Injector, error) {
	return traffic.NewInjector(p, rate, nodes, coresPerNode, seed)
}

// Trace is an application workload: timestamped injection records.
type Trace = trace.Trace

// TraceRecord is one injection event of a Trace.
type TraceRecord = trace.Record

// AppModel parameterises the synthetic generator for one benchmark.
type AppModel = trace.AppModel

// Apps returns the 13 benchmark models of the paper's Figure 10.
func Apps() []AppModel { return trace.Apps() }

// AppByName finds a benchmark model by name.
func AppByName(name string) (AppModel, error) { return trace.AppByName(name) }

// ReplayTrace drives a network with a trace open-loop and returns the
// result after draining.
func ReplayTrace(t *Trace, net *Network, drainLimit int64) (Result, error) {
	return trace.Replay(t, net, drainLimit)
}

// CMP couples MSHR-limited cores to a network for closed-loop (IPC)
// studies.
type CMP = cpu.CMP

// CMPParams configures the CMP model.
type CMPParams = cpu.Params

// CMPOutcome summarises a closed-loop run.
type CMPOutcome = cpu.Outcome

// DefaultCMPParams returns the paper's CMP configuration (4 MSHRs/core).
func DefaultCMPParams() CMPParams { return cpu.DefaultParams() }

// NewCMP builds a CMP on top of a network.
func NewCMP(p CMPParams, net *Network) (*CMP, error) { return cpu.New(p, net) }

// NetworkShape describes node count, concentration and channel width.
type NetworkShape = phys.NetworkShape

// DefaultShape returns the paper's 256-core, 64-node shape.
func DefaultShape() NetworkShape { return phys.DefaultShape() }

// ComponentInventory is one row of Table I.
type ComponentInventory = phys.Inventory

// TableI computes the optical component budget of the standard schemes.
func TableI(shape NetworkShape) []ComponentInventory { return phys.TableI(shape) }

// PowerModel evaluates per-scheme power and energy (Figure 12).
type PowerModel = power.Model

// PowerBreakdown is one bar of Figure 12(a).
type PowerBreakdown = power.Breakdown

// PowerActivity is the traffic a power estimate is evaluated at.
type PowerActivity = power.Activity

// DefaultPowerModel returns the paper's technology point.
func DefaultPowerModel() PowerModel { return power.DefaultModel() }

// SWMR is the Single-Write-Multiple-Read extension (§II-B of the paper
// notes the handshake schemes apply to SWMR too): every node owns the
// channel it writes and contention moves to the receiver's ports/buffer.
type (
	// SWMRScheme selects the SWMR flow-control discipline (reservation
	// baseline vs handshake).
	SWMRScheme = swmr.Scheme
	// SWMRConfig describes an SWMR network.
	SWMRConfig = swmr.Config
	// SWMRNetwork is one SWMR simulation instance.
	SWMRNetwork = swmr.Network
	// SWMRResult condenses an SWMR run.
	SWMRResult = swmr.Result
)

// The SWMR disciplines.
const (
	SWMRReservation       = swmr.Reservation
	SWMRHandshake         = swmr.Handshake
	SWMRHandshakeSetaside = swmr.HandshakeSetaside
)

// SWMRSchemes lists the SWMR disciplines.
func SWMRSchemes() []SWMRScheme { return swmr.Schemes() }

// DefaultSWMRConfig returns the 64-node SWMR configuration.
func DefaultSWMRConfig(s SWMRScheme) SWMRConfig { return swmr.DefaultConfig(s) }

// NewSWMRNetwork builds an SWMR network measuring over w.
func NewSWMRNetwork(cfg SWMRConfig, w Window) (*SWMRNetwork, error) {
	return swmr.NewNetwork(cfg, w)
}

// Mesh is the electrical 2D-mesh baseline of the paper's §I motivation:
// hop-by-hop credit-based flow control with XY routing.
type (
	// MeshConfig describes the electrical mesh.
	MeshConfig = mesh.Config
	// MeshNetwork is one mesh simulation instance.
	MeshNetwork = mesh.Network
	// MeshResult condenses a mesh run.
	MeshResult = mesh.Result
)

// DefaultMeshConfig returns the 8x8, 256-core electrical baseline.
func DefaultMeshConfig() MeshConfig { return mesh.DefaultConfig() }

// NewMeshNetwork builds an electrical mesh measuring over w.
func NewMeshNetwork(cfg MeshConfig, w Window) (*MeshNetwork, error) {
	return mesh.NewNetwork(cfg, w)
}

// Table renders experiment output as text or CSV.
type Table = stats.Table

// ExperimentOptions tunes experiment fidelity.
type ExperimentOptions = exp.Options

// FullExperiments returns full-fidelity experiment options.
func FullExperiments() ExperimentOptions { return exp.DefaultOptions() }

// QuickExperiments returns reduced-fidelity options for smoke runs.
func QuickExperiments() ExperimentOptions { return exp.QuickOptions() }
