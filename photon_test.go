package photon_test

import (
	"bytes"
	"testing"

	"photon"
)

// TestFacadeEndToEnd drives the whole public API surface the way the
// README's quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	scheme, err := photon.ParseScheme("dhs-setaside")
	if err != nil {
		t.Fatal(err)
	}
	cfg := photon.DefaultConfig(scheme)
	net, err := photon.NewNetwork(cfg, photon.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := photon.NewInjector(photon.UniformRandom{}, 0.05, cfg.Nodes, cfg.CoresPerNode, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := inj.Run(net)
	if res.Delivered == 0 || res.AvgLatency <= 0 || res.Throughput <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestFacadeSchemes(t *testing.T) {
	if len(photon.Schemes()) != 7 {
		t.Fatalf("expected the paper's 7 schemes, got %d", len(photon.Schemes()))
	}
	if photon.TokenChannel.Global() != true || photon.DHSCirculation.Circulating() != true {
		t.Fatal("scheme property re-exports broken")
	}
}

func TestFacadeTraceAndCMP(t *testing.T) {
	app, err := photon.AppByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	cfg := photon.DefaultConfig(photon.TokenSlot)
	tr := app.Synthesize(cfg.Cores(), cfg.Nodes, 2000, 9)

	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}

	net, err := photon.NewNetwork(cfg, photon.Window{Warmup: 0, Measure: 2000, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := photon.ReplayTrace(tr, net, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d packets stuck", res.Unfinished)
	}

	// Closed loop.
	net2, err := photon.NewNetwork(photon.DefaultConfig(photon.DHSSetaside),
		photon.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	params := photon.DefaultCMPParams()
	cmp, err := photon.NewCMP(params, net2)
	if err != nil {
		t.Fatal(err)
	}
	out := cmp.Run(2000)
	if out.IPC <= 0 || out.IPC > float64(params.IssueWidth) {
		t.Fatalf("implausible IPC %.3f", out.IPC)
	}
}

func TestFacadeHardwareAndPower(t *testing.T) {
	rows := photon.TableI(photon.DefaultShape())
	if len(rows) != 4 {
		t.Fatalf("Table I rows = %d", len(rows))
	}
	model := photon.DefaultPowerModel()
	bd, err := model.Evaluate(photon.GHS.Hardware(), photon.PowerActivity{PacketsPerCycle: 10})
	if err != nil {
		t.Fatal(err)
	}
	if bd.TotalW() <= 0 {
		t.Fatal("zero power")
	}
}

func TestFacadeSWMR(t *testing.T) {
	if len(photon.SWMRSchemes()) != 3 {
		t.Fatalf("SWMR schemes = %d", len(photon.SWMRSchemes()))
	}
	cfg := photon.DefaultSWMRConfig(photon.SWMRHandshakeSetaside)
	net, err := photon.NewSWMRNetwork(cfg, photon.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	rng := photon.NewRNG(3)
	for cyc := 0; cyc < 500; cyc++ {
		if rng.Bernoulli(0.3) {
			net.Inject(rng.Intn(cfg.Cores()), rng.Intn(cfg.Nodes), photon.ClassData, 0)
		}
		net.Step()
	}
	net.Drain(10_000)
	if net.Stats().Delivered != net.Stats().Injected {
		t.Fatalf("SWMR lost packets: %d of %d", net.Stats().Delivered, net.Stats().Injected)
	}
}

func TestFacadeExperimentOptions(t *testing.T) {
	full, quick := photon.FullExperiments(), photon.QuickExperiments()
	if full.Window.Total() <= quick.Window.Total() {
		t.Fatal("full experiments should simulate longer than quick")
	}
	if !quick.Quick {
		t.Fatal("quick options not marked quick")
	}
}

func TestFacadePatterns(t *testing.T) {
	rng := photon.NewRNG(1)
	for _, name := range []string{"UR", "BC", "TOR", "TP", "NBR"} {
		p, err := photon.PatternByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if d := p.Dest(0, 64, rng); d < 0 || d >= 64 {
			t.Fatalf("%s: dest %d out of range", name, d)
		}
	}
}
