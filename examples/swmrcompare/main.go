// Swmrcompare: the paper's future-work direction made concrete — handshake
// flow control on a Single-Write-Multiple-Read interconnect. Compares the
// reservation baseline (request a slot, wait a notification round trip,
// then send) against immediate-send handshake, and puts the best MWSR
// scheme next to them for perspective.
package main

import (
	"fmt"
	"log"

	"photon"
)

func main() {
	// Low load: the reservation baseline serialises at one packet per
	// notification round trip per node (as per-message circuit setup
	// does), so it saturates near 0.025 pkt/cycle/core.
	const rate = 0.02
	fmt.Printf("UR @ %.2f pkt/cycle/core, 64 nodes:\n\n", rate)

	// SWMR disciplines.
	for _, s := range photon.SWMRSchemes() {
		cfg := photon.DefaultSWMRConfig(s)
		net, err := photon.NewSWMRNetwork(cfg, photon.ShortWindow())
		if err != nil {
			log.Fatal(err)
		}
		rng := photon.NewRNG(7)
		ur := photon.UniformRandom{}
		w := net.Window()
		for cyc := int64(0); cyc < w.Warmup+w.Measure; cyc++ {
			for c := 0; c < cfg.Cores(); c++ {
				if rng.Bernoulli(rate) {
					net.Inject(c, ur.Dest(c/cfg.CoresPerNode, cfg.Nodes, rng), photon.ClassData, 0)
				}
			}
			net.Step()
		}
		net.Drain(w.Drain + 20_000)
		res := net.Result()
		fmt.Printf("  %-26s latency %6.1f cycles   drops/launch %.4f   avg reservation wait %.1f\n",
			s, res.AvgLatency, res.DropRate, res.AvgReservation)
	}

	// The MWSR reference point.
	cfg := photon.DefaultConfig(photon.DHSSetaside)
	net, err := photon.NewNetwork(cfg, photon.ShortWindow())
	if err != nil {
		log.Fatal(err)
	}
	inj, err := photon.NewInjector(photon.UniformRandom{}, rate, cfg.Nodes, cfg.CoresPerNode, 7)
	if err != nil {
		log.Fatal(err)
	}
	res := inj.Run(net)
	fmt.Printf("  %-26s latency %6.1f cycles   (MWSR reference)\n", "mwsr-dhs-setaside", res.AvgLatency)

	fmt.Println("\nSWMR removes sender arbitration entirely (a sender owns its channel),")
	fmt.Println("so handshake's immediate send shines; the reservation baseline pays a")
	fmt.Println("full notification round trip before every packet.")
}
