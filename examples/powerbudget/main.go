// Powerbudget: explore the hardware side of the design space with the
// public API — component budgets (Table I methodology) for growing
// networks, the laser/heating power of each scheme, and the paper's
// scalability argument: handshake performance is independent of buffer
// depth, so growing the ring does not force buffer growth.
package main

import (
	"fmt"
	"log"

	"photon"
)

func main() {
	// Component budgets as the network scales (Table I methodology).
	fmt.Println("micro-ring budgets by network size (DHS hardware):")
	for _, nodes := range []int{16, 32, 64, 128} {
		shape := photon.DefaultShape()
		shape.Nodes = nodes
		rows := photon.TableI(shape)
		fmt.Printf("  %3d nodes:", nodes)
		for _, r := range rows {
			fmt.Printf("  %-10s %6.1fM", r.Scheme, float64(r.MicroRings)/(1<<20))
		}
		fmt.Println()
	}

	// Static power of each scheme at the default 64-node shape.
	fmt.Println("\nstatic power (laser + ring heating) per scheme at 64 nodes:")
	model := photon.DefaultPowerModel()
	for _, scheme := range photon.Schemes() {
		bd, err := model.Evaluate(scheme.Hardware(), photon.PowerActivity{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s laser %5.2f W   heating %5.2f W\n",
			scheme.PaperName(), bd.LaserW, bd.HeatW)
	}

	// The scalability argument: double the ring's round trip (a bigger
	// die) and compare a credit scheme against a handshake scheme with
	// the SAME 8-slot buffers. Credit flow control needs buffers to cover
	// the longer credit loop; handshake does not.
	fmt.Println("\nlatency at UR 0.09 with 8 buffers as the ring grows:")
	for _, rt := range []int{8, 16, 32} {
		fmt.Printf("  round trip %2d cycles:", rt)
		for _, scheme := range []photon.Scheme{photon.TokenSlot, photon.DHSSetaside} {
			cfg := photon.DefaultConfig(scheme)
			cfg.RoundTrip = rt
			net, err := photon.NewNetwork(cfg, photon.ShortWindow())
			if err != nil {
				log.Fatal(err)
			}
			inj, err := photon.NewInjector(photon.UniformRandom{}, 0.09, cfg.Nodes, cfg.CoresPerNode, 3)
			if err != nil {
				log.Fatal(err)
			}
			res := inj.Run(net)
			fmt.Printf("  %s %7.1f cycles", scheme.PaperName(), res.AvgLatency)
		}
		fmt.Println()
	}
}
