// Tracereplay: the application-workload path of the API end to end —
// synthesise a benchmark trace (the stand-in for the paper's Simics
// extraction), persist it to the binary trace format, read it back, replay
// it under two schemes, and run the same benchmark closed-loop through the
// MSHR-limited CMP model to see the IPC effect of the network.
package main

import (
	"bytes"
	"fmt"
	"log"

	"photon"
)

func main() {
	app, err := photon.AppByName("nas-cg")
	if err != nil {
		log.Fatal(err)
	}

	cfg := photon.DefaultConfig(photon.TokenChannel)
	tr := app.Synthesize(cfg.Cores(), cfg.Nodes, 20_000, 42)
	fmt.Printf("synthesised %s: %d packets over %d cycles (%.5f pkt/cycle/core)\n",
		tr.App, len(tr.Records), tr.Cycles, tr.Rate())

	// Round-trip through the binary codec, as a downstream tool would.
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary trace size: %d bytes (%.1f bytes/record)\n",
		buf.Len(), float64(buf.Len())/float64(len(tr.Records)))

	// Open-loop replay: communication latency under baseline vs handshake.
	fmt.Println("\nopen-loop replay (Figure 10 methodology):")
	for _, scheme := range []photon.Scheme{photon.TokenChannel, photon.GHSSetaside} {
		cfg := photon.DefaultConfig(scheme)
		window := photon.Window{Warmup: 0, Measure: tr.Cycles, Drain: 0}
		net, err := photon.NewNetwork(cfg, window)
		if err != nil {
			log.Fatal(err)
		}
		res, err := photon.ReplayTrace(tr, net, 20_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s avg latency %6.1f cycles   p99 %4d   drops/launch %.5f\n",
			scheme.PaperName(), res.AvgLatency, res.P99Latency, res.DropRate)
	}

	// Closed-loop CMP: the same workload intensity with self-throttling
	// cores (4 MSHRs each) — the §V-B IPC experiment.
	fmt.Println("\nclosed-loop CMP (IPC study methodology):")
	for _, scheme := range []photon.Scheme{photon.TokenChannel, photon.GHSSetaside} {
		cfg := photon.DefaultConfig(scheme)
		window := photon.Window{Warmup: 0, Measure: 20_000, Drain: 0}
		net, err := photon.NewNetwork(cfg, window)
		if err != nil {
			log.Fatal(err)
		}
		params := photon.DefaultCMPParams()
		params.MissPer1kInstr = app.MeanRate * 1000 / float64(params.IssueWidth)
		cmp, err := photon.NewCMP(params, net)
		if err != nil {
			log.Fatal(err)
		}
		out := cmp.Run(20_000)
		fmt.Printf("  %-16s IPC %.3f   stall fraction %.3f   net latency %.1f\n",
			scheme.PaperName(), out.IPC, out.StallFraction, out.NetResult.AvgLatency)
	}
}
