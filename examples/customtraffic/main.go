// Customtraffic: define a workload-specific traffic pattern against the
// public Pattern interface — a "shuffle" permutation modelling an FFT
// butterfly exchange — and sweep it across all seven schemes to find the
// saturation point of each.
//
// This is the extension path a downstream user takes when their workload
// is not one of the built-in patterns.
package main

import (
	"fmt"
	"log"

	"photon"
)

// Shuffle implements the perfect-shuffle permutation: the destination is
// the source's node id rotated left by one bit — the classic butterfly
// exchange step of FFT-style kernels. It satisfies photon.Pattern.
type Shuffle struct {
	Bits int // log2 of the node count
}

// Name implements photon.Pattern.
func (s Shuffle) Name() string { return "SHUFFLE" }

// Dest implements photon.Pattern.
func (s Shuffle) Dest(src, nodes int, _ *photon.RNG) int {
	hi := (src >> (s.Bits - 1)) & 1
	return ((src << 1) | hi) & (nodes - 1)
}

func main() {
	const bits = 6 // 64 nodes
	pattern := Shuffle{Bits: bits}

	fmt.Println("saturation load of the shuffle permutation (latency <= 3x zero-load):")
	for _, scheme := range photon.Schemes() {
		sat, zero := saturate(scheme, pattern)
		fmt.Printf("  %-20s zero-load %5.1f cycles   saturates near %.2f pkt/cycle/core\n",
			scheme.PaperName(), zero, sat)
	}
}

// saturate walks the load axis until average latency exceeds 3x the
// zero-load latency and reports the last stable load.
func saturate(scheme photon.Scheme, pattern photon.Pattern) (satLoad, zeroLat float64) {
	run := func(rate float64) photon.Result {
		cfg := photon.DefaultConfig(scheme)
		net, err := photon.NewNetwork(cfg, photon.ShortWindow())
		if err != nil {
			log.Fatal(err)
		}
		inj, err := photon.NewInjector(pattern, rate, cfg.Nodes, cfg.CoresPerNode, 7)
		if err != nil {
			log.Fatal(err)
		}
		return inj.Run(net)
	}
	zeroLat = run(0.005).AvgLatency
	satLoad = 0.005
	for rate := 0.02; rate <= 0.26; rate += 0.02 {
		if run(rate).AvgLatency > 3*zeroLat {
			break
		}
		satLoad = rate
	}
	return satLoad, zeroLat
}
