// Quickstart: simulate the paper's 64-node nanophotonic ring under the
// DHS-with-setaside handshake scheme and its Token Slot baseline at one
// operating point, and print the comparison — the 30-second tour of the
// public API.
package main

import (
	"fmt"
	"log"

	"photon"
)

func main() {
	const rate = 0.11 // packets/cycle/core, the paper's sensitivity point

	for _, scheme := range []photon.Scheme{photon.TokenSlot, photon.DHSSetaside} {
		cfg := photon.DefaultConfig(scheme)
		net, err := photon.NewNetwork(cfg, photon.DefaultWindow())
		if err != nil {
			log.Fatal(err)
		}
		inj, err := photon.NewInjector(photon.UniformRandom{}, rate, cfg.Nodes, cfg.CoresPerNode, 1)
		if err != nil {
			log.Fatal(err)
		}
		res := inj.Run(net)
		fmt.Printf("%-18s latency %6.1f cycles   throughput %.4f pkt/cycle/core   arb wait %4.1f\n",
			scheme.PaperName(), res.AvgLatency, res.Throughput, res.AvgArbWait)
	}

	fmt.Println("\nDHS generates a token every cycle instead of gating tokens on credits,")
	fmt.Println("so senders never wait on the credit round trip (paper §III).")
}
