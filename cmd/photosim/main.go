// Command photosim runs a single nanophotonic-NoC simulation with full
// control over every knob and prints the measured result.
//
// Examples:
//
//	photosim -scheme dhs-setaside -pattern UR -rate 0.11
//	photosim -scheme token-channel -pattern BC -rate 0.08 -credits 16 -v
//	photosim -scheme ghs -nodes 128 -roundtrip 16 -rate 0.05
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"photon"
	"photon/internal/core"
)

// writeHistCSV dumps the measured latency distribution as quantile rows.
func writeHistCSV(w io.Writer, st *core.Stats) {
	fmt.Fprintln(w, "quantile,latency_cycles")
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0} {
		fmt.Fprintf(w, "%.3f,%d\n", q, st.Latency.Quantile(q))
	}
}

func main() {
	var (
		preset     = flag.String("preset", "", "start from a named configuration: paper, corona, bigring, smallcmp (flags below override)")
		schemeName = flag.String("scheme", "dhs-setaside", "scheme: token-channel, token-slot, ghs, ghs-setaside, dhs, dhs-setaside, dhs-circulation")
		patName    = flag.String("pattern", "UR", "traffic pattern: UR, BC, TOR, TP, NBR")
		rate       = flag.Float64("rate", 0.05, "injection rate in packets/cycle/core")
		nodes      = flag.Int("nodes", 64, "ring nodes")
		cores      = flag.Int("cores", 4, "cores per node")
		roundtrip  = flag.Int("roundtrip", 8, "ring round-trip time in cycles")
		credits    = flag.Int("credits", 8, "home buffer depth (credits)")
		setaside   = flag.Int("setaside", 4, "setaside slots per queue")
		warmup     = flag.Int64("warmup", 10_000, "warmup cycles")
		measure    = flag.Int64("measure", 20_000, "measurement cycles")
		drain      = flag.Int64("drain", 10_000, "drain cycles")
		seed       = flag.Uint64("seed", 1, "random seed")
		ejectStall = flag.Float64("ejectstall", 0, "per-cycle ejection stall probability (receiver contention)")
		noFair     = flag.Bool("nofair", false, "disable the fairness quota policy")
		verbose    = flag.Bool("v", false, "print per-channel diagnostics")
		asJSON     = flag.Bool("json", false, "emit the result as JSON")
		histOut    = flag.String("hist", "", "write the measured latency distribution as CSV to this file")
	)
	flag.Parse()

	scheme, err := photon.ParseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}
	pat, err := photon.PatternByName(*patName)
	if err != nil {
		fatal(err)
	}

	cfg := photon.DefaultConfig(scheme)
	if *preset != "" {
		p, ok := core.PresetByName(*preset)
		if !ok {
			fatal(fmt.Errorf("unknown preset %q (paper, corona, bigring, smallcmp)", *preset))
		}
		cfg = p.Config
	}
	// Explicitly passed flags override the preset; defaults do not.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	apply := func(name string, set func()) {
		if *preset == "" || explicit[name] {
			set()
		}
	}
	apply("scheme", func() { cfg.Scheme = scheme })
	apply("nodes", func() { cfg.Nodes = *nodes })
	apply("cores", func() { cfg.CoresPerNode = *cores })
	apply("roundtrip", func() { cfg.RoundTrip = *roundtrip })
	apply("credits", func() { cfg.BufferDepth = *credits })
	apply("setaside", func() { cfg.SetasideSize = *setaside })
	cfg.Seed = *seed
	cfg.EjectStallProb = *ejectStall
	cfg.Fairness.Enabled = !*noFair

	window := photon.Window{Warmup: *warmup, Measure: *measure, Drain: *drain}
	net, err := photon.NewNetwork(cfg, window)
	if err != nil {
		fatal(err)
	}
	inj, err := photon.NewInjector(pat, *rate, cfg.Nodes, cfg.CoresPerNode, *seed+0x9E37)
	if err != nil {
		fatal(err)
	}
	res := inj.Run(net)

	if *histOut != "" {
		f, ferr := os.Create(*histOut)
		if ferr != nil {
			fatal(ferr)
		}
		writeHistCSV(f, net.Stats())
		if ferr := f.Close(); ferr != nil {
			fatal(ferr)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Scheme  string
			Pattern string
			Rate    float64
			Result  photon.Result
		}{cfg.Scheme.String(), pat.Name(), *rate, res}); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("scheme            %s\n", cfg.Scheme.PaperName())
	fmt.Printf("pattern           %s @ %.4f pkt/cycle/core\n", pat.Name(), *rate)
	fmt.Printf("network           %d nodes x %d cores, R=%d cycles, %d credits\n",
		cfg.Nodes, cfg.CoresPerNode, cfg.RoundTrip, cfg.BufferDepth)
	fmt.Printf("avg latency       %.2f cycles\n", res.AvgLatency)
	fmt.Printf("p95 / p99 / max   %d / %d / %d cycles\n", res.P95Latency, res.P99Latency, res.MaxLatency)
	fmt.Printf("throughput        %.4f pkt/cycle/core (offered %.4f)\n", res.Throughput, res.OfferedLoad)
	fmt.Printf("arbitration wait  %.2f cycles\n", res.AvgArbWait)
	fmt.Printf("drop rate         %.5f per launch\n", res.DropRate)
	fmt.Printf("retransmit rate   %.5f per launch\n", res.RetransmitRate)
	fmt.Printf("circulation rate  %.5f per launch\n", res.CirculationRate)
	fmt.Printf("fairness spread   %.2f (max/min per-source throughput)\n", res.FairnessSpread)
	fmt.Printf("unfinished        %d measured packets\n", res.Unfinished)

	if *verbose {
		fmt.Println("\nper-channel diagnostics (first 8 channels):")
		for i, d := range net.Diagnostics() {
			if i >= 8 {
				break
			}
			fmt.Printf("  home %2d: launches=%d reinj=%d peakFlight=%d peakBuf=%d captures=%d emitted=%d expired=%d acks=%d nacks=%d yields=%d\n",
				d.Home, d.Launches, d.Reinjections, d.PeakInFlight, d.PeakInputBuf,
				d.TokenCaptures, d.TokensEmitted, d.TokensExpired, d.AcksSent, d.NacksSent, d.FairYields)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "photosim:", err)
	os.Exit(1)
}
