// Command verify runs the determinism + conservation battery: every
// scheme on the paper's three patterns, each point run twice from a
// pre-recorded traffic tape (bit-reproducibility), checked against the
// live injector (tape faithfulness), audited for packet conservation
// mid-flight and after drain, then cross-checked differentially between
// schemes and between serial and parallel sweep execution.
//
// Examples:
//
//	verify -quick          # reduced windows, CI-sized battery
//	verify                 # full battery (longer windows, extra load)
//	verify -quick -seed 7  # different tape seed
package main

import (
	"flag"
	"fmt"
	"os"

	"photon/internal/check"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced load grid and shorter windows (the CI battery)")
		seed  = flag.Uint64("seed", 1, "base seed for the traffic tapes")
		csv   = flag.Bool("csv", false, "emit the per-point table as CSV")
	)
	flag.Parse()

	b := check.FullBattery(*seed)
	if *quick {
		b = check.QuickBattery(*seed)
	}

	rep, err := check.Run(b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}

	t := rep.Table()
	if *csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
	fmt.Println()

	for _, c := range rep.Cross {
		mark := "ok  "
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Printf("%s  %s", mark, c.Name)
		if c.Detail != "" {
			fmt.Printf("  (%s)", c.Detail)
		}
		fmt.Println()
	}
	fmt.Println()

	if !rep.Pass() {
		fails := rep.Failures()
		fmt.Printf("FAIL: %d violation(s)\n", len(fails))
		for _, f := range fails {
			fmt.Println("  -", f)
		}
		os.Exit(1)
	}
	fmt.Printf("PASS: %d points, %d cross checks\n", len(rep.Points), len(rep.Cross))
}
