// Command verify runs the determinism + conservation battery: every
// scheme on the paper's three patterns, each point run twice from a
// pre-recorded traffic tape (bit-reproducibility), checked against the
// live injector (tape faithfulness), audited for packet conservation
// mid-flight and after drain, then cross-checked differentially between
// schemes and between serial and parallel sweep execution.
//
// With -chaos it instead runs the fault-injection battery: every (scheme,
// fault class, fault rate) triple with recovery enabled, asserting
// determinism under faults, conservation, quiescence, and zero permanent
// loss, plus the rate-zero inertness and recovery-off stranding legs.
//
// With -workloads it runs the workload differential battery: every
// preset workload (bursty, flash-crowd, phased diurnal) recorded as a
// tape and verified under every scheme — replay determinism, live
// tape-faithfulness, and packet conservation audited at every schedule
// phase boundary.
//
// With -twin it runs the analytical-twin differential: internal/twin's
// closed-form per-phase predictions compared against the exact span
// attribution for every scheme at utilization 0.2/0.35/0.5 of each
// scheme's twin-estimated saturation rate, within a max(10%, 0.75 cycle)
// band, plus model-side divergence and capacity-inversion cross checks.
//
// Examples:
//
//	verify -quick          # reduced windows, CI-sized battery
//	verify                 # full battery (longer windows, extra load)
//	verify -quick -seed 7  # different tape seed
//	verify -chaos -quick   # fault-injection battery
//	verify -workloads      # workload differential battery
//	verify -twin -quick    # analytical twin vs exact spans differential
//	verify -quick -json    # machine-readable pass/fail summary
//	verify -bench          # cycles/sec per scheme (perf baseline, no checks)
//	verify -bench -json    # write the BENCH_core.json format to stdout
//	verify -bench -gate    # fail on >25% per-scheme ns/cycle regression vs BENCH_core.json
//
// With -trace it runs one point with the protocol event tap armed and
// exports the assembled per-packet spans:
//
//	verify -trace                                   # exact attribution table, dhs-setaside UR@0.13
//	verify -trace -trace-scheme ghs -trace-load 0.2 # another point
//	verify -trace -trace-format chrome -trace-out trace.json   # chrome://tracing / Perfetto
//	verify -trace -trace-format flame -trace-out folded.txt    # flame-graph folded stacks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"photon/internal/check"
	"photon/internal/core"
	"photon/internal/exp"
	"photon/internal/ptrace"
	"photon/internal/sim"
	"photon/internal/stats"
	"photon/internal/traffic"
)

// jsonPoint is one per-point verdict in the -json summary. Name carries
// the point's sub-identity: "pattern@rate" for the standard battery,
// "class@rate" for the chaos battery.
type jsonPoint struct {
	Scheme string `json:"scheme"`
	Name   string `json:"name"`
	Digest string `json:"digest"`
	Status string `json:"status"` // "pass" or the first failure detail
}

type jsonCheck struct {
	Name   string `json:"name"`
	Status string `json:"status"`
}

type jsonReport struct {
	Battery string      `json:"battery"` // "standard" or "chaos"
	Seed    uint64      `json:"seed"`
	Pass    bool        `json:"pass"`
	Points  []jsonPoint `json:"points"`
	Cross   []jsonCheck `json:"cross"`
}

func status(pass bool, detail string) string {
	if pass {
		return "pass"
	}
	if detail == "" {
		detail = "fail"
	}
	return detail
}

func main() {
	var (
		quick     = flag.Bool("quick", false, "reduced load grid and shorter windows (the CI battery)")
		seed      = flag.Uint64("seed", 1, "base seed for the traffic tapes")
		csv       = flag.Bool("csv", false, "emit the per-point table as CSV")
		chaos     = flag.Bool("chaos", false, "run the fault-injection battery instead of the standard one")
		workloads = flag.Bool("workloads", false, "run the workload differential battery instead of the standard one")
		twinDiff  = flag.Bool("twin", false, "run the analytical-twin-vs-exact-spans differential battery instead of the standard one")
		bench     = flag.Bool("bench", false, "measure cycles/sec per scheme instead of running checks")
		gate      = flag.Bool("gate", false, "with -bench: fail if any scheme regressed beyond -tolerance vs -baseline")
		baseline  = flag.String("baseline", "BENCH_core.json", "with -bench -gate: committed baseline report to compare against")
		tolerance = flag.Float64("tolerance", 0.25, "with -bench -gate: allowed fractional ns/cycle regression per scheme")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable pass/fail summary")

		trace        = flag.Bool("trace", false, "trace one point with the event tap and export per-packet spans")
		traceScheme  = flag.String("trace-scheme", "dhs-setaside", "scheme to trace")
		tracePattern = flag.String("trace-pattern", "UR", "traffic pattern to trace: UR, BC, TOR")
		traceLoad    = flag.Float64("trace-load", 0.13, "offered load for the traced point")
		traceFormat  = flag.String("trace-format", "table", "export format: table, chrome, flame")
		traceOut     = flag.String("trace-out", "", "output path (default stdout)")
		traceStream  = flag.Bool("trace-stream", false, "with -trace: use the windowed streaming assembler (bounded memory; table format only)")
	)
	flag.Parse()

	if *trace {
		if err := runTrace(*traceScheme, *tracePattern, *traceLoad, *traceFormat, *traceOut, *seed, *quick, *traceStream); err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		return
	}

	if *bench {
		cfg := check.DefaultBench(*seed)
		if *quick {
			cfg.Warmup /= 2
			cfg.Cycles /= 2
			cfg.Blocks = 3
		}
		rep, err := check.RunBench(cfg)
		if err == nil {
			if *jsonOut {
				err = rep.WriteJSON(os.Stdout)
			} else {
				err = rep.WriteText(os.Stdout)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		if *gate {
			data, err := os.ReadFile(*baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verify: reading bench baseline:", err)
				os.Exit(1)
			}
			var base check.BenchReport
			if err := json.Unmarshal(data, &base); err != nil {
				fmt.Fprintln(os.Stderr, "verify: parsing bench baseline:", err)
				os.Exit(1)
			}
			if violations := rep.Gate(&base, *tolerance); len(violations) > 0 {
				fmt.Fprintf(os.Stderr, "verify: bench regression gate FAILED (%d violation(s)):\n", len(violations))
				for _, v := range violations {
					fmt.Fprintln(os.Stderr, "  -", v)
				}
				os.Exit(1)
			}
			fmt.Printf("\nbench gate PASS: every scheme within %.0f%% of %s\n", *tolerance*100, *baseline)
		}
		return
	}

	var (
		jr    jsonReport
		table interface {
			WriteCSV(w io.Writer) error
			WriteText(w io.Writer) error
		}
		cross []check.Check
		pass  bool
		fails []string
	)
	jr.Seed = *seed

	if *twinDiff {
		b := check.QuickTwinBattery(*seed)
		if !*quick {
			b = check.FullTwinBattery(*seed)
		}
		rep, err := check.RunTwin(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		jr.Battery = "twin"
		for _, p := range rep.Points {
			jr.Points = append(jr.Points, jsonPoint{
				Scheme: p.Scheme.String(),
				Name:   fmt.Sprintf("U=%.2f@%.4f", p.Utilization, p.Rate),
				Digest: fmt.Sprintf("%016x", p.Obs.Result.Digest),
				Status: status(p.Pass(), p.Detail),
			})
		}
		table, cross, pass, fails = rep.Table(), rep.Cross, rep.Pass(), rep.Failures()
	} else if *workloads {
		b := check.QuickWorkloadBattery(*seed)
		if !*quick {
			// The full variant runs the standard short window with a deeper
			// post-run drain.
			b.Window = sim.ShortWindow()
			b.DrainLimit = 60_000
		}
		rep, err := check.RunWorkloads(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		jr.Battery = "workloads"
		for _, p := range rep.Points {
			jr.Points = append(jr.Points, jsonPoint{
				Scheme: p.Scheme.String(),
				Name:   p.Workload,
				Digest: fmt.Sprintf("%016x", p.Digest),
				Status: status(p.Pass(), p.Detail),
			})
		}
		table, cross, pass, fails = rep.Table(), rep.Cross, rep.Pass(), rep.Failures()
	} else if *chaos {
		b := check.QuickChaos(*seed)
		if !*quick {
			// The full variant widens the rate grid and the window.
			b.Rates = []float64{0.001, 0.01, 0.05, 0.10}
			b.Window.Measure *= 4
		}
		rep, err := check.RunChaos(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		jr.Battery = "chaos"
		for _, p := range rep.Points {
			jr.Points = append(jr.Points, jsonPoint{
				Scheme: p.Scheme.String(),
				Name:   fmt.Sprintf("%s@%.3f", p.Class, p.Rate),
				Digest: fmt.Sprintf("%016x", p.Digest),
				Status: status(p.Pass(), p.Detail),
			})
		}
		table, cross, pass, fails = rep.Table(), rep.Cross, rep.Pass(), rep.Failures()
	} else {
		b := check.FullBattery(*seed)
		if *quick {
			b = check.QuickBattery(*seed)
		}
		rep, err := check.Run(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		jr.Battery = "standard"
		for _, p := range rep.Points {
			jr.Points = append(jr.Points, jsonPoint{
				Scheme: p.Scheme.String(),
				Name:   fmt.Sprintf("%s@%.3f", p.Pattern, p.Rate),
				Digest: fmt.Sprintf("%016x", p.Digest),
				Status: status(p.Pass(), p.Detail),
			})
		}
		table, cross, pass, fails = rep.Table(), rep.Cross, rep.Pass(), rep.Failures()
	}

	if *jsonOut {
		jr.Pass = pass
		for _, c := range cross {
			jr.Cross = append(jr.Cross, jsonCheck{Name: c.Name, Status: status(c.Pass, c.Detail)})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jr); err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		if !pass {
			os.Exit(1)
		}
		return
	}

	var err error
	if *csv {
		err = table.WriteCSV(os.Stdout)
	} else {
		err = table.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
	fmt.Println()

	for _, c := range cross {
		mark := "ok  "
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Printf("%s  %s", mark, c.Name)
		if c.Detail != "" {
			fmt.Printf("  (%s)", c.Detail)
		}
		fmt.Println()
	}
	fmt.Println()

	if !pass {
		fmt.Printf("FAIL: %d violation(s)\n", len(fails))
		for _, f := range fails {
			fmt.Println("  -", f)
		}
		os.Exit(1)
	}
	fmt.Printf("PASS: %d points, %d cross checks\n", len(jr.Points), len(cross))
}

// runTrace runs one point with the event tap armed and exports the
// assembled spans in the requested format. With stream set it uses the
// windowed streaming assembler instead: spans are attributed and dropped
// as they deliver, so the trace's footprint is bounded by the live
// packet population — the mode for long runs the batch tap cannot hold.
func runTrace(schemeName, patternName string, load float64, format, outPath string, seed uint64, quick, stream bool) error {
	scheme, err := core.ParseScheme(schemeName)
	if err != nil {
		return err
	}
	var pattern traffic.Pattern
	for _, p := range traffic.PaperPatterns() {
		if p.Name() == patternName {
			pattern = p
		}
	}
	if pattern == nil {
		return fmt.Errorf("unknown pattern %q (UR, BC, TOR)", patternName)
	}
	opts := exp.DefaultOptions()
	if quick {
		opts = exp.QuickOptions()
	}
	opts.Seed = seed
	point := exp.Point{Scheme: scheme, Pattern: pattern, Rate: load}

	if stream {
		if format != "table" {
			return fmt.Errorf("-trace-stream drops spans after attribution; format %q needs the batch tap (drop -trace-stream)", format)
		}
		res, attr, st, err := exp.RunStreamedPoint(point, opts)
		if err != nil {
			return err
		}
		out := io.Writer(os.Stdout)
		if outPath != "" {
			f, err := os.Create(outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := writeAttributionTable(out, scheme, patternName, load, attr); err != nil {
			return err
		}
		_, err = fmt.Fprintf(out,
			"\nstreamed %d spans, peak %d live (%.1f%% of flushed)  digest %016x (stream is digest-inert)\nexact mean %.4f == measured AvgLatency %.4f\n",
			st.Flushed(), st.MaxLive(), 100*float64(st.MaxLive())/float64(st.Flushed()),
			res.Digest, attr.AvgTotal(), res.AvgLatency)
		return err
	}

	res, tr, err := exp.RunTracedPoint(point, opts)
	if err != nil {
		return err
	}
	for _, s := range tr.Spans {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("span invariant violated: %w", err)
		}
	}

	out := io.Writer(os.Stdout)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	switch format {
	case "chrome":
		return ptrace.WriteChromeTrace(out, tr)
	case "flame":
		return ptrace.WriteFlame(out, tr, fmt.Sprintf("%s-%s@%.2f", scheme, patternName, load))
	case "table":
		attr := ptrace.Aggregate(tr, true)
		if err := writeAttributionTable(out, scheme, patternName, load, attr); err != nil {
			return err
		}
		_, err = fmt.Fprintf(out,
			"\nspans %d  launches %d  drops %d  circulations %d  digest %016x (tap is digest-inert)\nexact mean %.4f == measured AvgLatency %.4f\n",
			len(tr.Spans), attr.Launches, attr.Drops, attr.Circulations, res.Digest, attr.AvgTotal(), res.AvgLatency)
		return err
	default:
		return fmt.Errorf("unknown trace format %q (table, chrome, flame)", format)
	}
}

// writeAttributionTable renders the per-phase exact attribution table
// shared by the batch and streaming trace modes.
func writeAttributionTable(out io.Writer, scheme core.Scheme, patternName string, load float64, attr ptrace.Attribution) error {
	t := stats.NewTable(
		fmt.Sprintf("%s %s @ %.3f — exact attribution over %d measured deliveries (%d local)",
			scheme, patternName, load, attr.Spans, attr.Local),
		"phase", "total cycles", "avg cycles/packet")
	for k := 0; k < ptrace.NumPhases; k++ {
		kind := ptrace.PhaseKind(k)
		t.AddRow(kind.String(), attr.Phases[k], fmt.Sprintf("%.2f", attr.AvgPhase(kind)))
	}
	t.AddRow("total", attr.Total, fmt.Sprintf("%.2f", attr.AvgTotal()))
	t.AddRow("(setaside overlap)", attr.Setaside, "")
	return t.WriteText(out)
}
