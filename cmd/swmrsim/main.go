// Command swmrsim runs the SWMR extension experiments: the paper notes
// (§II-B) that its handshake schemes apply to Single-Write-Multiple-Read
// interconnects as well; this tool compares handshake against the
// reservation (circuit-setup-style) baseline on an SWMR ring, and runs the
// auxiliary extension studies (ring-size scaling, multi-flit messages).
//
// Examples:
//
//	swmrsim                 # the SWMR latency sweep
//	swmrsim -scaling        # ring-size scaling study
//	swmrsim -multiflit      # multi-flit message study
package main

import (
	"flag"
	"fmt"
	"os"

	"photon/internal/core"
	"photon/internal/exp"
)

func main() {
	var (
		scaling   = flag.Bool("scaling", false, "run the ring-size scaling study")
		multiflit = flag.Bool("multiflit", false, "run the multi-flit message study")
		meshcmp   = flag.Bool("mesh", false, "compare against the electrical 2D-mesh baseline (the paper's §I motivation)")
		rate      = flag.Float64("rate", 0.05, "message rate for -multiflit")
		quick     = flag.Bool("quick", false, "shorter windows")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	opts.Seed = *seed

	switch {
	case *meshcmp:
		_, t, err := exp.MeshCompare(nil, opts)
		if err != nil {
			fatal(err)
		}
		must(t.WriteText(os.Stdout))
	case *scaling:
		_, t, err := exp.ScalingStudy(opts)
		if err != nil {
			fatal(err)
		}
		must(t.WriteText(os.Stdout))
	case *multiflit:
		_, t, err := exp.MultiFlitStudy(core.DHSSetaside, *rate, opts)
		if err != nil {
			fatal(err)
		}
		must(t.WriteText(os.Stdout))
	default:
		_, t, err := exp.SWMRStudy(nil, opts)
		if err != nil {
			fatal(err)
		}
		must(t.WriteText(os.Stdout))
		fmt.Println("\nReservation pays a notification round trip before every packet and")
		fmt.Println("serialises per node; handshake sends immediately and absorbs receiver")
		fmt.Println("contention with NACK/retransmit — the paper's argument, on SWMR.")
	}
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swmrsim:", err)
	os.Exit(1)
}
