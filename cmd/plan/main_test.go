package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"photon/internal/core"
)

// TestRunValidation: flag combinations that must be rejected, with the
// error naming the problem.
func TestRunValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     planConfig
		wantErr string
	}{
		{"unknown scheme", planConfig{scheme: "warp-drive", budget: 15}, "unknown scheme"},
		{"unknown scheme no budget", planConfig{scheme: "nope"}, "unknown scheme"},
		{"negative budget", planConfig{scheme: "dhs", budget: -3}, "budget must be positive"},
		{"p99 without budget", planConfig{p99: true}, "-p99 needs a -budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(&out, tc.cfg)
			if err == nil {
				t.Fatalf("run(%+v) succeeded, want error containing %q", tc.cfg, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%+v) error %q, want it to contain %q", tc.cfg, err, tc.wantErr)
			}
		})
	}
}

// TestRunProfile: with no budget, run prints the per-scheme capacity
// profile without simulating anything.
func TestRunProfile(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, planConfig{}); err != nil {
		t.Fatal(err)
	}
	for _, s := range core.Schemes() {
		if !strings.Contains(out.String(), s.String()) {
			t.Errorf("profile output missing scheme %s:\n%s", s, out.String())
		}
	}
}

// TestRunProfileJSONRoundTrip: -json profile output parses back into the
// Profile rows with sane values.
func TestRunProfileJSONRoundTrip(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, planConfig{jsonOut: true}); err != nil {
		t.Fatal(err)
	}
	var rows []Profile
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("profile JSON does not parse: %v\n%s", err, out.String())
	}
	if len(rows) != len(core.Schemes()) {
		t.Fatalf("profile has %d rows, want %d", len(rows), len(core.Schemes()))
	}
	for _, r := range rows {
		if r.SaturationRate <= 0 || r.SaturationRate >= 1 {
			t.Errorf("%s: saturation rate %.4f outside (0, 1)", r.Scheme, r.SaturationRate)
		}
		if r.EnvelopeRate >= r.SaturationRate {
			t.Errorf("%s: envelope rate %.4f not below saturation %.4f", r.Scheme, r.EnvelopeRate, r.SaturationRate)
		}
	}
}

// TestRunBudgetJSONRoundTrip: a binding budget answered in closed form
// round-trips through -json with the documented fields, and stays inside
// the budget. noRefine keeps the test simulation-free even if a scheme's
// answer diverges.
func TestRunBudgetJSONRoundTrip(t *testing.T) {
	var out bytes.Buffer
	cfg := planConfig{budget: 15, jsonOut: true, noRefine: true, seed: 1}
	if err := run(&out, cfg); err != nil {
		t.Fatal(err)
	}
	var answers []Answer
	if err := json.Unmarshal(out.Bytes(), &answers); err != nil {
		t.Fatalf("answer JSON does not parse: %v\n%s", err, out.String())
	}
	if len(answers) != len(core.Schemes()) {
		t.Fatalf("%d answers, want %d", len(answers), len(core.Schemes()))
	}
	for _, a := range answers {
		if a.Metric != "mean" || a.Budget != 15 {
			t.Errorf("%s: metric/budget %q/%.1f, want mean/15", a.Scheme, a.Metric, a.Budget)
		}
		if a.Rate < 0 || a.Rate > a.SaturationRate {
			t.Errorf("%s: rate %.4f outside [0, sat %.4f]", a.Scheme, a.Rate, a.SaturationRate)
		}
		switch a.Source {
		case "twin":
			if a.Latency > a.Budget+1e-6 {
				t.Errorf("%s: closed-form answer latency %.2f exceeds budget", a.Scheme, a.Latency)
			}
		case "twin-capped":
			if !a.Diverged {
				t.Errorf("%s: capped answer must carry the divergence flag", a.Scheme)
			}
		default:
			t.Errorf("%s: source %q impossible under noRefine", a.Scheme, a.Source)
		}
	}
}

// TestRunSingleScheme: -scheme restricts the answer set, and the text
// table carries the source column.
func TestRunSingleScheme(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, planConfig{scheme: "ghs", budget: 20, noRefine: true, seed: 1}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "ghs") || strings.Contains(got, "dhs-setaside") {
		t.Errorf("-scheme ghs output wrong schemes:\n%s", got)
	}
	if !strings.Contains(got, "twin") {
		t.Errorf("output missing the answer source:\n%s", got)
	}
}

// TestRunRefineDivergent: a loose budget forces the divergence fallback;
// with quick windows the refinement must answer with a simulated rate at
// or above the envelope edge and mark the source.
func TestRunRefineDivergent(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation refinement in -short mode")
	}
	var out bytes.Buffer
	cfg := planConfig{scheme: "dhs", budget: 200, jsonOut: true, quick: true, seed: 1}
	if err := run(&out, cfg); err != nil {
		t.Fatal(err)
	}
	var answers []Answer
	if err := json.Unmarshal(out.Bytes(), &answers); err != nil {
		t.Fatalf("refined JSON does not parse: %v\n%s", err, out.String())
	}
	if len(answers) != 1 {
		t.Fatalf("%d answers, want 1", len(answers))
	}
	a := answers[0]
	if a.Source != "twin+sim" {
		t.Fatalf("loose budget source %q, want twin+sim", a.Source)
	}
	if a.Utilization < 0.7 {
		t.Errorf("refined utilization %.2f below the envelope edge — refinement should only run past it", a.Utilization)
	}
}
