// Command plan answers capacity questions from the analytical twin
// without running a sweep: "what offered load can the configured network
// sustain under scheme X within a latency budget?"
//
// The twin (internal/twin) is inverted by bisection. When the answer
// lands outside the twin's validity envelope — the twin self-reports
// divergence above utilization 0.7 — plan refines it with a short
// farm-supervised simulation probe over candidate rates near saturation;
// below the envelope the answer is closed-form and instant.
//
// Examples:
//
//	plan                               # per-scheme capacity profile (no sim)
//	plan -scheme dhs -budget 15        # max load with mean latency <= 15 cycles
//	plan -scheme dhs -budget 40 -p99   # same, against the p99 estimate
//	plan -budget 20 -json              # every scheme, machine-readable
//	plan -scheme ghs -budget 500       # loose budget: refined by simulation
//	plan -scheme ghs -budget 500 -no-refine   # twin envelope edge, no sim
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"photon/internal/core"
	"photon/internal/exp"
	"photon/internal/farm"
	"photon/internal/stats"
	"photon/internal/traffic"
	"photon/internal/twin"
)

func main() {
	var cfg planConfig
	flag.StringVar(&cfg.scheme, "scheme", "", "scheme to plan for (default: all registered schemes)")
	flag.Float64Var(&cfg.budget, "budget", 0, "latency budget in cycles (0: print the capacity profile instead)")
	flag.BoolVar(&cfg.p99, "p99", false, "budget the twin's p99 estimate instead of the mean")
	flag.BoolVar(&cfg.quick, "quick", false, "shorter simulation windows for the divergence-regime refinement")
	flag.BoolVar(&cfg.noRefine, "no-refine", false, "never simulate: report the twin's envelope-capped answer as-is")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit machine-readable JSON")
	flag.Uint64Var(&cfg.seed, "seed", 1, "seed for the refinement simulations")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "plan:", err)
		os.Exit(1)
	}
}

type planConfig struct {
	scheme   string
	budget   float64
	p99      bool
	quick    bool
	noRefine bool
	jsonOut  bool
	seed     uint64
}

// Answer is one scheme's capacity answer (the -json document row).
type Answer struct {
	Scheme string `json:"scheme"`
	Family string `json:"family"`
	Metric string `json:"metric"` // "mean" or "p99"
	Budget float64 `json:"budget"`
	// Rate is the highest sustainable offered load (packets/cycle/core)
	// within the budget.
	Rate        float64 `json:"rate"`
	Utilization float64 `json:"utilization"`
	// Latency is the predicted (or, when refined, measured) value of the
	// budgeted metric at Rate.
	Latency float64 `json:"latency"`
	// SaturationRate is the twin's saturation estimate.
	SaturationRate float64 `json:"saturation_rate"`
	// Source is "twin" for a closed-form answer, "twin+sim" when the
	// divergence fallback refined it by simulation, "twin-capped" when
	// refinement was disabled and the answer is the envelope edge.
	Source string `json:"source"`
	// Diverged reports that the twin flagged the answer's operating point
	// as outside its validity envelope.
	Diverged bool `json:"diverged"`
}

// Profile is one scheme's budget-free capacity profile row.
type Profile struct {
	Scheme         string  `json:"scheme"`
	Family         string  `json:"family"`
	SaturationRate float64 `json:"saturation_rate"`
	ZeroLoadMean   float64 `json:"zero_load_mean"`
	// EnvelopeRate is the highest rate the twin answers in closed form
	// (the divergence threshold times the saturation estimate).
	EnvelopeRate float64 `json:"envelope_rate"`
}

func run(out io.Writer, cfg planConfig) error {
	schemes := core.Schemes()
	if cfg.scheme != "" {
		s, err := core.ParseScheme(cfg.scheme)
		if err != nil {
			return err
		}
		schemes = []core.Scheme{s}
	}
	if cfg.budget < 0 {
		return fmt.Errorf("budget must be positive, got %g", cfg.budget)
	}
	if cfg.budget == 0 && cfg.p99 {
		return fmt.Errorf("-p99 needs a -budget to compare against")
	}

	if cfg.budget == 0 {
		return profile(out, schemes, cfg.jsonOut)
	}

	var answers []Answer
	for _, s := range schemes {
		a, err := answer(s, cfg)
		if err != nil {
			return err
		}
		answers = append(answers, a)
	}
	if len(answers) > 1 {
		sortAnswers(answers) // the "which scheme for this SLO" ranking
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(answers)
	}
	metric := "mean"
	if cfg.p99 {
		metric = "p99"
	}
	t := stats.NewTable(fmt.Sprintf("capacity at %s latency <= %.1f cycles", metric, cfg.budget),
		"scheme", "family", "rate", "util", metric, "sat-rate", "source")
	for _, a := range answers {
		t.AddRow(a.Scheme, a.Family,
			fmt.Sprintf("%.4f", a.Rate),
			fmt.Sprintf("%.2f", a.Utilization),
			fmt.Sprintf("%.1f", a.Latency),
			fmt.Sprintf("%.4f", a.SaturationRate),
			a.Source)
	}
	return t.WriteText(out)
}

// profile prints the budget-free capacity profile straight off the twin.
func profile(out io.Writer, schemes []core.Scheme, jsonOut bool) error {
	var rows []Profile
	for _, s := range schemes {
		m, err := twin.NewDefault(s)
		if err != nil {
			return err
		}
		rows = append(rows, Profile{
			Scheme:         s.String(),
			Family:         m.Family(),
			SaturationRate: m.SaturationRate(),
			ZeroLoadMean:   m.ZeroLoadLatency(),
			EnvelopeRate:   twin.DivergenceUtilization * m.SaturationRate(),
		})
	}
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	t := stats.NewTable("analytical twin capacity profile (packets/cycle/core)",
		"scheme", "family", "sat-rate", "zero-load-mean", "closed-form-up-to")
	for _, r := range rows {
		t.AddRow(r.Scheme, r.Family,
			fmt.Sprintf("%.4f", r.SaturationRate),
			fmt.Sprintf("%.1f", r.ZeroLoadMean),
			fmt.Sprintf("%.4f", r.EnvelopeRate))
	}
	return t.WriteText(out)
}

// answer resolves one scheme's capacity query: twin bisection first,
// simulation refinement only in the self-reported divergence regime.
func answer(s core.Scheme, cfg planConfig) (Answer, error) {
	m, err := twin.NewDefault(s)
	if err != nil {
		return Answer{}, err
	}
	metric := "mean"
	if cfg.p99 {
		metric = "p99"
	}
	res := m.CapacityFor(cfg.budget, cfg.p99)
	a := Answer{
		Scheme:         s.String(),
		Family:         m.Family(),
		Metric:         metric,
		Budget:         cfg.budget,
		Rate:           res.Rate,
		Utilization:    res.Utilization,
		Latency:        metricOf(res.Prediction, cfg.p99),
		SaturationRate: m.SaturationRate(),
		Source:         "twin",
		Diverged:       res.Prediction.Diverged,
	}
	if !res.Prediction.Diverged {
		return a, nil
	}
	if cfg.noRefine {
		a.Source = "twin-capped"
		return a, nil
	}
	rate, latency, ok, err := refine(s, m, cfg)
	if err != nil {
		return Answer{}, err
	}
	a.Source = "twin+sim"
	if ok {
		a.Rate = rate
		a.Latency = latency
		a.Utilization = rate / m.SaturationRate()
	} else {
		// No probed rate sustains the budget: fall back to the envelope
		// edge, the highest closed-form answer known to satisfy it.
		edge := twin.DivergenceUtilization * m.SaturationRate()
		p := m.Predict(edge)
		a.Rate, a.Utilization, a.Latency, a.Diverged = edge, p.Utilization, metricOf(p, cfg.p99), false
	}
	return a, nil
}

func metricOf(p twin.Prediction, p99 bool) float64 {
	if p99 {
		return p.P99
	}
	return p.Mean
}

// refine probes the divergence regime with short supervised simulations:
// candidate rates from the envelope edge to 10% past the twin's
// saturation estimate, in parallel under farm.Do, keeping the highest
// rate that sustains its offered load (throughput within 3%) and meets
// the budget on the *measured* metric.
func refine(s core.Scheme, m *twin.Model, cfg planConfig) (rate, latency float64, ok bool, err error) {
	opts := exp.DefaultOptions()
	if cfg.quick {
		opts = exp.QuickOptions()
	}
	opts.Seed = cfg.seed

	lo := twin.DivergenceUtilization * m.SaturationRate()
	hi := 1.1 * m.SaturationRate()
	const probes = 8
	rates := make([]float64, probes)
	for i := range rates {
		rates[i] = lo + (hi-lo)*float64(i+1)/probes
	}
	type probe struct {
		res core.Result
		err error
	}
	results := make([]probe, probes)
	errs := farm.Do(probes, opts.Parallel, func(i int) error {
		res, err := exp.SafeRunPoint(exp.Point{Scheme: s, Pattern: traffic.UniformRandom{}, Rate: rates[i]}, opts)
		results[i] = probe{res: res, err: err}
		return err
	})
	for i, e := range errs {
		if e != nil {
			return 0, 0, false, fmt.Errorf("refining %s at %.4f: %w", s, rates[i], e)
		}
	}
	best := -1
	for i, p := range results {
		met := p.res.AvgLatency
		if cfg.p99 {
			met = float64(p.res.P99Latency)
		}
		if p.res.Throughput >= 0.97*rates[i] && met <= cfg.budget {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false, nil
	}
	met := results[best].res.AvgLatency
	if cfg.p99 {
		met = float64(results[best].res.P99Latency)
	}
	return rates[best], met, true, nil
}

// sortAnswers orders answers by sustainable rate, highest first — the
// "which scheme should I deploy for this SLO" view.
func sortAnswers(answers []Answer) {
	sort.SliceStable(answers, func(i, j int) bool { return answers[i].Rate > answers[j].Rate })
}
