// Command sweep regenerates the paper's latency-vs-load figures and the
// headline synthetic-workload claims.
//
// Examples:
//
//	sweep -fig 2b              # Fig 2(b): token slot by credit count
//	sweep -fig 8 -pattern BC   # Fig 8: global group on Bit Complement
//	sweep -fig 9 -pattern UR   # Fig 9: distributed group on Uniform Random
//	sweep -fig 11              # Fig 11(a)-(e): credit sensitivity
//	sweep -fig 11f             # Fig 11(f): setaside size study
//	sweep -claims              # up-to-62% throughput / sub-1% drop claims
//	sweep -fig 8 -quick -csv   # fast grid, CSV output
//
// Serving workloads: -workload runs a named preset (bursty, flash,
// diurnal) or a raw workload spec (see traffic.ParseWorkload for the
// grammar) under every scheme and reports per-phase p50/p99/p999 latency
// from exact span attribution:
//
//	sweep -workload bursty -quick
//	sweep -workload "0.5@bernoulli(rate=0.05);0.5@burst(rate=0.3,on=400,off=1200)"
//	sweep -farm slo -quick     # the preset x scheme grid under the farm
//
// Fault-tolerant regeneration: -farm runs a named point grid under the
// supervised sweep farm — a durable manifest journals every completed
// point, so a killed run resumes where it left off, and a poison point
// is retried with backoff then quarantined instead of wedging the grid:
//
//	sweep -farm figures -quick -manifest run.jsonl   # full quick grid, journalled
//	sweep -farm figures -quick -manifest run.jsonl -resume   # pick up after a crash
//	sweep -farm fig8:UR -farm-shards                 # one subprocess per point
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"photon/internal/core"
	"photon/internal/exp"
	"photon/internal/farm"
	"photon/internal/router"
	"photon/internal/stats"
	"photon/internal/traffic"
	"photon/internal/viz"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure to regenerate: 2b, 8, 9, 11, 11f")
		pattern = flag.String("pattern", "UR", "pattern for figures 8/9 and -workload: UR, BC, TOR")
		claims  = flag.Bool("claims", false, "measure the headline throughput/drop-rate claims on all three patterns")
		fair    = flag.Bool("fairness", false, "run the §III-D fairness study (service share by ring position)")
		brk     = flag.Float64("breakdown", 0, "exact per-phase latency attribution at this UR load (legacy averages and the analytical twin's prediction print as cross-checks)")
		quick    = flag.Bool("quick", false, "reduced load grid and shorter windows")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		plot     = flag.Bool("plot", false, "also render an ASCII chart (latency clipped at 100 cycles, like the paper's axes)")
		seed     = flag.Uint64("seed", 1, "random seed")
		workload = flag.String("workload", "", "run a preset workload (bursty, flash, diurnal) or raw workload spec under every scheme, reporting per-phase p50/p99/p999")

		farmGridFlag = flag.String("farm", "", "run a named point grid under the supervised sweep farm: "+strings.Join(append(exp.FigureGridNames(), exp.WorkloadGridNames()...), ", "))
		manifest     = flag.String("manifest", "", "journal farm progress to this file (crash-safe JSONL)")
		resume       = flag.Bool("resume", false, "resume a farm run from its manifest, skipping completed points")
		maxAttempts  = flag.Int("max-attempts", 3, "farm: attempts per point before quarantine")
		farmWorkers  = flag.Int("farm-workers", 0, "farm: concurrent workers (0 = GOMAXPROCS)")
		farmShards   = flag.Bool("farm-shards", false, "farm: run each point in its own subprocess (OS-level isolation)")
		farmTimeout  = flag.Duration("farm-timeout", 0, "farm: per-point deadline (0 = none)")
		fsync        = flag.Bool("fsync", false, "farm: fsync the manifest after every record")

		// Hidden worker mode: the supervisor re-invokes this binary as
		// `sweep -farm-worker -farm-grid <name> -farm-point <i> [...]`.
		workerMode  = flag.Bool("farm-worker", false, "internal: run one farm point and print its result line")
		workerGrid  = flag.String("farm-grid", "", "internal: grid name for -farm-worker")
		workerPoint = flag.Int("farm-point", -1, "internal: point index for -farm-worker")
	)
	flag.Parse()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	opts.Seed = *seed

	if *workerMode {
		if err := farm.RunWorker(os.Stdout, *workerGrid, *workerPoint, opts); err != nil {
			fatal(err)
		}
		return
	}
	if *farmGridFlag != "" {
		if err := runFarm(*farmGridFlag, opts, farmFlags{
			manifest: *manifest, resume: *resume, maxAttempts: *maxAttempts,
			workers: *farmWorkers, shards: *farmShards, timeout: *farmTimeout,
			fsync: *fsync, quick: *quick, seed: *seed, csv: *csv,
		}); err != nil {
			fatal(err)
		}
		return
	}

	emit := func(t *stats.Table) {
		var err error
		if *csv {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.WriteText(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	emitPlot := func(title string, curves []exp.Curve) {
		if !*plot {
			return
		}
		chart := &viz.Chart{Title: title, XLabel: "packets/cycle/core", YLabel: "latency (cycles)", YCap: 100}
		for _, c := range curves {
			chart.Add(c.Label, c.Loads, c.Latency)
		}
		if err := chart.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	switch {
	case *workload != "":
		pat, err := traffic.ByName(*pattern)
		if err != nil {
			fatal(err)
		}
		_, t, err := exp.WorkloadSweep(*workload, pat, opts)
		if err != nil {
			fatal(err)
		}
		emit(t)
	case *brk > 0:
		// Exact per-packet attribution from the protocol event tap; the
		// legacy whole-run-average decomposition prints after it as a
		// cross-check (its flight+eject column mixes populations — see
		// exp.ExactBreakdown).
		_, t, err := exp.ExactBreakdown(*brk, opts)
		if err != nil {
			fatal(err)
		}
		emit(t)
		_, lt, err := exp.LatencyBreakdown(*brk, opts)
		if err != nil {
			fatal(err)
		}
		emit(lt)
	case *fair:
		// The fairness study targets the non-blocking handshake variants
		// (setaside and circulation) — the schemes whose senders keep
		// injecting past an un-ACKed packet and so can starve far nodes.
		var fairSchemes []core.Scheme
		for _, s := range core.Schemes() {
			if !s.CreditBased() && s.SendPolicy() != router.HoldHead {
				fairSchemes = append(fairSchemes, s)
			}
		}
		for _, s := range fairSchemes {
			_, t, err := exp.FairnessStudy(s, opts)
			if err != nil {
				fatal(err)
			}
			emit(t)
		}
	case *claims:
		for _, pat := range []string{"UR", "BC", "TOR"} {
			c, err := exp.Claims(pat, opts)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s: global group: Token Channel %.4f -> best GHS %.4f (%+.0f%%); ",
				pat, c.GlobalBaseline, c.GlobalHandshake, c.GlobalGainPct)
			fmt.Printf("distributed group: Token Slot %.4f -> best DHS %.4f (%+.0f%%)\n",
				c.DistBaseline, c.DistHandshake, c.DistGainPct)
			fmt.Printf("%s: worst handshake rates: drop %.4f%%, retransmit %.4f%%, circulation %.4f%%\n",
				pat, 100*c.MaxDropRate, 100*c.MaxRetxRate, 100*c.MaxCirculateRate)
		}
	case *fig == "2b":
		curves, t, err := exp.Fig2b(opts)
		if err != nil {
			fatal(err)
		}
		emit(t)
		emitPlot(t.Title, curves)
	case *fig == "8":
		curves, t, err := exp.Fig8(*pattern, opts)
		if err != nil {
			fatal(err)
		}
		emit(t)
		emitPlot(t.Title, curves)
	case *fig == "9":
		curves, t, err := exp.Fig9(*pattern, opts)
		if err != nil {
			fatal(err)
		}
		emit(t)
		emitPlot(t.Title, curves)
	case *fig == "11":
		// Figure 11 panels (a)-(e): one per handshake-family scheme —
		// everything the registry holds except the credit baselines.
		var handshakes []core.Scheme
		for _, s := range core.Schemes() {
			if !s.CreditBased() {
				handshakes = append(handshakes, s)
			}
		}
		for _, s := range handshakes {
			curves, t, err := exp.Fig11(s, opts)
			if err != nil {
				fatal(err)
			}
			emit(t)
			emitPlot(t.Title, curves)
		}
	case *fig == "11f":
		_, t, err := exp.Fig11f(opts)
		if err != nil {
			fatal(err)
		}
		emit(t)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

type farmFlags struct {
	manifest    string
	resume      bool
	maxAttempts int
	workers     int
	shards      bool
	timeout     time.Duration
	fsync       bool
	quick       bool
	seed        uint64
	csv         bool
}

// runFarm executes a named grid under the supervised farm and renders
// the per-point summaries, the merged grid digest, and any quarantine
// report. Exit status 1 signals an incomplete (quarantined) grid.
func runFarm(gridName string, opts exp.Options, ff farmFlags) error {
	g, err := farm.Build(gridName, opts)
	if err != nil {
		return err
	}
	cfg := farm.Config{
		Workers:      ff.workers,
		MaxAttempts:  ff.maxAttempts,
		PointTimeout: ff.timeout,
		Manifest:     ff.manifest,
		Resume:       ff.resume,
		Sync:         ff.fsync,
	}
	if ff.shards {
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("sweep: resolving own binary for shards: %w", err)
		}
		extra := []string{"-seed", fmt.Sprint(ff.seed)}
		if ff.quick {
			extra = append(extra, "-quick")
		}
		cfg.Exec = farm.SelfExec(self, extra...)
	}
	start := time.Now()
	rep, err := farm.Run(g, cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	t := stats.NewTable(fmt.Sprintf("farm grid %s (%d points)", g.Name, len(g.Points)),
		"point", "status", "attempts", "resumed", "avg-lat", "throughput", "digest")
	for _, p := range rep.Points {
		lat, tput, digest := "-", "-", "-"
		if p.Status == farm.StatusDone {
			lat = fmt.Sprintf("%.1f", p.Summary.AvgLatency)
			tput = fmt.Sprintf("%.4f", p.Summary.Throughput)
			digest = fmt.Sprintf("%016x", p.Digest)
		}
		resumed := ""
		if p.Resumed {
			resumed = "yes"
		}
		t.AddRow(p.Key, string(p.Status), p.Attempts, resumed, lat, tput, digest)
	}
	if ff.csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.WriteText(os.Stdout)
	}
	if err != nil {
		return err
	}
	fmt.Printf("\nfarm: %d ran, %d resumed in %.1fs; grid digest %016x\n",
		rep.Ran, rep.Resumed, elapsed.Seconds(), rep.GridDigest())
	if q := rep.Quarantined(); len(q) > 0 {
		for _, p := range q {
			fmt.Fprintf(os.Stderr, "sweep: quarantined %s after %d attempts: %s\n", p.Key, p.Attempts, p.LastError)
		}
		os.Exit(1)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
