// Command sweep regenerates the paper's latency-vs-load figures and the
// headline synthetic-workload claims.
//
// Examples:
//
//	sweep -fig 2b              # Fig 2(b): token slot by credit count
//	sweep -fig 8 -pattern BC   # Fig 8: global group on Bit Complement
//	sweep -fig 9 -pattern UR   # Fig 9: distributed group on Uniform Random
//	sweep -fig 11              # Fig 11(a)-(e): credit sensitivity
//	sweep -fig 11f             # Fig 11(f): setaside size study
//	sweep -claims              # up-to-62% throughput / sub-1% drop claims
//	sweep -fig 8 -quick -csv   # fast grid, CSV output
package main

import (
	"flag"
	"fmt"
	"os"

	"photon/internal/core"
	"photon/internal/exp"
	"photon/internal/router"
	"photon/internal/stats"
	"photon/internal/viz"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure to regenerate: 2b, 8, 9, 11, 11f")
		pattern = flag.String("pattern", "UR", "pattern for figures 8/9: UR, BC, TOR")
		claims  = flag.Bool("claims", false, "measure the headline throughput/drop-rate claims on all three patterns")
		fair    = flag.Bool("fairness", false, "run the §III-D fairness study (service share by ring position)")
		brk     = flag.Float64("breakdown", 0, "exact per-phase latency attribution at this UR load (legacy averages print as cross-check)")
		quick   = flag.Bool("quick", false, "reduced load grid and shorter windows")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		plot    = flag.Bool("plot", false, "also render an ASCII chart (latency clipped at 100 cycles, like the paper's axes)")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	opts.Seed = *seed

	emit := func(t *stats.Table) {
		var err error
		if *csv {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.WriteText(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	emitPlot := func(title string, curves []exp.Curve) {
		if !*plot {
			return
		}
		chart := &viz.Chart{Title: title, XLabel: "packets/cycle/core", YLabel: "latency (cycles)", YCap: 100}
		for _, c := range curves {
			chart.Add(c.Label, c.Loads, c.Latency)
		}
		if err := chart.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	switch {
	case *brk > 0:
		// Exact per-packet attribution from the protocol event tap; the
		// legacy whole-run-average decomposition prints after it as a
		// cross-check (its flight+eject column mixes populations — see
		// exp.ExactBreakdown).
		_, t, err := exp.ExactBreakdown(*brk, opts)
		if err != nil {
			fatal(err)
		}
		emit(t)
		_, lt, err := exp.LatencyBreakdown(*brk, opts)
		if err != nil {
			fatal(err)
		}
		emit(lt)
	case *fair:
		// The fairness study targets the non-blocking handshake variants
		// (setaside and circulation) — the schemes whose senders keep
		// injecting past an un-ACKed packet and so can starve far nodes.
		var fairSchemes []core.Scheme
		for _, s := range core.Schemes() {
			if !s.CreditBased() && s.SendPolicy() != router.HoldHead {
				fairSchemes = append(fairSchemes, s)
			}
		}
		for _, s := range fairSchemes {
			_, t, err := exp.FairnessStudy(s, opts)
			if err != nil {
				fatal(err)
			}
			emit(t)
		}
	case *claims:
		for _, pat := range []string{"UR", "BC", "TOR"} {
			c, err := exp.Claims(pat, opts)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s: global group: Token Channel %.4f -> best GHS %.4f (%+.0f%%); ",
				pat, c.GlobalBaseline, c.GlobalHandshake, c.GlobalGainPct)
			fmt.Printf("distributed group: Token Slot %.4f -> best DHS %.4f (%+.0f%%)\n",
				c.DistBaseline, c.DistHandshake, c.DistGainPct)
			fmt.Printf("%s: worst handshake rates: drop %.4f%%, retransmit %.4f%%, circulation %.4f%%\n",
				pat, 100*c.MaxDropRate, 100*c.MaxRetxRate, 100*c.MaxCirculateRate)
		}
	case *fig == "2b":
		curves, t, err := exp.Fig2b(opts)
		if err != nil {
			fatal(err)
		}
		emit(t)
		emitPlot(t.Title, curves)
	case *fig == "8":
		curves, t, err := exp.Fig8(*pattern, opts)
		if err != nil {
			fatal(err)
		}
		emit(t)
		emitPlot(t.Title, curves)
	case *fig == "9":
		curves, t, err := exp.Fig9(*pattern, opts)
		if err != nil {
			fatal(err)
		}
		emit(t)
		emitPlot(t.Title, curves)
	case *fig == "11":
		// Figure 11 panels (a)-(e): one per handshake-family scheme —
		// everything the registry holds except the credit baselines.
		var handshakes []core.Scheme
		for _, s := range core.Schemes() {
			if !s.CreditBased() {
				handshakes = append(handshakes, s)
			}
		}
		for _, s := range handshakes {
			curves, t, err := exp.Fig11(s, opts)
			if err != nil {
				fatal(err)
			}
			emit(t)
			emitPlot(t.Title, curves)
		}
	case *fig == "11f":
		_, t, err := exp.Fig11f(opts)
		if err != nil {
			fatal(err)
		}
		emit(t)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
