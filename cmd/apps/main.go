// Command apps regenerates the application-trace experiments: Figure 10
// (communication latency of 13 benchmarks under every scheme) and the
// §V-B IPC study (closed-loop CMP with 4 MSHRs per core). It can also
// synthesise and save traces for external use.
//
// Examples:
//
//	apps -fig10                 # both Figure 10 groups
//	apps -ipc                   # GHS+SB vs Token Channel and DHS+SB vs Token Slot
//	apps -gen nas-cg -o cg.phtr # write a binary trace
//	apps -dump cg.phtr          # print a trace's header and rate
package main

import (
	"flag"
	"fmt"
	"os"

	"photon/internal/core"
	"photon/internal/exp"
	"photon/internal/trace"
)

func main() {
	var (
		fig10   = flag.Bool("fig10", false, "regenerate Figure 10 (application latency)")
		ipc     = flag.Bool("ipc", false, "run the closed-loop IPC study")
		gen     = flag.String("gen", "", "synthesise a trace for the named app")
		out     = flag.String("o", "trace.phtr", "output path for -gen")
		dump    = flag.String("dump", "", "print the header of a binary trace file")
		analyze = flag.Bool("analyze", false, "print workload-character analysis for all 13 benchmark traces")
		cycles  = flag.Int64("cycles", 30_000, "trace span in cycles for -gen")
		quick   = flag.Bool("quick", false, "shorter runs")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	opts.Seed = *seed

	switch {
	case *analyze:
		cfg := core.DefaultConfig(core.DHSSetaside)
		var analyses []trace.Analysis
		for _, app := range trace.Apps() {
			tr := app.Synthesize(cfg.Cores(), cfg.Nodes, *cycles, *seed)
			analyses = append(analyses, trace.Analyze(tr))
		}
		must(trace.AnalysisTable(analyses).WriteText(os.Stdout))
	case *fig10:
		global, distributed, ta, tb, err := exp.Fig10(opts)
		if err != nil {
			fatal(err)
		}
		must(ta.WriteText(os.Stdout))
		fmt.Println()
		must(tb.WriteText(os.Stdout))
		fmt.Println()
		avg, max := exp.LatencyReduction(global, core.TokenChannel, core.GHSSetaside)
		fmt.Printf("GHS w/ Setaside vs Token Channel: avg latency reduction %.0f%%, max %.0f%%\n", avg, max)
		avg, max = exp.LatencyReduction(global, core.TokenChannel, core.GHS)
		fmt.Printf("GHS (basic)     vs Token Channel: avg latency reduction %.0f%%, max %.0f%%\n", avg, max)
		avg, max = exp.LatencyReduction(distributed, core.TokenSlot, core.DHSSetaside)
		fmt.Printf("DHS w/ Setaside vs Token Slot:    avg latency reduction %.0f%%, max %.0f%%\n", avg, max)
		avg, max = exp.LatencyReduction(distributed, core.TokenSlot, core.DHSCirculation)
		fmt.Printf("DHS w/ Circul.  vs Token Slot:    avg latency reduction %.0f%%, max %.0f%%\n", avg, max)
	case *ipc:
		rows, t, err := exp.IPCStudy(core.TokenChannel, core.GHSSetaside, opts)
		if err != nil {
			fatal(err)
		}
		must(t.WriteText(os.Stdout))
		fmt.Printf("mean IPC gain: %+.1f%%\n\n", exp.MeanIPCGain(rows))
		rows, t, err = exp.IPCStudy(core.TokenSlot, core.DHSSetaside, opts)
		if err != nil {
			fatal(err)
		}
		must(t.WriteText(os.Stdout))
		fmt.Printf("mean IPC gain: %+.1f%%\n", exp.MeanIPCGain(rows))
	case *gen != "":
		app, err := trace.AppByName(*gen)
		if err != nil {
			fatal(err)
		}
		cfg := core.DefaultConfig(core.DHSSetaside)
		tr := app.Synthesize(cfg.Cores(), cfg.Nodes, *cycles, *seed)
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		must(tr.WriteBinary(f))
		fmt.Printf("wrote %s: %d records over %d cycles (%.5f pkt/cycle/core)\n",
			*out, len(tr.Records), tr.Cycles, tr.Rate())
	case *dump != "":
		f, err := os.Open(*dump)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.ReadBinary(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("app=%s cores=%d nodes=%d cycles=%d records=%d rate=%.5f\n",
			tr.App, tr.Cores, tr.Nodes, tr.Cycles, len(tr.Records), tr.Rate())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apps:", err)
	os.Exit(1)
}
