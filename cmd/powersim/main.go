// Command powersim regenerates the hardware-cost and power experiments:
// Table I (optical component budgets) and Figure 12 (power breakdown and
// energy per packet, from live simulations feeding the analytical model).
//
// Examples:
//
//	powersim -table 1
//	powersim -fig 12a
//	powersim -fig 12b -load 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"photon/internal/exp"
	"photon/internal/phys"
)

func main() {
	var (
		table       = flag.Int("table", 0, "table to regenerate (1)")
		fig         = flag.String("fig", "", "figure to regenerate: 12a, 12b")
		load        = flag.Float64("load", 0.11, "UR operating point in packets/cycle/core for figure 12")
		wavelengths = flag.Bool("wavelengths", false, "print each scheme's DWDM wavelength allocation plan summary")
		quick       = flag.Bool("quick", false, "shorter simulation windows")
		seed        = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	opts.Seed = *seed

	switch {
	case *wavelengths:
		shape := phys.DefaultShape()
		for _, hw := range phys.StandardSchemes() {
			plan, err := phys.PlanWavelengths(shape, hw)
			if err != nil {
				fatal(err)
			}
			if err := plan.Validate(); err != nil {
				fatal(err)
			}
			c := plan.CountByUse()
			fmt.Printf("%-12s %4d waveguides  (data %d, token %d, handshake %d wavelengths)\n",
				hw.Name, plan.Waveguides, c[phys.UseData], c[phys.UseToken], c[phys.UseHandshake])
		}
	case *table == 1:
		_, t := exp.Table1()
		must(t.WriteText(os.Stdout))
	case *fig == "12a" || *fig == "12b" || *fig == "12":
		_, ta, tb, err := exp.Fig12(*load, opts)
		if err != nil {
			fatal(err)
		}
		if *fig != "12b" {
			must(ta.WriteText(os.Stdout))
			fmt.Println()
		}
		if *fig != "12a" {
			must(tb.WriteText(os.Stdout))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "powersim:", err)
	os.Exit(1)
}
