package exp

import (
	"fmt"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/stats"
)

// FairnessRow is one ring-position bucket of the fairness study.
type FairnessRow struct {
	// OffsetBucket labels the downstream-offset range from the hot home.
	OffsetBucket string
	// SharePolicyOff/On are the bucket's fraction of total deliveries.
	SharePolicyOff float64
	SharePolicyOn  float64
}

// FairnessStudy quantifies §III-D: with setaside buffers removing the
// natural HOL throttling, senders near the home node can starve
// downstream senders; the fairness quota redistributes
// service. Every node saturates one hot destination and the study reports
// each ring-quadrant's share of delivered packets with the policy off and
// on, plus the count of fully starved sources.
func FairnessStudy(scheme core.Scheme, opts Options) ([]FairnessRow, *stats.Table, error) {
	if !scheme.Handshake() && !scheme.Circulating() {
		return nil, nil, fmt.Errorf("exp: fairness study targets the handshake schemes, not %v", scheme)
	}
	run := func(enabled bool) ([]int64, int, error) {
		cfg := core.DefaultConfig(scheme)
		cfg.Seed = opts.Seed
		cfg.Fairness.Enabled = enabled
		// Fairness-first setting: the quota floor drops to the egalitarian
		// share of a fully contended channel, trading a little saturation
		// throughput for zero starvation (the default floor of 16 is
		// throughput-first; BenchmarkAblationFairness quantifies the
		// tradeoff).
		cfg.Fairness.Quota = 4
		net, err := core.NewNetwork(cfg, opts.Window)
		if err != nil {
			return nil, 0, err
		}
		// Count deliveries by source as they happen after warmup — at a
		// saturating load, injection-window accounting would only see the
		// backlog, not the steady-state service distribution.
		shares := make([]int64, cfg.Nodes)
		w := net.Window()
		net.OnDeliver = func(p *router.Packet) {
			if net.Now() >= w.Warmup {
				shares[p.Src]++
			}
		}
		hot := 0
		for cyc := int64(0); cyc < w.Warmup+w.Measure; cyc++ {
			// Every non-home node offers 0.05 pkt/cycle at the hot home —
			// each sender's demand exceeds the fairness allowance, and the
			// aggregate (~3.2x capacity) makes unpoliced service collapse
			// onto the nodes nearest the home.
			for nd := 1; nd < cfg.Nodes; nd++ {
				if (cyc+int64(nd))%20 == 0 {
					net.Inject(nd*cfg.CoresPerNode, hot, router.ClassData, 0)
				}
			}
			net.Step()
		}
		starved := 0
		for nd := 1; nd < cfg.Nodes; nd++ {
			if shares[nd] == 0 {
				starved++
			}
		}
		return shares, starved, nil
	}

	offShares, offStarved, err := run(false)
	if err != nil {
		return nil, nil, err
	}
	onShares, onStarved, err := run(true)
	if err != nil {
		return nil, nil, err
	}

	nodes := len(offShares)
	quarter := nodes / 4
	bucket := func(shares []int64, lo, hi int) float64 {
		var part, total int64
		for i := 1; i < nodes; i++ {
			if i >= lo && i < hi {
				part += shares[i]
			}
			total += shares[i]
		}
		if total == 0 {
			return 0
		}
		return float64(part) / float64(total)
	}

	t := stats.NewTable(
		fmt.Sprintf("Fairness (§III-D): share of service by ring position, %s, hot-home saturation", scheme.PaperName()),
		"downstream offset", "share (policy off)", "share (policy on)")
	var rows []FairnessRow
	for q := 0; q < 4; q++ {
		lo, hi := q*quarter, (q+1)*quarter
		if q == 0 {
			lo = 1
		}
		label := fmt.Sprintf("%d..%d", lo, hi-1)
		row := FairnessRow{
			OffsetBucket:   label,
			SharePolicyOff: bucket(offShares, lo, hi),
			SharePolicyOn:  bucket(onShares, lo, hi),
		}
		rows = append(rows, row)
		t.AddRow(label, fmt.Sprintf("%.3f", row.SharePolicyOff), fmt.Sprintf("%.3f", row.SharePolicyOn))
	}
	t.AddRow("starved sources", fmt.Sprintf("%d", offStarved), fmt.Sprintf("%d", onStarved))
	return rows, t, nil
}
