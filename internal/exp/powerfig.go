package exp

import (
	"fmt"

	"photon/internal/core"
	"photon/internal/phys"
	"photon/internal/power"
	"photon/internal/stats"
	"photon/internal/traffic"
)

// Fig12Row is one scheme's power/energy evaluation.
type Fig12Row struct {
	Scheme         core.Scheme
	Breakdown      power.Breakdown
	EnergyPerPktNJ float64
	ActivityPkts   float64
	ActivityReinj  float64
	ActivityRetx   float64
}

// Fig12 reproduces Figure 12: per-scheme power breakdown (a) and energy
// per packet (b). Activities come from a live simulation of every scheme
// under UR at the given load (the paper's sensitivity operating point,
// 0.11 packets/cycle/core, by default).
func Fig12(load float64, opts Options) ([]Fig12Row, *stats.Table, *stats.Table, error) {
	if load <= 0 {
		load = 0.11
	}
	// Table order follows the paper: the global-arbitration group first,
	// then the distributed one.
	schemes := append(core.GlobalGroup(), core.DistributedGroup()...)
	var points []Point
	for _, s := range schemes {
		points = append(points, Point{Scheme: s, Pattern: traffic.UniformRandom{}, Rate: load})
	}
	results, err := RunPoints(points, opts)
	if err != nil {
		return nil, nil, nil, err
	}

	model := power.DefaultModel()
	cores := float64(model.Shape.Cores())
	rows := make([]Fig12Row, len(schemes))
	ta := stats.NewTable(fmt.Sprintf("Figure 12(a): power breakdown (W) at UR %.2f pkt/cycle/core", load),
		"scheme", "Laser", "Heating", "E/O", "O/E", "Router", "Total")
	tb := stats.NewTable("Figure 12(b): energy per packet (nJ)", "scheme", "nJ/packet")
	for i, s := range schemes {
		r := results[i]
		act := power.Activity{
			PacketsPerCycle:         r.Throughput * cores,
			ReinjectionsPerCycle:    r.CirculationRate * r.Throughput * cores,
			RetransmissionsPerCycle: r.RetransmitRate * r.Throughput * cores,
		}
		bd, err := model.Evaluate(s.Hardware(), act)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("exp: Fig12 %v: %w", s, err)
		}
		rows[i] = Fig12Row{
			Scheme:         s,
			Breakdown:      bd,
			EnergyPerPktNJ: model.EnergyPerPacketNJ(bd, act),
			ActivityPkts:   act.PacketsPerCycle,
			ActivityReinj:  act.ReinjectionsPerCycle,
			ActivityRetx:   act.RetransmissionsPerCycle,
		}
		ta.AddRow(s.PaperName(),
			fmt.Sprintf("%.2f", bd.LaserW), fmt.Sprintf("%.2f", bd.HeatW),
			fmt.Sprintf("%.2f", bd.EOW), fmt.Sprintf("%.2f", bd.OEW),
			fmt.Sprintf("%.2f", bd.RouterW), fmt.Sprintf("%.2f", bd.TotalW()))
		tb.AddRow(s.PaperName(), fmt.Sprintf("%.2f", rows[i].EnergyPerPktNJ))
	}
	return rows, ta, tb, nil
}

// Table1 reproduces Table I: the optical component budget per scheme.
func Table1() ([]phys.Inventory, *stats.Table) {
	shape := phys.DefaultShape()
	rows := phys.TableI(shape)
	t := stats.NewTable("Table I: component budgets for a 64-node network",
		"scheme", "Data WG", "Token WG", "Handshake WG", "Micro-rings", "vs Token Slot")
	base := rows[0]
	for _, r := range rows {
		t.AddRow(r.Scheme, r.DataWaveguides, r.TokenWaveguides, r.HandshakeWaveguides,
			fmt.Sprintf("%dK", r.MicroRings/1024),
			fmt.Sprintf("%+.1f%%", 100*r.Overhead(base)))
	}
	return rows, t
}
