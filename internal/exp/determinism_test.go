package exp

import (
	"reflect"
	"testing"

	"photon/internal/core"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// TestRunPointsParallelEqualsSerial: RunPoints must be a pure function of
// (points, options) — worker count included. Each point is an independent
// network, so Parallel: 1 and Parallel: 8 must return byte-identical
// results (digests included); a divergence would mean cross-point state
// leakage and would invalidate every concurrently generated figure.
func TestRunPointsParallelEqualsSerial(t *testing.T) {
	var points []Point
	for _, s := range core.Schemes() {
		for _, pat := range traffic.PaperPatterns() {
			points = append(points, Point{Scheme: s, Pattern: pat, Rate: 0.09})
		}
	}
	opts := Options{Window: sim.Window{Warmup: 200, Measure: 600, Drain: 600}, Seed: 2}
	serialOpts, parallelOpts := opts, opts
	serialOpts.Parallel = 1
	parallelOpts.Parallel = 8

	serial, err := RunPoints(points, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunPoints(points, parallelOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(points) || len(parallel) != len(points) {
		t.Fatalf("result counts: serial %d, parallel %d, want %d", len(serial), len(parallel), len(points))
	}
	for i := range points {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("point %d (%s %s): serial and parallel results diverged:\nserial:   %+v\nparallel: %+v",
				i, points[i].Scheme, points[i].Pattern.Name(), serial[i], parallel[i])
		}
	}
}

// TestReplicateSeedDerivation: no two replications of one base seed may
// share a derived seed (the regression the old additive derivation risked
// on wraparound), and the recorded Runs must cite exactly those seeds.
func TestReplicateSeedDerivation(t *testing.T) {
	for _, base := range []uint64{0, 1, 42, ^uint64(0) - 3} {
		seen := map[uint64]int{}
		for i := 0; i < 1000; i++ {
			s := ReplicateSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("base %d: replications %d and %d share seed %#x", base, prev, i, s)
			}
			seen[s] = i
		}
	}
}

// TestReplicateSurfacesRuns: every replication must report its seed and a
// digest that reruns reproduce bit-for-bit.
func TestReplicateSurfacesRuns(t *testing.T) {
	p := Point{Scheme: core.TokenSlot, Pattern: traffic.UniformRandom{}, Rate: 0.07}
	opts := Options{Window: sim.Window{Warmup: 200, Measure: 600, Drain: 600}, Seed: 6}
	rep, err := Replicate(p, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("got %d recorded runs, want 3", len(rep.Runs))
	}
	for i, r := range rep.Runs {
		if want := ReplicateSeed(opts.Seed, i); r.Seed != want {
			t.Fatalf("run %d cites seed %#x, derivation says %#x", i, r.Seed, want)
		}
		if r.Digest == 0 || r.Digest != r.Result.Digest {
			t.Fatalf("run %d digest %016x inconsistent with result %016x", i, r.Digest, r.Result.Digest)
		}
		// The citation contract: rerunning the recorded seed reproduces
		// the recorded result exactly.
		o := opts
		o.Seed = r.Seed
		res, err := RunPoint(p, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, r.Result) {
			t.Fatalf("run %d is not reproducible from its recorded seed", i)
		}
	}
	for i := 1; i < len(rep.Runs); i++ {
		if rep.Runs[i].Digest == rep.Runs[0].Digest {
			t.Fatalf("replications 0 and %d produced identical digests — seeds were not independent", i)
		}
	}
}
