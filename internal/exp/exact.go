package exp

import (
	"fmt"

	"photon/internal/core"
	"photon/internal/ptrace"
	"photon/internal/stats"
	"photon/internal/traffic"
	"photon/internal/twin"
)

// RunTracedPoint simulates one point with a protocol event tap armed and
// returns the result together with the assembled per-packet spans. The
// tap is digest-inert, so Result (Digest included) is bit-identical to
// RunPoint's for the same point and options.
func RunTracedPoint(p Point, opts Options) (core.Result, *ptrace.TraceResult, error) {
	cfg := core.DefaultConfig(p.Scheme)
	cfg.Seed = opts.Seed
	if p.Mod != nil {
		p.Mod(&cfg)
	}
	net, err := core.NewNetwork(cfg, opts.Window)
	if err != nil {
		return core.Result{}, nil, err
	}
	inj, err := pointInjector(p, cfg, opts)
	if err != nil {
		return core.Result{}, nil, err
	}
	tap := ptrace.Collect(net)
	res := inj.Run(net)
	tr, err := tap.Assemble()
	if err != nil {
		return core.Result{}, nil, fmt.Errorf("exp: assembling trace for %s: %w", p.Scheme, err)
	}
	return res, tr, nil
}

// RunStreamedPoint simulates one point with the windowed streaming
// assembler armed instead of a batch tap: each span is validated and
// folded into the attribution the moment its packet delivers, then
// dropped, so the trace's resident footprint is bounded by the live
// packet population instead of the run length. The returned Stream
// carries the memory stats (MaxLive, Flushed); the attribution covers
// measured delivered spans, exactly like Aggregate(tr, true) on a batch
// trace of the same run. The stream is digest-inert, so Result matches
// RunPoint bit for bit.
func RunStreamedPoint(p Point, opts Options) (core.Result, ptrace.Attribution, *ptrace.Stream, error) {
	cfg := core.DefaultConfig(p.Scheme)
	cfg.Seed = opts.Seed
	if p.Mod != nil {
		p.Mod(&cfg)
	}
	net, err := core.NewNetwork(cfg, opts.Window)
	if err != nil {
		return core.Result{}, ptrace.Attribution{}, nil, err
	}
	inj, err := pointInjector(p, cfg, opts)
	if err != nil {
		return core.Result{}, ptrace.Attribution{}, nil, err
	}
	var attr ptrace.Attribution
	st := ptrace.NewStream(ptrace.StreamConfig{OnSpan: func(s *ptrace.PacketSpan) error {
		if err := s.Validate(); err != nil {
			return err
		}
		attr.AddSpan(s, true)
		return nil
	}})
	net.SetTracer(st)
	res := inj.Run(net)
	if err := st.Close(); err != nil {
		return core.Result{}, ptrace.Attribution{}, nil, fmt.Errorf("exp: streaming trace for %s: %w", p.Scheme, err)
	}
	return res, attr, st, nil
}

// ExactBreakdownRow is one scheme's exact latency attribution at an
// operating point: mean cycles per measured delivered packet in each
// span phase. Unlike the legacy BreakdownRow — which reconstructs three
// coarse stages from whole-run histogram averages — every column here is
// an exact per-packet sum, and the columns add up to Total by
// construction (the span algebra guarantees it per packet).
type ExactBreakdownRow struct {
	Scheme core.Scheme
	// Phases holds mean cycles per measured delivered packet, by phase.
	Phases [ptrace.NumPhases]float64
	// Setaside is mean setaside-slot residency (overlaps the flight and
	// handshake phases; not part of the Total sum).
	Setaside float64
	// Total is mean end-to-end latency — equal to Result.AvgLatency.
	Total float64
	// Attr is the underlying aggregate (raw integer sums), for consumers
	// that need different denominators (e.g. remote-only averages).
	Attr ptrace.Attribution
	// Result is the run's ordinary result; its Digest matches the
	// untraced run of the same point bit for bit.
	Result core.Result
}

// ExactBreakdownPoint measures one scheme's exact latency attribution
// under UR at the given load — the single-point unit ExactBreakdown and
// the twin differential battery (check.RunTwin) share.
func ExactBreakdownPoint(s core.Scheme, load float64, opts Options) (ExactBreakdownRow, error) {
	res, tr, err := RunTracedPoint(Point{Scheme: s, Pattern: traffic.UniformRandom{}, Rate: load}, opts)
	if err != nil {
		return ExactBreakdownRow{}, err
	}
	attr := ptrace.Aggregate(tr, true)
	row := ExactBreakdownRow{Scheme: s, Attr: attr, Result: res, Total: attr.AvgTotal()}
	if attr.Spans > 0 {
		for k := 0; k < ptrace.NumPhases; k++ {
			row.Phases[k] = attr.AvgPhase(ptrace.PhaseKind(k))
		}
		row.Setaside = float64(attr.Setaside) / float64(attr.Spans)
	}
	return row, nil
}

// ExactBreakdown measures the exact latency attribution of every scheme
// under UR at the given load, with the analytical twin's predicted mean
// and utilization alongside for an at-a-glance model-vs-measurement
// check. Points run serially: an armed tap holds the whole event stream
// in memory, so trading wall-clock for a bounded footprint is the right
// default here.
func ExactBreakdown(load float64, opts Options) ([]ExactBreakdownRow, *stats.Table, error) {
	if load <= 0 {
		load = 0.05
	}
	t := stats.NewTable(
		fmt.Sprintf("Exact latency attribution (cycles) at UR %.2f pkt/cycle/core", load),
		"scheme", "pipeline", "queue", "token-wait", "flight", "hs-wait",
		"retx-wait", "circulation", "eject", "total", "(setaside)", "twin-mean", "twin-util")
	var rows []ExactBreakdownRow
	for _, s := range core.Schemes() {
		row, err := ExactBreakdownPoint(s, load, opts)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
		twinMean, twinUtil := "-", "-"
		if model, err := twin.NewDefault(s); err == nil {
			p := model.Predict(load)
			twinMean = fmt.Sprintf("%.1f", p.Mean)
			if p.Diverged {
				twinMean += "*" // outside the validity envelope: extrapolation
			}
			twinUtil = fmt.Sprintf("%.2f", p.Utilization)
		}
		t.AddRow(s.PaperName(),
			fmt.Sprintf("%.1f", row.Phases[ptrace.PhasePipeline]),
			fmt.Sprintf("%.1f", row.Phases[ptrace.PhaseQueue]),
			fmt.Sprintf("%.1f", row.Phases[ptrace.PhaseTokenWait]),
			fmt.Sprintf("%.1f", row.Phases[ptrace.PhaseFlight]),
			fmt.Sprintf("%.1f", row.Phases[ptrace.PhaseHandshakeWait]),
			fmt.Sprintf("%.1f", row.Phases[ptrace.PhaseRetxWait]),
			fmt.Sprintf("%.1f", row.Phases[ptrace.PhaseCirculation]),
			fmt.Sprintf("%.1f", row.Phases[ptrace.PhaseEject]),
			fmt.Sprintf("%.1f", row.Total),
			fmt.Sprintf("%.1f", row.Setaside),
			twinMean, twinUtil)
	}
	return rows, t, nil
}
