package exp

import (
	"fmt"

	"photon/internal/core"
	"photon/internal/stats"
	"photon/internal/traffic"
)

// curvesToTable renders a set of latency curves in the paper's layout: one
// row per load, one latency column per series.
func curvesToTable(title string, curves []Curve) *stats.Table {
	headers := []string{"load(pkt/cyc/core)"}
	for _, c := range curves {
		headers = append(headers, c.Label)
	}
	t := stats.NewTable(title, headers...)
	if len(curves) == 0 {
		return t
	}
	for i, load := range curves[0].Loads {
		row := []any{fmt.Sprintf("%.4g", load)}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.1f", c.Latency[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig2b reproduces Figure 2(b): Token Slot latency vs load under UR for
// credit counts 4/8/16/32 — the motivation figure showing credit-based
// flow control's dependence on buffer depth.
func Fig2b(opts Options) ([]Curve, *stats.Table, error) {
	curves, err := Sweep(creditSeries(core.TokenSlot), traffic.UniformRandom{}, PaperLoads("UR", opts.Quick), opts)
	if err != nil {
		return nil, nil, err
	}
	return curves, curvesToTable("Figure 2(b): Token Slot latency vs load, UR, by credit count", curves), nil
}

// seriesFor turns a scheme group into sweep series labelled with the
// paper's figure names, preserving registry (presentation) order.
func seriesFor(group []core.Scheme) []SweepSeries {
	series := make([]SweepSeries, len(group))
	for i, s := range group {
		series[i] = SweepSeries{Label: s.PaperName(), Scheme: s}
	}
	return series
}

// globalSeries returns the Figure 8 comparison set: every registered
// global-arbitration scheme.
func globalSeries() []SweepSeries { return seriesFor(core.GlobalGroup()) }

// distributedSeries returns the Figure 9 comparison set: every registered
// distributed-arbitration scheme.
func distributedSeries() []SweepSeries { return seriesFor(core.DistributedGroup()) }

// Fig8 reproduces Figure 8: the global-arbitration group (Token Channel,
// GHS, GHS+Setaside) on the named pattern (UR, BC or TOR).
func Fig8(pattern string, opts Options) ([]Curve, *stats.Table, error) {
	pat, err := traffic.ByName(pattern)
	if err != nil {
		return nil, nil, err
	}
	curves, err := Sweep(globalSeries(), pat, PaperLoads(pat.Name(), opts.Quick), opts)
	if err != nil {
		return nil, nil, err
	}
	title := fmt.Sprintf("Figure 8 (%s): Global Handshake vs Token Channel, latency (cycles) vs load", pat.Name())
	return curves, curvesToTable(title, curves), nil
}

// Fig9 reproduces Figure 9: the distributed-arbitration group (Token Slot,
// DHS, DHS+Setaside, DHS+Circulation) on the named pattern.
func Fig9(pattern string, opts Options) ([]Curve, *stats.Table, error) {
	pat, err := traffic.ByName(pattern)
	if err != nil {
		return nil, nil, err
	}
	curves, err := Sweep(distributedSeries(), pat, PaperLoads(pat.Name(), opts.Quick), opts)
	if err != nil {
		return nil, nil, err
	}
	title := fmt.Sprintf("Figure 9 (%s): Distributed Handshake vs Token Slot, latency (cycles) vs load", pat.Name())
	return curves, curvesToTable(title, curves), nil
}

// Fig11 reproduces Figures 11(a)-(e): credit-count sensitivity of each
// handshake scheme under UR. The paper's point: handshake performance is
// (nearly) independent of credits, unlike Figure 2(b).
func Fig11(scheme core.Scheme, opts Options) ([]Curve, *stats.Table, error) {
	if scheme.CreditBased() {
		return nil, nil, fmt.Errorf("exp: Fig11 is defined for the handshake schemes, not %v", scheme)
	}
	curves, err := Sweep(creditSeries(scheme), traffic.UniformRandom{}, PaperLoads("UR", opts.Quick), opts)
	if err != nil {
		return nil, nil, err
	}
	title := fmt.Sprintf("Figure 11 (%s): latency vs load by credit count, UR", scheme.PaperName())
	return curves, curvesToTable(title, curves), nil
}

// Fig11fResult is one bar of Figure 11(f).
type Fig11fResult struct {
	Scheme   core.Scheme
	Setaside int
	Latency  float64
}

// Fig11f reproduces Figure 11(f): latency of GHS and DHS with setaside
// sizes 1/2/4/8/16 under UR at 0.11 packets/cycle/core.
func Fig11f(opts Options) ([]Fig11fResult, *stats.Table, error) {
	const rate = 0.11
	sizes := []int{1, 2, 4, 8, 16}
	var points []Point
	for _, scheme := range []core.Scheme{core.GHSSetaside, core.DHSSetaside} {
		for _, s := range sizes {
			s := s
			points = append(points, Point{
				Scheme:  scheme,
				Pattern: traffic.UniformRandom{},
				Rate:    rate,
				Mod:     func(c *core.Config) { c.SetasideSize = s },
			})
		}
	}
	results, err := RunPoints(points, opts)
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 11(f): latency (cycles) at UR 0.11 by setaside size",
		"scheme", "Setaside_1", "Setaside_2", "Setaside_4", "Setaside_8", "Setaside_16")
	var out []Fig11fResult
	k := 0
	for _, scheme := range []core.Scheme{core.GHSSetaside, core.DHSSetaside} {
		row := []any{scheme.PaperName()}
		for _, s := range sizes {
			r := results[k]
			k++
			out = append(out, Fig11fResult{Scheme: scheme, Setaside: s, Latency: r.AvgLatency})
			row = append(row, fmt.Sprintf("%.1f", r.AvgLatency))
		}
		t.AddRow(row...)
	}
	return out, t, nil
}

// ThroughputClaim quantifies the paper's headline synthetic-workload
// claims for one pattern: the saturation-throughput gain of the best
// handshake variant over its baseline in each arbitration group, and the
// worst-case drop/retransmission rates across all handshake points.
type ThroughputClaim struct {
	Pattern          string
	GlobalBaseline   float64 // Token Channel saturation throughput
	GlobalHandshake  float64 // best of GHS variants
	GlobalGainPct    float64
	DistBaseline     float64 // Token Slot
	DistHandshake    float64 // best of DHS variants
	DistGainPct      float64
	MaxDropRate      float64
	MaxRetxRate      float64
	MaxCirculateRate float64
}

// Claims measures the throughput-improvement and sub-1%-drop-rate claims
// on the given pattern.
func Claims(pattern string, opts Options) (ThroughputClaim, error) {
	gc, _, err := Fig8(pattern, opts)
	if err != nil {
		return ThroughputClaim{}, err
	}
	dc, _, err := Fig9(pattern, opts)
	if err != nil {
		return ThroughputClaim{}, err
	}
	claim := ThroughputClaim{Pattern: pattern}
	for _, c := range gc {
		sat := c.SaturationThroughput()
		if c.Scheme == core.TokenChannel {
			claim.GlobalBaseline = sat
		} else if sat > claim.GlobalHandshake {
			claim.GlobalHandshake = sat
		}
		claim.scanRates(c)
	}
	for _, c := range dc {
		sat := c.SaturationThroughput()
		if c.Scheme == core.TokenSlot {
			claim.DistBaseline = sat
		} else if sat > claim.DistHandshake {
			claim.DistHandshake = sat
		}
		claim.scanRates(c)
	}
	if claim.GlobalBaseline > 0 {
		claim.GlobalGainPct = 100 * (claim.GlobalHandshake - claim.GlobalBaseline) / claim.GlobalBaseline
	}
	if claim.DistBaseline > 0 {
		claim.DistGainPct = 100 * (claim.DistHandshake - claim.DistBaseline) / claim.DistBaseline
	}
	return claim, nil
}

func (tc *ThroughputClaim) scanRates(c Curve) {
	if !c.Scheme.Handshake() && !c.Scheme.Circulating() {
		return
	}
	for _, r := range c.Results {
		if r.DropRate > tc.MaxDropRate {
			tc.MaxDropRate = r.DropRate
		}
		if r.RetransmitRate > tc.MaxRetxRate {
			tc.MaxRetxRate = r.RetransmitRate
		}
		if r.CirculationRate > tc.MaxCirculateRate {
			tc.MaxCirculateRate = r.CirculationRate
		}
	}
}
