package exp

import (
	"testing"

	"photon/internal/core"
	"photon/internal/traffic"
)

// TestReplicateStability: independent seeds must agree closely at a
// sub-saturation operating point — the repeatability-of-conclusions check
// behind every number quoted in EXPERIMENTS.md.
func TestReplicateStability(t *testing.T) {
	rep, err := Replicate(Point{
		Scheme:  core.DHSSetaside,
		Pattern: traffic.UniformRandom{},
		Rate:    0.09,
	}, 5, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 5 {
		t.Fatalf("N = %d", rep.N)
	}
	mean := rep.Latency.Mean()
	if mean <= 0 {
		t.Fatal("no latency recorded")
	}
	spread := rep.Latency.Max() - rep.Latency.Min()
	if spread > 0.1*mean {
		t.Fatalf("cross-seed latency spread %.2f cycles exceeds 10%% of mean %.2f", spread, mean)
	}
	if rep.Throughput.Min() <= 0 {
		t.Fatal("a replicate delivered nothing")
	}
}

// TestReplicateSeedsDiffer: replicates must actually use different seeds
// (non-zero variance at a stochastic operating point).
func TestReplicateSeedsDiffer(t *testing.T) {
	rep, err := Replicate(Point{
		Scheme:  core.DHSSetaside,
		Pattern: traffic.UniformRandom{},
		Rate:    0.11,
	}, 4, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency.Var() == 0 {
		t.Fatal("replicates identical — seeds were not varied")
	}
}
