package exp

import (
	"testing"

	"photon/internal/core"
)

// TestFig10Shape runs the trace experiment at quick fidelity and checks the
// paper's application-level claims: the handshake schemes with
// setaside/circulation beat their baselines on average, and the biggest
// wins appear on the bursty NAS benchmarks.
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trace sweep is slow")
	}
	global, distributed, ta, tb, err := Fig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(global) != 13 || len(distributed) != 13 {
		t.Fatalf("app rows %d/%d", len(global), len(distributed))
	}
	if ta.Len() != 13 || tb.Len() != 13 {
		t.Fatal("tables incomplete")
	}

	avg, max := LatencyReduction(global, core.TokenChannel, core.GHSSetaside)
	if avg < 5 {
		t.Errorf("GHS w/ setaside avg latency reduction %.0f%% vs Token Channel — paper reports ~42%%", avg)
	}
	if max < 30 {
		t.Errorf("GHS w/ setaside max latency reduction %.0f%% — paper reports up to 59%%", max)
	}
	avgD, _ := LatencyReduction(distributed, core.TokenSlot, core.DHSSetaside)
	if avgD < 0 {
		t.Errorf("DHS w/ setaside avg reduction %.1f%% negative — paper reports ~4%%", avgD)
	}

	// Basic DHS must lose to Token Slot on the bursty NAS traces (the
	// HOL-blocking observation of §V-B).
	for _, r := range distributed {
		if r.App == "nas-cg" {
			if r.Latency[core.DHS] <= r.Latency[core.TokenSlot] {
				t.Errorf("nas-cg: basic DHS %.1f should lose to Token Slot %.1f",
					r.Latency[core.DHS], r.Latency[core.TokenSlot])
			}
		}
	}
}

// TestIPCStudyShape: closed-loop IPC must never punish the handshake
// scheme, and the mean gain must be positive (paper: +15% for GHS+SB vs
// Token Channel, +1.3% for DHS+SB vs Token Slot; our Token Channel
// baseline is stronger, so the margins are smaller — see EXPERIMENTS.md).
func TestIPCStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop sweep is slow")
	}
	rows, table, err := IPCStudy(core.TokenSlot, core.DHSSetaside, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 || table.Len() != 13 {
		t.Fatal("incomplete IPC rows")
	}
	if g := MeanIPCGain(rows); g < 0 {
		t.Errorf("mean IPC gain %.2f%% negative", g)
	}
	for _, r := range rows {
		if r.BaselineIPC <= 0 || r.HandshakeIPC <= 0 {
			t.Errorf("%s: missing IPC values", r.App)
		}
		if r.GainPct < -1 {
			t.Errorf("%s: handshake loses %.1f%% IPC", r.App, r.GainPct)
		}
	}
}
