package exp

import (
	"testing"

	"photon/internal/core"
	"photon/internal/swmr"
)

func TestSWMRStudyShape(t *testing.T) {
	rows, table, err := SWMRStudy([]float64{0.01, 0.02}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || table.Len() != 2 {
		t.Fatalf("rows %d table %d", len(rows), table.Len())
	}
	byKey := map[[2]interface{}]swmr.Result{}
	for _, r := range rows {
		byKey[[2]interface{}{r.Scheme, r.Load}] = r.Result
	}
	for _, load := range []float64{0.01, 0.02} {
		res := byKey[[2]interface{}{swmr.Reservation, load}]
		hs := byKey[[2]interface{}{swmr.HandshakeSetaside, load}]
		if hs.AvgLatency >= res.AvgLatency {
			t.Errorf("load %.2f: handshake %.1f not below reservation %.1f", load, hs.AvgLatency, res.AvgLatency)
		}
	}
}

func TestScalingStudyShape(t *testing.T) {
	rows, table, err := ScalingStudy(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 4 {
		t.Fatalf("table rows %d", table.Len())
	}
	lat := map[[2]interface{}]float64{}
	for _, r := range rows {
		lat[[2]interface{}{r.RoundTrip, r.Scheme}] = r.Latency
	}
	// At R=32 with 8 credits, Token Slot must be far above DHS+setaside.
	slot := lat[[2]interface{}{32, core.TokenSlot}]
	dhs := lat[[2]interface{}{32, core.DHSSetaside}]
	if slot < 3*dhs {
		t.Errorf("R=32: Token Slot %.1f not clearly above DHS w/ setaside %.1f — the scaling argument should bite", slot, dhs)
	}
	// The handshake scheme's latency grows roughly with flight time.
	d8 := lat[[2]interface{}{8, core.DHSSetaside}]
	if dhs > 8*d8 {
		t.Errorf("DHS w/ setaside degraded from %.1f to %.1f across R=8..32", d8, dhs)
	}
}

func TestMultiFlitStudyShape(t *testing.T) {
	rows, table, err := MultiFlitStudy(core.DHSSetaside, 0.01, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || table.Len() != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0].MsgLatency >= rows[2].MsgLatency {
		t.Errorf("4-flit latency %.1f not above single-flit %.1f", rows[2].MsgLatency, rows[0].MsgLatency)
	}
}
