package exp

import (
	"strings"
	"testing"

	"photon/internal/core"
	"photon/internal/traffic"
)

// quick returns reduced-fidelity options shared by these tests.
func quickOpts() Options {
	o := QuickOptions()
	return o
}

func TestRunPointBasic(t *testing.T) {
	res, err := RunPoint(Point{
		Scheme:  core.DHSSetaside,
		Pattern: traffic.UniformRandom{},
		Rate:    0.05,
	}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || res.AvgLatency <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestRunPointRejectsBadConfig(t *testing.T) {
	_, err := RunPoint(Point{
		Scheme:  core.DHSSetaside,
		Pattern: traffic.UniformRandom{},
		Rate:    0.05,
		Mod:     func(c *core.Config) { c.BufferDepth = 0 },
	}, quickOpts())
	if err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestRunPointsParallelOrdering(t *testing.T) {
	pts := []Point{
		{Scheme: core.TokenSlot, Pattern: traffic.UniformRandom{}, Rate: 0.02},
		{Scheme: core.DHS, Pattern: traffic.UniformRandom{}, Rate: 0.02},
		{Scheme: core.DHSSetaside, Pattern: traffic.UniformRandom{}, Rate: 0.02},
	}
	opts := quickOpts()
	opts.Parallel = 3
	res, err := RunPoints(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if res[i].Scheme != p.Scheme {
			t.Fatalf("result %d has scheme %v, want %v (ordering broken)", i, res[i].Scheme, p.Scheme)
		}
	}
	// Parallel execution must be deterministic: rerun serially.
	opts.Parallel = 1
	res2, err := RunPoints(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i] != res2[i] {
			t.Fatalf("parallel and serial results differ at %d", i)
		}
	}
}

func TestCurveHelpers(t *testing.T) {
	c := Curve{
		Loads:      []float64{0.01, 0.05, 0.11},
		Latency:    []float64{10, 20, 900},
		Throughput: []float64{0.01, 0.05, 0.06},
	}
	if got := c.SaturationThroughput(); got != 0.06 {
		t.Fatalf("SaturationThroughput = %v", got)
	}
	if got := c.SaturationLoad(100); got != 0.05 {
		t.Fatalf("SaturationLoad = %v", got)
	}
}

// TestFig2bShape: Figure 2(b)'s point — Token Slot's saturation improves
// with credit count and levels off once credits cover the loop.
func TestFig2bShape(t *testing.T) {
	curves, table, err := Fig2b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("%d curves", len(curves))
	}
	sat4 := curves[0].SaturationThroughput()
	sat16 := curves[2].SaturationThroughput()
	sat32 := curves[3].SaturationThroughput()
	if sat4 >= sat16 {
		t.Errorf("credit_4 saturation %.3f not below credit_16 %.3f", sat4, sat16)
	}
	if sat32 < sat16*0.9 {
		t.Errorf("credit_32 (%.3f) should not be worse than credit_16 (%.3f)", sat32, sat16)
	}
	if !strings.Contains(table.String(), "Credit_8") {
		t.Error("table missing series")
	}
}

// TestFig8Shape: GHS with setaside must beat Token Channel's saturation
// throughput on every paper pattern.
func TestFig8Shape(t *testing.T) {
	for _, pat := range []string{"UR", "BC"} {
		curves, _, err := Fig8(pat, quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		var tc, ghsSB float64
		for _, c := range curves {
			switch c.Scheme {
			case core.TokenChannel:
				tc = c.SaturationThroughput()
			case core.GHSSetaside:
				ghsSB = c.SaturationThroughput()
			}
		}
		if ghsSB <= tc {
			t.Errorf("%s: GHS w/ setaside %.4f does not beat Token Channel %.4f", pat, ghsSB, tc)
		}
	}
}

// TestFig9Shape: the paper's two Figure 9 claims — Token Slot beats basic
// DHS on Bit Complement (HOL blocking), and DHS with setaside/circulation
// beats Token Slot.
func TestFig9Shape(t *testing.T) {
	curves, _, err := Fig9("BC", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	sat := map[core.Scheme]float64{}
	for _, c := range curves {
		sat[c.Scheme] = c.SaturationThroughput()
	}
	if sat[core.TokenSlot] <= sat[core.DHS] {
		t.Errorf("BC: Token Slot %.4f should beat basic DHS %.4f (HOL blocking)",
			sat[core.TokenSlot], sat[core.DHS])
	}
	if sat[core.DHSSetaside] <= sat[core.DHS] {
		t.Errorf("BC: setaside %.4f should beat basic %.4f", sat[core.DHSSetaside], sat[core.DHS])
	}
	if sat[core.DHSCirculation] < 0.9*sat[core.DHSSetaside] {
		t.Errorf("BC: circulation %.4f should roughly match setaside %.4f",
			sat[core.DHSCirculation], sat[core.DHSSetaside])
	}
}

// TestFig11CreditIndependence: the handshake schemes' curves must be nearly
// identical across credit counts (Figures 11(a)-(e)).
func TestFig11CreditIndependence(t *testing.T) {
	curves, _, err := Fig11(core.DHSSetaside, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Compare latency at each sub-saturation load across credit counts.
	for i := range curves[0].Loads {
		lo, hi := curves[0].Latency[i], curves[0].Latency[i]
		for _, c := range curves[1:] {
			if c.Latency[i] < lo {
				lo = c.Latency[i]
			}
			if c.Latency[i] > hi {
				hi = c.Latency[i]
			}
		}
		if lo > 0 && lo < 50 && hi/lo > 1.3 {
			t.Errorf("load %.3f: latency spread %.1f..%.1f across credits — not independent",
				curves[0].Loads[i], lo, hi)
		}
	}
	if _, _, err := Fig11(core.TokenSlot, quickOpts()); err == nil {
		t.Error("Fig11 accepted a non-handshake scheme")
	}
}

// TestFig11fSetasideDiminishingReturns: a couple of setaside slots recover
// most of the performance (Figure 11(f)).
func TestFig11fSetasideDiminishingReturns(t *testing.T) {
	rows, table, err := Fig11f(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	byScheme := map[core.Scheme]map[int]float64{}
	for _, r := range rows {
		if byScheme[r.Scheme] == nil {
			byScheme[r.Scheme] = map[int]float64{}
		}
		byScheme[r.Scheme][r.Setaside] = r.Latency
	}
	for s, m := range byScheme {
		if m[16] > m[4]*1.2 {
			t.Errorf("%v: setaside 16 latency %.1f much worse than 4 (%.1f)", s, m[16], m[4])
		}
	}
	if table.Len() != 2 {
		t.Fatalf("table rows %d", table.Len())
	}
}

// TestClaims: the headline numbers hold on BC — sizeable handshake
// throughput gains in both groups and sub-1% drop rates.
func TestClaims(t *testing.T) {
	c, err := Claims("BC", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if c.GlobalGainPct < 30 {
		t.Errorf("global-group gain %.0f%% — paper reports up to 62%%", c.GlobalGainPct)
	}
	if c.DistGainPct < 5 {
		t.Errorf("distributed-group gain %.0f%%", c.DistGainPct)
	}
	if c.MaxDropRate > 0.01 {
		t.Errorf("drop rate %.4f above the paper's 1%% bound", c.MaxDropRate)
	}
}

func TestTable1(t *testing.T) {
	rows, table := Table1()
	if len(rows) != 4 || table.Len() != 4 {
		t.Fatalf("Table I has %d rows", len(rows))
	}
	if !strings.Contains(table.String(), "1024K") {
		t.Error("Table I missing the 1024K data budget")
	}
}

func TestFig12Shapes(t *testing.T) {
	rows, ta, tb, err := Fig12(0.11, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 || ta.Len() != 7 || tb.Len() != 7 {
		t.Fatalf("Fig12 rows = %d", len(rows))
	}
	byScheme := map[core.Scheme]Fig12Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	if byScheme[core.TokenChannel].Breakdown.LaserW <= byScheme[core.TokenSlot].Breakdown.LaserW {
		t.Error("Token Channel should burn the most laser power")
	}
	if byScheme[core.DHSCirculation].Breakdown.HeatW <= byScheme[core.DHS].Breakdown.HeatW {
		t.Error("circulation should add ring-heating power")
	}
	for _, r := range rows {
		if static := r.Breakdown.LaserW + r.Breakdown.HeatW; static < r.Breakdown.TotalW()/2 {
			t.Errorf("%v: static power is not dominant", r.Scheme)
		}
	}
}

func TestPaperLoadsGrids(t *testing.T) {
	for _, pat := range []string{"UR", "BC", "TOR"} {
		full, quick := PaperLoads(pat, false), PaperLoads(pat, true)
		if len(full) <= len(quick) {
			t.Errorf("%s: full grid (%d) not denser than quick (%d)", pat, len(full), len(quick))
		}
		for i := 1; i < len(full); i++ {
			if full[i] <= full[i-1] {
				t.Errorf("%s: grid not increasing at %d", pat, i)
			}
		}
	}
}
