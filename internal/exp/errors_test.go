package exp

import (
	"errors"
	"strings"
	"testing"

	"photon/internal/core"
	"photon/internal/traffic"
)

func TestFigureDriversRejectBadInput(t *testing.T) {
	opts := quickOpts()
	if _, _, err := Fig8("NOPE", opts); err == nil {
		t.Error("Fig8 accepted an unknown pattern")
	}
	if _, _, err := Fig9("NOPE", opts); err == nil {
		t.Error("Fig9 accepted an unknown pattern")
	}
	if _, _, err := MultiFlitStudy(core.DHSSetaside, 0.01, Options{Window: opts.Window}); err != nil {
		t.Errorf("MultiFlitStudy with zero-value quick flag failed: %v", err)
	}
}

func TestSweepPropagatesPointErrors(t *testing.T) {
	series := []SweepSeries{{
		Label:  "broken",
		Scheme: core.DHS,
		Mod:    func(c *core.Config) { c.BufferDepth = 0 },
	}}
	if _, err := Sweep(series, traffic.UniformRandom{}, []float64{0.01}, quickOpts()); err == nil {
		t.Error("Sweep swallowed a configuration error")
	}
}

// TestRunPointsContainsPanic pins the supervision contract of the worker
// pool: a panicking point surfaces as a *PointPanic carrying the point's
// identity and stack instead of crashing the pool, and the error message
// names which point died.
func TestRunPointsContainsPanic(t *testing.T) {
	points := []Point{
		{Scheme: core.TokenSlot, Pattern: traffic.UniformRandom{}, Rate: 0.01},
		{Scheme: core.DHS, Pattern: traffic.UniformRandom{}, Rate: 0.01,
			Mod: func(*core.Config) { panic("wired to explode") }},
		{Scheme: core.GHS, Pattern: traffic.UniformRandom{}, Rate: 0.01},
	}
	opts := quickOpts()
	opts.Parallel = 2
	_, err := RunPoints(points, opts)
	if err == nil {
		t.Fatal("panicking point did not surface as an error")
	}
	var pp *PointPanic
	if !errors.As(err, &pp) {
		t.Fatalf("error is not a *PointPanic: %v", err)
	}
	if pp.Scheme != core.DHS || pp.Value != "wired to explode" {
		t.Fatalf("panic lost the point identity or value: %+v", pp)
	}
	if len(pp.Stack) == 0 {
		t.Fatal("panic lost its stack")
	}
	if !strings.Contains(err.Error(), "point 1") {
		t.Fatalf("error does not name the point: %v", err)
	}
}

// TestSafeRunPointPassthrough pins that the recovery wrapper is inert on
// healthy points: same result, same digest as the direct call.
func TestSafeRunPointPassthrough(t *testing.T) {
	p := Point{Scheme: core.TokenSlot, Pattern: traffic.UniformRandom{}, Rate: 0.02}
	opts := quickOpts()
	direct, err := RunPoint(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	safe, err := SafeRunPoint(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if safe.Digest != direct.Digest {
		t.Fatalf("recovery wrapper perturbed the run: %016x vs %016x", safe.Digest, direct.Digest)
	}
}

func TestRunPointsEmpty(t *testing.T) {
	res, err := RunPoints(nil, quickOpts())
	if err != nil || len(res) != 0 {
		t.Fatalf("empty RunPoints: %v, %d", err, len(res))
	}
}

func TestOptionsWorkers(t *testing.T) {
	o := Options{}
	if o.workers() < 1 {
		t.Fatal("default workers < 1")
	}
	o.Parallel = 3
	if o.workers() != 3 {
		t.Fatal("explicit workers ignored")
	}
}
