package exp

import (
	"testing"

	"photon/internal/core"
	"photon/internal/traffic"
)

func TestFigureDriversRejectBadInput(t *testing.T) {
	opts := quickOpts()
	if _, _, err := Fig8("NOPE", opts); err == nil {
		t.Error("Fig8 accepted an unknown pattern")
	}
	if _, _, err := Fig9("NOPE", opts); err == nil {
		t.Error("Fig9 accepted an unknown pattern")
	}
	if _, _, err := MultiFlitStudy(core.DHSSetaside, 0.01, Options{Window: opts.Window}); err != nil {
		t.Errorf("MultiFlitStudy with zero-value quick flag failed: %v", err)
	}
}

func TestSweepPropagatesPointErrors(t *testing.T) {
	series := []SweepSeries{{
		Label:  "broken",
		Scheme: core.DHS,
		Mod:    func(c *core.Config) { c.BufferDepth = 0 },
	}}
	if _, err := Sweep(series, traffic.UniformRandom{}, []float64{0.01}, quickOpts()); err == nil {
		t.Error("Sweep swallowed a configuration error")
	}
}

func TestRunPointsEmpty(t *testing.T) {
	res, err := RunPoints(nil, quickOpts())
	if err != nil || len(res) != 0 {
		t.Fatalf("empty RunPoints: %v, %d", err, len(res))
	}
}

func TestOptionsWorkers(t *testing.T) {
	o := Options{}
	if o.workers() < 1 {
		t.Fatal("default workers < 1")
	}
	o.Parallel = 3
	if o.workers() != 3 {
		t.Fatal("explicit workers ignored")
	}
}
