package exp

import (
	"reflect"
	"strings"
	"testing"

	"photon/internal/core"
	"photon/internal/traffic"
)

// TestWorkloadSLODeterminism pins the -workload acceptance property: the
// same (point, options) produces the same per-phase SLO report — digest,
// phase boundaries, quantiles, attribution, everything — across two
// independent runs.
func TestWorkloadSLODeterminism(t *testing.T) {
	p := Point{
		Scheme:   core.Schemes()[0],
		Pattern:  traffic.UniformRandom{},
		Workload: "0.5@bernoulli(rate=0.05);0.5@burst(rate=0.2,on=100,off=300)",
	}
	a, err := RunWorkloadSLO(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkloadSLO(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two same-seed runs diverged:\n%+v\n%+v", a, b)
	}
	if len(a.Phases) != 2 {
		t.Fatalf("want 2 phases, got %d", len(a.Phases))
	}
	for i, ph := range a.Phases {
		if ph.Spans == 0 {
			t.Errorf("phase %d saw no measured packets", i+1)
		}
		if ph.P50 > ph.P99 || ph.P99 > ph.P999 || ph.P999 > ph.Max {
			t.Errorf("phase %d quantiles not monotone: p50 %d p99 %d p999 %d max %d",
				i+1, ph.P50, ph.P99, ph.P999, ph.Max)
		}
		if int64(ph.Attr.Spans) != ph.Spans {
			t.Errorf("phase %d: histogram has %d spans, attribution %d — populations diverged",
				i+1, ph.Spans, ph.Attr.Spans)
		}
	}
}

// TestWorkloadSLODigestInert pins that arming the SLO stream does not
// perturb the simulation: Result matches the untraced RunPoint bit for
// bit, including the behavioural digest.
func TestWorkloadSLODigestInert(t *testing.T) {
	p := Point{
		Scheme:   core.Schemes()[0],
		Pattern:  traffic.UniformRandom{},
		Workload: "burst(rate=0.2,on=100,off=300)",
	}
	slo, err := RunWorkloadSLO(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunPoint(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if slo.Result != plain {
		t.Fatalf("SLO run result diverged from plain run:\nslo   %+v\nplain %+v", slo.Result, plain)
	}
}

// TestWorkloadPointEquivalence pins that a workload spec of
// bernoulli(rate=r) is the same experiment as a bare Rate r: identical
// Result, digest included.
func TestWorkloadPointEquivalence(t *testing.T) {
	s := core.Schemes()[0]
	plain, err := RunPoint(Point{Scheme: s, Pattern: traffic.UniformRandom{}, Rate: 0.11}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := RunPoint(Point{Scheme: s, Pattern: traffic.UniformRandom{}, Workload: "bernoulli(rate=0.11)"}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if plain != viaSpec {
		t.Fatalf("workload bernoulli diverged from bare rate:\nrate %+v\nspec %+v", plain, viaSpec)
	}
}

// TestWorkloadGrid pins the "slo" grid registration: it builds non-empty
// with every point carrying a canonical workload spec, and it is NOT
// part of the pinned "figures" union.
func TestWorkloadGrid(t *testing.T) {
	pts, err := FigurePoints("slo", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	presets := traffic.PresetWorkloads()
	if want := len(presets) * len(core.Schemes()); len(pts) != want {
		t.Fatalf("slo grid has %d points, want %d", len(pts), want)
	}
	for i, p := range pts {
		if p.Workload == "" {
			t.Fatalf("slo[%d] has no workload spec", i)
		}
		w, err := traffic.ParseWorkload(p.Workload)
		if err != nil {
			t.Fatalf("slo[%d] spec %q: %v", i, p.Workload, err)
		}
		if canon := w.String(); canon != p.Workload {
			t.Fatalf("slo[%d] spec %q is not canonical (%q)", i, p.Workload, canon)
		}
	}
	figs, err := FigurePoints("figures", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range figs {
		if p.Workload != "" {
			t.Fatalf("figures[%d] carries workload %q; the pinned union must stay Bernoulli-only", i, p.Workload)
		}
	}
	// The error for unknown grids advertises the workload grids too.
	if _, err := FigurePoints("bogus", quickOpts()); err == nil || !strings.Contains(err.Error(), "slo") {
		t.Fatalf("unknown-grid error does not advertise slo: %v", err)
	}
}
