package exp

import (
	"math"
	"testing"

	"photon/internal/core"
	"photon/internal/ptrace"
	"photon/internal/traffic"
)

// TestExactBreakdownInternalConsistency: the span phases of every scheme
// sum to the measured latency at the integer level — no tolerance.
func TestExactBreakdownInternalConsistency(t *testing.T) {
	rows, table, err := ExactBreakdown(0.13, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 || table.Len() != 7 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		var phaseSum int64
		for _, c := range r.Attr.Phases {
			phaseSum += c
		}
		if phaseSum != r.Attr.Total {
			t.Errorf("%v: phase cycles sum to %d, total latency is %d", r.Scheme, phaseSum, r.Attr.Total)
		}
		if r.Attr.Spans != r.Result.Delivered {
			t.Errorf("%v: %d aggregated spans vs %d measured deliveries", r.Scheme, r.Attr.Spans, r.Result.Delivered)
		}
		if r.Total != r.Result.AvgLatency {
			t.Errorf("%v: exact mean %v != measured AvgLatency %v", r.Scheme, r.Total, r.Result.AvgLatency)
		}
	}
}

// TestExactBreakdownDifferential compares exact attribution against the
// legacy whole-run-average breakdown on every scheme at a contended
// point. Where the legacy decomposition is exact — total latency, and
// the queue/arbitration terms over the launched population — the two
// must agree to the bit. The legacy flight+eject term is genuinely
// approximate: it subtracts a remote-only average from an
// all-deliveries average, so it is off by exactly ΣQW·L/(N·M) cycles
// (L local deliveries, M remote, N = L+M). The test asserts that bound,
// not a hand-waved tolerance.
func TestExactBreakdownDifferential(t *testing.T) {
	const load = 0.13
	opts := quickOpts()
	exact, _, err := ExactBreakdown(load, opts)
	if err != nil {
		t.Fatal(err)
	}
	legacy, _, err := LatencyBreakdown(load, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != len(legacy) {
		t.Fatalf("%d exact rows vs %d legacy rows", len(exact), len(legacy))
	}
	for i, ex := range exact {
		lg := legacy[i]
		if ex.Scheme != lg.Scheme {
			t.Fatalf("row %d: scheme mismatch %v vs %v", i, ex.Scheme, lg.Scheme)
		}
		attr := ex.Attr
		n, m, l := attr.Spans, attr.Remote(), attr.Local
		if n == 0 || m == 0 {
			t.Fatalf("%v: degenerate population n=%d m=%d", ex.Scheme, n, m)
		}

		// Exact where the old path is exact: total latency…
		if ex.Total != lg.Total {
			t.Errorf("%v: total %v != legacy total %v", ex.Scheme, ex.Total, lg.Total)
		}
		// …the arbitration term (token wait over launched packets)…
		arb := float64(attr.Phases[ptrace.PhaseTokenWait]) / float64(m)
		if arb != lg.Arbitration {
			t.Errorf("%v: token-wait %v != legacy arbitration %v", ex.Scheme, arb, lg.Arbitration)
		}
		// …and the queueing term (enqueue to head-eligibility).
		queue := float64(attr.Phases[ptrace.PhaseQueue]) / float64(m)
		if math.Abs(queue-lg.Queueing) > 1e-9 {
			t.Errorf("%v: queue %v != legacy queueing %v", ex.Scheme, queue, lg.Queueing)
		}

		// Bounded where the old path is approximate: its flight+eject
		// remainder mixes populations. |legacy − exact| must equal
		// ΣQW·L/(N·M) up to float rounding.
		sumQW := attr.Phases[ptrace.PhaseQueue] + attr.Phases[ptrace.PhaseTokenWait]
		exactRest := float64(attr.Total-sumQW) / float64(n)
		bound := float64(sumQW) * float64(l) / (float64(n) * float64(m))
		if diff := math.Abs(lg.FlightAndEject - exactRest); diff > bound+1e-9 {
			t.Errorf("%v: legacy flight+eject %v vs exact %v: |diff| %v exceeds population bound %v",
				ex.Scheme, lg.FlightAndEject, exactRest, diff, bound)
		}
	}
}

// TestTracedPointDigestInert: arming the tap must not move the digest —
// the traced run of a point is bit-identical to the untraced run.
func TestTracedPointDigestInert(t *testing.T) {
	p := Point{Scheme: core.DHSSetaside, Pattern: traffic.UniformRandom{}, Rate: 0.13}
	plain, err := RunPoint(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	traced, tr, err := RunTracedPoint(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if traced.Digest != plain.Digest || traced.DigestEvents != plain.DigestEvents {
		t.Fatalf("tap moved the digest: traced %016x/%d, plain %016x/%d",
			traced.Digest, traced.DigestEvents, plain.Digest, plain.DigestEvents)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("traced run assembled no spans")
	}
}
