package exp

import (
	"testing"

	"photon/internal/core"
)

func TestFairnessStudyShape(t *testing.T) {
	rows, table, err := FairnessStudy(core.DHSSetaside, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || table.Len() != 5 {
		t.Fatalf("rows %d table %d", len(rows), table.Len())
	}
	// The last quadrant (farthest downstream) must gain share when the
	// policy is on.
	last := rows[3]
	if last.SharePolicyOn < last.SharePolicyOff {
		t.Errorf("far quadrant share fell with the policy: %.3f -> %.3f",
			last.SharePolicyOff, last.SharePolicyOn)
	}
	// Shares are a distribution.
	var off, on float64
	for _, r := range rows {
		off += r.SharePolicyOff
		on += r.SharePolicyOn
	}
	if off < 0.99 || off > 1.01 || on < 0.99 || on > 1.01 {
		t.Fatalf("shares do not sum to 1: off %.3f on %.3f", off, on)
	}
	if _, _, err := FairnessStudy(core.TokenSlot, quickOpts()); err == nil {
		t.Error("credit scheme accepted by fairness study")
	}
}
