package exp

import (
	"fmt"

	"photon/internal/core"
	"photon/internal/ptrace"
	"photon/internal/stats"
	"photon/internal/traffic"
)

// This file is the SLO reporting layer over generalized workloads: one
// run per (scheme, workload) point with the streaming span assembler
// armed, bucketing every measured delivered packet's exact end-to-end
// latency into the schedule phase it was injected in. Quantiles are
// computed per phase from exact integer latencies (stats.Histogram bins
// cycles exactly up to its cap), so a p999 here is the true 99.9th
// percentile of the measured population, not an interpolation.

// PhaseSLO is one schedule phase's latency population for one scheme.
type PhaseSLO struct {
	// Phase is the 1-based schedule segment index; From/To its resolved
	// half-open cycle window within the injection span.
	Phase    int
	From, To int64
	// Proc is the phase's arrival process in canonical spec form.
	Proc string
	// Spans counts the measured delivered packets injected in the phase.
	Spans int64
	// Mean and the quantiles summarize those packets' exact end-to-end
	// latencies in cycles.
	Mean                float64
	P50, P99, P999, Max int64
	// Attr is the phase's exact latency attribution (the same span
	// algebra the breakdown figures use), for consumers that want to know
	// *where* a phase's tail latency is spent.
	Attr ptrace.Attribution
}

// WorkloadSLO is the per-phase SLO report of one (scheme, workload) run.
type WorkloadSLO struct {
	Scheme core.Scheme
	Spec   string // canonical workload spec
	Result core.Result
	Phases []PhaseSLO
}

// RunWorkloadSLO simulates one workload point with the streaming
// assembler armed and returns its per-phase SLO report. The stream is
// digest-inert: Result matches RunPoint on the same point bit for bit.
// Reports are deterministic in (point, options) — same seed, same
// report — which TestWorkloadSLODeterminism pins.
func RunWorkloadSLO(p Point, opts Options) (WorkloadSLO, error) {
	if p.Workload == "" {
		return WorkloadSLO{}, fmt.Errorf("exp: point has no workload spec")
	}
	cfg := core.DefaultConfig(p.Scheme)
	cfg.Seed = opts.Seed
	if p.Mod != nil {
		p.Mod(&cfg)
	}
	net, err := core.NewNetwork(cfg, opts.Window)
	if err != nil {
		return WorkloadSLO{}, err
	}
	w, err := traffic.ParseWorkload(p.Workload)
	if err != nil {
		return WorkloadSLO{}, err
	}
	inj, err := traffic.NewWorkloadInjector(w, p.Pattern, cfg.Nodes, cfg.CoresPerNode, opts.Seed+0x9E37)
	if err != nil {
		return WorkloadSLO{}, err
	}
	inj.Prepare(opts.Window.Warmup + opts.Window.Measure)
	bounds := inj.Boundaries()
	hists := make([]*stats.Histogram, len(bounds))
	attrs := make([]ptrace.Attribution, len(bounds))
	for i := range hists {
		hists[i] = stats.NewHistogram(0)
	}
	st := ptrace.NewStream(ptrace.StreamConfig{OnSpan: func(s *ptrace.PacketSpan) error {
		if err := s.Validate(); err != nil {
			return err
		}
		seg := 0
		for seg < len(bounds)-1 && s.Injected >= bounds[seg] {
			seg++
		}
		// AddSpan filters to measured delivered spans; the histogram must
		// cover exactly the population the attribution aggregates.
		if attrs[seg].AddSpan(s, true) {
			hists[seg].Add(s.Latency())
		}
		return nil
	}})
	net.SetTracer(st)
	res := inj.Run(net)
	if err := st.Close(); err != nil {
		return WorkloadSLO{}, fmt.Errorf("exp: streaming spans for %s: %w", p.Scheme, err)
	}
	slo := WorkloadSLO{Scheme: p.Scheme, Spec: w.String(), Result: res}
	from := int64(0)
	for i, to := range bounds {
		h := hists[i]
		// Render the phase's process as a canonical single-phase spec.
		proc := (&traffic.Workload{Segments: []traffic.Segment{{Frac: 1, Proc: w.Segments[i].Proc}}}).String()
		slo.Phases = append(slo.Phases, PhaseSLO{
			Phase: i + 1, From: from, To: to, Proc: proc,
			Spans: h.Count(), Mean: h.Mean(),
			P50: h.P50(), P99: h.P99(), P999: h.P999(), Max: h.Max(),
			Attr: attrs[i],
		})
		from = to
	}
	return slo, nil
}

// WorkloadSweep runs a workload (preset name or raw spec) under every
// registered scheme on the given pattern and returns the per-scheme SLO
// reports plus a rendered table. Runs are serial: each holds a live
// streaming assembler, and scheme order is the report order.
func WorkloadSweep(nameOrSpec string, pattern traffic.Pattern, opts Options) ([]WorkloadSLO, *stats.Table, error) {
	_, spec, err := traffic.PresetWorkload(nameOrSpec)
	if err != nil {
		return nil, nil, err
	}
	if pattern == nil {
		pattern = traffic.UniformRandom{}
	}
	var slos []WorkloadSLO
	for _, s := range core.Schemes() {
		slo, err := RunWorkloadSLO(Point{Scheme: s, Pattern: pattern, Workload: spec}, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("exp: workload %s under %s: %w", spec, s, err)
		}
		slos = append(slos, slo)
	}
	return slos, WorkloadSLOTable(spec, slos), nil
}

// WorkloadSLOTable renders per-phase SLO reports as one table, one row
// per (scheme, phase).
func WorkloadSLOTable(spec string, slos []WorkloadSLO) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Per-phase latency SLOs (cycles) — workload %s", spec),
		"scheme", "phase", "cycles", "process", "packets", "mean", "p50", "p99", "p999", "max")
	for _, slo := range slos {
		for _, ph := range slo.Phases {
			t.AddRow(slo.Scheme.PaperName(),
				fmt.Sprintf("%d", ph.Phase),
				fmt.Sprintf("[%d,%d)", ph.From, ph.To),
				ph.Proc,
				fmt.Sprintf("%d", ph.Spans),
				fmt.Sprintf("%.1f", ph.Mean),
				fmt.Sprintf("%d", ph.P50),
				fmt.Sprintf("%d", ph.P99),
				fmt.Sprintf("%d", ph.P999),
				fmt.Sprintf("%d", ph.Max))
		}
	}
	return t
}

// WorkloadGridNames lists the workload grids FigurePoints accepts in
// addition to the paper-figure grids. They are deliberately NOT part of
// the combined "figures" grid: that union is the paper's regeneration
// workload and its point list is pinned.
func WorkloadGridNames() []string { return []string{"slo"} }

// workloadGridPoints builds the "slo" grid: every registered scheme
// under every preset workload, UR destinations, in (preset-major,
// scheme-minor) order. The preset name is the point label and the
// canonical spec is the point's workload, so farm manifest keys identify
// workload points fully.
func workloadGridPoints() []Point {
	var points []Point
	for _, p := range traffic.PresetWorkloads() {
		spec := traffic.MustParseWorkload(p.Spec).String()
		for _, s := range core.Schemes() {
			points = append(points, Point{
				Scheme: s, Label: p.Name, Pattern: traffic.UniformRandom{}, Workload: spec,
			})
		}
	}
	return points
}
