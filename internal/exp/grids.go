package exp

import (
	"fmt"
	"sort"
	"strings"

	"photon/internal/core"
	"photon/internal/traffic"
)

// This file is the declarative grid registry: every figure sweep is also
// available as a named, deterministically ordered []Point so that the
// sweep farm (internal/farm) can shard it across workers or subprocess
// shards and rebuild exactly the same grid from its name alone. The
// figure drivers in figures.go and these builders must agree point for
// point — TestFigureGridsMatchDrivers pins that.

// sweepPoints expands (series x loads) into points in series-major order,
// exactly as Sweep submits them.
func sweepPoints(series []SweepSeries, pat traffic.Pattern, loads []float64) []Point {
	var points []Point
	for _, s := range series {
		for _, rate := range loads {
			points = append(points, Point{
				Scheme: s.Scheme, Label: s.Label, Pattern: pat, Rate: rate, Mod: s.Mod,
			})
		}
	}
	return points
}

// creditSeries is the 4/8/16/32 credit-count series of Figures 2(b) and
// 11(a)-(e).
func creditSeries(scheme core.Scheme) []SweepSeries {
	var series []SweepSeries
	for _, credits := range []int{4, 8, 16, 32} {
		credits := credits
		series = append(series, SweepSeries{
			Label:  fmt.Sprintf("Credit_%d", credits),
			Scheme: scheme,
			Mod:    func(c *core.Config) { c.BufferDepth = credits },
		})
	}
	return series
}

// fig11fPoints is the Figure 11(f) setaside-size grid, with labels so the
// farm's manifest keys distinguish the sizes.
func fig11fPoints() []Point {
	const rate = 0.11
	var points []Point
	for _, scheme := range []core.Scheme{core.GHSSetaside, core.DHSSetaside} {
		for _, s := range []int{1, 2, 4, 8, 16} {
			s := s
			points = append(points, Point{
				Scheme:  scheme,
				Label:   fmt.Sprintf("Setaside_%d", s),
				Pattern: traffic.UniformRandom{},
				Rate:    rate,
				Mod:     func(c *core.Config) { c.SetasideSize = s },
			})
		}
	}
	return points
}

// FigureGridNames lists every named grid FigurePoints accepts, in
// presentation order. "figures" is the union of all of them — the full
// regeneration workload of the paper's synthetic-traffic evaluation.
func FigureGridNames() []string {
	names := []string{"fig2b"}
	for _, pat := range []string{"UR", "BC", "TOR"} {
		names = append(names, "fig8:"+pat)
	}
	for _, pat := range []string{"UR", "BC", "TOR"} {
		names = append(names, "fig9:"+pat)
	}
	names = append(names, "fig11", "fig11f", "figures")
	return names
}

// FigurePoints builds the named grid. The point order is deterministic —
// it is the grid's identity: the farm keys its manifest entries by
// (index, scheme, pattern, rate, label), and a subprocess shard re-derives
// point i by rebuilding the same grid from the same name and options.
func FigurePoints(name string, opts Options) ([]Point, error) {
	pat := func(p string) (traffic.Pattern, error) { return traffic.ByName(p) }
	switch {
	case name == "fig2b":
		return sweepPoints(creditSeries(core.TokenSlot), traffic.UniformRandom{}, PaperLoads("UR", opts.Quick)), nil
	case strings.HasPrefix(name, "fig8:"):
		p, err := pat(strings.TrimPrefix(name, "fig8:"))
		if err != nil {
			return nil, err
		}
		return sweepPoints(globalSeries(), p, PaperLoads(p.Name(), opts.Quick)), nil
	case strings.HasPrefix(name, "fig9:"):
		p, err := pat(strings.TrimPrefix(name, "fig9:"))
		if err != nil {
			return nil, err
		}
		return sweepPoints(distributedSeries(), p, PaperLoads(p.Name(), opts.Quick)), nil
	case name == "fig11":
		var points []Point
		for _, s := range core.Schemes() {
			if s.CreditBased() {
				continue
			}
			points = append(points, sweepPoints(creditSeries(s), traffic.UniformRandom{}, PaperLoads("UR", opts.Quick))...)
		}
		return points, nil
	case name == "fig11f":
		return fig11fPoints(), nil
	case name == "slo":
		// Workload grid, registered alongside the figure grids but not
		// folded into "figures": the union below is the paper's pinned
		// regeneration workload and must not change shape.
		return workloadGridPoints(), nil
	case name == "figures":
		var points []Point
		for _, n := range FigureGridNames() {
			if n == "figures" {
				continue
			}
			sub, err := FigurePoints(n, opts)
			if err != nil {
				return nil, err
			}
			points = append(points, sub...)
		}
		return points, nil
	default:
		known := append(FigureGridNames(), WorkloadGridNames()...)
		sort.Strings(known)
		return nil, fmt.Errorf("exp: unknown grid %q (known: %s)", name, strings.Join(known, ", "))
	}
}
