package exp

import (
	"testing"

	"photon/internal/core"
)

// TestLatencyBreakdownShape: the decomposition sums to the total, and the
// handshake schemes' advantage over their baselines shows up in the
// arbitration term — the paper's mechanism.
func TestLatencyBreakdownShape(t *testing.T) {
	rows, table, err := LatencyBreakdown(0.05, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 || table.Len() != 7 {
		t.Fatalf("rows %d", len(rows))
	}
	byScheme := map[core.Scheme]BreakdownRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
		sum := r.Queueing + r.Arbitration + r.FlightAndEject
		if sum < r.Total*0.95 || sum > r.Total*1.05 {
			t.Errorf("%v: components sum to %.1f of total %.1f", r.Scheme, sum, r.Total)
		}
	}
	// Distributed token emission removes most token waiting relative to a
	// single relayed token.
	if byScheme[core.DHSSetaside].Arbitration >= byScheme[core.TokenChannel].Arbitration {
		t.Errorf("DHS arbitration wait %.1f not below Token Channel's %.1f",
			byScheme[core.DHSSetaside].Arbitration, byScheme[core.TokenChannel].Arbitration)
	}
}
