package exp

import (
	"testing"
)

// TestFigureGridsBuild pins the named-grid registry: every advertised
// grid builds non-empty, unknown names are rejected, and the combined
// "figures" grid is exactly the concatenation of the individual grids in
// registry order — the property the farm's resumable manifests and
// subprocess shards rely on to rebuild identical grids by name.
func TestFigureGridsBuild(t *testing.T) {
	opts := quickOpts()
	total := 0
	var all []Point
	for _, name := range FigureGridNames() {
		if name == "figures" {
			continue
		}
		pts, err := FigurePoints(name, opts)
		if err != nil {
			t.Fatalf("grid %s: %v", name, err)
		}
		if len(pts) == 0 {
			t.Fatalf("grid %s is empty", name)
		}
		total += len(pts)
		all = append(all, pts...)
	}
	combined, err := FigurePoints("figures", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(combined) != total {
		t.Fatalf("figures grid has %d points, individual grids sum to %d", len(combined), total)
	}
	for i, p := range combined {
		q := all[i]
		if p.Scheme != q.Scheme || p.Rate != q.Rate || p.Label != q.Label || p.Pattern.Name() != q.Pattern.Name() {
			t.Fatalf("figures[%d] = %s/%s@%g#%q, concatenation has %s/%s@%g#%q",
				i, p.Scheme, p.Pattern.Name(), p.Rate, p.Label, q.Scheme, q.Pattern.Name(), q.Rate, q.Label)
		}
	}
	if _, err := FigurePoints("no-such-grid", opts); err == nil {
		t.Fatal("unknown grid name accepted")
	}
}
