// Package exp contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (§V). Each driver returns plain
// data and/or a stats.Table whose rows mirror the corresponding figure's
// series, so the cmd/ binaries, the benchmark harness and the tests all
// share one implementation.
//
// The per-experiment index lives in DESIGN.md; measured-vs-paper shapes are
// recorded in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"photon/internal/core"
	"photon/internal/sim"
	"photon/internal/stats"
	"photon/internal/traffic"
)

// Options tunes experiment fidelity.
type Options struct {
	// Window is the simulation window per point.
	Window sim.Window
	// Seed drives all stochastic elements.
	Seed uint64
	// Parallel bounds concurrent simulation points (0 = GOMAXPROCS).
	Parallel int
	// Quick selects the reduced load grids used by tests and smoke runs.
	Quick bool
}

// DefaultOptions returns full-fidelity settings (tens of seconds per
// figure on a laptop).
func DefaultOptions() Options {
	return Options{Window: sim.DefaultWindow(), Seed: 1}
}

// QuickOptions returns reduced-fidelity settings for tests and CI.
func QuickOptions() Options {
	return Options{Window: sim.ShortWindow(), Seed: 1, Quick: true}
}

func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Point identifies one simulated configuration of a sweep.
type Point struct {
	Scheme  core.Scheme
	Label   string
	Pattern traffic.Pattern
	Rate    float64
	// Workload, when non-empty, is a canonical workload spec (see
	// traffic.ParseWorkload) that replaces the fixed-rate Bernoulli
	// injection implied by Rate. Rate is ignored for workload points; the
	// spec string itself is the point's identity in farm manifest keys.
	Workload string
	// Mod customises the configuration (credits, setaside size, ...).
	Mod func(*core.Config)
}

// pointInjector builds the injector a point specifies: the legacy
// fixed-rate Bernoulli path when Workload is empty (bit-identical to the
// pre-workload injector), the parsed workload otherwise. Both use the
// same derived seed, so a workload spec of "bernoulli(rate=r)" and a
// bare Rate r are the same experiment.
func pointInjector(p Point, cfg core.Config, opts Options) (*traffic.Injector, error) {
	seed := opts.Seed + 0x9E37
	if p.Workload == "" {
		return traffic.NewInjector(p.Pattern, p.Rate, cfg.Nodes, cfg.CoresPerNode, seed)
	}
	w, err := traffic.ParseWorkload(p.Workload)
	if err != nil {
		return nil, err
	}
	return traffic.NewWorkloadInjector(w, p.Pattern, cfg.Nodes, cfg.CoresPerNode, seed)
}

// RunPoint simulates one point and returns its result.
func RunPoint(p Point, opts Options) (core.Result, error) {
	cfg := core.DefaultConfig(p.Scheme)
	cfg.Seed = opts.Seed
	if p.Mod != nil {
		p.Mod(&cfg)
	}
	net, err := core.NewNetwork(cfg, opts.Window)
	if err != nil {
		return core.Result{}, err
	}
	inj, err := pointInjector(p, cfg, opts)
	if err != nil {
		return core.Result{}, err
	}
	return inj.Run(net), nil
}

// PointPanic is a panic recovered inside one sweep point, converted into
// an ordinary error carrying the point's identity. One corrupt corner of
// a grid (an engine invariant violation, a DrainError) therefore fails
// its sweep cleanly instead of killing the whole process — the contract
// the farm supervisor and RunPoints both build on.
type PointPanic struct {
	Scheme  core.Scheme
	Pattern string
	Rate    float64
	Value   any    // the recovered panic value
	Stack   []byte // stack of the panicking goroutine
}

func (e *PointPanic) Error() string {
	return fmt.Sprintf("exp: panic in point %s %s rate %.3g: %v", e.Scheme, e.Pattern, e.Rate, e.Value)
}

// SafeRunPoint is RunPoint with panic containment: a panic anywhere in
// the point's construction or simulation is recovered into a *PointPanic
// error instead of unwinding the caller.
func SafeRunPoint(p Point, opts Options) (res core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PointPanic{
				Scheme: p.Scheme, Pattern: p.Pattern.Name(), Rate: p.Rate,
				Value: r, Stack: debug.Stack(),
			}
		}
	}()
	return RunPoint(p, opts)
}

// RunPoints simulates points concurrently (each point is an independent
// network, so parallelism does not perturb determinism) and returns
// results in input order. Points run on a bounded worker pool pulling
// from a shared channel — never one goroutine per point — and a panic in
// any point is contained to that point and reported as its error.
func RunPoints(points []Point, opts Options) ([]core.Result, error) {
	results := make([]core.Result, len(points))
	errs := make([]error, len(points))
	workers := opts.workers()
	if workers > len(points) {
		workers = len(points)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = SafeRunPoint(points[i], opts)
			}
		}()
	}
	for i := range points {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exp: point %d (%s %s rate %.3f): %w",
				i, points[i].Scheme, points[i].Pattern.Name(), points[i].Rate, err)
		}
	}
	return results, nil
}

// Replication is the aggregate of independent-seed repetitions of one
// point — simulation confidence intervals for results quoted in
// EXPERIMENTS.md.
type Replication struct {
	N          int
	Latency    stats.MeanVar
	Throughput stats.MeanVar
	DropRate   stats.MeanVar
	// Runs records each replication's seed and full result (digest
	// included), so any quoted confidence interval can cite the exact
	// reproducible runs behind it.
	Runs []ReplicateRun
}

// ReplicateRun identifies one replication: rerunning the point with Seed
// must reproduce Result bit-for-bit (same Digest).
type ReplicateRun struct {
	Seed   uint64
	Digest uint64
	Result core.Result
}

// ReplicateSeed returns the seed of replication i for a base seed. The
// derivation is injective in i (see sim.DeriveSeed): no two replications
// of one base ever share a seed, which TestReplicateSeedDerivation pins.
func ReplicateSeed(base uint64, i int) uint64 {
	return sim.DeriveSeed(base, uint64(i))
}

// Replicate runs a point n times with derived seeds and aggregates. It
// runs serially — replication is an offline confidence-interval tool.
func Replicate(p Point, n int, opts Options) (Replication, error) {
	var rep Replication
	for i := 0; i < n; i++ {
		o := opts
		o.Seed = ReplicateSeed(opts.Seed, i)
		res, err := RunPoint(p, o)
		if err != nil {
			return rep, err
		}
		rep.N++
		rep.Latency.Add(res.AvgLatency)
		rep.Throughput.Add(res.Throughput)
		rep.DropRate.Add(res.DropRate)
		rep.Runs = append(rep.Runs, ReplicateRun{Seed: o.Seed, Digest: res.Digest, Result: res})
	}
	return rep, nil
}

// Curve is one series of a latency-vs-load figure.
type Curve struct {
	Label      string
	Scheme     core.Scheme
	Loads      []float64
	Latency    []float64
	Throughput []float64
	Results    []core.Result
}

// SaturationThroughput returns the best accepted throughput along the
// curve — the "network throughput" of the paper's up-to-62% claim.
func (c Curve) SaturationThroughput() float64 {
	best := 0.0
	for _, t := range c.Throughput {
		if t > best {
			best = t
		}
	}
	return best
}

// SaturationLoad returns the highest offered load at which average latency
// stays below latencyCap (the conventional saturation-point definition;
// the paper's figures clip their axes at 100 cycles).
func (c Curve) SaturationLoad(latencyCap float64) float64 {
	sat := 0.0
	for i, l := range c.Latency {
		if l <= latencyCap && c.Loads[i] > sat {
			sat = c.Loads[i]
		}
	}
	return sat
}

// SweepSeries describes one scheme-series of a sweep.
type SweepSeries struct {
	Label  string
	Scheme core.Scheme
	Mod    func(*core.Config)
}

// Sweep runs every (series, load) combination on a pattern.
func Sweep(series []SweepSeries, pat traffic.Pattern, loads []float64, opts Options) ([]Curve, error) {
	points := sweepPoints(series, pat, loads)
	results, err := RunPoints(points, opts)
	if err != nil {
		return nil, err
	}
	curves := make([]Curve, len(series))
	k := 0
	for i, s := range series {
		c := Curve{Label: s.Label, Scheme: s.Scheme, Loads: loads}
		for range loads {
			r := results[k]
			k++
			c.Latency = append(c.Latency, r.AvgLatency)
			c.Throughput = append(c.Throughput, r.Throughput)
			c.Results = append(c.Results, r)
		}
		curves[i] = c
	}
	return curves, nil
}

// PaperLoads returns the paper's x-axis grid for a traffic pattern
// (Figures 8 and 9 use different ranges per pattern because saturation
// points differ by ~4x between UR and TOR).
func PaperLoads(pattern string, quick bool) []float64 {
	if quick {
		switch pattern {
		case "BC":
			return []float64{0.01, 0.05, 0.09, 0.13, 0.19, 0.25}
		case "TOR":
			return []float64{0.01, 0.03, 0.05, 0.08, 0.13, 0.19}
		default:
			return []float64{0.01, 0.05, 0.11, 0.17, 0.23}
		}
	}
	switch pattern {
	case "BC":
		return []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.15, 0.19, 0.23, 0.27}
	case "TOR":
		return []float64{0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.09, 0.13, 0.19, 0.25}
	default: // UR
		return []float64{0.01, 0.03, 0.05, 0.07, 0.09, 0.11, 0.13, 0.15, 0.17, 0.19, 0.21, 0.23, 0.25}
	}
}
