package exp

import (
	"fmt"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/stats"
	"photon/internal/swmr"
	"photon/internal/traffic"
)

// SWMRRow is one operating point of the SWMR extension study.
type SWMRRow struct {
	Scheme swmr.Scheme
	Load   float64
	Result swmr.Result
}

// SWMRStudy evaluates the paper's SWMR extension direction: the
// reservation baseline against the handshake disciplines over a load
// sweep. Loads are messages/cycle/core under uniform random traffic.
func SWMRStudy(loads []float64, opts Options) ([]SWMRRow, *stats.Table, error) {
	if len(loads) == 0 {
		loads = []float64{0.005, 0.01, 0.02, 0.05, 0.08, 0.11}
		if opts.Quick {
			loads = []float64{0.01, 0.02, 0.05}
		}
	}
	var rows []SWMRRow
	t := stats.NewTable("SWMR extension: latency (cycles) by flow-control discipline, UR",
		"load", "Reservation", "Handshake", "Handshake w/ Setaside")
	for _, load := range loads {
		row := []any{fmt.Sprintf("%.3f", load)}
		for _, s := range swmr.Schemes() {
			cfg := swmr.DefaultConfig(s)
			cfg.Seed = opts.Seed
			net, err := swmr.NewNetwork(cfg, opts.Window)
			if err != nil {
				return nil, nil, err
			}
			res, err := runSWMR(net, load, opts.Seed+55)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, SWMRRow{Scheme: s, Load: load, Result: res})
			row = append(row, fmt.Sprintf("%.1f", res.AvgLatency))
		}
		t.AddRow(row...)
	}
	return rows, t, nil
}

// runSWMR drives an SWMR network with Bernoulli UR traffic.
func runSWMR(net *swmr.Network, rate float64, seed uint64) (swmr.Result, error) {
	cfg := net.Config()
	rng := sim.NewRNG(seed)
	pat := traffic.UniformRandom{}
	w := net.Window()
	for cyc := int64(0); cyc < w.Warmup+w.Measure; cyc++ {
		for c := 0; c < cfg.Cores(); c++ {
			if rng.Bernoulli(rate) {
				net.Inject(c, pat.Dest(c/cfg.CoresPerNode, cfg.Nodes, rng), router.ClassData, 0)
			}
		}
		net.Step()
	}
	net.Drain(w.Drain + 100_000)
	return net.Result(), nil
}

// ScalingRow is one point of the ring-size study.
type ScalingRow struct {
	RoundTrip int
	Scheme    core.Scheme
	Latency   float64
}

// ScalingStudy quantifies the paper's large-scale argument: with the
// buffer depth held at 8, credit-based flow control collapses as the
// loop's round trip grows while the handshake schemes degrade only with
// the flight time. Load is UR at 0.09 packets/cycle/core.
func ScalingStudy(opts Options) ([]ScalingRow, *stats.Table, error) {
	schemes := []core.Scheme{core.TokenSlot, core.TokenChannel, core.DHSSetaside, core.GHSSetaside}
	rts := []int{4, 8, 16, 32}
	var points []Point
	for _, rt := range rts {
		for _, s := range schemes {
			rt := rt
			points = append(points, Point{
				Scheme:  s,
				Pattern: traffic.UniformRandom{},
				Rate:    0.09,
				Mod:     func(c *core.Config) { c.RoundTrip = rt },
			})
		}
	}
	results, err := RunPoints(points, opts)
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Ring-size scaling: latency (cycles) at UR 0.09 with 8-deep buffers",
		"round trip", "Token Slot", "Token Channel", "DHS w/ Setaside", "GHS w/ Setaside")
	var rows []ScalingRow
	k := 0
	for _, rt := range rts {
		row := []any{fmt.Sprintf("%d", rt)}
		for _, s := range schemes {
			r := results[k]
			k++
			rows = append(rows, ScalingRow{RoundTrip: rt, Scheme: s, Latency: r.AvgLatency})
			row = append(row, fmt.Sprintf("%.1f", r.AvgLatency))
		}
		t.AddRow(row...)
	}
	return rows, t, nil
}

// MultiFlitRow is one point of the multi-flit message study.
type MultiFlitRow struct {
	Flits      int
	MsgLatency float64
	MsgRate    float64
}

// MultiFlitStudy measures message-completion latency as packets span
// multiple independently-routed flits (the paper's fn. 6 design).
func MultiFlitStudy(scheme core.Scheme, rate float64, opts Options) ([]MultiFlitRow, *stats.Table, error) {
	t := stats.NewTable(fmt.Sprintf("Multi-flit messages (%s, UR %.3f msg/cycle/core)", scheme.PaperName(), rate),
		"flits/message", "message latency", "messages/cycle/core")
	var rows []MultiFlitRow
	for _, flits := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig(scheme)
		cfg.Seed = opts.Seed
		net, err := core.NewNetwork(cfg, opts.Window)
		if err != nil {
			return nil, nil, err
		}
		inj, err := traffic.NewMultiFlitInjector(traffic.UniformRandom{}, rate, flits, cfg.Nodes, cfg.CoresPerNode, opts.Seed+7)
		if err != nil {
			return nil, nil, err
		}
		lat, thr := inj.Run(net)
		rows = append(rows, MultiFlitRow{Flits: flits, MsgLatency: lat, MsgRate: thr})
		t.AddRow(fmt.Sprintf("%d", flits), fmt.Sprintf("%.1f", lat), fmt.Sprintf("%.4f", thr))
	}
	return rows, t, nil
}
