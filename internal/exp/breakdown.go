package exp

import (
	"fmt"

	"photon/internal/core"
	"photon/internal/stats"
	"photon/internal/traffic"
)

// BreakdownRow decomposes one scheme's average latency at an operating
// point into its pipeline stages. The decomposition makes the paper's
// mechanism visible: the handshake schemes win almost entirely in the
// arbitration-wait term (token waiting time), which is what §III sets out
// to cut.
type BreakdownRow struct {
	Scheme core.Scheme
	// Queueing is time from entering the output queue to becoming head
	// (total queue wait minus the head's arbitration wait).
	Queueing float64
	// Arbitration is time from head-eligibility to first launch — the
	// token waiting time.
	Arbitration float64
	// FlightAndEject is the remainder: optical flight, home buffering and
	// ejection, plus the injection pipeline.
	FlightAndEject float64
	// Total is the end-to-end average latency.
	Total float64
}

// LatencyBreakdown measures the latency decomposition of every scheme
// under UR at the given load.
func LatencyBreakdown(load float64, opts Options) ([]BreakdownRow, *stats.Table, error) {
	if load <= 0 {
		load = 0.05
	}
	var points []Point
	for _, s := range core.Schemes() {
		points = append(points, Point{Scheme: s, Pattern: traffic.UniformRandom{}, Rate: load})
	}
	results, err := RunPoints(points, opts)
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Latency decomposition (cycles) at UR %.2f pkt/cycle/core", load),
		"scheme", "queueing", "arbitration", "flight+eject", "total")
	var rows []BreakdownRow
	for i, s := range core.Schemes() {
		r := results[i]
		arb := r.AvgArbWait
		queue := r.AvgQueueWait - arb
		if queue < 0 {
			queue = 0
		}
		rest := r.AvgLatency - r.AvgQueueWait
		if rest < 0 {
			rest = 0
		}
		row := BreakdownRow{
			Scheme:         s,
			Queueing:       queue,
			Arbitration:    arb,
			FlightAndEject: rest,
			Total:          r.AvgLatency,
		}
		rows = append(rows, row)
		t.AddRow(s.PaperName(), fmt.Sprintf("%.1f", row.Queueing), fmt.Sprintf("%.1f", row.Arbitration),
			fmt.Sprintf("%.1f", row.FlightAndEject), fmt.Sprintf("%.1f", row.Total))
	}
	return rows, t, nil
}
