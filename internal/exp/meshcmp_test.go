package exp

import "testing"

// TestMeshCompareShape verifies the motivating comparison: the optical
// ring beats the electrical mesh on latency at every load, and the mesh
// saturates while the ring still tracks offered load.
func TestMeshCompareShape(t *testing.T) {
	rows, table, err := MeshCompare([]float64{0.01, 0.09, 0.13}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || table.Len() != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.RingLatency >= r.MeshLatency {
			t.Errorf("load %.2f: ring latency %.1f not below mesh %.1f", r.Load, r.RingLatency, r.MeshLatency)
		}
	}
	// At 0.13 the mesh is saturated, the ring is not.
	last := rows[2]
	if last.RingThr < 0.12 {
		t.Errorf("ring should carry 0.13: %.4f", last.RingThr)
	}
	if last.MeshThr > 0.115 {
		t.Errorf("mesh should saturate below 0.13: %.4f", last.MeshThr)
	}
}
