package exp

import (
	"fmt"
	"sync"

	"photon/internal/core"
	"photon/internal/cpu"
	"photon/internal/sim"
	"photon/internal/stats"
	"photon/internal/trace"
)

// AppResult is one benchmark's latency under every scheme of one group.
type AppResult struct {
	App     string
	Latency map[core.Scheme]float64
}

// Fig10 reproduces Figure 10: average communication latency of the
// application traces under (a) the global-arbitration group and (b) the
// distributed-arbitration group. Traces are synthesised (see
// internal/trace for the substitution rationale); traceCycles scales the
// span.
func Fig10(opts Options) (global, distributed []AppResult, ta, tb *stats.Table, err error) {
	traceCycles := int64(30_000)
	if opts.Quick {
		traceCycles = 6_000
	}
	globalSchemes := core.GlobalGroup()
	distSchemes := core.DistributedGroup()

	apps := trace.Apps()
	global = make([]AppResult, len(apps))
	distributed = make([]AppResult, len(apps))

	type job struct {
		appIdx int
		scheme core.Scheme
		dist   bool
	}
	var jobs []job
	for i := range apps {
		global[i] = AppResult{App: apps[i].Name, Latency: map[core.Scheme]float64{}}
		distributed[i] = AppResult{App: apps[i].Name, Latency: map[core.Scheme]float64{}}
		for _, s := range globalSchemes {
			jobs = append(jobs, job{appIdx: i, scheme: s})
		}
		for _, s := range distSchemes {
			jobs = append(jobs, job{appIdx: i, scheme: s, dist: true})
		}
	}

	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, opts.workers())
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			app := apps[j.appIdx]
			cfg := core.DefaultConfig(j.scheme)
			cfg.Seed = opts.Seed
			tr := app.Synthesize(cfg.Cores(), cfg.Nodes, traceCycles, opts.Seed+77)
			// Measure every packet of the trace (no warmup: app traces are
			// the workload, not a steady-state process).
			net, nerr := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: traceCycles, Drain: 0})
			if nerr == nil {
				var res core.Result
				res, nerr = trace.Replay(tr, net, 20_000)
				if nerr == nil {
					mu.Lock()
					if j.dist {
						distributed[j.appIdx].Latency[j.scheme] = res.AvgLatency
					} else {
						global[j.appIdx].Latency[j.scheme] = res.AvgLatency
					}
					mu.Unlock()
				}
			}
			if nerr != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("exp: Fig10 %s/%v: %w", app.Name, j.scheme, nerr)
				}
				mu.Unlock()
			}
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, nil, nil, firstErr
	}

	ta = appTable("Figure 10(a): application latency (cycles), global arbitration", global, globalSchemes)
	tb = appTable("Figure 10(b): application latency (cycles), distributed arbitration", distributed, distSchemes)
	return global, distributed, ta, tb, nil
}

func appTable(title string, rows []AppResult, schemes []core.Scheme) *stats.Table {
	headers := []string{"app"}
	for _, s := range schemes {
		headers = append(headers, s.PaperName())
	}
	t := stats.NewTable(title, headers...)
	for _, r := range rows {
		row := []any{r.App}
		for _, s := range schemes {
			row = append(row, fmt.Sprintf("%.1f", r.Latency[s]))
		}
		t.AddRow(row...)
	}
	return t
}

// LatencyReduction computes the mean and maximum percentage latency
// reduction of scheme b relative to scheme a across app results — the
// paper's "GHS reduces communication latency by an average of 42%" and
// "up to 59%" numbers.
func LatencyReduction(rows []AppResult, baseline, scheme core.Scheme) (avgPct, maxPct float64) {
	var sum float64
	var n int
	for _, r := range rows {
		base, ok1 := r.Latency[baseline]
		got, ok2 := r.Latency[scheme]
		if !ok1 || !ok2 || base <= 0 {
			continue
		}
		red := 100 * (base - got) / base
		sum += red
		n++
		if red > maxPct {
			maxPct = red
		}
	}
	if n > 0 {
		avgPct = sum / float64(n)
	}
	return avgPct, maxPct
}

// IPCResult is one row of the IPC study (§V-B): the same benchmark run
// closed-loop under a baseline and a handshake scheme.
type IPCResult struct {
	App          string
	BaselineIPC  float64
	HandshakeIPC float64
	GainPct      float64
}

// IPCStudy reproduces the §V-B system-performance experiment: closed-loop
// CMP runs comparing GHS+Setaside against Token Channel (paper: +15% IPC)
// and DHS+Setaside against Token Slot (+1.3%). Each benchmark's miss
// intensity derives from its trace model.
func IPCStudy(baseline, handshake core.Scheme, opts Options) ([]IPCResult, *stats.Table, error) {
	cycles := int64(30_000)
	if opts.Quick {
		cycles = 8_000
	}
	apps := trace.Apps()
	out := make([]IPCResult, len(apps))

	type job struct {
		appIdx int
		scheme core.Scheme
		isBase bool
	}
	var jobs []job
	for i := range apps {
		out[i] = IPCResult{App: apps[i].Name}
		jobs = append(jobs, job{i, baseline, true}, job{i, handshake, false})
	}
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, opts.workers())
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			app := apps[j.appIdx]
			cfg := core.DefaultConfig(j.scheme)
			cfg.Seed = opts.Seed
			net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: cycles, Drain: 0})
			var outcome cpu.Outcome
			if err == nil {
				params := cpu.DefaultParams()
				params.Seed = opts.Seed + 13
				// The closed-loop operating point uses 3x the trace's mean
				// miss flux: the paper's full-system out-of-order cores
				// keep several accesses in flight per committed load, so
				// the 4-entry MSHR window is meaningfully exercised during
				// memory phases. Without this headroom, self-throttling
				// hides the network from IPC entirely.
				params.MissPer1kInstr = 3 * cpu.AppMissIntensity(app.MeanRate, params.IssueWidth)
				params.Burstiness = app.Burstiness
				params.MeanBurst = app.MeanBurst
				params.PhaseSync = app.PhaseSync
				var m *cpu.CMP
				m, err = cpu.New(params, net)
				if err == nil {
					outcome = m.Run(cycles)
				}
			}
			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("exp: IPC %s/%v: %w", app.Name, j.scheme, err)
				}
			} else if j.isBase {
				out[j.appIdx].BaselineIPC = outcome.IPC
			} else {
				out[j.appIdx].HandshakeIPC = outcome.IPC
			}
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	t := stats.NewTable(
		fmt.Sprintf("IPC study: %s vs %s (closed-loop CMP, 4 MSHRs/core)", handshake.PaperName(), baseline.PaperName()),
		"app", baseline.PaperName()+" IPC", handshake.PaperName()+" IPC", "gain %")
	for i := range out {
		if out[i].BaselineIPC > 0 {
			out[i].GainPct = 100 * (out[i].HandshakeIPC - out[i].BaselineIPC) / out[i].BaselineIPC
		}
		t.AddRow(out[i].App, fmt.Sprintf("%.3f", out[i].BaselineIPC),
			fmt.Sprintf("%.3f", out[i].HandshakeIPC), fmt.Sprintf("%+.1f", out[i].GainPct))
	}
	return out, t, nil
}

// MeanIPCGain averages the per-app IPC gains.
func MeanIPCGain(rows []IPCResult) float64 {
	var sum float64
	var n int
	for _, r := range rows {
		if r.BaselineIPC > 0 {
			sum += r.GainPct
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
