package exp

import (
	"fmt"

	"photon/internal/core"
	"photon/internal/mesh"
	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/stats"
	"photon/internal/traffic"
)

// MeshCompareRow is one operating point of the electrical-vs-optical
// motivation study.
type MeshCompareRow struct {
	Load        float64
	MeshLatency float64
	MeshThr     float64
	RingLatency float64
	RingThr     float64
}

// MeshCompare quantifies the paper's motivating argument (§I): a
// conventional electrical 2D mesh against the nanophotonic ring with DHS
// + setaside flow control, on identical uniform-random workloads. The
// mesh pays multi-hop latency at low load and bisection-limited
// saturation; the optical ring is one-hop at light speed with
// wave-pipelined channel capacity.
func MeshCompare(loads []float64, opts Options) ([]MeshCompareRow, *stats.Table, error) {
	if len(loads) == 0 {
		loads = []float64{0.01, 0.03, 0.05, 0.07, 0.09, 0.12, 0.15}
		if opts.Quick {
			loads = []float64{0.01, 0.05, 0.09}
		}
	}
	t := stats.NewTable("Electrical 2D mesh vs nanophotonic ring (DHS w/ Setaside), UR",
		"load", "mesh latency", "mesh thr", "ring latency", "ring thr")
	var rows []MeshCompareRow
	for _, load := range loads {
		mres, err := runMeshUR(load, opts)
		if err != nil {
			return nil, nil, err
		}
		rres, err := RunPoint(Point{Scheme: core.DHSSetaside, Pattern: traffic.UniformRandom{}, Rate: load}, opts)
		if err != nil {
			return nil, nil, err
		}
		row := MeshCompareRow{
			Load:        load,
			MeshLatency: mres.AvgLatency,
			MeshThr:     mres.Throughput,
			RingLatency: rres.AvgLatency,
			RingThr:     rres.Throughput,
		}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%.2f", load),
			fmt.Sprintf("%.1f", row.MeshLatency), fmt.Sprintf("%.4f", row.MeshThr),
			fmt.Sprintf("%.1f", row.RingLatency), fmt.Sprintf("%.4f", row.RingThr))
	}
	return rows, t, nil
}

// runMeshUR drives the electrical mesh with Bernoulli UR traffic.
func runMeshUR(rate float64, opts Options) (mesh.Result, error) {
	cfg := mesh.DefaultConfig()
	cfg.Seed = opts.Seed
	net, err := mesh.NewNetwork(cfg, opts.Window)
	if err != nil {
		return mesh.Result{}, err
	}
	rng := sim.NewRNG(opts.Seed + 0x37)
	ur := traffic.UniformRandom{}
	w := net.Window()
	for cyc := int64(0); cyc < w.Warmup+w.Measure; cyc++ {
		for c := 0; c < cfg.Cores(); c++ {
			if rng.Bernoulli(rate) {
				net.Inject(c, ur.Dest(c/cfg.CoresPerNode, cfg.Nodes(), rng), router.ClassData, 0)
			}
		}
		net.Step()
	}
	net.Drain(w.Drain + 100_000)
	return net.Result(), nil
}
