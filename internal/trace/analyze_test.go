package trace

import (
	"strings"
	"testing"

	"photon/internal/router"
)

func TestAnalyzeBasics(t *testing.T) {
	tr := sampleTrace()
	a := Analyze(tr)
	if a.App != "demo" || a.Records != 4 || a.Cycles != 100 {
		t.Fatalf("header wrong: %+v", a)
	}
	if a.Rate != tr.Rate() {
		t.Fatal("rate mismatch")
	}
	if a.PeakPerCycle != 2 { // two records at cycle 0
		t.Fatalf("peak %d", a.PeakPerCycle)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(&Trace{App: "empty", Cores: 4, Nodes: 4, Cycles: 10})
	if a.Records != 0 || a.VMR != 0 {
		t.Fatalf("%+v", a)
	}
}

func TestAnalyzeBurstyVsSmooth(t *testing.T) {
	smooth, _ := AppByName("blackscholes")
	bursty, _ := AppByName("nas-cg")
	as := Analyze(smooth.Synthesize(256, 64, 10000, 1))
	ab := Analyze(bursty.Synthesize(256, 64, 10000, 1))
	if ab.VMR <= as.VMR {
		t.Fatalf("nas-cg VMR %.1f not above blackscholes %.1f", ab.VMR, as.VMR)
	}
	if len(ab.HotNodes) == 0 {
		t.Fatal("nas-cg should show hot banks")
	}
	tab := AnalysisTable([]Analysis{as, ab})
	if !strings.Contains(tab.String(), "nas-cg") {
		t.Fatal("table missing app")
	}
}

func TestSlice(t *testing.T) {
	tr := sampleTrace()
	s, err := tr.Slice(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Records) != 3 || s.Cycles != 10 {
		t.Fatalf("slice: %d records over %d cycles", len(s.Records), s.Cycles)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rebasing.
	s2, err := tr.Slice(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Records[0].Cycle != 0 || s2.Records[1].Cycle != 94 {
		t.Fatalf("rebase wrong: %+v", s2.Records)
	}
	if _, err := tr.Slice(50, 20); err == nil {
		t.Fatal("inverted slice accepted")
	}
	if _, err := tr.Slice(0, 1000); err == nil {
		t.Fatal("overlong slice accepted")
	}
}

func TestMerge(t *testing.T) {
	a := sampleTrace()
	b := sampleTrace()
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Records) != 8 {
		t.Fatalf("merged %d records", len(m.Records))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Trace{App: "x", Cores: 2, Nodes: 2, Cycles: 10}
	if _, err := Merge(a, bad); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestFilterDst(t *testing.T) {
	tr := sampleTrace()
	f := tr.FilterDst(func(d int) bool { return d == 1 })
	if len(f.Records) != 1 || f.Records[0].DstNode != 1 {
		t.Fatalf("filter: %+v", f.Records)
	}
	if f.Records[0].Class != router.ClassData {
		t.Fatal("class lost")
	}
}
