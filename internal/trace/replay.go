package trace

import (
	"fmt"

	"photon/internal/core"
)

// Replay drives a network with the trace open-loop (injections at the
// trace's own timestamps), then drains, and returns the run result. The
// network's configuration must match the trace's shape. The network's
// measurement window should cover the trace span; Replay measures every
// packet by running with warmup 0.
func Replay(t *Trace, net *core.Network, drainLimit int64) (core.Result, error) {
	cfg := net.Config()
	if cfg.Cores() != t.Cores || cfg.Nodes != t.Nodes {
		return core.Result{}, fmt.Errorf("trace: shape mismatch: trace %d cores/%d nodes, network %d/%d",
			t.Cores, t.Nodes, cfg.Cores(), cfg.Nodes)
	}
	idx := 0
	for cyc := int64(0); cyc < t.Cycles; cyc++ {
		for idx < len(t.Records) && t.Records[idx].Cycle == cyc {
			r := t.Records[idx]
			net.Inject(int(r.SrcCore), int(r.DstNode), r.Class, 0)
			idx++
		}
		net.Step()
	}
	if idx != len(t.Records) {
		return core.Result{}, fmt.Errorf("trace: %d records beyond the trace span were not injected", len(t.Records)-idx)
	}
	net.Drain(drainLimit)
	return net.Result(), nil
}
