package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/sim"
)

func sampleTrace() *Trace {
	return &Trace{
		App: "demo", Cores: 8, Nodes: 4, Cycles: 100,
		Records: []Record{
			{Cycle: 0, SrcCore: 0, DstNode: 1, Class: router.ClassData},
			{Cycle: 0, SrcCore: 3, DstNode: 2, Class: router.ClassRequest},
			{Cycle: 5, SrcCore: 7, DstNode: 0, Class: router.ClassReply},
			{Cycle: 99, SrcCore: 1, DstNode: 3, Class: router.ClassData},
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", tr, got)
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", tr, got)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestBinaryRejectsTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 2, len(full) - 1, 7} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated trace (at %d) accepted", cut)
		}
	}
}

func TestValidateCatchesBadTraces(t *testing.T) {
	cases := map[string]*Trace{
		"out-of-order": {App: "x", Cores: 4, Nodes: 4, Cycles: 10,
			Records: []Record{{Cycle: 5}, {Cycle: 3}}},
		"cycle-range": {App: "x", Cores: 4, Nodes: 4, Cycles: 10,
			Records: []Record{{Cycle: 10}}},
		"bad-core": {App: "x", Cores: 4, Nodes: 4, Cycles: 10,
			Records: []Record{{Cycle: 1, SrcCore: 4}}},
		"bad-node": {App: "x", Cores: 4, Nodes: 4, Cycles: 10,
			Records: []Record{{Cycle: 1, DstNode: 4}}},
		"bad-shape": {App: "x", Cores: 0, Nodes: 4, Cycles: 10},
	}
	for name, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestBinaryRoundTripProperty round-trips randomly generated traces.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := sim.NewRNG(5)
	f := func(n uint8, seed uint64) bool {
		tr := &Trace{App: "p", Cores: 16, Nodes: 8, Cycles: 1000}
		cyc := int64(0)
		for i := 0; i < int(n); i++ {
			cyc += rng.Geometric(0.3)
			if cyc >= tr.Cycles {
				break
			}
			tr.Records = append(tr.Records, Record{
				Cycle:   cyc,
				SrcCore: int32(rng.Intn(16)),
				DstNode: int32(rng.Intn(8)),
				Class:   router.Class(rng.Intn(3)),
			})
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAppsCoverPaperBenchmarks(t *testing.T) {
	apps := Apps()
	if len(apps) != 13 {
		t.Fatalf("got %d apps, want the paper's 13", len(apps))
	}
	suites := map[string]int{}
	for _, a := range apps {
		suites[a.Suite]++
		if a.MeanRate <= 0 || a.MeanRate > 0.05 {
			t.Errorf("%s: rate %.4f outside the paper's low-rate regime", a.Name, a.MeanRate)
		}
	}
	for _, s := range []string{"SPEComp", "PARSEC", "SPLASH-2", "NAS", "SPECjbb"} {
		if suites[s] == 0 {
			t.Errorf("suite %s missing", s)
		}
	}
	if _, err := AppByName("fma3d"); err != nil {
		t.Error(err)
	}
	if _, err := AppByName("doom"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	app, _ := AppByName("fft")
	a := app.Synthesize(256, 64, 5000, 42)
	b := app.Synthesize(256, 64, 5000, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed gave different traces")
	}
	c := app.Synthesize(256, 64, 5000, 43)
	if reflect.DeepEqual(a.Records, c.Records) {
		t.Fatal("different seeds gave identical traces")
	}
}

func TestSynthesizeValidAndOnRate(t *testing.T) {
	for _, app := range Apps() {
		tr := app.Synthesize(256, 64, 20000, 1)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		got := tr.Rate()
		if math.Abs(got-app.MeanRate)/app.MeanRate > 0.35 {
			t.Errorf("%s: trace rate %.5f, model mean %.5f", app.Name, got, app.MeanRate)
		}
	}
}

// TestSynthesizeBurstiness verifies that a high-burstiness app's traffic is
// much spikier than a smooth one's: compare the variance-to-mean ratio of
// per-cycle injection counts.
func TestSynthesizeBurstiness(t *testing.T) {
	vmr := func(name string) float64 {
		app, err := AppByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := app.Synthesize(256, 64, 20000, 7)
		perCycle := make([]float64, tr.Cycles)
		for _, r := range tr.Records {
			perCycle[r.Cycle]++
		}
		var mean float64
		for _, c := range perCycle {
			mean += c
		}
		mean /= float64(len(perCycle))
		var v float64
		for _, c := range perCycle {
			v += (c - mean) * (c - mean)
		}
		v /= float64(len(perCycle))
		return v / mean
	}
	smooth := vmr("blackscholes") // burstiness 2, sync 0.1
	bursty := vmr("nas-cg")       // burstiness 8, sync 0.9
	if bursty < 3*smooth {
		t.Fatalf("nas-cg VMR %.2f not clearly burstier than blackscholes %.2f", bursty, smooth)
	}
}

func TestReplayShapeMismatch(t *testing.T) {
	tr := sampleTrace() // 8 cores / 4 nodes
	cfg := core.DefaultConfig(core.TokenSlot)
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(tr, net, 100); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestReplayDeliversEverything(t *testing.T) {
	app, _ := AppByName("swaptions")
	cfg := core.DefaultConfig(core.DHSSetaside)
	tr := app.Synthesize(cfg.Cores(), cfg.Nodes, 3000, 3)
	net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 3000, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(tr, net, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d packets undelivered after drain", res.Unfinished)
	}
	if res.Delivered != int64(len(tr.Records)) {
		t.Fatalf("delivered %d of %d", res.Delivered, len(tr.Records))
	}
}
