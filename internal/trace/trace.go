// Package trace provides the application-trace substrate of the
// evaluation. The paper extracts traces from a Simics full-system
// simulation (SunFire / UltraSPARC-III+ / Solaris 9) of 13 benchmarks; that
// stack is proprietary and unavailable, so this package substitutes a
// synthetic trace generator whose per-application parameters (mean
// injection rate, burstiness, destination locality, request/reply mix)
// reproduce the *network-relevant* character of each workload class:
// scientific OpenMP codes with phase-wise all-to-all bursts, PARSEC
// pipeline codes with low smooth rates, SPLASH-2 kernels with strided
// sharing, latency-bound NAS kernels with the highest rates (where the
// paper sees the largest gains), and a transactional SPECjbb mix.
//
// Traces are streams of (cycle, source core, destination node, class)
// records, serialisable in a compact varint binary format and a plain text
// format, and replayable into a core.Network open-loop.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"photon/internal/router"
)

// Record is one injection event of a trace.
type Record struct {
	// Cycle is the injection cycle, non-decreasing along the trace.
	Cycle int64
	// SrcCore is the injecting core (global core id).
	SrcCore int32
	// DstNode is the destination node (L2 bank / cluster attachment).
	DstNode int32
	// Class tags the packet (data / request / reply).
	Class router.Class
}

// Trace is a complete workload: metadata plus its ordered records.
type Trace struct {
	// App is the benchmark name.
	App string
	// Cores and Nodes describe the CMP the trace was generated for.
	Cores int
	Nodes int
	// Cycles is the span of the trace (records lie in [0, Cycles)).
	Cycles int64
	// Records are the injections, sorted by cycle.
	Records []Record
}

// Rate returns the trace's mean injection rate in packets/cycle/core.
func (t *Trace) Rate() float64 {
	if t.Cycles == 0 || t.Cores == 0 {
		return 0
	}
	return float64(len(t.Records)) / float64(t.Cycles) / float64(t.Cores)
}

// Validate checks record ordering and ranges.
func (t *Trace) Validate() error {
	if t.Cores < 1 || t.Nodes < 1 {
		return fmt.Errorf("trace: bad shape %d cores / %d nodes", t.Cores, t.Nodes)
	}
	var prev int64 = -1
	for i, r := range t.Records {
		if r.Cycle < prev {
			return fmt.Errorf("trace: record %d out of order (cycle %d after %d)", i, r.Cycle, prev)
		}
		prev = r.Cycle
		if r.Cycle < 0 || r.Cycle >= t.Cycles {
			return fmt.Errorf("trace: record %d cycle %d outside [0,%d)", i, r.Cycle, t.Cycles)
		}
		if r.SrcCore < 0 || int(r.SrcCore) >= t.Cores {
			return fmt.Errorf("trace: record %d source core %d outside [0,%d)", i, r.SrcCore, t.Cores)
		}
		if r.DstNode < 0 || int(r.DstNode) >= t.Nodes {
			return fmt.Errorf("trace: record %d destination %d outside [0,%d)", i, r.DstNode, t.Nodes)
		}
	}
	return nil
}

const binaryMagic = "PHTR1\n"

// WriteBinary serialises the trace in the compact varint format:
// magic, app name, shape, then per record the cycle delta, source core,
// destination node and class as unsigned varints.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.App))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.App); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(t.Cores), uint64(t.Nodes), uint64(t.Cycles), uint64(len(t.Records))} {
		if err := putUvarint(v); err != nil {
			return err
		}
	}
	var prev int64
	for _, r := range t.Records {
		if err := putUvarint(uint64(r.Cycle - prev)); err != nil {
			return err
		}
		prev = r.Cycle
		if err := putUvarint(uint64(r.SrcCore)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.DstNode)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Class)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a trace written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, errors.New("trace: not a PHTR1 binary trace")
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible app name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	var hdr [4]uint64
	for i := range hdr {
		if hdr[i], err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	t := &Trace{
		App:    string(name),
		Cores:  int(hdr[0]),
		Nodes:  int(hdr[1]),
		Cycles: int64(hdr[2]),
	}
	if hdr[3] > 0 {
		t.Records = make([]Record, hdr[3])
	}
	var cyc int64
	for i := range t.Records {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d cycle: %w", i, err)
		}
		cyc += int64(d)
		src, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d source: %w", i, err)
		}
		dst, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d destination: %w", i, err)
		}
		cls, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d class: %w", i, err)
		}
		t.Records[i] = Record{Cycle: cyc, SrcCore: int32(src), DstNode: int32(dst), Class: router.Class(cls)}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteText serialises the trace as a line-oriented text format (header
// line then one "cycle src dst class" line per record) — convenient for
// diffing and hand-crafted test fixtures.
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "phtrace %s cores=%d nodes=%d cycles=%d records=%d\n",
		t.App, t.Cores, t.Nodes, t.Cycles, len(t.Records)); err != nil {
		return err
	}
	for _, r := range t.Records {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", r.Cycle, r.SrcCore, r.DstNode, int(r.Class)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format.
func ReadText(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	t := &Trace{}
	var n int
	if _, err := fmt.Fscanf(br, "phtrace %s cores=%d nodes=%d cycles=%d records=%d\n",
		&t.App, &t.Cores, &t.Nodes, &t.Cycles, &n); err != nil {
		return nil, fmt.Errorf("trace: bad text header: %w", err)
	}
	if n > 0 {
		t.Records = make([]Record, n)
	}
	for i := range t.Records {
		var cls int
		if _, err := fmt.Fscanf(br, "%d %d %d %d\n",
			&t.Records[i].Cycle, &t.Records[i].SrcCore, &t.Records[i].DstNode, &cls); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		t.Records[i].Class = router.Class(cls)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
