package trace

import (
	"fmt"
	"sort"

	"photon/internal/stats"
)

// Analysis summarises a trace's network-relevant character — the numbers a
// workload sheet reports before any simulation runs.
type Analysis struct {
	App     string
	Records int
	Cycles  int64
	// Rate is packets/cycle/core.
	Rate float64
	// VMR is the variance-to-mean ratio of per-cycle injection counts:
	// 1 for Poisson-like traffic, >> 1 for phased/bursty workloads.
	VMR float64
	// PeakPerCycle is the largest single-cycle injection count.
	PeakPerCycle int64
	// HotNodes lists destinations receiving at least twice the uniform
	// share, hottest first.
	HotNodes []HotNode
	// SourceImbalance is max/mean per-source injection (1 = uniform).
	SourceImbalance float64
}

// HotNode is one over-loaded destination.
type HotNode struct {
	Node  int
	Share float64 // fraction of all packets
}

// Analyze computes a trace's workload summary.
func Analyze(t *Trace) Analysis {
	a := Analysis{App: t.App, Records: len(t.Records), Cycles: t.Cycles, Rate: t.Rate()}
	if t.Cycles == 0 || len(t.Records) == 0 {
		return a
	}
	perCycle := make([]int64, t.Cycles)
	perDst := make([]int64, t.Nodes)
	perSrc := make([]int64, t.Cores)
	for _, r := range t.Records {
		perCycle[r.Cycle]++
		perDst[r.DstNode]++
		perSrc[r.SrcCore]++
	}
	var mv stats.MeanVar
	for _, c := range perCycle {
		mv.Add(float64(c))
		if c > a.PeakPerCycle {
			a.PeakPerCycle = c
		}
	}
	if mv.Mean() > 0 {
		a.VMR = mv.Var() / mv.Mean()
	}
	uniform := float64(len(t.Records)) / float64(t.Nodes)
	for nd, c := range perDst {
		if float64(c) >= 2*uniform {
			a.HotNodes = append(a.HotNodes, HotNode{Node: nd, Share: float64(c) / float64(len(t.Records))})
		}
	}
	sort.Slice(a.HotNodes, func(i, j int) bool { return a.HotNodes[i].Share > a.HotNodes[j].Share })
	var maxSrc int64
	for _, c := range perSrc {
		if c > maxSrc {
			maxSrc = c
		}
	}
	meanSrc := float64(len(t.Records)) / float64(t.Cores)
	if meanSrc > 0 {
		a.SourceImbalance = float64(maxSrc) / meanSrc
	}
	return a
}

// Table renders workload summaries for a set of traces.
func AnalysisTable(analyses []Analysis) *stats.Table {
	t := stats.NewTable("Workload character",
		"app", "records", "rate(pkt/cyc/core)", "VMR", "peak/cycle", "hot nodes", "src imbalance")
	for _, a := range analyses {
		t.AddRow(a.App, a.Records, fmt.Sprintf("%.5f", a.Rate), fmt.Sprintf("%.1f", a.VMR),
			a.PeakPerCycle, len(a.HotNodes), fmt.Sprintf("%.2f", a.SourceImbalance))
	}
	return t
}

// Slice returns the sub-trace covering cycles [from, to), rebased to start
// at cycle 0.
func (t *Trace) Slice(from, to int64) (*Trace, error) {
	if from < 0 || to > t.Cycles || from >= to {
		return nil, fmt.Errorf("trace: invalid slice [%d,%d) of %d cycles", from, to, t.Cycles)
	}
	out := &Trace{App: t.App, Cores: t.Cores, Nodes: t.Nodes, Cycles: to - from}
	for _, r := range t.Records {
		if r.Cycle >= from && r.Cycle < to {
			r.Cycle -= from
			out.Records = append(out.Records, r)
		}
	}
	return out, nil
}

// Merge interleaves two traces over the same CMP shape (multiprogrammed
// workloads); the result spans the longer of the two.
func Merge(a, b *Trace) (*Trace, error) {
	if a.Cores != b.Cores || a.Nodes != b.Nodes {
		return nil, fmt.Errorf("trace: merging mismatched shapes %d/%d vs %d/%d", a.Cores, a.Nodes, b.Cores, b.Nodes)
	}
	out := &Trace{
		App:    a.App + "+" + b.App,
		Cores:  a.Cores,
		Nodes:  a.Nodes,
		Cycles: a.Cycles,
	}
	if b.Cycles > out.Cycles {
		out.Cycles = b.Cycles
	}
	out.Records = make([]Record, 0, len(a.Records)+len(b.Records))
	i, j := 0, 0
	for i < len(a.Records) || j < len(b.Records) {
		switch {
		case j >= len(b.Records) || (i < len(a.Records) && a.Records[i].Cycle <= b.Records[j].Cycle):
			out.Records = append(out.Records, a.Records[i])
			i++
		default:
			out.Records = append(out.Records, b.Records[j])
			j++
		}
	}
	return out, nil
}

// FilterDst returns the sub-trace of packets addressed to keep(dst)==true
// destinations.
func (t *Trace) FilterDst(keep func(int) bool) *Trace {
	out := &Trace{App: t.App, Cores: t.Cores, Nodes: t.Nodes, Cycles: t.Cycles}
	for _, r := range t.Records {
		if keep(int(r.DstNode)) {
			out.Records = append(out.Records, r)
		}
	}
	return out
}
