package trace

import (
	"fmt"

	"photon/internal/router"
	"photon/internal/sim"
)

// AppModel parameterises the synthetic generator for one benchmark. The
// traffic process per core is a two-state (ON/OFF) modulated Bernoulli
// source — the standard compact model for CMP cache-miss traffic — with a
// destination mix of address-interleaved S-NUCA banks plus a few hot banks
// (shared data / directory homes).
type AppModel struct {
	// Name is the benchmark label used in Figure 10.
	Name string
	// Suite is the benchmark's origin (SPEComp, PARSEC, SPLASH-2, NAS,
	// SPECjbb).
	Suite string
	// MeanRate is the long-run injection rate in packets/cycle/core.
	MeanRate float64
	// Burstiness is the ratio of the ON-state rate to the mean rate
	// (1 = smooth Bernoulli; >1 = phased/bursty).
	Burstiness float64
	// MeanBurst is the average ON-phase length in cycles.
	MeanBurst float64
	// HotFraction of packets go to one of the hot banks instead of a
	// uniformly interleaved bank.
	HotFraction float64
	// HotBanks is the number of hot destination nodes.
	HotBanks int
	// PhaseSync is the fraction of cores whose ON/OFF phases follow a
	// single global schedule — barrier-phased scientific codes burst
	// together (high sync), pipeline and transactional codes do not. The
	// synchronized spikes are what starve credit-based flow control: an
	// aligned burst multiplies per-channel demand far beyond the credit
	// round-trip capacity, which is where the paper's handshake schemes
	// earn their application-level latency wins.
	PhaseSync float64
}

// Apps returns the 13 benchmarks of the paper's Figure 10 with their
// synthetic parameters. Rates are low (the paper: "the packet injection
// rate of each node in these real applications is very low"), NAS kernels
// are the heaviest (the paper sees its largest gains there), PARSEC codes
// the lightest, and the scientific codes the burstiest (barrier-phased
// communication).
func Apps() []AppModel {
	return []AppModel{
		// SPEComp 2001: OpenMP scientific codes, barrier-phased bursts.
		{Name: "fma3d", Suite: "SPEComp", MeanRate: 0.004, Burstiness: 8, MeanBurst: 200, HotFraction: 0.10, HotBanks: 2, PhaseSync: 0.8},
		{Name: "equake", Suite: "SPEComp", MeanRate: 0.006, Burstiness: 10, MeanBurst: 150, HotFraction: 0.15, HotBanks: 2, PhaseSync: 0.85},
		{Name: "mgrid", Suite: "SPEComp", MeanRate: 0.008, Burstiness: 6, MeanBurst: 300, HotFraction: 0.08, HotBanks: 4, PhaseSync: 0.8},
		// PARSEC: pipeline-parallel codes, light and fairly smooth.
		{Name: "blackscholes", Suite: "PARSEC", MeanRate: 0.001, Burstiness: 2, MeanBurst: 100, HotFraction: 0.05, HotBanks: 1, PhaseSync: 0.1},
		{Name: "freqmine", Suite: "PARSEC", MeanRate: 0.003, Burstiness: 3, MeanBurst: 120, HotFraction: 0.12, HotBanks: 2, PhaseSync: 0.2},
		{Name: "streamcluster", Suite: "PARSEC", MeanRate: 0.005, Burstiness: 4, MeanBurst: 250, HotFraction: 0.20, HotBanks: 1, PhaseSync: 0.4},
		{Name: "swaptions", Suite: "PARSEC", MeanRate: 0.002, Burstiness: 2, MeanBurst: 100, HotFraction: 0.05, HotBanks: 1, PhaseSync: 0.1},
		// SPLASH-2 kernels: strided sharing, phase-synchronised bursts.
		{Name: "fft", Suite: "SPLASH-2", MeanRate: 0.010, Burstiness: 6, MeanBurst: 180, HotFraction: 0.10, HotBanks: 4, PhaseSync: 0.7},
		{Name: "lu", Suite: "SPLASH-2", MeanRate: 0.007, Burstiness: 5, MeanBurst: 220, HotFraction: 0.15, HotBanks: 2, PhaseSync: 0.6},
		{Name: "radix", Suite: "SPLASH-2", MeanRate: 0.012, Burstiness: 7, MeanBurst: 160, HotFraction: 0.10, HotBanks: 4, PhaseSync: 0.75},
		// NAS parallel benchmarks: the heaviest network users in the paper.
		{Name: "nas-cg", Suite: "NAS", MeanRate: 0.020, Burstiness: 8, MeanBurst: 250, HotFraction: 0.12, HotBanks: 4, PhaseSync: 0.9},
		{Name: "nas-mg", Suite: "NAS", MeanRate: 0.016, Burstiness: 9, MeanBurst: 200, HotFraction: 0.10, HotBanks: 4, PhaseSync: 0.85},
		// SPECjbb 2000: transactional, smooth with hot directory banks.
		{Name: "specjbb", Suite: "SPECjbb", MeanRate: 0.009, Burstiness: 3, MeanBurst: 140, HotFraction: 0.25, HotBanks: 2, PhaseSync: 0.2},
	}
}

// AppByName finds a benchmark model.
func AppByName(name string) (AppModel, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return AppModel{}, fmt.Errorf("trace: unknown application %q", name)
}

// Synthesize generates a deterministic trace for the model on a CMP of the
// given shape. Each core runs an independent ON/OFF source: ON phases of
// geometric length MeanBurst inject at Burstiness*MeanRate; OFF phases are
// sized to hit MeanRate in the long run. Destinations are S-NUCA
// interleaved (uniform over nodes) with a HotFraction diverted to the hot
// banks; a core's own node is allowed (local traffic bypasses the ring, as
// in the real layout).
func (m AppModel) Synthesize(cores, nodes int, cycles int64, seed uint64) *Trace {
	if m.Burstiness < 1 {
		m.Burstiness = 1
	}
	onRate := m.MeanRate * m.Burstiness
	if onRate > 1 {
		onRate = 1
	}
	// Duty cycle d satisfies d*onRate = MeanRate.
	duty := m.MeanRate / onRate
	meanOff := m.MeanBurst * (1 - duty) / duty
	root := sim.NewRNG(seed ^ hashString(m.Name))

	t := &Trace{App: m.Name, Cores: cores, Nodes: nodes, Cycles: cycles}
	hot := make([]int, m.HotBanks)
	for i := range hot {
		hot[i] = root.Intn(nodes)
	}

	type phase struct {
		rng    *sim.RNG
		on     bool
		remain int64
	}
	newPhase := func(rng *sim.RNG) phase {
		p := phase{rng: rng, on: rng.Bernoulli(duty)}
		if p.on {
			p.remain = 1 + rng.Geometric(1/maxf(m.MeanBurst, 1))
		} else {
			p.remain = 1 + rng.Geometric(1/maxf(meanOff, 1))
		}
		return p
	}
	advance := func(p *phase) {
		if p.remain <= 0 {
			p.on = !p.on
			if p.on {
				p.remain = 1 + p.rng.Geometric(1/maxf(m.MeanBurst, 1))
			} else {
				p.remain = 1 + p.rng.Geometric(1/maxf(meanOff, 1))
			}
		}
		p.remain--
	}

	// The global phase models barrier-synchronised program phases; each
	// core either follows it (with probability PhaseSync, decided once) or
	// runs its own independent phase process.
	global := newPhase(root.Fork(0xBA221E2))
	type coreState struct {
		rng    *sim.RNG
		synced bool
		own    phase
	}
	states := make([]coreState, cores)
	for c := range states {
		rng := root.Fork(uint64(c))
		states[c] = coreState{
			rng:    rng,
			synced: rng.Bernoulli(m.PhaseSync),
			own:    newPhase(rng.Fork(1)),
		}
	}

	// Generate per cycle so records come out globally sorted.
	for cyc := int64(0); cyc < cycles; cyc++ {
		advance(&global)
		for c := range states {
			st := &states[c]
			on := global.on
			if !st.synced {
				advance(&st.own)
				on = st.own.on
			}
			rate := onRate
			if !on {
				rate = 0
			}
			if !st.rng.Bernoulli(rate) {
				continue
			}
			var dst int
			if len(hot) > 0 && st.rng.Bernoulli(m.HotFraction) {
				dst = hot[st.rng.Intn(len(hot))]
			} else {
				dst = st.rng.Intn(nodes)
			}
			t.Records = append(t.Records, Record{
				Cycle:   cyc,
				SrcCore: int32(c),
				DstNode: int32(dst),
				Class:   router.ClassData,
			})
		}
	}
	return t
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
