package ring

import (
	"testing"
)

func TestDataChannelDelivery(t *testing.T) {
	g := MustGeometry(64, 8)
	c := NewDataChannel[int](g)
	due, err := c.Launch(10, 32, 42) // segment 4, flight 5
	if err != nil {
		t.Fatal(err)
	}
	if due != 15 {
		t.Fatalf("arrival at %d, want 15", due)
	}
	for now := int64(0); now < 20; now++ {
		v, ok := c.Arrival(now)
		if (now == 15) != ok {
			t.Fatalf("cycle %d: arrival ok=%v", now, ok)
		}
		if ok && v != 42 {
			t.Fatalf("wrong flit %d", v)
		}
	}
	if c.Launches() != 1 {
		t.Fatalf("Launches = %d", c.Launches())
	}
}

func TestDataChannelCollisionDetected(t *testing.T) {
	g := MustGeometry(64, 8)
	c := NewDataChannel[int](g)
	// Offsets 32 (seg 4, flight 5) at cycle 10 and 40 (seg 5, flight 4)
	// at cycle 11 both land at 15 — strict Launch must refuse.
	if _, err := c.Launch(10, 32, 1); err != nil {
		t.Fatal(err)
	}
	c.Arrival(10)
	if _, err := c.Launch(11, 40, 2); err == nil {
		t.Fatal("overlapping launch not detected")
	}
}

// TestDataChannelStreamBumps checks the global-arbitration stream rule:
// a flit launched right behind another queues back-to-back instead of
// colliding, and arrival order equals launch order.
func TestDataChannelStreamBumps(t *testing.T) {
	g := MustGeometry(64, 8)
	c := NewDataChannel[int](g)
	d1, err := c.LaunchStream(10, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Arrival(10)
	d2, err := c.LaunchStream(11, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != 15 || d2 != 16 {
		t.Fatalf("stream arrivals %d,%d, want 15,16", d1, d2)
	}
	// Drain in order.
	var got []int
	for now := int64(11); now < 20; now++ {
		if v, ok := c.Arrival(now); ok {
			got = append(got, v)
		}
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("arrival order %v", got)
	}
}

// TestDataChannelStreamBoundedLag checks that 1-per-cycle launches keep the
// stream's booking within R+1 cycles of now, so the in-flight population
// stays physical (at most a loop's worth of light).
func TestDataChannelStreamBoundedLag(t *testing.T) {
	g := MustGeometry(64, 8)
	c := NewDataChannel[int](g)
	for now := int64(0); now < 200; now++ {
		c.Arrival(now)
		if _, err := c.LaunchStream(now, 1, int(now)); err != nil { // farthest sender, flight 8
			t.Fatalf("cycle %d: %v", now, err)
		}
		if c.InFlight() > g.RoundTrip()+2 {
			t.Fatalf("cycle %d: %d flits in flight", now, c.InFlight())
		}
	}
	if c.PeakInFlight() > g.RoundTrip()+2 {
		t.Fatalf("peak in flight %d", c.PeakInFlight())
	}
}

func TestReinjectTakesTokenSlot(t *testing.T) {
	g := MustGeometry(64, 8)
	c := NewDataChannel[int](g)
	for now := int64(0); now < 20; now++ {
		c.Arrival(now) // advance the channel clock as the network does
	}
	due, err := c.Reinject(20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if due != 29 { // now + R + 1
		t.Fatalf("reinjection lands at %d, want 29", due)
	}
	if c.Reinjections() != 1 {
		t.Fatalf("Reinjections = %d", c.Reinjections())
	}
	// A token emitted the same cycle would land its packet at the same
	// slot; the emitter suppression prevents that — but a *later* token's
	// packet must not collide either.
	c.Arrival(20)
	if _, err := c.Launch(21+3, 24, 9); err != nil { // token at 21, captured seg 3, flight R+1-3
		t.Fatalf("next token's packet collided with reinjection: %v", err)
	}
}

func TestHandshakeTiming(t *testing.T) {
	g := MustGeometry(64, 8)
	h := NewHandshakeChannel(g)
	for now := int64(0); now < 100; now++ {
		h.Deliver(now) // advance the channel clock as the network does
	}
	// Packet from offset 24 (segment 3) launched at 100 arrives at
	// 100+6=106; the answer must reach the sender at 109 = 100 + R + 1.
	h.Send(106, 24, Ack{To: 5, PacketID: 77, Positive: true})
	for now := int64(100); now < 115; now++ {
		acks := h.Deliver(now)
		if (now == 109) != (len(acks) == 1) {
			t.Fatalf("cycle %d: %d acks", now, len(acks))
		}
		if len(acks) == 1 {
			a := acks[0]
			if a.To != 5 || a.PacketID != 77 || !a.Positive {
				t.Fatalf("wrong ack %+v", a)
			}
		}
	}
	acks, nacks := h.Sent()
	if acks != 1 || nacks != 0 {
		t.Fatalf("Sent = %d,%d", acks, nacks)
	}
}

func TestHandshakeCountsNacks(t *testing.T) {
	g := MustGeometry(64, 8)
	h := NewHandshakeChannel(g)
	h.Send(10, 1, Ack{To: 1, PacketID: 1, Positive: false})
	h.Send(10, 9, Ack{To: 2, PacketID: 2, Positive: true})
	acks, nacks := h.Sent()
	if acks != 1 || nacks != 1 {
		t.Fatalf("Sent = %d,%d", acks, nacks)
	}
	if h.InFlight() != 2 {
		t.Fatalf("InFlight = %d", h.InFlight())
	}
}
