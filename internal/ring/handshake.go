package ring

import "photon/internal/sim"

// Ack is one handshake pulse: a single-bit ACK/NACK addressed to the sender
// of a specific packet. The paper dedicates one wavelength per home node on
// a shared handshake waveguide; because the sender knows exactly when its
// answer is due (AckDelay cycles after launch), one bit of payload —
// positive or negative — is all that is needed.
type Ack struct {
	// To is the absolute node id of the sender being answered.
	To int
	// PacketID identifies the packet the answer refers to (simulator-side
	// bookkeeping; the hardware needs no id thanks to fixed timing).
	PacketID uint64
	// Queue is the sender-side output queue (core index within the node)
	// the answered packet was launched from — simulator-side routing that
	// lets delivery address the owning port directly instead of probing
	// every queue at the node. The hardware needs no such field: the
	// per-queue pending state is indexed by the same fixed timing that
	// makes PacketID redundant.
	Queue int
	// Positive is true for ACK (packet buffered at home), false for NACK
	// (packet dropped; sender must retransmit).
	Positive bool
}

// LossFunc decides, at delivery time, whether a pulse is destroyed in
// flight (fault injection). It sees the delivery cycle and the pulse.
type LossFunc func(now int64, a Ack) bool

// HandshakeChannel carries Ack pulses from a home node back to senders with
// the fixed AckDelay timing of the loop geometry.
type HandshakeChannel struct {
	geom      *Geometry
	line      *sim.DelayLine[Ack]
	acks      int64
	nacks     int64
	loss      LossFunc
	acksLost  int64
	nacksLost int64
}

// NewHandshakeChannel builds the handshake channel for one home node.
func NewHandshakeChannel(geom *Geometry) *HandshakeChannel {
	return &HandshakeChannel{
		geom: geom,
		line: sim.NewDelayLine[Ack](2*geom.RoundTrip() + 4),
	}
}

// Send launches the answer for a packet that arrived at the home node at
// cycle arrivedAt from downstream offset p. The pulse travels the
// home-to-sender arc in Segment(p) cycles; for a flit whose flight was the
// nominal FlightToHome this makes the sender observe exactly AckDelay
// cycles after launch (paper §IV-C).
func (h *HandshakeChannel) Send(arrivedAt int64, p int, ack Ack) {
	if ack.Positive {
		h.acks++
	} else {
		h.nacks++
	}
	h.line.Schedule(arrivedAt+int64(h.geom.Segment(p)), ack)
}

// SetLoss installs a fault filter consulted for every delivered pulse.
// Destroyed pulses never reach their sender; the send-side counters stay
// intact (the home node did emit them) while Lost accounts the casualties.
func (h *HandshakeChannel) SetLoss(f LossFunc) { h.loss = f }

// Lost reports cumulative (ACK, NACK) pulses destroyed in flight.
func (h *HandshakeChannel) Lost() (acksLost, nacksLost int64) {
	return h.acksLost, h.nacksLost
}

// Deliver returns the pulses reaching their senders this cycle. With a
// loss filter installed, destroyed pulses are removed (and counted) before
// the survivors are handed over.
func (h *HandshakeChannel) Deliver(now int64) []Ack {
	due := h.line.PopDue(now)
	if h.loss == nil || len(due) == 0 {
		return due
	}
	kept := due[:0]
	for _, a := range due {
		if h.loss(now, a) {
			if a.Positive {
				h.acksLost++
			} else {
				h.nacksLost++
			}
			continue
		}
		kept = append(kept, a)
	}
	return kept
}

// SkipTo fast-forwards the channel's clock to cycle now when no pulse is
// in flight (the engine's idle skip-ahead). Panics via the delay line if a
// pulse is still travelling.
func (h *HandshakeChannel) SkipTo(now int64) { h.line.SkipTo(now) }

// InFlight reports the number of pulses currently travelling.
func (h *HandshakeChannel) InFlight() int { return h.line.Len() }

// Sent reports cumulative (ACK, NACK) counts.
func (h *HandshakeChannel) Sent() (acksSent, nacksSent int64) { return h.acks, h.nacks }
