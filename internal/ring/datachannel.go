package ring

import (
	"fmt"

	"photon/internal/sim"
)

// DataChannel is the wave-pipelined optical data channel owned by one home
// node (the single reader of an MWSR channel). It tracks flits in flight
// and enforces the physical exclusivity of each channel segment: two flits
// may never occupy the same arrival slot, because that would mean two light
// pulses overlapping in the waveguide. Arbitration schemes are responsible
// for never causing that; the channel turns any violation into an error so
// scheme bugs surface immediately instead of silently corrupting results.
type DataChannel[T any] struct {
	geom    *Geometry
	inFlit  *sim.SlotLine[T]
	lastDue int64
	sends   int64
	reinjs  int64
	maxLoad int
}

// NewDataChannel builds a data channel over the given loop geometry.
func NewDataChannel[T any](geom *Geometry) *DataChannel[T] {
	// Horizon: the longest booking is a reinjection (R+1 cycles ahead);
	// double it for slack.
	return &DataChannel[T]{
		geom:   geom,
		inFlit: sim.NewSlotLine[T](2*geom.RoundTrip() + 4),
	}
}

// Launch books the channel for a flit sent at cycle now from downstream
// offset p; the flit will arrive at the home node at now+FlightToHome(p).
// The returned cycle is the arrival time. An *sim.ErrSlotTaken error means
// the caller's arbitration double-booked the waveguide.
func (c *DataChannel[T]) Launch(now int64, p int, flit T) (int64, error) {
	due := now + int64(c.geom.FlightToHome(p))
	if err := c.inFlit.Schedule(due, flit); err != nil {
		return 0, fmt.Errorf("ring: data channel collision launching from offset %d at cycle %d: %w", p, now, err)
	}
	c.sends++
	if due > c.lastDue {
		c.lastDue = due
	}
	if c.inFlit.Len() > c.maxLoad {
		c.maxLoad = c.inFlit.Len()
	}
	return due, nil
}

// LaunchStream books the channel for a flit sent at cycle now from offset
// p under *global* arbitration, where the relayed token rides directly
// behind the previous flit's tail. Consecutive launches therefore form a
// back-to-back stream: if the nominal arrival cycle is already occupied by
// the immediately preceding flit, this flit lands in the next slot — the
// discrete rendering of sub-cycle wave-pipelined alignment. Launch order
// equals arrival order, so the channel stays a FIFO pipe.
func (c *DataChannel[T]) LaunchStream(now int64, p int, flit T) (int64, error) {
	due := now + int64(c.geom.FlightToHome(p))
	if due <= c.lastDue {
		due = c.lastDue + 1
	}
	if err := c.inFlit.Schedule(due, flit); err != nil {
		return 0, fmt.Errorf("ring: data channel stream collision from offset %d at cycle %d: %w", p, now, err)
	}
	c.sends++
	c.lastDue = due
	if c.inFlit.Len() > c.maxLoad {
		c.maxLoad = c.inFlit.Len()
	}
	return due, nil
}

// Reinject books the channel for a flit the home node puts back onto its
// own channel at cycle now (DHS with circulation). The home virtually
// consumes the token it would have emitted this cycle, so the flit takes
// that token's arrival slot: now + R + 1.
func (c *DataChannel[T]) Reinject(now int64, flit T) (int64, error) {
	due := now + int64(c.geom.RoundTrip()) + 1
	if err := c.inFlit.Schedule(due, flit); err != nil {
		return 0, fmt.Errorf("ring: data channel collision reinjecting at cycle %d: %w", now, err)
	}
	c.reinjs++
	if due > c.lastDue {
		c.lastDue = due
	}
	return due, nil
}

// Arrival returns the flit (if any) landing at the home node this cycle.
func (c *DataChannel[T]) Arrival(now int64) (T, bool) {
	return c.inFlit.PopDue(now)
}

// SkipTo fast-forwards an *empty* channel's clock to cycle now — the
// engine's idle skip-ahead uses it after proving nothing is in flight.
// lastDue needs no adjustment: it is an absolute cycle in the past, and
// every post-skip launch computes a later due cycle. Panics via the slot
// line if a flit is still travelling.
func (c *DataChannel[T]) SkipTo(now int64) { c.inFlit.SkipTo(now) }

// InFlight reports how many flits are currently on the channel.
func (c *DataChannel[T]) InFlight() int { return c.inFlit.Len() }

// Launches reports the cumulative number of sender launches.
func (c *DataChannel[T]) Launches() int64 { return c.sends }

// Reinjections reports the cumulative number of home reinjections.
func (c *DataChannel[T]) Reinjections() int64 { return c.reinjs }

// PeakInFlight reports the largest number of simultaneously in-flight
// flits observed — bounded by R+1 on a correctly arbitrated channel, a fact
// the invariant tests check.
func (c *DataChannel[T]) PeakInFlight() int { return c.maxLoad }
