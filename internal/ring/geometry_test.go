package ring

import (
	"testing"
	"testing/quick"
)

func TestGeometryValidation(t *testing.T) {
	cases := []struct {
		nodes, rt int
		ok        bool
	}{
		{64, 8, true}, {64, 4, true}, {64, 16, true}, {64, 32, true},
		{128, 16, true}, {8, 8, true}, {16, 1, true},
		{1, 1, false}, {64, 0, false}, {64, 7, false}, {64, 65, false},
	}
	for _, c := range cases {
		_, err := NewGeometry(c.nodes, c.rt)
		if (err == nil) != c.ok {
			t.Errorf("NewGeometry(%d,%d): err=%v, want ok=%v", c.nodes, c.rt, err, c.ok)
		}
	}
}

func TestMustGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGeometry with bad args did not panic")
		}
	}()
	MustGeometry(64, 7)
}

func TestOffsetInverse(t *testing.T) {
	g := MustGeometry(64, 8)
	for home := 0; home < 64; home += 7 {
		for node := 0; node < 64; node++ {
			off := g.Offset(home, node)
			if g.NodeAt(home, off) != node {
				t.Fatalf("NodeAt(Offset) not identity: home %d node %d off %d", home, node, off)
			}
			if node == home && off != 0 {
				t.Fatalf("Offset(home,home) = %d", off)
			}
		}
	}
}

func TestSegments(t *testing.T) {
	g := MustGeometry(64, 8)
	if g.NodesPerCycle() != 8 {
		t.Fatalf("NodesPerCycle = %d", g.NodesPerCycle())
	}
	cases := []struct{ p, seg int }{
		{1, 1}, {8, 1}, {9, 2}, {16, 2}, {57, 8}, {63, 8},
	}
	for _, c := range cases {
		if got := g.Segment(c.p); got != c.seg {
			t.Errorf("Segment(%d) = %d, want %d", c.p, got, c.seg)
		}
	}
}

func TestSegmentPanicsOutOfRange(t *testing.T) {
	g := MustGeometry(64, 8)
	for _, p := range []int{0, 64, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Segment(%d) did not panic", p)
				}
			}()
			g.Segment(p)
		}()
	}
}

// TestTokenSlotArrivalConstancy verifies the wave-pipelining identity the
// whole distributed design rests on: for every sender offset p, capture at
// emission+Segment(p) and flight of FlightToHome(p) land the packet at the
// home exactly R+1 cycles after token emission — one arrival slot per
// token, collision-free by construction.
func TestTokenSlotArrivalConstancy(t *testing.T) {
	for _, rt := range []int{4, 8, 16, 32} {
		g := MustGeometry(64, rt)
		for p := 1; p < 64; p++ {
			arrival := g.Segment(p) + g.FlightToHome(p)
			if arrival != rt+1 {
				t.Fatalf("R=%d offset %d: capture+flight = %d, want %d", rt, p, arrival, rt+1)
			}
		}
	}
}

func TestFlightBounds(t *testing.T) {
	g := MustGeometry(64, 8)
	for p := 1; p < 64; p++ {
		f := g.FlightToHome(p)
		if f < 1 || f > 8 {
			t.Fatalf("FlightToHome(%d) = %d outside [1,8]", p, f)
		}
	}
	// The node just downstream of home sends almost a full loop.
	if g.FlightToHome(1) != 8 {
		t.Fatalf("FlightToHome(1) = %d, want 8", g.FlightToHome(1))
	}
	// The node just upstream of home is one segment away.
	if g.FlightToHome(63) != 1 {
		t.Fatalf("FlightToHome(63) = %d, want 1", g.FlightToHome(63))
	}
}

// TestAckDelayIsRPlus1 pins the paper's §IV-C claim: the handshake answer
// reaches the sender exactly R+1 cycles after launch, independent of the
// sender's position — the property that makes 1-bit handshake messages
// with scheduled detector activation feasible.
func TestAckDelayIsRPlus1(t *testing.T) {
	for _, rt := range []int{4, 8, 16} {
		g := MustGeometry(64, rt)
		if g.AckDelay() != rt+1 {
			t.Fatalf("R=%d: AckDelay = %d", rt, g.AckDelay())
		}
		for p := 1; p < 64; p++ {
			sent := int64(100)
			arrived := sent + int64(g.FlightToHome(p))
			if got := g.HandshakeReturn(arrived, p); got != sent+int64(g.AckDelay()) {
				t.Fatalf("R=%d offset %d: handshake at %d, want %d", rt, p, got, sent+int64(g.AckDelay()))
			}
		}
	}
}

func TestSweepCoversAllOffsets(t *testing.T) {
	g := MustGeometry(64, 8)
	seen := make([]bool, 64)
	for age := 1; age <= g.RoundTrip(); age++ {
		start := g.SweepStart(age)
		for i := 0; i < g.NodesPerCycle(); i++ {
			off := start + i
			if off < 64 {
				if seen[off] {
					t.Fatalf("offset %d swept twice", off)
				}
				seen[off] = true
			}
		}
	}
	for p := 1; p < 64; p++ {
		if !seen[p] {
			t.Fatalf("offset %d never swept", p)
		}
	}
	if !g.Expired(g.RoundTrip()+1) || g.Expired(g.RoundTrip()) {
		t.Fatal("Expired boundary wrong")
	}
}

func TestOffsetProperty(t *testing.T) {
	g := MustGeometry(64, 8)
	f := func(homeRaw, nodeRaw uint8) bool {
		home, node := int(homeRaw)%64, int(nodeRaw)%64
		off := g.Offset(home, node)
		return off >= 0 && off < 64 && g.NodeAt(home, off) == node
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
