// Package ring models the cycle-accurate behaviour of light on the shared
// optical rings: where a token is after k cycles, how long a data flit
// flies from a sender to its home node, and when a handshake pulse returns.
//
// The model follows the paper's wave-pipelined channel abstraction
// (§II-C): a unidirectional optical loop with round-trip time R cycles is
// divided into R back-to-back segments; light (tokens, data and handshake
// pulses alike) advances one segment per cycle, i.e. Nodes/R node positions
// per cycle. On the paper's 400 mm^2, 5 GHz, 64-node die R = 8, so light
// passes 8 nodes per cycle — exactly Corona's "a token can pass eight nodes
// in one cycle".
//
// All positions are expressed as *downstream offsets from the home node* of
// the channel under consideration: offset p in 1..Nodes-1 is the p-th node
// the light reaches after leaving home. Working in offset space makes every
// one of the Nodes MWSR channels identical up to rotation.
package ring

import "fmt"

// Geometry captures the timing structure of one optical loop.
type Geometry struct {
	nodes     int // nodes attached to the loop
	roundTrip int // cycles for light to complete the loop (R)
	perCycle  int // node positions light passes per cycle (nodes/R)
}

// NewGeometry builds the timing model for a loop with the given node count
// and round-trip time in cycles. nodes must be divisible by roundTrip so
// that segments hold a whole number of nodes (every configuration used in
// the paper and its scaling discussion — 64/8, 64/4, 64/16, 128/16, ... —
// satisfies this).
func NewGeometry(nodes, roundTrip int) (*Geometry, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("ring: need at least 2 nodes, got %d", nodes)
	}
	if roundTrip < 1 {
		return nil, fmt.Errorf("ring: round trip must be >= 1 cycle, got %d", roundTrip)
	}
	if roundTrip > nodes {
		return nil, fmt.Errorf("ring: round trip %d exceeds node count %d (sub-node segments)", roundTrip, nodes)
	}
	if nodes%roundTrip != 0 {
		return nil, fmt.Errorf("ring: nodes (%d) must be divisible by round trip (%d)", nodes, roundTrip)
	}
	return &Geometry{nodes: nodes, roundTrip: roundTrip, perCycle: nodes / roundTrip}, nil
}

// MustGeometry is NewGeometry for known-good literals (tests, defaults).
func MustGeometry(nodes, roundTrip int) *Geometry {
	g, err := NewGeometry(nodes, roundTrip)
	if err != nil {
		panic(err)
	}
	return g
}

// Nodes returns the number of nodes on the loop.
func (g *Geometry) Nodes() int { return g.nodes }

// RoundTrip returns the loop's round-trip time R in cycles.
func (g *Geometry) RoundTrip() int { return g.roundTrip }

// NodesPerCycle returns how many node positions light advances per cycle.
func (g *Geometry) NodesPerCycle() int { return g.perCycle }

// Offset converts an absolute node id into the downstream offset from home:
// 0 for home itself, 1 for the next node light reaches, ..., Nodes-1 for
// the node immediately upstream of home.
func (g *Geometry) Offset(home, node int) int {
	return ((node-home)%g.nodes + g.nodes) % g.nodes
}

// NodeAt is the inverse of Offset: the absolute id of the node at a given
// downstream offset from home.
func (g *Geometry) NodeAt(home, offset int) int {
	return (home + offset) % g.nodes
}

// Segment returns which of the R loop segments contains downstream offset
// p (1-based: segment 1 is reached one cycle after light leaves home).
// It panics for p outside 1..Nodes-1; home itself is not in any segment.
func (g *Geometry) Segment(p int) int {
	if p < 1 || p >= g.nodes {
		panic(fmt.Sprintf("ring: segment of invalid offset %d (nodes %d)", p, g.nodes))
	}
	return (p + g.perCycle - 1) / g.perCycle
}

// TokenReach returns the cycle (relative to emission) at which a token
// emitted by the home node reaches downstream offset p; identical to
// Segment by construction.
func (g *Geometry) TokenReach(p int) int { return g.Segment(p) }

// FlightToHome returns the number of cycles a data flit launched at
// downstream offset p takes to reach the home node, including the E/O and
// O/E conversions that the paper folds into link traversal. The value is
// R+1-Segment(p), between 1 (the node just upstream of home) and R (the
// node just downstream of home, whose flit must travel almost the whole
// loop).
//
// This definition makes distributed token slots collision-free by
// construction: a packet grabbed from the token emitted at cycle t is
// launched at cycle t+Segment(p) and lands at cycle t+R+1 regardless of p.
func (g *Geometry) FlightToHome(p int) int {
	return g.roundTrip + 1 - g.Segment(p)
}

// AckDelay returns the fixed sender-observed handshake latency: a sender
// receives the ACK/NACK for a packet exactly AckDelay cycles after
// launching it (paper §IV-C: "if the round-trip time for the optical ring
// is 8 cycles, then a sender will receive the handshake message in 9
// cycles"). The constancy is what lets each sender keep its handshake
// detector off except in that one known cycle, making 1-bit handshake
// messages feasible.
func (g *Geometry) AckDelay() int { return g.roundTrip + 1 }

// HandshakeReturn returns the cycle at which a handshake pulse emitted by
// the home when a packet arrives (arrivedAt) reaches the sender at offset
// p: the pulse spends Segment(p) cycles on the home→sender arc. For a flit
// whose flight was the nominal FlightToHome this equals the packet's launch
// cycle plus AckDelay.
func (g *Geometry) HandshakeReturn(arrivedAt int64, p int) int64 {
	return arrivedAt + int64(g.Segment(p))
}

// SweepStart returns the first downstream offset covered by a token of the
// given age (cycles since emission, 1-based): a token of age a sweeps
// offsets [SweepStart(a), SweepStart(a)+NodesPerCycle) each cycle.
func (g *Geometry) SweepStart(age int) int {
	return (age-1)*g.perCycle + 1
}

// Expired reports whether a token of the given age has completed the loop
// and returned to (or passed) the home node.
func (g *Geometry) Expired(age int) bool { return age > g.roundTrip }
