package farm

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"photon/internal/core"
	"photon/internal/exp"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// testWindow keeps per-point runs in the low-millisecond range.
var testWindow = sim.Window{Warmup: 50, Measure: 200, Drain: 100}

// testGrid builds a small deterministic grid mixing schemes and loads.
func testGrid(n int) Grid {
	schemes := []core.Scheme{core.TokenSlot, core.DHS}
	rates := []float64{0.01, 0.02, 0.03}
	points := make([]exp.Point, n)
	for i := range points {
		points[i] = exp.Point{
			Scheme:  schemes[i%len(schemes)],
			Pattern: traffic.UniformRandom{},
			Rate:    rates[i%len(rates)],
		}
	}
	return Grid{Name: "farmtest", Points: points, Opts: exp.Options{Window: testWindow, Seed: 7}}
}

// noSleep replaces the retry clock so backoff tests finish instantly.
func noSleep(cfg *Config) *[]time.Duration {
	var (
		mu     sync.Mutex
		slept  []time.Duration
		record = func(d time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			slept = append(slept, d)
		}
	)
	cfg.sleep = record
	return &slept
}

func TestRunMatchesSerialDigest(t *testing.T) {
	g := testGrid(8)
	want, err := SerialGridDigest(g)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	rep, err := Run(g, Config{Workers: 4})
	if err != nil {
		t.Fatalf("farm: %v", err)
	}
	if !rep.Complete() {
		t.Fatalf("farm grid incomplete: %+v", rep.Quarantined())
	}
	if rep.Ran != len(g.Points) || rep.Resumed != 0 {
		t.Fatalf("ran %d resumed %d, want %d/0", rep.Ran, rep.Resumed, len(g.Points))
	}
	if got := rep.GridDigest(); got != want {
		t.Fatalf("farm grid digest %016x != serial %016x", got, want)
	}
	for i, p := range rep.Points {
		if p.Status != StatusDone || p.Attempts != 1 {
			t.Fatalf("point %d: %+v", i, p)
		}
		if p.Key != g.Key(i) {
			t.Fatalf("point %d keyed %q, want %q", i, p.Key, g.Key(i))
		}
		if p.Summary.Delivered == 0 {
			t.Fatalf("point %d delivered nothing: %+v", i, p.Summary)
		}
	}
}

// TestQuarantineAfterK injects an always-panicking point and asserts the
// supervision contract: the poison point is retried with the exact
// backoff schedule, quarantined after MaxAttempts, and the rest of the
// grid completes untouched.
func TestQuarantineAfterK(t *testing.T) {
	g := testGrid(6)
	g.Points[2].Mod = func(*core.Config) { panic("injected poison point") }
	g.Points[2].Label = "poison"

	cfg := Config{Workers: 2, MaxAttempts: 3, Backoff: Backoff{Base: 10 * time.Millisecond, Cap: time.Minute}}
	slept := noSleep(&cfg)
	rep, err := Run(g, cfg)
	if err != nil {
		t.Fatalf("Run returned a harness error for a per-point failure: %v", err)
	}
	if rep.Complete() {
		t.Fatal("grid reported complete despite a poison point")
	}
	q := rep.Quarantined()
	if len(q) != 1 || q[0].Index != 2 {
		t.Fatalf("quarantined %+v, want exactly point 2", q)
	}
	if q[0].Attempts != 3 {
		t.Fatalf("poison point got %d attempts, want 3", q[0].Attempts)
	}
	if !strings.Contains(q[0].LastError, "injected poison point") || !strings.Contains(q[0].LastError, q[0].Key) {
		t.Fatalf("quarantine error lost identity or cause: %q", q[0].LastError)
	}
	for i, p := range rep.Points {
		if i != 2 && p.Status != StatusDone {
			t.Fatalf("healthy point %d ended %s: %s", i, p.Status, p.LastError)
		}
	}
	// Two retries -> backoff slept exactly Base then 2*Base.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("backoff schedule %v, want %v", *slept, want)
	}
}

func TestPointTimeoutQuarantines(t *testing.T) {
	g := testGrid(3)
	g.Points[1].Mod = func(*core.Config) { time.Sleep(10 * time.Second) }
	g.Points[1].Label = "hang"

	// The deadline must be generous enough that the healthy millisecond
	// points clear it even under the race detector's slowdown.
	cfg := Config{Workers: 3, MaxAttempts: 2, PointTimeout: time.Second}
	noSleep(&cfg)
	rep, err := Run(g, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	q := rep.Quarantined()
	if len(q) != 1 || q[0].Index != 1 || q[0].Attempts != 2 {
		t.Fatalf("quarantined %+v, want point 1 after 2 attempts", q)
	}
	if !strings.Contains(q[0].LastError, ErrPointTimeout.Error()) {
		t.Fatalf("timeout not named in %q", q[0].LastError)
	}
}

func TestRunResumesFromManifest(t *testing.T) {
	g := testGrid(6)
	path := t.TempDir() + "/manifest.jsonl"

	first, err := Run(g, Config{Workers: 2, Manifest: path})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if !first.Complete() {
		t.Fatal("first run incomplete")
	}

	second, err := Run(g, Config{Workers: 2, Manifest: path, Resume: true})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if second.Ran != 0 || second.Resumed != len(g.Points) {
		t.Fatalf("resume re-ran %d points (resumed %d), want 0 (%d)", second.Ran, second.Resumed, len(g.Points))
	}
	if !second.Complete() || second.GridDigest() != first.GridDigest() {
		t.Fatalf("resumed digest %016x != original %016x", second.GridDigest(), first.GridDigest())
	}
	for i, p := range second.Points {
		if !p.Resumed {
			t.Fatalf("point %d not marked resumed: %+v", i, p)
		}
		if p.Summary != first.Points[i].Summary {
			t.Fatalf("point %d summary lost in round-trip:\n got %+v\nwant %+v", i, p.Summary, first.Points[i].Summary)
		}
	}
}

func TestResumeRejectsMismatchedGrid(t *testing.T) {
	g := testGrid(6)
	path := t.TempDir() + "/manifest.jsonl"
	if _, err := Run(g, Config{Workers: 2, Manifest: path}); err != nil {
		t.Fatalf("first run: %v", err)
	}
	other := testGrid(6)
	other.Opts.Seed = 99 // different behaviour, same keys
	if _, err := Run(other, Config{Workers: 2, Manifest: path, Resume: true}); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("resume against a different grid: %v, want ErrManifestMismatch", err)
	}
	smaller := testGrid(4)
	if _, err := Run(smaller, Config{Workers: 2, Manifest: path, Resume: true}); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("resume against a smaller grid: %v, want ErrManifestMismatch", err)
	}
}

func TestDoContainsPanics(t *testing.T) {
	errs := Do(5, 2, func(i int) error {
		if i == 3 {
			panic("job 3 exploded")
		}
		return nil
	})
	for i, err := range errs {
		if i == 3 {
			if err == nil || !strings.Contains(err.Error(), "job 3 exploded") {
				t.Fatalf("panic not contained: %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if got := Do(0, 4, func(int) error { return nil }); len(got) != 0 {
		t.Fatalf("Do(0) returned %d slots", len(got))
	}
}

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (Backoff{}).Delay(1); got != 100*time.Millisecond {
		t.Fatalf("zero-value base delay = %v", got)
	}
	if got := (Backoff{}).Delay(1000); got != 5*time.Second {
		t.Fatalf("zero-value capped delay = %v", got)
	}
	if got := (Backoff{Base: time.Second, Cap: time.Millisecond}).Delay(1); got != time.Second {
		t.Fatalf("cap below base should clamp to base, got %v", got)
	}
}

func TestMergeDigestsOrderSensitive(t *testing.T) {
	a := MergeDigests([]uint64{1, 2, 3})
	b := MergeDigests([]uint64{3, 2, 1})
	if a == b {
		t.Fatal("digest merge is order-insensitive")
	}
	if MergeDigests(nil) != MergeDigests([]uint64{}) {
		t.Fatal("empty merges disagree")
	}
}

func TestGridFingerprintSensitivity(t *testing.T) {
	g := testGrid(4)
	base := g.Fingerprint()
	seeded := g
	seeded.Opts.Seed = 8
	if seeded.Fingerprint() == base {
		t.Fatal("fingerprint ignores seed")
	}
	renamed := g
	renamed.Name = "other"
	if renamed.Fingerprint() == base {
		t.Fatal("fingerprint ignores name")
	}
	shorter := testGrid(3)
	if shorter.Fingerprint() == base {
		t.Fatal("fingerprint ignores point count")
	}
}
