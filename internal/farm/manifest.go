package farm

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"sync"
)

// The manifest is a crash-safe JSONL journal. Line one is the header
// (grid name, fingerprint, point count, options); every later line
// records one supervision event: a failed attempt, a completed point, or
// a quarantine. Each line is framed as
//
//	crc32(json-payload) SP json-payload LF
//
// and appended with a single write, so the only state a process kill can
// leave behind is one torn, newline-less final line. Decoding tolerates
// exactly that — the torn tail is discarded (and truncated away before
// the next append) — while any other damage (a bad checksum, malformed
// JSON on a complete line, an out-of-range index, a truncated header) is
// rejected with ErrManifestCorrupt: a manifest either replays exactly or
// loudly refuses to.

// ManifestVersion is the journal format version.
const ManifestVersion = 1

var (
	// ErrManifestCorrupt marks a manifest that failed validation while
	// decoding (anything beyond a torn final line).
	ErrManifestCorrupt = errors.New("farm: corrupt manifest")
	// ErrManifestMismatch marks a resume attempt against a manifest
	// recorded for a different grid (name, fingerprint or point count).
	ErrManifestMismatch = errors.New("farm: manifest does not match grid")
)

// Header identifies the grid a manifest belongs to.
type Header struct {
	Version     int    `json:"v"`
	Grid        string `json:"grid"`
	Fingerprint string `json:"fingerprint"` // %016x of Grid.Fingerprint
	Points      int    `json:"points"`
	Seed        uint64 `json:"seed"`
	Quick       bool   `json:"quick"`
	Warmup      int64  `json:"warmup"`
	Measure     int64  `json:"measure"`
	Drain       int64  `json:"drain"`
	MaxAttempts int    `json:"maxAttempts"`
}

// HeaderFor builds the manifest header for a grid run.
func HeaderFor(g Grid, cfg Config) Header {
	return Header{
		Version:     ManifestVersion,
		Grid:        g.Name,
		Fingerprint: fmt.Sprintf("%016x", g.Fingerprint()),
		Points:      len(g.Points),
		Seed:        g.Opts.Seed,
		Quick:       g.Opts.Quick,
		Warmup:      g.Opts.Window.Warmup,
		Measure:     g.Opts.Window.Measure,
		Drain:       g.Opts.Window.Drain,
		MaxAttempts: cfg.MaxAttempts,
	}
}

// manifestRec is one journal line.
type manifestRec struct {
	Kind    string   `json:"kind"` // "header" | "attempt" | "point"
	Header  *Header  `json:"header,omitempty"`
	Key     string   `json:"key,omitempty"`
	Index   int      `json:"index,omitempty"`
	Status  string   `json:"status,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	Digest  string   `json:"digest,omitempty"`
	Error   string   `json:"error,omitempty"`
	Summary *Summary `json:"summary,omitempty"`
}

// ManifestData is a decoded manifest snapshot: the header plus the
// replayed per-point states (keys absent from States are still pending).
type ManifestData struct {
	Header Header
	States map[string]PointState
	// TornTail reports that a newline-less final line — the signature of
	// a mid-append crash — was discarded during decoding.
	TornTail bool

	// validLen is the byte length of the intact prefix; an appender must
	// truncate the file here before writing.
	validLen int64
}

// DecodeManifest replays a manifest image into per-point states. It
// never panics on malformed input (the fuzz target pins that); every
// rejection wraps ErrManifestCorrupt with the offending line.
func DecodeManifest(data []byte) (*ManifestData, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty file", ErrManifestCorrupt)
	}
	md := &ManifestData{States: make(map[string]PointState)}
	lineNo := 0
	off := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// A torn final line: the one kind of damage a process kill
			// can inflict. The header must never be torn — a manifest
			// that lost line one identifies nothing.
			if lineNo == 0 {
				return nil, fmt.Errorf("%w: header line truncated", ErrManifestCorrupt)
			}
			md.TornTail = true
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		rec, err := decodeLine(line, lineNo)
		if err != nil {
			return nil, err
		}
		if err := md.apply(rec, lineNo); err != nil {
			return nil, err
		}
		off += int64(nl + 1)
		lineNo++
	}
	md.validLen = off
	return md, nil
}

// decodeLine parses and checksum-verifies one complete journal line.
func decodeLine(line []byte, lineNo int) (manifestRec, error) {
	var rec manifestRec
	sp := bytes.IndexByte(line, ' ')
	if sp != 8 {
		return rec, fmt.Errorf("%w: line %d: missing crc frame", ErrManifestCorrupt, lineNo+1)
	}
	want, err := strconv.ParseUint(string(line[:sp]), 16, 32)
	if err != nil {
		return rec, fmt.Errorf("%w: line %d: bad crc field: %v", ErrManifestCorrupt, lineNo+1, err)
	}
	payload := line[sp+1:]
	if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
		return rec, fmt.Errorf("%w: line %d: crc mismatch (%08x != %08x)", ErrManifestCorrupt, lineNo+1, got, want)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("%w: line %d: %v", ErrManifestCorrupt, lineNo+1, err)
	}
	return rec, nil
}

// apply folds one record into the replayed states.
func (md *ManifestData) apply(rec manifestRec, lineNo int) error {
	if lineNo == 0 {
		if rec.Kind != "header" || rec.Header == nil {
			return fmt.Errorf("%w: line 1 is %q, want the header", ErrManifestCorrupt, rec.Kind)
		}
		if rec.Header.Version != ManifestVersion {
			return fmt.Errorf("%w: version %d, this build reads %d", ErrManifestCorrupt, rec.Header.Version, ManifestVersion)
		}
		if rec.Header.Points <= 0 {
			return fmt.Errorf("%w: header declares %d points", ErrManifestCorrupt, rec.Header.Points)
		}
		md.Header = *rec.Header
		return nil
	}
	switch rec.Kind {
	case "header":
		return fmt.Errorf("%w: line %d: second header", ErrManifestCorrupt, lineNo+1)
	case "attempt", "point":
		if rec.Key == "" {
			return fmt.Errorf("%w: line %d: record without key", ErrManifestCorrupt, lineNo+1)
		}
		if rec.Index < 0 || rec.Index >= md.Header.Points {
			return fmt.Errorf("%w: line %d: index %d outside grid of %d points",
				ErrManifestCorrupt, lineNo+1, rec.Index, md.Header.Points)
		}
	default:
		return fmt.Errorf("%w: line %d: unknown record kind %q", ErrManifestCorrupt, lineNo+1, rec.Kind)
	}

	st := md.States[rec.Key]
	st.Key = rec.Key
	st.Index = rec.Index
	if rec.Attempt > st.Attempts {
		st.Attempts = rec.Attempt
	}
	switch rec.Kind {
	case "attempt":
		if st.Status == "" {
			st.Status = StatusPending
		}
		st.LastError = rec.Error
	case "point":
		switch Status(rec.Status) {
		case StatusDone:
			d, err := strconv.ParseUint(rec.Digest, 16, 64)
			if err != nil {
				return fmt.Errorf("%w: line %d: bad digest %q", ErrManifestCorrupt, lineNo+1, rec.Digest)
			}
			st.Status = StatusDone
			st.Digest = d
			st.LastError = ""
			if rec.Summary != nil {
				st.Summary = *rec.Summary
			}
		case StatusQuarantined:
			st.Status = StatusQuarantined
			st.LastError = rec.Error
		default:
			return fmt.Errorf("%w: line %d: terminal record with status %q", ErrManifestCorrupt, lineNo+1, rec.Status)
		}
	}
	md.States[rec.Key] = st
	return nil
}

// LoadManifest reads and decodes a manifest file.
func LoadManifest(path string) (*ManifestData, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	md, err := DecodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return md, nil
}

// Manifest is an open, appendable journal bound to one farm run.
type Manifest struct {
	Header Header
	// TornTail reports a discarded mid-append crash remnant from load.
	TornTail bool

	mu     sync.Mutex
	states map[string]PointState
	f      *os.File
	fsync  bool
}

// OpenManifest creates (resume=false) or loads-and-validates
// (resume=true, when the file exists) the journal at path. On resume the
// manifest must match the grid's header — same name, fingerprint and
// point count — and any torn tail is truncated away so the next append
// starts on a clean line boundary.
func OpenManifest(path string, h Header, resume bool) (*Manifest, error) {
	if resume {
		if _, err := os.Stat(path); err == nil {
			md, err := LoadManifest(path)
			if err != nil {
				return nil, err
			}
			if md.Header.Grid != h.Grid || md.Header.Fingerprint != h.Fingerprint || md.Header.Points != h.Points {
				return nil, fmt.Errorf("%w: %s records grid %q fingerprint %s (%d points), run is grid %q fingerprint %s (%d points)",
					ErrManifestMismatch, path,
					md.Header.Grid, md.Header.Fingerprint, md.Header.Points,
					h.Grid, h.Fingerprint, h.Points)
			}
			f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
			if err != nil {
				return nil, err
			}
			if err := f.Truncate(md.validLen); err != nil {
				f.Close()
				return nil, err
			}
			if _, err := f.Seek(0, io.SeekEnd); err != nil {
				f.Close()
				return nil, err
			}
			return &Manifest{Header: md.Header, TornTail: md.TornTail, states: md.States, f: f}, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	m := &Manifest{Header: h, states: make(map[string]PointState), f: f}
	if err := m.append(manifestRec{Kind: "header", Header: &h}); err != nil {
		f.Close()
		return nil, err
	}
	return m, nil
}

// State returns the replayed state for a key, if the manifest holds one.
func (m *Manifest) State(key string) (PointState, bool) {
	if m == nil {
		return PointState{}, false
	}
	st, ok := m.states[key]
	return st, ok
}

// AppendAttempt journals one failed, non-terminal attempt. All append
// methods are no-ops on a nil receiver, so in-memory (manifest-less)
// farm runs share the supervisor code path unchanged.
func (m *Manifest) AppendAttempt(key string, index, attempt int, errMsg string) error {
	if m == nil {
		return nil
	}
	return m.append(manifestRec{Kind: "attempt", Key: key, Index: index, Attempt: attempt, Error: errMsg})
}

// AppendPoint journals a terminal state (done or quarantined).
func (m *Manifest) AppendPoint(st PointState) error {
	if m == nil {
		return nil
	}
	rec := manifestRec{
		Kind: "point", Key: st.Key, Index: st.Index,
		Status: string(st.Status), Attempt: st.Attempts,
	}
	switch st.Status {
	case StatusDone:
		rec.Digest = fmt.Sprintf("%016x", st.Digest)
		sum := st.Summary
		rec.Summary = &sum
	case StatusQuarantined:
		rec.Error = st.LastError
	default:
		return fmt.Errorf("farm: AppendPoint with non-terminal status %q", st.Status)
	}
	return m.append(rec)
}

// append frames, checksums and writes one record in a single write call.
func (m *Manifest) append(rec manifestRec) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(data), data)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.f.WriteString(line); err != nil {
		return fmt.Errorf("farm: appending manifest record: %w", err)
	}
	if m.fsync {
		if err := m.f.Sync(); err != nil {
			return fmt.Errorf("farm: syncing manifest: %w", err)
		}
	}
	return nil
}

// Close releases the journal's file handle.
func (m *Manifest) Close() error {
	if m == nil || m.f == nil {
		return nil
	}
	return m.f.Close()
}
