// Package farm is the fault-tolerant sharded sweep runner: it executes
// any []exp.Point grid through a supervised worker pool and an optional
// durable job manifest, so that the multi-thousand-point regeneration
// grids behind the paper's figures survive worker panics, hung points,
// and whole-process crashes.
//
// Supervision means four things, in order of escalation:
//
//   - panic containment — a panic inside one point (an engine invariant
//     violation, a DrainError in one corner of the grid) is recovered
//     into a typed error carrying the point's identity; the rest of the
//     grid keeps running;
//   - deadlines — a point that exceeds Config.PointTimeout is abandoned
//     (in-process) or killed (subprocess shard) and treated as failed;
//   - retry with exponential backoff — a failed point is re-queued after
//     Backoff.Delay(attempt), so transient failures heal themselves;
//   - quarantine — after Config.MaxAttempts failures the point is marked
//     quarantined and the grid completes without it, reported but never
//     wedged.
//
// With Config.Manifest set, every terminal outcome is appended to a
// crash-safe JSONL journal (see manifest.go). Killing the process at any
// moment and re-running with Config.Resume skips the completed points;
// the per-point digests recorded in the manifest merge — in grid index
// order — into a grid digest that is byte-identical to a serial
// single-process run of the same grid, extending the serial≡parallel
// guarantee of exp.RunPoints to crash/resume execution.
package farm

import (
	"errors"
	"fmt"
	"os/exec"
	"runtime"
	"time"

	"photon/internal/core"
	"photon/internal/exp"
)

// Status is a point's position in the supervision state machine. The
// persisted states are pending (implicit: no terminal record), done and
// quarantined; "running" exists only in memory and is never written to
// the manifest, so a crash always resumes from a consistent state.
type Status string

const (
	StatusPending     Status = "pending"
	StatusDone        Status = "done"
	StatusQuarantined Status = "quarantined"
)

// Summary is the portable per-point result subset persisted in the
// manifest — enough to rebuild the sweep tables after a resume without
// re-running completed points.
type Summary struct {
	Scheme          string  `json:"scheme"`
	AvgLatency      float64 `json:"avgLatency"`
	Throughput      float64 `json:"throughput"`
	OfferedLoad     float64 `json:"offeredLoad"`
	DropRate        float64 `json:"dropRate"`
	RetransmitRate  float64 `json:"retxRate"`
	CirculationRate float64 `json:"circRate"`
	Delivered       int64   `json:"delivered"`
	DigestEvents    uint64  `json:"digestEvents"`
}

// summarize condenses a run result into its manifest summary.
func summarize(res core.Result) Summary {
	return Summary{
		Scheme:          res.Scheme.String(),
		AvgLatency:      res.AvgLatency,
		Throughput:      res.Throughput,
		OfferedLoad:     res.OfferedLoad,
		DropRate:        res.DropRate,
		RetransmitRate:  res.RetransmitRate,
		CirculationRate: res.CirculationRate,
		Delivered:       res.Delivered,
		DigestEvents:    res.DigestEvents,
	}
}

// PointState is the supervision state of one grid point.
type PointState struct {
	Key      string
	Index    int
	Status   Status
	Attempts int
	// Digest is the point's behavioural run digest (done points only).
	Digest  uint64
	Summary Summary
	// LastError describes the most recent failed attempt ("" once done).
	LastError string
	// Resumed marks a point whose terminal state was loaded from the
	// manifest rather than executed in this run.
	Resumed bool
}

// PointError is a failed attempt at one point, carrying its identity so
// a supervisor log line or quarantine report pinpoints the grid corner.
type PointError struct {
	Key     string
	Index   int
	Attempt int
	Err     error
}

func (e *PointError) Error() string {
	return fmt.Sprintf("farm: point %s (index %d, attempt %d): %v", e.Key, e.Index, e.Attempt, e.Err)
}

func (e *PointError) Unwrap() error { return e.Err }

// ErrPointTimeout marks an attempt abandoned (or, for a subprocess
// shard, killed) after exceeding Config.PointTimeout.
var ErrPointTimeout = errors.New("farm: point deadline exceeded")

// Config tunes one farm run.
type Config struct {
	// Workers bounds concurrently executing points (0 = GOMAXPROCS).
	Workers int
	// MaxAttempts is the per-point attempt budget before quarantine
	// (0 = 3). Attempts recorded in a resumed manifest count against it.
	MaxAttempts int
	// Backoff is the retry schedule (zero value = 100ms base, 5s cap).
	Backoff Backoff
	// PointTimeout is the per-attempt deadline (0 = none). An in-process
	// attempt that misses it is abandoned — its goroutine cannot be
	// killed and its eventual result is discarded; a subprocess shard is
	// killed outright.
	PointTimeout time.Duration
	// Manifest is the durable journal path ("" = in-memory only).
	Manifest string
	// Resume loads an existing manifest (matching it against the grid's
	// fingerprint) and skips its completed points. Without Resume an
	// existing manifest file is truncated.
	Resume bool
	// Sync fsyncs the manifest after every appended record. Plain
	// appends already survive a process kill; Sync extends that to
	// power loss at the cost of one fsync per point.
	Sync bool
	// Exec, when set, isolates every point in its own subprocess shard:
	// the returned command must run `sweep -farm-worker` (or equivalent)
	// and print a WorkerResult line on stdout. The grid must be a named
	// grid the worker can rebuild (see Build).
	Exec func(grid Grid, index int) (*exec.Cmd, error)
	// PostPoint, when set, observes every state change the supervisor
	// records: a failed attempt (Status pending, LastError set), a
	// completed point, or a quarantined one. Called from the supervisor
	// goroutine, in completion order.
	PostPoint func(PointState)

	// sleep is the retry-delay clock, injectable by tests.
	sleep func(time.Duration)
}

// withDefaults fills zero fields.
func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	cfg.Backoff = cfg.Backoff.withDefaults()
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep
	}
	return cfg
}

// GridReport is the outcome of one farm run over a grid.
type GridReport struct {
	Grid string
	// Points holds every point's final state, in grid index order.
	Points []PointState
	// Ran counts points executed (or re-executed) by this run; Resumed
	// counts points whose completed state came from the manifest.
	Ran     int
	Resumed int
}

// Complete reports whether every point finished (none quarantined).
func (r *GridReport) Complete() bool {
	for i := range r.Points {
		if r.Points[i].Status != StatusDone {
			return false
		}
	}
	return true
}

// Quarantined returns the poisoned points, in index order.
func (r *GridReport) Quarantined() []PointState {
	var out []PointState
	for _, p := range r.Points {
		if p.Status == StatusQuarantined {
			out = append(out, p)
		}
	}
	return out
}

// GridDigest merges the done points' digests in grid index order. For a
// Complete report it is byte-identical to SerialGridDigest of the same
// grid, however the run was sharded, interrupted or resumed.
func (r *GridReport) GridDigest() uint64 {
	var ds []uint64
	for i := range r.Points {
		if r.Points[i].Status == StatusDone {
			ds = append(ds, r.Points[i].Digest)
		}
	}
	return MergeDigests(ds)
}

// outcome is one finished attempt, reported back to the supervisor.
type outcome struct {
	idx    int
	digest uint64
	sum    Summary
	err    error
}

// Run executes the grid under supervision and returns every point's
// final state. Run only returns an error for harness-level failures (a
// corrupt or mismatched manifest, an unwritable journal); per-point
// failures — panics included — are contained, retried, and at worst
// reported as quarantined points in the GridReport.
func Run(g Grid, cfg Config) (*GridReport, error) {
	cfg = cfg.withDefaults()
	rep := &GridReport{Grid: g.Name, Points: make([]PointState, len(g.Points))}
	for i := range g.Points {
		rep.Points[i] = PointState{Key: g.Key(i), Index: i, Status: StatusPending}
	}

	var man *Manifest
	if cfg.Manifest != "" {
		var err error
		man, err = OpenManifest(cfg.Manifest, HeaderFor(g, cfg), cfg.Resume)
		if err != nil {
			return nil, err
		}
		man.fsync = cfg.Sync
		defer man.Close()
		for i := range rep.Points {
			if st, ok := man.State(rep.Points[i].Key); ok {
				st.Index = i
				st.Resumed = st.Status == StatusDone || st.Status == StatusQuarantined
				rep.Points[i] = st
			}
		}
	}

	var pending []int
	for i := range rep.Points {
		switch rep.Points[i].Status {
		case StatusDone, StatusQuarantined:
			rep.Resumed++
		default:
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return rep, nil
	}
	rep.Ran = len(pending)

	post := func(st PointState) {
		if cfg.PostPoint != nil {
			cfg.PostPoint(st)
		}
	}

	// The supervisor loop: fill worker slots from the ready queue, absorb
	// outcomes, re-queue failures after their backoff, quarantine after
	// the attempt budget. Both channels are buffered to the full pending
	// count so an early (manifest-error) return never strands a worker or
	// retry timer on a blocked send.
	var (
		queue    = append([]int(nil), pending...)
		results  = make(chan outcome, len(pending))
		retries  = make(chan int, len(pending))
		inflight = 0
		terminal = 0
	)
	for terminal < len(pending) {
		for inflight < cfg.Workers && len(queue) > 0 {
			idx := queue[0]
			queue = queue[1:]
			rep.Points[idx].Attempts++
			inflight++
			go func(idx int) {
				d, sum, err := cfg.execPoint(g, idx)
				results <- outcome{idx: idx, digest: d, sum: sum, err: err}
			}(idx)
		}
		select {
		case o := <-results:
			inflight--
			st := &rep.Points[o.idx]
			if o.err == nil {
				st.Status = StatusDone
				st.Digest = o.digest
				st.Summary = o.sum
				st.LastError = ""
				terminal++
				if err := man.AppendPoint(*st); err != nil {
					return nil, err
				}
				post(*st)
				continue
			}
			perr := &PointError{Key: st.Key, Index: o.idx, Attempt: st.Attempts, Err: o.err}
			st.LastError = perr.Error()
			if st.Attempts >= cfg.MaxAttempts {
				st.Status = StatusQuarantined
				terminal++
				if err := man.AppendPoint(*st); err != nil {
					return nil, err
				}
				post(*st)
				continue
			}
			if err := man.AppendAttempt(st.Key, o.idx, st.Attempts, st.LastError); err != nil {
				return nil, err
			}
			post(*st)
			delay := cfg.Backoff.Delay(st.Attempts)
			go func(idx int) {
				cfg.sleep(delay)
				retries <- idx
			}(o.idx)
		case idx := <-retries:
			queue = append(queue, idx)
		}
	}
	return rep, nil
}

// execPoint runs one attempt: in-process with panic containment by
// default, or in a subprocess shard when cfg.Exec is set. The deadline,
// if any, applies to the whole attempt.
func (cfg Config) execPoint(g Grid, idx int) (uint64, Summary, error) {
	if cfg.Exec != nil {
		return cfg.runShard(g, idx)
	}
	run := func() (core.Result, error) {
		o := g.Opts
		o.Parallel = 1
		return exp.SafeRunPoint(g.Points[idx], o)
	}
	if cfg.PointTimeout <= 0 {
		res, err := run()
		if err != nil {
			return 0, Summary{}, err
		}
		return res.Digest, summarize(res), nil
	}
	type runResult struct {
		res core.Result
		err error
	}
	ch := make(chan runResult, 1)
	go func() {
		r, e := run()
		ch <- runResult{r, e}
	}()
	timer := time.NewTimer(cfg.PointTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.err != nil {
			return 0, Summary{}, r.err
		}
		return r.res.Digest, summarize(r.res), nil
	case <-timer.C:
		// The attempt's goroutine cannot be killed; it is abandoned and
		// its buffered result, if any, is discarded.
		return 0, Summary{}, fmt.Errorf("%w after %v", ErrPointTimeout, cfg.PointTimeout)
	}
}

// SerialGridDigest runs the grid serially in a single process and merges
// the per-point digests — the reference value every farm execution of
// the same grid must reproduce.
func SerialGridDigest(g Grid) (uint64, error) {
	o := g.Opts
	o.Parallel = 1
	results, err := exp.RunPoints(g.Points, o)
	if err != nil {
		return 0, err
	}
	ds := make([]uint64, len(results))
	for i, r := range results {
		ds[i] = r.Digest
	}
	return MergeDigests(ds), nil
}

// RunFigures regenerates the full figure workload (every named grid in
// exp.FigureGridNames) through one supervised farm run.
func RunFigures(opts exp.Options, cfg Config) (*GridReport, error) {
	g, err := Build("figures", opts)
	if err != nil {
		return nil, err
	}
	return Run(g, cfg)
}
