package farm

import (
	"bytes"
	"os"
	"testing"
)

// FuzzManifestDecode hammers the manifest decoder with arbitrary bytes.
// The contract under fuzz: never panic, and on success every decoded
// state is internally consistent (key present, index inside the declared
// grid, terminal statuses only from point records).
func FuzzManifestDecode(f *testing.F) {
	// Seed with a genuine manifest so the fuzzer starts from valid frames.
	valid := func() []byte {
		path := f.TempDir() + "/seed.jsonl"
		m, err := OpenManifest(path, Header{
			Version: ManifestVersion, Grid: "fuzz", Fingerprint: "00000000deadbeef",
			Points: 3, Seed: 7, MaxAttempts: 3,
		}, false)
		if err != nil {
			f.Fatal(err)
		}
		if err := m.AppendAttempt("0000:a", 0, 1, "transient"); err != nil {
			f.Fatal(err)
		}
		if err := m.AppendPoint(PointState{Key: "0000:a", Index: 0, Status: StatusDone, Attempts: 2, Digest: 42}); err != nil {
			f.Fatal(err)
		}
		if err := m.AppendPoint(PointState{Key: "0002:c", Index: 2, Status: StatusQuarantined, Attempts: 3, LastError: "poison"}); err != nil {
			f.Fatal(err)
		}
		m.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}()

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("deadbeef {\"kind\":\"header\"}\n"))
	f.Add(valid[:len(valid)/2])
	f.Add(bytes.Repeat([]byte("a"), 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		md, err := DecodeManifest(data)
		if err != nil {
			return // rejection is always acceptable; panics are not
		}
		if md.Header.Version != ManifestVersion || md.Header.Points <= 0 {
			t.Fatalf("accepted manifest with bad header: %+v", md.Header)
		}
		for key, st := range md.States {
			if key == "" || st.Key != key {
				t.Fatalf("state keyed inconsistently: %q vs %+v", key, st)
			}
			if st.Index < 0 || st.Index >= md.Header.Points {
				t.Fatalf("state index %d outside declared grid of %d", st.Index, md.Header.Points)
			}
			switch st.Status {
			case StatusPending, StatusDone, StatusQuarantined:
			default:
				t.Fatalf("state in unknown status %q", st.Status)
			}
		}
	})
}
