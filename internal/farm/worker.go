package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"photon/internal/exp"
)

// Subprocess shards: with Config.Exec set, every point attempt runs in
// its own child process (`sweep -farm-worker`), so an engine panic, a
// runaway allocation or a hard hang is isolated by the operating system
// instead of the Go runtime. The child rebuilds the named grid from
// (grid name, options) — the same deterministic construction the parent
// used — runs exactly one point, and prints a single WorkerResult line;
// the parent validates the echoed key against its own grid before
// accepting the digest, so a version-skewed worker binary cannot
// silently corrupt a manifest.

// WorkerResult is the one JSON line a farm worker prints on stdout.
type WorkerResult struct {
	Key     string  `json:"key"`
	Digest  string  `json:"digest"` // %016x
	Summary Summary `json:"summary"`
}

// RunWorker is the body of `sweep -farm-worker`: build the named grid,
// run point index, print the result line to w. Deliberately no panic
// recovery — a crash is the supervisor's job to contain, and a nonzero
// exit with the runtime's stack on stderr is the most honest report.
func RunWorker(w io.Writer, gridName string, index int, opts exp.Options) error {
	g, err := Build(gridName, opts)
	if err != nil {
		return err
	}
	if index < 0 || index >= len(g.Points) {
		return fmt.Errorf("farm: worker point %d outside grid %s of %d points", index, gridName, len(g.Points))
	}
	o := g.Opts
	o.Parallel = 1
	res, err := exp.RunPoint(g.Points[index], o)
	if err != nil {
		return err
	}
	out := WorkerResult{Key: g.Key(index), Digest: fmt.Sprintf("%016x", res.Digest), Summary: summarize(res)}
	data, err := json.Marshal(out)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// runShard executes one attempt in a subprocess, applying the point
// deadline by killing the child.
func (cfg Config) runShard(g Grid, idx int) (uint64, Summary, error) {
	cmd, err := cfg.Exec(g, idx)
	if err != nil {
		return 0, Summary{}, err
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		return 0, Summary{}, fmt.Errorf("farm: starting shard for %s: %w", g.Key(idx), err)
	}

	var timer *time.Timer
	var timedOut atomic.Bool
	if cfg.PointTimeout > 0 {
		timer = time.AfterFunc(cfg.PointTimeout, func() {
			timedOut.Store(true)
			_ = cmd.Process.Kill()
		})
	}
	waitErr := cmd.Wait()
	if timer != nil {
		timer.Stop()
	}
	if timedOut.Load() {
		return 0, Summary{}, fmt.Errorf("%w after %v (shard killed)", ErrPointTimeout, cfg.PointTimeout)
	}
	if waitErr != nil {
		return 0, Summary{}, fmt.Errorf("farm: shard for %s: %w%s", g.Key(idx), waitErr, stderrTail(&stderr))
	}
	return parseWorkerLine(stdout.Bytes(), g.Key(idx), &stderr)
}

// parseWorkerLine extracts and validates the WorkerResult line: the
// last stdout line that looks like a JSON object. Scanning for '{'
// rather than taking the literal last line lets workers share stdout
// with chatty harnesses (the shard tests re-exec the test binary, whose
// framework prints PASS after the result).
func parseWorkerLine(out []byte, wantKey string, stderr *bytes.Buffer) (uint64, Summary, error) {
	line := lastJSONLine(out)
	if line == "" {
		return 0, Summary{}, fmt.Errorf("farm: shard for %s printed no result line%s", wantKey, stderrTail(stderr))
	}
	var wr WorkerResult
	if err := json.Unmarshal([]byte(line), &wr); err != nil {
		return 0, Summary{}, fmt.Errorf("farm: shard for %s printed malformed result %q: %w", wantKey, line, err)
	}
	if wr.Key != wantKey {
		return 0, Summary{}, fmt.Errorf("farm: shard grid skew: worker ran %s, supervisor asked for %s", wr.Key, wantKey)
	}
	d, err := strconv.ParseUint(wr.Digest, 16, 64)
	if err != nil {
		return 0, Summary{}, fmt.Errorf("farm: shard for %s printed bad digest %q", wantKey, wr.Digest)
	}
	return d, wr.Summary, nil
}

func lastJSONLine(out []byte) string {
	lines := strings.Split(strings.TrimRight(string(out), "\n"), "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if s := strings.TrimSpace(lines[i]); strings.HasPrefix(s, "{") {
			return s
		}
	}
	return ""
}

// stderrTail renders the last few hundred bytes of a shard's stderr for
// error messages (where the panic stack's head lives).
func stderrTail(b *bytes.Buffer) string {
	s := strings.TrimSpace(b.String())
	if s == "" {
		return ""
	}
	const max = 600
	if len(s) > max {
		s = "..." + s[len(s)-max:]
	}
	return "\nshard stderr: " + s
}

// SelfExec builds a Config.Exec hook that re-invokes the given binary in
// worker mode: `binary -farm-worker -farm-grid <name> -farm-point <i>
// [extra...]`. cmd/sweep passes its own executable path plus the flags
// (seed, quick) that reconstruct the grid options in the child.
func SelfExec(binary string, extra ...string) func(g Grid, index int) (*exec.Cmd, error) {
	return func(g Grid, index int) (*exec.Cmd, error) {
		args := []string{"-farm-worker", "-farm-grid", g.Name, "-farm-point", strconv.Itoa(index)}
		args = append(args, extra...)
		return exec.Command(binary, args...), nil
	}
}
