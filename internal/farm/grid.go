package farm

import (
	"fmt"
	"hash/fnv"
	"io"
	"strconv"

	"photon/internal/exp"
)

// Grid is a named, deterministically ordered sweep grid. The point order
// IS the grid's identity: manifest keys embed the index, the grid digest
// folds per-point digests in index order, and a subprocess shard
// re-derives point i by rebuilding the same grid from Name and Opts.
type Grid struct {
	Name   string
	Points []exp.Point
	Opts   exp.Options
}

// Build constructs a named figure grid (see exp.FigureGridNames for the
// accepted names; "figures" is the full regeneration workload).
func Build(name string, opts exp.Options) (Grid, error) {
	points, err := exp.FigurePoints(name, opts)
	if err != nil {
		return Grid{}, err
	}
	return Grid{Name: name, Points: points, Opts: opts}, nil
}

// Key returns point i's manifest key: index, scheme, pattern, rate,
// (when set) the series label, and (when set) the canonical workload
// spec. Two points that differ only in their Mod closure — which cannot
// be serialised — are still distinguished by index, which is why
// resuming validates the whole-grid Fingerprint rather than trusting
// keys alone.
func (g Grid) Key(i int) string {
	p := g.Points[i]
	key := fmt.Sprintf("%04d:%s/%s@%s", i, p.Scheme, p.Pattern.Name(),
		strconv.FormatFloat(p.Rate, 'g', -1, 64))
	if p.Label != "" {
		key += "#" + p.Label
	}
	if p.Workload != "" {
		key += "~" + p.Workload
	}
	return key
}

// Fingerprint hashes the grid's identity — name, options that change
// simulated behaviour (seed, window, quick), and every point key — into
// the value a manifest must match before a resume is allowed.
func (g Grid) Fingerprint() uint64 {
	h := fnv.New64a()
	io.WriteString(h, g.Name)
	h.Write([]byte{0})
	fmt.Fprintf(h, "%d|%d|%d|%d|%t|%d", g.Opts.Seed,
		g.Opts.Window.Warmup, g.Opts.Window.Measure, g.Opts.Window.Drain,
		g.Opts.Quick, len(g.Points))
	h.Write([]byte{0})
	for i := range g.Points {
		io.WriteString(h, g.Key(i))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// MergeDigests folds per-point run digests, in grid index order, into
// one 64-bit grid digest (FNV-1a over the little-endian digest bytes).
// The fold is order-sensitive by design: a grid that silently swapped,
// dropped or duplicated a point must not collide with the honest run.
func MergeDigests(digests []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, d := range digests {
		for b := 0; b < 8; b++ {
			h ^= (d >> (8 * b)) & 0xFF
			h *= prime64
		}
	}
	return h
}
