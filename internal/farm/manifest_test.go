package farm

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testHeader(points int) Header {
	return Header{
		Version: ManifestVersion, Grid: "unit", Fingerprint: "00000000deadbeef",
		Points: points, Seed: 7, MaxAttempts: 3,
		Warmup: 50, Measure: 200, Drain: 100,
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	m, err := OpenManifest(path, testHeader(4), false)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := m.AppendAttempt("0001:k", 1, 1, "transient"); err != nil {
		t.Fatal(err)
	}
	done := PointState{
		Key: "0000:j", Index: 0, Status: StatusDone, Attempts: 1, Digest: 0xABCDEF0123456789,
		Summary: Summary{Scheme: "dhs", AvgLatency: 12.5, Throughput: 0.03, Delivered: 42, DigestEvents: 99},
	}
	if err := m.AppendPoint(done); err != nil {
		t.Fatal(err)
	}
	quar := PointState{Key: "0002:q", Index: 2, Status: StatusQuarantined, Attempts: 3, LastError: "poison"}
	if err := m.AppendPoint(quar); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	md, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if md.TornTail {
		t.Fatal("clean manifest reported a torn tail")
	}
	if md.Header != testHeader(4) {
		t.Fatalf("header round-trip: %+v", md.Header)
	}
	st := md.States["0000:j"]
	if st.Status != StatusDone || st.Digest != done.Digest || st.Summary != done.Summary || st.Attempts != 1 {
		t.Fatalf("done state round-trip: %+v", st)
	}
	st = md.States["0001:k"]
	if st.Status != StatusPending || st.Attempts != 1 || st.LastError != "transient" {
		t.Fatalf("attempt state round-trip: %+v", st)
	}
	st = md.States["0002:q"]
	if st.Status != StatusQuarantined || st.Attempts != 3 || st.LastError != "poison" {
		t.Fatalf("quarantine state round-trip: %+v", st)
	}
}

func TestManifestRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	m, err := OpenManifest(path, testHeader(2), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AppendPoint(PointState{Key: "0000:a", Index: 0, Status: StatusDone, Attempts: 1, Digest: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendPoint(PointState{Key: "0001:b", Index: 1, Status: StatusDone, Attempts: 1, Digest: 2}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	lastStart := bytes.LastIndexByte(clean[:len(clean)-1], '\n') + 1
	cases := map[string][]byte{
		"empty file":        nil,
		"flipped byte":      flip(clean, len(clean)/2),
		"truncated header":  clean[:10],
		"headerless":        clean[bytes.IndexByte(clean, '\n')+1:],
		"mid-line truncate": append(append([]byte{}, clean[:lastStart+5]...), '\n'),
	}
	for name, data := range cases {
		if _, err := DecodeManifest(data); !errors.Is(err, ErrManifestCorrupt) {
			t.Errorf("%s: %v, want ErrManifestCorrupt", name, err)
		}
	}

	// Index outside the declared grid.
	m2path := filepath.Join(t.TempDir(), "m2.jsonl")
	m2, err := OpenManifest(m2path, testHeader(1), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.AppendPoint(PointState{Key: "0005:x", Index: 5, Status: StatusDone, Digest: 1}); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	if _, err := LoadManifest(m2path); !errors.Is(err, ErrManifestCorrupt) {
		t.Errorf("out-of-range index: %v, want ErrManifestCorrupt", err)
	}
}

func flip(data []byte, at int) []byte {
	out := append([]byte{}, data...)
	out[at] ^= 0x40
	return out
}

// TestManifestTornTail pins the one tolerated damage mode: a mid-append
// process kill leaves a newline-less final line, which load discards and
// a resume truncates away before appending.
func TestManifestTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	h := testHeader(3)
	m, err := OpenManifest(path, h, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AppendPoint(PointState{Key: "0000:a", Index: 0, Status: StatusDone, Attempts: 1, Digest: 7}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Simulate the kill: half of a record, no trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"kind":"point","key":"0001:b","ind`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	md, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if !md.TornTail {
		t.Fatal("torn tail not reported")
	}
	if _, ok := md.States["0001:b"]; ok {
		t.Fatal("torn record leaked into states")
	}

	// Reopening for resume must truncate the torn bytes and append cleanly.
	m, err = OpenManifest(path, h, true)
	if err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	if !m.TornTail {
		t.Fatal("open lost the torn-tail report")
	}
	if err := m.AppendPoint(PointState{Key: "0001:b", Index: 1, Status: StatusDone, Attempts: 1, Digest: 8}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	md, err = LoadManifest(path)
	if err != nil {
		t.Fatalf("reload after truncate+append: %v", err)
	}
	if md.TornTail {
		t.Fatal("tail still torn after truncation")
	}
	if st := md.States["0001:b"]; st.Status != StatusDone || st.Digest != 8 {
		t.Fatalf("appended record lost: %+v", st)
	}
	if st := md.States["0000:a"]; st.Status != StatusDone || st.Digest != 7 {
		t.Fatalf("pre-crash record lost: %+v", st)
	}
}

func TestOpenManifestResumeValidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	if m, err := OpenManifest(path, testHeader(2), false); err != nil {
		t.Fatal(err)
	} else {
		m.Close()
	}
	other := testHeader(2)
	other.Fingerprint = "1111111111111111"
	if _, err := OpenManifest(path, other, true); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("fingerprint mismatch: %v", err)
	}
	if !strings.Contains(errString(OpenManifest(path, other, true)), "fingerprint") {
		t.Fatal("mismatch error does not explain itself")
	}
	// Resume with no existing file falls back to create.
	fresh := filepath.Join(t.TempDir(), "fresh.jsonl")
	m, err := OpenManifest(fresh, testHeader(2), true)
	if err != nil {
		t.Fatalf("resume-create: %v", err)
	}
	m.Close()
}

func errString(_ *Manifest, err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
