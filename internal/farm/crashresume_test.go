package farm

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"photon/internal/exp"
)

// The crash/resume battery uses the stdlib's helper-process pattern: the
// test re-executes its own binary with an env var selecting a helper
// "test" that runs a farm, SIGKILLs it mid-grid, then resumes from the
// manifest in-process and checks the merged grid digest against a fresh
// serial run — the acceptance criterion of the sharded-sweep-farm issue.

const (
	crashHelperEnv = "PHOTON_FARM_CRASH_MANIFEST"
	shardHelperEnv = "PHOTON_FARM_SHARD_SPEC"
)

// crashGrid must be identical in the helper child and the resuming
// parent: same construction, same options, same fingerprint.
func crashGrid() Grid { return testGrid(12) }

// TestFarmCrashHelper is not a test: it is the subprocess body for
// TestFarmCrashResume, selected by env var and skipped otherwise.
func TestFarmCrashHelper(t *testing.T) {
	manifest := os.Getenv(crashHelperEnv)
	if manifest == "" {
		t.Skip("helper process body; driven by TestFarmCrashResume")
	}
	_, err := Run(crashGrid(), Config{
		Workers:  1,
		Manifest: manifest,
		Resume:   true,
		// Slow the grid down so the parent reliably lands its SIGKILL
		// mid-run; the sleep happens after the point's record is durable.
		PostPoint: func(PointState) { time.Sleep(150 * time.Millisecond) },
	})
	if err != nil {
		t.Fatalf("helper farm run: %v", err)
	}
}

// doneCount polls the manifest for durable completed points, tolerating
// a file that is mid-append (torn tails included).
func doneCount(path string) int {
	md, err := LoadManifest(path)
	if err != nil {
		return 0
	}
	n := 0
	for _, st := range md.States {
		if st.Status == StatusDone {
			n++
		}
	}
	return n
}

func TestFarmCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash battery skipped in -short mode")
	}
	manifest := filepath.Join(t.TempDir(), "crash.jsonl")

	cmd := exec.Command(os.Args[0], "-test.run=^TestFarmCrashHelper$")
	cmd.Env = append(os.Environ(), crashHelperEnv+"="+manifest)
	out, err := os.CreateTemp(t.TempDir(), "helper-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting helper: %v", err)
	}

	// Wait until at least two points are durably recorded, then SIGKILL
	// the whole process mid-grid.
	deadline := time.Now().Add(60 * time.Second)
	for doneCount(manifest) < 2 {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			dump, _ := os.ReadFile(out.Name())
			t.Fatalf("helper made no durable progress; output:\n%s", dump)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	cmd.Wait() // expected to report the kill; the manifest is what matters

	g := crashGrid()
	rep, err := Run(g, Config{Workers: 4, Manifest: manifest, Resume: true})
	if err != nil {
		t.Fatalf("resume after SIGKILL: %v", err)
	}
	if rep.Resumed < 2 {
		t.Fatalf("resume found only %d durable points, expected >= 2", rep.Resumed)
	}
	if rep.Resumed >= len(g.Points) {
		t.Fatalf("kill landed after the whole grid finished (%d resumed); nothing was tested", rep.Resumed)
	}
	if !rep.Complete() {
		t.Fatalf("resumed grid incomplete: %+v", rep.Quarantined())
	}

	want, err := SerialGridDigest(g)
	if err != nil {
		t.Fatalf("serial reference: %v", err)
	}
	if got := rep.GridDigest(); got != want {
		t.Fatalf("crash/resume grid digest %016x != serial single-process digest %016x", got, want)
	}

	// A second resume is a no-op: everything is durable.
	again, err := Run(g, Config{Workers: 4, Manifest: manifest, Resume: true})
	if err != nil {
		t.Fatalf("idempotent resume: %v", err)
	}
	if again.Ran != 0 || again.GridDigest() != want {
		t.Fatalf("second resume re-ran %d points (digest %016x, want %016x)", again.Ran, again.GridDigest(), want)
	}
}

// TestFarmShardHelper is the subprocess body for the shard test: run one
// point of a named grid in worker mode, exactly as `sweep -farm-worker`
// does.
func TestFarmShardHelper(t *testing.T) {
	spec := os.Getenv(shardHelperEnv)
	if spec == "" {
		t.Skip("helper process body; driven by TestFarmSubprocessShards")
	}
	var (
		grid string
		idx  int
		seed uint64
	)
	if _, err := fmt.Sscanf(spec, "%s %d %d", &grid, &idx, &seed); err != nil {
		t.Fatalf("bad shard spec %q: %v", spec, err)
	}
	opts := exp.QuickOptions()
	opts.Seed = seed
	if err := RunWorker(os.Stdout, grid, idx, opts); err != nil {
		t.Fatalf("worker: %v", err)
	}
}

func TestFarmSubprocessShards(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess shard battery skipped in -short mode")
	}
	opts := exp.QuickOptions()
	opts.Seed = 3
	g, err := Build("fig2b", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Shard only a slice of the figure grid to keep process count modest.
	sub := Grid{Name: g.Name, Points: g.Points[:8], Opts: g.Opts}

	cfg := Config{
		Workers:      4,
		PointTimeout: 2 * time.Minute,
		Exec: func(grid Grid, index int) (*exec.Cmd, error) {
			cmd := exec.Command(os.Args[0], "-test.run=^TestFarmShardHelper$")
			cmd.Env = append(os.Environ(),
				fmt.Sprintf("%s=%s %d %d", shardHelperEnv, grid.Name, index, grid.Opts.Seed))
			return cmd, nil
		},
	}
	rep, err := Run(sub, cfg)
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	if !rep.Complete() {
		t.Fatalf("sharded grid incomplete: %+v", rep.Quarantined())
	}

	o := sub.Opts
	o.Parallel = 1
	serial, err := exp.RunPoints(sub.Points, o)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range serial {
		if rep.Points[i].Digest != res.Digest {
			t.Fatalf("shard point %d digest %016x != in-process %016x", i, rep.Points[i].Digest, res.Digest)
		}
		if rep.Points[i].Summary.Delivered != res.Delivered {
			t.Fatalf("shard point %d summary skew: %+v vs %+v", i, rep.Points[i].Summary, res)
		}
	}
}

// TestWorkerGridSkewDetected pins the defence against a worker binary
// that rebuilt a different grid: the echoed key must match.
func TestWorkerGridSkewDetected(t *testing.T) {
	opts := exp.QuickOptions()
	g, err := Build("fig2b", opts)
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if _, _, err := parseWorkerLine([]byte(`{"key":"9999:bogus","digest":"1","summary":{}}`+"\n"), g.Key(0), nil); err == nil {
		t.Fatalf("grid skew accepted: %+v", sum)
	}
	if _, _, err := parseWorkerLine([]byte("\n\n"), g.Key(0), nil); err == nil {
		t.Fatal("empty worker output accepted")
	}
	if _, _, err := parseWorkerLine([]byte(`{"key":"`+g.Key(0)+`","digest":"zz","summary":{}}`), g.Key(0), nil); err == nil {
		t.Fatal("bad digest accepted")
	}
}

// TestWorkerPointIndexValidated pins RunWorker's range check.
func TestWorkerPointIndexValidated(t *testing.T) {
	opts := exp.QuickOptions()
	if err := RunWorker(os.Stdout, "fig2b", 1<<20, opts); err == nil {
		t.Fatal("out-of-range worker index accepted")
	}
	if err := RunWorker(os.Stdout, "no-such-grid", 0, opts); err == nil {
		t.Fatal("unknown grid accepted")
	}
}
