package farm

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Do fans n independent jobs over a bounded worker pool (workers <= 0
// means GOMAXPROCS) and returns one error slot per job, in job order. A
// panic inside a job is recovered into its slot, so one poisoned job
// reports itself instead of taking down the process — the primitive the
// verification batteries (internal/check) run their point sweeps on.
//
// Do is the unsupervised little sibling of Run: no retries, no manifest,
// no deadlines — just bounded concurrency and panic containment for
// callers that handle their own error policy.
func Do(n, workers int, run func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	safe := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("farm: job %d panicked: %v\n%s", i, r, debug.Stack())
			}
		}()
		return run(i)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = safe(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return errs
}
