package farm

import "time"

// Backoff is the deterministic exponential retry schedule: the pause
// before re-queueing a failed point doubles per attempt from Base up to
// Cap. No jitter — two supervisors replaying the same failure history
// schedule identically, which keeps farm behaviour reproducible in tests.
type Backoff struct {
	// Base is the delay before the first retry (default 100ms).
	Base time.Duration
	// Cap bounds the delay (default 5s).
	Cap time.Duration
}

// withDefaults fills zero fields.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 5 * time.Second
	}
	if b.Cap < b.Base {
		b.Cap = b.Base
	}
	return b
}

// Delay returns the pause after the attempt-th failed attempt
// (1-based): Base<<(attempt-1), capped at Cap.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	// Past 62 doublings any int64 duration has overflowed; the cap rules.
	if attempt-1 >= 62 {
		return b.Cap
	}
	d := b.Base << uint(attempt-1)
	if d <= 0 || d > b.Cap {
		return b.Cap
	}
	return d
}
