package sim

import "fmt"

// DelayLine models items in flight with per-item arrival cycles — optical
// packets traversing a waveguide, handshake pulses returning to a sender,
// and so on. Items scheduled for cycle c are returned by PopDue(c).
//
// Internally it is a circular buffer of buckets indexed by cycle modulo the
// horizon, so scheduling and popping are O(1) amortised. The horizon (the
// farthest future cycle that may be scheduled) is fixed at construction;
// exceeding it is a programming error and panics.
type DelayLine[T any] struct {
	buckets [][]T
	now     int64 // next cycle to be popped
	count   int
}

// NewDelayLine returns a delay line able to hold items up to horizon cycles
// in the future. Horizon must be positive.
func NewDelayLine[T any](horizon int) *DelayLine[T] {
	if horizon <= 0 {
		panic("sim: DelayLine horizon must be positive")
	}
	return &DelayLine[T]{buckets: make([][]T, horizon+1)}
}

// Len reports how many items are currently in flight.
func (d *DelayLine[T]) Len() int { return d.count }

// Schedule places v so that it will be returned by PopDue(due). due must not
// be earlier than the next un-popped cycle nor beyond the horizon.
func (d *DelayLine[T]) Schedule(due int64, v T) {
	if due < d.now {
		panic(fmt.Sprintf("sim: DelayLine schedule in the past (due %d, now %d)", due, d.now))
	}
	if due-d.now >= int64(len(d.buckets)) {
		panic(fmt.Sprintf("sim: DelayLine schedule beyond horizon (due %d, now %d, horizon %d)", due, d.now, len(d.buckets)-1))
	}
	idx := due % int64(len(d.buckets))
	d.buckets[idx] = append(d.buckets[idx], v)
	d.count++
}

// PopDue returns (and removes) every item scheduled for cycle now. Cycles
// must be popped in non-decreasing order; skipping a cycle forfeits its
// items, so callers pop every cycle. The returned slice is owned by the
// caller until the same bucket cycles around.
func (d *DelayLine[T]) PopDue(now int64) []T {
	if now < d.now {
		return nil
	}
	d.now = now + 1
	idx := now % int64(len(d.buckets))
	out := d.buckets[idx]
	d.buckets[idx] = nil
	d.count -= len(out)
	return out
}

// SlotLine is a DelayLine restricted to at most one item per cycle. The
// wave-pipelined data channel uses it: two packets arriving at the home node
// in the same cycle would mean two light pulses overlapping in the same
// channel segment, which correct arbitration must never allow. Schedule
// reports an ErrSlotTaken instead of silently queueing, turning an
// arbitration bug into a loud failure.
type SlotLine[T any] struct {
	slots []slotEntry[T]
	now   int64
	count int
}

type slotEntry[T any] struct {
	val  T
	full bool
}

// ErrSlotTaken is returned by SlotLine.Schedule when the target cycle is
// already occupied.
type ErrSlotTaken struct {
	Due int64
}

func (e *ErrSlotTaken) Error() string {
	return fmt.Sprintf("sim: channel slot at cycle %d already occupied", e.Due)
}

// NewSlotLine returns a slot line with the given horizon (maximum number of
// cycles into the future that may be booked).
func NewSlotLine[T any](horizon int) *SlotLine[T] {
	if horizon <= 0 {
		panic("sim: SlotLine horizon must be positive")
	}
	return &SlotLine[T]{slots: make([]slotEntry[T], horizon+1)}
}

// Len reports how many slots are currently occupied.
func (s *SlotLine[T]) Len() int { return s.count }

// Schedule books cycle due for v. It fails with *ErrSlotTaken if that cycle
// is already booked, and panics on past/beyond-horizon cycles (programming
// errors rather than modelled conditions).
func (s *SlotLine[T]) Schedule(due int64, v T) error {
	if due < s.now {
		panic(fmt.Sprintf("sim: SlotLine schedule in the past (due %d, now %d)", due, s.now))
	}
	if due-s.now >= int64(len(s.slots)) {
		panic(fmt.Sprintf("sim: SlotLine schedule beyond horizon (due %d, now %d, horizon %d)", due, s.now, len(s.slots)-1))
	}
	idx := due % int64(len(s.slots))
	if s.slots[idx].full {
		return &ErrSlotTaken{Due: due}
	}
	s.slots[idx] = slotEntry[T]{val: v, full: true}
	s.count++
	return nil
}

// Occupied reports whether cycle due is already booked.
func (s *SlotLine[T]) Occupied(due int64) bool {
	if due < s.now || due-s.now >= int64(len(s.slots)) {
		return false
	}
	return s.slots[due%int64(len(s.slots))].full
}

// PopDue returns the item booked for cycle now, if any.
func (s *SlotLine[T]) PopDue(now int64) (T, bool) {
	var zero T
	if now < s.now {
		return zero, false
	}
	s.now = now + 1
	idx := now % int64(len(s.slots))
	e := s.slots[idx]
	if !e.full {
		return zero, false
	}
	s.slots[idx] = slotEntry[T]{}
	s.count--
	return e.val, true
}
