package sim

import "fmt"

// DelayLine models items in flight with per-item arrival cycles — optical
// packets traversing a waveguide, handshake pulses returning to a sender,
// and so on. Items scheduled for cycle c are returned by PopDue(c).
//
// Internally it is a circular buffer of buckets indexed by cycle modulo the
// horizon, so scheduling and popping are O(1) amortised. The horizon (the
// farthest future cycle that may be scheduled) is fixed at construction;
// exceeding it is a programming error and panics.
type DelayLine[T any] struct {
	buckets [][]T
	now     int64 // next cycle to be popped
	idx     int   // now % len(buckets), maintained incrementally
	count   int
}

// NewDelayLine returns a delay line able to hold items up to horizon cycles
// in the future. Horizon must be positive.
func NewDelayLine[T any](horizon int) *DelayLine[T] {
	if horizon <= 0 {
		panic("sim: DelayLine horizon must be positive")
	}
	return &DelayLine[T]{buckets: make([][]T, horizon+1)}
}

// Len reports how many items are currently in flight.
func (d *DelayLine[T]) Len() int { return d.count }

// Schedule places v so that it will be returned by PopDue(due). due must not
// be earlier than the next un-popped cycle nor beyond the horizon.
func (d *DelayLine[T]) Schedule(due int64, v T) {
	if due < d.now {
		panic(fmt.Sprintf("sim: DelayLine schedule in the past (due %d, now %d)", due, d.now))
	}
	if due-d.now >= int64(len(d.buckets)) {
		panic(fmt.Sprintf("sim: DelayLine schedule beyond horizon (due %d, now %d, horizon %d)", due, d.now, len(d.buckets)-1))
	}
	idx := due % int64(len(d.buckets))
	d.buckets[idx] = append(d.buckets[idx], v)
	d.count++
}

// PopDue returns (and removes) every item scheduled for cycle now. Cycles
// must be popped in non-decreasing order; skipping a cycle forfeits its
// items, so callers pop every cycle. The returned slice is owned by the
// caller until the same bucket cycles around: the bucket's storage is
// retained for reuse (a bucket popped at cycle c cannot be scheduled into
// again before cycle c+1 by the horizon bound, so the caller always gets
// a full cycle of exclusive ownership), which makes steady-state
// scheduling allocation-free.
func (d *DelayLine[T]) PopDue(now int64) []T {
	if now < d.now {
		return nil
	}
	idx := d.idx
	if now != d.now {
		// Cycles were skipped: recompute the ring position (rare).
		idx = int(now % int64(len(d.buckets)))
	}
	d.now = now + 1
	if d.idx = idx + 1; d.idx == len(d.buckets) {
		d.idx = 0
	}
	out := d.buckets[idx]
	if out == nil {
		return nil
	}
	d.buckets[idx] = out[:0]
	d.count -= len(out)
	return out
}

// SkipTo fast-forwards an *empty* delay line's clock to cycle now, so the
// next Schedule/PopDue sees a current horizon. It is the discrete-event
// companion to the cycle-by-cycle PopDue: when the owner proves nothing is
// in flight it may skip the intervening cycles in one step. Skipping a
// non-empty line would silently strand its items, so that panics.
func (d *DelayLine[T]) SkipTo(now int64) {
	if now <= d.now {
		return
	}
	if d.count != 0 {
		panic(fmt.Sprintf("sim: DelayLine skip to cycle %d with %d items in flight", now, d.count))
	}
	d.now = now
	d.idx = int(now % int64(len(d.buckets)))
}

// SlotLine is a DelayLine restricted to at most one item per cycle. The
// wave-pipelined data channel uses it: two packets arriving at the home node
// in the same cycle would mean two light pulses overlapping in the same
// channel segment, which correct arbitration must never allow. Schedule
// reports an ErrSlotTaken instead of silently queueing, turning an
// arbitration bug into a loud failure.
type SlotLine[T any] struct {
	slots []slotEntry[T]
	now   int64
	idx   int // now % len(slots), maintained incrementally
	count int
}

type slotEntry[T any] struct {
	val  T
	full bool
}

// ErrSlotTaken is returned by SlotLine.Schedule when the target cycle is
// already occupied.
type ErrSlotTaken struct {
	Due int64
}

func (e *ErrSlotTaken) Error() string {
	return fmt.Sprintf("sim: channel slot at cycle %d already occupied", e.Due)
}

// NewSlotLine returns a slot line with the given horizon (maximum number of
// cycles into the future that may be booked).
func NewSlotLine[T any](horizon int) *SlotLine[T] {
	if horizon <= 0 {
		panic("sim: SlotLine horizon must be positive")
	}
	return &SlotLine[T]{slots: make([]slotEntry[T], horizon+1)}
}

// Len reports how many slots are currently occupied.
func (s *SlotLine[T]) Len() int { return s.count }

// Schedule books cycle due for v. It fails with *ErrSlotTaken if that cycle
// is already booked, and panics on past/beyond-horizon cycles (programming
// errors rather than modelled conditions).
func (s *SlotLine[T]) Schedule(due int64, v T) error {
	if due < s.now {
		panic(fmt.Sprintf("sim: SlotLine schedule in the past (due %d, now %d)", due, s.now))
	}
	if due-s.now >= int64(len(s.slots)) {
		panic(fmt.Sprintf("sim: SlotLine schedule beyond horizon (due %d, now %d, horizon %d)", due, s.now, len(s.slots)-1))
	}
	idx := due % int64(len(s.slots))
	if s.slots[idx].full {
		return &ErrSlotTaken{Due: due}
	}
	s.slots[idx] = slotEntry[T]{val: v, full: true}
	s.count++
	return nil
}

// Occupied reports whether cycle due is already booked.
func (s *SlotLine[T]) Occupied(due int64) bool {
	if due < s.now || due-s.now >= int64(len(s.slots)) {
		return false
	}
	return s.slots[due%int64(len(s.slots))].full
}

// PopDue returns the item booked for cycle now, if any.
func (s *SlotLine[T]) PopDue(now int64) (T, bool) {
	var zero T
	if now < s.now {
		return zero, false
	}
	idx := s.idx
	if now != s.now {
		// Cycles were skipped: recompute the ring position (rare).
		idx = int(now % int64(len(s.slots)))
	}
	s.now = now + 1
	if s.idx = idx + 1; s.idx == len(s.slots) {
		s.idx = 0
	}
	e := s.slots[idx]
	if !e.full {
		return zero, false
	}
	s.slots[idx] = slotEntry[T]{}
	s.count--
	return e.val, true
}

// SkipTo fast-forwards an *empty* slot line's clock to cycle now (see
// DelayLine.SkipTo). Panics if any slot is still occupied.
func (s *SlotLine[T]) SkipTo(now int64) {
	if now <= s.now {
		return
	}
	if s.count != 0 {
		panic(fmt.Sprintf("sim: SlotLine skip to cycle %d with %d slots occupied", now, s.count))
	}
	s.now = now
	s.idx = int(now % int64(len(s.slots)))
}
