// Package sim provides the small deterministic building blocks shared by
// every part of the cycle-accurate nanophotonic network simulator: a
// reproducible random number generator, fixed-delay lines that model optical
// flight time, bounded FIFO queues, and measurement windows.
//
// Everything in this package is single-goroutine by design. The simulator
// advances in lock-step cycles; parallelism, where used, is across
// independent simulation instances (one goroutine per sweep point), never
// inside one network, so none of these types carry locks.
package sim

import "math"

// RNG is a fast deterministic pseudo-random number generator built on
// xorshift64* with splitmix64 seeding. Identical seeds always produce
// identical streams on every platform, which the repeatability tests rely
// on. The zero value is not usable; construct with NewRNG.
type RNG struct {
	state uint64
}

// splitmix64 is used both to condition seeds and to derive independent
// streams. It is a bijection on uint64 with excellent avalanche behaviour.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// NewRNG returns a generator seeded from seed. Any seed, including zero, is
// valid: seeds are conditioned through splitmix64 so that nearby seeds give
// uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	s := splitmix64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15 // xorshift state must be non-zero
	}
	return &RNG{state: s}
}

// DeriveSeed deterministically derives the stream-th child seed of base.
// For a fixed base the map stream -> seed is injective: streams are spread
// by an odd multiplier (a bijection mod 2^64) before conditioning through
// splitmix64 (also a bijection), so no two streams of one base ever share
// a seed. exp.Replicate uses this to guarantee that replications quoted in
// EXPERIMENTS.md cite genuinely independent, reproducible seeds.
func DeriveSeed(base, stream uint64) uint64 {
	return splitmix64(splitmix64(base) + stream*0x9E3779B97F4A7C15)
}

// Fork derives an independent generator from r and a stream label. Forking
// does not disturb r's own sequence, so components can be given private
// streams (one per node, one per channel, ...) without cross-coupling.
func (r *RNG) Fork(stream uint64) *RNG {
	return NewRNG(splitmix64(r.state) ^ splitmix64(stream*0xA24BAED4963EE407+1))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of failures before the first success. Used by
// bursty (on/off) traffic sources. Returns 0 for p >= 1; panics for p <= 0.
func (r *RNG) Geometric(p float64) int64 {
	if p <= 0 {
		panic("sim: Geometric with non-positive p")
	}
	if p >= 1 {
		return 0
	}
	u := r.Float64()
	// Avoid log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int64(math.Log(u) / math.Log(1-p))
}

// Exp returns an exponentially distributed sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomly permutes n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
