package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical draws out of 100", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded RNG repeated values: %d unique of 100", len(seen))
	}
}

func TestForkIndependence(t *testing.T) {
	root := NewRNG(7)
	f1 := root.Fork(1)
	f2 := root.Fork(2)
	// Forking must not disturb the parent stream.
	ref := NewRNG(7)
	ref.Fork(1)
	ref.Fork(2)
	for i := 0; i < 100; i++ {
		if root.Uint64() != ref.Uint64() {
			t.Fatalf("forking disturbed the parent stream at draw %d", i)
		}
	}
	// Forked streams must differ from each other.
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d/100 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 4*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f, want about 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(13)
	const p, draws = 0.11, 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.005 {
		t.Errorf("Bernoulli(%.2f) hit rate %.4f", p, got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(17)
	const p, draws = 0.1, 50000
	var sum int64
	for i := 0; i < draws; i++ {
		sum += r.Geometric(p)
	}
	got := float64(sum) / draws
	want := (1 - p) / p // mean failures before first success
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("Geometric(%.2f) mean %.2f, want about %.2f", p, got, want)
	}
}

func TestGeometricEdges(t *testing.T) {
	r := NewRNG(19)
	if got := r.Geometric(1); got != 0 {
		t.Errorf("Geometric(1) = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(23)
	const mean, draws = 40.0, 50000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += r.Exp(mean)
	}
	if got := sum / draws; math.Abs(got-mean)/mean > 0.05 {
		t.Errorf("Exp(%.0f) mean %.2f", mean, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(29)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(31)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", s)
	}
}

func TestMul64MatchesBig(t *testing.T) {
	// Cross-check the 128-bit multiply against the straightforward
	// decomposition on random inputs.
	if err := quick.Check(func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 32-bit long multiplication.
		a0, a1 := a&0xFFFFFFFF, a>>32
		b0, b1 := b&0xFFFFFFFF, b>>32
		carryLo := a0 * b0
		mid1 := a1*b0 + carryLo>>32
		mid2 := a0*b1 + mid1&0xFFFFFFFF
		wantHi := a1*b1 + mid1>>32 + mid2>>32
		wantLo := a * b
		return hi == wantHi && lo == wantLo
	}, nil); err != nil {
		t.Fatal(err)
	}
}
