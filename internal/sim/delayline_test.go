package sim

import (
	"testing"
)

func TestDelayLineBasic(t *testing.T) {
	d := NewDelayLine[int](10)
	d.Schedule(3, 30)
	d.Schedule(5, 50)
	d.Schedule(5, 51)
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	for now := int64(0); now < 8; now++ {
		got := d.PopDue(now)
		switch now {
		case 3:
			if len(got) != 1 || got[0] != 30 {
				t.Fatalf("cycle 3: got %v", got)
			}
		case 5:
			if len(got) != 2 || got[0] != 50 || got[1] != 51 {
				t.Fatalf("cycle 5: got %v", got)
			}
		default:
			if len(got) != 0 {
				t.Fatalf("cycle %d: got %v, want empty", now, got)
			}
		}
	}
	if d.Len() != 0 {
		t.Fatalf("Len after draining = %d", d.Len())
	}
}

func TestDelayLineWrapsAround(t *testing.T) {
	d := NewDelayLine[int](4)
	for now := int64(0); now < 100; now++ {
		d.Schedule(now+3, int(now))
		got := d.PopDue(now)
		if now < 3 {
			if len(got) != 0 {
				t.Fatalf("cycle %d: unexpected %v", now, got)
			}
			continue
		}
		if len(got) != 1 || got[0] != int(now-3) {
			t.Fatalf("cycle %d: got %v, want [%d]", now, got, now-3)
		}
	}
}

func TestDelayLineSameCycle(t *testing.T) {
	d := NewDelayLine[string](4)
	d.Schedule(0, "now")
	if got := d.PopDue(0); len(got) != 1 || got[0] != "now" {
		t.Fatalf("same-cycle schedule: got %v", got)
	}
}

func TestDelayLinePanicsOnPast(t *testing.T) {
	d := NewDelayLine[int](4)
	d.PopDue(5)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	d.Schedule(4, 1)
}

func TestDelayLinePanicsBeyondHorizon(t *testing.T) {
	d := NewDelayLine[int](4)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling beyond horizon did not panic")
		}
	}()
	d.Schedule(5, 1)
}

func TestDelayLinePanicsOnBadHorizon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero horizon did not panic")
		}
	}()
	NewDelayLine[int](0)
}

func TestSlotLineExclusive(t *testing.T) {
	s := NewSlotLine[int](10)
	if err := s.Schedule(4, 1); err != nil {
		t.Fatalf("first booking failed: %v", err)
	}
	err := s.Schedule(4, 2)
	if err == nil {
		t.Fatal("double booking did not error")
	}
	if _, ok := err.(*ErrSlotTaken); !ok {
		t.Fatalf("error type %T, want *ErrSlotTaken", err)
	}
	if !s.Occupied(4) {
		t.Fatal("Occupied(4) = false after booking")
	}
	if s.Occupied(5) {
		t.Fatal("Occupied(5) = true without booking")
	}
}

func TestSlotLinePopInOrder(t *testing.T) {
	s := NewSlotLine[int](8)
	if err := s.Schedule(2, 20); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(5, 50); err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 8; now++ {
		v, ok := s.PopDue(now)
		want := now == 2 || now == 5
		if ok != want {
			t.Fatalf("cycle %d: ok=%v", now, ok)
		}
		if ok && v != int(now)*10 {
			t.Fatalf("cycle %d: got %d", now, v)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len after drain = %d", s.Len())
	}
}

func TestSlotLineSlotReusableAfterPop(t *testing.T) {
	s := NewSlotLine[int](4)
	if err := s.Schedule(1, 1); err != nil {
		t.Fatal(err)
	}
	s.PopDue(0)
	s.PopDue(1)
	// The slot for cycle 1 wrapped; cycle 6 maps to the same bucket.
	if err := s.Schedule(6, 6); err != nil {
		t.Fatalf("reusing popped bucket failed: %v", err)
	}
}

func TestSlotLinePanicsOnPast(t *testing.T) {
	s := NewSlotLine[int](4)
	s.PopDue(3)
	defer func() {
		if recover() == nil {
			t.Fatal("past booking did not panic")
		}
	}()
	_ = s.Schedule(2, 1)
}

func TestWindowPhases(t *testing.T) {
	w := Window{Warmup: 10, Measure: 20, Drain: 5}
	if w.Total() != 35 {
		t.Fatalf("Total = %d", w.Total())
	}
	cases := []struct {
		cycle int64
		want  bool
	}{{0, false}, {9, false}, {10, true}, {29, true}, {30, false}, {34, false}}
	for _, c := range cases {
		if got := w.InMeasure(c.cycle); got != c.want {
			t.Errorf("InMeasure(%d) = %v, want %v", c.cycle, got, c.want)
		}
	}
}
