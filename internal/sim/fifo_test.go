package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFOOrder(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 100; i++ {
		if !q.PushBack(i) {
			t.Fatalf("unbounded push %d failed", i)
		}
	}
	for i := 0; i < 100; i++ {
		v, ok := q.PopFront()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := q.PopFront(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueBounded(t *testing.T) {
	q := NewQueue[int](3)
	for i := 0; i < 3; i++ {
		if !q.PushBack(i) {
			t.Fatalf("push %d within bound failed", i)
		}
	}
	if q.PushBack(99) {
		t.Fatal("push beyond bound succeeded")
	}
	if !q.Full() {
		t.Fatal("Full() = false at capacity")
	}
	if q.Free() != 0 {
		t.Fatalf("Free() = %d at capacity", q.Free())
	}
	q.PopFront()
	if q.Free() != 1 {
		t.Fatalf("Free() = %d after one pop", q.Free())
	}
	if !q.PushBack(99) {
		t.Fatal("push after freeing failed")
	}
}

func TestQueuePushFront(t *testing.T) {
	q := NewQueue[int](0)
	q.PushBack(2)
	q.PushBack(3)
	if !q.PushFront(1) {
		t.Fatal("PushFront failed")
	}
	for want := 1; want <= 3; want++ {
		v, _ := q.PopFront()
		if v != want {
			t.Fatalf("got %d, want %d", v, want)
		}
	}
}

func TestQueuePushFrontWrap(t *testing.T) {
	// Exercise head wrap-around: pop a few then push front repeatedly.
	q := NewQueue[int](0)
	for i := 0; i < 8; i++ {
		q.PushBack(i)
	}
	for i := 0; i < 5; i++ {
		q.PopFront()
	}
	for i := 0; i < 10; i++ {
		q.PushFront(100 + i)
	}
	// Expect 109..100 then 5,6,7.
	want := []int{109, 108, 107, 106, 105, 104, 103, 102, 101, 100, 5, 6, 7}
	for i, w := range want {
		v, ok := q.PopFront()
		if !ok || v != w {
			t.Fatalf("pos %d: got %d ok=%v, want %d", i, v, ok, w)
		}
	}
}

func TestQueueAtAndPeek(t *testing.T) {
	q := NewQueue[string](0)
	q.PushBack("a")
	q.PushBack("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q, %v", v, ok)
	}
	if q.At(1) != "b" {
		t.Fatalf("At(1) = %q", q.At(1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	q.At(2)
}

func TestQueueClear(t *testing.T) {
	q := NewQueue[int](5)
	q.PushBack(1)
	q.PushBack(2)
	q.Clear()
	if q.Len() != 0 || q.Full() {
		t.Fatalf("after Clear: len %d full %v", q.Len(), q.Full())
	}
	if !q.PushBack(3) {
		t.Fatal("push after clear failed")
	}
}

// TestQueueAgainstModel drives the queue with a random operation sequence
// and compares against a plain-slice model (property-based check of the
// circular buffer arithmetic).
func TestQueueAgainstModel(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewQueue[int](0)
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				q.PushBack(next)
				model = append(model, next)
				next++
			case 1:
				q.PushFront(next)
				model = append([]int{next}, model...)
				next++
			case 2:
				v, ok := q.PopFront()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
			if q.Len() != len(model) {
				return false
			}
		}
		for i, w := range model {
			if q.At(i) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
