package sim

// Window carves a simulation run into the standard three NoC-evaluation
// phases:
//
//	warmup  — traffic flows but nothing is recorded, letting queues and
//	          tokens reach steady state;
//	measure — packets *injected* in this span are tagged and contribute to
//	          latency/throughput statistics;
//	drain   — injection of tagged packets stops but the simulation keeps
//	          running so tagged packets still in flight can be delivered.
//
// Tagging by injection time (rather than delivery time) is what makes
// latency curves honest near saturation: packets that never drain are
// reported as lost-to-measurement instead of silently truncating the tail.
type Window struct {
	Warmup  int64 // cycles of warmup before measurement starts
	Measure int64 // cycles during which injected packets are tagged
	Drain   int64 // extra cycles to let tagged packets finish
}

// Total returns the full number of simulated cycles.
func (w Window) Total() int64 { return w.Warmup + w.Measure + w.Drain }

// InMeasure reports whether a packet injected at cycle c should be tagged
// for measurement.
func (w Window) InMeasure(c int64) bool {
	return c >= w.Warmup && c < w.Warmup+w.Measure
}

// DefaultWindow is a sensible run length for the 64-node network: long
// enough for every scheme to reach steady state at every load in the paper's
// sweeps, short enough that full figure sweeps complete in seconds.
func DefaultWindow() Window {
	return Window{Warmup: 10_000, Measure: 20_000, Drain: 10_000}
}

// ShortWindow is used by unit tests and quick smoke runs.
func ShortWindow() Window {
	return Window{Warmup: 1_000, Measure: 3_000, Drain: 2_000}
}
