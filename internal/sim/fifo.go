package sim

// Queue is a growable FIFO with an optional capacity bound, used for router
// output queues, ejection buffers and setaside slots. It is implemented as a
// circular buffer so steady-state operation allocates nothing.
//
// A capacity of 0 means unbounded (the conventional "infinite source queue"
// of open-loop network evaluation); positive capacities model finite
// buffers.
type Queue[T any] struct {
	buf   []T
	head  int
	size  int
	limit int
}

// NewQueue returns a queue bounded to limit items; limit 0 means unbounded.
func NewQueue[T any](limit int) *Queue[T] {
	cap0 := 8
	if limit > 0 && limit < cap0 {
		cap0 = limit
	}
	return &Queue[T]{buf: make([]T, cap0), limit: limit}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return q.size }

// Cap reports the capacity bound (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.limit }

// Full reports whether the queue has reached its capacity bound.
func (q *Queue[T]) Full() bool { return q.limit > 0 && q.size >= q.limit }

// Empty reports whether the queue holds no items.
func (q *Queue[T]) Empty() bool { return q.size == 0 }

// Free reports the remaining capacity; -1 when unbounded.
func (q *Queue[T]) Free() int {
	if q.limit == 0 {
		return -1
	}
	return q.limit - q.size
}

func (q *Queue[T]) grow() {
	nb := make([]T, 2*len(q.buf))
	n := copy(nb, q.buf[q.head:])
	copy(nb[n:], q.buf[:q.head])
	q.buf = nb
	q.head = 0
}

// PushBack appends v; it reports false (and leaves the queue unchanged) when
// the queue is full.
func (q *Queue[T]) PushBack(v T) bool {
	if q.Full() {
		return false
	}
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	return true
}

// PushFront inserts v at the head of the queue — used to return NACKed
// packets so that the oldest packet is retransmitted first. Reports false
// when full.
func (q *Queue[T]) PushFront(v T) bool {
	if q.Full() {
		return false
	}
	if q.size == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1 + len(q.buf)) % len(q.buf)
	q.buf[q.head] = v
	q.size++
	return true
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.size == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// At returns the item at position i from the head (0 = head) without
// removing it. It panics when i is out of range.
func (q *Queue[T]) At(i int) T {
	if i < 0 || i >= q.size {
		panic("sim: Queue.At out of range")
	}
	return q.buf[(q.head+i)%len(q.buf)]
}

// PopFront removes and returns the head item.
func (q *Queue[T]) PopFront() (T, bool) {
	var zero T
	if q.size == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release reference for GC
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return v, true
}

// Clear removes every item.
func (q *Queue[T]) Clear() {
	var zero T
	for i := 0; i < q.size; i++ {
		q.buf[(q.head+i)%len(q.buf)] = zero
	}
	q.head, q.size = 0, 0
}
