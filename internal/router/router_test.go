package router

import (
	"testing"

	"photon/internal/sim"
)

func pkt(id uint64, dst int) *Packet { return NewPacket(id, 0, dst, 0) }

func TestPacketTimestamps(t *testing.T) {
	p := NewPacket(1, 2, 3, 10)
	if p.EnqueuedAt != -1 || p.SentAt != -1 || p.DeliveredAt != -1 {
		t.Fatal("fresh packet has set timestamps")
	}
	p.EnqueuedAt, p.ReadyAt, p.FirstSentAt, p.SentAt, p.DeliveredAt = 12, 13, 20, 20, 29
	if p.Latency() != 19 {
		t.Fatalf("Latency = %d", p.Latency())
	}
	if p.QueueWait() != 8 {
		t.Fatalf("QueueWait = %d", p.QueueWait())
	}
	if p.ArbitrationWait() != 7 {
		t.Fatalf("ArbitrationWait = %d", p.ArbitrationWait())
	}
}

func TestPacketLatencyPanicsUndelivered(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Latency of undelivered packet did not panic")
		}
	}()
	NewPacket(1, 0, 1, 5).Latency()
}

func TestClassString(t *testing.T) {
	if ClassData.String() != "data" || ClassRequest.String() != "request" || ClassReply.String() != "reply" {
		t.Fatal("class labels wrong")
	}
}

func TestFireAndForget(t *testing.T) {
	o := NewOutPort(FireAndForget, 0, 0)
	p1, p2 := pkt(1, 5), pkt(2, 6)
	o.Enqueue(p1)
	o.Enqueue(p2)
	if got := o.NextReady(); got != p1 {
		t.Fatalf("NextReady = %v", got)
	}
	o.MarkSent(p1, 10)
	if p1.SentAt != 10 || p1.FirstSentAt != 10 {
		t.Fatal("send timestamps not set")
	}
	// The port forgot p1: next is immediately p2.
	if got := o.NextReady(); got != p2 {
		t.Fatalf("after send NextReady = %v, want p2", got)
	}
	if o.Unacked() != 0 {
		t.Fatalf("fire-and-forget has %d unacked", o.Unacked())
	}
}

func TestHoldHeadBlocksUntilAck(t *testing.T) {
	o := NewOutPort(HoldHead, 0, 0)
	p1, p2 := pkt(1, 5), pkt(2, 6)
	o.Enqueue(p1)
	o.Enqueue(p2)
	o.MarkSent(p1, 10)
	if o.NextReady() != nil {
		t.Fatal("head not blocked while un-ACKed")
	}
	if o.Unacked() != 1 {
		t.Fatalf("Unacked = %d", o.Unacked())
	}
	got, err := o.Ack(1)
	if err != nil || got != p1 {
		t.Fatalf("Ack: %v %v", got, err)
	}
	if o.NextReady() != p2 {
		t.Fatal("head not released after ACK")
	}
}

func TestHoldHeadNackRetransmits(t *testing.T) {
	o := NewOutPort(HoldHead, 0, 0)
	p1 := pkt(1, 5)
	o.Enqueue(p1)
	o.MarkSent(p1, 10)
	if _, err := o.Nack(1); err != nil {
		t.Fatal(err)
	}
	if o.NextReady() != p1 {
		t.Fatal("NACKed packet not offered for retransmission")
	}
	o.MarkSent(p1, 25)
	if p1.Retransmissions != 1 {
		t.Fatalf("Retransmissions = %d", p1.Retransmissions)
	}
	if p1.FirstSentAt != 10 || p1.SentAt != 25 {
		t.Fatalf("timestamps after retx: first %d last %d", p1.FirstSentAt, p1.SentAt)
	}
	if o.NextReady() != nil {
		t.Fatal("retransmitted packet should await its new handshake")
	}
	if _, err := o.Ack(1); err != nil {
		t.Fatal(err)
	}
	if o.Backlog() != 0 {
		t.Fatalf("Backlog = %d", o.Backlog())
	}
}

func TestSetasideFreesHead(t *testing.T) {
	o := NewOutPort(Setaside, 0, 2)
	p1, p2, p3, p4 := pkt(1, 5), pkt(2, 6), pkt(3, 7), pkt(4, 8)
	for _, p := range []*Packet{p1, p2, p3, p4} {
		o.Enqueue(p)
	}
	o.MarkSent(p1, 10)
	if o.NextReady() != p2 {
		t.Fatal("setaside did not free the head")
	}
	o.MarkSent(p2, 11)
	// Both setaside slots full: head blocked.
	if o.NextReady() != nil {
		t.Fatal("full setaside did not block")
	}
	if o.SetasideLen() != 2 || o.PeakSetaside() != 2 {
		t.Fatalf("SetasideLen = %d peak %d", o.SetasideLen(), o.PeakSetaside())
	}
	if _, err := o.Ack(1); err != nil {
		t.Fatal(err)
	}
	if o.NextReady() != p3 {
		t.Fatal("freed setaside slot did not unblock the head")
	}
}

func TestSetasideNackPriority(t *testing.T) {
	o := NewOutPort(Setaside, 0, 4)
	p1, p2, p3 := pkt(1, 5), pkt(2, 6), pkt(3, 7)
	for _, p := range []*Packet{p1, p2, p3} {
		o.Enqueue(p)
	}
	o.MarkSent(p1, 10)
	o.MarkSent(p2, 11)
	if _, err := o.Nack(2); err != nil {
		t.Fatal(err)
	}
	// The NACKed p2 must outrank the queue head p3.
	if o.NextReady() != p2 {
		t.Fatal("retransmission did not take priority over the head")
	}
	o.MarkSent(p2, 20)
	if o.NextReady() != p3 {
		t.Fatal("after retransmit the head should be offered")
	}
}

func TestAckUnknownPacketErrors(t *testing.T) {
	o := NewOutPort(Setaside, 0, 2)
	if _, err := o.Ack(99); err == nil {
		t.Fatal("ACK for unknown packet accepted")
	}
	if _, err := o.Nack(99); err == nil {
		t.Fatal("NACK for unknown packet accepted")
	}
}

func TestAckWhileRetxPendingErrors(t *testing.T) {
	o := NewOutPort(HoldHead, 0, 0)
	p1 := pkt(1, 5)
	o.Enqueue(p1)
	o.MarkSent(p1, 1)
	o.Nack(1)
	if _, err := o.Ack(1); err == nil {
		t.Fatal("ACK for a retransmission-pending packet accepted")
	}
}

func TestMarkSentPanicsOnNonHead(t *testing.T) {
	o := NewOutPort(FireAndForget, 0, 0)
	p1, p2 := pkt(1, 5), pkt(2, 6)
	o.Enqueue(p1)
	o.Enqueue(p2)
	defer func() {
		if recover() == nil {
			t.Fatal("sending a non-head packet did not panic")
		}
	}()
	o.MarkSent(p2, 10)
}

func TestBoundedQueueRejects(t *testing.T) {
	o := NewOutPort(FireAndForget, 2, 0)
	if !o.Enqueue(pkt(1, 1)) || !o.Enqueue(pkt(2, 1)) {
		t.Fatal("enqueue within bound failed")
	}
	if o.Enqueue(pkt(3, 1)) {
		t.Fatal("enqueue beyond bound succeeded")
	}
	if o.PeakQueue() != 2 {
		t.Fatalf("PeakQueue = %d", o.PeakQueue())
	}
}

func TestSetasideNeedsSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("setaside policy with zero slots did not panic")
		}
	}()
	NewOutPort(Setaside, 0, 0)
}

func TestPolicyString(t *testing.T) {
	if FireAndForget.String() == "" || HoldHead.String() == "" || Setaside.String() == "" {
		t.Fatal("policy labels empty")
	}
}

func TestInPortAcceptAndEject(t *testing.T) {
	in := NewInPort(2, 1, 0, nil)
	p1, p2, p3 := pkt(1, 0), pkt(2, 0), pkt(3, 0)
	if !in.Accept(p1) || !in.Accept(p2) {
		t.Fatal("accept within depth failed")
	}
	if in.HasSpace() {
		t.Fatal("HasSpace at capacity")
	}
	if in.Accept(p3) {
		t.Fatal("accept beyond depth succeeded")
	}
	out := in.Eject()
	if len(out) != 1 || out[0] != p1 {
		t.Fatalf("Eject = %v", out)
	}
	if in.Occupied() != 1 || in.Peak() != 2 || in.Ejected() != 1 {
		t.Fatalf("occupied %d peak %d ejected %d", in.Occupied(), in.Peak(), in.Ejected())
	}
}

func TestInPortEjectRate(t *testing.T) {
	in := NewInPort(8, 3, 0, nil)
	for i := 0; i < 5; i++ {
		in.Accept(pkt(uint64(i), 0))
	}
	if got := len(in.Eject()); got != 3 {
		t.Fatalf("ejected %d, want rate 3", got)
	}
	if got := len(in.Eject()); got != 2 {
		t.Fatalf("second eject %d, want 2", got)
	}
}

func TestInPortStall(t *testing.T) {
	in := NewInPort(8, 1, 1.0, sim.NewRNG(1)) // always stall
	in.Accept(pkt(1, 0))
	for i := 0; i < 10; i++ {
		if len(in.Eject()) != 0 {
			t.Fatal("stalled port ejected")
		}
	}
	if in.Stalls() != 10 {
		t.Fatalf("Stalls = %d", in.Stalls())
	}
}

func TestInPortValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"depth": func() { NewInPort(0, 1, 0, nil) },
		"rate":  func() { NewInPort(1, 0, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad arg did not panic", name)
				}
			}()
			f()
		}()
	}
}
