package router

import (
	"fmt"

	"photon/internal/sim"
)

// SendPolicy selects what happens to a packet at the moment it is launched
// onto the optical channel — the axis along which the paper's schemes
// differ at the sender.
type SendPolicy int

const (
	// FireAndForget removes the packet from the sender immediately:
	// credit-based schemes (delivery is guaranteed) and DHS with
	// circulation (the receiver reinjects instead of dropping).
	FireAndForget SendPolicy = iota
	// HoldHead keeps the sent packet logically at the head of the queue
	// until its ACK arrives — basic GHS/DHS. The queue is blocked
	// meanwhile: the paper's head-of-line problem.
	HoldHead
	// Setaside moves the sent packet into a small side buffer to await its
	// ACK, freeing the head for the next packet.
	Setaside
)

func (p SendPolicy) String() string {
	switch p {
	case FireAndForget:
		return "fire-and-forget"
	case HoldHead:
		return "hold-head"
	case Setaside:
		return "setaside"
	default:
		return "policy?"
	}
}

// pendingEntry is a sent-but-unacknowledged packet.
type pendingEntry struct {
	pkt       *Packet
	needsRetx bool

	// Retransmit-timeout state (fault recovery). deadline is the cycle at
	// which the sender gives up waiting for the handshake answer and
	// schedules a retransmission; 0 means the timer is not armed (a
	// deadline can never legitimately be cycle 0 — launches happen at or
	// after cycle 0 and the timeout base is positive). backoff is the
	// consecutive-timeout count driving exponential backoff; it resets on
	// any received answer, because backoff compensates for *silence* (lost
	// pulses), not for congestion — a NACK is a definitive answer.
	deadline int64
	backoff  int
}

// OutPort is one node's output side: the FIFO output queue in front of E/O
// conversion plus the pending/setaside machinery of the active send policy.
//
// Arbitration interacts with the port through NextReady (which packet wants
// the channel — retransmissions first, then the queue head if the policy
// permits) and MarkSent (the packet was launched this cycle).
type OutPort struct {
	policy      SendPolicy
	queue       *sim.Queue[*Packet]
	setaside    []pendingEntry // used by Setaside policy, cap setasideCap
	setasideCap int
	pending     pendingEntry // used by HoldHead policy, valid iff hasPending
	hasPending  bool

	peakQueue    int
	peakSetaside int
}

// NewOutPort builds an output port. queueCap bounds the output queue (0 =
// unbounded, the open-loop evaluation default); setasideCap is the number
// of setaside slots and only meaningful under the Setaside policy.
func NewOutPort(policy SendPolicy, queueCap, setasideCap int) *OutPort {
	if policy == Setaside && setasideCap < 1 {
		panic("router: setaside policy needs at least one setaside slot")
	}
	o := &OutPort{
		policy:      policy,
		queue:       sim.NewQueue[*Packet](queueCap),
		setasideCap: setasideCap,
	}
	if policy == Setaside {
		o.setaside = make([]pendingEntry, 0, setasideCap)
	}
	return o
}

// Policy returns the port's send policy.
func (o *OutPort) Policy() SendPolicy { return o.policy }

// Enqueue admits a packet into the output queue; false means the queue is
// full (only possible with a bounded queue).
func (o *OutPort) Enqueue(p *Packet) bool {
	ok := o.queue.PushBack(p)
	if ok && o.queue.Len() > o.peakQueue {
		o.peakQueue = o.queue.Len()
	}
	return ok
}

// QueueLen reports output queue occupancy (excluding pending/setaside).
func (o *OutPort) QueueLen() int { return o.queue.Len() }

// SetasideLen reports occupied setaside slots.
func (o *OutPort) SetasideLen() int { return len(o.setaside) }

// Unacked reports the number of sent packets awaiting handshake.
func (o *OutPort) Unacked() int {
	n := len(o.setaside)
	if o.hasPending {
		n++
	}
	return n
}

// PeakQueue reports the largest queue occupancy observed.
func (o *OutPort) PeakQueue() int { return o.peakQueue }

// PeakSetaside reports the largest setaside occupancy observed.
func (o *OutPort) PeakSetaside() int { return o.peakSetaside }

// Backlog reports every packet still owned by the port (for drain checks).
func (o *OutPort) Backlog() int { return o.queue.Len() + o.Unacked() }

// NextReady returns the packet that should compete for channel arbitration
// this cycle, or nil. Priority order:
//
//  1. a NACKed packet awaiting retransmission (the oldest one) — it is the
//     oldest traffic the node holds and retransmitting it first preserves
//     point-to-point ordering as far as possible;
//  2. the head of the output queue, provided the policy allows a new
//     launch (HoldHead: nothing pending; Setaside: a free setaside slot).
func (o *OutPort) NextReady() *Packet {
	if o.hasPending {
		if o.pending.needsRetx {
			return o.pending.pkt
		}
		if o.policy == HoldHead {
			// Head is blocked behind the un-ACKed packet.
			return nil
		}
	}
	for i := range o.setaside {
		if o.setaside[i].needsRetx {
			return o.setaside[i].pkt
		}
	}
	if o.policy == Setaside && len(o.setaside) >= o.setasideCap {
		return nil
	}
	if head, ok := o.queue.Peek(); ok {
		return head
	}
	return nil
}

// MarkSent records that pkt — which must be the current NextReady — was
// launched at cycle now, applying the policy's state transition.
func (o *OutPort) MarkSent(pkt *Packet, now int64) {
	pkt.SentAt = now
	if pkt.FirstSentAt < 0 {
		pkt.FirstSentAt = now
	}

	// Retransmission of the held packet?
	if o.hasPending && o.pending.pkt == pkt {
		if !o.pending.needsRetx {
			panic("router: re-sending a packet that is still awaiting its handshake")
		}
		o.pending.needsRetx = false
		pkt.Retransmissions++
		return
	}
	// Retransmission from setaside?
	for i := range o.setaside {
		if o.setaside[i].pkt == pkt {
			if !o.setaside[i].needsRetx {
				panic("router: re-sending a setaside packet that is still awaiting its handshake")
			}
			o.setaside[i].needsRetx = false
			pkt.Retransmissions++
			return
		}
	}

	// First launch: must be the queue head.
	head, ok := o.queue.Peek()
	if !ok || head != pkt {
		panic("router: MarkSent for a packet that is not ready")
	}
	o.queue.PopFront()
	switch o.policy {
	case FireAndForget:
		// Sender forgets the packet; delivery is the receiver's problem
		// (guaranteed by credits, or by circulation).
	case HoldHead:
		if o.hasPending {
			panic("router: HoldHead launched with a packet already pending")
		}
		o.pending = pendingEntry{pkt: pkt}
		o.hasPending = true
	case Setaside:
		if len(o.setaside) >= o.setasideCap {
			panic("router: setaside overflow on launch")
		}
		o.setaside = append(o.setaside, pendingEntry{pkt: pkt})
		if len(o.setaside) > o.peakSetaside {
			o.peakSetaside = len(o.setaside)
		}
	}
}

// entryFor returns the pending/setaside entry holding pkt, or nil.
func (o *OutPort) entryFor(pkt *Packet) *pendingEntry {
	if o.hasPending && o.pending.pkt == pkt {
		return &o.pending
	}
	for i := range o.setaside {
		if o.setaside[i].pkt == pkt {
			return &o.setaside[i]
		}
	}
	return nil
}

// Arm starts the retransmit timer for pkt, which must have just been
// launched (MarkSent) under a retaining policy. The deadline is
// now + base<<min(backoff, capExp): the base timeout doubles with each
// consecutive unanswered launch, capped so a long outage cannot push the
// deadline out indefinitely. Returns the armed deadline.
func (o *OutPort) Arm(pkt *Packet, now, base int64, capExp int) int64 {
	e := o.entryFor(pkt)
	if e == nil {
		panic("router: arming a retransmit timer for a packet the port does not hold")
	}
	shift := e.backoff
	if shift > capExp {
		shift = capExp
	}
	e.deadline = now + base<<shift
	return e.deadline
}

// ExpireTimeouts fires every armed timer whose deadline has arrived
// (deadline <= now) and is still unanswered: the entry is marked for
// retransmission, its backoff level increments, and fire is called with
// the packet. An answer processed earlier in the same cycle wins — the
// handshake-delivery phase runs before the timeout phase, so an ACK
// arriving exactly at the deadline cancels the timer (it removed the
// entry) rather than racing it. Returns the number of timers fired.
func (o *OutPort) ExpireTimeouts(now int64, fire func(*Packet)) int {
	fired := 0
	expire := func(e *pendingEntry) {
		if e.deadline <= 0 || now < e.deadline || e.needsRetx {
			return
		}
		e.deadline = 0
		e.backoff++
		e.needsRetx = true
		fired++
		if fire != nil {
			fire(e.pkt)
		}
	}
	if o.hasPending {
		expire(&o.pending)
	}
	for i := range o.setaside {
		expire(&o.setaside[i])
	}
	return fired
}

// Ack resolves a positive handshake for packet id, releasing it from the
// pending/setaside state. It returns the acknowledged packet.
func (o *OutPort) Ack(id uint64) (*Packet, error) {
	if o.hasPending && o.pending.pkt.ID == id {
		pkt := o.pending.pkt
		if o.pending.needsRetx {
			return nil, fmt.Errorf("router: ACK for packet %d which is marked for retransmission", id)
		}
		o.pending = pendingEntry{}
		o.hasPending = false
		return pkt, nil
	}
	for i := range o.setaside {
		if o.setaside[i].pkt.ID == id {
			if o.setaside[i].needsRetx {
				return nil, fmt.Errorf("router: ACK for packet %d which is marked for retransmission", id)
			}
			pkt := o.setaside[i].pkt
			o.setaside = append(o.setaside[:i], o.setaside[i+1:]...)
			return pkt, nil
		}
	}
	return nil, fmt.Errorf("router: ACK for unknown packet %d", id)
}

// Nack resolves a negative handshake: the packet stays owned by the port
// and becomes eligible for retransmission.
func (o *OutPort) Nack(id uint64) (*Packet, error) {
	if o.hasPending && o.pending.pkt.ID == id {
		o.pending.needsRetx = true
		o.pending.deadline = 0
		o.pending.backoff = 0
		return o.pending.pkt, nil
	}
	for i := range o.setaside {
		if o.setaside[i].pkt.ID == id {
			o.setaside[i].needsRetx = true
			o.setaside[i].deadline = 0
			o.setaside[i].backoff = 0
			return o.setaside[i].pkt, nil
		}
	}
	return nil, fmt.Errorf("router: NACK for unknown packet %d", id)
}
