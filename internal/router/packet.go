// Package router models the electrical side of each optical network node:
// the two-stage pipelined router (RC+SA, ST) the paper derives from a
// conventional VC router by dropping VC allocation (§IV-B), the output
// queue feeding E/O conversion, the setaside buffers that cure
// head-of-line blocking, and the input (ejection) buffer behind O/E
// conversion.
package router

// Class distinguishes packet roles for the closed-loop CMP experiments;
// the network treats all classes identically (single-flit packets on wide
// optical channels).
type Class uint8

const (
	// ClassData is a plain data packet (synthetic and trace workloads).
	ClassData Class = iota
	// ClassRequest is a memory request travelling core -> L2 bank.
	ClassRequest
	// ClassReply is a memory reply travelling L2 bank -> core.
	ClassReply
)

func (c Class) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassRequest:
		return "request"
	case ClassReply:
		return "reply"
	default:
		return "class?"
	}
}

// Packet is the unit of transfer: one single-flit packet, as the paper
// assumes throughout ("given the high bandwidth density of nanophotonics,
// the channels are often wide enough so that a large data packet can fit in
// a single flit").
//
// Timestamps are cycle numbers; -1 marks "not yet". They trace the full
// life of a packet and feed every latency statistic:
//
//	CreatedAt   — handed to the router by a core
//	EnqueuedAt  — entered the output queue (after the 2-cycle pipeline)
//	ReadyAt     — first became eligible for channel arbitration
//	FirstSentAt — first launch onto the optical channel
//	SentAt      — most recent launch (differs from FirstSentAt after NACK)
//	DeliveredAt — ejected to the destination's core
type Packet struct {
	ID  uint64
	Src int // source node
	Dst int // destination (home) node

	CreatedAt   int64
	EnqueuedAt  int64
	ReadyAt     int64
	FirstSentAt int64
	SentAt      int64
	DeliveredAt int64
	// AcceptedAt is when the home node first accepted the packet into its
	// input buffer. It stands in for the home's bounded duplicate-detection
	// registry under fault injection: a timeout retransmission of an
	// already-accepted packet (its ACK died in flight) is recognised and
	// discarded on arrival. -1 until accepted.
	AcceptedAt int64

	// Retransmissions counts NACK-triggered re-sends (handshake schemes).
	Retransmissions int
	// Circulations counts extra loop trips taken at the receiver
	// (DHS with circulation).
	Circulations int

	// Measured marks packets injected inside the measurement window.
	Measured bool

	Class Class
	// Tag carries workload-defined context (e.g. the MSHR id of the
	// memory transaction a request belongs to).
	Tag uint64
}

// NewPacket returns a packet with all timestamps unset.
func NewPacket(id uint64, src, dst int, created int64) *Packet {
	return &Packet{
		ID:  id,
		Src: src, Dst: dst,
		CreatedAt:   created,
		EnqueuedAt:  -1,
		ReadyAt:     -1,
		FirstSentAt: -1,
		SentAt:      -1,
		DeliveredAt: -1,
		AcceptedAt:  -1,
	}
}

// Latency returns the end-to-end packet latency; it panics when the packet
// has not been delivered (callers filter on DeliveredAt >= 0).
func (p *Packet) Latency() int64 {
	if p.DeliveredAt < 0 || p.CreatedAt < 0 {
		panic("router: latency of an undelivered packet")
	}
	return p.DeliveredAt - p.CreatedAt
}

// QueueWait returns the cycles spent between entering the output queue and
// first launch.
func (p *Packet) QueueWait() int64 {
	if p.FirstSentAt < 0 || p.EnqueuedAt < 0 {
		return -1
	}
	return p.FirstSentAt - p.EnqueuedAt
}

// ArbitrationWait returns the cycles between first becoming head-eligible
// and first launch — the "token waiting time" the paper's handshake schemes
// attack.
func (p *Packet) ArbitrationWait() int64 {
	if p.FirstSentAt < 0 || p.ReadyAt < 0 {
		return -1
	}
	return p.FirstSentAt - p.ReadyAt
}
