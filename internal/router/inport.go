package router

import "photon/internal/sim"

// InPort is the home node's input side: the buffer behind O/E conversion
// whose depth is exactly the credit count advertised by the token-based
// schemes and the accept/drop threshold of the handshake schemes. Packets
// drain from it to the node's cores at EjectRate packets per cycle.
//
// StallProb models receiver-side ejection contention (the cores, the
// concentrated router's local ports): with probability StallProb a cycle
// ejects nothing. The paper's full-system runs see such contention — it is
// what makes the sub-1% packet drops of the handshake schemes possible at
// all — while pure open-loop runs leave it at 0.
type InPort struct {
	buf       *sim.Queue[*Packet]
	ejectRate int
	stallProb float64
	rng       *sim.RNG

	// scratch backs the slice Eject returns; the caller owns it only until
	// the next Eject call, which keeps the per-cycle drain allocation-free.
	scratch []*Packet

	ejected int64
	peak    int
	stalls  int64
}

// NewInPort builds an ejection buffer with the given depth (credits),
// drain rate and stall probability. rng may be nil when stallProb is 0.
func NewInPort(depth, ejectRate int, stallProb float64, rng *sim.RNG) *InPort {
	if depth < 1 {
		panic("router: input buffer depth must be >= 1")
	}
	if ejectRate < 1 {
		panic("router: eject rate must be >= 1")
	}
	return &InPort{
		buf:       sim.NewQueue[*Packet](depth),
		ejectRate: ejectRate,
		stallProb: stallProb,
		rng:       rng,
	}
}

// Depth returns the buffer depth (the credit count).
func (in *InPort) Depth() int { return in.buf.Cap() }

// Occupied reports current occupancy.
func (in *InPort) Occupied() int { return in.buf.Len() }

// Peak reports the largest occupancy observed.
func (in *InPort) Peak() int { return in.peak }

// HasSpace reports whether an arriving packet can be buffered this cycle.
func (in *InPort) HasSpace() bool { return !in.buf.Full() }

// Accept buffers an arriving packet; false means the buffer is full (the
// handshake schemes drop or recirculate in that case; credit schemes treat
// it as a protocol violation).
func (in *InPort) Accept(p *Packet) bool {
	ok := in.buf.PushBack(p)
	if ok && in.buf.Len() > in.peak {
		in.peak = in.buf.Len()
	}
	return ok
}

// Eject drains up to EjectRate packets to the cores and returns them; an
// ejection stall (probability StallProb) drains nothing this cycle. The
// returned slice is valid only until the next Eject call.
func (in *InPort) Eject() []*Packet {
	if in.stallProb > 0 && in.rng != nil && in.rng.Bernoulli(in.stallProb) {
		in.stalls++
		return nil
	}
	if in.buf.Empty() {
		return nil
	}
	out := in.scratch[:0]
	for i := 0; i < in.ejectRate; i++ {
		p, ok := in.buf.PopFront()
		if !ok {
			break
		}
		out = append(out, p)
		in.ejected++
	}
	in.scratch = out
	return out
}

// Ejected reports the cumulative ejected packet count.
func (in *InPort) Ejected() int64 { return in.ejected }

// Stalls reports how many cycles ejection was stalled.
func (in *InPort) Stalls() int64 { return in.stalls }
