package router

import "testing"

// launchHeld enqueues and launches one packet on a HoldHead port.
func launchHeld(t *testing.T, o *OutPort, id uint64, now int64) *Packet {
	t.Helper()
	p := pkt(id, 1)
	if !o.Enqueue(p) {
		t.Fatal("enqueue refused")
	}
	if got := o.NextReady(); got != p {
		t.Fatalf("NextReady = %v, want the enqueued packet", got)
	}
	o.MarkSent(p, now)
	return p
}

func TestArmAndFireAtDeadline(t *testing.T) {
	o := NewOutPort(HoldHead, 0, 0)
	p := launchHeld(t, o, 1, 100)
	deadline := o.Arm(p, 100, 20, 4)
	if deadline != 120 {
		t.Fatalf("deadline = %d, want 120", deadline)
	}
	// One cycle before the deadline: must not fire.
	if fired := o.ExpireTimeouts(119, nil); fired != 0 {
		t.Fatalf("timer fired %d at cycle 119, before its deadline", fired)
	}
	// Exactly at the deadline: must fire, once, reporting the packet.
	var got *Packet
	if fired := o.ExpireTimeouts(120, func(p *Packet) { got = p }); fired != 1 {
		t.Fatalf("fired %d at the deadline, want 1", fired)
	}
	if got != p {
		t.Fatalf("timeout reported %v, want the armed packet", got)
	}
	// The entry is now marked for retransmission and disarmed: a second
	// sweep the same cycle (or later) must not fire again.
	if fired := o.ExpireTimeouts(120, nil); fired != 0 {
		t.Fatalf("disarmed timer re-fired %d times", fired)
	}
	if o.NextReady() != p {
		t.Fatal("timed-out packet is not retransmission-ready")
	}
}

// TestAckAtDeadlineBoundary: the handshake phase runs before the timeout
// phase, so an ACK processed at the deadline cycle removes the entry and
// the timer has nothing left to fire on.
func TestAckAtDeadlineBoundary(t *testing.T) {
	o := NewOutPort(HoldHead, 0, 0)
	p := launchHeld(t, o, 1, 0)
	o.Arm(p, 0, 20, 4)
	if _, err := o.Ack(p.ID); err != nil {
		t.Fatalf("ACK at the deadline cycle: %v", err)
	}
	if fired := o.ExpireTimeouts(20, nil); fired != 0 {
		t.Fatalf("timer fired %d after its packet was ACKed", fired)
	}
	if o.Unacked() != 0 {
		t.Fatal("port still holds the ACKed packet")
	}
}

// TestBackoffDoublingAndCap: consecutive unanswered launches double the
// timeout up to base<<cap.
func TestBackoffDoublingAndCap(t *testing.T) {
	o := NewOutPort(HoldHead, 0, 0)
	p := launchHeld(t, o, 1, 0)
	now := int64(0)
	wantShift := []int64{20, 40, 80, 160, 320, 320, 320} // base 20, cap 4
	for i, want := range wantShift {
		deadline := o.Arm(p, now, 20, 4)
		if deadline-now != want {
			t.Fatalf("launch %d: timeout %d, want %d", i, deadline-now, want)
		}
		if fired := o.ExpireTimeouts(deadline, nil); fired != 1 {
			t.Fatalf("launch %d: timer did not fire at %d", i, deadline)
		}
		// Relaunch (the retransmit) and re-arm at the fire cycle.
		o.MarkSent(p, deadline)
		now = deadline
	}
	if p.Retransmissions != len(wantShift) {
		t.Fatalf("retransmissions = %d, want %d", p.Retransmissions, len(wantShift))
	}
}

// TestNackResetsBackoff: a NACK is a definitive answer — it disarms the
// timer and resets the backoff level (backoff compensates for silence, not
// congestion).
func TestNackResetsBackoff(t *testing.T) {
	o := NewOutPort(HoldHead, 0, 0)
	p := launchHeld(t, o, 1, 0)
	// Two unanswered launches escalate the backoff to 2.
	o.Arm(p, 0, 20, 4)
	o.ExpireTimeouts(20, nil)
	o.MarkSent(p, 20)
	o.Arm(p, 20, 20, 4)
	o.ExpireTimeouts(60, nil)
	o.MarkSent(p, 60)

	if _, err := o.Nack(p.ID); err != nil {
		t.Fatalf("NACK: %v", err)
	}
	// The NACK disarmed the timer...
	if fired := o.ExpireTimeouts(10_000, nil); fired != 0 {
		t.Fatalf("NACKed entry's timer fired %d times", fired)
	}
	// ...and the next launch arms at the base timeout again.
	o.MarkSent(p, 100)
	if deadline := o.Arm(p, 100, 20, 4); deadline != 120 {
		t.Fatalf("post-NACK deadline = %d, want the un-backed-off 120", deadline)
	}
}

// TestNackWhileAwaitingRetx: a NACK for a packet already marked for
// retransmission (NACK lost, timeout fired, then the retransmit is NACKed
// again before relaunch bookkeeping settles) must stay coherent: the entry
// remains retransmission-ready and a later ACK of a retx-marked entry is
// rejected.
func TestNackWhileAwaitingRetx(t *testing.T) {
	o := NewOutPort(Setaside, 0, 2)
	p := pkt(1, 1)
	o.Enqueue(p)
	o.MarkSent(p, 0)
	o.Arm(p, 0, 20, 4)
	o.ExpireTimeouts(20, nil) // NACK was lost; the timer recovered
	if _, err := o.Nack(p.ID); err != nil {
		t.Fatalf("NACK on a retx-marked entry: %v", err)
	}
	if o.NextReady() != p {
		t.Fatal("entry lost its retransmission-ready state")
	}
	if _, err := o.Ack(p.ID); err == nil {
		t.Fatal("ACK accepted for a packet marked for retransmission")
	}
	// The relaunch proceeds normally and can be ACKed.
	o.MarkSent(p, 30)
	if _, err := o.Ack(p.ID); err != nil {
		t.Fatalf("ACK after relaunch: %v", err)
	}
}

// TestExpireSkipsUnarmedAndPending: unarmed entries (deadline 0) never
// fire, and a fired entry stays silent until re-armed by its relaunch.
func TestExpireSkipsUnarmedAndPending(t *testing.T) {
	o := NewOutPort(Setaside, 0, 4)
	armed := pkt(1, 1)
	unarmed := pkt(2, 1)
	for _, p := range []*Packet{armed, unarmed} {
		o.Enqueue(p)
		o.MarkSent(p, 0)
	}
	o.Arm(armed, 0, 20, 4)
	if fired := o.ExpireTimeouts(1_000, nil); fired != 1 {
		t.Fatalf("fired %d, want only the armed entry", fired)
	}
	if fired := o.ExpireTimeouts(2_000, nil); fired != 0 {
		t.Fatalf("fired %d more after the entry was already pending retx", fired)
	}
}

func TestArmUnknownPacketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Arm of an un-held packet did not panic")
		}
	}()
	o := NewOutPort(HoldHead, 0, 0)
	o.Arm(pkt(9, 1), 0, 20, 4)
}
