package check

import (
	"strings"
	"testing"

	"photon/internal/core"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// TestQuickWorkloadBattery runs the CI-sized workload battery end to
// end: every preset workload under every scheme must be deterministic,
// tape-faithful and conservation-clean at every phase boundary.
func TestQuickWorkloadBattery(t *testing.T) {
	rep, err := RunWorkloads(QuickWorkloadBattery(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("workload battery failed:\n%s", strings.Join(rep.Failures(), "\n"))
	}
	presets := traffic.PresetWorkloads()
	if want := len(presets) * len(core.Schemes()); len(rep.Points) != want {
		t.Fatalf("battery covered %d points, want %d", len(rep.Points), want)
	}
	// The diurnal preset has three phases, so its mid-run conservation
	// audit must have fired at three boundaries; single-phase workloads
	// still audit once, at the injection-span end.
	for _, p := range rep.Points {
		want := 1
		if p.Workload == "diurnal" {
			want = 3
		}
		if p.Boundaries != want {
			t.Errorf("%s %s audited %d phase boundaries, want %d", p.Scheme, p.Workload, p.Boundaries, want)
		}
		if p.Injected == 0 {
			t.Errorf("%s %s injected nothing — the battery is vacuous", p.Scheme, p.Workload)
		}
	}
	if rep.Table().Len() != len(rep.Points) {
		t.Fatal("report table does not cover every point")
	}
}

// TestWorkloadBatteryDetectsDivergence pins that the battery's
// tape-faithfulness check actually bites: verifying a point against a
// tape recorded from a different seed must fail, not silently pass.
func TestWorkloadBatteryDetectsDivergence(t *testing.T) {
	b := QuickWorkloadBattery(1)
	preset := traffic.PresetWorkloads()[0]
	w, err := traffic.ParseWorkload(preset.Spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(b.Schemes[0])
	span := b.Window.Warmup + b.Window.Measure
	tape, err := traffic.RecordWorkloadTape(w, b.Pattern, cfg.Nodes, cfg.CoresPerNode, 12345, span)
	if err != nil {
		t.Fatal(err)
	}
	// Lie about the tape's seed: the live injector leg now runs different
	// traffic than the replay legs.
	tape.Seed = sim.DeriveSeed(b.Seed, 0)
	p, err := verifyWorkloadPoint(b, b.Schemes[0], preset, w, tape)
	if err != nil {
		t.Fatal(err)
	}
	if p.TapeFaithful {
		t.Fatal("battery accepted a live run that diverged from its tape")
	}
	if p.Deterministic != true {
		t.Fatal("replay determinism should be independent of the tape's recorded seed")
	}
}
