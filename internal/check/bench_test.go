package check

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"photon/internal/core"
)

// TestBenchTapOverheadGuard is the tentpole's zero-overhead guard: a nil
// tap must cost nothing measurable on the hot path, and an armed minimal
// tap must stay within a small factor. Wall-clock comparisons on shared
// CI machines are noisy, so the factors are deliberately lenient — this
// is a tripwire for gross regressions (a tap check landing inside the
// token-scan inner loop), not a microbenchmark. Skipped under -short and
// under the race detector's ~10x slowdown.
func TestBenchTapOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("wall-clock guard skipped under the race detector")
	}
	cfg := DefaultBench(1)
	cfg.Warmup, cfg.Cycles, cfg.Blocks = 500, 2000, 3
	rep, err := RunBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Points {
		if p.TracedNsPerCycle > p.NsPerCycle*2.0 {
			t.Errorf("%s: armed tap %.1f ns/cycle vs nil tap %.1f — more than 2x",
				p.Scheme, p.TracedNsPerCycle, p.NsPerCycle)
		}
	}

	// Against the checked-in baseline: the nil-tap engine must stay within
	// a generous envelope of BENCH_core.json (different machines and CPU
	// contention make tight bounds meaningless; 5x catches an accidental
	// always-on tracing path).
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_core.json"))
	if err != nil {
		t.Fatalf("reading BENCH_core.json baseline: %v", err)
	}
	var base BenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing BENCH_core.json: %v", err)
	}
	baseline := map[string]float64{}
	for _, p := range base.Points {
		baseline[p.Scheme] = p.NsPerCycle
	}
	for _, p := range rep.Points {
		want, ok := baseline[p.Scheme]
		if !ok {
			t.Errorf("%s: missing from BENCH_core.json baseline", p.Scheme)
			continue
		}
		if p.NsPerCycle > want*5.0 {
			t.Errorf("%s: %.1f ns/cycle is more than 5x the %.1f baseline",
				p.Scheme, p.NsPerCycle, want)
		}
	}
}

// TestBenchPanicNamesScheme: RunBench runs its per-scheme measurements
// under single-worker farm.Do supervision; a measurement that panics
// must come back as an error that names the offending scheme (so a CI
// bench failure is attributable at a glance), not crash the process or
// kill the sibling measurements.
func TestBenchPanicNamesScheme(t *testing.T) {
	schemes := core.Schemes()
	victim := core.DHS
	measured := map[core.Scheme]bool{}
	bench := func(s core.Scheme, cfg BenchConfig, traced bool) (time.Duration, string, error) {
		if s == victim {
			panic("synthetic bench failure")
		}
		measured[s] = true
		return time.Millisecond, s.Family(), nil
	}
	_, err := runBenchWith(DefaultBench(1), schemes, bench)
	if err == nil {
		t.Fatal("runBenchWith swallowed a panicking benchmark")
	}
	if !strings.Contains(err.Error(), victim.String()) {
		t.Fatalf("error %q does not name the panicking scheme %q", err, victim)
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error %q does not surface the panic", err)
	}
	// Single-worker supervision runs jobs independently: schemes ordered
	// before the victim must still have been measured.
	for _, s := range schemes {
		if s == victim {
			break
		}
		if !measured[s] {
			t.Errorf("scheme %s before the victim was not measured", s)
		}
	}
}

// TestBenchReportShape: the injectable measurement path fills the same
// report fields the real benchmark does.
func TestBenchReportShape(t *testing.T) {
	bench := func(s core.Scheme, cfg BenchConfig, traced bool) (time.Duration, string, error) {
		d := 10 * time.Millisecond
		if traced {
			d = 12 * time.Millisecond
		}
		return d, s.Family(), nil
	}
	cfg := DefaultBench(7)
	rep, err := runBenchWith(cfg, core.Schemes(), bench)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(core.Schemes()) {
		t.Fatalf("%d points, want %d", len(rep.Points), len(core.Schemes()))
	}
	for _, p := range rep.Points {
		if p.NsPerCycle <= 0 || p.TracedNsPerCycle <= p.NsPerCycle {
			t.Errorf("%s: ns/cycle %.1f traced %.1f inconsistent with the injected timings",
				p.Scheme, p.NsPerCycle, p.TracedNsPerCycle)
		}
		if p.Family == "" {
			t.Errorf("%s: missing family", p.Scheme)
		}
	}
}
