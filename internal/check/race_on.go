//go:build race

package check

// raceEnabled reports whether the race detector is compiled in; timing
// guards skip themselves under its ~10x slowdown.
const raceEnabled = true
