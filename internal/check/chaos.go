package check

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"

	"photon/internal/core"
	"photon/internal/fault"
	"photon/internal/farm"
	"photon/internal/sim"
	"photon/internal/stats"
	"photon/internal/traffic"
)

// ChaosBattery configures the fault-injection verification sweep: one
// shared uniform-random tape replayed through every (scheme, fault class,
// fault rate) triple with recovery enabled, asserting determinism under
// faults, packet conservation mid-flight and after drain, quiescence, and
// zero permanent loss wherever the scheme's protocol can recover. Cross
// legs cover the negative space: rate-zero inertness (the recovery
// machinery must not perturb fault-free digests), recovery-off stranding
// (data loss without timeouts must stall the drain, loudly), and
// fire-and-forget permanent loss (conservation must hold through the Lost
// term when recovery is impossible by design).
type ChaosBattery struct {
	// Schemes under test (default: all of them).
	Schemes []core.Scheme
	// Rates is the per-class fault-rate grid (default: 0.1%, 1%, 5%).
	Rates []float64
	// Classes under test (default: all four). A class is skipped for
	// schemes that lack the hardware it targets (pulse and data faults
	// need handshake retention to be recoverable).
	Classes []fault.Class
	// Burst is the fault burst length applied to every class (default 2,
	// so burst draining is exercised on every point).
	Burst int
	// Window is the per-run simulation window.
	Window sim.Window
	// Load is the offered uniform-random load, kept below saturation so a
	// finite drain is the fault-free expectation.
	Load float64
	// Seed drives the tape and the networks.
	Seed uint64
	// DrainLimit bounds the post-window drain; with recovery enabled every
	// in-grid point must reach quiescence inside it.
	DrainLimit int64
	// Parallel bounds concurrent point verifications (0 = GOMAXPROCS).
	Parallel int
}

// QuickChaos is the CI-sized chaos battery.
func QuickChaos(seed uint64) ChaosBattery {
	return ChaosBattery{
		Schemes:    core.Schemes(),
		Rates:      []float64{0.001, 0.01, 0.05},
		Classes:    fault.Classes(),
		Burst:      2,
		Window:     sim.Window{Warmup: 300, Measure: 1000, Drain: 1000},
		Load:       0.02,
		Seed:       seed,
		DrainLimit: 60_000,
	}
}

func (b ChaosBattery) workers() int {
	if b.Parallel > 0 {
		return b.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// classApplies reports whether a fault class belongs in scheme s's grid.
// Pulse faults need a handshake waveguide to strike; data faults are only
// recoverable when the sender retains its copy (fire-and-forget loss is
// covered by a dedicated cross leg instead, where Lost > 0 is the
// expectation rather than a failure).
func classApplies(s core.Scheme, cl fault.Class) bool {
	switch cl {
	case fault.PulseLoss, fault.DataLoss:
		return s.Handshake()
	default:
		return true
	}
}

// ChaosPoint is the verdict for one (scheme, class, rate) triple.
type ChaosPoint struct {
	Scheme core.Scheme
	Class  fault.Class
	Rate   float64

	Digest uint64
	// FaultsInjected is the number of faults that actually fired; the
	// point proves nothing if the schedule never struck.
	FaultsInjected     int64
	TimeoutRetransmits int64
	TokensRegenerated  int64

	// Deterministic: two replays produced identical core.Result structs.
	Deterministic bool
	// Drained: the post-window drain reached quiescence within the limit.
	Drained bool
	// Recovered: no permanent loss — every injected packet was delivered
	// or explicitly queue-rejected once the network went quiescent.
	Recovered bool
	// Conservation holds the auditor's verdict ("" = pass).
	Conservation string

	Detail string
}

// Pass reports whether every per-point check succeeded.
func (p ChaosPoint) Pass() bool {
	return p.Deterministic && p.Drained && p.Recovered && p.Conservation == ""
}

// ChaosReport is the outcome of a chaos battery run.
type ChaosReport struct {
	Points []ChaosPoint
	Cross  []Check
}

// Pass reports whether the whole chaos battery is green.
func (r *ChaosReport) Pass() bool {
	for _, p := range r.Points {
		if !p.Pass() {
			return false
		}
	}
	for _, c := range r.Cross {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Failures returns every failing point and cross check as printable lines.
func (r *ChaosReport) Failures() []string {
	var out []string
	for _, p := range r.Points {
		if !p.Pass() {
			out = append(out, fmt.Sprintf("%s %s @ %.3f: %s", p.Scheme, p.Class, p.Rate, p.Detail))
		}
	}
	for _, c := range r.Cross {
		if !c.Pass {
			out = append(out, fmt.Sprintf("%s: %s", c.Name, c.Detail))
		}
	}
	return out
}

// Table renders the per-point verdicts for cmd/verify.
func (r *ChaosReport) Table() *stats.Table {
	t := stats.NewTable("chaos battery (fault injection + recovery)",
		"scheme", "class", "rate", "digest", "faults", "timeouts", "regens", "determ", "drained", "recovered", "conserve")
	mark := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAIL"
	}
	for _, p := range r.Points {
		t.AddRow(p.Scheme.String(), p.Class.String(), p.Rate,
			fmt.Sprintf("%016x", p.Digest), p.FaultsInjected, p.TimeoutRetransmits, p.TokensRegenerated,
			mark(p.Deterministic), mark(p.Drained), mark(p.Recovered), mark(p.Conservation == ""))
	}
	return t
}

// chaosConfig builds the faulty network config for one point.
func (b ChaosBattery) chaosConfig(s core.Scheme, cl fault.Class, rate float64) core.Config {
	cfg := core.DefaultConfig(s)
	cfg.Seed = b.Seed
	cfg.Fault = fault.Config{
		Enabled: true,
		// Fire only after warmup: steady state degrades, startup doesn't.
		Warmup: b.Window.Warmup,
	}
	cfg.Fault = cfg.Fault.SetClass(cl, fault.ClassConfig{Rate: rate, Burst: b.Burst})
	cfg.Recovery.Enabled = true
	return cfg
}

// RunChaos executes the chaos battery.
func RunChaos(b ChaosBattery) (*ChaosReport, error) {
	if len(b.Schemes) == 0 {
		b.Schemes = core.Schemes()
	}
	if len(b.Rates) == 0 {
		b.Rates = QuickChaos(b.Seed).Rates
	}
	if len(b.Classes) == 0 {
		b.Classes = fault.Classes()
	}
	if b.Window.Total() == 0 {
		b.Window = QuickChaos(b.Seed).Window
	}
	if b.Load <= 0 {
		b.Load = QuickChaos(b.Seed).Load
	}
	if b.DrainLimit <= 0 {
		b.DrainLimit = QuickChaos(b.Seed).DrainLimit
	}

	cfg0 := core.DefaultConfig(b.Schemes[0])
	tape, err := traffic.RecordTape(traffic.UniformRandom{}, b.Load, cfg0.Nodes, cfg0.CoresPerNode,
		sim.DeriveSeed(b.Seed, 0xC4A05), b.Window.Warmup+b.Window.Measure)
	if err != nil {
		return nil, fmt.Errorf("check: recording chaos tape: %w", err)
	}

	type job struct {
		scheme core.Scheme
		class  fault.Class
		rate   float64
	}
	var jobs []job
	for _, s := range b.Schemes {
		for _, cl := range b.Classes {
			if !classApplies(s, cl) {
				continue
			}
			for _, rate := range b.Rates {
				jobs = append(jobs, job{s, cl, rate})
			}
		}
	}

	points := make([]ChaosPoint, len(jobs))
	errs := farm.Do(len(jobs), b.workers(), func(i int) error {
		var err error
		j := jobs[i]
		points[i], err = b.verifyChaosPoint(j.scheme, j.class, j.rate, tape)
		return err
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("check: chaos %s %s %.3f: %w",
				jobs[i].scheme, jobs[i].class, jobs[i].rate, err)
		}
	}
	rep := &ChaosReport{Points: points}

	// Rate-zero inertness: an enabled injector with all rates zero, plus
	// recovery armed, must reproduce the plain network's digest bit for
	// bit — the machinery may exist but must not perturb fault-free runs.
	for _, s := range b.Schemes {
		c := Check{Name: fmt.Sprintf("rate-0 inertness %s", s), Pass: true}
		plainCfg := core.DefaultConfig(s)
		plainCfg.Seed = b.Seed
		plain, err := runChaosTape(plainCfg, b.Window, tape, b.DrainLimit)
		if err != nil {
			return nil, err
		}
		armedCfg := plainCfg
		armedCfg.Fault = fault.Config{Enabled: true, Warmup: b.Window.Warmup}
		armedCfg.Recovery.Enabled = true
		armed, err := runChaosTape(armedCfg, b.Window, tape, b.DrainLimit)
		if err != nil {
			return nil, err
		}
		if plain.res.Digest != armed.res.Digest {
			c.Pass = false
			c.Detail = fmt.Sprintf("armed-but-silent digest %016x != plain digest %016x",
				armed.res.Digest, plain.res.Digest)
		}
		rep.Cross = append(rep.Cross, c)
	}

	// Recovery-off stranding: data faults with no timeouts must strand the
	// senders' retained copies — Drain must report the named error, and the
	// conservation identities must still hold over the wreckage.
	{
		c := Check{Name: "recovery-off data loss strands DHS", Pass: true}
		cfg := b.chaosConfig(core.DHS, fault.DataLoss, b.Rates[len(b.Rates)-1])
		cfg.Recovery.Enabled = false
		r, err := runChaosTape(cfg, b.Window, tape, b.DrainLimit)
		if err != nil {
			return nil, err
		}
		switch {
		case r.acct.FaultsInjected == 0:
			c.Pass = false
			c.Detail = "no faults fired; the leg proves nothing"
		case !errors.Is(r.drainErr, core.ErrDrainStalled):
			c.Pass = false
			c.Detail = fmt.Sprintf("expected ErrDrainStalled, got %v", r.drainErr)
		case r.auditErr != nil:
			c.Pass = false
			c.Detail = fmt.Sprintf("stranded network fails audit: %v", r.auditErr)
		}
		rep.Cross = append(rep.Cross, c)
	}

	// Fire-and-forget permanent loss: a scheme with no sender retention
	// cannot recover destroyed data; conservation must hold through the
	// Lost term and the drain must still reach quiescence (nothing is
	// owed for a packet nobody remembers).
	{
		c := Check{Name: "fire-and-forget data loss is permanent (DHS-cir)", Pass: true}
		cfg := b.chaosConfig(core.DHSCirculation, fault.DataLoss, b.Rates[len(b.Rates)-1])
		r, err := runChaosTape(cfg, b.Window, tape, b.DrainLimit)
		if err != nil {
			return nil, err
		}
		switch {
		case r.acct.FaultsInjected == 0:
			c.Pass = false
			c.Detail = "no faults fired; the leg proves nothing"
		case r.acct.Lost == 0:
			c.Pass = false
			c.Detail = "data faults fired but nothing was recorded lost"
		case r.drainErr != nil:
			c.Pass = false
			c.Detail = fmt.Sprintf("drain failed: %v", r.drainErr)
		case r.auditErr != nil:
			c.Pass = false
			c.Detail = fmt.Sprintf("audit failed: %v", r.auditErr)
		}
		rep.Cross = append(rep.Cross, c)
	}

	return rep, nil
}

// chaosRun bundles one tape replay's observables.
type chaosRun struct {
	res      core.Result
	acct     core.Accounting
	drainErr error
	auditErr error
}

// runChaosTape replays the tape, audits mid-flight, drains, audits again.
func runChaosTape(cfg core.Config, w sim.Window, tape *traffic.Tape, drainLimit int64) (chaosRun, error) {
	net, err := core.NewNetwork(cfg, w)
	if err != nil {
		return chaosRun{}, err
	}
	res, err := tape.Run(net)
	if err != nil {
		return chaosRun{}, err
	}
	r := chaosRun{res: res}
	r.auditErr = AuditNetwork(net)
	_, r.drainErr = net.Drain(drainLimit)
	if err := AuditNetwork(net); err != nil && r.auditErr == nil {
		r.auditErr = err
	}
	r.acct = net.Accounting()
	return r, nil
}

// verifyChaosPoint runs one (scheme, class, rate) triple through the
// per-point checks.
func (b ChaosBattery) verifyChaosPoint(s core.Scheme, cl fault.Class, rate float64, tape *traffic.Tape) (ChaosPoint, error) {
	p := ChaosPoint{Scheme: s, Class: cl, Rate: rate}
	cfg := b.chaosConfig(s, cl, rate)

	r1, err := runChaosTape(cfg, b.Window, tape, b.DrainLimit)
	if err != nil {
		return p, err
	}
	r2, err := runChaosTape(cfg, b.Window, tape, b.DrainLimit)
	if err != nil {
		return p, err
	}
	p.Digest = r2.res.Digest
	p.FaultsInjected = r2.acct.FaultsInjected
	p.TimeoutRetransmits = r2.acct.TimeoutRetransmits
	p.TokensRegenerated = r2.acct.TokensRegenerated

	p.Deterministic = reflect.DeepEqual(r1.res, r2.res) && r1.acct.FaultsInjected == r2.acct.FaultsInjected
	if !p.Deterministic {
		p.Detail = fmt.Sprintf("repeat runs diverged: digest %016x vs %016x", r1.res.Digest, r2.res.Digest)
	}

	p.Drained = r2.drainErr == nil
	if !p.Drained && p.Detail == "" {
		p.Detail = fmt.Sprintf("drain: %v", r2.drainErr)
	}

	a := r2.acct
	p.Recovered = a.Lost == 0 && a.Delivered+a.QueueRejected == a.Injected
	if !p.Recovered && p.Detail == "" {
		p.Detail = fmt.Sprintf("permanent loss: injected %d, delivered %d, rejected %d, lost %d",
			a.Injected, a.Delivered, a.QueueRejected, a.Lost)
	}

	if r2.auditErr != nil {
		p.Conservation = r2.auditErr.Error()
		if p.Detail == "" {
			p.Detail = p.Conservation
		}
	}
	return p, nil
}
