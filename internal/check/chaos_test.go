package check_test

import (
	"testing"

	"photon/internal/check"
	"photon/internal/core"
	"photon/internal/fault"
	"photon/internal/sim"
)

// TestChaosReduced: an end-to-end chaos battery over a scheme pair must
// come back green with sane reporting. (cmd/verify -chaos runs the full
// quick chaos battery; this keeps the test suite fast.)
func TestChaosReduced(t *testing.T) {
	b := check.QuickChaos(1)
	b.Schemes = []core.Scheme{core.TokenSlot, core.DHS}
	b.Rates = []float64{0.01, 0.05}
	b.Window = sim.Window{Warmup: 200, Measure: 600, Drain: 600}
	rep, err := check.RunChaos(b)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("chaos battery failed:\n%v", rep.Failures())
	}
	// TokenSlot gets token+stall classes, DHS all four: (2+4) * 2 rates.
	if len(rep.Points) != 12 {
		t.Fatalf("expected 12 point reports, got %d", len(rep.Points))
	}
	if rep.Table().Len() != len(rep.Points) {
		t.Fatal("table row count mismatch")
	}
	// Cross legs: one inertness check per scheme plus the two fixed legs.
	if len(rep.Cross) != len(b.Schemes)+2 {
		t.Fatalf("expected %d cross checks, got %d", len(b.Schemes)+2, len(rep.Cross))
	}
	fired := false
	for _, p := range rep.Points {
		if p.Digest == 0 {
			t.Fatalf("degenerate point report: %+v", p)
		}
		if p.FaultsInjected > 0 {
			fired = true
		}
	}
	if !fired {
		t.Fatal("no chaos point ever injected a fault; the battery proves nothing")
	}
}

// TestChaosDetectsPermanentLoss: a point whose scheme cannot recover the
// injected class must come back red — the battery's Recovered check is
// live, not vacuously true.
func TestChaosDetectsPermanentLoss(t *testing.T) {
	b := check.QuickChaos(1)
	b.Schemes = []core.Scheme{core.DHSCirculation}
	b.Classes = []fault.Class{fault.DataLoss}
	b.Rates = []float64{0.05}
	b.Window = sim.Window{Warmup: 200, Measure: 600, Drain: 600}
	// Force the unrecoverable pairing into the grid by bypassing the
	// applicability filter: run the point directly.
	rep, err := check.RunChaos(b)
	if err != nil {
		t.Fatal(err)
	}
	// The applicability filter keeps fire-and-forget data loss out of the
	// grid (it lives in a cross leg instead), so the grid is empty here...
	if len(rep.Points) != 0 {
		t.Fatalf("expected the unrecoverable pairing to be filtered, got %d points", len(rep.Points))
	}
	// ...and the permanent-loss cross leg must still have verified that
	// data faults on DHS-circulation really do lose packets.
	found := false
	for _, c := range rep.Cross {
		if c.Name == "fire-and-forget data loss is permanent (DHS-cir)" {
			found = true
			if !c.Pass {
				t.Fatalf("permanent-loss leg failed: %s", c.Detail)
			}
		}
	}
	if !found {
		t.Fatal("permanent-loss cross leg missing from the report")
	}
}
