package check

import (
	"fmt"
	"runtime"

	"photon/internal/core"
	"photon/internal/exp"
	"photon/internal/farm"
	"photon/internal/ptrace"
	"photon/internal/stats"
	"photon/internal/twin"
)

// TwinBattery configures the twin-vs-simulator differential: for every
// scheme, the analytical twin's per-phase mean predictions are compared
// against the exact span attribution (exp.ExactBreakdownPoint) at a set
// of utilization anchors inside the twin's validity envelope. Any engine
// change that shifts real phase latencies away from the closed forms —
// or any twin edit that drifts from the engine — fails loudly here.
type TwinBattery struct {
	// Schemes under test (default: all registered schemes).
	Schemes []core.Scheme
	// Utilizations are the rate anchors as fractions of each scheme's own
	// twin-estimated saturation rate (default 0.2, 0.35, 0.5 — the
	// documented validity envelope is utilization <= 0.5).
	Utilizations []float64
	// Opts drives the exact traced runs (window, seed).
	Opts exp.Options
	// RelTol is the per-phase relative error band (default 0.10).
	RelTol float64
	// AbsTol is the per-phase absolute floor in cycles (default 0.75):
	// sub-cycle phases (slot token waits, near-empty queues) sit below the
	// simulator's own discretization granularity, where a relative band is
	// meaningless.
	AbsTol float64
	// Parallel bounds concurrent traced runs (0 = GOMAXPROCS). Each
	// traced point holds its full event stream, so memory scales with
	// workers x window.
	Parallel int
}

// QuickTwinBattery is the CI-sized differential: all schemes at the
// three envelope anchors over the quick window.
func QuickTwinBattery(seed uint64) TwinBattery {
	opts := exp.QuickOptions()
	opts.Seed = seed
	return TwinBattery{
		Utilizations: []float64{0.2, 0.35, 0.5},
		Opts:         opts,
		RelTol:       0.10,
		AbsTol:       0.75,
	}
}

// FullTwinBattery runs the same anchors over the standard window —
// tighter sampling noise, several times the wall clock.
func FullTwinBattery(seed uint64) TwinBattery {
	b := QuickTwinBattery(seed)
	b.Opts = exp.DefaultOptions()
	b.Opts.Seed = seed
	return b
}

// TwinPhase is one phase's prediction-vs-measurement verdict.
type TwinPhase struct {
	Phase string
	Pred  float64
	Obs   float64
	// Err is the signed absolute error in cycles.
	Err  float64
	Pass bool
}

// TwinPoint is the differential verdict for one (scheme, utilization).
type TwinPoint struct {
	Scheme      core.Scheme
	Family      string
	Utilization float64
	Rate        float64

	Pred twin.Prediction
	Obs  exp.ExactBreakdownRow

	// Phases holds every phase verdict (ptrace order), Total the mean
	// end-to-end comparison under the same band.
	Phases []TwinPhase
	Total  TwinPhase

	// Detail carries the first failure description.
	Detail string
}

// Pass reports whether every phase and the total are inside the band.
func (p TwinPoint) Pass() bool {
	if !p.Total.Pass {
		return false
	}
	for _, ph := range p.Phases {
		if !ph.Pass {
			return false
		}
	}
	return p.Detail == ""
}

// worst returns the phase with the largest band-normalized error.
func (p TwinPoint) worst() TwinPhase {
	w := p.Total
	wScore := 0.0
	score := func(ph TwinPhase, rel, abs float64) float64 {
		band := rel * ph.Obs
		if band < abs {
			band = abs
		}
		if band == 0 {
			return 0
		}
		e := ph.Err
		if e < 0 {
			e = -e
		}
		return e / band
	}
	for _, ph := range append(append([]TwinPhase{}, p.Phases...), p.Total) {
		if s := score(ph, 0.10, 0.75); s >= wScore {
			w, wScore = ph, s
		}
	}
	return w
}

// TwinReport is the outcome of a twin differential run.
type TwinReport struct {
	Points []TwinPoint
	Cross  []Check
}

// Pass reports whether the whole differential is green.
func (r *TwinReport) Pass() bool {
	for _, p := range r.Points {
		if !p.Pass() {
			return false
		}
	}
	for _, c := range r.Cross {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Failures returns every failing point and cross check as printable lines.
func (r *TwinReport) Failures() []string {
	var out []string
	for _, p := range r.Points {
		if !p.Pass() {
			detail := p.Detail
			if detail == "" {
				w := p.worst()
				detail = fmt.Sprintf("%s pred %.2f vs exact %.2f (err %+.2f, band max(10%%, 0.75))",
					w.Phase, w.Pred, w.Obs, w.Err)
			}
			out = append(out, fmt.Sprintf("%s U=%.2f (rate %.4f): %s", p.Scheme, p.Utilization, p.Rate, detail))
		}
	}
	for _, c := range r.Cross {
		if !c.Pass {
			out = append(out, fmt.Sprintf("%s: %s", c.Name, c.Detail))
		}
	}
	return out
}

// Table renders the per-point verdicts for cmd/verify: predicted and
// measured means, the worst phase by band-normalized error, and the
// verdict.
func (r *TwinReport) Table() *stats.Table {
	t := stats.NewTable("analytical twin vs exact spans",
		"scheme", "family", "util", "rate", "twin-mean", "exact-mean", "worst-phase", "pred", "obs", "verdict")
	for _, p := range r.Points {
		w := p.worst()
		verdict := "ok"
		if !p.Pass() {
			verdict = "FAIL"
		}
		t.AddRow(p.Scheme.String(), p.Family,
			fmt.Sprintf("%.2f", p.Utilization),
			fmt.Sprintf("%.4f", p.Rate),
			fmt.Sprintf("%.2f", p.Pred.Mean),
			fmt.Sprintf("%.2f", p.Obs.Total),
			w.Phase,
			fmt.Sprintf("%.2f", w.Pred),
			fmt.Sprintf("%.2f", w.Obs),
			verdict)
	}
	return t
}

var phaseNames = [ptrace.NumPhases]string{
	ptrace.PhasePipeline:      "pipeline",
	ptrace.PhaseQueue:         "queue",
	ptrace.PhaseTokenWait:     "token-wait",
	ptrace.PhaseFlight:        "flight",
	ptrace.PhaseHandshakeWait: "hs-wait",
	ptrace.PhaseRetxWait:      "retx-wait",
	ptrace.PhaseCirculation:   "circulation",
	ptrace.PhaseEject:         "eject",
}

// RunTwin executes the twin differential battery: per-(scheme,
// utilization) phase comparisons plus model-side cross checks (the
// divergence flag must trip before the twin's own saturation estimate,
// and no battery anchor may sit in the self-reported divergence regime).
func RunTwin(b TwinBattery) (*TwinReport, error) {
	if len(b.Schemes) == 0 {
		b.Schemes = core.Schemes()
	}
	def := QuickTwinBattery(b.Opts.Seed)
	if len(b.Utilizations) == 0 {
		b.Utilizations = def.Utilizations
	}
	if b.Opts.Window.Total() == 0 {
		b.Opts = def.Opts
	}
	if b.RelTol == 0 {
		b.RelTol = def.RelTol
	}
	if b.AbsTol == 0 {
		b.AbsTol = def.AbsTol
	}
	workers := b.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	models := make(map[core.Scheme]*twin.Model, len(b.Schemes))
	for _, s := range b.Schemes {
		m, err := twin.NewDefault(s)
		if err != nil {
			return nil, fmt.Errorf("check: twin: %w", err)
		}
		models[s] = m
	}

	type job struct {
		scheme core.Scheme
		util   float64
	}
	var jobs []job
	for _, s := range b.Schemes {
		for _, u := range b.Utilizations {
			jobs = append(jobs, job{s, u})
		}
	}
	points := make([]TwinPoint, len(jobs))
	errs := farm.Do(len(jobs), workers, func(i int) error {
		j := jobs[i]
		m := models[j.scheme]
		rate := j.util * m.SaturationRate()
		pred := m.Predict(rate)
		obs, err := exp.ExactBreakdownPoint(j.scheme, rate, b.Opts)
		if err != nil {
			return err
		}
		p := TwinPoint{
			Scheme:      j.scheme,
			Family:      m.Family(),
			Utilization: j.util,
			Rate:        rate,
			Pred:        pred,
			Obs:         obs,
		}
		if pred.Diverged {
			p.Detail = fmt.Sprintf("twin self-reports divergence at utilization %.2f — inside the battery envelope", j.util)
		}
		band := func(obs float64) float64 {
			if rel := b.RelTol * obs; rel > b.AbsTol {
				return rel
			}
			return b.AbsTol
		}
		for k := 0; k < ptrace.NumPhases; k++ {
			ph := TwinPhase{
				Phase: phaseNames[k],
				Pred:  pred.Phases[k],
				Obs:   obs.Phases[k],
				Err:   pred.Phases[k] - obs.Phases[k],
			}
			ph.Pass = ph.Err <= band(ph.Obs) && -ph.Err <= band(ph.Obs)
			p.Phases = append(p.Phases, ph)
		}
		p.Total = TwinPhase{Phase: "total", Pred: pred.Mean, Obs: obs.Total, Err: pred.Mean - obs.Total}
		p.Total.Pass = p.Total.Err <= band(p.Total.Obs) && -p.Total.Err <= band(p.Total.Obs)
		points[i] = p
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("check: twin %s U=%.2f: %w", jobs[i].scheme, jobs[i].util, err)
		}
	}
	rep := &TwinReport{Points: points}

	// Model-side cross checks, no simulation needed: the divergence flag
	// must trip strictly inside the twin's own saturation estimate (the
	// planner's trigger for falling back to simulation), and the capacity
	// inverter must honor its budget on the model's own terms.
	for _, s := range b.Schemes {
		m := models[s]
		c := Check{Name: fmt.Sprintf("twin %s divergence before saturation", s), Pass: true}
		if p := m.Predict(m.SaturationRate() * 0.999); !p.Diverged {
			c.Pass = false
			c.Detail = fmt.Sprintf("Predict at 0.999x saturation (rate %.4f) did not set Diverged", p.Rate)
		}
		rep.Cross = append(rep.Cross, c)

		cap := m.CapacityFor(m.ZeroLoadLatency()*1.5, false)
		cc := Check{Name: fmt.Sprintf("twin %s capacity inversion honors budget", s), Pass: true}
		if cap.BudgetBound && cap.Prediction.Mean > m.ZeroLoadLatency()*1.5+1e-6 {
			cc.Pass = false
			cc.Detail = fmt.Sprintf("CapacityFor returned rate %.4f with mean %.2f above the %.2f budget",
				cap.Rate, cap.Prediction.Mean, m.ZeroLoadLatency()*1.5)
		}
		rep.Cross = append(rep.Cross, cc)
	}
	return rep, nil
}
