package check

import (
	"fmt"
	"reflect"
	"runtime"

	"photon/internal/core"
	"photon/internal/exp"
	"photon/internal/farm"
	"photon/internal/sim"
	"photon/internal/stats"
	"photon/internal/traffic"
)

// Battery configures one differential verification run. Every (pattern,
// rate) pair gets a single pre-recorded traffic tape that is replayed
// through every scheme, so cross-scheme comparisons are over byte-identical
// offered traffic.
type Battery struct {
	// Schemes under test (default: all of them).
	Schemes []core.Scheme
	// Patterns under test (default: the paper's UR/BC/TOR).
	Patterns []traffic.Pattern
	// Loads returns the load grid for a pattern name.
	Loads func(pattern string) []float64
	// Window is the per-run simulation window.
	Window sim.Window
	// Seed drives tape generation and network stochastics.
	Seed uint64
	// DrainLimit bounds the extra post-window drain before the final
	// audit. Past saturation the backlog never reaches zero; the audit's
	// identities hold regardless.
	DrainLimit int64
	// Parallel bounds concurrent point verifications (0 = GOMAXPROCS).
	Parallel int
}

// QuickBattery is the CI-sized battery: all schemes, the paper's three
// patterns, one load well below saturation, one near it, and one past it,
// over a short window. It finishes in a few seconds.
func QuickBattery(seed uint64) Battery {
	return Battery{
		Schemes:  core.Schemes(),
		Patterns: traffic.PaperPatterns(),
		Loads: func(pattern string) []float64 {
			switch pattern {
			case "TOR":
				return []float64{0.02, 0.08, 0.30}
			default: // UR, BC saturate in the 0.13..0.25 region
				return []float64{0.02, 0.13, 0.30}
			}
		},
		Window:     sim.Window{Warmup: 300, Measure: 1000, Drain: 1000},
		Seed:       seed,
		DrainLimit: 20_000,
	}
}

// FullBattery covers the paper's quick load grids over the standard short
// window — the thorough pre-merge variant (tens of seconds).
func FullBattery(seed uint64) Battery {
	return Battery{
		Schemes:  core.Schemes(),
		Patterns: traffic.PaperPatterns(),
		Loads: func(pattern string) []float64 {
			loads := exp.PaperLoads(pattern, true)
			// Add a firmly past-saturation point; the quick grids stop
			// near the knee.
			return append(append([]float64{}, loads...), 0.35)
		},
		Window:     sim.ShortWindow(),
		Seed:       seed,
		DrainLimit: 60_000,
	}
}

func (b Battery) workers() int {
	if b.Parallel > 0 {
		return b.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// PointReport is the verification verdict for one (scheme, pattern, rate).
type PointReport struct {
	Scheme  core.Scheme
	Pattern string
	Rate    float64

	// Digest is the run fingerprint (identical across the repeat runs when
	// Deterministic).
	Digest uint64
	// Events is the protocol event count folded into the digest.
	Events uint64

	Injected  int64
	Delivered int64
	// Backlog remaining after the bounded post-run drain (nonzero past
	// saturation).
	Backlog int

	// Deterministic: two replays of the tape produced identical
	// core.Result structs (digest included).
	Deterministic bool
	// TapeFaithful: a live-injector run matched the tape replay's digest.
	TapeFaithful bool
	// Conservation holds the auditor's verdict ("" = pass).
	Conservation string

	// Detail carries the first failure description for the report table.
	Detail string
}

// Pass reports whether every per-point check succeeded.
func (p PointReport) Pass() bool {
	return p.Deterministic && p.TapeFaithful && p.Conservation == ""
}

// Check is one cross-cutting verification outcome (differential pairs,
// serial-vs-parallel sweeps).
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is the outcome of a full battery run.
type Report struct {
	Points []PointReport
	Cross  []Check
}

// Pass reports whether the whole battery is green.
func (r *Report) Pass() bool {
	for _, p := range r.Points {
		if !p.Pass() {
			return false
		}
	}
	for _, c := range r.Cross {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Failures returns every failing point and cross check, flattened into
// printable lines.
func (r *Report) Failures() []string {
	var out []string
	for _, p := range r.Points {
		if !p.Pass() {
			out = append(out, fmt.Sprintf("%s %s %.3f: %s", p.Scheme, p.Pattern, p.Rate, p.Detail))
		}
	}
	for _, c := range r.Cross {
		if !c.Pass {
			out = append(out, fmt.Sprintf("%s: %s", c.Name, c.Detail))
		}
	}
	return out
}

// Table renders the per-point verdicts for cmd/verify.
func (r *Report) Table() *stats.Table {
	t := stats.NewTable("determinism + conservation battery",
		"scheme", "pattern", "rate", "digest", "events", "injected", "delivered", "backlog", "determ", "tape", "conserve")
	mark := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAIL"
	}
	for _, p := range r.Points {
		t.AddRow(p.Scheme.String(), p.Pattern, p.Rate,
			fmt.Sprintf("%016x", p.Digest), p.Events, p.Injected, p.Delivered, p.Backlog,
			mark(p.Deterministic), mark(p.TapeFaithful), mark(p.Conservation == ""))
	}
	return t
}

// Run executes the battery: per-point determinism + tape-faithfulness +
// conservation, then the cross-scheme differential comparison and the
// serial-vs-parallel sweep equivalence check.
func Run(b Battery) (*Report, error) {
	if len(b.Schemes) == 0 {
		b.Schemes = core.Schemes()
	}
	if len(b.Patterns) == 0 {
		b.Patterns = traffic.PaperPatterns()
	}
	if b.Loads == nil {
		b.Loads = QuickBattery(b.Seed).Loads
	}
	if b.Window.Total() == 0 {
		b.Window = QuickBattery(b.Seed).Window
	}

	// Pre-record one tape per (pattern, rate); replays share it read-only.
	type tapeKey struct {
		pattern string
		rate    float64
	}
	type job struct {
		scheme  core.Scheme
		pattern traffic.Pattern
		rate    float64
		tape    *traffic.Tape
	}
	cfg0 := core.DefaultConfig(b.Schemes[0])
	tapes := map[tapeKey]*traffic.Tape{}
	var jobs []job
	for _, pat := range b.Patterns {
		for _, rate := range b.Loads(pat.Name()) {
			tape, err := traffic.RecordTape(pat, rate, cfg0.Nodes, cfg0.CoresPerNode,
				sim.DeriveSeed(b.Seed, uint64(len(tapes))), b.Window.Warmup+b.Window.Measure)
			if err != nil {
				return nil, fmt.Errorf("check: recording %s tape at %.3f: %w", pat.Name(), rate, err)
			}
			tapes[tapeKey{pat.Name(), rate}] = tape
			for _, s := range b.Schemes {
				jobs = append(jobs, job{scheme: s, pattern: pat, rate: rate, tape: tape})
			}
		}
	}

	// farm.Do supervises the fan-out: bounded workers, and a panicking
	// verification job reports itself in its error slot instead of
	// crashing the battery.
	reports := make([]PointReport, len(jobs))
	errs := farm.Do(len(jobs), b.workers(), func(i int) error {
		var err error
		j := jobs[i]
		reports[i], err = verifyPoint(b, j.scheme, j.pattern, j.rate, j.tape)
		return err
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("check: %s %s %.3f: %w",
				jobs[i].scheme, jobs[i].pattern.Name(), jobs[i].rate, err)
		}
	}
	rep := &Report{Points: reports}

	// Differential comparison: over one shared tape, every scheme must see
	// the same offered traffic, and fully drained schemes must deliver
	// exactly the same packet count.
	byTape := map[tapeKey][]PointReport{}
	for _, p := range reports {
		k := tapeKey{p.Pattern, p.Rate}
		byTape[k] = append(byTape[k], p)
	}
	for _, pat := range b.Patterns {
		for _, rate := range b.Loads(pat.Name()) {
			k := tapeKey{pat.Name(), rate}
			group := byTape[k]
			name := fmt.Sprintf("differential %s @ %.3f", k.pattern, k.rate)
			c := Check{Name: name, Pass: true}
			wantInjected := int64(len(tapes[k].Entries))
			for _, p := range group {
				if p.Injected != wantInjected {
					c.Pass = false
					c.Detail = fmt.Sprintf("%s injected %d, tape holds %d entries", p.Scheme, p.Injected, wantInjected)
				}
			}
			for i := 1; i < len(group); i++ {
				a, bb := group[0], group[i]
				if a.Backlog == 0 && bb.Backlog == 0 && a.Delivered != bb.Delivered {
					c.Pass = false
					c.Detail = fmt.Sprintf("%s delivered %d but %s delivered %d on the same tape",
						a.Scheme, a.Delivered, bb.Scheme, bb.Delivered)
				}
			}
			rep.Cross = append(rep.Cross, c)
		}
	}

	// Serial-vs-parallel sweep equivalence: exp.RunPoints must be a pure
	// function of its inputs regardless of worker count. One
	// representative load per pattern (the grid's median) keeps the
	// mandatory serial leg affordable — whether worker scheduling can
	// perturb a result does not depend on the offered load.
	var points []exp.Point
	for _, pat := range b.Patterns {
		loads := b.Loads(pat.Name())
		rate := loads[len(loads)/2]
		for _, s := range b.Schemes {
			points = append(points, exp.Point{Scheme: s, Pattern: pat, Rate: rate})
		}
	}
	opts := exp.Options{Window: b.Window, Seed: b.Seed}
	serialOpts, parallelOpts := opts, opts
	serialOpts.Parallel = 1
	parallelOpts.Parallel = 8
	serial, err := exp.RunPoints(points, serialOpts)
	if err != nil {
		return nil, err
	}
	parallel, err := exp.RunPoints(points, parallelOpts)
	if err != nil {
		return nil, err
	}
	pc := Check{Name: "serial vs parallel RunPoints", Pass: true}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			pc.Pass = false
			pc.Detail = fmt.Sprintf("point %d (%s %s %.3f): serial digest %016x != parallel digest %016x",
				i, points[i].Scheme, points[i].Pattern.Name(), points[i].Rate,
				serial[i].Digest, parallel[i].Digest)
			break
		}
	}
	rep.Cross = append(rep.Cross, pc)

	// Farm-vs-serial equivalence: the supervised sweep farm (retries,
	// per-point containment, out-of-order completion) must fold the same
	// representative points into the exact grid digest a serial run
	// produces — the property that makes crash/resume regeneration
	// trustworthy.
	fc := Check{Name: "farm vs serial RunPoints (grid digest)", Pass: true}
	fg := farm.Grid{Name: "battery-cross", Points: points, Opts: opts}
	fr, err := farm.Run(fg, farm.Config{Workers: 8})
	switch {
	case err != nil:
		fc.Pass = false
		fc.Detail = fmt.Sprintf("farm run failed: %v", err)
	case !fr.Complete():
		fc.Pass = false
		fc.Detail = fmt.Sprintf("farm quarantined %d of %d points", len(fr.Quarantined()), len(points))
	default:
		ds := make([]uint64, len(serial))
		for i, r := range serial {
			ds[i] = r.Digest
		}
		if want := farm.MergeDigests(ds); fr.GridDigest() != want {
			fc.Pass = false
			fc.Detail = fmt.Sprintf("farm grid digest %016x != serial %016x", fr.GridDigest(), want)
		}
	}
	rep.Cross = append(rep.Cross, fc)
	return rep, nil
}

// verifyPoint runs one (scheme, tape) pair through the per-point checks.
func verifyPoint(b Battery, s core.Scheme, pat traffic.Pattern, rate float64, tape *traffic.Tape) (PointReport, error) {
	p := PointReport{Scheme: s, Pattern: pat.Name(), Rate: rate}

	runTape := func() (core.Result, *core.Network, error) {
		cfg := core.DefaultConfig(s)
		cfg.Seed = b.Seed
		net, err := core.NewNetwork(cfg, b.Window)
		if err != nil {
			return core.Result{}, nil, err
		}
		res, err := tape.Run(net)
		return res, net, err
	}

	res1, _, err := runTape()
	if err != nil {
		return p, err
	}
	res2, net, err := runTape()
	if err != nil {
		return p, err
	}
	p.Digest = res2.Digest
	p.Events = res2.DigestEvents
	p.Deterministic = reflect.DeepEqual(res1, res2)
	if !p.Deterministic {
		p.Detail = fmt.Sprintf("repeat runs diverged: digest %016x vs %016x", res1.Digest, res2.Digest)
	}

	// Live-injector equivalence: the tape must be a faithful recording.
	cfg := core.DefaultConfig(s)
	cfg.Seed = b.Seed
	liveNet, err := core.NewNetwork(cfg, b.Window)
	if err != nil {
		return p, err
	}
	inj, err := traffic.NewInjector(pat, rate, cfg.Nodes, cfg.CoresPerNode, tape.Seed)
	if err != nil {
		return p, err
	}
	liveRes := inj.Run(liveNet)
	p.TapeFaithful = liveRes.Digest == res2.Digest
	if !p.TapeFaithful && p.Detail == "" {
		p.Detail = fmt.Sprintf("live injector digest %016x != tape digest %016x", liveRes.Digest, res2.Digest)
	}

	// Conservation: audit after the window, then again after a bounded
	// extra drain (sub-saturation runs reach zero backlog; past-saturation
	// runs stay backlogged and the identities must hold anyway).
	if err := AuditNetwork(net); err != nil {
		p.Conservation = err.Error()
	}
	net.Drain(b.DrainLimit)
	if err := AuditNetwork(net); err != nil && p.Conservation == "" {
		p.Conservation = err.Error()
	}
	if p.Conservation != "" && p.Detail == "" {
		p.Detail = p.Conservation
	}

	acct := net.Accounting()
	p.Injected = acct.Injected
	p.Delivered = acct.Delivered
	p.Backlog = acct.Backlog
	return p, nil
}
