package check

import (
	"strings"
	"testing"
)

// TestBenchGate pins the regression-gate arithmetic on synthetic reports:
// within-band points pass, beyond-band points fail with the scheme named,
// schemes missing from the baseline fail, and schemes missing from the
// fresh report are ignored. No wall clock involved — the gate's behaviour
// must be test-stable even on a loaded machine.
func TestBenchGate(t *testing.T) {
	base := &BenchReport{Points: []BenchPoint{
		{Scheme: "dhs", NsPerCycle: 1000},
		{Scheme: "ghs", NsPerCycle: 2000},
		{Scheme: "retired-scheme", NsPerCycle: 99},
	}}

	t.Run("within band", func(t *testing.T) {
		rep := &BenchReport{Points: []BenchPoint{
			{Scheme: "dhs", NsPerCycle: 1249}, // +24.9%
			{Scheme: "ghs", NsPerCycle: 1500}, // improvement
		}}
		if v := rep.Gate(base, 0.25); len(v) != 0 {
			t.Errorf("expected clean gate, got %v", v)
		}
	})

	t.Run("regression beyond band", func(t *testing.T) {
		rep := &BenchReport{Points: []BenchPoint{
			{Scheme: "dhs", NsPerCycle: 1251}, // +25.1%
			{Scheme: "ghs", NsPerCycle: 1999},
		}}
		v := rep.Gate(base, 0.25)
		if len(v) != 1 || !strings.HasPrefix(v[0], "dhs:") {
			t.Errorf("expected exactly the dhs violation, got %v", v)
		}
	})

	t.Run("scheme missing from baseline", func(t *testing.T) {
		rep := &BenchReport{Points: []BenchPoint{
			{Scheme: "brand-new-scheme", NsPerCycle: 1},
		}}
		v := rep.Gate(base, 0.25)
		if len(v) != 1 || !strings.Contains(v[0], "brand-new-scheme") {
			t.Errorf("expected a missing-baseline violation, got %v", v)
		}
	})

	t.Run("zero tolerance", func(t *testing.T) {
		rep := &BenchReport{Points: []BenchPoint{
			{Scheme: "dhs", NsPerCycle: 1000.5},
		}}
		if v := rep.Gate(base, 0); len(v) != 1 {
			t.Errorf("zero tolerance must flag any slowdown, got %v", v)
		}
	})
}
