package check

import (
	"strings"
	"testing"

	"photon/internal/core"
	"photon/internal/exp"
)

// TestRunTwinQuick runs the full CI twin differential: every registered
// scheme at the three envelope anchors must predict each phase within
// max(10%, 0.75 cycles) of the exact span attribution. This is the
// acceptance gate of the analytical twin — a calibration drift in
// internal/twin or a latency shift in the engine both land here.
func TestRunTwinQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("twin differential skipped in -short mode")
	}
	rep, err := RunTwin(QuickTwinBattery(1))
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(core.Schemes()) * 3
	if len(rep.Points) != wantPoints {
		t.Fatalf("%d points, want %d", len(rep.Points), wantPoints)
	}
	if !rep.Pass() {
		for _, f := range rep.Failures() {
			t.Errorf("twin differential: %s", f)
		}
	}
	// Two model-side cross checks per scheme.
	if want := 2 * len(core.Schemes()); len(rep.Cross) != want {
		t.Errorf("%d cross checks, want %d", len(rep.Cross), want)
	}
}

// TestRunTwinTightBandFails proves the battery actually bites: with a
// near-zero tolerance band the same comparison must fail and the report
// must carry an attributable failure line.
func TestRunTwinTightBandFails(t *testing.T) {
	b := QuickTwinBattery(1)
	b.Schemes = []core.Scheme{core.TokenSlot}
	b.Utilizations = []float64{0.5}
	b.RelTol = 1e-9
	b.AbsTol = 1e-9
	rep, err := RunTwin(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatal("a 1e-9 tolerance band passed — the comparison is vacuous")
	}
	fails := rep.Failures()
	if len(fails) == 0 {
		t.Fatal("failing report produced no failure lines")
	}
	if !strings.Contains(fails[0], "token-slot") {
		t.Errorf("failure line %q does not name the scheme", fails[0])
	}
	// The rendered table must mark the point.
	var sb strings.Builder
	if err := rep.Table().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FAIL") {
		t.Errorf("table does not mark the failing point:\n%s", sb.String())
	}
}

// TestRunTwinDefaults: a zero-value battery fills in the quick defaults
// instead of running an empty comparison.
func TestRunTwinDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("twin differential skipped in -short mode")
	}
	b := TwinBattery{Schemes: []core.Scheme{core.DHSSetaside}, Utilizations: []float64{0.2}}
	rep, err := RunTwin(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("%d points, want 1", len(rep.Points))
	}
	p := rep.Points[0]
	if p.Rate <= 0 || len(p.Phases) == 0 {
		t.Fatalf("defaulted battery produced an empty point: %+v", p)
	}
	if !p.Pass() {
		t.Errorf("dhs-setaside at U=0.2 failed under defaults: %v", rep.Failures())
	}
}

// TestTwinSeedRobustness: the calibration must not be an artifact of the
// battery's default seed — the full differential still passes when the
// simulator's stochastics are re-seeded.
func TestTwinSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("twin differential skipped in -short mode")
	}
	rep, err := RunTwin(QuickTwinBattery(7))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		for _, f := range rep.Failures() {
			t.Errorf("twin differential (seed 7): %s", f)
		}
	}
}

// TestTwinMatchesExactBreakdownColumn: the ExactBreakdown table's twin
// column and the battery use the same model — spot-check that the
// prediction at a table load agrees with a fresh twin evaluation.
func TestTwinMatchesExactBreakdownColumn(t *testing.T) {
	row, err := exp.ExactBreakdownPoint(core.TokenSlot, 0.05, exp.QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if row.Total <= 0 {
		t.Fatalf("exact breakdown produced no latency at 0.05: %+v", row)
	}
}
