package check

import (
	"fmt"
	"testing"

	"photon/internal/core"
	"photon/internal/fault"
	"photon/internal/ptrace"
	"photon/internal/sim"
	"photon/internal/traffic"
)

var spanWindow = sim.Window{Warmup: 300, Measure: 1000, Drain: 1000}

// runTracedTape replays a tape with a tap armed, drains, and returns the
// result, the assembled trace, and the final accounting snapshot.
func runTracedTape(t *testing.T, s core.Scheme, tape *traffic.Tape, drain int64) (core.Result, *ptrace.TraceResult, core.Accounting) {
	t.Helper()
	cfg := core.DefaultConfig(s)
	cfg.Seed = 1
	net, err := core.NewNetwork(cfg, spanWindow)
	if err != nil {
		t.Fatal(err)
	}
	tap := ptrace.Collect(net)
	res, err := tape.Run(net)
	if err != nil {
		t.Fatal(err)
	}
	net.Drain(drain)
	tr, err := tap.Assemble()
	if err != nil {
		t.Fatalf("%s: assembling trace: %v", s, err)
	}
	return res, tr, net.Accounting()
}

// TestSpanInvariantBattery runs every registered scheme over a small load
// grid spanning sub-saturation, near-saturation, and past-saturation
// traffic, and checks the span algebra end to end: every assembled span
// is gap-free and non-overlapping, phase sums equal end-to-end latency
// for 100% of delivered packets, and the span aggregates reconcile
// exactly with the conservation ledger (AuditSpans).
func TestSpanInvariantBattery(t *testing.T) {
	for tapeIdx, load := range []float64{0.02, 0.13, 0.30} {
		cfg0 := core.DefaultConfig(core.TokenChannel)
		tape, err := traffic.RecordTape(traffic.UniformRandom{}, load, cfg0.Nodes, cfg0.CoresPerNode,
			sim.DeriveSeed(1, uint64(tapeIdx)), spanWindow.Warmup+spanWindow.Measure)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range core.Schemes() {
			t.Run(fmt.Sprintf("%s@%.2f", s, load), func(t *testing.T) {
				res, tr, acct := runTracedTape(t, s, tape, 20_000)
				if err := AuditSpans(tr, acct); err != nil {
					t.Fatal(err)
				}
				if err := Audit(acct); err != nil {
					t.Fatal(err)
				}
				// The trace must cover the run: at least every measured
				// delivery the windowed result counted (the bounded drain
				// delivers more after Finish), all delivered at the ledger
				// level (AuditSpans checked the exact total).
				if res.Delivered == 0 {
					t.Fatal("no measured deliveries at this point")
				}
				var measured int64
				for _, sp := range tr.Spans {
					if sp.Measured && sp.Delivered >= 0 {
						measured++
					}
				}
				if measured < res.Delivered {
					t.Fatalf("%d measured delivered spans, result counted %d", measured, res.Delivered)
				}
			})
		}
	}
}

// TestSpanSchemeShape: the phase mix must reflect each scheme's
// hardware — handshake-wait cycles only where a handshake waveguide
// exists, circulation cycles only on the circulating scheme, setaside
// residency only under the setaside send policy.
func TestSpanSchemeShape(t *testing.T) {
	cfg0 := core.DefaultConfig(core.TokenChannel)
	tape, err := traffic.RecordTape(traffic.UniformRandom{}, 0.13, cfg0.Nodes, cfg0.CoresPerNode,
		sim.DeriveSeed(1, 1), spanWindow.Warmup+spanWindow.Measure)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range core.Schemes() {
		_, tr, _ := runTracedTape(t, s, tape, 20_000)
		attr := ptrace.Aggregate(tr, false)
		if !s.Handshake() && (attr.Phases[ptrace.PhaseHandshakeWait] != 0 || attr.Phases[ptrace.PhaseRetxWait] != 0) {
			t.Errorf("%s: handshake phases on a scheme without a handshake line: %v", s, attr.Phases)
		}
		if !s.Circulating() && attr.Phases[ptrace.PhaseCirculation] != 0 {
			t.Errorf("%s: circulation cycles %d on a non-circulating scheme", s, attr.Phases[ptrace.PhaseCirculation])
		}
		if s.Circulating() && attr.Drops != 0 {
			t.Errorf("%s: %d drops on the circulating scheme", s, attr.Drops)
		}
		if attr.Phases[ptrace.PhaseFlight] == 0 {
			t.Errorf("%s: no flight cycles at a contended point", s)
		}
	}
}

// TestArmedTapReproducesPinnedDigests pins the tentpole's digest-inertness
// acceptance criterion: a run with the event tap armed must reproduce the
// EXPERIMENTS.md quick-grid digests (UR @ 0.13 column, seed 1, windows
// 300/1000/1000) bit for bit. Tap-only events exist outside the digest by
// construction; a shift here means the tap leaked into protocol behaviour.
func TestArmedTapReproducesPinnedDigests(t *testing.T) {
	want := map[core.Scheme]string{
		core.TokenChannel:   "9fa40151ac8c907c",
		core.TokenSlot:      "4ebced9eeaf9a211",
		core.GHS:            "52e0408d1b0d60e3",
		core.GHSSetaside:    "3318d9bec3d24eef",
		core.DHS:            "bd11d19c4b7206f4",
		core.DHSSetaside:    "236b458c65ca1419",
		core.DHSCirculation: "73671dbfc58a4992",
	}
	cfg0 := core.DefaultConfig(core.TokenChannel)
	tape, err := traffic.RecordTape(traffic.UniformRandom{}, 0.13, cfg0.Nodes, cfg0.CoresPerNode,
		sim.DeriveSeed(1, 1), spanWindow.Warmup+spanWindow.Measure)
	if err != nil {
		t.Fatal(err)
	}
	for s, wantHex := range want {
		cfg := core.DefaultConfig(s)
		cfg.Seed = 1
		net, err := core.NewNetwork(cfg, spanWindow)
		if err != nil {
			t.Fatal(err)
		}
		tap := ptrace.Collect(net)
		res, err := tape.Run(net)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%016x", res.Digest); got != wantHex {
			t.Errorf("%s: armed-tap digest %s != EXPERIMENTS.md digest %s", s, got, wantHex)
		}
		if len(tap.Records) == 0 {
			t.Errorf("%s: armed tap recorded nothing", s)
		}
	}
}

// TestChaosPointArmedTapDigestEquality: the tap must stay digest-inert
// under fault injection too — the same chaos point run with and without a
// tap produces identical results.
func TestChaosPointArmedTapDigestEquality(t *testing.T) {
	cfg0 := core.DefaultConfig(core.GHSSetaside)
	tape, err := traffic.RecordTape(traffic.UniformRandom{}, 0.02, cfg0.Nodes, cfg0.CoresPerNode,
		sim.DeriveSeed(1, 3), spanWindow.Warmup+spanWindow.Measure)
	if err != nil {
		t.Fatal(err)
	}
	run := func(withTap bool) core.Result {
		cfg := core.DefaultConfig(core.GHSSetaside)
		cfg.Seed = 1
		cfg.Fault = fault.Config{Enabled: true, Warmup: spanWindow.Warmup}
		cfg.Fault = cfg.Fault.SetClass(fault.PulseLoss, fault.ClassConfig{Rate: 0.01, Burst: 2})
		cfg.Recovery.Enabled = true
		net, err := core.NewNetwork(cfg, spanWindow)
		if err != nil {
			t.Fatal(err)
		}
		var tap *ptrace.Tap
		if withTap {
			tap = ptrace.Collect(net)
		}
		res, err := tape.Run(net)
		if err != nil {
			t.Fatal(err)
		}
		net.Drain(60_000)
		if withTap {
			// The stream must still assemble (leniently) under faults.
			tr, err := tap.Assemble()
			if err != nil {
				t.Fatalf("assembling faulted trace: %v", err)
			}
			var faulted int
			for _, sp := range tr.Spans {
				if sp.Faulted {
					faulted++
				}
			}
			if res.FaultsInjected > 0 && faulted == 0 {
				t.Error("faults fired but no span was marked faulted")
			}
		}
		return res
	}
	plain := run(false)
	traced := run(true)
	if plain.Digest != traced.Digest || plain.DigestEvents != traced.DigestEvents {
		t.Fatalf("tap moved a chaos digest: plain %016x/%d, traced %016x/%d",
			plain.Digest, plain.DigestEvents, traced.Digest, traced.DigestEvents)
	}
	if plain.FaultsInjected == 0 {
		t.Fatal("chaos point fired no faults")
	}
}
