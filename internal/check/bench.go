package check

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"photon/internal/core"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// BenchConfig shapes the cycles/sec measurement RunBench performs for
// every registered scheme: Warmup untimed cycles to reach steady state,
// then Blocks timed blocks of Cycles each, keeping the best block (the
// standard defence against scheduler noise on shared CI machines).
type BenchConfig struct {
	Seed   uint64
	Load   float64 // injection rate per core (uniform random)
	Warmup int64
	Cycles int64
	Blocks int
}

// DefaultBench is the BENCH_core.json configuration: a moderate
// sub-saturation load with invariant checks off, matching how production
// sweeps drive the engine.
func DefaultBench(seed uint64) BenchConfig {
	return BenchConfig{Seed: seed, Load: 0.05, Warmup: 2000, Cycles: 10000, Blocks: 5}
}

// BenchPoint is one scheme's throughput measurement.
type BenchPoint struct {
	Scheme       string  `json:"scheme"`
	Family       string  `json:"family"`
	Cycles       int64   `json:"cycles"`       // per timed block
	BestSeconds  float64 `json:"best_seconds"` // fastest block
	CyclesPerSec float64 `json:"cycles_per_sec"`
	NsPerCycle   float64 `json:"ns_per_cycle"`
}

// BenchReport is the machine-readable perf baseline (BENCH_core.json).
type BenchReport struct {
	Seed      uint64       `json:"seed"`
	Load      float64      `json:"load"`
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	Points    []BenchPoint `json:"points"`
}

// RunBench measures the cycle engine's throughput for every registered
// scheme. It is a wall-clock measurement, not part of the determinism
// battery — digests are unaffected by how fast cycles execute.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	rep := &BenchReport{
		Seed:      cfg.Seed,
		Load:      cfg.Load,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}
	// Effectively unbounded window: a benchmark must never cross into the
	// drain phase.
	window := sim.Window{Warmup: 0, Measure: 1 << 40, Drain: 0}
	for _, s := range core.Schemes() {
		ncfg := core.DefaultConfig(s)
		ncfg.Seed = cfg.Seed
		ncfg.CheckInvariants = false
		net, err := core.NewNetwork(ncfg, window)
		if err != nil {
			return nil, fmt.Errorf("check: bench %v: %w", s, err)
		}
		inj, err := traffic.NewInjector(traffic.UniformRandom{}, cfg.Load, ncfg.Nodes, ncfg.CoresPerNode, ncfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("check: bench %v: %w", s, err)
		}
		for i := int64(0); i < cfg.Warmup; i++ {
			inj.Tick(net)
			net.Step()
		}
		best := time.Duration(1<<63 - 1)
		for b := 0; b < cfg.Blocks; b++ {
			start := time.Now()
			for i := int64(0); i < cfg.Cycles; i++ {
				inj.Tick(net)
				net.Step()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		secs := best.Seconds()
		rep.Points = append(rep.Points, BenchPoint{
			Scheme:       s.String(),
			Family:       net.Protocol().Family,
			Cycles:       cfg.Cycles,
			BestSeconds:  secs,
			CyclesPerSec: float64(cfg.Cycles) / secs,
			NsPerCycle:   secs * 1e9 / float64(cfg.Cycles),
		})
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON (the BENCH_core.json format).
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText emits a human-readable table.
func (r *BenchReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-18s %-18s %14s %12s\n", "scheme", "family", "cycles/sec", "ns/cycle"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%-18s %-18s %14.0f %12.1f\n", p.Scheme, p.Family, p.CyclesPerSec, p.NsPerCycle); err != nil {
			return err
		}
	}
	return nil
}
