package check

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"photon/internal/core"
	"photon/internal/farm"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// BenchConfig shapes the cycles/sec measurement RunBench performs for
// every registered scheme: Warmup untimed cycles to reach steady state,
// then Blocks timed blocks of Cycles each, keeping the best block (the
// standard defence against scheduler noise on shared CI machines).
type BenchConfig struct {
	Seed   uint64
	Load   float64 // injection rate per core (uniform random)
	Warmup int64
	Cycles int64
	Blocks int
}

// DefaultBench is the BENCH_core.json configuration: a moderate
// sub-saturation load with invariant checks off, matching how production
// sweeps drive the engine.
func DefaultBench(seed uint64) BenchConfig {
	return BenchConfig{Seed: seed, Load: 0.05, Warmup: 2000, Cycles: 10000, Blocks: 5}
}

// BenchPoint is one scheme's throughput measurement.
type BenchPoint struct {
	Scheme       string  `json:"scheme"`
	Family       string  `json:"family"`
	Cycles       int64   `json:"cycles"`       // per timed block
	BestSeconds  float64 `json:"best_seconds"` // fastest block
	CyclesPerSec float64 `json:"cycles_per_sec"`
	NsPerCycle   float64 `json:"ns_per_cycle"`
	// TracedNsPerCycle is the same measurement with a minimal event tap
	// armed — the marginal cost of observing the full lifecycle stream.
	// The nil-tap NsPerCycle is the baseline the perf gate compares.
	TracedNsPerCycle float64 `json:"traced_ns_per_cycle"`
}

// BenchReport is the machine-readable perf baseline (BENCH_core.json).
type BenchReport struct {
	Seed      uint64       `json:"seed"`
	Load      float64      `json:"load"`
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	Points    []BenchPoint `json:"points"`
}

// countingTap is the cheapest possible core.Tracer: it measures the pure
// emission overhead of an armed tap without the memory traffic a
// recording sink would add.
type countingTap struct{ n uint64 }

func (t *countingTap) Observe(core.Event) { t.n++ }

// benchScheme times one scheme's steady-state cycle throughput,
// optionally with a minimal tap armed, and returns the best block along
// with the protocol family name.
func benchScheme(s core.Scheme, cfg BenchConfig, traced bool) (time.Duration, string, error) {
	// Effectively unbounded window: a benchmark must never cross into the
	// drain phase.
	window := sim.Window{Warmup: 0, Measure: 1 << 40, Drain: 0}
	ncfg := core.DefaultConfig(s)
	ncfg.Seed = cfg.Seed
	ncfg.CheckInvariants = false
	net, err := core.NewNetwork(ncfg, window)
	if err != nil {
		return 0, "", fmt.Errorf("check: bench %v: %w", s, err)
	}
	if traced {
		net.SetTracer(&countingTap{})
	}
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, cfg.Load, ncfg.Nodes, ncfg.CoresPerNode, ncfg.Seed)
	if err != nil {
		return 0, "", fmt.Errorf("check: bench %v: %w", s, err)
	}
	for i := int64(0); i < cfg.Warmup; i++ {
		inj.Tick(net)
		net.Step()
	}
	best := time.Duration(1<<63 - 1)
	for b := 0; b < cfg.Blocks; b++ {
		start := time.Now()
		for i := int64(0); i < cfg.Cycles; i++ {
			inj.Tick(net)
			net.Step()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, net.Protocol().Family, nil
}

// RunBench measures the cycle engine's throughput for every registered
// scheme, untraced and with a minimal tap armed. It is a wall-clock
// measurement, not part of the determinism battery — digests are
// unaffected by how fast cycles execute. Per-scheme measurements run
// under farm.Do supervision with a single worker: timing stays strictly
// serial (no co-running scheme perturbs a block), but a panicking
// benchmark reports itself under its scheme's name instead of killing
// the whole gate.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	return runBenchWith(cfg, core.Schemes(), benchScheme)
}

// runBenchWith is RunBench with the per-scheme measurement injectable,
// so tests can prove the supervision contract: a measurement that
// panics must surface as an error naming its scheme, not kill the gate.
func runBenchWith(cfg BenchConfig, schemes []core.Scheme,
	bench func(core.Scheme, BenchConfig, bool) (time.Duration, string, error)) (*BenchReport, error) {
	rep := &BenchReport{
		Seed:      cfg.Seed,
		Load:      cfg.Load,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}
	points := make([]BenchPoint, len(schemes))
	errs := farm.Do(len(schemes), 1, func(i int) error {
		s := schemes[i]
		best, family, err := bench(s, cfg, false)
		if err != nil {
			return err
		}
		tracedBest, _, err := bench(s, cfg, true)
		if err != nil {
			return err
		}
		secs := best.Seconds()
		points[i] = BenchPoint{
			Scheme:           s.String(),
			Family:           family,
			Cycles:           cfg.Cycles,
			BestSeconds:      secs,
			CyclesPerSec:     float64(cfg.Cycles) / secs,
			NsPerCycle:       secs * 1e9 / float64(cfg.Cycles),
			TracedNsPerCycle: tracedBest.Seconds() * 1e9 / float64(cfg.Cycles),
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("check: bench %s: %w", schemes[i], err)
		}
	}
	rep.Points = points
	return rep, nil
}

// Gate compares a fresh measurement against a committed baseline report
// and returns one violation string per scheme whose nil-tap ns/cycle
// regressed beyond the tolerance band (0.25 = fail above 125% of the
// baseline). Schemes added since the baseline was recorded are violations
// too — the baseline must be regenerated to cover them — while schemes
// *removed* from the engine are ignored (the registry tests own that).
// Wall-clock comparisons across machines are inherently noisy; the gate is
// meant to run on the hardware class that recorded the baseline (CI), and
// the band absorbs ordinary scheduler jitter.
func (r *BenchReport) Gate(base *BenchReport, tolerance float64) []string {
	baseline := make(map[string]float64, len(base.Points))
	for _, p := range base.Points {
		baseline[p.Scheme] = p.NsPerCycle
	}
	var violations []string
	for _, p := range r.Points {
		want, ok := baseline[p.Scheme]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: not in the committed baseline — regenerate it (verify -bench -json)", p.Scheme))
			continue
		}
		if limit := want * (1 + tolerance); p.NsPerCycle > limit {
			violations = append(violations,
				fmt.Sprintf("%s: %.1f ns/cycle exceeds the %.1f baseline by more than %.0f%% (limit %.1f)",
					p.Scheme, p.NsPerCycle, want, tolerance*100, limit))
		}
	}
	return violations
}

// WriteJSON emits the report as indented JSON (the BENCH_core.json format).
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText emits a human-readable table.
func (r *BenchReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-18s %-18s %14s %12s %16s\n", "scheme", "family", "cycles/sec", "ns/cycle", "traced ns/cycle"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%-18s %-18s %14.0f %12.1f %16.1f\n",
			p.Scheme, p.Family, p.CyclesPerSec, p.NsPerCycle, p.TracedNsPerCycle); err != nil {
			return err
		}
	}
	return nil
}
