package check_test

import (
	"reflect"
	"testing"

	"photon/internal/check"
	"photon/internal/core"
	"photon/internal/exp"
	"photon/internal/sim"
	"photon/internal/traffic"
)

func detOpts() exp.Options {
	return exp.Options{Window: sim.Window{Warmup: 200, Measure: 600, Drain: 600}, Seed: 13}
}

// TestSchemeDeterminism: for every scheme, running the same (seed,
// pattern, rate) twice must produce identical core.Result structs and
// identical run digests — the bit-reproducibility baseline every
// comparison in EXPERIMENTS.md rests on.
func TestSchemeDeterminism(t *testing.T) {
	for _, s := range core.Schemes() {
		for _, pat := range traffic.PaperPatterns() {
			t.Run(s.String()+"/"+pat.Name(), func(t *testing.T) {
				p := exp.Point{Scheme: s, Pattern: pat, Rate: 0.09}
				a, err := exp.RunPoint(p, detOpts())
				if err != nil {
					t.Fatal(err)
				}
				b, err := exp.RunPoint(p, detOpts())
				if err != nil {
					t.Fatal(err)
				}
				if a.Digest != b.Digest {
					t.Fatalf("digests diverged: %016x vs %016x", a.Digest, b.Digest)
				}
				if a.Digest == 0 || a.DigestEvents == 0 {
					t.Fatalf("degenerate digest %016x over %d events", a.Digest, a.DigestEvents)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("results diverged:\n%+v\n%+v", a, b)
				}
			})
		}
	}
}

// TestDigestDiscriminates: the digest must separate runs that differ in
// seed, scheme, or load — a fingerprint that collides on trivially
// different runs would certify nothing.
func TestDigestDiscriminates(t *testing.T) {
	base := exp.Point{Scheme: core.DHS, Pattern: traffic.UniformRandom{}, Rate: 0.09}
	ref, err := exp.RunPoint(base, detOpts())
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		p    exp.Point
		o    exp.Options
	}{
		{"different seed", base, func() exp.Options { o := detOpts(); o.Seed = 14; return o }()},
		{"different scheme", exp.Point{Scheme: core.DHSSetaside, Pattern: traffic.UniformRandom{}, Rate: 0.09}, detOpts()},
		{"different rate", exp.Point{Scheme: core.DHS, Pattern: traffic.UniformRandom{}, Rate: 0.10}, detOpts()},
	}
	for _, v := range variants {
		res, err := exp.RunPoint(v.p, v.o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Digest == ref.Digest {
			t.Errorf("%s: digest collided with reference (%016x)", v.name, ref.Digest)
		}
	}
}

// TestDigestIgnoresObservers: installing a Trace hook must not perturb the
// digest (observation must be free of side effects).
func TestDigestIgnoresObservers(t *testing.T) {
	run := func(traced bool) core.Result {
		cfg := core.DefaultConfig(core.GHSSetaside)
		cfg.Seed = 8
		net, err := core.NewNetwork(cfg, sim.Window{Warmup: 100, Measure: 400, Drain: 400})
		if err != nil {
			t.Fatal(err)
		}
		if traced {
			net.Trace(func(core.Event) {})
		}
		inj, err := traffic.NewInjector(traffic.BitComplement{}, 0.10, cfg.Nodes, cfg.CoresPerNode, 8)
		if err != nil {
			t.Fatal(err)
		}
		return inj.Run(net)
	}
	plain, traced := run(false), run(true)
	if plain.Digest != traced.Digest {
		t.Fatalf("trace hook perturbed the digest: %016x vs %016x", plain.Digest, traced.Digest)
	}
}

// TestBatteryReduced: an end-to-end battery over a scheme pair must come
// back green with sane reporting. (cmd/verify runs the full quick battery;
// this keeps the test suite fast.)
func TestBatteryReduced(t *testing.T) {
	b := check.QuickBattery(1)
	b.Schemes = []core.Scheme{core.TokenChannel, core.GHSSetaside}
	b.Patterns = []traffic.Pattern{traffic.UniformRandom{}}
	b.Window = sim.Window{Warmup: 200, Measure: 600, Drain: 600}
	rep, err := check.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("battery failed:\n%v", rep.Failures())
	}
	if len(rep.Points) != 2*3 {
		t.Fatalf("expected 6 point reports, got %d", len(rep.Points))
	}
	if rep.Table().Len() != len(rep.Points) {
		t.Fatal("table row count mismatch")
	}
	for _, p := range rep.Points {
		if p.Injected == 0 || p.Events == 0 {
			t.Fatalf("degenerate point report: %+v", p)
		}
	}
	// The two schemes replayed the same tapes: injected counts must agree
	// pairwise (the differential guarantee, visible in the report).
	byKey := map[string][]check.PointReport{}
	for _, p := range rep.Points {
		k := p.Pattern + "@" + string(rune('0'+int(p.Rate*100)))
		byKey[k] = append(byKey[k], p)
	}
	for k, group := range byKey {
		for i := 1; i < len(group); i++ {
			if group[i].Injected != group[0].Injected {
				t.Fatalf("%s: schemes saw different traffic: %d vs %d", k, group[i].Injected, group[0].Injected)
			}
		}
	}
}
