package check

import (
	"fmt"
	"strings"

	"photon/internal/core"
	"photon/internal/ptrace"
)

// AuditSpans reconciles an assembled protocol trace against the
// network's conservation ledger: the per-packet spans, summed, must
// reproduce the cumulative counters exactly, and every span must satisfy
// the chain invariants (gap-free, non-overlapping, phase sums equal to
// end-to-end latency for delivered packets). Like Audit it holds at any
// cycle — undelivered spans are located via the occupancy terms. It is
// defined over fault-free runs (an armed injector breaks per-packet
// attribution by design; use the digest-equality checks there instead).
func AuditSpans(tr *ptrace.TraceResult, a core.Accounting) error {
	var v []string
	fail := func(format string, args ...any) {
		v = append(v, fmt.Sprintf(format, args...))
	}
	if a.FaultsInjected != 0 {
		return fmt.Errorf("check: AuditSpans is defined over fault-free runs (%d faults fired)", a.FaultsInjected)
	}

	var delivered, local, neverEnqueued int64
	var launches, drops, circulations, retransmits int64
	for _, s := range tr.Spans {
		if err := s.Validate(); err != nil {
			fail("span invariant: %v", err)
		}
		if s.Faulted {
			fail("packet %d marked faulted on a fault-free run", s.ID)
		}
		if s.Delivered >= 0 {
			delivered++
			if s.Local {
				local++
			}
		} else if len(s.Phases) == 0 {
			// Injected but never enqueued: rejected by a bounded queue or
			// still inside the injection pipeline.
			neverEnqueued++
		}
		launches += int64(s.Launches)
		drops += int64(s.Drops)
		circulations += int64(s.Circulations)
		if s.Launches > 1 {
			retransmits += int64(s.Launches - 1)
		}
	}

	if got := int64(len(tr.Spans)); got != a.Injected {
		fail("trace holds %d spans, ledger injected %d", got, a.Injected)
	}
	if delivered != a.Delivered {
		fail("trace delivered %d, ledger %d", delivered, a.Delivered)
	}
	if local != a.LocalDelivered {
		fail("trace local deliveries %d, ledger %d", local, a.LocalDelivered)
	}
	if launches != a.Launches {
		fail("span launches sum to %d, ledger %d", launches, a.Launches)
	}
	if drops != a.Drops {
		fail("span drops sum to %d, ledger %d", drops, a.Drops)
	}
	if circulations != a.Circulations {
		fail("span circulations sum to %d, ledger %d", circulations, a.Circulations)
	}
	// Every launch after a packet's first is a retransmission, whatever
	// triggered it.
	if retransmits != a.Retransmits {
		fail("span extra launches sum to %d, ledger retransmits %d", retransmits, a.Retransmits)
	}
	// A span with no phases never left the injection pipeline: it was
	// either rejected by a bounded queue or still sits in the pipeline.
	if want := a.QueueRejected + int64(a.Pipeline); neverEnqueued != want {
		fail("trace never-enqueued %d != queue-rejected %d + pipeline occupancy %d",
			neverEnqueued, a.QueueRejected, a.Pipeline)
	}

	if len(v) > 0 {
		return fmt.Errorf("check: span audit failed (%s):\n  %s", a.Scheme, strings.Join(v, "\n  "))
	}
	return nil
}
