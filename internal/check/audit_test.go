package check_test

import (
	"strings"
	"testing"

	"photon/internal/check"
	"photon/internal/core"
	"photon/internal/sim"
	"photon/internal/traffic"
)

func auditWindow() sim.Window {
	return sim.Window{Warmup: 200, Measure: 800, Drain: 800}
}

// runAndAudit drives one configured point and audits it mid-run, after the
// window, and after a bounded extra drain.
func runAndAudit(t *testing.T, cfg core.Config, pat traffic.Pattern, rate float64) core.Accounting {
	t.Helper()
	net, err := core.NewNetwork(cfg, auditWindow())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(pat, rate, cfg.Nodes, cfg.CoresPerNode, 17)
	if err != nil {
		t.Fatal(err)
	}
	w := net.Window()
	for cyc := int64(0); cyc < w.Warmup+w.Measure; cyc++ {
		inj.Tick(net)
		net.Step()
		// The identities hold at every cycle, not just at drain end; spot
		// check mid-run to catch transient double counting.
		if cyc%251 == 0 {
			if err := check.AuditNetwork(net); err != nil {
				t.Fatalf("mid-run audit at cycle %d: %v", cyc, err)
			}
		}
	}
	for cyc := int64(0); cyc < w.Drain; cyc++ {
		net.Step()
	}
	if err := check.AuditNetwork(net); err != nil {
		t.Fatalf("post-window audit: %v", err)
	}
	net.Drain(30_000)
	if err := check.AuditNetwork(net); err != nil {
		t.Fatalf("post-drain audit: %v", err)
	}
	return net.Accounting()
}

// TestConservationAcrossLoads: the auditor must pass for every scheme at a
// low load, near saturation, and firmly past saturation (where the drain
// cannot empty the network).
func TestConservationAcrossLoads(t *testing.T) {
	loads := []struct {
		name string
		rate float64
	}{
		{"low", 0.02},
		{"near-saturation", 0.13},
		{"past-saturation", 0.35},
	}
	for _, s := range core.Schemes() {
		for _, l := range loads {
			t.Run(s.String()+"/"+l.name, func(t *testing.T) {
				cfg := core.DefaultConfig(s)
				cfg.Seed = 9
				a := runAndAudit(t, cfg, traffic.UniformRandom{}, l.rate)
				if a.Injected == 0 {
					t.Fatal("no traffic injected")
				}
				if l.name == "low" && a.Outstanding != 0 {
					t.Fatalf("low load failed to drain: %d outstanding", a.Outstanding)
				}
			})
		}
	}
}

// TestConservationUnderReceiverStalls: heavy ejection stalls force the
// drop/NACK/retransmit path (handshake), the circulation path (DHS-cir)
// and deep setaside usage — the hard cases for packet accounting.
func TestConservationUnderReceiverStalls(t *testing.T) {
	for _, s := range []core.Scheme{core.GHS, core.GHSSetaside, core.DHS, core.DHSSetaside, core.DHSCirculation} {
		t.Run(s.String(), func(t *testing.T) {
			cfg := core.DefaultConfig(s)
			cfg.Seed = 23
			cfg.BufferDepth = 1
			cfg.EjectStallProb = 0.6
			a := runAndAudit(t, cfg, traffic.UniformRandom{}, 0.08)
			if s.Circulating() {
				if a.Circulations == 0 {
					t.Fatal("stress run exercised no circulations")
				}
			} else if a.Drops == 0 {
				t.Fatal("stress run exercised no drops")
			}
		})
	}
}

// TestConservationBoundedQueues: with a bounded output queue the rejected
// packets must balance the ledger through QueueRejected.
func TestConservationBoundedQueues(t *testing.T) {
	cfg := core.DefaultConfig(core.TokenSlot)
	cfg.Seed = 5
	cfg.QueueCap = 2
	a := runAndAudit(t, cfg, traffic.Tornado{}, 0.30)
	if a.QueueRejected == 0 {
		t.Fatal("bounded queue at past-saturation load rejected nothing")
	}
}

// TestAuditDetectsCorruption: the auditor must actually reject broken
// ledgers — every identity is exercised by corrupting one counter.
func TestAuditDetectsCorruption(t *testing.T) {
	cfg := core.DefaultConfig(core.DHSSetaside)
	cfg.Seed = 3
	net, err := core.NewNetwork(cfg, auditWindow())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.10, cfg.Nodes, cfg.CoresPerNode, 3)
	if err != nil {
		t.Fatal(err)
	}
	inj.Run(net)
	net.Drain(30_000)
	good := net.Accounting()
	if err := check.Audit(good); err != nil {
		t.Fatal(err)
	}

	corruptions := []struct {
		name    string
		mutate  func(*core.Accounting)
		keyword string
	}{
		{"lost packet", func(a *core.Accounting) { a.Injected++ }, "injected"},
		{"phantom delivery", func(a *core.Accounting) { a.Delivered++ }, "injected"},
		{"broken backlog sum", func(a *core.Accounting) { a.Backlog++ }, "backlog"},
		{"phantom launch", func(a *core.Accounting) { a.Launches++ }, "launches"},
		{"channel ledger", func(a *core.Accounting) { a.Channels[0].Ejected++ }, "channel 0"},
		{"drop mismatch", func(a *core.Accounting) { a.Drops++ }, "drops"},
		{"scheme shape", func(a *core.Accounting) { a.Circulations++ }, "circulat"},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			bad := good
			bad.Channels = append([]core.ChannelAccounting(nil), good.Channels...)
			c.mutate(&bad)
			err := check.Audit(bad)
			if err == nil {
				t.Fatal("corrupted ledger passed the audit")
			}
			if !strings.Contains(err.Error(), c.keyword) {
				t.Fatalf("violation message %q lacks keyword %q", err, c.keyword)
			}
		})
	}
}
