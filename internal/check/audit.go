// Package check is the simulator's correctness-tooling subsystem: a
// conservation auditor over core.Accounting snapshots, and a differential
// battery that replays identical traffic tapes through every scheme,
// proving run-to-run determinism (via core.Result digests), packet
// conservation, and serial-vs-parallel sweep equivalence. cmd/verify is
// its CLI; CI runs it as the one-command regression oracle that perf and
// refactoring PRs must keep green.
//
// The paper's handshake-vs-credit comparison (§V) rests on exact packet
// accounting — a scheme that silently loses or duplicates packets can
// "win" any throughput comparison — so the auditor encodes the
// conservation identities every scheme must satisfy, and the battery
// checks them at loads below, at, and past saturation.
package check

import (
	"fmt"
	"strings"

	"photon/internal/core"
)

// Audit verifies the packet-conservation identities on a snapshot. It
// returns nil when every identity holds, or an error listing all
// violations. The identities hold at any cycle (occupancy terms account
// for packets still owned by the network), so Audit may run mid-flight;
// the drained-only identities (NACK/retransmit balance) are applied only
// when Backlog is zero.
func Audit(a core.Accounting) error {
	var v []string
	fail := func(format string, args ...any) {
		v = append(v, fmt.Sprintf(format, args...))
	}

	// End-to-end conservation: every injected packet is delivered, still
	// owned by the network, explicitly rejected by a bounded queue, or
	// permanently lost to a fault the scheme cannot recover from (Lost is
	// zero on every fault-free run and on every retention scheme).
	if got := a.Delivered + int64(a.Backlog) + a.QueueRejected + a.Lost; a.Injected != got {
		fail("injected %d != delivered %d + backlog %d + queue-rejected %d + lost %d",
			a.Injected, a.Delivered, a.Backlog, a.QueueRejected, a.Lost)
	}

	// Occupancy breakdowns must sum to the backlog (each undelivered
	// packet located exactly once: duplicate copies of accepted packets
	// are subtracted from in-flight, orphans stand in for destroyed
	// copies) and to the outstanding count (sender retention copies
	// included).
	if got := a.Pipeline + a.Queued + (a.InFlight - a.DupsInFlight) + a.Buffered + a.Orphans; a.Backlog != got {
		fail("backlog %d != pipeline %d + queued %d + (in-flight %d - dups %d) + buffered %d + orphans %d",
			a.Backlog, a.Pipeline, a.Queued, a.InFlight, a.DupsInFlight, a.Buffered, a.Orphans)
	}
	if got := a.Pipeline + a.Queued + a.Unacked + a.InFlight + a.Buffered; a.Outstanding != got {
		fail("outstanding %d != pipeline %d + queued %d + unacked %d + in-flight %d + buffered %d",
			a.Outstanding, a.Pipeline, a.Queued, a.Unacked, a.InFlight, a.Buffered)
	}

	// Retransmission causality: every re-launch was triggered by a
	// delivered NACK (at most Drops - NacksLost of those exist) or by a
	// sender timeout. Equality holds at quiescence, inequality mid-flight
	// (triggers precede their re-launches).
	if a.Retransmits > (a.Drops-a.NacksLost)+a.TimeoutRetransmits {
		fail("retransmits %d exceed delivered NACKs (%d-%d) + timeouts %d",
			a.Retransmits, a.Drops, a.NacksLost, a.TimeoutRetransmits)
	}

	// Fault-counter cross-checks: the per-class fire counts must roll up
	// to the global counter, and the per-mechanism casualty counters must
	// match the class that causes them.
	if got := a.FaultTokens + a.FaultPulses + a.FaultData + a.FaultStalls; a.FaultsInjected != got {
		fail("faults-injected %d != tokens %d + pulses %d + data %d + stalls %d",
			a.FaultsInjected, a.FaultTokens, a.FaultPulses, a.FaultData, a.FaultStalls)
	}
	if got := a.AcksLost + a.NacksLost; a.FaultPulses != got {
		fail("pulse faults %d != ACKs lost %d + NACKs lost %d", a.FaultPulses, a.AcksLost, a.NacksLost)
	}

	// Fault-free runs must reduce exactly to the seed identities: the
	// recovery machinery may exist but must never have acted.
	if a.FaultsInjected == 0 {
		if a.Orphans != int(a.Drops-a.Retransmits) {
			fail("fault-free but orphans %d != drops %d - retransmits %d", a.Orphans, a.Drops, a.Retransmits)
		}
		if a.DupsInFlight != 0 || a.DupsDiscarded != 0 {
			fail("fault-free but duplicates exist (in-flight %d, discarded %d)", a.DupsInFlight, a.DupsDiscarded)
		}
		if a.Lost != 0 {
			fail("fault-free but %d packets lost", a.Lost)
		}
		if a.TimeoutRetransmits != 0 || a.TokensRegenerated != 0 {
			fail("fault-free but recovery acted (timeouts %d, regens %d)",
				a.TimeoutRetransmits, a.TokensRegenerated)
		}
	}

	// Per-channel launch accounting, rolled up to the global counters.
	var sumLaunch, sumReinj, sumEject, sumNack int64
	var sumDup, sumFaultDisc, sumAckLost, sumNackLost int64
	for _, ch := range a.Channels {
		sumLaunch += ch.Launches
		sumReinj += ch.Reinjections
		sumEject += ch.Ejected
		sumNack += ch.NacksSent
		sumDup += ch.DupsDiscarded
		sumFaultDisc += ch.FaultDiscards
		sumAckLost += ch.AcksLost
		sumNackLost += ch.NacksLost
		// Every launch onto channel h ends ejected, parked in the home
		// buffer, on the waveguide, dropped (NACKed), recognised as a
		// duplicate, or destroyed by a data fault. Reinjections cancel
		// out: each one is both an extra arrival and an extra departure
		// of the same waveguide.
		if got := ch.Ejected + int64(ch.Buffered+ch.InFlight) + ch.NacksSent +
			ch.DupsDiscarded + ch.FaultDiscards; ch.Launches != got {
			fail("channel %d: launches %d != ejected %d + buffered %d + in-flight %d + nacks %d + dups %d + fault-discards %d",
				ch.Home, ch.Launches, ch.Ejected, ch.Buffered, ch.InFlight,
				ch.NacksSent, ch.DupsDiscarded, ch.FaultDiscards)
		}
	}
	if sumLaunch != a.Launches {
		fail("per-channel launches %d != global launches %d", sumLaunch, a.Launches)
	}
	if sumReinj != a.Circulations {
		fail("per-channel reinjections %d != global circulations %d", sumReinj, a.Circulations)
	}
	if sumNack != a.Drops {
		fail("per-channel NACKs %d != global drops %d", sumNack, a.Drops)
	}
	if remote := a.Delivered - a.LocalDelivered; sumEject != remote {
		fail("per-channel ejections %d != remote deliveries %d", sumEject, remote)
	}
	if sumDup != a.DupsDiscarded {
		fail("per-channel duplicate discards %d != global %d", sumDup, a.DupsDiscarded)
	}
	if sumFaultDisc != a.FaultData {
		fail("per-channel fault discards %d != data faults fired %d", sumFaultDisc, a.FaultData)
	}
	if sumAckLost != a.AcksLost || sumNackLost != a.NacksLost {
		fail("per-channel lost pulses (%d ACK, %d NACK) != global (%d, %d)",
			sumAckLost, sumNackLost, a.AcksLost, a.NacksLost)
	}

	// Scheme-shape identities: counters that must be zero for schemes
	// lacking the corresponding hardware.
	if !a.Scheme.Handshake() && a.Drops != 0 {
		fail("%s has no handshake but recorded %d drops", a.Scheme, a.Drops)
	}
	if !a.Scheme.Handshake() && a.Retransmits != 0 {
		fail("%s has no handshake but recorded %d retransmits", a.Scheme, a.Retransmits)
	}
	if !a.Scheme.Circulating() && a.Circulations != 0 {
		fail("%s does not circulate but recorded %d circulations", a.Scheme, a.Circulations)
	}
	if !a.Scheme.Handshake() {
		if a.TimeoutRetransmits != 0 || a.DupsDiscarded != 0 || a.AcksLost != 0 || a.NacksLost != 0 {
			fail("%s has no handshake but recorded recovery traffic (timeouts %d, dups %d, lost pulses %d/%d)",
				a.Scheme, a.TimeoutRetransmits, a.DupsDiscarded, a.AcksLost, a.NacksLost)
		}
	}
	if a.Scheme.Handshake() && a.Lost != 0 {
		fail("%s retains senders' copies but recorded %d permanent losses", a.Scheme, a.Lost)
	}
	if a.Lost > a.FaultData {
		fail("lost %d packets but only %d data faults fired", a.Lost, a.FaultData)
	}

	// Quiescent-only identities: once the network owns nothing (handshake
	// state included), every NACK that was delivered produced exactly one
	// retransmission (lost NACKs are made up by timeouts), and every
	// accepted packet (first ACK or duplicate re-ACK) must have been
	// ejected or discarded as a duplicate.
	if a.Outstanding == 0 {
		if want := (a.Drops - a.NacksLost) + a.TimeoutRetransmits; a.Scheme.Handshake() && a.Retransmits != want {
			fail("drained but retransmits %d != delivered NACKs (%d-%d) + timeouts %d",
				a.Retransmits, a.Drops, a.NacksLost, a.TimeoutRetransmits)
		}
		for _, ch := range a.Channels {
			if a.Scheme.Handshake() && ch.AcksSent != ch.Ejected+ch.DupsDiscarded {
				fail("channel %d drained but ACKs %d != ejections %d + duplicate discards %d",
					ch.Home, ch.AcksSent, ch.Ejected, ch.DupsDiscarded)
			}
		}
	}

	if len(v) > 0 {
		return fmt.Errorf("check: conservation audit failed (%s):\n  %s",
			a.Scheme, strings.Join(v, "\n  "))
	}
	return nil
}

// AuditNetwork snapshots and audits a live network.
func AuditNetwork(n *core.Network) error {
	return Audit(n.Accounting())
}
