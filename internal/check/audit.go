// Package check is the simulator's correctness-tooling subsystem: a
// conservation auditor over core.Accounting snapshots, and a differential
// battery that replays identical traffic tapes through every scheme,
// proving run-to-run determinism (via core.Result digests), packet
// conservation, and serial-vs-parallel sweep equivalence. cmd/verify is
// its CLI; CI runs it as the one-command regression oracle that perf and
// refactoring PRs must keep green.
//
// The paper's handshake-vs-credit comparison (§V) rests on exact packet
// accounting — a scheme that silently loses or duplicates packets can
// "win" any throughput comparison — so the auditor encodes the
// conservation identities every scheme must satisfy, and the battery
// checks them at loads below, at, and past saturation.
package check

import (
	"fmt"
	"strings"

	"photon/internal/core"
)

// Audit verifies the packet-conservation identities on a snapshot. It
// returns nil when every identity holds, or an error listing all
// violations. The identities hold at any cycle (occupancy terms account
// for packets still owned by the network), so Audit may run mid-flight;
// the drained-only identities (NACK/retransmit balance) are applied only
// when Backlog is zero.
func Audit(a core.Accounting) error {
	var v []string
	fail := func(format string, args ...any) {
		v = append(v, fmt.Sprintf(format, args...))
	}

	// End-to-end conservation: every injected packet is delivered, still
	// owned by the network, or was explicitly rejected by a bounded queue.
	if got := a.Delivered + int64(a.Backlog) + a.QueueRejected; a.Injected != got {
		fail("injected %d != delivered %d + backlog %d + queue-rejected %d",
			a.Injected, a.Delivered, a.Backlog, a.QueueRejected)
	}

	// Occupancy breakdowns must sum to the backlog (each undelivered
	// packet located exactly once) and to the outstanding count (sender
	// retention copies included).
	if got := a.Pipeline + a.Queued + a.InFlight + a.Buffered + int(a.Drops-a.Retransmits); a.Backlog != got {
		fail("backlog %d != pipeline %d + queued %d + in-flight %d + buffered %d + dropped-outstanding %d",
			a.Backlog, a.Pipeline, a.Queued, a.InFlight, a.Buffered, a.Drops-a.Retransmits)
	}
	if got := a.Pipeline + a.Queued + a.Unacked + a.InFlight + a.Buffered; a.Outstanding != got {
		fail("outstanding %d != pipeline %d + queued %d + unacked %d + in-flight %d + buffered %d",
			a.Outstanding, a.Pipeline, a.Queued, a.Unacked, a.InFlight, a.Buffered)
	}
	if a.Drops < a.Retransmits {
		fail("retransmits %d exceed drops %d", a.Retransmits, a.Drops)
	}

	// Per-channel launch accounting, rolled up to the global counters.
	var sumLaunch, sumReinj, sumEject, sumNack int64
	for _, ch := range a.Channels {
		sumLaunch += ch.Launches
		sumReinj += ch.Reinjections
		sumEject += ch.Ejected
		sumNack += ch.NacksSent
		// Every launch onto channel h ends ejected, parked in the home
		// buffer, on the waveguide, or dropped (NACKed). Reinjections
		// cancel out: each one is both an extra arrival and an extra
		// departure of the same waveguide.
		if got := ch.Ejected + int64(ch.Buffered+ch.InFlight) + ch.NacksSent; ch.Launches != got {
			fail("channel %d: launches %d != ejected %d + buffered %d + in-flight %d + nacks %d",
				ch.Home, ch.Launches, ch.Ejected, ch.Buffered, ch.InFlight, ch.NacksSent)
		}
	}
	if sumLaunch != a.Launches {
		fail("per-channel launches %d != global launches %d", sumLaunch, a.Launches)
	}
	if sumReinj != a.Circulations {
		fail("per-channel reinjections %d != global circulations %d", sumReinj, a.Circulations)
	}
	if sumNack != a.Drops {
		fail("per-channel NACKs %d != global drops %d", sumNack, a.Drops)
	}
	if remote := a.Delivered - a.LocalDelivered; sumEject != remote {
		fail("per-channel ejections %d != remote deliveries %d", sumEject, remote)
	}

	// Scheme-shape identities: counters that must be zero for schemes
	// lacking the corresponding hardware.
	if !a.Scheme.Handshake() && a.Drops != 0 {
		fail("%s has no handshake but recorded %d drops", a.Scheme, a.Drops)
	}
	if !a.Scheme.Handshake() && a.Retransmits != 0 {
		fail("%s has no handshake but recorded %d retransmits", a.Scheme, a.Retransmits)
	}
	if !a.Scheme.Circulating() && a.Circulations != 0 {
		fail("%s does not circulate but recorded %d circulations", a.Scheme, a.Circulations)
	}

	// Quiescent-only identities: once the network owns nothing (handshake
	// state included), every NACK must have produced exactly one
	// retransmission, and every accepted packet (ACKed) must have been
	// ejected.
	if a.Outstanding == 0 {
		if a.Scheme.Handshake() && a.Retransmits != a.Drops {
			fail("drained but retransmits %d != drops %d", a.Retransmits, a.Drops)
		}
		for _, ch := range a.Channels {
			if a.Scheme.Handshake() && ch.AcksSent != ch.Ejected {
				fail("channel %d drained but ACKs %d != ejections %d", ch.Home, ch.AcksSent, ch.Ejected)
			}
		}
	}

	if len(v) > 0 {
		return fmt.Errorf("check: conservation audit failed (%s):\n  %s",
			a.Scheme, strings.Join(v, "\n  "))
	}
	return nil
}

// AuditNetwork snapshots and audits a live network.
func AuditNetwork(n *core.Network) error {
	return Audit(n.Accounting())
}
