package check

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"photon/internal/core"
	"photon/internal/exp"
	"photon/internal/farm"
	"photon/internal/fault"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// The golden-digest regression tests pin the behavioural fingerprint of
// every quick-grid and chaos-battery point as testdata, so a plain
// `go test ./...` fails on any engine divergence — EXPERIMENTS.md records
// the same digests for humans, but only these files make them binding.
//
// Regenerate after an *intentional* behaviour change with:
//
//	go test ./internal/check -run TestGolden -update
//
// and justify the diff in the commit message; a raw-speed change must
// never need it.

var updateGolden = flag.Bool("update", false, "rewrite golden digest testdata")

// goldenPoint is one pinned digest. Case is the traffic pattern for
// quick-grid points and the fault class for chaos points.
type goldenPoint struct {
	Scheme string  `json:"scheme"`
	Case   string  `json:"case"`
	Rate   float64 `json:"rate"`
	Digest string  `json:"digest"`
}

func (p goldenPoint) key() string {
	return fmt.Sprintf("%s/%s@%g", p.Scheme, p.Case, p.Rate)
}

// goldenQuickPoints reproduces the per-point digests of
// Run(QuickBattery(seed)) — same tape derivation order, same seeds, same
// window — without the battery's repeat runs and cross checks, so the
// golden sweep stays test-suite cheap.
func goldenQuickPoints(t *testing.T, seed uint64) []goldenPoint {
	t.Helper()
	b := QuickBattery(seed)
	cfg0 := core.DefaultConfig(b.Schemes[0])

	type pointJob struct {
		scheme core.Scheme
		name   string
		rate   float64
		tape   *traffic.Tape
	}
	var jobs []pointJob
	tapes := 0
	for _, pat := range b.Patterns {
		for _, rate := range b.Loads(pat.Name()) {
			tape, err := traffic.RecordTape(pat, rate, cfg0.Nodes, cfg0.CoresPerNode,
				sim.DeriveSeed(b.Seed, uint64(tapes)), b.Window.Warmup+b.Window.Measure)
			if err != nil {
				t.Fatalf("recording %s tape at %.3f: %v", pat.Name(), rate, err)
			}
			tapes++
			for _, s := range b.Schemes {
				jobs = append(jobs, pointJob{scheme: s, name: pat.Name(), rate: rate, tape: tape})
			}
		}
	}

	points := make([]goldenPoint, len(jobs))
	runGoldenJobs(t, len(jobs), func(i int) error {
		j := jobs[i]
		cfg := core.DefaultConfig(j.scheme)
		cfg.Seed = b.Seed
		net, err := core.NewNetwork(cfg, b.Window)
		if err != nil {
			return err
		}
		res, err := j.tape.Run(net)
		if err != nil {
			return err
		}
		points[i] = goldenPoint{
			Scheme: j.scheme.String(),
			Case:   j.name,
			Rate:   j.rate,
			Digest: fmt.Sprintf("%016x", res.Digest),
		}
		return nil
	})
	return points
}

// goldenChaosPoints reproduces the per-point digests of
// RunChaos(QuickChaos(seed)): faults armed per (scheme, class, rate) with
// recovery on, over the battery's shared uniform-random tape.
func goldenChaosPoints(t *testing.T, seed uint64) []goldenPoint {
	t.Helper()
	b := QuickChaos(seed)
	cfg0 := core.DefaultConfig(b.Schemes[0])
	tape, err := traffic.RecordTape(traffic.UniformRandom{}, b.Load, cfg0.Nodes, cfg0.CoresPerNode,
		sim.DeriveSeed(b.Seed, 0xC4A05), b.Window.Warmup+b.Window.Measure)
	if err != nil {
		t.Fatalf("recording chaos tape: %v", err)
	}

	type pointJob struct {
		scheme core.Scheme
		class  fault.Class
		rate   float64
	}
	var jobs []pointJob
	for _, s := range b.Schemes {
		for _, cl := range b.Classes {
			if !classApplies(s, cl) {
				continue
			}
			for _, rate := range b.Rates {
				jobs = append(jobs, pointJob{s, cl, rate})
			}
		}
	}

	points := make([]goldenPoint, len(jobs))
	runGoldenJobs(t, len(jobs), func(i int) error {
		j := jobs[i]
		cfg := b.chaosConfig(j.scheme, j.class, j.rate)
		net, err := core.NewNetwork(cfg, b.Window)
		if err != nil {
			return err
		}
		res, err := tape.Run(net)
		if err != nil {
			return err
		}
		points[i] = goldenPoint{
			Scheme: j.scheme.String(),
			Case:   j.class.String(),
			Rate:   j.rate,
			Digest: fmt.Sprintf("%016x", res.Digest),
		}
		return nil
	})
	return points
}

// goldenSLOPoints reproduces the per-point digests of the "slo" workload
// grid (every preset workload under every scheme) exactly as
// `sweep -farm slo -quick` runs them: quick options, the grid's own
// deterministic order, the preset name as the case key.
func goldenSLOPoints(t *testing.T, seed uint64) []goldenPoint {
	t.Helper()
	opts := exp.QuickOptions()
	opts.Seed = seed
	grid, err := exp.FigurePoints("slo", opts)
	if err != nil {
		t.Fatalf("building slo grid: %v", err)
	}
	points := make([]goldenPoint, len(grid))
	runGoldenJobs(t, len(grid), func(i int) error {
		res, err := exp.RunPoint(grid[i], opts)
		if err != nil {
			return err
		}
		points[i] = goldenPoint{
			Scheme: grid[i].Scheme.String(),
			Case:   grid[i].Label,
			Digest: fmt.Sprintf("%016x", res.Digest),
		}
		return nil
	})
	return points
}

// runGoldenJobs fans n independent point runs over the farm's supervised
// pool (GOMAXPROCS workers, panics contained into error slots).
func runGoldenJobs(t *testing.T, n int, run func(i int) error) {
	t.Helper()
	for i, err := range farm.Do(n, 0, run) {
		if err != nil {
			t.Fatalf("golden point %d: %v", i, err)
		}
	}
}

// checkGolden compares computed points against the named testdata file,
// rewriting it under -update.
func checkGolden(t *testing.T, file string, got []goldenPoint) {
	t.Helper()
	path := filepath.Join("testdata", file)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatalf("marshal golden: %v", err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
		t.Logf("rewrote %s with %d points", path, len(got))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s (run with -update to create it): %v", path, err)
	}
	var want []goldenPoint
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	wantByKey := make(map[string]goldenPoint, len(want))
	for _, p := range want {
		wantByKey[p.key()] = p
	}
	if len(got) != len(want) {
		t.Errorf("%s pins %d points, sweep produced %d (grid changed? rerun with -update and justify)",
			file, len(want), len(got))
	}
	for _, g := range got {
		w, ok := wantByKey[g.key()]
		if !ok {
			t.Errorf("%s: no pinned digest for %s", file, g.key())
			continue
		}
		if g.Digest != w.Digest {
			t.Errorf("%s: digest diverged: got %s, pinned %s — the engine's behaviour changed",
				g.key(), g.Digest, w.Digest)
		}
	}
}

// TestGoldenQuickGridDigests pins every (scheme, pattern, load) digest of
// the quick battery grid. Any cycle-timing or event-stream change in the
// engine fails here before it can reach cmd/verify.
func TestGoldenQuickGridDigests(t *testing.T) {
	checkGolden(t, "golden_quick.json", goldenQuickPoints(t, 1))
}

// TestGoldenChaosDigests pins every (scheme, fault class, rate) digest of
// the chaos battery: the fault schedule, recovery timers and watchdogs
// are all cycle-exact, so any drift in the recovery path fails here.
func TestGoldenChaosDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos golden sweep skipped in -short mode")
	}
	checkGolden(t, "golden_chaos.json", goldenChaosPoints(t, 1))
}

// TestGoldenSLODigests pins every (scheme, preset workload) digest of the
// "slo" grid — the workload grid PR 9 registered outside the pinned
// figures union. Non-stationary arrival schedules (burst phase cuts,
// flash plateaus, diurnal ramps) are cycle-exact, so any drift in the
// workload layer's phase arithmetic fails here.
func TestGoldenSLODigests(t *testing.T) {
	if testing.Short() {
		t.Skip("slo golden sweep skipped in -short mode")
	}
	checkGolden(t, "golden_slo.json", goldenSLOPoints(t, 1))
}
