package check

import (
	"fmt"
	"reflect"

	"photon/internal/core"
	"photon/internal/farm"
	"photon/internal/sim"
	"photon/internal/stats"
	"photon/internal/traffic"
)

// WorkloadBattery configures the workload differential battery: every
// preset workload is recorded once as a tape and verified under every
// scheme — determinism across replays, tape faithfulness against the
// live injector, and packet conservation audited at every schedule phase
// boundary, not just at the end of the run. It is the Workload-layer
// analogue of Battery, which owns the fixed-rate Bernoulli grids.
type WorkloadBattery struct {
	// Schemes under test (default: all of them).
	Schemes []core.Scheme
	// Workloads under test (default: traffic.PresetWorkloads).
	Workloads []traffic.WorkloadPreset
	// Pattern draws destinations (default: uniform random).
	Pattern traffic.Pattern
	// Window is the per-run simulation window.
	Window sim.Window
	// Seed drives tape generation and network stochastics.
	Seed uint64
	// DrainLimit bounds the extra post-window drain before the final
	// audit.
	DrainLimit int64
	// Parallel bounds concurrent point verifications (0 = GOMAXPROCS).
	Parallel int
}

// QuickWorkloadBattery is the CI-sized workload battery: all schemes over
// every preset workload on a short window. A few seconds end to end.
func QuickWorkloadBattery(seed uint64) WorkloadBattery {
	return WorkloadBattery{
		Schemes:    core.Schemes(),
		Workloads:  traffic.PresetWorkloads(),
		Pattern:    traffic.UniformRandom{},
		Window:     sim.Window{Warmup: 300, Measure: 1200, Drain: 1000},
		Seed:       seed,
		DrainLimit: 20_000,
	}
}

// WorkloadPointReport is the verdict for one (scheme, workload) pair.
type WorkloadPointReport struct {
	Scheme   core.Scheme
	Workload string // preset name
	Spec     string // canonical workload spec

	Digest uint64
	Events uint64

	Injected  int64
	Delivered int64
	Backlog   int

	// Deterministic: two replays of the workload tape produced identical
	// core.Result structs (digest included).
	Deterministic bool
	// TapeFaithful: a live workload injector matched the tape replay's
	// digest.
	TapeFaithful bool
	// Boundaries counts the schedule phase boundaries the conservation
	// auditor checked mid-run (the final post-drain audit is extra).
	Boundaries int
	// Conservation holds the first auditor failure ("" = pass).
	Conservation string

	Detail string
}

// Pass reports whether every per-point check succeeded.
func (p WorkloadPointReport) Pass() bool {
	return p.Deterministic && p.TapeFaithful && p.Conservation == ""
}

// WorkloadReport is the outcome of a workload battery run.
type WorkloadReport struct {
	Points []WorkloadPointReport
	Cross  []Check
}

// Pass reports whether the whole battery is green.
func (r *WorkloadReport) Pass() bool {
	for _, p := range r.Points {
		if !p.Pass() {
			return false
		}
	}
	for _, c := range r.Cross {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Failures returns every failing point and cross check, flattened into
// printable lines.
func (r *WorkloadReport) Failures() []string {
	var out []string
	for _, p := range r.Points {
		if !p.Pass() {
			out = append(out, fmt.Sprintf("%s %s: %s", p.Scheme, p.Workload, p.Detail))
		}
	}
	for _, c := range r.Cross {
		if !c.Pass {
			out = append(out, fmt.Sprintf("%s: %s", c.Name, c.Detail))
		}
	}
	return out
}

// Table renders the per-point verdicts for cmd/verify.
func (r *WorkloadReport) Table() *stats.Table {
	t := stats.NewTable("workload differential battery",
		"scheme", "workload", "digest", "events", "injected", "delivered", "backlog", "phases", "determ", "tape", "conserve")
	mark := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAIL"
	}
	for _, p := range r.Points {
		t.AddRow(p.Scheme.String(), p.Workload,
			fmt.Sprintf("%016x", p.Digest), p.Events, p.Injected, p.Delivered, p.Backlog, p.Boundaries,
			mark(p.Deterministic), mark(p.TapeFaithful), mark(p.Conservation == ""))
	}
	return t
}

// RunWorkloads executes the workload battery: per-point determinism,
// tape faithfulness and phase-boundary conservation under farm.Do
// supervision, then the cross-scheme differential comparison over each
// shared tape.
func RunWorkloads(b WorkloadBattery) (*WorkloadReport, error) {
	if len(b.Schemes) == 0 {
		b.Schemes = core.Schemes()
	}
	if len(b.Workloads) == 0 {
		b.Workloads = traffic.PresetWorkloads()
	}
	if b.Pattern == nil {
		b.Pattern = traffic.UniformRandom{}
	}
	if b.Window.Total() == 0 {
		b.Window = QuickWorkloadBattery(b.Seed).Window
	}
	workers := b.Parallel // farm.Do treats <= 0 as GOMAXPROCS

	// One tape per workload; every scheme replays the same tape, so the
	// cross-scheme comparison is over byte-identical offered traffic.
	type job struct {
		preset   traffic.WorkloadPreset
		workload *traffic.Workload
		tape     *traffic.Tape
	}
	cfg0 := core.DefaultConfig(b.Schemes[0])
	span := b.Window.Warmup + b.Window.Measure
	var jobs []job
	for i, p := range b.Workloads {
		w, err := traffic.ParseWorkload(p.Spec)
		if err != nil {
			return nil, fmt.Errorf("check: workload %s: %w", p.Name, err)
		}
		tape, err := traffic.RecordWorkloadTape(w, b.Pattern, cfg0.Nodes, cfg0.CoresPerNode,
			sim.DeriveSeed(b.Seed, uint64(i)), span)
		if err != nil {
			return nil, fmt.Errorf("check: recording %s tape: %w", p.Name, err)
		}
		for range b.Schemes {
			jobs = append(jobs, job{preset: p, workload: w, tape: tape})
		}
	}

	reports := make([]WorkloadPointReport, len(jobs))
	errs := farm.Do(len(jobs), workers, func(i int) error {
		var err error
		j := jobs[i]
		s := b.Schemes[i%len(b.Schemes)]
		reports[i], err = verifyWorkloadPoint(b, s, j.preset, j.workload, j.tape)
		return err
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("check: %s %s: %w",
				b.Schemes[i%len(b.Schemes)], jobs[i].preset.Name, err)
		}
	}
	rep := &WorkloadReport{Points: reports}

	// Differential comparison over each shared tape: every scheme must
	// inject exactly the tape's entries, and fully drained schemes must
	// deliver exactly the same packet count.
	for wi, p := range b.Workloads {
		group := reports[wi*len(b.Schemes) : (wi+1)*len(b.Schemes)]
		c := Check{Name: fmt.Sprintf("workload differential %s", p.Name), Pass: true}
		wantInjected := int64(len(jobs[wi*len(b.Schemes)].tape.Entries))
		for _, r := range group {
			if r.Injected != wantInjected {
				c.Pass = false
				c.Detail = fmt.Sprintf("%s injected %d, tape holds %d entries", r.Scheme, r.Injected, wantInjected)
			}
		}
		for i := 1; i < len(group); i++ {
			a, bb := group[0], group[i]
			if a.Backlog == 0 && bb.Backlog == 0 && a.Delivered != bb.Delivered {
				c.Pass = false
				c.Detail = fmt.Sprintf("%s delivered %d but %s delivered %d on the same tape",
					a.Scheme, a.Delivered, bb.Scheme, bb.Delivered)
			}
		}
		rep.Cross = append(rep.Cross, c)
	}
	return rep, nil
}

// verifyWorkloadPoint runs one (scheme, workload) pair through the
// per-point checks.
func verifyWorkloadPoint(b WorkloadBattery, s core.Scheme, preset traffic.WorkloadPreset, w *traffic.Workload, tape *traffic.Tape) (WorkloadPointReport, error) {
	p := WorkloadPointReport{Scheme: s, Workload: preset.Name, Spec: w.String()}

	runTape := func() (core.Result, *core.Network, error) {
		cfg := core.DefaultConfig(s)
		cfg.Seed = b.Seed
		net, err := core.NewNetwork(cfg, b.Window)
		if err != nil {
			return core.Result{}, nil, err
		}
		res, err := tape.Run(net)
		return res, net, err
	}

	res1, _, err := runTape()
	if err != nil {
		return p, err
	}
	res2, _, err := runTape()
	if err != nil {
		return p, err
	}
	p.Digest = res2.Digest
	p.Events = res2.DigestEvents
	p.Deterministic = reflect.DeepEqual(res1, res2)
	if !p.Deterministic {
		p.Detail = fmt.Sprintf("repeat runs diverged: digest %016x vs %016x", res1.Digest, res2.Digest)
	}

	// Live-injector equivalence and phase-boundary conservation in one
	// run: drive the network cycle by cycle with a live workload injector
	// and audit the packet-conservation identities at every resolved
	// schedule boundary — the audits are read-only, so the run's digest
	// must still match the tape replay's.
	cfg := core.DefaultConfig(s)
	cfg.Seed = b.Seed
	net, err := core.NewNetwork(cfg, b.Window)
	if err != nil {
		return p, err
	}
	inj, err := traffic.NewWorkloadInjector(w, b.Pattern, cfg.Nodes, cfg.CoresPerNode, tape.Seed)
	if err != nil {
		return p, err
	}
	span := b.Window.Warmup + b.Window.Measure
	inj.Prepare(span)
	bounds := inj.Boundaries()
	next := 0
	for cyc := int64(0); cyc < span; cyc++ {
		inj.Tick(net)
		net.Step()
		// <= rather than ==: a schedule may resolve degenerate segments to
		// zero cycles, stacking several boundaries on one cycle.
		for next < len(bounds) && bounds[next] <= cyc+1 {
			if err := AuditNetwork(net); err != nil && p.Conservation == "" {
				p.Conservation = fmt.Sprintf("phase boundary %d (cycle %d): %v", next+1, cyc+1, err)
			}
			p.Boundaries++
			next++
		}
	}
	net.RunCycles(b.Window.Drain)
	liveRes := net.Result()
	p.TapeFaithful = liveRes.Digest == res2.Digest
	if !p.TapeFaithful && p.Detail == "" {
		p.Detail = fmt.Sprintf("live injector digest %016x != tape digest %016x", liveRes.Digest, res2.Digest)
	}

	// Final conservation audits: after the window, then after a bounded
	// extra drain (sub-saturation runs reach zero backlog; past-saturation
	// runs stay backlogged and the identities must hold anyway).
	if err := AuditNetwork(net); err != nil && p.Conservation == "" {
		p.Conservation = err.Error()
	}
	net.Drain(b.DrainLimit)
	if err := AuditNetwork(net); err != nil && p.Conservation == "" {
		p.Conservation = err.Error()
	}
	if p.Conservation != "" && p.Detail == "" {
		p.Detail = p.Conservation
	}

	acct := net.Accounting()
	p.Injected = acct.Injected
	p.Delivered = acct.Delivered
	p.Backlog = acct.Backlog
	return p, nil
}
