// Package flow implements the flow-control side of the schemes: the two
// credit-accounting disciplines of the token-based baselines (credits
// piggybacked on a relayed token for Token Channel; one-credit-per-token
// for Token Slot) and the sender-side handshake bookkeeping shared by GHS
// and DHS.
//
// Both credit types maintain an explicit conservation invariant — every
// buffer slot of the home node is, at all times, exactly one of: free at
// home, riding a token, promised to an in-flight packet, or occupied. The
// network asserts the invariant every cycle in race-detector builds and the
// property tests hammer it with random event sequences; a violated
// invariant is how double-spent credits (the classic flow-control bug)
// surface.
package flow

import "fmt"

// RelayedCredits is Token Channel's credit discipline: the home node's free
// buffer count rides on the single arbitration token, and buffer slots
// freed at the home can only rejoin the token when it sweeps past home
// (paper Fig. 2(a) — the source of the 17-cycle pathology).
type RelayedCredits struct {
	depth    int
	onToken  int // credits currently riding the token
	freed    int // freed at home, waiting for the token to pass
	inFlight int // packets sent under a credit, not yet arrived
	occupied int // home buffer slots in use
}

// NewRelayedCredits starts with all depth credits riding the token (it is
// emitted by home fully charged).
func NewRelayedCredits(depth int) *RelayedCredits {
	if depth < 1 {
		panic("flow: credit depth must be >= 1")
	}
	return &RelayedCredits{depth: depth, onToken: depth}
}

// OnToken reports the credits currently available to token holders.
func (c *RelayedCredits) OnToken() int { return c.onToken }

// Depth returns the total buffer depth.
func (c *RelayedCredits) Depth() int { return c.depth }

// Spend consumes one token credit for a packet launch; it reports false
// when the token is empty (the holder must not send).
func (c *RelayedCredits) Spend() bool {
	if c.onToken == 0 {
		return false
	}
	c.onToken--
	c.inFlight++
	return true
}

// Arrive accounts a packet landing in the home buffer. The credit
// discipline guarantees space; an error here is a protocol bug.
func (c *RelayedCredits) Arrive() error {
	if c.inFlight == 0 {
		return fmt.Errorf("flow: arrival without a matching in-flight credit")
	}
	c.inFlight--
	c.occupied++
	if c.occupied > c.depth {
		return fmt.Errorf("flow: home buffer overflow (%d > depth %d) under credit flow control", c.occupied, c.depth)
	}
	return nil
}

// Eject frees one buffer slot at home; the credit waits in the freed pool
// until the token passes.
func (c *RelayedCredits) Eject() error {
	if c.occupied == 0 {
		return fmt.Errorf("flow: eject from empty home buffer")
	}
	c.occupied--
	c.freed++
	return nil
}

// PassHome reimburses the token with every credit freed since its last
// visit; called when the token sweeps past the home position.
func (c *RelayedCredits) PassHome() {
	c.onToken += c.freed
	c.freed = 0
}

// Occupied reports home-buffer occupancy.
func (c *RelayedCredits) Occupied() int { return c.occupied }

// Invariant verifies credit conservation.
func (c *RelayedCredits) Invariant() error {
	if sum := c.onToken + c.freed + c.inFlight + c.occupied; sum != c.depth {
		return fmt.Errorf("flow: relayed credit leak: token %d + freed %d + inflight %d + occupied %d = %d, want %d",
			c.onToken, c.freed, c.inFlight, c.occupied, sum, c.depth)
	}
	if c.onToken < 0 || c.freed < 0 || c.inFlight < 0 || c.occupied < 0 {
		return fmt.Errorf("flow: negative relayed credit component: %+v", *c)
	}
	return nil
}

// SlotCredits is Token Slot's credit discipline: each emitted token carries
// exactly one credit. The home may only emit a token when it holds a free
// credit; tokens that complete the loop uncaptured return their credit;
// captured tokens convert the credit into an in-flight packet reservation.
type SlotCredits struct {
	depth     int
	free      int // credits held by home, available to mint tokens
	onTokens  int // credits riding live tokens
	inFlight  int // credits attached to in-flight packets
	occupied  int // home buffer slots in use
	starvedAt int64
}

// NewSlotCredits starts with all credits free at home.
func NewSlotCredits(depth int) *SlotCredits {
	if depth < 1 {
		panic("flow: credit depth must be >= 1")
	}
	return &SlotCredits{depth: depth, free: depth}
}

// Depth returns the total buffer depth.
func (c *SlotCredits) Depth() int { return c.depth }

// CanEmit reports whether home holds a credit to mint a token with.
func (c *SlotCredits) CanEmit() bool { return c.free > 0 }

// Emit mints a token: one free credit starts riding it. Callers gate on
// CanEmit; emitting while starved is a protocol bug.
func (c *SlotCredits) Emit() {
	if c.free == 0 {
		panic("flow: token slot emitted without a free credit")
	}
	c.free--
	c.onTokens++
}

// Capture converts a riding credit into an in-flight packet reservation.
func (c *SlotCredits) Capture() {
	if c.onTokens == 0 {
		panic("flow: token slot captured with no riding credit")
	}
	c.onTokens--
	c.inFlight++
}

// Expire returns an uncaptured token's credit to the free pool.
func (c *SlotCredits) Expire() {
	if c.onTokens == 0 {
		panic("flow: token slot expired with no riding credit")
	}
	c.onTokens--
	c.free++
}

// Arrive accounts a packet landing in the home buffer.
func (c *SlotCredits) Arrive() error {
	if c.inFlight == 0 {
		return fmt.Errorf("flow: arrival without a matching slot credit")
	}
	c.inFlight--
	c.occupied++
	if c.occupied > c.depth {
		return fmt.Errorf("flow: home buffer overflow (%d > depth %d) under slot credits", c.occupied, c.depth)
	}
	return nil
}

// Eject frees one buffer slot; the credit is immediately available for a
// new token (unlike RelayedCredits there is no wait for a token pass —
// distributed arbitration's advantage).
func (c *SlotCredits) Eject() error {
	if c.occupied == 0 {
		return fmt.Errorf("flow: eject from empty home buffer")
	}
	c.occupied--
	c.free++
	return nil
}

// Occupied reports home-buffer occupancy.
func (c *SlotCredits) Occupied() int { return c.occupied }

// Invariant verifies credit conservation.
func (c *SlotCredits) Invariant() error {
	if sum := c.free + c.onTokens + c.inFlight + c.occupied; sum != c.depth {
		return fmt.Errorf("flow: slot credit leak: free %d + tokens %d + inflight %d + occupied %d = %d, want %d",
			c.free, c.onTokens, c.inFlight, c.occupied, sum, c.depth)
	}
	if c.free < 0 || c.onTokens < 0 || c.inFlight < 0 || c.occupied < 0 {
		return fmt.Errorf("flow: negative slot credit component: %+v", *c)
	}
	return nil
}
