package flow

import (
	"strings"
	"testing"
)

func TestOccupiedAccessors(t *testing.T) {
	rc := NewRelayedCredits(3)
	rc.Spend()
	if err := rc.Arrive(); err != nil {
		t.Fatal(err)
	}
	if rc.Occupied() != 1 {
		t.Fatalf("relayed Occupied = %d", rc.Occupied())
	}
	sc := NewSlotCredits(3)
	sc.Emit()
	sc.Capture()
	if err := sc.Arrive(); err != nil {
		t.Fatal(err)
	}
	if sc.Occupied() != 1 {
		t.Fatalf("slot Occupied = %d", sc.Occupied())
	}
}

// TestInvariantMessages corrupts the counters directly and checks the
// invariant errors are informative for both failure classes.
func TestInvariantMessages(t *testing.T) {
	rc := NewRelayedCredits(2)
	rc.onToken = 5 // corrupt: sum mismatch
	if err := rc.Invariant(); err == nil || !strings.Contains(err.Error(), "leak") {
		t.Fatalf("relayed sum corruption not reported: %v", err)
	}
	rc2 := NewRelayedCredits(2)
	rc2.onToken = -1
	rc2.freed = 3 // sum ok (=2), component negative
	if err := rc2.Invariant(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("relayed negative component not reported: %v", err)
	}
	sc := NewSlotCredits(2)
	sc.free = 9
	if err := sc.Invariant(); err == nil || !strings.Contains(err.Error(), "leak") {
		t.Fatalf("slot sum corruption not reported: %v", err)
	}
	sc2 := NewSlotCredits(2)
	sc2.free = -1
	sc2.onTokens = 3
	if err := sc2.Invariant(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("slot negative component not reported: %v", err)
	}
}

// TestBufferOverflowDetected: Arrive beyond depth must error, for both
// disciplines, even when the in-flight counter was (wrongly) inflated.
func TestBufferOverflowDetected(t *testing.T) {
	rc := NewRelayedCredits(1)
	rc.inFlight = 2 // simulate a double-spend bug upstream
	if err := rc.Arrive(); err != nil {
		t.Fatal(err)
	}
	if err := rc.Arrive(); err == nil {
		t.Fatal("relayed overflow not detected")
	}
	sc := NewSlotCredits(1)
	sc.inFlight = 2
	if err := sc.Arrive(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Arrive(); err == nil {
		t.Fatal("slot overflow not detected")
	}
}

func TestSlotCreditsDepthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero slot depth did not panic")
		}
	}()
	NewSlotCredits(0)
}
