package flow

import (
	"testing"
	"testing/quick"
)

func TestRelayedCreditsLifecycle(t *testing.T) {
	c := NewRelayedCredits(4)
	if c.OnToken() != 4 {
		t.Fatalf("fresh token carries %d credits, want 4", c.OnToken())
	}
	// Spend two, deliver, eject, reimburse.
	if !c.Spend() || !c.Spend() {
		t.Fatal("spending with credits available failed")
	}
	if c.OnToken() != 2 {
		t.Fatalf("OnToken after two spends = %d", c.OnToken())
	}
	if err := c.Arrive(); err != nil {
		t.Fatal(err)
	}
	if err := c.Eject(); err != nil {
		t.Fatal(err)
	}
	// The freed credit is NOT yet on the token — the paper's pathology.
	if c.OnToken() != 2 {
		t.Fatalf("credit boarded the token before a home pass")
	}
	c.PassHome()
	if c.OnToken() != 3 {
		t.Fatalf("OnToken after home pass = %d, want 3", c.OnToken())
	}
	if err := c.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestRelayedCreditsExhaustion(t *testing.T) {
	c := NewRelayedCredits(2)
	c.Spend()
	c.Spend()
	if c.Spend() {
		t.Fatal("spend from an empty token succeeded")
	}
}

func TestRelayedCreditsErrors(t *testing.T) {
	c := NewRelayedCredits(2)
	if err := c.Arrive(); err == nil {
		t.Fatal("arrival without in-flight credit accepted")
	}
	if err := c.Eject(); err == nil {
		t.Fatal("eject from empty buffer accepted")
	}
}

func TestRelayedCreditsPanicOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero depth did not panic")
		}
	}()
	NewRelayedCredits(0)
}

func TestSlotCreditsLifecycle(t *testing.T) {
	c := NewSlotCredits(3)
	if !c.CanEmit() {
		t.Fatal("fresh pool cannot emit")
	}
	c.Emit()
	c.Emit()
	c.Emit()
	if c.CanEmit() {
		t.Fatal("emitted past the depth")
	}
	c.Capture() // one token grabbed
	c.Expire()  // one came back unused
	if !c.CanEmit() {
		t.Fatal("expired token's credit not reusable")
	}
	if err := c.Arrive(); err != nil {
		t.Fatal(err)
	}
	if err := c.Eject(); err != nil {
		t.Fatal(err)
	}
	if err := c.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestSlotCreditsPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"emit-empty":    func() { c := NewSlotCredits(1); c.Emit(); c.Emit() },
		"capture-empty": func() { c := NewSlotCredits(1); c.Capture() },
		"expire-empty":  func() { c := NewSlotCredits(1); c.Expire() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestRelayedCreditsConservationProperty hammers the relayed-credit state
// machine with random legal event sequences and checks the conservation
// invariant after every step — the property that guarantees the home
// buffer can never overflow under Token Channel.
func TestRelayedCreditsConservationProperty(t *testing.T) {
	f := func(depthRaw uint8, ops []uint8) bool {
		depth := int(depthRaw%8) + 1
		c := NewRelayedCredits(depth)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				c.Spend() // may fail; fine
			case 1:
				if c.inFlight > 0 {
					if err := c.Arrive(); err != nil {
						return false
					}
				}
			case 2:
				if c.occupied > 0 {
					if err := c.Eject(); err != nil {
						return false
					}
				}
			case 3:
				c.PassHome()
			}
			if err := c.Invariant(); err != nil {
				return false
			}
			if c.occupied > depth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSlotCreditsConservationProperty is the same property for Token Slot.
func TestSlotCreditsConservationProperty(t *testing.T) {
	f := func(depthRaw uint8, ops []uint8) bool {
		depth := int(depthRaw%8) + 1
		c := NewSlotCredits(depth)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				if c.CanEmit() {
					c.Emit()
				}
			case 1:
				if c.onTokens > 0 {
					if op%2 == 0 {
						c.Capture()
					} else {
						c.Expire()
					}
				}
			case 2:
				if c.inFlight > 0 {
					if err := c.Arrive(); err != nil {
						return false
					}
				}
			case 3:
				if c.occupied > 0 {
					if err := c.Eject(); err != nil {
						return false
					}
				}
			}
			if err := c.Invariant(); err != nil {
				return false
			}
			if c.occupied > depth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthAccessors(t *testing.T) {
	if NewRelayedCredits(7).Depth() != 7 || NewSlotCredits(9).Depth() != 9 {
		t.Fatal("Depth accessors wrong")
	}
}
