// Package twin is the analytical queueing twin of the cycle engine: a
// closed-form model of each scheme family's per-phase mean latency under
// uniform-random Bernoulli traffic, validated against the simulator's
// exact span attribution (exp.ExactBreakdown) by check.RunTwin.
//
// The twin answers in microseconds what a sweep answers in minutes —
// "what offered load can N nodes sustain under scheme X within a latency
// budget" — and doubles as a standing regression over the engine: any
// change that shifts real phase latencies away from the model fails the
// differential battery loudly.
//
// # Model
//
// A packet's end-to-end latency decomposes into the exact span phases of
// internal/ptrace. The twin predicts each phase's mean from the scheme's
// registry traits and the ring geometry:
//
//   - pipeline: the electrical injection pipeline, RouterPipeline cycles
//     exactly (UR traffic never delivers node-locally).
//   - queue: discrete-time M/G/1 (Geo/G/1) waiting time of the per-core
//     output queue, Wq = λ(E[S²]-E[S]) / (2(1-λE[S])), where the service
//     time S is the head-of-line residency of the scheme family.
//   - token-wait: the family's arbitration model (see below).
//   - flight: the geometric mean flight E[R+1-Segment(p)] over uniform
//     sender offsets, plus a contention drift term for relayed global
//     tokens (capture sites cluster just downstream of the previous
//     release as load grows).
//   - hs-wait / retx-wait / circulation: zero below saturation — the
//     paper keeps drop-and-retransmission rates under 1%, and the twin's
//     validity envelope (utilization <= 0.7) is well inside that regime.
//   - eject: EjectLatency cycles exactly (the ring lands at most one
//     packet per channel per cycle and the home buffer drains one per
//     cycle, so the buffer never queues on fault-free UR runs).
//
// Head-of-line service times per family:
//
//   - credit schemes and setaside handshake schemes free the head at
//     launch: S = W_tok + 1.
//   - hold-head handshake schemes pin the head until its ACK returns:
//     S = W_tok + AckDelay (+1 for global schemes, whose freed queue must
//     re-capture the relayed token through a fresh arbitration pass).
//
// Token-wait models:
//
//   - relayed global token: W = (R+1)/2 residual wait for the free token
//     plus an M/G/1-style contention term ((R+2)/2)·ρ/(1-ρ) in the
//     channel load ρ; hold-head schemes self-throttle (a blocked head
//     does not compete for the token), which the twin captures with a
//     fixed point in the requester occupancy.
//   - distributed slot tokens: one fresh token per cycle means the
//     zero-load wait is the single-cycle phase alignment, plus a small
//     calibrated contention slope (slot capture conflicts within a
//     segment).
//
// Saturation (per-core rate the scheme can sustain):
//
//   - credit-global: credits are reimbursed only when the token passes
//     home, so a full loop moves at most B credits and spends
//     R + B + (E[Seg]-1) cycles doing it.
//   - credit-slot: a credit's turnaround is launch-to-eject, R+2 cycles,
//     degraded by a calibrated token-expiry/fairness efficiency.
//   - handshake hold-head: the queue's own stability bound 1/E[S] at the
//     saturated token wait.
//   - handshake-global setaside: the relayed token's capture bandwidth,
//     per/(per + R + 1) per channel.
//   - handshake-slot setaside and circulation: the receiver buffer's
//     drop-retransmit equilibrium B/(R+2) per channel.
//
// Calibration: the structural forms above are derived from the geometry;
// the three dimensionless slopes (slot contention, global flight drift,
// slot-token efficiency) are calibrated once against the simulator at the
// paper's default configuration and recorded here as constants. The
// validity envelope and the per-phase error bands are documented in
// DESIGN.md ("Analytical twin") and enforced by check.RunTwin.
package twin

import (
	"fmt"
	"math"

	"photon/internal/core"
	"photon/internal/ptrace"
	"photon/internal/router"
)

// family is the analytical model class of a scheme. It is derived from
// the scheme's registry traits (arbitration grain, flow control, send
// policy), not from the family string, so a newly registered scheme maps
// onto a model — or fails loudly — by its behaviour.
type family int

const (
	creditGlobal family = iota
	creditSlot
	handshakeGlobalHold
	handshakeGlobalSetaside
	handshakeSlotHold
	handshakeSlotSetaside
	slotCirculation
)

func (f family) String() string {
	switch f {
	case creditGlobal:
		return "credit-global"
	case creditSlot:
		return "credit-slot"
	case handshakeGlobalHold:
		return "handshake-global-hold"
	case handshakeGlobalSetaside:
		return "handshake-global-setaside"
	case handshakeSlotHold:
		return "handshake-slot-hold"
	case handshakeSlotSetaside:
		return "handshake-slot-setaside"
	case slotCirculation:
		return "slot-circulation"
	default:
		return "family?"
	}
}

// Calibrated dimensionless constants (paper defaults: 64 nodes x 4 cores,
// R=8, 8 credits, 4 setaside slots). Each is tied to one structural term;
// see the package comment for the derivation sketch.
const (
	// globalContention scales the relayed token's M/G/1 contention term:
	// W = (R+1)/2 + globalContention·(R+2)/2 · ρ/(1-ρ).
	globalContention = 1.0
	// setasideTokenDamping discounts the channel load a setaside-global
	// scheme offers to its token (batched holds shorten the scan).
	setasideTokenDamping = 0.9
	// slotContentionSlope is the per-(R+2)-cycle contention slope of
	// distributed slot tokens: W = 1 + slack + slope·(R+2)·ρ/(1-ρ).
	slotContentionSlope = 0.12
	// slotCreditSlack is the credit-slot zero-load wait above the single
	// phase-alignment cycle (emission gating on the credit return).
	slotCreditSlack = 0.1
	// holdHeadSlotBase and holdHeadSlotSlope model the hold-head slot
	// token wait, which *falls* with load: a growing share of launches are
	// follower promotions captured in the very cycle their ACK freed the
	// head. W = clamp(base - slope·ρ, min, base).
	holdHeadSlotBase  = 0.92
	holdHeadSlotSlope = 1.1
	holdHeadSlotMin   = 0.2
	// globalFlightDrift is the per-channel-load flight lengthening of
	// relayed-token schemes (captures cluster just downstream of the
	// previous release, where FlightToHome is longest).
	globalFlightDrift = 2.2
	// slotTokenEfficiency discounts the credit-slot turnaround capacity
	// for tokens that expire uncaptured and fairness yields.
	slotTokenEfficiency = 0.93
	// DivergenceUtilization is the utilization above which the twin
	// self-reports divergence: the closed forms assume queueing terms are
	// perturbations of the zero-load pipeline, which stops holding as the
	// knee approaches. check.RunTwin validates only below this; cmd/plan
	// falls back to simulation beyond it.
	DivergenceUtilization = 0.7
	// divergenceQueueRho is the per-queue occupancy that independently
	// trips the divergence flag (the Geo/G/1 denominator blows up).
	divergenceQueueRho = 0.85
)

// Model is the analytical twin of one (scheme, configuration) pair under
// uniform-random Bernoulli traffic.
type Model struct {
	scheme core.Scheme
	fam    family
	cfg    core.Config

	n, m, r, per int
	credits      int // BufferDepth: credit count / accept threshold
	setaside     int

	eSeg float64 // mean token segment index over uniform sender offsets
	f0   float64 // zero-load mean flight, R+1-eSeg
	sat  float64 // per-core saturation rate estimate
}

// New builds the twin for a scheme over an explicit configuration. The
// configuration must validate; the model reads its geometry (Nodes,
// CoresPerNode, RoundTrip), depths (BufferDepth, SetasideSize) and
// latencies (RouterPipeline, EjectLatency).
func New(scheme core.Scheme, cfg core.Config) (*Model, error) {
	cfg.Scheme = scheme
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, ok := core.LookupProtocol(scheme)
	if !ok {
		return nil, fmt.Errorf("twin: unknown scheme %d", int(scheme))
	}
	fam, err := classify(spec)
	if err != nil {
		return nil, err
	}
	m := &Model{
		scheme:   scheme,
		fam:      fam,
		cfg:      cfg,
		n:        cfg.Nodes,
		m:        cfg.CoresPerNode,
		r:        cfg.RoundTrip,
		per:      cfg.Nodes / cfg.RoundTrip,
		credits:  cfg.BufferDepth,
		setaside: cfg.SetasideSize,
	}
	// E[Segment(p)] over uniform sender offsets p in 1..N-1; the flight to
	// home is R+1-Segment(p) (ring.Geometry's collision-free invariant).
	sum := 0
	for p := 1; p < m.n; p++ {
		sum += (p + m.per - 1) / m.per
	}
	m.eSeg = float64(sum) / float64(m.n-1)
	m.f0 = float64(m.r+1) - m.eSeg
	m.sat = m.saturation()
	return m, nil
}

// NewDefault builds the twin for a scheme at the paper's default
// configuration — the configuration the calibration constants were fitted
// on and the differential battery validates.
func NewDefault(scheme core.Scheme) (*Model, error) {
	return New(scheme, core.DefaultConfig(scheme))
}

// classify maps registry traits onto an analytical family.
func classify(spec core.ProtocolSpec) (family, error) {
	switch {
	case spec.Circulating:
		return slotCirculation, nil
	case spec.CreditBased && spec.Global:
		return creditGlobal, nil
	case spec.CreditBased:
		return creditSlot, nil
	case spec.Handshake && spec.Global && spec.SendPolicy == router.HoldHead:
		return handshakeGlobalHold, nil
	case spec.Handshake && spec.Global && spec.SendPolicy == router.Setaside:
		return handshakeGlobalSetaside, nil
	case spec.Handshake && spec.SendPolicy == router.HoldHead:
		return handshakeSlotHold, nil
	case spec.Handshake && spec.SendPolicy == router.Setaside:
		return handshakeSlotSetaside, nil
	default:
		return 0, fmt.Errorf("twin: no analytical model for scheme %q (traits global=%v handshake=%v credit=%v policy=%v) — register one in internal/twin",
			spec.Name, spec.Global, spec.Handshake, spec.CreditBased, spec.SendPolicy)
	}
}

// Scheme returns the modelled scheme.
func (m *Model) Scheme() core.Scheme { return m.scheme }

// Family returns the analytical family name used for the scheme.
func (m *Model) Family() string { return m.fam.String() }

// SaturationRate returns the twin's estimate of the highest sustainable
// offered load, in packets/cycle/core — the denominator of Utilization.
func (m *Model) SaturationRate() float64 { return m.sat }

// ZeroLoadLatency returns the rate→0 limit of the predicted mean latency:
// pipeline + zero-load token wait + mean flight + eject.
func (m *Model) ZeroLoadLatency() float64 {
	return float64(m.cfg.RouterPipeline) + m.tokenWait(0) + m.f0 + float64(m.cfg.EjectLatency)
}

// Prediction is the twin's closed-form estimate at one offered load.
type Prediction struct {
	Scheme core.Scheme
	// Rate is the offered load in packets/cycle/core.
	Rate float64
	// Utilization is Rate over the twin's saturation-rate estimate.
	Utilization float64
	// ChannelLoad is the per-channel packet rate (Rate x CoresPerNode
	// under uniform-random traffic).
	ChannelLoad float64
	// Phases holds the predicted mean cycles per delivered packet by span
	// phase, aligned with ptrace.PhaseKind.
	Phases [ptrace.NumPhases]float64
	// Mean is the predicted mean end-to-end latency (the phase sum).
	Mean float64
	// P99 is a coarse tail estimate (see P99 docs); cmd/plan uses it with
	// the divergence fallback, the differential battery does not check it.
	P99 float64
	// QueueOccupancy is the predicted mean per-core queue+head occupancy
	// via Little's law on the queueing phases.
	QueueOccupancy float64
	// PacketsInFlight is Little's law applied to the whole network:
	// offered packets/cycle x mean latency.
	PacketsInFlight float64
	// Diverged reports that the operating point is outside the twin's
	// validity envelope (utilization or queue occupancy too close to the
	// knee); predictions are extrapolations there and cmd/plan switches
	// to simulation.
	Diverged bool
}

// Predict evaluates the twin at an offered load (packets/cycle/core).
func (m *Model) Predict(rate float64) Prediction {
	if rate < 0 {
		rate = 0
	}
	p := Prediction{
		Scheme:      m.scheme,
		Rate:        rate,
		ChannelLoad: rate * float64(m.m),
		Utilization: rate / m.sat,
	}
	wTok := m.tokenWait(rate)
	s, varS := m.service(wTok)
	rhoQ := rate * s
	wQ := geoG1Wait(rate, s, varS)
	p.Phases[ptrace.PhasePipeline] = float64(m.cfg.RouterPipeline)
	p.Phases[ptrace.PhaseQueue] = wQ
	p.Phases[ptrace.PhaseTokenWait] = wTok
	p.Phases[ptrace.PhaseFlight] = m.flight(rate)
	p.Phases[ptrace.PhaseEject] = float64(m.cfg.EjectLatency)
	// Handshake, retransmit and circulation phases are zero in the
	// validity envelope: the paper keeps drops under 1% below saturation,
	// and utilization 0.7 is well below the drop knee for every family.
	for _, k := range []ptrace.PhaseKind{ptrace.PhaseHandshakeWait, ptrace.PhaseRetxWait, ptrace.PhaseCirculation} {
		p.Phases[k] = 0
	}
	for _, v := range p.Phases {
		p.Mean += v
	}
	p.QueueOccupancy = rate * (wQ + s)
	p.PacketsInFlight = rate * float64(m.m*m.n) * p.Mean
	p.P99 = m.p99(p)
	p.Diverged = p.Utilization > DivergenceUtilization || rhoQ > divergenceQueueRho
	return p
}

// geoG1Wait is the discrete-time M/G/1 (Geo/G/1) mean waiting time for
// Bernoulli arrivals at rate lam and service S with variance varS:
// Wq = lam·(E[S²]-E[S]) / (2(1-ρ)). The denominator is floored so the
// prediction stays finite past the knee; Predict flags divergence well
// before the floor matters.
func geoG1Wait(lam, s, varS float64) float64 {
	rho := lam * s
	if rho > 0.97 {
		rho = 0.97
	}
	es2 := s*s + varS
	w := lam * (es2 - s) / (2 * (1 - rho))
	if w < 0 {
		return 0
	}
	return w
}

// tokenWait returns the family's mean token/arbitration wait at an
// offered load (head-ready to first launch).
func (m *Model) tokenWait(rate float64) float64 {
	r := float64(m.r)
	base := (r + 1) / 2
	cG := globalContention * (r + 2) / 2
	lch := rate * float64(m.m)
	switch m.fam {
	case creditGlobal:
		rho := clamp(lch, 0, 0.95)
		return base + cG*rho/(1-rho)
	case handshakeGlobalSetaside:
		rho := clamp(setasideTokenDamping*lch, 0, 0.95)
		return base + cG*rho/(1-rho)
	case handshakeGlobalHold:
		// Blocked heads do not compete for the token: the requester
		// occupancy x is the fraction of a head's service spent waiting
		// (W of W+AckDelay+1), launch-capped at saturation. Fixed point
		// in W, converges in a handful of iterations.
		leff := math.Min(lch, m.sat*float64(m.m))
		w := base
		for i := 0; i < 64; i++ {
			x := clamp(leff*w/(w+r+2), 0, 0.95)
			next := base + cG*x/(1-x)
			if math.Abs(next-w) < 1e-9 {
				w = next
				break
			}
			w = next
		}
		return w
	case creditSlot:
		rho := clamp(lch, 0, 0.95)
		return 1 + slotCreditSlack + slotContentionSlope*(r+2)*rho/(1-rho)
	case handshakeSlotHold:
		leff := math.Min(lch, m.sat*float64(m.m))
		return clamp(holdHeadSlotBase-holdHeadSlotSlope*leff, holdHeadSlotMin, holdHeadSlotBase)
	case handshakeSlotSetaside, slotCirculation:
		rho := clamp(lch, 0, 0.95)
		return 1 + slotContentionSlope*(r+2)*rho/(1-rho)*0.875
	default:
		panic("twin: tokenWait of unknown family")
	}
}

// service returns the head-of-line service time S (and its variance) for
// the per-core output queue, given the token wait.
func (m *Model) service(wTok float64) (s, varS float64) {
	r := float64(m.r)
	varGlobal := r * r / 12 // token phase alignment, uniform over the loop
	switch m.fam {
	case creditGlobal, handshakeGlobalSetaside:
		return wTok + 1, varGlobal
	case handshakeGlobalHold:
		// The head is pinned for its ACK round trip: S = W + AckDelay.
		// (The extra re-arbitration cycle a saturated queue pays appears
		// in the saturation bound, not here — below the knee the freed
		// head's successor usually arbitrates within the same wait.)
		return wTok + r + 1, varGlobal
	case handshakeSlotHold:
		return wTok + r + 1, 1
	case creditSlot, handshakeSlotSetaside, slotCirculation:
		return wTok + 1, 1
	default:
		panic("twin: service of unknown family")
	}
}

// flight returns the mean launch-to-home flight. Distributed slots are
// collision-free at the geometric mean; relayed global tokens drift
// upward with channel load as captures cluster downstream of the
// previous release.
func (m *Model) flight(rate float64) float64 {
	switch m.fam {
	case creditGlobal, handshakeGlobalSetaside, handshakeGlobalHold:
		lch := math.Min(rate, m.sat) * float64(m.m)
		return m.f0 + math.Min(globalFlightDrift*lch, 1.2)
	default:
		return m.f0
	}
}

// saturation estimates the per-core saturation rate from the family's
// binding capacity constraint (see the package comment).
func (m *Model) saturation() float64 {
	r := float64(m.r)
	mm := float64(m.m)
	b := float64(m.credits)
	switch m.fam {
	case creditGlobal:
		// B credits per token loop of R + B + (E[Seg]-1) cycles: the loop
		// flies R, holds B send cycles, and the last spent credit waits
		// the mean residual arc for reimbursement at home.
		return b / (r + b + m.eSeg - 1) / mm
	case creditSlot:
		// Credit turnaround launch-to-eject is R+2 cycles, discounted for
		// tokens that expire uncaptured and fairness yields.
		return slotTokenEfficiency * b / (r + 2) / mm
	case handshakeGlobalHold:
		// Queue stability at the saturated token wait: one packet per
		// W + AckDelay + 1 per queue. Joint fixed point with tokenWait.
		w := (r + 1) / 2
		for i := 0; i < 64; i++ {
			lch := mm / (w + r + 2)
			x := clamp(lch*w/(w+r+2), 0, 0.95)
			w = (r+1)/2 + globalContention*(r+2)/2*x/(1-x)
		}
		return 1 / (w + r + 2)
	case handshakeGlobalSetaside:
		// The relayed token's capture bandwidth: one capture per segment
		// arc, per/(per + R + 1) packets per channel cycle.
		return float64(m.per) / (float64(m.per) + r + 1) / mm
	case handshakeSlotHold:
		// Queue stability at the saturated (minimal) token wait.
		w := (holdHeadSlotBase + holdHeadSlotMin) / 2
		for i := 0; i < 32; i++ {
			lch := mm / (w + r + 1)
			w = clamp(holdHeadSlotBase-holdHeadSlotSlope*lch, holdHeadSlotMin, holdHeadSlotBase)
		}
		return 1 / (w + r + 1)
	case handshakeSlotSetaside, slotCirculation:
		// Receiver-buffer drop-retransmit equilibrium: the home buffer of
		// depth B drains one per cycle; past B/(R+2) per channel the
		// NACK-retransmit loop (R+2 cycles) stops adding goodput.
		sat := b / (r + 2) / mm
		if m.fam == handshakeSlotSetaside {
			// The setaside pool bounds un-ACKed launches per queue.
			if cap := float64(m.setaside) / (r + 2); cap < sat {
				sat = cap
			}
		}
		return sat
	default:
		panic("twin: saturation of unknown family")
	}
}

// p99 is a deliberately coarse tail estimate: the deterministic phases at
// their worst (full-loop flight), plus an exponential-tail multiplier on
// the variable waits. It exists for cmd/plan's budget queries — the
// differential battery validates means, not tails.
func (m *Model) p99(p Prediction) float64 {
	variable := p.Phases[ptrace.PhaseQueue] + p.Phases[ptrace.PhaseTokenWait]
	deterministic := p.Phases[ptrace.PhasePipeline] + p.Phases[ptrace.PhaseEject] + float64(m.r)
	return deterministic + variable*math.Log(100)
}

// CapacityResult is the answer to a capacity query: the highest offered
// load whose predicted latency stays within budget.
type CapacityResult struct {
	// Rate is the per-core offered load answer.
	Rate float64
	// Utilization is Rate over the saturation estimate.
	Utilization float64
	// Prediction is the twin's evaluation at Rate.
	Prediction Prediction
	// BudgetBound reports that the budget binds (false: the budget is
	// loose and Rate is the divergence-capped envelope edge).
	BudgetBound bool
}

// CapacityFor inverts the twin by bisection: the largest rate whose
// predicted mean (or p99, with p99 set) latency is within budget. The
// search is capped at the validity envelope's edge — if the budget is
// still met there, the answer carries Diverged=true and callers (cmd/plan)
// should refine by simulation.
func (m *Model) CapacityFor(budget float64, p99 bool) CapacityResult {
	metric := func(p Prediction) float64 {
		if p99 {
			return p.P99
		}
		return p.Mean
	}
	hi := m.sat * 0.999
	if metric(m.Predict(0)) > budget {
		p := m.Predict(0)
		return CapacityResult{Rate: 0, Prediction: p, BudgetBound: true}
	}
	if metric(m.Predict(hi)) <= budget {
		p := m.Predict(hi)
		return CapacityResult{Rate: hi, Utilization: p.Utilization, Prediction: p, BudgetBound: false}
	}
	lo := 0.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if metric(m.Predict(mid)) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	p := m.Predict(lo)
	return CapacityResult{Rate: lo, Utilization: p.Utilization, Prediction: p, BudgetBound: true}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
