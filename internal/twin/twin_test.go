package twin

import (
	"math"
	"strings"
	"testing"

	"photon/internal/core"
	"photon/internal/ptrace"
)

// TestEverySchemeHasAModel: the registry-to-family classification must
// cover every registered scheme — a new protocol either maps onto an
// existing analytical family by its traits or this fails until a model
// is added.
func TestEverySchemeHasAModel(t *testing.T) {
	for _, s := range core.Schemes() {
		m, err := NewDefault(s)
		if err != nil {
			t.Fatalf("NewDefault(%s): %v", s, err)
		}
		if m.Family() == "" || strings.Contains(m.Family(), "?") {
			t.Errorf("%s: unnamed family %q", s, m.Family())
		}
		if sat := m.SaturationRate(); sat <= 0 || sat >= 1 {
			t.Errorf("%s: saturation rate %.4f outside (0, 1)", s, sat)
		}
		if zl := m.ZeroLoadLatency(); zl <= 0 {
			t.Errorf("%s: zero-load latency %.2f not positive", s, zl)
		}
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := core.DefaultConfig(core.DHS)
	cfg.Nodes = 0
	if _, err := New(core.DHS, cfg); err == nil {
		t.Fatal("New accepted a config with zero nodes")
	}
}

// TestMeanMonotoneInLoad: predicted mean latency must be nondecreasing
// in offered load over the whole pre-saturation range — queueing can
// only hurt. (Individual phases need not be monotone: hold-head slot
// token wait genuinely falls with load; the composition must not.)
func TestMeanMonotoneInLoad(t *testing.T) {
	for _, s := range core.Schemes() {
		m, err := NewDefault(s)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for i := 0; i <= 90; i++ {
			rate := float64(i) / 100 * m.SaturationRate()
			mean := m.Predict(rate).Mean
			if mean < prev-1e-9 {
				t.Errorf("%s: mean fell from %.4f to %.4f at rate %.5f", s, prev, mean, rate)
			}
			prev = mean
		}
	}
}

// TestZeroLoadConvergence: as rate → 0 the prediction must converge to
// the zero-load pipeline latency — pipeline + zero-load token wait +
// mean flight + eject, with every queueing term vanishing.
func TestZeroLoadConvergence(t *testing.T) {
	for _, s := range core.Schemes() {
		m, err := NewDefault(s)
		if err != nil {
			t.Fatal(err)
		}
		p := m.Predict(1e-12)
		if math.Abs(p.Mean-m.ZeroLoadLatency()) > 1e-6 {
			t.Errorf("%s: Predict(1e-12).Mean = %.6f, ZeroLoadLatency = %.6f", s, p.Mean, m.ZeroLoadLatency())
		}
		if p.Phases[ptrace.PhaseQueue] > 1e-6 {
			t.Errorf("%s: queue wait %.6f at vanishing load", s, p.Phases[ptrace.PhaseQueue])
		}
		cfg := core.DefaultConfig(s)
		if got := p.Phases[ptrace.PhasePipeline]; got != float64(cfg.RouterPipeline) {
			t.Errorf("%s: pipeline %.2f != RouterPipeline %d", s, got, cfg.RouterPipeline)
		}
		if got := p.Phases[ptrace.PhaseEject]; got != float64(cfg.EjectLatency) {
			t.Errorf("%s: eject %.2f != EjectLatency %d", s, got, cfg.EjectLatency)
		}
	}
}

// TestDivergesBeforeSaturation: the self-reported divergence flag must
// trip strictly before utilization 1.0 — the planner's guarantee that it
// never trusts a closed form at the knee — and must not trip inside the
// validated envelope (utilization <= 0.5).
func TestDivergesBeforeSaturation(t *testing.T) {
	for _, s := range core.Schemes() {
		m, err := NewDefault(s)
		if err != nil {
			t.Fatal(err)
		}
		if p := m.Predict(0.5 * m.SaturationRate()); p.Diverged {
			t.Errorf("%s: diverged inside the validated envelope (U=0.5)", s)
		}
		// Find the first diverged point on a fine grid; it must exist below
		// utilization 1.0.
		tripped := false
		for i := 1; i < 100; i++ {
			u := float64(i) / 100
			if m.Predict(u * m.SaturationRate()).Diverged {
				tripped = true
				if u >= 1.0 {
					t.Errorf("%s: divergence first tripped at U=%.2f", s, u)
				}
				break
			}
		}
		if !tripped {
			t.Errorf("%s: divergence flag never tripped below saturation", s)
		}
		if !m.Predict(0.999 * m.SaturationRate()).Diverged {
			t.Errorf("%s: not diverged at 0.999x saturation", s)
		}
	}
}

// TestLittlesLaw: the model's own outputs must satisfy L = λW exactly —
// PacketsInFlight is offered packets/cycle times mean latency, and
// QueueOccupancy is the per-core arrival rate times the time spent in
// queue + head-of-line service.
func TestLittlesLaw(t *testing.T) {
	for _, s := range core.Schemes() {
		m, err := NewDefault(s)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(s)
		for _, u := range []float64{0.1, 0.3, 0.5, 0.65} {
			rate := u * m.SaturationRate()
			p := m.Predict(rate)
			lambda := rate * float64(cfg.Nodes*cfg.CoresPerNode)
			if want := lambda * p.Mean; math.Abs(p.PacketsInFlight-want) > 1e-9*math.Max(1, want) {
				t.Errorf("%s U=%.2f: PacketsInFlight %.6f != λW %.6f", s, u, p.PacketsInFlight, want)
			}
			if p.QueueOccupancy <= 0 {
				t.Errorf("%s U=%.2f: nonpositive queue occupancy %.6f", s, u, p.QueueOccupancy)
			}
			// Occupancy must also be consistent with Little's law on the
			// queueing subsystem: occupancy / rate = queue wait + service,
			// which is at least the queue wait phase.
			if w := p.QueueOccupancy / rate; w < p.Phases[ptrace.PhaseQueue] {
				t.Errorf("%s U=%.2f: occupancy implies wait %.4f below queue phase %.4f", s, u, w, p.Phases[ptrace.PhaseQueue])
			}
		}
	}
}

// TestPredictNegativeRate: negative rates clamp to the zero-load point
// instead of producing nonsense.
func TestPredictNegativeRate(t *testing.T) {
	m, err := NewDefault(core.TokenChannel)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict(-0.5)
	if p.Rate != 0 || math.Abs(p.Mean-m.ZeroLoadLatency()) > 1e-9 {
		t.Errorf("Predict(-0.5) = rate %.2f mean %.2f, want the zero-load point", p.Rate, p.Mean)
	}
}

// TestCapacityFor: the inverter must honor its budget, be monotone in
// the budget, report an impossible budget as rate zero, and cap loose
// budgets at the validity envelope with the divergence flag set.
func TestCapacityFor(t *testing.T) {
	for _, s := range core.Schemes() {
		m, err := NewDefault(s)
		if err != nil {
			t.Fatal(err)
		}
		zl := m.ZeroLoadLatency()

		// Impossible budget: below zero-load latency nothing is sustainable.
		if res := m.CapacityFor(zl*0.5, false); res.Rate != 0 {
			t.Errorf("%s: budget below zero-load latency returned rate %.4f", s, res.Rate)
		}

		// Binding budget: the answer's own prediction must meet it.
		res := m.CapacityFor(zl*1.5, false)
		if !res.BudgetBound {
			t.Errorf("%s: 1.5x zero-load budget unexpectedly loose", s)
		}
		if res.Prediction.Mean > zl*1.5+1e-6 {
			t.Errorf("%s: answer mean %.4f exceeds budget %.4f", s, res.Prediction.Mean, zl*1.5)
		}
		if res.Rate <= 0 {
			t.Errorf("%s: feasible budget answered with rate 0", s)
		}

		// Monotone: a looser budget can only raise the sustainable rate.
		loose := m.CapacityFor(zl*2, false)
		if loose.Rate < res.Rate-1e-12 {
			t.Errorf("%s: looser budget lowered capacity: %.5f -> %.5f", s, res.Rate, loose.Rate)
		}

		// Unbounded budget: capped at the envelope edge, flagged diverged,
		// and reported as not budget-bound — the planner's cue to simulate.
		huge := m.CapacityFor(1e9, false)
		if huge.BudgetBound {
			t.Errorf("%s: 1e9 budget reported as binding", s)
		}
		if !huge.Prediction.Diverged {
			t.Errorf("%s: envelope-capped answer not flagged diverged", s)
		}

		// p99 budgets invert against the p99 estimate.
		p99res := m.CapacityFor(zl*3, true)
		if p99res.BudgetBound && p99res.Prediction.P99 > zl*3+1e-6 {
			t.Errorf("%s: p99 answer %.4f exceeds budget %.4f", s, p99res.Prediction.P99, zl*3)
		}
	}
}

// TestUtilizationAndChannelLoad: bookkeeping fields are consistent.
func TestUtilizationAndChannelLoad(t *testing.T) {
	for _, s := range core.Schemes() {
		m, err := NewDefault(s)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(s)
		rate := 0.4 * m.SaturationRate()
		p := m.Predict(rate)
		if math.Abs(p.Utilization-0.4) > 1e-9 {
			t.Errorf("%s: utilization %.4f != 0.4", s, p.Utilization)
		}
		if want := rate * float64(cfg.CoresPerNode); math.Abs(p.ChannelLoad-want) > 1e-12 {
			t.Errorf("%s: channel load %.5f != rate x cores %.5f", s, p.ChannelLoad, want)
		}
	}
}
