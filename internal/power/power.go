// Package power estimates the power and energy of the nanophotonic network
// under each scheme, reproducing Figure 12: a static half (laser power
// derived from the optical loss budget, thermal ring tuning) that dominates,
// plus a dynamic half (E/O and O/E conversion at 158 fJ/bit, and an
// Orion-2.0-style analytical electrical router model).
//
// The paper's qualitative findings this model reproduces:
//
//   - laser + ring heating dominate every scheme's total;
//   - global-arbitration schemes (Token Channel, GHS) pay more laser power
//     for their relayed token — it is tapped by every node each loop, so
//     its path carries the full chain of capture-ring drops, and Token
//     Channel's credit payload multiplies the token wavelengths;
//   - the handshake waveguide adds only a negligible slice;
//   - circulation adds heating for its 16K reinjection rings but
//     essentially no per-packet energy (passive imprinting).
package power

import (
	"fmt"

	"photon/internal/phys"
)

// EnergyPerBitJ is the E/O or O/E conversion energy (158 fJ/b, paper §V-C
// citing Batten et al.).
const EnergyPerBitJ = 158e-15

// RouterModel is an Orion-2.0-style per-router energy model: static
// leakage plus per-flit buffer write, buffer read, crossbar traversal and
// arbitration energies. Coefficients approximate a 45 nm 2-stage router
// with a 256-bit datapath.
type RouterModel struct {
	StaticW      float64 // leakage + clock per router
	BufWriteJ    float64 // per flit
	BufReadJ     float64 // per flit
	CrossbarJ    float64 // per flit
	ArbitrationJ float64 // per flit
}

// DefaultRouterModel returns the coefficients used in the evaluation.
func DefaultRouterModel() RouterModel {
	return RouterModel{
		StaticW:      0.080,
		BufWriteJ:    60e-15 * 256, // per-bit write energy x flit width
		BufReadJ:     40e-15 * 256,
		CrossbarJ:    80e-15 * 256,
		ArbitrationJ: 2e-12,
	}
}

// PerFlitJ is the total dynamic router energy for one flit traversal.
func (r RouterModel) PerFlitJ() float64 {
	return r.BufWriteJ + r.BufReadJ + r.CrossbarJ + r.ArbitrationJ
}

// Model bundles everything needed to evaluate a scheme's power.
type Model struct {
	Shape   phys.NetworkShape
	Laser   phys.LaserModel
	Thermal phys.ThermalTuning
	Router  RouterModel
	// ClockHz converts per-cycle activity into rates.
	ClockHz float64
}

// DefaultModel returns the paper's technology point.
func DefaultModel() Model {
	return Model{
		Shape:   phys.DefaultShape(),
		Laser:   phys.DefaultLaserModel(),
		Thermal: phys.DefaultThermalTuning(),
		Router:  DefaultRouterModel(),
		ClockHz: phys.ClockGHz * 1e9,
	}
}

// Activity is the measured traffic a power estimate is evaluated at.
type Activity struct {
	// PacketsPerCycle is the network-wide delivered packet rate.
	PacketsPerCycle float64
	// ReinjectionsPerCycle is the home-reinjection rate (DHS-cir).
	ReinjectionsPerCycle float64
	// RetransmissionsPerCycle is the NACK-triggered resend rate.
	RetransmissionsPerCycle float64
}

// Breakdown is one bar of Figure 12(a).
type Breakdown struct {
	Scheme  string
	LaserW  float64
	HeatW   float64
	EOW     float64
	OEW     float64
	RouterW float64
}

// TotalW sums the components.
func (b Breakdown) TotalW() float64 { return b.LaserW + b.HeatW + b.EOW + b.OEW + b.RouterW }

// Evaluate computes the power breakdown of a scheme at a given activity.
func (m Model) Evaluate(hw phys.SchemeHardware, act Activity) (Breakdown, error) {
	if err := m.Shape.Validate(); err != nil {
		return Breakdown{}, err
	}
	inv := phys.ComponentBudget(m.Shape, hw)
	length := m.Shape.RingCircumferenceCM()
	n := m.Shape.Nodes

	// --- Laser ---
	// Data wavelengths: each passes the capture/modulator rings of every
	// node on its channel.
	perData, err := m.Laser.PerWavelengthMW(length, n)
	if err != nil {
		return Breakdown{}, fmt.Errorf("power: data path: %w", err)
	}
	dataLambda := n * m.Shape.FlitBits
	laserMW := perData * float64(dataLambda)

	// Token wavelengths: distributed tokens travel at most one loop from
	// their home past each node's detector once; the single relayed token
	// of global arbitration is actively *polled* by every candidate holder
	// each loop, so its path pays the polling-tap loss at every node —
	// this is why Token Channel and GHS burn more laser power than the
	// distributed schemes, and Token Channel (whose token also carries a
	// multi-bit credit payload) the most of all.
	tokenLambda := 1 + hw.TokenCreditBits
	var perToken float64
	if hw.Arbitration == phys.GlobalArbitration {
		perToken, err = m.Laser.PolledWavelengthMW(length, n, n)
	} else {
		perToken, err = m.Laser.PerWavelengthMW(length, n)
	}
	if err != nil {
		return Breakdown{}, fmt.Errorf("power: token path: %w", err)
	}
	laserMW += perToken * float64(tokenLambda) * float64(n)

	// Handshake wavelengths: one per home node on one shared waveguide.
	if hw.Handshake {
		perHs, err := m.Laser.PerWavelengthMW(length, n)
		if err != nil {
			return Breakdown{}, fmt.Errorf("power: handshake path: %w", err)
		}
		laserMW += perHs * float64(n)
	}

	// --- Thermal tuning ---
	heatW := m.Thermal.HeatingWatts(inv.MicroRings)

	// --- E/O and O/E conversion ---
	bitsPerPacket := float64(m.Shape.FlitBits)
	launches := act.PacketsPerCycle + act.RetransmissionsPerCycle + act.ReinjectionsPerCycle
	bitRate := launches * bitsPerPacket * m.ClockHz
	eoW := bitRate * EnergyPerBitJ
	// Every launched packet is also detected once (drops are detected too,
	// then discarded), plus handshake pulses (1 bit each) — negligible but
	// accounted.
	oeW := bitRate * EnergyPerBitJ
	if hw.Handshake {
		oeW += act.PacketsPerCycle * 1 * m.ClockHz * EnergyPerBitJ
	}

	// --- Electrical routers ---
	routerW := m.Router.StaticW*float64(n) +
		act.PacketsPerCycle*m.ClockHz*m.Router.PerFlitJ()

	return Breakdown{
		Scheme:  hw.Name,
		LaserW:  laserMW / 1000,
		HeatW:   heatW,
		EOW:     eoW,
		OEW:     oeW,
		RouterW: routerW,
	}, nil
}

// EnergyPerPacketNJ is one bar of Figure 12(b): total power divided by the
// delivered packet rate.
func (m Model) EnergyPerPacketNJ(b Breakdown, act Activity) float64 {
	if act.PacketsPerCycle <= 0 {
		return 0
	}
	packetsPerSecond := act.PacketsPerCycle * m.ClockHz
	return b.TotalW() / packetsPerSecond * 1e9
}
