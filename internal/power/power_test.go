package power

import (
	"testing"

	"photon/internal/core"
	"photon/internal/phys"
)

func eval(t *testing.T, s core.Scheme, act Activity) Breakdown {
	t.Helper()
	bd, err := DefaultModel().Evaluate(s.Hardware(), act)
	if err != nil {
		t.Fatalf("%v: %v", s, err)
	}
	return bd
}

func TestBreakdownPositive(t *testing.T) {
	act := Activity{PacketsPerCycle: 20}
	for _, s := range core.Schemes() {
		bd := eval(t, s, act)
		if bd.LaserW <= 0 || bd.HeatW <= 0 || bd.EOW <= 0 || bd.OEW <= 0 || bd.RouterW <= 0 {
			t.Errorf("%v: non-positive component: %+v", s, bd)
		}
		if bd.TotalW() < bd.LaserW+bd.HeatW {
			t.Errorf("%v: total below static floor", s)
		}
	}
}

// TestStaticDominates pins the paper's observation that laser power and
// ring heating dominate total power in every scheme.
func TestStaticDominates(t *testing.T) {
	act := Activity{PacketsPerCycle: 28} // UR 0.11 x 256 cores
	for _, s := range core.Schemes() {
		bd := eval(t, s, act)
		if static := bd.LaserW + bd.HeatW; static < bd.TotalW()/2 {
			t.Errorf("%v: static %.1f W is not dominant of %.1f W", s, static, bd.TotalW())
		}
	}
}

// TestLaserOrderingMatchesPaper: global arbitration costs more laser than
// distributed, and the credit-carrying Token Channel costs the most —
// Figure 12(a)'s qualitative story.
func TestLaserOrderingMatchesPaper(t *testing.T) {
	act := Activity{PacketsPerCycle: 20}
	tc := eval(t, core.TokenChannel, act).LaserW
	ghs := eval(t, core.GHS, act).LaserW
	slot := eval(t, core.TokenSlot, act).LaserW
	dhs := eval(t, core.DHS, act).LaserW
	if !(tc > ghs && ghs > slot) {
		t.Fatalf("laser ordering wrong: TC %.2f, GHS %.2f, slot %.2f", tc, ghs, slot)
	}
	// DHS trades Token Slot's credit-bit token wavelength for a handshake
	// wavelength per home — laser within a percent of each other.
	if dhs < 0.99*slot || dhs > 1.05*slot {
		t.Fatalf("DHS laser %.3f not within a few %% of token slot %.3f", dhs, slot)
	}
}

// TestCirculationHeatsMore: the 16K reinjection rings cost heating but the
// removed handshake waveguide saves laser.
func TestCirculationHeatsMore(t *testing.T) {
	act := Activity{PacketsPerCycle: 20}
	dhs := eval(t, core.DHS, act)
	cir := eval(t, core.DHSCirculation, act)
	if cir.HeatW <= dhs.HeatW {
		t.Fatalf("circulation heating %.3f not above DHS %.3f", cir.HeatW, dhs.HeatW)
	}
	if cir.LaserW >= dhs.LaserW {
		t.Fatalf("circulation laser %.3f not below DHS %.3f (handshake waveguide removed)", cir.LaserW, dhs.LaserW)
	}
}

// TestHandshakeOverheadNegligible: the paper's claim that the handshake
// waveguide adds negligible power — under 2% of the total.
func TestHandshakeOverheadNegligible(t *testing.T) {
	act := Activity{PacketsPerCycle: 20}
	slot := eval(t, core.TokenSlot, act)
	dhs := eval(t, core.DHS, act)
	if extra := dhs.TotalW() - slot.TotalW(); extra > 0.02*slot.TotalW() {
		t.Fatalf("handshake adds %.2f W (>2%% of %.2f W)", extra, slot.TotalW())
	}
}

func TestDynamicScalesWithActivity(t *testing.T) {
	lo := eval(t, core.DHS, Activity{PacketsPerCycle: 5})
	hi := eval(t, core.DHS, Activity{PacketsPerCycle: 50})
	if hi.EOW <= lo.EOW || hi.RouterW <= lo.RouterW {
		t.Fatal("dynamic power did not scale with traffic")
	}
	if hi.LaserW != lo.LaserW || hi.HeatW != lo.HeatW {
		t.Fatal("static power changed with traffic")
	}
}

func TestRetransmissionsCostEnergy(t *testing.T) {
	base := eval(t, core.DHS, Activity{PacketsPerCycle: 20})
	retx := eval(t, core.DHS, Activity{PacketsPerCycle: 20, RetransmissionsPerCycle: 2})
	if retx.EOW <= base.EOW {
		t.Fatal("retransmissions added no conversion energy")
	}
}

func TestEnergyPerPacket(t *testing.T) {
	m := DefaultModel()
	act := Activity{PacketsPerCycle: 20}
	bd := eval(t, core.DHS, act)
	nj := m.EnergyPerPacketNJ(bd, act)
	if nj <= 0 {
		t.Fatalf("energy per packet %.3f", nj)
	}
	// Zero activity: define as 0 rather than dividing by zero.
	if m.EnergyPerPacketNJ(bd, Activity{}) != 0 {
		t.Fatal("zero-rate energy per packet should be 0")
	}
	// Halving the rate at (almost) fixed power roughly doubles nJ/packet.
	half := Activity{PacketsPerCycle: 10}
	bdHalf := eval(t, core.DHS, half)
	njHalf := m.EnergyPerPacketNJ(bdHalf, half)
	if njHalf <= nj {
		t.Fatalf("nJ/packet should grow as rate drops: %.3f vs %.3f", njHalf, nj)
	}
}

func TestRouterModelPerFlit(t *testing.T) {
	r := DefaultRouterModel()
	if r.PerFlitJ() <= 0 {
		t.Fatal("per-flit energy non-positive")
	}
	want := r.BufWriteJ + r.BufReadJ + r.CrossbarJ + r.ArbitrationJ
	if r.PerFlitJ() != want {
		t.Fatal("PerFlitJ does not sum components")
	}
}

func TestEvaluateRejectsBadShape(t *testing.T) {
	m := DefaultModel()
	m.Shape.Nodes = 0
	if _, err := m.Evaluate(core.DHS.Hardware(), Activity{}); err == nil {
		t.Fatal("bad shape accepted")
	}
}

func TestEvaluateAllStandardHardware(t *testing.T) {
	m := DefaultModel()
	for _, hw := range phys.StandardSchemes() {
		if _, err := m.Evaluate(hw, Activity{PacketsPerCycle: 10}); err != nil {
			t.Errorf("%s: %v", hw.Name, err)
		}
	}
}
