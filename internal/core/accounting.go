package core

import "photon/internal/fault"

// Accounting is a packet-conservation snapshot of a network: every counter
// needed to prove that no packet was created, duplicated or lost by the
// protocol machinery. internal/check audits these against the conservation
// identities (Injected == Delivered + Backlog, per-channel launch
// accounting, handshake NACK/retransmit balance); the snapshot itself
// lives in core because only the network can observe all the substrates
// coherently.
//
// All counters are cumulative over the whole run (warmup, measurement and
// drain included); occupancy fields (Backlog, InFlight, Buffered, ...)
// describe the instant the snapshot was taken, so the identities hold at
// any cycle, not just after a full drain.
type Accounting struct {
	Scheme Scheme

	// Whole-network cumulative counters.
	Injected       int64 // packets handed to routers by cores
	Delivered      int64 // packets ejected to destination cores (incl. local)
	LocalDelivered int64 // deliveries that never entered the ring
	Launches       int64 // packet launches onto optical channels (retx included)
	Drops          int64 // receiver-side drops (handshake NACKs)
	Retransmits    int64 // re-launches (NACK- and timeout-triggered)
	Circulations   int64 // receiver reinjections (DHS with circulation)
	QueueRejected  int64 // packets discarded by bounded output queues

	// Fault-injection and recovery counters (all zero on fault-free runs).
	FaultsInjected     int64 // injector fires, all classes
	FaultTokens        int64 // token-loss fires
	FaultPulses        int64 // pulse-loss fires
	FaultData          int64 // data-loss fires
	FaultStalls        int64 // node-stall fires (events, not stall-cycles)
	TimeoutRetransmits int64 // retransmissions triggered by sender timeouts
	TokensRegenerated  int64 // watchdog re-emissions + slot-credit reclaims
	Lost               int64 // permanent losses (data fault, fire-and-forget)
	DupsDiscarded      int64 // duplicate arrivals recognised by homes
	AcksLost           int64 // ACK pulses destroyed in flight
	NacksLost          int64 // NACK pulses destroyed in flight

	// Instantaneous occupancy, broken down by where packets sit. Backlog
	// locates every undelivered packet exactly once (see Network.Backlog):
	// Backlog = Pipeline + Queued + (InFlight - DupsInFlight) + Buffered +
	// Orphans. On fault-free runs Orphans == Drops - Retransmits and
	// DupsInFlight == 0, reducing to the seed formula. Unacked counts
	// sender retention copies, which overlap with
	// InFlight/Buffered/Delivered and are therefore not part of the
	// Backlog sum; Outstanding = Pipeline + Queued + Unacked + InFlight +
	// Buffered is the quiescence measure Drain stops on.
	Backlog      int
	Outstanding  int
	Pipeline     int // electrical injection pipelines
	Queued       int // output queues (setaside/pending excluded)
	Unacked      int // sent, awaiting handshake (pending + setaside)
	InFlight     int // on optical data channels
	Buffered     int // home input buffers
	Orphans      int // only live copy destroyed; retransmission owed
	DupsInFlight int // duplicate copies of accepted packets on waveguides

	Channels []ChannelAccounting
}

// ChannelAccounting is the per-channel slice of the conservation ledger.
type ChannelAccounting struct {
	Home          int
	Launches      int64 // sender launches onto this channel
	Reinjections  int64 // receiver reinjections (circulation)
	Ejected       int64 // packets drained from the home buffer to cores
	AcksSent      int64 // positive handshakes issued by the home
	NacksSent     int64 // negative handshakes issued by the home
	InFlight      int   // currently on the waveguide
	Buffered      int   // currently in the home input buffer
	DupsDiscarded int64 // duplicate arrivals recognised and re-ACKed
	FaultDiscards int64 // arrivals destroyed by data faults
	AcksLost      int64 // ACK pulses destroyed on this channel's handshake line
	NacksLost     int64 // NACK pulses destroyed on this channel's handshake line
}

// Accounting snapshots the network's conservation ledger at the current
// cycle.
func (n *Network) Accounting() Accounting {
	a := Accounting{
		Scheme:         n.cfg.Scheme,
		Injected:       n.stats.Injected,
		Delivered:      n.stats.Delivered,
		LocalDelivered: n.stats.LocalDelivered,
		Launches:       n.stats.Launches,
		Drops:          n.stats.Drops,
		Retransmits:    n.stats.Retransmits,
		Circulations:   n.stats.Circulations,
		QueueRejected:  n.stats.QueueRejected,
		Pipeline:       n.injPipe.Len(),

		FaultsInjected:     n.stats.FaultsInjected,
		TimeoutRetransmits: n.stats.TimeoutRetransmits,
		TokensRegenerated:  n.stats.TokensRegenerated,
		Lost:               n.stats.Lost,
		DupsDiscarded:      n.stats.DupsDiscarded,
		AcksLost:           n.stats.AcksLost,
		NacksLost:          n.stats.NacksLost,
		Orphans:            n.orphans,
		DupsInFlight:       n.dupsInFlight,
	}
	if n.faults != nil {
		counts := n.faults.Counts()
		a.FaultTokens = counts[fault.TokenLoss]
		a.FaultPulses = counts[fault.PulseLoss]
		a.FaultData = counts[fault.DataLoss]
		a.FaultStalls = counts[fault.NodeStall]
	}
	for i := range n.queues {
		a.Queued += n.queues[i].out.QueueLen()
		a.Unacked += n.queues[i].out.Unacked()
	}
	a.Channels = make([]ChannelAccounting, len(n.chans))
	for i := range n.chans {
		c := &n.chans[i]
		ch := ChannelAccounting{
			Home:         c.home,
			Launches:     c.data.Launches(),
			Reinjections: c.data.Reinjections(),
			Ejected:      c.in.Ejected(),
			InFlight:     c.data.InFlight(),
			Buffered:     c.in.Occupied(),
		}
		if c.hs != nil {
			ch.AcksSent, ch.NacksSent = c.hs.Sent()
			ch.AcksLost, ch.NacksLost = c.hs.Lost()
		}
		ch.DupsDiscarded = c.dupsDiscarded
		ch.FaultDiscards = c.faultDiscards
		a.InFlight += ch.InFlight
		a.Buffered += ch.Buffered
		a.Channels[i] = ch
	}
	a.Backlog = a.Pipeline + a.Queued + (a.InFlight - a.DupsInFlight) + a.Buffered + a.Orphans
	a.Outstanding = a.Pipeline + a.Queued + a.Unacked + a.InFlight + a.Buffered
	return a
}
