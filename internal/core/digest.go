package core

import "photon/internal/router"

// Run digests give every simulation a single 64-bit fingerprint of its
// complete protocol history, so that "these two runs did the same thing"
// becomes a one-word comparison instead of a diff of statistics. The
// digest is the determinism oracle behind internal/check and cmd/verify:
// repeated runs of an identical (Config, traffic) pair must produce
// identical digests, and any protocol change — an extra drop, a token
// captured one cycle later, a packet delivered out of order — perturbs it
// with overwhelming probability.
//
// Construction: every canonical protocol event (inject, enqueue, launch,
// accept, drop, reinject, ack, nack, deliver) is hashed individually with
// FNV-1a over its (cycle, type, packet id, src, dst) tuple, avalanched
// through a splitmix64-style finalizer, and folded into the digest with
// commutative combiners (a wrapping sum and an xor, plus the event count).
// The per-event hash carries the cycle number, so the digest is sensitive
// to *when* everything happened; the commutative fold makes it insensitive
// to the order events are observed *within* a cycle — intra-cycle emission
// order is an artefact of channel iteration in the sequential simulator,
// not of the modelled hardware, and must not leak into the fingerprint.

// FNV-1a 64-bit parameters (FNV is public domain; see Fowler/Noll/Vo).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// mix64 is the splitmix64 output finalizer: a bijection on uint64 with
// strong avalanche, used to spread per-event FNV hashes before the
// commutative fold (raw FNV of similar tuples differs in few bits, which
// a plain sum would partially cancel).
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnvWord folds one 64-bit word into an FNV-1a state, little-endian
// byte-wise so the hash is platform-independent.
func fnvWord(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (w >> (8 * i)) & 0xFF
		h *= fnvPrime64
	}
	return h
}

// eventHash fingerprints one protocol event.
func eventHash(cycle int64, t EventType, p *router.Packet) uint64 {
	h := fnvOffset64
	h = fnvWord(h, uint64(cycle))
	h = fnvWord(h, uint64(t))
	h = fnvWord(h, p.ID)
	h = fnvWord(h, uint64(uint32(p.Src))<<32|uint64(uint32(p.Dst)))
	return mix64(h)
}

// metaHash fingerprints one packet-less protocol event (fault-injection
// kinds); aux takes the slot a packet's identity words would occupy.
func metaHash(cycle int64, t EventType, aux uint64) uint64 {
	h := fnvOffset64
	h = fnvWord(h, uint64(cycle))
	h = fnvWord(h, uint64(t))
	h = fnvWord(h, aux)
	h = fnvWord(h, ^uint64(0)) // no src/dst word; a sentinel keeps the shape distinct
	return mix64(h)
}

// runDigest accumulates event hashes with commutative combiners.
type runDigest struct {
	sum   uint64 // wrapping sum of event hashes
	xor   uint64 // xor of event hashes
	count uint64 // number of events observed
}

// observe folds one event hash into the digest.
func (d *runDigest) observe(h uint64) {
	d.sum += h
	d.xor ^= h
	d.count++
}

// value finalises the digest into the run fingerprint.
func (d *runDigest) value() uint64 {
	return mix64(d.sum ^ mix64(d.xor^mix64(d.count)))
}
