package core

import (
	"testing"

	"photon/internal/router"
	"photon/internal/sim"
)

// In-package micro-benchmarks for the two hottest phases the campaign
// rewrote — the token scan and the queue scan — so a future regression in
// either localizes to one number instead of showing up only as a diffuse
// BenchmarkStep slowdown. These live in package core (not core_test)
// because they call unexported phase methods directly; traffic cannot be
// imported here (import cycle), so load is driven through Inject with a
// private RNG.

// loadedBenchNet builds a network with a deep, spread backlog so every
// want row has live requesters and every phase has work. The all-warmup
// window keeps packets unmeasured: the latency histograms never grow, so
// phase timings are free of amortised allocation noise.
func loadedBenchNet(b *testing.B, s Scheme) *Network {
	b.Helper()
	cfg := DefaultConfig(s)
	cfg.CheckInvariants = false
	n, err := NewNetwork(cfg, sim.Window{Warmup: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	cores := uint64(cfg.Cores())
	nodes := uint64(cfg.Nodes)
	for i := 0; i < 2000; i++ {
		for j := 0; j < 4; j++ {
			if rng.Uint64()%10 < 3 {
				n.Inject(int(rng.Uint64()%cores), int(rng.Uint64()%nodes), router.ClassData, 0)
			}
		}
		n.Step()
	}
	// Saturating burst: several packets per core, then just enough cycles
	// for the injection pipeline to land them in the output queues. The
	// backlog dwarfs per-cycle delivery capacity, so the requester
	// population stays dense for the whole benchmark.
	for c := uint64(0); c < cores; c++ {
		for j := 0; j < 4; j++ {
			n.Inject(int(c), int(rng.Uint64()%nodes), router.ClassData, 0)
		}
	}
	for i := 0; i < 2*cfg.RoundTrip; i++ {
		n.Step()
	}
	return n
}

// clearTokenPhaseEffects undoes the capture side effects one token-phase
// pass leaves behind — pending grants and held global tokens — so every
// benchmark iteration arbitrates over the same requester population
// instead of short-circuiting on "already granted/holding".
func clearTokenPhaseEffects(n *Network) {
	for _, g := range n.grants {
		g.node.granted = false
	}
	n.grants = n.grants[:0]
	for j := range n.chans {
		c := &n.chans[j]
		if c.glob == nil {
			continue
		}
		if off, held := c.glob.Held(); held {
			n.nodes[n.geom.NodeAt(c.home, off)].holding = -1
			c.glob.Release()
		}
	}
}

// BenchmarkTokenPhase times one full rotated token-phase sweep — fairness
// window roll, token motion, capture scan — across all channels of a
// loaded network, for one global-token scheme and one slot-token scheme.
// The clock advances each iteration so slot expiry/emission behave as in a
// real cycle; capture effects are cleared so the requester set is stable.
func BenchmarkTokenPhase(b *testing.B) {
	for _, s := range []Scheme{TokenChannel, DHS} {
		b.Run(s.String(), func(b *testing.B) {
			n := loadedBenchNet(b, s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := n.now + int64(i)
				start := int(now) % len(n.chans)
				for j := range n.chans {
					n.phaseTokens(&n.chans[(start+j)%len(n.chans)], now)
				}
				clearTokenPhaseEffects(n)
			}
		})
	}
}

// BenchmarkSlotScan times the requester-driven capture scan for the single
// busiest channel of a loaded distributed-token network: the bitmask walk
// plus per-requester liveness probes, the inner loop the campaign inverted
// from the arbiter's O(roundTrip) segment sweep.
func BenchmarkSlotScan(b *testing.B) {
	n := loadedBenchNet(b, DHS)
	best := 0
	for h := range n.chans {
		if n.wantNodes[h] > n.wantNodes[best] {
			best = h
		}
	}
	if n.wantNodes[best] == 0 {
		b.Fatal("no requesters after warmup")
	}
	c := &n.chans[best]
	now := n.now
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.slotScan(c, now, nil)
		for _, g := range n.grants {
			g.node.granted = false
		}
		n.grants = n.grants[:0]
	}
}

// BenchmarkQueueScan times the launch-side queue selection pair: the
// round-robin pickQueue walk over a node's per-core queues plus the
// updateQueueWant re-derivation that maintains the transposed want rows
// and the wantMask bitmask.
func BenchmarkQueueScan(b *testing.B) {
	n := loadedBenchNet(b, DHS)
	var nd *nodeState
	var h int
outer:
	for id := range n.nodes {
		for ch := range n.chans {
			if n.wantRows[ch][id] > 0 {
				nd, h = &n.nodes[id], ch
				break outer
			}
		}
	}
	if nd == nil {
		b.Fatal("no backlogged node after warmup")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, q, pkt := n.pickQueue(nd, h)
		if pkt == nil {
			b.Fatal("want row out of sync with its queue")
		}
		n.updateQueueWant(nd, q)
	}
}
