package core

import (
	"fmt"

	"photon/internal/arbiter"
	"photon/internal/fault"
	"photon/internal/phys"
	"photon/internal/ring"
	"photon/internal/router"
)

// The paper's handshake schemes: ACK/NACK flow control over a dedicated
// handshake waveguide. The sender retains each packet until its answer
// returns (HoldHead pins the queue head; Setaside parks it in private
// slots), which doubles as retransmission state — the property that makes
// pulse and data faults recoverable where fire-and-forget schemes lose
// the packet outright.

func init() {
	RegisterProtocol(ProtocolSpec{
		Scheme:     GHS,
		Name:       "ghs",
		PaperName:  "GHS",
		Family:     "handshake-global",
		Global:     true,
		Handshake:  true,
		SendPolicy: router.HoldHead,
		Hardware:   phys.SchemeHardware{Name: "GHS", Arbitration: phys.GlobalArbitration, Handshake: true},
		New:        func() Protocol { return handshakeGlobalProtocol{} },
	})
	RegisterProtocol(ProtocolSpec{
		Scheme:     GHSSetaside,
		Name:       "ghs-setaside",
		PaperName:  "GHS w/ Setaside",
		Family:     "handshake-global",
		Global:     true,
		Handshake:  true,
		SendPolicy: router.Setaside,
		Hardware:   phys.SchemeHardware{Name: "GHS_SetBuf", Arbitration: phys.GlobalArbitration, Handshake: true},
		New:        func() Protocol { return handshakeGlobalProtocol{} },
	})
	RegisterProtocol(ProtocolSpec{
		Scheme:     DHS,
		Name:       "dhs",
		PaperName:  "DHS",
		Family:     "handshake-slot",
		Handshake:  true,
		SendPolicy: router.HoldHead,
		Hardware:   phys.SchemeHardware{Name: "DHS", Arbitration: phys.DistributedArbitration, Handshake: true},
		New:        func() Protocol { return handshakeSlotProtocol{} },
	})
	RegisterProtocol(ProtocolSpec{
		Scheme:     DHSSetaside,
		Name:       "dhs-setaside",
		PaperName:  "DHS w/ Setaside",
		Family:     "handshake-slot",
		Handshake:  true,
		SendPolicy: router.Setaside,
		Hardware:   phys.SchemeHardware{Name: "DHS_SetBuf", Arbitration: phys.DistributedArbitration, Handshake: true},
		New:        func() Protocol { return handshakeSlotProtocol{} },
	})
}

// wireHandshake attaches the handshake waveguide and, under fault
// injection, its pulse-loss filter.
func wireHandshake(n *Network, c *channel) {
	c.hs = ring.NewHandshakeChannel(n.geom)
	if n.faults != nil {
		c.hs.SetLoss(n.pulseLoss(c))
	}
}

// pulseLoss builds channel c's handshake-pulse fault filter.
func (n *Network) pulseLoss(c *channel) ring.LossFunc {
	return func(now int64, a ring.Ack) bool {
		if !n.faults.KillPulse(c.home, now) {
			return false
		}
		n.stats.FaultsInjected++
		if a.Positive {
			n.stats.AcksLost++
		} else {
			n.stats.NacksLost++
		}
		n.emitMeta(EvFault, faultAux(fault.PulseLoss, c.home))
		return true
	}
}

// bindHandshakeArrive builds the arrival handler shared by every
// handshake scheme: accept or drop+NACK, with duplicate detection for
// timeout-recovery copies.
// Bound once per channel at construction; never inline (see bindGlobalCapture).
//
//go:noinline
func bindHandshakeArrive(n *Network, c *channel) func(now int64, pkt *router.Packet) {
	return func(now int64, pkt *router.Packet) {
		off := n.geom.Offset(c.home, pkt.Src)
		queue := int(pkt.Tag>>40) % n.cfg.CoresPerNode
		if pkt.AcceptedAt >= 0 {
			// Duplicate of an already-accepted packet: its ACK was lost and
			// the sender's timeout re-sent a copy. The home's dedup registry
			// recognises the id, discards the copy, and repeats the ACK.
			n.dupsInFlight--
			if n.dupsInFlight < 0 {
				panic("core: negative duplicate-in-flight count")
			}
			c.dupsDiscarded++
			n.stats.DupsDiscarded++
			n.emit(EvDupDrop, pkt)
			c.hs.Send(now, off, ring.Ack{To: pkt.Src, PacketID: pkt.ID, Queue: queue, Positive: true})
			return
		}
		accepted := c.in.Accept(pkt)
		if accepted {
			pkt.AcceptedAt = now
			n.emit(EvAccept, pkt)
		} else {
			n.stats.Drops++
			n.orphans++
			n.emit(EvDrop, pkt)
		}
		c.hs.Send(now, off, ring.Ack{To: pkt.Src, PacketID: pkt.ID, Queue: queue, Positive: accepted})
	}
}

// bindHandshakeDelivery builds the phase-2 closure applying ACK/NACK
// pulses that reach senders this cycle. The pulse's Queue field addresses
// the owning output port directly — an answer the port cannot resolve is
// a protocol bug, not a search miss.
// Bound once per channel at construction; never inline (see bindGlobalSweep).
//
//go:noinline
func bindHandshakeDelivery(n *Network, c *channel) func(now int64) {
	return func(now int64) {
		for _, ack := range c.hs.Deliver(now) {
			nd := &n.nodes[ack.To]
			q := &n.queues[ack.To*n.cfg.CoresPerNode+ack.Queue]
			var err error
			var pkt *router.Packet
			if ack.Positive {
				pkt, err = q.out.Ack(ack.PacketID)
			} else {
				pkt, err = q.out.Nack(ack.PacketID)
			}
			if err != nil {
				panic(fmt.Sprintf("core: handshake for packet %d at node %d: %v", ack.PacketID, ack.To, err))
			}
			if ack.Positive {
				n.emit(EvAck, pkt)
				if q.out.Policy() == router.Setaside {
					// The ACK released the packet's setaside slot.
					n.emitTap(EvSetasideExit, pkt)
				}
			} else {
				n.emit(EvNack, pkt)
			}
			n.updateQueueWant(nd, q)
		}
	}
}

// handshakeGlobalProtocol is GHS (± setaside): a credit-free relayed
// global token grants the channel; the receiver answers every flit.
type handshakeGlobalProtocol struct{}

func (handshakeGlobalProtocol) Wire(n *Network, c *channel) {
	c.glob = arbiter.NewGlobalToken(n.cfg.Nodes, n.geom.NodesPerCycle())
	wireHandshake(n, c)
}

func (handshakeGlobalProtocol) Arbitrate(n *Network, c *channel) func(now int64) {
	return bindGlobalArbitrate(n, c, bindGlobalSweep(n, c, nil), nil)
}

func (handshakeGlobalProtocol) LaunchHeld(n *Network, c *channel) func(now int64) {
	return bindHeldLaunch(n, c, nil)
}

func (handshakeGlobalProtocol) Arrive(n *Network, c *channel) func(now int64, pkt *router.Packet) {
	return bindHandshakeArrive(n, c)
}

func (handshakeGlobalProtocol) Handshake(n *Network, c *channel) func(now int64) {
	return bindHandshakeDelivery(n, c)
}

func (handshakeGlobalProtocol) Eject(n *Network, c *channel) func() { return nil }

func (handshakeGlobalProtocol) RecoverData(n *Network, c *channel) func(pkt *router.Packet) {
	return n.classifyDataLoss
}

func (handshakeGlobalProtocol) Invariant(n *Network, c *channel) func() error { return nil }

// handshakeSlotProtocol is DHS (± setaside): the home emits a fresh token
// every cycle; one packet per captured token; the receiver answers every
// flit.
type handshakeSlotProtocol struct{}

func (handshakeSlotProtocol) Wire(n *Network, c *channel) {
	c.slot = arbiter.NewSlotEmitter(n.cfg.Nodes, n.cfg.RoundTrip, n.geom.NodesPerCycle())
	wireHandshake(n, c)
}

func (handshakeSlotProtocol) Arbitrate(n *Network, c *channel) func(now int64) {
	// DHS: a token every cycle, unconditionally (unless it dies leaving
	// home under fault injection).
	gate := func() bool {
		if n.faults != nil && n.faults.KillToken(c.home, n.now) {
			n.tokenFault(c)
			return false
		}
		return true
	}
	return bindSlotArbitrate(n, c, gate, nil, nil)
}

func (handshakeSlotProtocol) LaunchHeld(n *Network, c *channel) func(now int64) { return nil }

func (handshakeSlotProtocol) Arrive(n *Network, c *channel) func(now int64, pkt *router.Packet) {
	return bindHandshakeArrive(n, c)
}

func (handshakeSlotProtocol) Handshake(n *Network, c *channel) func(now int64) {
	return bindHandshakeDelivery(n, c)
}

func (handshakeSlotProtocol) Eject(n *Network, c *channel) func() { return nil }

func (handshakeSlotProtocol) RecoverData(n *Network, c *channel) func(pkt *router.Packet) {
	return n.classifyDataLoss
}

func (handshakeSlotProtocol) Invariant(n *Network, c *channel) func() error { return nil }
