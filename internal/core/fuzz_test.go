package core_test

import (
	"testing"

	"photon/internal/arbiter"
	"photon/internal/core"
	"photon/internal/sim"
)

// FuzzConfigValidate drives Config.Validate with adversarial sweep points
// and enforces the fail-fast contract: either Validate rejects the
// configuration with an error, or NewNetwork must construct and run it
// without panicking. Before this target existed, NaN stall probabilities
// and oversized node counts sailed through Validate and blew up (or
// over-allocated) mid-run.
func FuzzConfigValidate(f *testing.F) {
	// The paper's default, each scheme, and known-nasty inputs.
	f.Add(64, 4, 8, 0, 8, 4, 0, 1, 0.0, 2, 1, 0, uint64(1))
	f.Add(64, 4, 8, 6, 8, 4, 0, 1, 0.5, 2, 1, 0, uint64(7))
	f.Add(16, 1, 4, 4, 1, 1, 2, 1, 0.9, 0, 0, 3, uint64(0))
	f.Add(2, 1, 1, 2, 1, 1, 0, 1, 0.0, 0, 0, 0, uint64(0))
	f.Add(-64, -4, -8, -1, -8, -4, -1, -1, -0.5, -2, -1, -1, uint64(1))
	f.Add(1<<30, 1<<30, 8, 1, 8, 4, 0, 1, 0.0, 2, 1, 0, uint64(1))
	nan := 0.0
	nan /= nan
	f.Add(64, 4, 8, 1, 8, 4, 0, 1, nan, 2, 1, 0, uint64(1))

	f.Fuzz(func(t *testing.T, nodes, cores, rt, scheme, bufDepth, setaside, queueCap, ejectRate int,
		stallProb float64, routerPipe, ejectLat, maxHold int, seed uint64) {
		cfg := core.Config{
			Nodes:           nodes,
			CoresPerNode:    cores,
			RoundTrip:       rt,
			Scheme:          core.Scheme(scheme),
			BufferDepth:     bufDepth,
			SetasideSize:    setaside,
			QueueCap:        queueCap,
			EjectRate:       ejectRate,
			EjectStallProb:  stallProb,
			RouterPipeline:  routerPipe,
			EjectLatency:    ejectLat,
			MaxTokenHold:    maxHold,
			Fairness:        arbiter.DefaultFairness(),
			CheckInvariants: true,
			Seed:            seed,
		}
		if err := cfg.Validate(); err != nil {
			return // rejected up front — the fail-fast contract is met
		}
		// Validate's structural caps are deliberately generous; bound the
		// harness's own allocation budget below them.
		if cfg.Nodes > 128 || cfg.CoresPerNode > 8 || cfg.BufferDepth > 1024 ||
			cfg.SetasideSize > 1024 || cfg.EjectRate > 1024 ||
			cfg.RouterPipeline > 1024 || cfg.EjectLatency > 1024 {
			t.Skip("valid but too large to construct under fuzzing")
		}
		net, err := core.NewNetwork(cfg, sim.Window{Warmup: 4, Measure: 16, Drain: 16})
		if err != nil {
			t.Fatalf("Validate accepted a config NewNetwork rejects: %v", err)
		}
		// A validated network must run (invariant checks on) without
		// panicking, traffic or not.
		net.Inject(0, cfg.Nodes-1, 0, 0)
		net.RunCycles(int64(cfg.RoundTrip + cfg.RouterPipeline + 8))
	})
}
