package core_test

import (
	"strings"
	"testing"

	"photon/internal/core"
)

// TestRegistryCompleteness pins the registry contract every consumer
// relies on: each scheme resolves to a protocol, carries a unique CLI
// name, sits in exactly one arbitration group, and survives the
// CLI-name round trip used by config parsing.
func TestRegistryCompleteness(t *testing.T) {
	schemes := core.Schemes()
	if len(schemes) == 0 {
		t.Fatal("no schemes registered")
	}

	names := make(map[string]core.Scheme)
	paperNames := make(map[string]core.Scheme)
	for _, s := range schemes {
		sp, ok := core.LookupProtocol(s)
		if !ok {
			t.Fatalf("scheme %d has no registered protocol", int(s))
		}
		if sp.Scheme != s {
			t.Errorf("%v: spec.Scheme = %v, want %v", s, sp.Scheme, s)
		}
		if sp.New == nil {
			t.Errorf("%v: spec.New is nil", s)
		} else if sp.New() == nil {
			t.Errorf("%v: spec.New() returned nil", s)
		}

		if sp.Name == "" {
			t.Errorf("scheme %d: empty Name", int(s))
		}
		if prev, dup := names[sp.Name]; dup {
			t.Errorf("duplicate scheme name %q (%v and %v)", sp.Name, prev, s)
		}
		names[sp.Name] = s
		if s.String() != sp.Name {
			t.Errorf("%v: String() = %q, want registry name %q", s, s.String(), sp.Name)
		}
		if strings.Contains(sp.Name, " ") || sp.Name != strings.ToLower(sp.Name) {
			t.Errorf("%v: name %q is not a lowercase CLI token", s, sp.Name)
		}

		if sp.PaperName == "" {
			t.Errorf("%v: empty PaperName", s)
		}
		if prev, dup := paperNames[sp.PaperName]; dup {
			t.Errorf("duplicate paper name %q (%v and %v)", sp.PaperName, prev, s)
		}
		paperNames[sp.PaperName] = s

		if sp.Family == "" {
			t.Errorf("%v: empty Family", s)
		}
		if sp.Hardware.Name == "" {
			t.Errorf("%v: empty Hardware.Name", s)
		}

		// Trait accessors must agree with the spec they proxy.
		if s.Global() != sp.Global {
			t.Errorf("%v: Global() = %v, spec says %v", s, s.Global(), sp.Global)
		}
		if s.Handshake() != sp.Handshake {
			t.Errorf("%v: Handshake() = %v, spec says %v", s, s.Handshake(), sp.Handshake)
		}
		if s.CreditBased() != sp.CreditBased {
			t.Errorf("%v: CreditBased() = %v, spec says %v", s, s.CreditBased(), sp.CreditBased)
		}
		if s.Circulating() != sp.Circulating {
			t.Errorf("%v: Circulating() = %v, spec says %v", s, s.Circulating(), sp.Circulating)
		}
		if s.SendPolicy() != sp.SendPolicy {
			t.Errorf("%v: SendPolicy() = %v, spec says %v", s, s.SendPolicy(), sp.SendPolicy)
		}

		// A scheme is either credit-based or handshake-based, and
		// circulation forgoes both ledgers and the handshake waveguide.
		if sp.CreditBased && sp.Handshake {
			t.Errorf("%v: both CreditBased and Handshake", s)
		}
		if sp.Circulating && (sp.CreditBased || sp.Handshake) {
			t.Errorf("%v: Circulating with a credit or handshake ledger", s)
		}

		// Round trip through the CLI name (config parsing path).
		got, err := core.ParseScheme(sp.Name)
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", sp.Name, err)
		} else if got != s {
			t.Errorf("ParseScheme(%q) = %v, want %v", sp.Name, got, s)
		}
	}
}

// TestRegistryGroupPartition asserts every scheme appears in exactly one
// of GlobalGroup and DistributedGroup, and that both groups enumerate in
// registry order.
func TestRegistryGroupPartition(t *testing.T) {
	seen := make(map[core.Scheme]int)
	for _, s := range core.GlobalGroup() {
		if !s.Global() {
			t.Errorf("GlobalGroup contains non-global %v", s)
		}
		seen[s]++
	}
	for _, s := range core.DistributedGroup() {
		if s.Global() {
			t.Errorf("DistributedGroup contains global %v", s)
		}
		seen[s]++
	}
	for _, s := range core.Schemes() {
		if seen[s] != 1 {
			t.Errorf("%v appears in %d arbitration groups, want exactly 1", s, seen[s])
		}
	}
	if got, want := len(seen), len(core.Schemes()); got != want {
		t.Errorf("groups cover %d schemes, registry has %d", got, want)
	}
}

// TestParseSchemeUnknown pins the error shape: the valid-name list must
// come from the registry, so the message stays accurate as schemes are
// added.
func TestParseSchemeUnknown(t *testing.T) {
	_, err := core.ParseScheme("no-such-scheme")
	if err == nil {
		t.Fatal("ParseScheme accepted an unknown name")
	}
	for _, s := range core.Schemes() {
		if !strings.Contains(err.Error(), s.String()) {
			t.Errorf("error %q does not list valid scheme %q", err, s.String())
		}
	}
}

// TestRegisterProtocolRejectsDuplicates asserts the registry panics on a
// re-registration, which would otherwise silently shadow a scheme.
func TestRegisterProtocolRejectsDuplicates(t *testing.T) {
	sp, ok := core.LookupProtocol(core.GHS)
	if !ok {
		t.Fatal("GHS not registered")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering an existing scheme did not panic")
		}
	}()
	core.RegisterProtocol(sp)
}
