package core_test

import (
	"fmt"
	"testing"

	"photon/internal/core"
	"photon/internal/fault"
	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// The idle skip-ahead equivalence battery: RunCycles with the fast path
// enabled must be bit-identical — digest, clock, occupancy, delivery
// counts — to stepping every cycle. The scenarios alternate injection
// bursts with long idle gaps routed through RunCycles, which is exactly
// the shape (tape gaps, drain tails) the fast path exists for, and they
// include recovery timers, fault injection and eject stalls — the
// configurations where skipping a cycle that is not actually dead would
// drop a timer, a Bernoulli draw, or a watchdog observation.

// skipFingerprint condenses everything the equivalence battery compares.
type skipFingerprint struct {
	digest      uint64
	now         int64
	outstanding int
	backlog     int
	delivered   int64
	launches    int64
	retx        int64
}

func (fp skipFingerprint) String() string {
	return fmt.Sprintf("digest=%016x now=%d outstanding=%d backlog=%d delivered=%d launches=%d retx=%d",
		fp.digest, fp.now, fp.outstanding, fp.backlog, fp.delivered, fp.launches, fp.retx)
}

// driveBursty runs one network through a deterministic burst/gap schedule:
// a few cycles of random injections, then an idle gap handed to RunCycles
// whole, repeated, with a long tail gap at the end. All randomness comes
// from a private RNG seeded identically for both members of a pair.
func driveBursty(t testing.TB, cfg core.Config, seed uint64, rounds int) skipFingerprint {
	t.Helper()
	net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 40, Drain: 0})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	rng := sim.NewRNG(seed)
	cores := uint64(cfg.Cores())
	nodes := uint64(cfg.Nodes)
	for r := 0; r < rounds; r++ {
		burst := 1 + int(rng.Uint64()%6)
		for b := 0; b < burst; b++ {
			for j := uint64(0); j < rng.Uint64()%4; j++ {
				net.Inject(int(rng.Uint64()%cores), int(rng.Uint64()%nodes), router.ClassData, 0)
			}
			net.Step()
		}
		// Gaps between ~0 and ~3x the drain time of a small burst: some
		// end before quiescence, some deep inside it.
		net.RunCycles(int64(rng.Uint64() % 400))
	}
	net.RunCycles(1 << 12) // long tail: the fast path's main course
	return skipFingerprint{
		digest:      net.Digest(),
		now:         net.Now(),
		outstanding: net.Outstanding(),
		backlog:     net.Backlog(),
		delivered:   net.Stats().Delivered,
		launches:    net.Stats().Launches,
		retx:        net.Stats().Retransmits,
	}
}

// skipVariants enumerates the configuration corners the battery covers for
// each scheme: plain, recovery armed without faults (timers and watchdogs
// live but provably inert), faults + recovery (the gate must disengage),
// and eject stalls (per-cycle RNG draws the gate must respect).
func skipVariants() map[string]func(*core.Config) {
	return map[string]func(*core.Config){
		"plain": func(cfg *core.Config) {},
		"recovery": func(cfg *core.Config) {
			cfg.Recovery.Enabled = true
		},
		"faults": func(cfg *core.Config) {
			cfg.Recovery.Enabled = true
			cfg.Fault.Enabled = true
			cfg.Fault.Token = fault.ClassConfig{Rate: 0.002}
			cfg.Fault.Pulse = fault.ClassConfig{Rate: 0.002}
			cfg.Fault.Data = fault.ClassConfig{Rate: 0.002}
		},
		"ejectstall": func(cfg *core.Config) {
			cfg.EjectStallProb = 0.05
		},
	}
}

// TestSkipAheadEquivalence is the property test: for every scheme and
// configuration corner, a skip-enabled run and a cycle-by-cycle run of the
// same burst/gap schedule must agree on every observable.
func TestSkipAheadEquivalence(t *testing.T) {
	for _, s := range core.Schemes() {
		for name, mod := range skipVariants() {
			t.Run(s.String()+"/"+name, func(t *testing.T) {
				t.Parallel()
				for seed := uint64(1); seed <= 2; seed++ {
					cfg := core.DefaultConfig(s)
					cfg.Nodes = 16
					cfg.CoresPerNode = 2
					mod(&cfg)
					cfg.Seed = seed

					on := driveBursty(t, cfg, seed, 20)
					cfg.DisableSkipAhead = true
					off := driveBursty(t, cfg, seed, 20)
					if on != off {
						t.Errorf("seed %d: skip-on and skip-off runs diverged\n  on:  %v\n  off: %v", seed, on, off)
					}
				}
			})
		}
	}
}

// TestSkipAheadTapeEquivalence replays one sparse tape — long idle
// stretches between injections, where Tape.Run hands the gaps to
// RunCycles — with the fast path on and off, pinning digest equality on
// the driver real experiments use.
func TestSkipAheadTapeEquivalence(t *testing.T) {
	for _, s := range []core.Scheme{core.TokenChannel, core.TokenSlot, core.DHS, core.DHSCirculation} {
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			cfg := core.DefaultConfig(s)
			cfg.Nodes = 16
			cfg.CoresPerNode = 2
			window := sim.Window{Warmup: 200, Measure: 2000, Drain: 1000}
			tape, err := traffic.RecordTape(traffic.UniformRandom{}, 0.002, cfg.Nodes, cfg.CoresPerNode, 7, window.Warmup+window.Measure)
			if err != nil {
				t.Fatal(err)
			}
			run := func(disable bool) core.Result {
				c := cfg
				c.DisableSkipAhead = disable
				net, err := core.NewNetwork(c, window)
				if err != nil {
					t.Fatal(err)
				}
				res, err := tape.Run(net)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			on, off := run(false), run(true)
			if on.Digest != off.Digest {
				t.Errorf("tape digests diverged: skip-on %016x, skip-off %016x", on.Digest, off.Digest)
			}
			if on.AvgLatency != off.AvgLatency || on.Delivered != off.Delivered {
				t.Errorf("tape results diverged: skip-on %+v, skip-off %+v", on, off)
			}
		})
	}
}

// FuzzSkipAheadEquivalence searches the configuration space for any point
// where the fast path diverges from cycle-by-cycle stepping: scheme,
// geometry, load shape, fault and stall rates, and seed all vary.
func FuzzSkipAheadEquivalence(f *testing.F) {
	f.Add(uint8(4), uint8(16), uint64(1), uint16(300), false, false, uint16(0))
	f.Add(uint8(0), uint8(8), uint64(7), uint16(50), true, false, uint16(20))
	f.Add(uint8(6), uint8(32), uint64(3), uint16(999), false, true, uint16(0))
	f.Add(uint8(2), uint8(16), uint64(42), uint16(128), true, true, uint16(500))
	f.Fuzz(func(t *testing.T, schemeIdx, nodes uint8, seed uint64, gapScale uint16, recovery, stalls bool, faultMil uint16) {
		schemes := core.Schemes()
		cfg := core.DefaultConfig(schemes[int(schemeIdx)%len(schemes)])
		cfg.Nodes = int(nodes)
		cfg.CoresPerNode = 1
		if cfg.Nodes < 2 || cfg.Nodes > 64 || cfg.Nodes%cfg.RoundTrip != 0 {
			t.Skip("geometry outside the battery's budget")
		}
		cfg.Recovery.Enabled = recovery
		if stalls {
			cfg.EjectStallProb = 0.1
		}
		if faultMil > 0 {
			cfg.Fault.Enabled = true
			cfg.Recovery.Enabled = true
			rate := float64(faultMil%1000) / 1000 * 0.01
			cfg.Fault.Data = fault.ClassConfig{Rate: rate}
			cfg.Fault.Pulse = fault.ClassConfig{Rate: rate}
		}
		if cfg.Fault.Enabled {
			if err := cfg.Fault.Validate(); err != nil {
				t.Skip("fault config rejected")
			}
		}
		cfg.Seed = seed

		drive := func(disable bool) skipFingerprint {
			c := cfg
			c.DisableSkipAhead = disable
			net, err := core.NewNetwork(c, sim.Window{Warmup: 0, Measure: 1 << 40, Drain: 0})
			if err != nil {
				t.Skip("config rejected")
			}
			rng := sim.NewRNG(seed)
			for r := 0; r < 8; r++ {
				for b := 0; b < 3; b++ {
					if rng.Uint64()%2 == 0 {
						net.Inject(int(rng.Uint64()%uint64(c.Cores())), int(rng.Uint64()%uint64(c.Nodes)), router.ClassData, 0)
					}
					net.Step()
				}
				net.RunCycles(int64(rng.Uint64() % (uint64(gapScale) + 1)))
			}
			net.RunCycles(2048)
			return skipFingerprint{
				digest:      net.Digest(),
				now:         net.Now(),
				outstanding: net.Outstanding(),
				backlog:     net.Backlog(),
				delivered:   net.Stats().Delivered,
				launches:    net.Stats().Launches,
				retx:        net.Stats().Retransmits,
			}
		}
		if on, off := drive(false), drive(true); on != off {
			t.Errorf("skip-on and skip-off diverged\n  on:  %v\n  off: %v", on, off)
		}
	})
}
