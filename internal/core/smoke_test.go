package core_test

import (
	"fmt"
	"testing"

	"photon/internal/core"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// runUR drives a scheme with uniform-random traffic at the given per-core
// rate over a short window and returns the result.
func runUR(t testing.TB, scheme core.Scheme, rate float64) core.Result {
	t.Helper()
	cfg := core.DefaultConfig(scheme)
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatalf("NewNetwork(%v): %v", scheme, err)
	}
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, rate, cfg.Nodes, cfg.CoresPerNode, 42)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	return inj.Run(net)
}

// TestSmokeAllSchemes runs every scheme at a light load and checks basic
// sanity: packets are delivered, latency is plausible, nothing leaks.
func TestSmokeAllSchemes(t *testing.T) {
	for _, s := range core.Schemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			res := runUR(t, s, 0.02)
			if res.Delivered == 0 {
				t.Fatalf("no packets delivered")
			}
			if res.AvgLatency < 4 || res.AvgLatency > 60 {
				t.Errorf("implausible avg latency %.1f cycles at light load", res.AvgLatency)
			}
			if res.Unfinished > res.Delivered/10 {
				t.Errorf("too many unfinished packets at light load: %d unfinished vs %d delivered",
					res.Unfinished, res.Delivered)
			}
			t.Logf("%-16s load 0.02: lat=%.1f thr=%.4f arbWait=%.1f drop=%.4f unfinished=%d",
				s, res.AvgLatency, res.Throughput, res.AvgArbWait, res.DropRate, res.Unfinished)
		})
	}
}

// TestSmokeLoadLadder prints the latency/throughput ladder for each scheme
// so saturation points are visible in -v output (behavioural check: higher
// load never reduces accepted throughput at sub-saturation points).
func TestSmokeLoadLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("ladder is slow")
	}
	for _, s := range core.Schemes() {
		for _, rate := range []float64{0.01, 0.05, 0.11, 0.17, 0.23} {
			res := runUR(t, s, rate)
			fmt.Printf("%-16s rate=%.2f lat=%7.1f thr=%.4f drop=%.5f retx=%.5f circ=%.5f\n",
				s, rate, res.AvgLatency, res.Throughput, res.DropRate, res.RetransmitRate, res.CirculationRate)
		}
	}
}
