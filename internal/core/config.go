package core

import (
	"fmt"
	"math"

	"photon/internal/arbiter"
)

// Config fully describes one simulated network. The zero value is not
// runnable; start from DefaultConfig and override.
type Config struct {
	// Nodes is the number of ring nodes (64 in the paper).
	Nodes int
	// CoresPerNode is the concentration degree (4 in the paper); loads in
	// packets/cycle/core are converted to node rates with this.
	CoresPerNode int
	// RoundTrip is the optical loop's round-trip time R in cycles (8).
	// Nodes must be divisible by RoundTrip.
	RoundTrip int

	// Scheme selects arbitration + flow control.
	Scheme Scheme

	// BufferDepth is the home node's input buffer depth — the credit count
	// of the token-based schemes and the accept/drop threshold of the
	// handshake schemes (paper default 8).
	BufferDepth int
	// SetasideSize is the number of setaside slots per node for the
	// *Setaside schemes (paper sensitivity: 1..16; default 4).
	SetasideSize int
	// QueueCap bounds each node's output queue; 0 = unbounded (open-loop
	// evaluation standard).
	QueueCap int

	// EjectRate is how many packets per cycle the home buffer drains to
	// the cores (1 — the ejection port of the 2-stage router).
	EjectRate int
	// EjectStallProb stalls ejection for a cycle with this probability,
	// modelling receiver-side contention; 0 for open-loop sweeps.
	EjectStallProb float64
	// RouterPipeline is the electrical injection pipeline depth in cycles
	// (2: RC+SA then ST, paper §IV-B).
	RouterPipeline int
	// EjectLatency is the electrical ejection latency in cycles (1).
	EjectLatency int

	// MaxTokenHold caps consecutive sends per global-token grab
	// (0 = unbounded; credit and setaside limits bound it naturally).
	MaxTokenHold int

	// Fairness configures the contended-channel service-quota policy
	// (the "well-served nodes sit on their hands" idea of Fair Slot).
	Fairness arbiter.FairnessConfig

	// CheckInvariants enables per-cycle credit-conservation and channel
	// occupancy checks (cheap; on by default, benches may disable).
	CheckInvariants bool

	// Seed drives every stochastic element (ejection stalls; traffic
	// sources fork from it by convention).
	Seed uint64
}

// DefaultConfig returns the paper's evaluation configuration for a scheme:
// 64 nodes x 4 cores, R = 8, 8 credits, 4 setaside slots, fair token
// policies enabled.
func DefaultConfig(s Scheme) Config {
	return Config{
		Nodes:           64,
		CoresPerNode:    4,
		RoundTrip:       8,
		Scheme:          s,
		BufferDepth:     8,
		SetasideSize:    4,
		QueueCap:        0,
		EjectRate:       1,
		EjectStallProb:  0,
		RouterPipeline:  2,
		EjectLatency:    1,
		MaxTokenHold:    0,
		Fairness:        arbiter.DefaultFairness(),
		CheckInvariants: true,
		Seed:            1,
	}
}

// Cores returns the total number of cores.
func (c Config) Cores() int { return c.Nodes * c.CoresPerNode }

// Structural size caps enforced by Validate. They are far above anything
// the paper's studies use (64 nodes, 4 cores); their purpose is to make
// malformed sweep points fail fast with an error instead of letting
// NewNetwork attempt a multi-gigabyte allocation (the fuzz targets drive
// Validate with adversarial values).
const (
	MaxNodes        = 1 << 12
	MaxCoresPerNode = 1 << 8
	maxDepth        = 1 << 20 // buffers, queues, pipelines
)

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("core: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.Nodes > MaxNodes {
		return fmt.Errorf("core: node count %d exceeds the structural cap %d", c.Nodes, MaxNodes)
	}
	if c.CoresPerNode < 1 {
		return fmt.Errorf("core: cores per node must be >= 1, got %d", c.CoresPerNode)
	}
	if c.CoresPerNode > MaxCoresPerNode {
		return fmt.Errorf("core: cores per node %d exceeds the structural cap %d", c.CoresPerNode, MaxCoresPerNode)
	}
	if c.RoundTrip < 1 || c.Nodes%c.RoundTrip != 0 {
		return fmt.Errorf("core: round trip %d must be >= 1 and divide node count %d", c.RoundTrip, c.Nodes)
	}
	if c.Scheme < 0 || c.Scheme >= numSchemes {
		return fmt.Errorf("core: invalid scheme %d", int(c.Scheme))
	}
	if c.BufferDepth < 1 || c.BufferDepth > maxDepth {
		return fmt.Errorf("core: buffer depth must be in [1, %d], got %d", maxDepth, c.BufferDepth)
	}
	if (c.Scheme == GHSSetaside || c.Scheme == DHSSetaside) && c.SetasideSize < 1 {
		return fmt.Errorf("core: setaside schemes need SetasideSize >= 1, got %d", c.SetasideSize)
	}
	if c.SetasideSize > maxDepth {
		return fmt.Errorf("core: setaside size %d exceeds the structural cap %d", c.SetasideSize, maxDepth)
	}
	if c.QueueCap < 0 {
		return fmt.Errorf("core: queue cap must be >= 0, got %d", c.QueueCap)
	}
	if c.EjectRate < 1 || c.EjectRate > maxDepth {
		return fmt.Errorf("core: eject rate must be in [1, %d], got %d", maxDepth, c.EjectRate)
	}
	if math.IsNaN(c.EjectStallProb) || c.EjectStallProb < 0 || c.EjectStallProb >= 1 {
		return fmt.Errorf("core: eject stall probability must be in [0,1), got %g", c.EjectStallProb)
	}
	if c.RouterPipeline < 0 || c.RouterPipeline > maxDepth {
		return fmt.Errorf("core: router pipeline must be in [0, %d], got %d", maxDepth, c.RouterPipeline)
	}
	if c.EjectLatency < 0 || c.EjectLatency > maxDepth {
		return fmt.Errorf("core: eject latency must be in [0, %d], got %d", maxDepth, c.EjectLatency)
	}
	if c.MaxTokenHold < 0 {
		return fmt.Errorf("core: max token hold must be >= 0, got %d", c.MaxTokenHold)
	}
	return nil
}
