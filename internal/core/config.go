package core

import (
	"fmt"
	"math"

	"photon/internal/arbiter"
	"photon/internal/fault"
)

// Config fully describes one simulated network. The zero value is not
// runnable; start from DefaultConfig and override.
type Config struct {
	// Nodes is the number of ring nodes (64 in the paper).
	Nodes int
	// CoresPerNode is the concentration degree (4 in the paper); loads in
	// packets/cycle/core are converted to node rates with this.
	CoresPerNode int
	// RoundTrip is the optical loop's round-trip time R in cycles (8).
	// Nodes must be divisible by RoundTrip.
	RoundTrip int

	// Scheme selects arbitration + flow control.
	Scheme Scheme

	// BufferDepth is the home node's input buffer depth — the credit count
	// of the token-based schemes and the accept/drop threshold of the
	// handshake schemes (paper default 8).
	BufferDepth int
	// SetasideSize is the number of setaside slots per node for the
	// *Setaside schemes (paper sensitivity: 1..16; default 4).
	SetasideSize int
	// QueueCap bounds each node's output queue; 0 = unbounded (open-loop
	// evaluation standard).
	QueueCap int

	// EjectRate is how many packets per cycle the home buffer drains to
	// the cores (1 — the ejection port of the 2-stage router).
	EjectRate int
	// EjectStallProb stalls ejection for a cycle with this probability,
	// modelling receiver-side contention; 0 for open-loop sweeps.
	EjectStallProb float64
	// RouterPipeline is the electrical injection pipeline depth in cycles
	// (2: RC+SA then ST, paper §IV-B).
	RouterPipeline int
	// EjectLatency is the electrical ejection latency in cycles (1).
	EjectLatency int

	// MaxTokenHold caps consecutive sends per global-token grab
	// (0 = unbounded; credit and setaside limits bound it naturally).
	MaxTokenHold int

	// Fairness configures the contended-channel service-quota policy
	// (the "well-served nodes sit on their hands" idea of Fair Slot).
	Fairness arbiter.FairnessConfig

	// CheckInvariants enables per-cycle credit-conservation and channel
	// occupancy checks (cheap; on by default, benches may disable).
	CheckInvariants bool

	// DisableSkipAhead turns off the engine's idle fast path: with it set,
	// RunCycles steps every cycle individually even when the network is
	// provably quiescent. Skip-ahead is digest-exact by construction (the
	// equivalence battery asserts it), so the knob exists for those tests
	// and for debugging, not for correctness.
	DisableSkipAhead bool

	// Seed drives every stochastic element (ejection stalls; traffic
	// sources fork from it by convention).
	Seed uint64

	// Fault configures the optical fault injector (internal/fault). The
	// zero value leaves the substrate perfect; with Fault.Seed == 0 the
	// fault streams derive from the network Seed.
	Fault fault.Config
	// Recovery enables and tunes the protocol-level fault recovery
	// machinery (retransmit timeouts, token-regeneration watchdog). It is
	// independent of Fault so tests can demonstrate both the recovery
	// (faults + recovery) and the stranding (faults alone) behaviours.
	Recovery RecoveryConfig
}

// RecoveryConfig tunes the fault-recovery protocol. All windows are in
// cycles; zeros select defaults derived from the loop round trip R.
type RecoveryConfig struct {
	// Enabled arms sender retransmit timers and home watchdogs. With no
	// faults configured the machinery is provably inert: timers are always
	// answered before their deadline and watchdogs always observe token
	// activity, so run digests are bit-identical to recovery-off runs.
	Enabled bool
	// RetxTimeout is the base sender timeout: cycles after a launch with
	// no ACK/NACK before the sender assumes the answer (or the packet) was
	// lost and retransmits. 0 derives 2*(R+2), comfortably above the fixed
	// R+1 answer delay so a healthy handshake can never time out.
	RetxTimeout int
	// RetxBackoffCap caps the exponential backoff: the effective timeout
	// is RetxTimeout << min(consecutiveTimeouts, cap). 0 derives 4.
	RetxBackoffCap int
	// WatchdogWindow is how many cycles of arbitration silence (no token
	// pass and no arrival at home) a globally arbitrated channel tolerates
	// before the home node regenerates the token. 0 derives 4R+8, above
	// the longest healthy silence (a capture at the far side of the loop
	// followed by the first flit's flight). The duplicate-token guard in
	// the arbiter makes even a misjudged firing safe.
	WatchdogWindow int
}

// retxTimeoutBase resolves the sender timeout default.
func (c Config) retxTimeoutBase() int64 {
	if c.Recovery.RetxTimeout > 0 {
		return int64(c.Recovery.RetxTimeout)
	}
	return int64(2 * (c.RoundTrip + 2))
}

// retxBackoffCap resolves the backoff-shift cap default.
func (c Config) retxBackoffCap() int {
	if c.Recovery.RetxBackoffCap > 0 {
		return c.Recovery.RetxBackoffCap
	}
	return 4
}

// watchdogWindow resolves the token-watchdog silence window default.
func (c Config) watchdogWindow() int64 {
	if c.Recovery.WatchdogWindow > 0 {
		return int64(c.Recovery.WatchdogWindow)
	}
	return int64(4*c.RoundTrip + 8)
}

// DefaultConfig returns the paper's evaluation configuration for a scheme:
// 64 nodes x 4 cores, R = 8, 8 credits, 4 setaside slots, fair token
// policies enabled.
func DefaultConfig(s Scheme) Config {
	return Config{
		Nodes:           64,
		CoresPerNode:    4,
		RoundTrip:       8,
		Scheme:          s,
		BufferDepth:     8,
		SetasideSize:    4,
		QueueCap:        0,
		EjectRate:       1,
		EjectStallProb:  0,
		RouterPipeline:  2,
		EjectLatency:    1,
		MaxTokenHold:    0,
		Fairness:        arbiter.DefaultFairness(),
		CheckInvariants: true,
		Seed:            1,
	}
}

// Cores returns the total number of cores.
func (c Config) Cores() int { return c.Nodes * c.CoresPerNode }

// Structural size caps enforced by Validate. They are far above anything
// the paper's studies use (64 nodes, 4 cores); their purpose is to make
// malformed sweep points fail fast with an error instead of letting
// NewNetwork attempt a multi-gigabyte allocation (the fuzz targets drive
// Validate with adversarial values).
const (
	MaxNodes        = 1 << 12
	MaxCoresPerNode = 1 << 8
	maxDepth        = 1 << 20 // buffers, queues, pipelines
)

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("core: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.Nodes > MaxNodes {
		return fmt.Errorf("core: node count %d exceeds the structural cap %d", c.Nodes, MaxNodes)
	}
	if c.CoresPerNode < 1 {
		return fmt.Errorf("core: cores per node must be >= 1, got %d", c.CoresPerNode)
	}
	if c.CoresPerNode > MaxCoresPerNode {
		return fmt.Errorf("core: cores per node %d exceeds the structural cap %d", c.CoresPerNode, MaxCoresPerNode)
	}
	if c.RoundTrip < 1 || c.Nodes%c.RoundTrip != 0 {
		return fmt.Errorf("core: round trip %d must be >= 1 and divide node count %d", c.RoundTrip, c.Nodes)
	}
	if _, ok := LookupProtocol(c.Scheme); !ok {
		return fmt.Errorf("core: invalid scheme %d", int(c.Scheme))
	}
	if c.BufferDepth < 1 || c.BufferDepth > maxDepth {
		return fmt.Errorf("core: buffer depth must be in [1, %d], got %d", maxDepth, c.BufferDepth)
	}
	if (c.Scheme == GHSSetaside || c.Scheme == DHSSetaside) && c.SetasideSize < 1 {
		return fmt.Errorf("core: setaside schemes need SetasideSize >= 1, got %d", c.SetasideSize)
	}
	if c.SetasideSize > maxDepth {
		return fmt.Errorf("core: setaside size %d exceeds the structural cap %d", c.SetasideSize, maxDepth)
	}
	if c.QueueCap < 0 {
		return fmt.Errorf("core: queue cap must be >= 0, got %d", c.QueueCap)
	}
	if c.EjectRate < 1 || c.EjectRate > maxDepth {
		return fmt.Errorf("core: eject rate must be in [1, %d], got %d", maxDepth, c.EjectRate)
	}
	if math.IsNaN(c.EjectStallProb) || c.EjectStallProb < 0 || c.EjectStallProb >= 1 {
		return fmt.Errorf("core: eject stall probability must be in [0,1), got %g", c.EjectStallProb)
	}
	if c.RouterPipeline < 0 || c.RouterPipeline > maxDepth {
		return fmt.Errorf("core: router pipeline must be in [0, %d], got %d", maxDepth, c.RouterPipeline)
	}
	if c.EjectLatency < 0 || c.EjectLatency > maxDepth {
		return fmt.Errorf("core: eject latency must be in [0, %d], got %d", maxDepth, c.EjectLatency)
	}
	if c.MaxTokenHold < 0 {
		return fmt.Errorf("core: max token hold must be >= 0, got %d", c.MaxTokenHold)
	}
	// Fault rates are validated whenever the block is enabled — NaN or
	// out-of-[0,1] rates must fail here, not surface as skewed Bernoulli
	// draws deep in a run (mirrors the EjectStallProb check above).
	if c.Fault.Enabled {
		if err := c.Fault.Validate(); err != nil {
			return err
		}
	}
	if c.Recovery.RetxTimeout < 0 || c.Recovery.RetxTimeout > maxDepth {
		return fmt.Errorf("core: retransmit timeout must be in [0, %d], got %d", maxDepth, c.Recovery.RetxTimeout)
	}
	if c.Recovery.Enabled && c.Recovery.RetxTimeout > 0 && c.Recovery.RetxTimeout <= c.RoundTrip+1 {
		// A handshake answer arrives exactly R+1 cycles after launch; a
		// timeout at or below that would fire on every healthy send.
		return fmt.Errorf("core: retransmit timeout %d must exceed the handshake answer delay R+1 = %d",
			c.Recovery.RetxTimeout, c.RoundTrip+1)
	}
	if c.Recovery.RetxBackoffCap < 0 || c.Recovery.RetxBackoffCap > 32 {
		return fmt.Errorf("core: retransmit backoff cap must be in [0, 32], got %d", c.Recovery.RetxBackoffCap)
	}
	if c.Recovery.WatchdogWindow < 0 || c.Recovery.WatchdogWindow > maxDepth {
		return fmt.Errorf("core: watchdog window must be in [0, %d], got %d", maxDepth, c.Recovery.WatchdogWindow)
	}
	return nil
}
