package core_test

import (
	"testing"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// TestEventSequenceCleanDelivery: a single un-contended DHS packet emits
// exactly inject -> enqueue -> launch -> accept -> ack, deliver — in order.
func TestEventSequenceCleanDelivery(t *testing.T) {
	cfg := core.DefaultConfig(core.DHS)
	cfg.Fairness.Enabled = false
	net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	var seq []core.EventType
	net.Trace(func(e core.Event) { seq = append(seq, e.Type) })
	net.RunCycles(int64(cfg.RoundTrip))
	net.Inject(4, 9, router.ClassData, 0)
	net.RunCycles(40)

	want := []core.EventType{core.EvInject, core.EvEnqueue, core.EvLaunch, core.EvAccept, core.EvDeliver, core.EvAck}
	// Deliver and Ack can appear in either order (ejection is phase 3,
	// handshake delivery phase 2 of a later cycle); compare as a multiset
	// with ordered prefix.
	if len(seq) != len(want) {
		t.Fatalf("event sequence %v, want %d events", seq, len(want))
	}
	if seq[0] != core.EvInject || seq[1] != core.EvEnqueue || seq[2] != core.EvLaunch || seq[3] != core.EvAccept {
		t.Fatalf("prefix wrong: %v", seq)
	}
	rest := map[core.EventType]int{}
	for _, e := range seq[4:] {
		rest[e]++
	}
	if rest[core.EvDeliver] != 1 || rest[core.EvAck] != 1 {
		t.Fatalf("tail wrong: %v", seq)
	}
}

// TestEventSequenceDropRetransmit: with a clogged receiver, the observer
// sees drop -> nack -> (re)launch and eventually accept+deliver.
func TestEventSequenceDropRetransmit(t *testing.T) {
	cfg := core.DefaultConfig(core.DHSSetaside)
	cfg.BufferDepth = 1
	cfg.EjectStallProb = 0.8
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[core.EventType]int{}
	net.Trace(func(e core.Event) { counts[e.Type]++ })
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.08, cfg.Nodes, cfg.CoresPerNode, 7)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 2000; cyc++ {
		inj.Tick(net)
		net.Step()
	}
	net.Drain(60_000)
	if counts[core.EvDrop] == 0 || counts[core.EvNack] == 0 {
		t.Fatalf("no drops/nacks observed: %v", counts)
	}
	if counts[core.EvDrop] != counts[core.EvNack] {
		t.Fatalf("drops %d != nacks %d", counts[core.EvDrop], counts[core.EvNack])
	}
	if counts[core.EvLaunch] != counts[core.EvAccept]+counts[core.EvDrop] {
		t.Fatalf("launches %d != accepts %d + drops %d",
			counts[core.EvLaunch], counts[core.EvAccept], counts[core.EvDrop])
	}
	st := net.Stats()
	if int64(counts[core.EvDeliver]) != st.Delivered {
		t.Fatalf("deliver events %d != stats %d", counts[core.EvDeliver], st.Delivered)
	}
}

// TestEventReinjectCirculation: circulation emits reinject events, never
// drop/nack.
func TestEventReinjectCirculation(t *testing.T) {
	cfg := core.DefaultConfig(core.DHSCirculation)
	cfg.BufferDepth = 1
	cfg.EjectStallProb = 0.8
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[core.EventType]int{}
	net.Trace(func(e core.Event) { counts[e.Type]++ })
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.08, cfg.Nodes, cfg.CoresPerNode, 7)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 2000; cyc++ {
		inj.Tick(net)
		net.Step()
	}
	net.Drain(60_000)
	if counts[core.EvReinject] == 0 {
		t.Fatal("no reinjections observed under a clogged receiver")
	}
	if counts[core.EvDrop] != 0 || counts[core.EvNack] != 0 || counts[core.EvAck] != 0 {
		t.Fatalf("circulation produced handshake events: %v", counts)
	}
}

func TestEventTypeStrings(t *testing.T) {
	for e := core.EvEnqueue; e <= core.EvInject; e++ {
		if e.String() == "event?" {
			t.Fatalf("event %d lacks a label", int(e))
		}
	}
	if core.EventType(99).String() != "event?" {
		t.Fatal("unknown event label wrong")
	}
}
