package core

import (
	"photon/internal/arbiter"
	"photon/internal/flow"
	"photon/internal/phys"
	"photon/internal/router"
	"photon/internal/sim"
)

// The credit-based baselines (Vantrease MICRO'09): delivery is guaranteed
// by construction, so senders fire and forget, and every arrival MUST fit
// in the home buffer — a rejection is a protocol bug, not backpressure.

func init() {
	RegisterProtocol(ProtocolSpec{
		Scheme:      TokenChannel,
		Name:        "token-channel",
		PaperName:   "Token Channel",
		Family:      "credit-global",
		Global:      true,
		CreditBased: true,
		SendPolicy:  router.FireAndForget,
		Hardware:    phys.SchemeHardware{Name: "Token Channel", Arbitration: phys.GlobalArbitration, TokenCreditBits: 6},
		New:         func() Protocol { return creditGlobalProtocol{} },
	})
	RegisterProtocol(ProtocolSpec{
		Scheme:      TokenSlot,
		Name:        "token-slot",
		PaperName:   "Token Slot",
		Family:      "credit-slot",
		CreditBased: true,
		SendPolicy:  router.FireAndForget,
		Hardware:    phys.SchemeHardware{Name: "Token Slot", Arbitration: phys.DistributedArbitration},
		New:         func() Protocol { return creditSlotProtocol{} },
	})
}

// bindCreditArrive builds the arrival handler shared by both credit
// schemes: claim the reserved buffer slot and accept — the credit ledger
// guarantees space.
// Bound once per channel at construction; never inline (see bindGlobalCapture).
//
//go:noinline
func bindCreditArrive(n *Network, c *channel, claim func() error, label string) func(now int64, pkt *router.Packet) {
	return func(now int64, pkt *router.Packet) {
		must(claim())
		if !c.in.Accept(pkt) {
			panic("core: credit-guaranteed arrival rejected by home buffer (" + label + ")")
		}
		pkt.AcceptedAt = now
		n.emit(EvAccept, pkt)
	}
}

// creditGlobalProtocol is Token Channel: one relayed token per channel
// carrying the home node's credit count; capture requires credits aboard,
// each send spends one, and passing home reimburses freed credits.
type creditGlobalProtocol struct{}

func (creditGlobalProtocol) Wire(n *Network, c *channel) {
	c.glob = arbiter.NewGlobalToken(n.cfg.Nodes, n.geom.NodesPerCycle())
	c.rc = flow.NewRelayedCredits(n.cfg.BufferDepth)
}

func (creditGlobalProtocol) Arbitrate(n *Network, c *channel) func(now int64) {
	return bindGlobalArbitrate(n, c, bindGlobalSweep(n, c, c.rc), c.rc.PassHome)
}

func (creditGlobalProtocol) LaunchHeld(n *Network, c *channel) func(now int64) {
	return bindHeldLaunch(n, c, c.rc)
}

func (creditGlobalProtocol) Arrive(n *Network, c *channel) func(now int64, pkt *router.Packet) {
	return bindCreditArrive(n, c, c.rc.Arrive, "token channel")
}

func (creditGlobalProtocol) Handshake(n *Network, c *channel) func(now int64) { return nil }

func (creditGlobalProtocol) Eject(n *Network, c *channel) func() {
	return func() { must(c.rc.Eject()) }
}

func (creditGlobalProtocol) RecoverData(n *Network, c *channel) func(pkt *router.Packet) {
	return func(pkt *router.Packet) {
		// The scheme reserved a buffer slot for this arrival; the slot is
		// claimed and immediately freed so the credit ledger stays exact
		// (the credit travels home through the usual reimbursement path).
		must(c.rc.Arrive())
		must(c.rc.Eject())
		n.classifyDataLoss(pkt)
	}
}

func (creditGlobalProtocol) Invariant(n *Network, c *channel) func() error {
	return c.rc.Invariant
}

// creditSlotProtocol is Token Slot: the home node emits one-credit tokens
// while it has credits; a captured token is both grant and buffer
// reservation.
type creditSlotProtocol struct{}

func (creditSlotProtocol) Wire(n *Network, c *channel) {
	c.slot = arbiter.NewSlotEmitter(n.cfg.Nodes, n.cfg.RoundTrip, n.geom.NodesPerCycle())
	c.sc = flow.NewSlotCredits(n.cfg.BufferDepth)
	if n.faults != nil {
		// Recovery state: a credit that left home aboard a token that died
		// is reclaimed at the token's nominal expiry window.
		c.regen = sim.NewDelayLine[int64](n.cfg.RoundTrip + 2)
	}
}

func (creditSlotProtocol) Arbitrate(n *Network, c *channel) func(now int64) {
	// Token Slot: emission gated on credits.
	gate := func() bool {
		if !c.sc.CanEmit() {
			return false
		}
		c.sc.Emit()
		if n.faults != nil && n.faults.KillToken(c.home, n.now) {
			// The token dies leaving home with a credit aboard; the
			// credit is stranded until the watchdog reclaims it at the
			// token's nominal expiry window (recovery enabled), or
			// forever (recovery disabled — a real availability loss).
			n.tokenFault(c)
			return false
		}
		return true
	}
	return bindSlotArbitrate(n, c, gate, c.sc, c.sc.Expire)
}

func (creditSlotProtocol) LaunchHeld(n *Network, c *channel) func(now int64) { return nil }

func (creditSlotProtocol) Arrive(n *Network, c *channel) func(now int64, pkt *router.Packet) {
	return bindCreditArrive(n, c, c.sc.Arrive, "token slot")
}

func (creditSlotProtocol) Handshake(n *Network, c *channel) func(now int64) { return nil }

func (creditSlotProtocol) Eject(n *Network, c *channel) func() {
	return func() { must(c.sc.Eject()) }
}

func (creditSlotProtocol) RecoverData(n *Network, c *channel) func(pkt *router.Packet) {
	return func(pkt *router.Packet) {
		must(c.sc.Arrive())
		must(c.sc.Eject())
		n.classifyDataLoss(pkt)
	}
}

func (creditSlotProtocol) Invariant(n *Network, c *channel) func() error {
	return c.sc.Invariant
}
