package core

import "photon/internal/router"

// EventType labels a protocol-level packet event.
type EventType int

// The observable protocol events, in the order a packet can experience
// them.
const (
	// EvEnqueue: the packet entered its output queue after the injection
	// pipeline.
	EvEnqueue EventType = iota
	// EvLaunch: the packet was launched onto an optical data channel
	// (fires again for retransmissions).
	EvLaunch
	// EvAccept: the home node buffered the packet.
	EvAccept
	// EvDrop: the home node had no buffer slot; the packet was discarded
	// and a NACK issued (handshake schemes).
	EvDrop
	// EvReinject: the home node put the packet back onto its own channel
	// (DHS with circulation).
	EvReinject
	// EvAck / EvNack: the handshake answer reached the sender.
	EvAck
	EvNack
	// EvDeliver: the packet was ejected to the destination's cores.
	EvDeliver
	// EvInject: a core handed the packet to its router (fires before
	// EvEnqueue; declared last among the seed events to keep historical
	// event numbering stable).
	EvInject

	// Fault-injection events (appended after EvInject for the same
	// numbering-stability reason; none of them can fire on a fault-free
	// run, so seed digests are untouched).

	// EvFault: the injector destroyed something — Aux encodes the fault
	// class and the channel/node element (see faultAux). For data faults
	// the discarded packet is attached; token/pulse/stall faults are
	// packet-less.
	EvFault
	// EvTimeout: a sender's retransmit timer expired; the attached packet
	// is marked for retransmission.
	EvTimeout
	// EvTokenRegen: a home node regenerated a lost arbitration token
	// (global watchdog re-emission, or a slot credit reclaimed at its
	// nominal expiry window). Aux is the home id.
	EvTokenRegen
	// EvDupDrop: the home node recognised the arrival as a duplicate of an
	// already-accepted packet (its ACK had been lost) and discarded it,
	// re-issuing the ACK.
	EvDupDrop

	// Tap-only events (appended after EvDupDrop, same numbering-stability
	// reason). These fire only toward an attached Tracer and are never
	// folded into the run digest: they exist for latency attribution, not
	// for the determinism fingerprint, and arming a tap must reproduce
	// every recorded digest bit for bit. firstTapOnly marks the boundary.

	// EvHeadReady: the packet became head-eligible for channel arbitration
	// (the cycle Packet.ReadyAt records; fires once per packet).
	EvHeadReady
	// EvTokenCapture: a node captured the channel's arbitration token (a
	// relayed global token or a distributed slot grant). Packet-less; Aux
	// is tokenAux(node, home).
	EvTokenCapture
	// EvTokenRelease: a global-token holder released the token back onto
	// the arbitration loop. Packet-less; Aux is tokenAux(node, home).
	EvTokenRelease
	// EvSetasideEnter: the launched packet was parked in a setaside slot
	// to await its handshake (Setaside policy only).
	EvSetasideEnter
	// EvSetasideExit: the packet left its setaside slot (its ACK arrived).
	// A NACKed packet stays in its slot awaiting retransmission and exits
	// only when a later copy is finally ACKed.
	EvSetasideExit
)

// firstTapOnly is the first tap-only event type: everything below it is
// canonical (digest-folded), everything from it on feeds only the tap.
const firstTapOnly = EvHeadReady

// TapOnly reports whether e is a tap-only event — observable through a
// Tracer but never folded into the run digest.
func (e EventType) TapOnly() bool { return e >= firstTapOnly }

func (e EventType) String() string {
	switch e {
	case EvEnqueue:
		return "enqueue"
	case EvLaunch:
		return "launch"
	case EvAccept:
		return "accept"
	case EvDrop:
		return "drop"
	case EvReinject:
		return "reinject"
	case EvAck:
		return "ack"
	case EvNack:
		return "nack"
	case EvDeliver:
		return "deliver"
	case EvInject:
		return "inject"
	case EvFault:
		return "fault"
	case EvTimeout:
		return "timeout"
	case EvTokenRegen:
		return "token-regen"
	case EvDupDrop:
		return "dup-drop"
	case EvHeadReady:
		return "head-ready"
	case EvTokenCapture:
		return "token-capture"
	case EvTokenRelease:
		return "token-release"
	case EvSetasideEnter:
		return "setaside-enter"
	case EvSetasideExit:
		return "setaside-exit"
	default:
		return "event?"
	}
}

// Event is one protocol observation. Packet is nil for the packet-less
// fault events (token/pulse/stall EvFault, EvTokenRegen), whose Aux field
// carries the element instead.
type Event struct {
	Cycle  int64
	Type   EventType
	Packet *router.Packet
	Aux    uint64
}

// Trace installs an event observer on the network. The hook fires inline
// during Step, so observers must be fast and must not mutate the network;
// pass nil to remove. Delivery events still fire OnDeliver as well. The
// hook sees only canonical (digest-folded) events; a Tracer attached with
// SetTracer additionally receives the tap-only attribution events.
func (n *Network) Trace(hook func(Event)) {
	n.onEvent = hook
}

// Tracer is a per-run protocol event sink: it receives the complete
// lifecycle stream — every canonical digest event plus the tap-only
// arbitration-side events (EvHeadReady, EvTokenCapture/Release,
// EvSetasideEnter/Exit) the digest never needed. Observe fires inline
// during Step, so implementations must be fast, must not mutate the
// network, and should not retain the Event's Packet pointer beyond the
// call (copy what they need — the engine keeps mutating the packet).
type Tracer interface {
	Observe(Event)
}

// SetTracer attaches (or, with nil, detaches) the run's event tap. A nil
// tap costs nothing on the hot path beyond a pointer test, and an armed
// tap never perturbs the run digest: tap-only events are not folded, so
// traced and untraced runs of one (Config, traffic) pair are bit-identical.
func (n *Network) SetTracer(t Tracer) {
	n.tap = t
}

// emit folds the event into the run digest and fires the observers. The
// digest fold is unconditional: the fingerprint must cover every run,
// traced or not, or repeat runs could not be compared.
func (n *Network) emit(t EventType, p *router.Packet) {
	n.stats.digest.observe(eventHash(n.now, t, p))
	if n.onEvent != nil {
		n.onEvent(Event{Cycle: n.now, Type: t, Packet: p})
	}
	if n.tap != nil {
		n.tap.Observe(Event{Cycle: n.now, Type: t, Packet: p})
	}
}

// emitMeta is emit for packet-less events: the digest folds the aux word
// where a packet's identity would go, so token and stall faults are just
// as canonical — and just as digest-visible — as packet events.
func (n *Network) emitMeta(t EventType, aux uint64) {
	n.stats.digest.observe(metaHash(n.now, t, aux))
	if n.onEvent != nil {
		n.onEvent(Event{Cycle: n.now, Type: t, Aux: aux})
	}
	if n.tap != nil {
		n.tap.Observe(Event{Cycle: n.now, Type: t, Aux: aux})
	}
}

// emitTap fires a tap-only packet event: tracer-visible, digest-inert.
func (n *Network) emitTap(t EventType, p *router.Packet) {
	if n.tap != nil {
		n.tap.Observe(Event{Cycle: n.now, Type: t, Packet: p})
	}
}

// emitTapMeta fires a tap-only packet-less event (token motion).
func (n *Network) emitTapMeta(t EventType, aux uint64) {
	if n.tap != nil {
		n.tap.Observe(Event{Cycle: n.now, Type: t, Aux: aux})
	}
}

// tokenAux encodes a token capture/release event's (node, home) pair into
// the tap aux word; TokenAux decodes it for trace consumers.
func tokenAux(node, home int) uint64 {
	return uint64(uint32(node))<<32 | uint64(uint32(home))
}

// TokenAux decodes an EvTokenCapture / EvTokenRelease aux word into the
// capturing (or releasing) node id and the channel home id.
func TokenAux(aux uint64) (node, home int) {
	return int(uint32(aux >> 32)), int(uint32(aux))
}
