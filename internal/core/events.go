package core

import "photon/internal/router"

// EventType labels a protocol-level packet event.
type EventType int

// The observable protocol events, in the order a packet can experience
// them.
const (
	// EvEnqueue: the packet entered its output queue after the injection
	// pipeline.
	EvEnqueue EventType = iota
	// EvLaunch: the packet was launched onto an optical data channel
	// (fires again for retransmissions).
	EvLaunch
	// EvAccept: the home node buffered the packet.
	EvAccept
	// EvDrop: the home node had no buffer slot; the packet was discarded
	// and a NACK issued (handshake schemes).
	EvDrop
	// EvReinject: the home node put the packet back onto its own channel
	// (DHS with circulation).
	EvReinject
	// EvAck / EvNack: the handshake answer reached the sender.
	EvAck
	EvNack
	// EvDeliver: the packet was ejected to the destination's cores.
	EvDeliver
	// EvInject: a core handed the packet to its router (fires before
	// EvEnqueue; declared last among the seed events to keep historical
	// event numbering stable).
	EvInject

	// Fault-injection events (appended after EvInject for the same
	// numbering-stability reason; none of them can fire on a fault-free
	// run, so seed digests are untouched).

	// EvFault: the injector destroyed something — Aux encodes the fault
	// class and the channel/node element (see faultAux). For data faults
	// the discarded packet is attached; token/pulse/stall faults are
	// packet-less.
	EvFault
	// EvTimeout: a sender's retransmit timer expired; the attached packet
	// is marked for retransmission.
	EvTimeout
	// EvTokenRegen: a home node regenerated a lost arbitration token
	// (global watchdog re-emission, or a slot credit reclaimed at its
	// nominal expiry window). Aux is the home id.
	EvTokenRegen
	// EvDupDrop: the home node recognised the arrival as a duplicate of an
	// already-accepted packet (its ACK had been lost) and discarded it,
	// re-issuing the ACK.
	EvDupDrop
)

func (e EventType) String() string {
	switch e {
	case EvEnqueue:
		return "enqueue"
	case EvLaunch:
		return "launch"
	case EvAccept:
		return "accept"
	case EvDrop:
		return "drop"
	case EvReinject:
		return "reinject"
	case EvAck:
		return "ack"
	case EvNack:
		return "nack"
	case EvDeliver:
		return "deliver"
	case EvInject:
		return "inject"
	case EvFault:
		return "fault"
	case EvTimeout:
		return "timeout"
	case EvTokenRegen:
		return "token-regen"
	case EvDupDrop:
		return "dup-drop"
	default:
		return "event?"
	}
}

// Event is one protocol observation. Packet is nil for the packet-less
// fault events (token/pulse/stall EvFault, EvTokenRegen), whose Aux field
// carries the element instead.
type Event struct {
	Cycle  int64
	Type   EventType
	Packet *router.Packet
	Aux    uint64
}

// Trace installs an event observer on the network. The hook fires inline
// during Step, so observers must be fast and must not mutate the network;
// pass nil to remove. Delivery events still fire OnDeliver as well.
func (n *Network) Trace(hook func(Event)) {
	n.onEvent = hook
}

// emit folds the event into the run digest and fires the observer if one
// is installed. The digest fold is unconditional: the fingerprint must
// cover every run, traced or not, or repeat runs could not be compared.
func (n *Network) emit(t EventType, p *router.Packet) {
	n.stats.digest.observe(eventHash(n.now, t, p))
	if n.onEvent != nil {
		n.onEvent(Event{Cycle: n.now, Type: t, Packet: p})
	}
}

// emitMeta is emit for packet-less events: the digest folds the aux word
// where a packet's identity would go, so token and stall faults are just
// as canonical — and just as digest-visible — as packet events.
func (n *Network) emitMeta(t EventType, aux uint64) {
	n.stats.digest.observe(metaHash(n.now, t, aux))
	if n.onEvent != nil {
		n.onEvent(Event{Cycle: n.now, Type: t, Aux: aux})
	}
}
