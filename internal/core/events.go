package core

import "photon/internal/router"

// EventType labels a protocol-level packet event.
type EventType int

// The observable protocol events, in the order a packet can experience
// them.
const (
	// EvEnqueue: the packet entered its output queue after the injection
	// pipeline.
	EvEnqueue EventType = iota
	// EvLaunch: the packet was launched onto an optical data channel
	// (fires again for retransmissions).
	EvLaunch
	// EvAccept: the home node buffered the packet.
	EvAccept
	// EvDrop: the home node had no buffer slot; the packet was discarded
	// and a NACK issued (handshake schemes).
	EvDrop
	// EvReinject: the home node put the packet back onto its own channel
	// (DHS with circulation).
	EvReinject
	// EvAck / EvNack: the handshake answer reached the sender.
	EvAck
	EvNack
	// EvDeliver: the packet was ejected to the destination's cores.
	EvDeliver
	// EvInject: a core handed the packet to its router (fires before
	// EvEnqueue; declared last to keep historical event numbering stable).
	EvInject
)

func (e EventType) String() string {
	switch e {
	case EvEnqueue:
		return "enqueue"
	case EvLaunch:
		return "launch"
	case EvAccept:
		return "accept"
	case EvDrop:
		return "drop"
	case EvReinject:
		return "reinject"
	case EvAck:
		return "ack"
	case EvNack:
		return "nack"
	case EvDeliver:
		return "deliver"
	case EvInject:
		return "inject"
	default:
		return "event?"
	}
}

// Event is one protocol observation.
type Event struct {
	Cycle  int64
	Type   EventType
	Packet *router.Packet
}

// Trace installs an event observer on the network. The hook fires inline
// during Step, so observers must be fast and must not mutate the network;
// pass nil to remove. Delivery events still fire OnDeliver as well.
func (n *Network) Trace(hook func(Event)) {
	n.onEvent = hook
}

// emit folds the event into the run digest and fires the observer if one
// is installed. The digest fold is unconditional: the fingerprint must
// cover every run, traced or not, or repeat runs could not be compared.
func (n *Network) emit(t EventType, p *router.Packet) {
	n.stats.digest.observe(eventHash(n.now, t, p))
	if n.onEvent != nil {
		n.onEvent(Event{Cycle: n.now, Type: t, Packet: p})
	}
}
