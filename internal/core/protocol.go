package core

import (
	"fmt"
	"sort"

	"photon/internal/arbiter"
	"photon/internal/fault"
	"photon/internal/flow"
	"photon/internal/phys"
	"photon/internal/router"
)

// Protocol is the per-scheme strategy behind the Network engine. One
// implementation exists per scheme family (credit-global, credit-slot,
// handshake-global, handshake-slot, circulation); the registry maps each
// Scheme to its family plus the scheme's static traits (ProtocolSpec).
//
// The engine never dispatches on the interface inside the cycle loop:
// NewNetwork calls Wire once per channel to build the scheme's machinery,
// then asks each hook method for a closure and stores it on the channel.
// Step drives those pre-bound closures, so adding a scheme costs nothing
// on the hot path of the existing ones.
//
// Hook lifecycle within one cycle (phase order is the determinism
// contract in DESIGN.md):
//
//	Arrive      phase 1: the packet landing at the home node this cycle
//	Handshake   phase 2: ACK/NACK pulses reaching senders (nil = no waveguide)
//	Eject       phase 3: per-packet credit release at ejection (nil = creditless)
//	Arbitrate   phase 4: token motion, capture, and token-recovery watchdogs
//	LaunchHeld  phase 5: sends under a held global token (nil = distributed)
//
// RecoverData and Invariant run outside the phase sequence: RecoverData
// reconciles the flow-control ledger when a fault destroys an arriving
// flit, and Invariant is the per-cycle conservation check hook.
type Protocol interface {
	// Wire builds channel c's scheme-specific machinery — token arbiter,
	// credit ledgers, handshake waveguide — including its fault-injection
	// attachments (pulse-loss filters, credit-reclaim timers).
	Wire(n *Network, c *channel)
	// Arbitrate returns c's bound token-phase closure: token death and
	// regeneration (recovery), emission gating, motion, and capture.
	Arbitrate(n *Network, c *channel) func(now int64)
	// LaunchHeld returns the bound launch closure for a held global
	// token, or nil for distributed schemes (their launches ride the
	// engine's grant queue).
	LaunchHeld(n *Network, c *channel) func(now int64)
	// Arrive returns the bound handler for a packet reaching c's home.
	Arrive(n *Network, c *channel) func(now int64, pkt *router.Packet)
	// Handshake returns the bound ACK/NACK delivery closure, or nil for
	// schemes without a handshake waveguide.
	Handshake(n *Network, c *channel) func(now int64)
	// Eject returns the per-ejection credit-release hook, or nil for
	// creditless schemes.
	Eject(n *Network, c *channel) func()
	// RecoverData returns the bound data-fault hook: reconcile the credit
	// ledger for the destroyed arrival, then classify the packet's fate
	// (duplicate, permanent loss, or orphaned awaiting retransmission).
	RecoverData(n *Network, c *channel) func(pkt *router.Packet)
	// Invariant returns the per-cycle flow-control conservation check for
	// c, or nil when the scheme keeps no checkable ledger.
	Invariant(n *Network, c *channel) func() error
}

// ProtocolSpec is one registry row: a scheme's identity and static traits,
// plus the factory for its Protocol strategy. Everything the rest of the
// system knows about a scheme — names, grouping, retention policy,
// hardware profile — is read from here, so registering a new scheme makes
// it appear in Schemes(), config parsing, the experiment groups, and the
// verification batteries without touching the engine.
type ProtocolSpec struct {
	Scheme    Scheme
	Name      string // CLI name; Scheme.String() returns this
	PaperName string // label used in the paper's figures
	Family    string // protocol family implementing the scheme

	Global      bool // global (relayed token) vs distributed arbitration
	Handshake   bool // ACK/NACK flow control over a handshake waveguide
	CreditBased bool // credit flow control
	Circulating bool // receiver reinjects instead of dropping

	// SendPolicy is the sender-side retention policy (what happens to a
	// packet at launch).
	SendPolicy router.SendPolicy
	// Hardware is the scheme's optical hardware profile (Table I, power).
	Hardware phys.SchemeHardware

	// New returns the Protocol strategy for this scheme.
	New func() Protocol
}

// protocols is the scheme registry, populated by RegisterProtocol from
// the protocol files' init functions.
var protocols = map[Scheme]ProtocolSpec{}

// RegisterProtocol adds a scheme to the registry. It panics on malformed
// or conflicting registrations: a mis-registered scheme must fail at
// init, not at first dispatch.
func RegisterProtocol(spec ProtocolSpec) {
	if spec.Name == "" || spec.PaperName == "" || spec.Family == "" {
		panic(fmt.Sprintf("core: protocol registration for scheme %d is missing a name", int(spec.Scheme)))
	}
	if spec.New == nil {
		panic(fmt.Sprintf("core: protocol %q registered without a factory", spec.Name))
	}
	if prev, ok := protocols[spec.Scheme]; ok {
		panic(fmt.Sprintf("core: scheme %d registered twice (%q and %q)", int(spec.Scheme), prev.Name, spec.Name))
	}
	for _, p := range protocols {
		if p.Name == spec.Name {
			panic(fmt.Sprintf("core: protocol name %q registered twice", spec.Name))
		}
	}
	protocols[spec.Scheme] = spec
}

// LookupProtocol returns the registry row for s.
func LookupProtocol(s Scheme) (ProtocolSpec, bool) {
	sp, ok := protocols[s]
	return sp, ok
}

// RegisteredProtocols returns every registry row in presentation order
// (ascending Scheme value, the order the paper introduces them).
func RegisteredProtocols() []ProtocolSpec {
	out := make([]ProtocolSpec, 0, len(protocols))
	for _, sp := range protocols {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scheme < out[j].Scheme })
	return out
}

// --- shared hook builders -------------------------------------------------
//
// The five families assemble their hooks from these builders, so the
// engine-visible behaviour of each phase lives in exactly one place.
//
// The capture builders run inside the arbiters' token-scan inner loop —
// the hottest code in the simulator — so they take the concrete credit
// ledgers (nil when the family has none) rather than generic callbacks:
// an extra closure call per scanned node position costs ~10% of total
// cycle throughput. A family with novel capture semantics binds its own
// arbiter.CaptureFunc instead of reusing these.

// bindGlobalCapture builds the capture closure for a relayed global
// token. rc, when non-nil, vetoes capture of a token with no credits
// aboard (Token Channel: an empty token cannot authorise a send).
//
// go:noinline on both capture builders: if the builder is inlined into
// the protocol's Arbitrate method, the compiler re-parents the returned
// closure and stops inlining the closure's own callees (NodeAt, the
// fairness filter, the credit ledger) — a ~10% hit to the token-scan
// loop, the simulator's hottest code.
//
//go:noinline
func bindGlobalCapture(n *Network, c *channel, rc *flow.RelayedCredits) arbiter.CaptureFunc {
	return func(off int) bool {
		id := n.geom.NodeAt(c.home, off)
		nd := n.nodes[id]
		if n.faults != nil && n.faults.Stalled(id) {
			// Resonator drift: the node's rings are off-channel and cannot
			// divert the token, however badly it wants one.
			return false
		}
		if nd.wantCount[c.home] == 0 {
			return false
		}
		if nd.granted || nd.holding >= 0 {
			return false
		}
		if rc != nil && rc.OnToken() == 0 {
			return false
		}
		if !c.fair.Allow(id) {
			return false
		}
		c.fair.OnCapture(id)
		nd.holding = c.home
		c.holdCount = 0
		n.emitTapMeta(EvTokenCapture, tokenAux(id, c.home))
		return true
	}
}

// bindSlotCapture builds the capture closure for distributed token slots.
// sc, when non-nil, moves the home credit aboard the captured token
// (Token Slot). See bindGlobalCapture for why this must not inline.
//
//go:noinline
func bindSlotCapture(n *Network, c *channel, sc *flow.SlotCredits) arbiter.CaptureFunc {
	return func(off int) bool {
		id := n.geom.NodeAt(c.home, off)
		nd := n.nodes[id]
		if n.faults != nil && n.faults.Stalled(id) {
			return false
		}
		if nd.wantCount[c.home] == 0 {
			return false
		}
		if nd.granted || nd.holding >= 0 {
			return false
		}
		if !c.fair.Allow(id) {
			return false
		}
		c.fair.OnCapture(id)
		nd.granted = true
		if sc != nil {
			sc.Capture()
		}
		n.grants = append(n.grants, grant{node: nd, ch: c})
		n.emitTapMeta(EvTokenCapture, tokenAux(id, c.home))
		return true
	}
}

// bindGlobalArbitrate builds the token-phase closure for global schemes:
// free-token death (fault injection), the silence watchdog (recovery),
// and token motion with capture. onHome, when non-nil, runs each time the
// token passes its home node (Token Channel: credit reimbursement).
// Bound once per channel at construction; never inline (see bindGlobalCapture).
//
//go:noinline
func bindGlobalArbitrate(n *Network, c *channel, capture arbiter.CaptureFunc, onHome func()) func(now int64) {
	return func(now int64) {
		if n.faults != nil && !c.glob.Lost() {
			if _, held := c.glob.Held(); !held && n.faults.KillToken(c.home, now) {
				// The free circulating token dies in the waveguide.
				c.glob.Invalidate()
				n.stats.FaultsInjected++
				n.emitMeta(EvFault, faultAux(fault.TokenLoss, c.home))
			}
		}
		if n.recoveryOn && now-c.lastActivity > n.watchdog {
			// Watchdog: the home node has seen neither a token pass nor an
			// arrival for a full silence window — re-emit the token. The
			// arbiter's duplicate-token guard refuses if the token is in
			// fact alive (e.g. parked at a holder the home cannot observe),
			// so a misjudged firing is harmless.
			if c.glob.Regenerate() {
				n.stats.TokensRegenerated++
				n.emitMeta(EvTokenRegen, uint64(c.home))
			}
			c.lastActivity = now // re-arm the window either way
		}
		if _, held := c.glob.Held(); !held {
			before := c.glob.HomePasses()
			c.glob.Advance(capture, onHome)
			if c.glob.HomePasses() != before {
				c.lastActivity = now
			}
		}
	}
}

// bindSlotArbitrate builds the token-phase closure for distributed
// schemes: reclaim credits stranded aboard dead tokens (recovery, Token
// Slot only), then advance the slot emitter through gate/capture/expire.
// Bound once per channel at construction; never inline (see bindGlobalCapture).
//
//go:noinline
func bindSlotArbitrate(n *Network, c *channel, gate func() bool, capture arbiter.CaptureFunc, expire func()) func(now int64) {
	return func(now int64) {
		if c.regen != nil {
			// Credits stranded aboard dead slot tokens come back at the
			// token's nominal expiry window.
			for range c.regen.PopDue(now) {
				expire()
				n.stats.TokensRegenerated++
				n.emitMeta(EvTokenRegen, uint64(c.home))
			}
		}
		c.slot.Advance(now, gate, capture, expire)
	}
}

// bindHeldLaunch builds the launch closure for a held global token: one
// packet per cycle while eligible, then release back onto the loop.
// rc, when non-nil, must authorise each send by spending a credit aboard
// the token, and gates holding the token on credits remaining (Token
// Channel).
// Bound once per channel at construction; never inline (see bindGlobalCapture).
//
//go:noinline
func bindHeldLaunch(n *Network, c *channel, rc *flow.RelayedCredits) func(now int64) {
	return func(now int64) {
		off, held := c.glob.Held()
		if !held {
			return
		}
		nd := n.nodes[n.geom.NodeAt(c.home, off)]
		if n.faults != nil && n.faults.Stalled(nd.id) {
			// Resonator drift hit the holder mid-grab: it cannot modulate,
			// so it releases the token rather than sit on it silently.
			c.glob.Release()
			nd.holding = -1
			n.emitTapMeta(EvTokenRelease, tokenAux(nd.id, c.home))
			return
		}
		canHold := n.cfg.MaxTokenHold == 0 || c.holdCount < n.cfg.MaxTokenHold
		var (
			q   *queueState
			pkt *router.Packet
		)
		if canHold {
			_, q, pkt = n.pickQueue(nd, c.home)
		}
		if pkt != nil && (rc == nil || rc.Spend()) {
			n.launch(nd, q, c, pkt)
			c.holdCount++
			// Wave-pipelined release: the re-emitted token rides just
			// behind the data flit, so a holder with nothing more to send
			// frees the token in the send cycle rather than one cycle
			// later — without this, global arbitration caps at half the
			// channel's wave-pipelined capacity.
			keep := nd.wantCount[c.home] > 0 &&
				(n.cfg.MaxTokenHold == 0 || c.holdCount < n.cfg.MaxTokenHold) &&
				(rc == nil || rc.OnToken() > 0)
			if !keep {
				c.glob.Release()
				nd.holding = -1
				n.emitTapMeta(EvTokenRelease, tokenAux(nd.id, c.home))
			}
		} else {
			c.glob.Release()
			nd.holding = -1
			n.emitTapMeta(EvTokenRelease, tokenAux(nd.id, c.home))
		}
	}
}

// tokenFault accounts a distributed-token (slot) death and, with recovery
// on, schedules the stranded credit's reclaim for the cycle the token
// would nominally have expired back at home (age R+1) — the earliest
// moment the home node can *know* the token is not coming back.
func (n *Network) tokenFault(c *channel) {
	n.stats.FaultsInjected++
	n.emitMeta(EvFault, faultAux(fault.TokenLoss, c.home))
	if c.sc != nil && n.recoveryOn && c.regen != nil {
		c.regen.Schedule(n.now+int64(n.cfg.RoundTrip)+1, n.now)
	}
}

// classifyDataLoss settles a logical packet's fate after a data fault
// destroyed an arriving copy: a duplicate of an already-accepted packet
// leaves the real one safe downstream; without sender retention the
// packet is permanently lost (credits and circulation cannot recover from
// data loss — the paper-side argument for handshake robustness, made
// measurable); with retention the sender's retransmit timeout will
// re-send (recovery on) or strand it visibly (recovery off).
func (n *Network) classifyDataLoss(pkt *router.Packet) {
	switch {
	case pkt.AcceptedAt >= 0:
		n.dupsInFlight--
		if n.dupsInFlight < 0 {
			panic("core: negative duplicate-in-flight count")
		}
	case n.policy == router.FireAndForget:
		n.stats.Lost++
	default:
		n.orphans++
	}
}
