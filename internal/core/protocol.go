package core

import (
	"fmt"
	"math/bits"
	"sort"

	"photon/internal/arbiter"
	"photon/internal/fault"
	"photon/internal/flow"
	"photon/internal/phys"
	"photon/internal/router"
)

// Protocol is the per-scheme strategy behind the Network engine. One
// implementation exists per scheme family (credit-global, credit-slot,
// handshake-global, handshake-slot, circulation); the registry maps each
// Scheme to its family plus the scheme's static traits (ProtocolSpec).
//
// The engine never dispatches on the interface inside the cycle loop:
// NewNetwork calls Wire once per channel to build the scheme's machinery,
// then asks each hook method for a closure and stores it on the channel.
// Step drives those pre-bound closures, so adding a scheme costs nothing
// on the hot path of the existing ones.
//
// Hook lifecycle within one cycle (phase order is the determinism
// contract in DESIGN.md):
//
//	Arrive      phase 1: the packet landing at the home node this cycle
//	Handshake   phase 2: ACK/NACK pulses reaching senders (nil = no waveguide)
//	Eject       phase 3: per-packet credit release at ejection (nil = creditless)
//	Arbitrate   phase 4: token motion, capture, and token-recovery watchdogs
//	LaunchHeld  phase 5: sends under a held global token (nil = distributed)
//
// RecoverData and Invariant run outside the phase sequence: RecoverData
// reconciles the flow-control ledger when a fault destroys an arriving
// flit, and Invariant is the per-cycle conservation check hook.
type Protocol interface {
	// Wire builds channel c's scheme-specific machinery — token arbiter,
	// credit ledgers, handshake waveguide — including its fault-injection
	// attachments (pulse-loss filters, credit-reclaim timers).
	Wire(n *Network, c *channel)
	// Arbitrate returns c's bound token-phase closure: token death and
	// regeneration (recovery), emission gating, motion, and capture.
	Arbitrate(n *Network, c *channel) func(now int64)
	// LaunchHeld returns the bound launch closure for a held global
	// token, or nil for distributed schemes (their launches ride the
	// engine's grant queue).
	LaunchHeld(n *Network, c *channel) func(now int64)
	// Arrive returns the bound handler for a packet reaching c's home.
	Arrive(n *Network, c *channel) func(now int64, pkt *router.Packet)
	// Handshake returns the bound ACK/NACK delivery closure, or nil for
	// schemes without a handshake waveguide.
	Handshake(n *Network, c *channel) func(now int64)
	// Eject returns the per-ejection credit-release hook, or nil for
	// creditless schemes.
	Eject(n *Network, c *channel) func()
	// RecoverData returns the bound data-fault hook: reconcile the credit
	// ledger for the destroyed arrival, then classify the packet's fate
	// (duplicate, permanent loss, or orphaned awaiting retransmission).
	RecoverData(n *Network, c *channel) func(pkt *router.Packet)
	// Invariant returns the per-cycle flow-control conservation check for
	// c, or nil when the scheme keeps no checkable ledger.
	Invariant(n *Network, c *channel) func() error
}

// ProtocolSpec is one registry row: a scheme's identity and static traits,
// plus the factory for its Protocol strategy. Everything the rest of the
// system knows about a scheme — names, grouping, retention policy,
// hardware profile — is read from here, so registering a new scheme makes
// it appear in Schemes(), config parsing, the experiment groups, and the
// verification batteries without touching the engine.
type ProtocolSpec struct {
	Scheme    Scheme
	Name      string // CLI name; Scheme.String() returns this
	PaperName string // label used in the paper's figures
	Family    string // protocol family implementing the scheme

	Global      bool // global (relayed token) vs distributed arbitration
	Handshake   bool // ACK/NACK flow control over a handshake waveguide
	CreditBased bool // credit flow control
	Circulating bool // receiver reinjects instead of dropping

	// SendPolicy is the sender-side retention policy (what happens to a
	// packet at launch).
	SendPolicy router.SendPolicy
	// Hardware is the scheme's optical hardware profile (Table I, power).
	Hardware phys.SchemeHardware

	// New returns the Protocol strategy for this scheme.
	New func() Protocol
}

// protocols is the scheme registry, populated by RegisterProtocol from
// the protocol files' init functions.
var protocols = map[Scheme]ProtocolSpec{}

// RegisterProtocol adds a scheme to the registry. It panics on malformed
// or conflicting registrations: a mis-registered scheme must fail at
// init, not at first dispatch.
func RegisterProtocol(spec ProtocolSpec) {
	if spec.Name == "" || spec.PaperName == "" || spec.Family == "" {
		panic(fmt.Sprintf("core: protocol registration for scheme %d is missing a name", int(spec.Scheme)))
	}
	if spec.New == nil {
		panic(fmt.Sprintf("core: protocol %q registered without a factory", spec.Name))
	}
	if prev, ok := protocols[spec.Scheme]; ok {
		panic(fmt.Sprintf("core: scheme %d registered twice (%q and %q)", int(spec.Scheme), prev.Name, spec.Name))
	}
	for _, p := range protocols {
		if p.Name == spec.Name {
			panic(fmt.Sprintf("core: protocol name %q registered twice", spec.Name))
		}
	}
	protocols[spec.Scheme] = spec
}

// LookupProtocol returns the registry row for s.
func LookupProtocol(s Scheme) (ProtocolSpec, bool) {
	sp, ok := protocols[s]
	return sp, ok
}

// RegisteredProtocols returns every registry row in presentation order
// (ascending Scheme value, the order the paper introduces them).
func RegisteredProtocols() []ProtocolSpec {
	out := make([]ProtocolSpec, 0, len(protocols))
	for _, sp := range protocols {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scheme < out[j].Scheme })
	return out
}

// --- shared hook builders -------------------------------------------------
//
// The five families assemble their hooks from these builders, so the
// engine-visible behaviour of each phase lives in exactly one place.
//
// The sweep builders run inside the arbiters' token-scan inner loop — the
// hottest code in the simulator. Each sweep call covers one token's whole
// segment: the closure rejects non-requesting nodes with a contiguous
// scan of the channel's transposed want row (one int16 load per node,
// no modulo, no per-offset closure call), and only a node that actually
// wants the channel pays for the full eligibility checks. The check
// order within a node — stall, want, port-busy, credits, fairness — is
// digest-equivalent to the historic per-offset order because the stall
// and want predicates are both pure; the first stateful call
// (Fairness.Allow, which counts yields) still happens exactly when it
// always did. A family with novel capture semantics binds its own
// arbiter.SweepFunc instead of reusing these.

// bindGlobalSweep builds the segment-sweep closure for a relayed global
// token. rc, when non-nil, vetoes capture of a token with no credits
// aboard (Token Channel: an empty token cannot authorise a send).
//
// go:noinline on both sweep builders: if the builder is inlined into the
// protocol's Arbitrate method, the compiler re-parents the returned
// closure and stops inlining the closure's own callees (the want-row
// scan, the fairness filter, the credit ledger) — a measurable hit to
// the token-scan loop.
//
//go:noinline
func bindGlobalSweep(n *Network, c *channel, rc *flow.RelayedCredits) arbiter.SweepFunc {
	want := n.wantRows[c.home]
	return func(start, end int) int {
		id := c.home + start
		if id >= len(want) {
			id -= len(want)
		}
		for off := start; off < end; off++ {
			if want[id] > 0 && n.captureGlobal(c, id, rc) {
				return off
			}
			if id++; id == len(want) {
				id = 0
			}
		}
		return -1
	}
}

// captureGlobal applies the global-token eligibility checks and capture
// effects for node id, which already wants channel c.
func (n *Network) captureGlobal(c *channel, id int, rc *flow.RelayedCredits) bool {
	nd := &n.nodes[id]
	if n.faults != nil && n.faults.Stalled(id) {
		// Resonator drift: the node's rings are off-channel and cannot
		// divert the token, however badly it wants one.
		return false
	}
	if nd.granted || nd.holding >= 0 {
		return false
	}
	if rc != nil && rc.OnToken() == 0 {
		return false
	}
	if !c.fair.Allow(id) {
		return false
	}
	c.fair.OnCapture(id)
	nd.holding = c.home
	c.holdCount = 0
	n.emitTapMeta(EvTokenCapture, tokenAux(id, c.home))
	return true
}

// slotScan runs the requester-driven capture scan for one distributed
// channel at cycle now: it walks the channel's transposed want row in
// downstream order, maps each requesting node's offset to the age of the
// token whose segment covers it, and probes capture only when that token
// is still live. This inverts the arbiter's per-token segment iteration —
// O(requesters) live-token probes instead of O(roundTrip) segment sweeps —
// while making the identical stateful calls in the identical order: ages
// ascend exactly as offsets do (segments partition the loop in downstream
// order), the want and LiveAt predicates are pure, and a consumed token
// answers LiveAt false for the rest of its segment just as the historic
// sweep stopped scanning a segment after its capture.
// See bindGlobalSweep for why this must not inline.
//
//go:noinline
func (n *Network) slotScan(c *channel, now int64, sc *flow.SlotCredits) {
	nodes := n.cfg.Nodes
	per := n.geom.NodesPerCycle()
	if nodes <= 64 {
		// Fast path: hop straight between requesting nodes via the want
		// bitmask. Two passes keep the downstream-from-home probe order:
		// ids above home first (offset = id-home), then the wrap-around
		// ids below home (offset = id+nodes-home) — ascending id equals
		// ascending offset within each pass.
		m := n.wantMask[c.home]
		home := c.home
		for w := m >> uint(home+1) << uint(home+1); w != 0; w &= w - 1 {
			id := bits.TrailingZeros64(w)
			n.slotProbe(c, now, id, id-home, per, sc)
		}
		for w := m & (1<<uint(home) - 1); w != 0; w &= w - 1 {
			id := bits.TrailingZeros64(w)
			n.slotProbe(c, now, id, id+nodes-home, per, sc)
		}
		return
	}
	want := n.wantRows[c.home]
	id := c.home + 1
	if id >= nodes {
		id -= nodes
	}
	for off := 1; off < nodes; off++ {
		if want[id] > 0 {
			n.slotProbe(c, now, id, off, per, sc)
		}
		if id++; id == nodes {
			id = 0
		}
	}
}

// slotProbe asks the token whose segment covers offset off to grant node
// id: the segment of the age-a token is [(a-1)*per+1, a*per], so off maps
// to age ceil(off/per). A consumed or expired token answers LiveAt false
// and the probe is free.
func (n *Network) slotProbe(c *channel, now int64, id, off, per int, sc *flow.SlotCredits) {
	age := off
	if per > 1 {
		age = (off-1)/per + 1
	}
	if c.slot.LiveAt(now, age) && n.captureSlot(c, id, sc) {
		c.slot.Consume(now, age)
	}
}

// captureSlot applies the slot-token eligibility checks and capture
// effects for node id, which already wants channel c.
func (n *Network) captureSlot(c *channel, id int, sc *flow.SlotCredits) bool {
	nd := &n.nodes[id]
	if n.faults != nil && n.faults.Stalled(id) {
		return false
	}
	if nd.granted || nd.holding >= 0 {
		return false
	}
	if !c.fair.Allow(id) {
		return false
	}
	c.fair.OnCapture(id)
	nd.granted = true
	if sc != nil {
		sc.Capture()
	}
	n.grants = append(n.grants, grant{node: nd, ch: c})
	n.emitTapMeta(EvTokenCapture, tokenAux(id, c.home))
	return true
}

// bindGlobalArbitrate builds the token-phase closure for global schemes:
// free-token death (fault injection), the silence watchdog (recovery),
// and token motion with capture. onHome, when non-nil, runs each time the
// token passes its home node (Token Channel: credit reimbursement).
// Bound once per channel at construction; never inline (see bindGlobalCapture).
//
//go:noinline
func bindGlobalArbitrate(n *Network, c *channel, sweep arbiter.SweepFunc, onHome func()) func(now int64) {
	return func(now int64) {
		if n.faults != nil && !c.glob.Lost() {
			if _, held := c.glob.Held(); !held && n.faults.KillToken(c.home, now) {
				// The free circulating token dies in the waveguide.
				c.glob.Invalidate()
				n.stats.FaultsInjected++
				n.emitMeta(EvFault, faultAux(fault.TokenLoss, c.home))
			}
		}
		if n.recoveryOn && now-c.lastActivity > n.watchdog {
			// Watchdog: the home node has seen neither a token pass nor an
			// arrival for a full silence window — re-emit the token. The
			// arbiter's duplicate-token guard refuses if the token is in
			// fact alive (e.g. parked at a holder the home cannot observe),
			// so a misjudged firing is harmless.
			if c.glob.Regenerate() {
				n.stats.TokensRegenerated++
				n.emitMeta(EvTokenRegen, uint64(c.home))
			}
			c.lastActivity = now // re-arm the window either way
		}
		if _, held := c.glob.Held(); !held {
			before := c.glob.HomePasses()
			sw := sweep
			if n.wantNodes[c.home] == 0 {
				// Nobody wants this channel: every capture probe would
				// answer no, so the token moves without scanning.
				sw = nil
			}
			c.glob.AdvanceSweep(sw, onHome)
			if c.glob.HomePasses() != before {
				c.lastActivity = now
			}
		}
	}
}

// bindSlotArbitrate builds the token-phase closure for distributed
// schemes: reclaim credits stranded aboard dead tokens (recovery, Token
// Slot only), then drive the slot emitter through one cycle — expiry,
// requester-driven capture scan (slotScan), emission. sc, when non-nil,
// moves the home credit aboard each captured token (Token Slot).
// Bound once per channel at construction; never inline (see bindGlobalCapture).
//
//go:noinline
func bindSlotArbitrate(n *Network, c *channel, gate func() bool, sc *flow.SlotCredits, expire func()) func(now int64) {
	return func(now int64) {
		if c.regen != nil {
			// Credits stranded aboard dead slot tokens come back at the
			// token's nominal expiry window.
			for range c.regen.PopDue(now) {
				expire()
				n.stats.TokensRegenerated++
				n.emitMeta(EvTokenRegen, uint64(c.home))
			}
		}
		c.slot.BeginCycle(now, expire)
		if n.wantNodes[c.home] > 0 {
			// Somebody wants this channel; with no requesters every live
			// token's probe would answer no, so the scan is skipped whole.
			n.slotScan(c, now, sc)
		}
		c.slot.Emit(now, gate)
	}
}

// bindHeldLaunch builds the launch closure for a held global token: one
// packet per cycle while eligible, then release back onto the loop.
// rc, when non-nil, must authorise each send by spending a credit aboard
// the token, and gates holding the token on credits remaining (Token
// Channel).
// Bound once per channel at construction; never inline (see bindGlobalCapture).
//
//go:noinline
func bindHeldLaunch(n *Network, c *channel, rc *flow.RelayedCredits) func(now int64) {
	return func(now int64) {
		off, held := c.glob.Held()
		if !held {
			return
		}
		nd := &n.nodes[n.geom.NodeAt(c.home, off)]
		if n.faults != nil && n.faults.Stalled(nd.id) {
			// Resonator drift hit the holder mid-grab: it cannot modulate,
			// so it releases the token rather than sit on it silently.
			c.glob.Release()
			nd.holding = -1
			n.emitTapMeta(EvTokenRelease, tokenAux(nd.id, c.home))
			return
		}
		canHold := n.cfg.MaxTokenHold == 0 || c.holdCount < n.cfg.MaxTokenHold
		var (
			q   *queueState
			pkt *router.Packet
		)
		if canHold {
			_, q, pkt = n.pickQueue(nd, c.home)
		}
		if pkt != nil && (rc == nil || rc.Spend()) {
			n.launch(nd, q, c, pkt)
			c.holdCount++
			// Wave-pipelined release: the re-emitted token rides just
			// behind the data flit, so a holder with nothing more to send
			// frees the token in the send cycle rather than one cycle
			// later — without this, global arbitration caps at half the
			// channel's wave-pipelined capacity.
			keep := n.wantRows[c.home][nd.id] > 0 &&
				(n.cfg.MaxTokenHold == 0 || c.holdCount < n.cfg.MaxTokenHold) &&
				(rc == nil || rc.OnToken() > 0)
			if !keep {
				c.glob.Release()
				nd.holding = -1
				n.emitTapMeta(EvTokenRelease, tokenAux(nd.id, c.home))
			}
		} else {
			c.glob.Release()
			nd.holding = -1
			n.emitTapMeta(EvTokenRelease, tokenAux(nd.id, c.home))
		}
	}
}

// tokenFault accounts a distributed-token (slot) death and, with recovery
// on, schedules the stranded credit's reclaim for the cycle the token
// would nominally have expired back at home (age R+1) — the earliest
// moment the home node can *know* the token is not coming back.
func (n *Network) tokenFault(c *channel) {
	n.stats.FaultsInjected++
	n.emitMeta(EvFault, faultAux(fault.TokenLoss, c.home))
	if c.sc != nil && n.recoveryOn && c.regen != nil {
		c.regen.Schedule(n.now+int64(n.cfg.RoundTrip)+1, n.now)
	}
}

// classifyDataLoss settles a logical packet's fate after a data fault
// destroyed an arriving copy: a duplicate of an already-accepted packet
// leaves the real one safe downstream; without sender retention the
// packet is permanently lost (credits and circulation cannot recover from
// data loss — the paper-side argument for handshake robustness, made
// measurable); with retention the sender's retransmit timeout will
// re-send (recovery on) or strand it visibly (recovery off).
func (n *Network) classifyDataLoss(pkt *router.Packet) {
	switch {
	case pkt.AcceptedAt >= 0:
		n.dupsInFlight--
		if n.dupsInFlight < 0 {
			panic("core: negative duplicate-in-flight count")
		}
	case n.policy == router.FireAndForget:
		n.stats.Lost++
	default:
		n.orphans++
	}
}
