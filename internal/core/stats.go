package core

import (
	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/stats"
)

// Stats accumulates per-run measurements. Counters suffixed "Measured"
// cover only packets injected inside the measurement window; the raw
// counters cover the whole run (warmup and drain included) and exist for
// protocol-level rates such as drop percentage.
type Stats struct {
	window sim.Window
	cores  int

	Injected          int64
	InjectedMeasured  int64
	Delivered         int64
	DeliveredMeasured int64
	// DeliveredInWindow counts deliveries that *occur* inside the measure
	// window regardless of when the packet was injected — the correct
	// basis for accepted-throughput at and beyond saturation (counting
	// deliveries of measure-injected packets during the drain would credit
	// the network with more capacity than it has).
	DeliveredInWindow int64
	LocalDelivered    int64

	Launches      int64 // packet launches onto optical channels
	Drops         int64 // receiver-side drops (NACKed launches)
	Retransmits   int64
	Circulations  int64
	TokensYielded int64 // fairness quota yields (aggregated at Finish)
	QueueRejected int64 // bounded output queue refusals

	// Fault-injection and recovery counters (all zero on fault-free runs).
	FaultsInjected     int64 // faults fired by the injector, all classes
	TimeoutRetransmits int64 // retransmissions triggered by sender timeouts
	TokensRegenerated  int64 // watchdog token re-emissions + slot-credit reclaims
	Lost               int64 // permanently lost packets (data fault on a fire-and-forget scheme)
	DupsDiscarded      int64 // duplicate arrivals recognised and re-ACKed by homes
	AcksLost           int64 // ACK pulses destroyed in flight
	NacksLost          int64 // NACK pulses destroyed in flight

	Latency   *stats.Histogram // end-to-end, measured packets
	ArbWait   *stats.Histogram // head-ready -> first launch, measured
	QueueWait *stats.Histogram // enqueue -> first launch, measured

	PerSourceDelivered []int64 // measured deliveries by source node
	PerSourceInjected  []int64 // measured injections by source node

	// digest fingerprints the run's full protocol event stream (see
	// digest.go); Network.emit feeds it unconditionally.
	digest runDigest
}

// NewStats builds an empty collector for a run over the given window.
func NewStats(window sim.Window, nodes, cores int) *Stats {
	return &Stats{
		window:             window,
		cores:              cores,
		Latency:            stats.NewHistogram(0),
		ArbWait:            stats.NewHistogram(0),
		QueueWait:          stats.NewHistogram(0),
		PerSourceDelivered: make([]int64, nodes),
		PerSourceInjected:  make([]int64, nodes),
	}
}

func (s *Stats) onInjected(p *router.Packet) {
	s.Injected++
	if s.window.InMeasure(p.CreatedAt) {
		p.Measured = true
		s.InjectedMeasured++
		s.PerSourceInjected[p.Src]++
	}
}

func (s *Stats) onDelivered(p *router.Packet, local bool) {
	s.Delivered++
	if local {
		s.LocalDelivered++
	}
	if s.window.InMeasure(p.DeliveredAt) {
		s.DeliveredInWindow++
	}
	if !p.Measured {
		return
	}
	s.DeliveredMeasured++
	s.Latency.Add(p.Latency())
	if w := p.ArbitrationWait(); w >= 0 {
		s.ArbWait.Add(w)
	}
	if w := p.QueueWait(); w >= 0 {
		s.QueueWait.Add(w)
	}
	s.PerSourceDelivered[p.Src]++
}

// Result condenses a finished run into the quantities the paper reports.
type Result struct {
	Scheme Scheme
	// AvgLatency is the mean end-to-end latency in cycles over measured,
	// delivered packets.
	AvgLatency float64
	// P95Latency and P99Latency are latency quantiles in cycles.
	P95Latency int64
	P99Latency int64
	// MaxLatency is the worst measured latency.
	MaxLatency int64
	// Throughput is accepted traffic in packets/cycle/core over the
	// measurement window.
	Throughput float64
	// OfferedLoad is injected traffic in packets/cycle/core over the
	// measurement window.
	OfferedLoad float64
	// AvgArbWait is the mean token/arbitration wait in cycles.
	AvgArbWait float64
	// AvgQueueWait is the mean output-queue wait (enqueue to first launch,
	// which includes the head's arbitration wait).
	AvgQueueWait float64
	// DropRate is receiver drops per launch (the paper's "packet dropping
	// and retransmission rate", kept below 1%).
	DropRate float64
	// CirculationRate is reinjections per launch (DHS-cir).
	CirculationRate float64
	// RetransmitRate is retransmissions per launch.
	RetransmitRate float64
	// Unfinished counts measured packets still undelivered at the end of
	// the drain (a saturation symptom).
	Unfinished int64
	// FairnessSpread is max/min measured per-source throughput over
	// sources that delivered at least one packet (1 = ideal).
	FairnessSpread float64
	// StarvedSources counts sources that injected during the window but
	// delivered nothing — total starvation, the failure mode the
	// fairness quota policy exists to mitigate.
	StarvedSources int
	// Delivered is the number of measured delivered packets.
	Delivered int64
	// Digest is the run's protocol-event fingerprint (see digest.go).
	// Identical (Config, traffic) pairs produce identical digests; any
	// protocol divergence changes it with overwhelming probability.
	Digest uint64
	// DigestEvents is the number of protocol events folded into Digest —
	// a cheap sanity cross-check when two digests disagree.
	DigestEvents uint64

	// Fault-injection summary (all zero on fault-free runs).
	FaultsInjected     int64
	TimeoutRetransmits int64
	TokensRegenerated  int64
	Lost               int64
}

// Finish computes the run's Result. measureCycles is the length of the
// measurement window (taken from the stats' own window).
func (s *Stats) Finish(scheme Scheme) Result {
	mc := float64(s.window.Measure)
	res := Result{
		Scheme:       scheme,
		AvgLatency:   s.Latency.Mean(),
		P95Latency:   s.Latency.Quantile(0.95),
		P99Latency:   s.Latency.Quantile(0.99),
		MaxLatency:   s.Latency.Max(),
		Throughput:   float64(s.DeliveredInWindow) / mc / float64(s.cores),
		OfferedLoad:  float64(s.InjectedMeasured) / mc / float64(s.cores),
		AvgArbWait:   s.ArbWait.Mean(),
		AvgQueueWait: s.QueueWait.Mean(),
		Unfinished:   s.InjectedMeasured - s.DeliveredMeasured,
		Delivered:    s.DeliveredMeasured,
		Digest:       s.digest.value(),
		DigestEvents: s.digest.count,

		FaultsInjected:     s.FaultsInjected,
		TimeoutRetransmits: s.TimeoutRetransmits,
		TokensRegenerated:  s.TokensRegenerated,
		Lost:               s.Lost,
	}
	if s.Launches > 0 {
		res.DropRate = float64(s.Drops) / float64(s.Launches)
		res.RetransmitRate = float64(s.Retransmits) / float64(s.Launches)
		res.CirculationRate = float64(s.Circulations) / float64(s.Launches)
	}
	for src, inj := range s.PerSourceInjected {
		if inj > 0 && s.PerSourceDelivered[src] == 0 {
			res.StarvedSources++
		}
	}
	var minT, maxT float64 = -1, 0
	for _, d := range s.PerSourceDelivered {
		if d == 0 {
			continue
		}
		t := float64(d)
		if minT < 0 || t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
	}
	if minT > 0 {
		res.FairnessSpread = maxT / minT
	}
	return res
}
