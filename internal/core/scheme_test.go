package core_test

import (
	"testing"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/sim"
)

func TestSchemeProperties(t *testing.T) {
	cases := []struct {
		s         core.Scheme
		global    bool
		handshake bool
		credits   bool
		circ      bool
		policy    router.SendPolicy
	}{
		{core.TokenChannel, true, false, true, false, router.FireAndForget},
		{core.TokenSlot, false, false, true, false, router.FireAndForget},
		{core.GHS, true, true, false, false, router.HoldHead},
		{core.GHSSetaside, true, true, false, false, router.Setaside},
		{core.DHS, false, true, false, false, router.HoldHead},
		{core.DHSSetaside, false, true, false, false, router.Setaside},
		{core.DHSCirculation, false, false, false, true, router.FireAndForget},
	}
	for _, c := range cases {
		if c.s.Global() != c.global || c.s.Handshake() != c.handshake ||
			c.s.CreditBased() != c.credits || c.s.Circulating() != c.circ ||
			c.s.SendPolicy() != c.policy {
			t.Errorf("%v: property mismatch", c.s)
		}
	}
}

func TestSchemeRoundTripNames(t *testing.T) {
	for _, s := range core.Schemes() {
		got, err := core.ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
		if s.PaperName() == "" {
			t.Errorf("%v: empty paper name", s)
		}
		if s.Hardware().Name == "" {
			t.Errorf("%v: empty hardware name", s)
		}
	}
	if _, err := core.ParseScheme("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestSchemeGroups(t *testing.T) {
	if len(core.GlobalGroup()) != 3 || len(core.DistributedGroup()) != 4 {
		t.Fatal("figure groups have wrong sizes")
	}
	for _, s := range core.GlobalGroup() {
		if !s.Global() {
			t.Errorf("%v in global group", s)
		}
	}
	for _, s := range core.DistributedGroup() {
		if s.Global() {
			t.Errorf("%v in distributed group", s)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mods := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"nodes", func(c *core.Config) { c.Nodes = 1 }},
		{"cores", func(c *core.Config) { c.CoresPerNode = 0 }},
		{"roundtrip-zero", func(c *core.Config) { c.RoundTrip = 0 }},
		{"roundtrip-divides", func(c *core.Config) { c.RoundTrip = 7 }},
		{"scheme", func(c *core.Config) { c.Scheme = core.Scheme(99) }},
		{"depth", func(c *core.Config) { c.BufferDepth = 0 }},
		{"queuecap", func(c *core.Config) { c.QueueCap = -1 }},
		{"ejectrate", func(c *core.Config) { c.EjectRate = 0 }},
		{"stall", func(c *core.Config) { c.EjectStallProb = 1 }},
		{"pipeline", func(c *core.Config) { c.RouterPipeline = -1 }},
		{"ejectlat", func(c *core.Config) { c.EjectLatency = -1 }},
		{"hold", func(c *core.Config) { c.MaxTokenHold = -1 }},
	}
	for _, m := range mods {
		cfg := core.DefaultConfig(core.DHS)
		m.mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", m.name)
		}
		if _, err := core.NewNetwork(cfg, sim.ShortWindow()); err == nil {
			t.Errorf("%s: NewNetwork accepted invalid config", m.name)
		}
	}
	// Setaside schemes specifically need setaside slots.
	cfg := core.DefaultConfig(core.GHSSetaside)
	cfg.SetasideSize = 0
	if err := cfg.Validate(); err == nil {
		t.Error("setaside scheme without slots accepted")
	}
	// But basic schemes don't care.
	cfg = core.DefaultConfig(core.DHS)
	cfg.SetasideSize = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("basic scheme rejected zero setaside: %v", err)
	}
}

func TestDefaultConfigIsPaper(t *testing.T) {
	cfg := core.DefaultConfig(core.GHS)
	if cfg.Nodes != 64 || cfg.CoresPerNode != 4 || cfg.RoundTrip != 8 || cfg.BufferDepth != 8 {
		t.Fatalf("default config drifted from the paper: %+v", cfg)
	}
	if cfg.Cores() != 256 {
		t.Fatalf("Cores = %d", cfg.Cores())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
