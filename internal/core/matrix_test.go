package core_test

import (
	"fmt"
	"testing"

	"photon/internal/core"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// TestSchemePatternMatrix smoke-runs every scheme against every pattern at
// a light load: delivery must be complete, latency finite, invariants (on
// by default) silent.
func TestSchemePatternMatrix(t *testing.T) {
	// Rates keep every channel below the weakest scheme's capacity: the
	// hotspot pattern concentrates 256*rate*fraction packets/cycle on one
	// channel, so it runs at a lower rate than the permutations.
	patterns := []struct {
		pat  traffic.Pattern
		rate float64
	}{
		{traffic.UniformRandom{}, 0.02},
		{traffic.BitComplement{}, 0.02},
		{traffic.Tornado{}, 0.02},
		{traffic.Transpose{}, 0.02},
		{traffic.Neighbor{}, 0.02},
		{traffic.Hotspot{Hot: 7, Fraction: 0.1}, 0.008},
	}
	for _, s := range core.Schemes() {
		for _, pc := range patterns {
			s, pat, rate := s, pc.pat, pc.rate
			t.Run(fmt.Sprintf("%v/%s", s, pat.Name()), func(t *testing.T) {
				t.Parallel()
				cfg := core.DefaultConfig(s)
				net, err := core.NewNetwork(cfg, sim.Window{Warmup: 200, Measure: 1000, Drain: 800})
				if err != nil {
					t.Fatal(err)
				}
				inj, err := traffic.NewInjector(pat, rate, cfg.Nodes, cfg.CoresPerNode, 99)
				if err != nil {
					t.Fatal(err)
				}
				res := inj.Run(net)
				if res.Delivered == 0 {
					t.Fatal("nothing delivered")
				}
				if res.Unfinished != 0 {
					t.Fatalf("%d unfinished at light load", res.Unfinished)
				}
				if res.AvgLatency < 4 || res.AvgLatency > 80 {
					t.Fatalf("implausible latency %.1f", res.AvgLatency)
				}
			})
		}
	}
}

// TestGeometryMatrix runs every scheme over the ring geometries of the
// scaling discussion (R = 4..32, and a 128-node loop).
func TestGeometryMatrix(t *testing.T) {
	type geo struct{ nodes, rt int }
	for _, g := range []geo{{64, 4}, {64, 16}, {64, 32}, {128, 16}, {32, 8}} {
		for _, s := range core.Schemes() {
			s, g := s, g
			t.Run(fmt.Sprintf("%v/%dx%d", s, g.nodes, g.rt), func(t *testing.T) {
				t.Parallel()
				cfg := core.DefaultConfig(s)
				cfg.Nodes = g.nodes
				cfg.RoundTrip = g.rt
				net, err := core.NewNetwork(cfg, sim.Window{Warmup: 200, Measure: 800, Drain: 1200})
				if err != nil {
					t.Fatal(err)
				}
				inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.01, cfg.Nodes, cfg.CoresPerNode, 7)
				if err != nil {
					t.Fatal(err)
				}
				res := inj.Run(net)
				if res.Delivered == 0 || res.Unfinished != 0 {
					t.Fatalf("delivered %d unfinished %d", res.Delivered, res.Unfinished)
				}
				// Zero-load latency must scale with the loop time, not
				// explode: bounded by ~3R + router overheads.
				if res.AvgLatency > float64(3*g.rt+20) {
					t.Fatalf("latency %.1f implausible for R=%d", res.AvgLatency, g.rt)
				}
			})
		}
	}
}

// TestEjectRateAboveOne: a 2-packet/cycle ejection drain must be accepted
// and can only help latency.
func TestEjectRateAboveOne(t *testing.T) {
	run := func(rate int) float64 {
		cfg := core.DefaultConfig(core.TokenSlot)
		cfg.EjectRate = rate
		net, err := core.NewNetwork(cfg, sim.ShortWindow())
		if err != nil {
			t.Fatal(err)
		}
		inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.15, cfg.Nodes, cfg.CoresPerNode, 3)
		if err != nil {
			t.Fatal(err)
		}
		return inj.Run(net).AvgLatency
	}
	if l2, l1 := run(2), run(1); l2 > l1*1.1 {
		t.Fatalf("faster ejection worsened latency: %.1f vs %.1f", l2, l1)
	}
}

// TestSingleCorePerNode: concentration 1 must work (the per-core queue
// machinery collapses to one queue).
func TestSingleCorePerNode(t *testing.T) {
	cfg := core.DefaultConfig(core.DHSSetaside)
	cfg.CoresPerNode = 1
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.2, cfg.Nodes, cfg.CoresPerNode, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := inj.Run(net)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestDiagnosticsAccounting: slot-scheme token counts must balance
// (emitted = captured + expired + still-live) and handshake counts must
// match launches.
func TestDiagnosticsAccounting(t *testing.T) {
	cfg := core.DefaultConfig(core.DHS)
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.05, cfg.Nodes, cfg.CoresPerNode, 21)
	if err != nil {
		t.Fatal(err)
	}
	inj.Run(net)
	var launches, acks, nacks int64
	for _, d := range net.Diagnostics() {
		if bal := d.TokensEmitted - d.TokenCaptures - d.TokensExpired; bal < 0 || bal > int64(cfg.RoundTrip)+1 {
			t.Fatalf("home %d: token imbalance %d (emitted %d captured %d expired %d)",
				d.Home, bal, d.TokensEmitted, d.TokenCaptures, d.TokensExpired)
		}
		launches += d.Launches
		acks += d.AcksSent
		nacks += d.NacksSent
	}
	st := net.Stats()
	if launches != st.Launches {
		t.Fatalf("per-channel launches %d != stats %d", launches, st.Launches)
	}
	if acks+nacks != launches {
		t.Fatalf("handshakes %d != launches %d", acks+nacks, launches)
	}
	if nacks != st.Drops {
		t.Fatalf("nacks %d != drops %d", nacks, st.Drops)
	}
}

// TestTokenChannelNeverOverflowsBuffer: the credit invariant holds even
// under heavy ejection stalls (the buffer is the credit pool; arrivals are
// always reserved).
func TestTokenChannelNeverOverflowsBuffer(t *testing.T) {
	cfg := core.DefaultConfig(core.TokenChannel)
	cfg.EjectStallProb = 0.7
	cfg.BufferDepth = 3
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.15, cfg.Nodes, cfg.CoresPerNode, 77)
	if err != nil {
		t.Fatal(err)
	}
	inj.Run(net) // the per-cycle invariant checker would panic on overflow
	for _, d := range net.Diagnostics() {
		if d.PeakInputBuf > cfg.BufferDepth {
			t.Fatalf("home %d: buffer peaked at %d > depth %d", d.Home, d.PeakInputBuf, cfg.BufferDepth)
		}
	}
}

// TestPeakInFlightBounded: no channel ever holds more light than one loop
// plus the emission slot.
func TestPeakInFlightBounded(t *testing.T) {
	for _, s := range core.Schemes() {
		cfg := core.DefaultConfig(s)
		net, err := core.NewNetwork(cfg, sim.ShortWindow())
		if err != nil {
			t.Fatal(err)
		}
		inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.23, cfg.Nodes, cfg.CoresPerNode, 88)
		if err != nil {
			t.Fatal(err)
		}
		inj.Run(net)
		for _, d := range net.Diagnostics() {
			if d.PeakInFlight > cfg.RoundTrip+2 {
				t.Fatalf("%v home %d: %d flits in flight", s, d.Home, d.PeakInFlight)
			}
		}
	}
}
