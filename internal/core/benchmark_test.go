package core_test

import (
	"testing"

	"photon/internal/core"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// benchWindow is effectively unbounded so a benchmark never crosses into
// the drain phase regardless of b.N.
var benchWindow = sim.Window{Warmup: 0, Measure: 1 << 40, Drain: 0}

// benchNetwork builds a default paper-configuration network plus a live
// uniform-random injector at a moderate sub-saturation load, the standard
// shape for hot-loop measurements (invariant checks off, as a production
// sweep would run).
func benchNetwork(b *testing.B, s core.Scheme) (*core.Network, *traffic.Injector) {
	b.Helper()
	cfg := core.DefaultConfig(s)
	cfg.CheckInvariants = false
	net, err := core.NewNetwork(cfg, benchWindow)
	if err != nil {
		b.Fatalf("NewNetwork: %v", err)
	}
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.05, cfg.Nodes, cfg.CoresPerNode, cfg.Seed)
	if err != nil {
		b.Fatalf("NewInjector: %v", err)
	}
	return net, inj
}

// BenchmarkStep measures one network cycle (injection + Step) per scheme.
func BenchmarkStep(b *testing.B) {
	for _, s := range core.Schemes() {
		b.Run(s.String(), func(b *testing.B) {
			net, inj := benchNetwork(b, s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inj.Tick(net)
				net.Step()
			}
		})
	}
}

// countTap is a minimal Tracer for overhead measurement.
type countTap struct{ n uint64 }

func (t *countTap) Observe(core.Event) { t.n++ }

// BenchmarkStepTraced is BenchmarkStep with a minimal event tap armed —
// diff against BenchmarkStep to see the marginal cost of observing the
// lifecycle stream (the nil-tap path is the one BENCH_core.json gates).
func BenchmarkStepTraced(b *testing.B) {
	for _, s := range core.Schemes() {
		b.Run(s.String(), func(b *testing.B) {
			net, inj := benchNetwork(b, s)
			net.SetTracer(&countTap{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inj.Tick(net)
				net.Step()
			}
		})
	}
}

// BenchmarkRunCycles measures a 1000-cycle block per scheme, amortising
// per-call overhead the way sweeps drive the network; b.N counts blocks,
// so cycles/sec is 1000*N/elapsed.
func BenchmarkRunCycles(b *testing.B) {
	const block = 1000
	for _, s := range core.Schemes() {
		b.Run(s.String(), func(b *testing.B) {
			net, inj := benchNetwork(b, s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c := 0; c < block; c++ {
					inj.Tick(net)
					net.Step()
				}
			}
		})
	}
}
