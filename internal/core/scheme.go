// Package core implements the paper's primary contribution: a
// cycle-accurate model of a ring-based MWSR nanophotonic network-on-chip
// under seven arbitration/flow-control schemes — the credit-based
// baselines (Token Channel, Token Slot) and the proposed handshake schemes
// (GHS and DHS, each optionally with setaside buffers, and DHS with
// circulation).
//
// The Network type wires together the substrates from the sibling
// packages: ring (optical timing), arbiter (token motion), flow (credit
// conservation) and router (electrical queues). One Network simulates all
// Nodes MWSR channels simultaneously, since sender-side head-of-line
// interactions couple the channels — the very effect the setaside and
// circulation techniques target.
package core

import (
	"fmt"

	"photon/internal/phys"
	"photon/internal/router"
)

// Scheme identifies an arbitration + flow-control scheme.
type Scheme int

const (
	// TokenChannel is the global-arbitration baseline: one token per
	// channel carrying the home node's credit count (Vantrease MICRO'09).
	TokenChannel Scheme = iota
	// TokenSlot is the distributed-arbitration baseline: the home node
	// emits one-credit tokens while it has credits (Vantrease MICRO'09).
	TokenSlot
	// GHS is basic Global Handshake: credit-free global token, ACK/NACK
	// flow control, sent packet blocks the queue head until acknowledged.
	GHS
	// GHSSetaside is GHS with setaside buffers absorbing un-ACKed packets.
	GHSSetaside
	// DHS is basic Distributed Handshake: a fresh token every cycle,
	// ACK/NACK flow control, head blocked until acknowledged.
	DHS
	// DHSSetaside is DHS with setaside buffers.
	DHSSetaside
	// DHSCirculation is DHS where the receiver reinjects packets it cannot
	// buffer instead of dropping them; senders forget packets at launch
	// and no handshake waveguide exists.
	DHSCirculation

	numSchemes
)

// Schemes lists every implemented scheme in presentation order.
func Schemes() []Scheme {
	return []Scheme{TokenChannel, TokenSlot, GHS, GHSSetaside, DHS, DHSSetaside, DHSCirculation}
}

// GlobalGroup returns the schemes compared in the paper's Figure 8.
func GlobalGroup() []Scheme { return []Scheme{TokenChannel, GHS, GHSSetaside} }

// DistributedGroup returns the schemes compared in the paper's Figure 9.
func DistributedGroup() []Scheme {
	return []Scheme{TokenSlot, DHS, DHSSetaside, DHSCirculation}
}

func (s Scheme) String() string {
	switch s {
	case TokenChannel:
		return "token-channel"
	case TokenSlot:
		return "token-slot"
	case GHS:
		return "ghs"
	case GHSSetaside:
		return "ghs-setaside"
	case DHS:
		return "dhs"
	case DHSSetaside:
		return "dhs-setaside"
	case DHSCirculation:
		return "dhs-circulation"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme converts a CLI name into a Scheme.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range Schemes() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q (valid: token-channel, token-slot, ghs, ghs-setaside, dhs, dhs-setaside, dhs-circulation)", name)
}

// Global reports whether the scheme uses global arbitration (one relayed
// token) rather than distributed per-cycle token slots.
func (s Scheme) Global() bool { return s == TokenChannel || s == GHS || s == GHSSetaside }

// Handshake reports whether the scheme uses ACK/NACK flow control (and
// therefore a handshake waveguide).
func (s Scheme) Handshake() bool {
	return s == GHS || s == GHSSetaside || s == DHS || s == DHSSetaside
}

// CreditBased reports whether the scheme relies on credit flow control.
func (s Scheme) CreditBased() bool { return s == TokenChannel || s == TokenSlot }

// Circulating reports whether the receiver reinjects packets (DHS-cir).
func (s Scheme) Circulating() bool { return s == DHSCirculation }

// SendPolicy returns the sender-side packet retention policy of the scheme.
func (s Scheme) SendPolicy() router.SendPolicy {
	switch s {
	case GHS, DHS:
		return router.HoldHead
	case GHSSetaside, DHSSetaside:
		return router.Setaside
	default:
		// Credit schemes: delivery guaranteed. Circulation: the receiver
		// takes responsibility.
		return router.FireAndForget
	}
}

// Hardware returns the scheme's hardware profile for Table I and the power
// model. The setaside variants share their base scheme's optical hardware
// (setaside buffers are electrical).
func (s Scheme) Hardware() phys.SchemeHardware {
	switch s {
	case TokenChannel:
		return phys.SchemeHardware{Name: "Token Channel", Arbitration: phys.GlobalArbitration, TokenCreditBits: 6}
	case TokenSlot:
		return phys.SchemeHardware{Name: "Token Slot", Arbitration: phys.DistributedArbitration}
	case GHS:
		return phys.SchemeHardware{Name: "GHS", Arbitration: phys.GlobalArbitration, Handshake: true}
	case GHSSetaside:
		return phys.SchemeHardware{Name: "GHS_SetBuf", Arbitration: phys.GlobalArbitration, Handshake: true}
	case DHS:
		return phys.SchemeHardware{Name: "DHS", Arbitration: phys.DistributedArbitration, Handshake: true}
	case DHSSetaside:
		return phys.SchemeHardware{Name: "DHS_SetBuf", Arbitration: phys.DistributedArbitration, Handshake: true}
	case DHSCirculation:
		return phys.SchemeHardware{Name: "DHS_Cir", Arbitration: phys.DistributedArbitration, Circulation: true}
	default:
		panic("core: Hardware of invalid scheme")
	}
}

// PaperName returns the label used in the paper's figures.
func (s Scheme) PaperName() string {
	switch s {
	case TokenChannel:
		return "Token Channel"
	case TokenSlot:
		return "Token Slot"
	case GHS:
		return "GHS"
	case GHSSetaside:
		return "GHS w/ Setaside"
	case DHS:
		return "DHS"
	case DHSSetaside:
		return "DHS w/ Setaside"
	case DHSCirculation:
		return "DHS w/ Circulation"
	default:
		return s.String()
	}
}
