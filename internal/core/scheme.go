// Package core implements the paper's primary contribution: a
// cycle-accurate model of a ring-based MWSR nanophotonic network-on-chip
// under seven arbitration/flow-control schemes — the credit-based
// baselines (Token Channel, Token Slot) and the proposed handshake schemes
// (GHS and DHS, each optionally with setaside buffers, and DHS with
// circulation).
//
// The Network type is a scheme-agnostic cycle engine; everything
// per-scheme lives behind the Protocol strategy layer (protocol.go) and
// its registry, which also backs every trait accessor below. The engine
// wires together the substrates from the sibling packages: ring (optical
// timing), arbiter (token motion), flow (credit conservation) and router
// (electrical queues). One Network simulates all Nodes MWSR channels
// simultaneously, since sender-side head-of-line interactions couple the
// channels — the very effect the setaside and circulation techniques
// target.
package core

import (
	"fmt"
	"strings"

	"photon/internal/phys"
	"photon/internal/router"
)

// Scheme identifies an arbitration + flow-control scheme. Each value is a
// key into the protocol registry (see RegisterProtocol); every trait
// accessor below reads the scheme's ProtocolSpec, so a newly registered
// scheme needs no edits here.
type Scheme int

const (
	// TokenChannel is the global-arbitration baseline: one token per
	// channel carrying the home node's credit count (Vantrease MICRO'09).
	TokenChannel Scheme = iota
	// TokenSlot is the distributed-arbitration baseline: the home node
	// emits one-credit tokens while it has credits (Vantrease MICRO'09).
	TokenSlot
	// GHS is basic Global Handshake: credit-free global token, ACK/NACK
	// flow control, sent packet blocks the queue head until acknowledged.
	GHS
	// GHSSetaside is GHS with setaside buffers absorbing un-ACKed packets.
	GHSSetaside
	// DHS is basic Distributed Handshake: a fresh token every cycle,
	// ACK/NACK flow control, head blocked until acknowledged.
	DHS
	// DHSSetaside is DHS with setaside buffers.
	DHSSetaside
	// DHSCirculation is DHS where the receiver reinjects packets it cannot
	// buffer instead of dropping them; senders forget packets at launch
	// and no handshake waveguide exists.
	DHSCirculation
)

// Schemes lists every registered scheme in presentation order.
func Schemes() []Scheme {
	specs := RegisteredProtocols()
	out := make([]Scheme, len(specs))
	for i, sp := range specs {
		out[i] = sp.Scheme
	}
	return out
}

// GlobalGroup returns the global-arbitration schemes (the paper's
// Figure 8 comparison).
func GlobalGroup() []Scheme {
	var out []Scheme
	for _, sp := range RegisteredProtocols() {
		if sp.Global {
			out = append(out, sp.Scheme)
		}
	}
	return out
}

// DistributedGroup returns the distributed-arbitration schemes (the
// paper's Figure 9 comparison).
func DistributedGroup() []Scheme {
	var out []Scheme
	for _, sp := range RegisteredProtocols() {
		if !sp.Global {
			out = append(out, sp.Scheme)
		}
	}
	return out
}

func (s Scheme) String() string {
	if sp, ok := LookupProtocol(s); ok {
		return sp.Name
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// ParseScheme converts a CLI name into a Scheme.
func ParseScheme(name string) (Scheme, error) {
	valid := make([]string, 0, len(protocols))
	for _, sp := range RegisteredProtocols() {
		if sp.Name == name {
			return sp.Scheme, nil
		}
		valid = append(valid, sp.Name)
	}
	return 0, fmt.Errorf("core: unknown scheme %q (valid: %s)", name, strings.Join(valid, ", "))
}

// Global reports whether the scheme uses global arbitration (one relayed
// token) rather than distributed per-cycle token slots.
func (s Scheme) Global() bool {
	sp, _ := LookupProtocol(s)
	return sp.Global
}

// Handshake reports whether the scheme uses ACK/NACK flow control (and
// therefore a handshake waveguide).
func (s Scheme) Handshake() bool {
	sp, _ := LookupProtocol(s)
	return sp.Handshake
}

// CreditBased reports whether the scheme relies on credit flow control.
func (s Scheme) CreditBased() bool {
	sp, _ := LookupProtocol(s)
	return sp.CreditBased
}

// Circulating reports whether the receiver reinjects packets (DHS-cir).
func (s Scheme) Circulating() bool {
	sp, _ := LookupProtocol(s)
	return sp.Circulating
}

// SendPolicy returns the sender-side packet retention policy of the
// scheme (FireAndForget for unregistered values — the zero policy).
func (s Scheme) SendPolicy() router.SendPolicy {
	sp, _ := LookupProtocol(s)
	return sp.SendPolicy
}

// Family returns the scheme's registry family label (credit-global,
// credit-slot, handshake-global, handshake-slot, circulation) — the
// grouping the protocol files and the analytical twin dispatch on.
func (s Scheme) Family() string {
	sp, _ := LookupProtocol(s)
	return sp.Family
}

// Hardware returns the scheme's hardware profile for Table I and the power
// model. The setaside variants share their base scheme's optical hardware
// (setaside buffers are electrical).
func (s Scheme) Hardware() phys.SchemeHardware {
	sp, ok := LookupProtocol(s)
	if !ok {
		panic("core: Hardware of invalid scheme")
	}
	return sp.Hardware
}

// PaperName returns the label used in the paper's figures.
func (s Scheme) PaperName() string {
	if sp, ok := LookupProtocol(s); ok {
		return sp.PaperName
	}
	return s.String()
}
