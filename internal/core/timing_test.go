package core_test

import (
	"fmt"
	"testing"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// TestAckTimingExactlyRPlus1 pins §IV-C at the packet level: under DHS the
// gap between a launch and the sender's release of the packet (its ACK) is
// exactly R+1 cycles, for senders at every ring position. The constancy is
// what makes 1-bit handshake messages with scheduled detector activation
// feasible in hardware.
func TestAckTimingExactlyRPlus1(t *testing.T) {
	cfg := core.DefaultConfig(core.DHS)
	cfg.Fairness.Enabled = false
	for _, src := range []int{1, 9, 33, 63} {
		net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
		if err != nil {
			t.Fatal(err)
		}
		net.RunCycles(int64(cfg.RoundTrip))
		// Two packets: the second becomes launchable exactly when the
		// first's ACK arrives (HoldHead), so the launch gap measures the
		// handshake delay. The second must already be queued.
		p1 := net.Inject(src*cfg.CoresPerNode, 0, router.ClassData, 0)
		p2 := net.Inject(src*cfg.CoresPerNode, 0, router.ClassData, 0)
		for i := 0; i < 80 && p2.FirstSentAt < 0; i++ {
			net.Step()
		}
		if p2.FirstSentAt < 0 {
			t.Fatalf("src %d: second packet never launched", src)
		}
		// ACK arrives at p1.FirstSentAt + R + 1; p2 becomes ready that
		// cycle and, with tokens streaming every cycle, launches in the
		// next token opportunity (the same or next cycle).
		gap := p2.FirstSentAt - p1.FirstSentAt
		want := int64(cfg.RoundTrip + 1)
		if gap != want && gap != want+1 {
			t.Errorf("src %d: launch gap %d, want AckDelay %d (+1 for token alignment)", src, gap, want)
		}
	}
}

// TestTokenChannelReimburseOnlyAtHome: the Fig 2(a) mechanism in isolation
// — a freed credit is unusable until the token passes the home node.
func TestTokenChannelReimburseOnlyAtHome(t *testing.T) {
	cfg := core.DefaultConfig(core.TokenChannel)
	cfg.Nodes = 8
	cfg.CoresPerNode = 1
	cfg.RoundTrip = 8 // token moves one node per cycle
	cfg.BufferDepth = 1
	cfg.Fairness.Enabled = false
	net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Sender at node 1 with two packets; one credit total. The second
	// packet can only launch after (a) the first is delivered and ejected
	// and (b) the token has passed home to collect the credit and come
	// back around to node 1.
	p1 := net.Inject(1, 0, router.ClassData, 0)
	p2 := net.Inject(1, 0, router.ClassData, 0)
	for i := 0; i < 200 && p2.FirstSentAt < 0; i++ {
		net.Step()
	}
	if p1.FirstSentAt < 0 || p2.FirstSentAt < 0 {
		t.Fatal("packets never launched")
	}
	gap := p2.FirstSentAt - p1.FirstSentAt
	// Lower bound: delivery of p1 (flight 8 from offset 1) plus the
	// token's return to home and travel back to node 1 — more than one
	// full loop.
	if gap < int64(cfg.RoundTrip) {
		t.Fatalf("second credit usable after only %d cycles — reimbursement must wait for a home pass", gap)
	}
}

// TestConfigFuzz drives random valid configurations briefly; the per-cycle
// invariant checks turn any protocol corruption into a panic.
func TestConfigFuzz(t *testing.T) {
	rng := sim.NewRNG(0xF122)
	rts := []int{4, 8, 16}
	for trial := 0; trial < 24; trial++ {
		scheme := core.Schemes()[rng.Intn(len(core.Schemes()))]
		cfg := core.DefaultConfig(scheme)
		cfg.RoundTrip = rts[rng.Intn(len(rts))]
		cfg.BufferDepth = 1 + rng.Intn(12)
		cfg.SetasideSize = 1 + rng.Intn(6)
		cfg.CoresPerNode = 1 + rng.Intn(4)
		cfg.EjectRate = 1 + rng.Intn(2)
		cfg.EjectStallProb = float64(rng.Intn(5)) * 0.1
		cfg.QueueCap = rng.Intn(2) * 16
		cfg.MaxTokenHold = rng.Intn(3) * 4
		cfg.Seed = rng.Uint64()
		name := fmt.Sprintf("%v/rt%d/d%d", scheme, cfg.RoundTrip, cfg.BufferDepth)
		t.Run(name, func(t *testing.T) {
			net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
			if err != nil {
				t.Fatal(err)
			}
			inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.04+0.1*rng.Float64(),
				cfg.Nodes, cfg.CoresPerNode, rng.Uint64())
			if err != nil {
				t.Fatal(err)
			}
			for cyc := 0; cyc < 600; cyc++ {
				inj.Tick(net)
				net.Step()
			}
			net.Drain(60_000)
			st := net.Stats()
			if st.QueueRejected == 0 && st.Delivered != st.Injected {
				t.Fatalf("lost packets: %d of %d (drops %d retx %d circ %d)",
					st.Delivered, st.Injected, st.Drops, st.Retransmits, st.Circulations)
			}
		})
	}
}

// TestGlobalTokenNeverTwoHolders: under GHS, at most one node can be
// launching on a given channel per cycle; the data channel's stream
// booking plus the strict per-cycle arrival bound enforce it, and the
// diagnostics expose it.
func TestGlobalTokenNeverTwoHolders(t *testing.T) {
	cfg := core.DefaultConfig(core.GHSSetaside)
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(traffic.Hotspot{Hot: 5, Fraction: 0.6}, 0.1, cfg.Nodes, cfg.CoresPerNode, 77)
	if err != nil {
		t.Fatal(err)
	}
	inj.Run(net)
	for _, d := range net.Diagnostics() {
		if d.PeakInFlight > cfg.RoundTrip+2 {
			t.Fatalf("home %d: %d flits in flight — more than one concurrent writer", d.Home, d.PeakInFlight)
		}
	}
}
