package core_test

import (
	"testing"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/sim"
)

// mustNet builds a small network for microscopic protocol tests: 8 nodes,
// 1 core per node, round trip 8 (so light moves 1 node per cycle, matching
// the paper's walk-through figures).
func mustNet(t testing.TB, scheme core.Scheme, mod func(*core.Config)) *core.Network {
	t.Helper()
	cfg := core.DefaultConfig(scheme)
	cfg.Nodes = 8
	cfg.CoresPerNode = 1
	cfg.RoundTrip = 8
	cfg.Fairness.Enabled = false
	if mod != nil {
		mod(&cfg)
	}
	net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 30, Drain: 0})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return net
}

// TestBasicDHSHoldHeadPeriod checks the fundamental HoldHead limit: one
// saturated sender under basic DHS must deliver exactly one packet per
// AckDelay (R+1) cycles in steady state, because the queue head is pinned
// until its ACK returns.
func TestBasicDHSHoldHeadPeriod(t *testing.T) {
	net := mustNet(t, core.DHS, nil)
	const cycles = 2000
	for cyc := 0; cyc < cycles; cyc++ {
		// Saturated source: node 1 -> node 0, one injection per cycle.
		net.Inject(1, 0, router.ClassData, 0)
		net.Step()
	}
	delivered := net.Stats().Delivered
	period := float64(cycles) / float64(delivered)
	want := float64(net.Geometry().AckDelay())
	if period < want-0.5 {
		t.Fatalf("basic DHS sender period %.2f cycles, want >= AckDelay %.0f (HOL blocking violated; %d delivered in %d cycles)",
			period, want, delivered, cycles)
	}
	if period > want+3 {
		t.Errorf("basic DHS sender period %.2f cycles, want close to AckDelay %.0f", period, want)
	}
}

// TestSetasideDHSInFlightWindow checks that a saturated sender with S
// setaside slots keeps up to S packets in flight and therefore delivers
// about S packets per AckDelay window (capped at 1/cycle).
func TestSetasideDHSInFlightWindow(t *testing.T) {
	for _, s := range []int{1, 2, 4} {
		net := mustNet(t, core.DHSSetaside, func(c *core.Config) { c.SetasideSize = s })
		const cycles = 2000
		for cyc := 0; cyc < cycles; cyc++ {
			net.Inject(1, 0, router.ClassData, 0)
			net.Step()
		}
		got := float64(net.Stats().Delivered) / float64(cycles)
		want := float64(s) / float64(net.Geometry().AckDelay())
		if want > 1 {
			want = 1
		}
		if got < want*0.8 || got > want*1.2+0.02 {
			t.Errorf("setaside=%d: throughput %.3f pkt/cycle, want about %.3f", s, got, want)
		}
	}
}
