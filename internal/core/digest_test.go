package core

import (
	"testing"

	"photon/internal/router"
)

// TestRunDigestOrderInsensitive: the fold must be commutative — the order
// events are observed within a cycle is a simulator artefact and must not
// leak into the fingerprint.
func TestRunDigestOrderInsensitive(t *testing.T) {
	hashes := make([]uint64, 64)
	x := uint64(0xDEADBEEF)
	for i := range hashes {
		x = mix64(x + uint64(i))
		hashes[i] = x
	}
	var fwd, rev, shuffled runDigest
	for _, h := range hashes {
		fwd.observe(h)
	}
	for i := len(hashes) - 1; i >= 0; i-- {
		rev.observe(hashes[i])
	}
	for i := 0; i < len(hashes); i += 2 {
		shuffled.observe(hashes[i])
	}
	for i := 1; i < len(hashes); i += 2 {
		shuffled.observe(hashes[i])
	}
	if fwd.value() != rev.value() || fwd.value() != shuffled.value() {
		t.Fatalf("digest depends on observation order: %016x / %016x / %016x",
			fwd.value(), rev.value(), shuffled.value())
	}
}

// TestRunDigestCountsMultiplicity: xor alone would cancel duplicated
// events; the sum/count components must keep A,A,B distinct from B.
func TestRunDigestCountsMultiplicity(t *testing.T) {
	a, b := mix64(1), mix64(2)
	var dup, single runDigest
	dup.observe(a)
	dup.observe(a)
	dup.observe(b)
	single.observe(b)
	if dup.value() == single.value() {
		t.Fatal("duplicated events cancelled out of the digest")
	}
}

// TestEventHashSensitivity: every field of the event tuple must perturb
// the hash.
func TestEventHashSensitivity(t *testing.T) {
	pkt := func(id uint64, src, dst int) *router.Packet {
		return router.NewPacket(id, src, dst, 0)
	}
	ref := eventHash(100, EvLaunch, pkt(7, 3, 9))
	variants := map[string]uint64{
		"cycle":  eventHash(101, EvLaunch, pkt(7, 3, 9)),
		"type":   eventHash(100, EvAccept, pkt(7, 3, 9)),
		"packet": eventHash(100, EvLaunch, pkt(8, 3, 9)),
		"src":    eventHash(100, EvLaunch, pkt(7, 4, 9)),
		"dst":    eventHash(100, EvLaunch, pkt(7, 3, 10)),
	}
	for field, h := range variants {
		if h == ref {
			t.Errorf("changing %s did not change the event hash", field)
		}
	}
}
