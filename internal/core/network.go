package core

import (
	"errors"
	"fmt"

	"photon/internal/arbiter"
	"photon/internal/fault"
	"photon/internal/flow"
	"photon/internal/ring"
	"photon/internal/router"
	"photon/internal/sim"
)

// Network is one cycle-accurate instance of the 64-node MWSR optical ring
// under a single scheme. It simulates all Nodes channels together because
// sender-side queues couple them: a node's per-core output queue may hold
// packets for many destinations, and a pending (un-ACKed) head blocks
// followers bound elsewhere — the head-of-line effect the paper's setaside
// and circulation techniques exist to cure.
//
// Architecture per node (paper Fig. 7): CoresPerNode output queues (one per
// attached core) feed a single E/O launch port through the router's SA
// stage, so a node launches at most one packet per cycle; each queue owns
// its private setaside slots; the node's own channel ends in an input
// buffer of BufferDepth slots drained at EjectRate packets per cycle.
//
// The engine itself is scheme-agnostic: everything per-scheme lives behind
// the Protocol interface (protocol.go), bound once per channel at
// construction into the channel's hook closures. The cycle loop only calls
// those closures — no scheme dispatch on the hot path.
//
// Cycle phase order (the determinism contract documented in DESIGN.md):
//
//  1. optical arrivals at home nodes (accept / drop+NACK / reinject)
//  2. handshake pulses reach senders (ACK frees, NACK arms retransmit)
//     2b. retransmit timers expire (recovery only; after pulse delivery so
//     an answer arriving exactly at the deadline wins over the timeout)
//  3. ejection from home buffers to cores (frees credits)
//  4. token motion and capture (watchdog regeneration first)
//  5. launches onto data channels
//  6. electrical injection pipeline delivers new packets to output queues
//  7. invariant checks
//
// Identical Config (including Seed) and identical injection sequences give
// bit-identical results.
type Network struct {
	cfg    Config
	geom   *ring.Geometry
	window sim.Window
	now    int64
	nextID uint64

	// Node, queue and channel state lives in flat value slices (struct of
	// arrays): the phase loops touch all of them every cycle, and walking
	// contiguous memory instead of chasing per-element pointers is a large
	// fraction of the engine's raw speed. Pointers *into* the slices
	// (&nodes[i], &chans[h]) are handed to bound closures at construction
	// and stay valid because the slices never grow after NewNetwork.
	nodes  []nodeState
	queues []queueState // node i's queues: queues[i*CoresPerNode : (i+1)*CoresPerNode]
	chans  []channel

	// wantRows[h][id] counts how many of node id's queues currently want
	// channel h — the transpose of the former per-node wantCount layout,
	// so a token sweep over channel h reads one contiguous row instead of
	// striding across every node. wantNodes[h] counts nodes with a
	// non-zero entry; zero lets the token phase skip channel h's capture
	// scan outright. wantBacking is the rows' shared backing store.
	wantBacking []int16
	wantRows    [][]int16
	wantNodes   []int32
	// wantMask[h] has bit id set iff wantRows[h][id] > 0 — a one-word
	// summary the slot-capture scan iterates with trailing-zero counting
	// instead of walking the whole row. Maintained for any node count but
	// only consulted when Nodes <= 64 (bits beyond 63 would alias).
	wantMask []uint64

	grants []grant

	stats *Stats
	rng   *sim.RNG

	// OnDeliver, when set, is invoked for every delivered packet in the
	// cycle it reaches its destination core — the hook closed-loop
	// workloads (the CMP model) use to complete transactions.
	OnDeliver func(*router.Packet)

	// onEvent is the protocol observer installed with Trace.
	onEvent func(Event)

	// tap is the optional lifecycle-event sink installed with SetTracer.
	// Unlike onEvent it also receives the tap-only attribution events;
	// nil (the default) keeps every emit site to a single pointer test.
	tap Tracer

	injPipe *sim.DelayLine[*router.Packet]

	// Fault injection and recovery. faults is nil on fault-free runs —
	// every hook in the hot path is gated on that nil check, so the
	// fault-free cycle costs nothing extra.
	faults     *fault.Injector
	recoveryOn bool
	retxBase   int64 // sender timeout base (cycles)
	backoffCap int   // max backoff shift
	watchdog   int64 // global-token silence window (cycles)
	onTimeout  func(*router.Packet)

	// skipOK precomputes the static half of the idle skip-ahead gate: the
	// fast path is sound only when no per-cycle randomness is drawn
	// outside the injector (EjectStallProb == 0 — a stalled eject draws
	// its RNG even over an empty buffer) and no fault process needs its
	// per-cycle Bernoulli stream (faults == nil). The dynamic half of the
	// gate is Outstanding() == 0; see RunCycles.
	skipOK bool

	// orphans counts logical packets whose only live copy was destroyed
	// (NACK-dropped awaiting retransmit, or fault-discarded with a sender
	// retention copy); dupsInFlight counts extra copies of already-accepted
	// packets launched by timeout recovery. Both keep Backlog exact under
	// faults; on fault-free runs orphans == Drops - Retransmits and
	// dupsInFlight == 0.
	orphans      int
	dupsInFlight int

	// spec is the scheme's registry row; proto built the channel hooks.
	// (Kept at the tail: these are cold after construction, and the hot
	// fields above share cache lines the cycle loop depends on.)
	spec   ProtocolSpec
	proto  Protocol
	policy router.SendPolicy
}

// nodeState is the electrical side of one ring node. Its queues live in
// the network's flat queue slice (Network.nodeQueues); which channels the
// node wants live in the transposed want rows (Network.wantRows).
type nodeState struct {
	id int
	// granted marks that the node's launch port is already claimed this
	// cycle (by a distributed token capture).
	granted bool
	// holding is the home id of the global token this node holds, or -1.
	holding int
	// rr rotates queue service order (the SA stage's round-robin).
	rr int
}

// queueState is one per-core output queue with its send-policy state.
type queueState struct {
	out  *router.OutPort
	want int // home id of the channel this queue's next-ready packet wants, or -1
}

// channel is the optical machinery of one home node. The scheme-specific
// substrate fields (hs/glob/slot/rc/sc/regen) are populated by the
// protocol's Wire hook; the closure fields at the bottom are bound once
// from the Protocol at construction and are all the cycle loop ever calls.
type channel struct {
	home int
	data *ring.DataChannel[*router.Packet]
	hs   *ring.HandshakeChannel // handshake schemes only
	glob *arbiter.GlobalToken   // global arbitration only
	slot *arbiter.SlotEmitter   // distributed arbitration only
	rc   *flow.RelayedCredits   // Token Channel only
	sc   *flow.SlotCredits      // Token Slot only
	in   *router.InPort
	fair *arbiter.Fairness

	// suppress blocks this cycle's token emission after a reinjection
	// (DHS with circulation: the home "virtually consumes" the token).
	suppress bool
	// holdCount counts consecutive sends under the current global grab.
	holdCount int

	// Fault-injection state. lastActivity is the last cycle the home node
	// observed arbitration life on a global channel (a token pass or a
	// data arrival) — the watchdog's silence reference. regen (Token Slot
	// under fault injection only) schedules the reclaim of a credit that
	// left home aboard a token that died, at the token's nominal expiry
	// window. faultDiscards counts data flits destroyed on arrival;
	// dupsDiscarded counts recognised duplicate arrivals.
	lastActivity  int64
	regen         *sim.DelayLine[int64]
	faultDiscards int64
	dupsDiscarded int64

	// Pre-bound protocol hooks (see Protocol in protocol.go). A nil hook
	// means the scheme has no behaviour in that phase.
	advance     func(now int64)                     // phase 4: token motion + capture
	launchHeld  func(now int64)                     // phase 5: held global token sends
	arrive      func(now int64, pkt *router.Packet) // phase 1: packet at home
	handshake   func(now int64)                     // phase 2: ACK/NACK delivery
	onEject     func()                              // phase 3: per-packet credit release
	onDataFault func(pkt *router.Packet)            // data-loss ledger reconciliation
	invariant   func() error                        // phase 7: conservation check
}

type grant struct {
	node *nodeState
	ch   *channel
}

// NewNetwork builds a network from cfg, measuring over window.
func NewNetwork(cfg Config, window sim.Window) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, ok := LookupProtocol(cfg.Scheme)
	if !ok {
		return nil, fmt.Errorf("core: invalid scheme %d", int(cfg.Scheme))
	}
	geom, err := ring.NewGeometry(cfg.Nodes, cfg.RoundTrip)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:     cfg,
		geom:    geom,
		window:  window,
		spec:    spec,
		proto:   spec.New(),
		policy:  spec.SendPolicy,
		stats:   NewStats(window, cfg.Nodes, cfg.Cores()),
		rng:     sim.NewRNG(cfg.Seed),
		injPipe: sim.NewDelayLine[*router.Packet](cfg.RouterPipeline + 2),
	}
	if cfg.Fault.Enabled {
		fcfg := cfg.Fault
		if fcfg.Seed == 0 {
			fcfg.Seed = sim.DeriveSeed(cfg.Seed, faultSeedStream)
		}
		n.faults = fault.NewInjector(fcfg, cfg.Nodes)
	}
	n.skipOK = !cfg.DisableSkipAhead && n.faults == nil && cfg.EjectStallProb == 0
	if cfg.Recovery.Enabled {
		n.recoveryOn = true
		n.retxBase = cfg.retxTimeoutBase()
		n.backoffCap = cfg.retxBackoffCap()
		n.watchdog = cfg.watchdogWindow()
		n.onTimeout = func(pkt *router.Packet) {
			n.stats.TimeoutRetransmits++
			n.emit(EvTimeout, pkt)
		}
	}

	n.nodes = make([]nodeState, cfg.Nodes)
	n.queues = make([]queueState, cfg.Nodes*cfg.CoresPerNode)
	for i := range n.nodes {
		n.nodes[i] = nodeState{id: i, holding: -1}
	}
	for qi := range n.queues {
		n.queues[qi] = queueState{
			out:  router.NewOutPort(n.policy, cfg.QueueCap, cfg.SetasideSize),
			want: -1,
		}
	}
	n.wantBacking = make([]int16, cfg.Nodes*cfg.Nodes)
	n.wantRows = make([][]int16, cfg.Nodes)
	for h := range n.wantRows {
		n.wantRows[h] = n.wantBacking[h*cfg.Nodes : (h+1)*cfg.Nodes]
	}
	n.wantNodes = make([]int32, cfg.Nodes)
	n.wantMask = make([]uint64, cfg.Nodes)
	// At most one grant per node per cycle (the granted flag), so the
	// grant queue never outgrows this and phaseLaunch never reallocates.
	n.grants = make([]grant, 0, cfg.Nodes)

	n.chans = make([]channel, cfg.Nodes)
	for h := range n.chans {
		c := &n.chans[h]
		*c = channel{
			home: h,
			data: ring.NewDataChannel[*router.Packet](geom),
			in:   router.NewInPort(cfg.BufferDepth, cfg.EjectRate, cfg.EjectStallProb, n.rng.Fork(uint64(h)+1000)),
			fair: arbiter.NewFairness(cfg.Nodes, cfg.Fairness),
		}
		n.bindChannel(c)
	}
	return n, nil
}

// nodeQueues returns node id's per-core output queues (a view into the
// flat queue slice).
func (n *Network) nodeQueues(id int) []queueState {
	k := n.cfg.CoresPerNode
	return n.queues[id*k : (id+1)*k]
}

// bindChannel wires channel c's scheme machinery and pre-binds the
// protocol's hook closures so the hot loop performs no per-cycle
// allocation or scheme dispatch.
func (n *Network) bindChannel(c *channel) {
	n.proto.Wire(n, c)
	c.advance = n.proto.Arbitrate(n, c)
	c.launchHeld = n.proto.LaunchHeld(n, c)
	c.arrive = n.proto.Arrive(n, c)
	c.handshake = n.proto.Handshake(n, c)
	c.onEject = n.proto.Eject(n, c)
	c.onDataFault = n.proto.RecoverData(n, c)
	c.invariant = n.proto.Invariant(n, c)
}

// faultSeedStream is the DeriveSeed stream id reserved for the fault
// injector when Fault.Seed is left 0 (derive from the network seed).
const faultSeedStream = 0xFA017

// faultAux encodes a packet-less fault event's (class, element) pair into
// the digest aux word.
func faultAux(cl fault.Class, element int) uint64 {
	return uint64(cl)<<32 | uint64(uint32(element))
}

// Geometry exposes the loop timing model (read-only).
func (n *Network) Geometry() *ring.Geometry { return n.geom }

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Protocol returns the network's scheme registry row.
func (n *Network) Protocol() ProtocolSpec { return n.spec }

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Window returns the measurement window.
func (n *Network) Window() sim.Window { return n.window }

// Stats exposes the live statistics collector.
func (n *Network) Stats() *Stats { return n.stats }

// Inject hands a packet from srcCore (a global core id) to its node's
// router at the current cycle; it surfaces in an output queue after the
// electrical pipeline delay. Destination is a node id (a cache bank's or
// core cluster's network attachment). Packets whose destination is the
// source's own node never enter the optical ring: they are delivered
// locally after the router latency, as in the paper's concentrated S-NUCA
// layout.
func (n *Network) Inject(srcCore, dstNode int, class router.Class, tag uint64) *router.Packet {
	if srcCore < 0 || srcCore >= n.cfg.Cores() {
		panic(fmt.Sprintf("core: Inject from invalid core %d", srcCore))
	}
	if dstNode < 0 || dstNode >= n.cfg.Nodes {
		panic(fmt.Sprintf("core: Inject to invalid node %d", dstNode))
	}
	srcNode := srcCore / n.cfg.CoresPerNode
	pkt := router.NewPacket(n.nextID, srcNode, dstNode, n.now)
	n.nextID++
	pkt.Class = class
	pkt.Tag = tag | uint64(srcCore)<<40 // keep the core for local queue routing
	n.stats.onInjected(pkt)
	n.emit(EvInject, pkt)
	n.injPipe.Schedule(n.now+int64(n.cfg.RouterPipeline), pkt)
	return pkt
}

// Digest returns the current value of the run's protocol-event
// fingerprint (finalised into Result.Digest at the end of the run).
func (n *Network) Digest() uint64 { return n.stats.digest.value() }

// queueOf returns the per-core output queue a packet belongs to.
func (n *Network) queueOf(pkt *router.Packet) (*nodeState, *queueState) {
	core := int(pkt.Tag>>40) % n.cfg.CoresPerNode
	return &n.nodes[pkt.Src], &n.queues[pkt.Src*n.cfg.CoresPerNode+core]
}

// Step advances the network by one cycle, executing the seven phases.
func (n *Network) Step() {
	now := n.now
	if n.faults != nil {
		n.faults.BeginCycle(now, func(node int) {
			n.stats.FaultsInjected++
			n.emitMeta(EvFault, faultAux(fault.NodeStall, node))
		})
	}
	for i := range n.chans {
		n.phaseArrive(&n.chans[i], now)
	}
	for i := range n.chans {
		if c := &n.chans[i]; c.handshake != nil {
			c.handshake(now)
		}
	}
	if n.recoveryOn {
		n.phaseTimeouts(now)
	}
	for i := range n.chans {
		n.phaseEject(&n.chans[i], now)
	}
	// Rotate channel order so cross-channel capture priority (an artefact
	// of sequential simulation, not physics) carries no systematic bias.
	start := int(now) % len(n.chans)
	for i := range n.chans {
		n.phaseTokens(&n.chans[(start+i)%len(n.chans)], now)
	}
	n.phaseLaunch(now)
	n.phasePipeline(now)
	if n.cfg.CheckInvariants {
		n.checkInvariants()
	}
	n.now++
}

// RunCycles advances the network by k cycles. It is bit-identical to k
// consecutive Step calls, but when the network goes quiescent mid-span —
// nothing queued, in flight, pending, or buffered anywhere — it switches
// to the idle fast path, which executes only the stateful slice of each
// cycle (see idleRun). Drivers with gaps between injections (tape replay,
// drain tails) route them through here to collect the speedup.
func (n *Network) RunCycles(k int64) {
	end := n.now + k
	if !n.skipOK {
		for n.now < end {
			n.Step()
		}
		return
	}
	for n.now < end {
		if n.Outstanding() == 0 {
			n.idleRun(end)
			return
		}
		n.Step()
	}
}

// idleRun advances a quiescent network to cycle end, executing per cycle
// only the phases that carry state when nothing is outstanding, in the
// exact order Step would:
//
//   - arrivals, handshake delivery, timeouts, ejection, held-token
//     launches, pipeline pop and invariants are provably no-ops: every
//     delay line, buffer and queue is empty, no retransmit timer is armed
//     (Outstanding counts un-ACKed retention copies), and no global token
//     is held (a holder releases in the send cycle once its queue empties);
//   - the token phase is NOT a no-op — fairness windows roll, slot tokens
//     expire and re-emit, credits ride tokens home, global tokens
//     circulate, watchdogs observe silence — so it runs in full, in the
//     same rotated channel order as Step;
//   - quiescence is absorbing: with no requesters (empty queues mean
//     every want row is zero) no capture, grant or launch can occur, so
//     eligibility never needs re-checking inside the loop.
//
// Afterwards the skipped clocks (injection pipeline, per-channel data and
// handshake lines — all empty) are fast-forwarded so later Schedule and
// PopDue calls see a current horizon. No digest event can be emitted in an
// idle cycle on either path, so digests are bit-identical by construction;
// the skip-ahead equivalence battery asserts it.
func (n *Network) idleRun(end int64) {
	for n.now < end {
		now := n.now
		start := int(now) % len(n.chans)
		for i := range n.chans {
			c := &n.chans[(start+i)%len(n.chans)]
			if c.fair.BeginCycle(now) && n.wantNodes[c.home] > 0 {
				panic("core: idle skip-ahead with live requesters")
			}
			c.advance(now)
		}
		n.now++
	}
	n.injPipe.SkipTo(n.now)
	for i := range n.chans {
		c := &n.chans[i]
		c.data.SkipTo(n.now)
		if c.hs != nil {
			c.hs.SkipTo(n.now)
		}
	}
}

// phaseArrive processes the at-most-one packet landing at channel c's home.
func (n *Network) phaseArrive(c *channel, now int64) {
	pkt, ok := c.data.Arrival(now)
	if !ok {
		return
	}
	if c.glob != nil {
		// Any arrival proves the arbitration loop is alive (someone held
		// the token recently) — watchdog activity.
		c.lastActivity = now
	}
	if n.faults != nil && n.faults.KillData(c.home, now) {
		n.dataFault(c, pkt)
		return
	}
	c.arrive(now, pkt)
}

// dataFault applies a data-loss fault to an arriving flit: the home cannot
// read it (header included), so it is discarded with no handshake answer.
// What happens to the *packet* depends on who still remembers it — the
// protocol's RecoverData hook reconciles its ledger and classifies the
// packet's fate.
func (n *Network) dataFault(c *channel, pkt *router.Packet) {
	n.stats.FaultsInjected++
	c.faultDiscards++
	n.emit(EvFault, pkt)
	c.onDataFault(pkt)
}

// phaseTimeouts expires armed retransmit timers (recovery only). It runs
// after the handshake phase by contract: an answer delivered in this very
// cycle has already resolved its entry, so a timer never fires against an
// answer that actually arrived — including one arriving exactly at the
// deadline cycle.
func (n *Network) phaseTimeouts(now int64) {
	for i := range n.nodes {
		nd := &n.nodes[i]
		qs := n.nodeQueues(nd.id)
		for j := range qs {
			q := &qs[j]
			if q.out.Unacked() == 0 {
				continue
			}
			if q.out.ExpireTimeouts(now, n.onTimeout) > 0 {
				n.updateQueueWant(nd, q)
			}
		}
	}
}

// phaseEject drains the home buffer to the cores and frees credits.
func (n *Network) phaseEject(c *channel, now int64) {
	for _, pkt := range c.in.Eject() {
		if c.onEject != nil {
			c.onEject()
		}
		pkt.DeliveredAt = now + int64(n.cfg.EjectLatency)
		n.stats.onDelivered(pkt, false)
		n.emit(EvDeliver, pkt)
		if n.OnDeliver != nil {
			n.OnDeliver(pkt)
		}
	}
}

// phaseTokens advances channel c's arbitration by one cycle: the
// scheme-independent fairness window accounting, then the protocol's bound
// token-motion closure.
func (n *Network) phaseTokens(c *channel, now int64) {
	if c.fair.BeginCycle(now) && n.wantNodes[c.home] > 0 {
		// A new fairness window opened: re-register the still-backlogged
		// requesters so sustained contention is counted, not just newly
		// arriving heads.
		row := n.wantRows[c.home]
		for id := range row {
			if row[id] > 0 {
				c.fair.OnRequest(id)
			}
		}
	}
	c.advance(now)
}

// phaseLaunch fires this cycle's granted and held sends.
func (n *Network) phaseLaunch(now int64) {
	// Distributed-token grants: exactly one packet per grant.
	for _, g := range n.grants {
		nd, q, pkt := n.pickQueue(g.node, g.ch.home)
		if pkt == nil {
			panic("core: token grant with no eligible packet")
		}
		n.launch(nd, q, g.ch, pkt)
		g.node.granted = false
	}
	n.grants = n.grants[:0]

	// Global token holders (schemes with a launchHeld hook).
	for i := range n.chans {
		if c := &n.chans[i]; c.launchHeld != nil {
			c.launchHeld(now)
		}
	}
}

// pickQueue selects, round-robin from the node's SA pointer, a queue whose
// next-ready packet is bound for home h.
func (n *Network) pickQueue(nd *nodeState, h int) (*nodeState, *queueState, *router.Packet) {
	qs := n.nodeQueues(nd.id)
	k := len(qs)
	for i := 0; i < k; i++ {
		q := &qs[(nd.rr+i)%k]
		if q.want != h {
			continue
		}
		pkt := q.out.NextReady()
		if pkt == nil || pkt.Dst != h {
			panic("core: queue want out of sync with its ready packet")
		}
		nd.rr = (nd.rr + i + 1) % k
		return nd, q, pkt
	}
	return nd, nil, nil
}

// launch sends pkt from node nd's queue q onto channel c.
func (n *Network) launch(nd *nodeState, q *queueState, c *channel, pkt *router.Packet) {
	retx := pkt.FirstSentAt >= 0
	off := n.geom.Offset(c.home, nd.id)
	q.out.MarkSent(pkt, n.now)
	var err error
	if c.glob != nil {
		_, err = c.data.LaunchStream(n.now, off, pkt)
	} else {
		_, err = c.data.Launch(n.now, off, pkt)
	}
	if err != nil {
		panic(err)
	}
	n.stats.Launches++
	if retx {
		n.stats.Retransmits++
		if pkt.AcceptedAt >= 0 {
			// Timeout re-send of a packet the home already accepted (the
			// ACK died): this copy is a duplicate the home will discard.
			n.dupsInFlight++
		} else {
			n.orphans--
			if n.orphans < 0 {
				panic("core: negative orphan count")
			}
		}
	}
	if n.recoveryOn && q.out.Policy() != router.FireAndForget {
		q.out.Arm(pkt, n.now, n.retxBase, n.backoffCap)
	}
	n.emit(EvLaunch, pkt)
	if !retx && q.out.Policy() == router.Setaside {
		// A first launch under Setaside parks the packet in a side slot;
		// a retransmission re-sends the copy already parked there.
		n.emitTap(EvSetasideEnter, pkt)
	}
	n.updateQueueWant(nd, q)
}

// phasePipeline moves packets out of the electrical injection pipeline into
// their output queues (or delivers node-local traffic directly).
func (n *Network) phasePipeline(now int64) {
	for _, pkt := range n.injPipe.PopDue(now) {
		srcNode := pkt.Src
		if pkt.Dst == srcNode {
			pkt.DeliveredAt = now + int64(n.cfg.EjectLatency)
			n.stats.onDelivered(pkt, true)
			n.emit(EvDeliver, pkt)
			if n.OnDeliver != nil {
				n.OnDeliver(pkt)
			}
			continue
		}
		nd, q := n.queueOf(pkt)
		if !q.out.Enqueue(pkt) {
			n.stats.QueueRejected++
			continue
		}
		pkt.EnqueuedAt = now
		n.emit(EvEnqueue, pkt)
		n.updateQueueWant(nd, q)
	}
}

// updateQueueWant re-derives which channel queue q requests and maintains
// the node-level want counts the capture callbacks read.
func (n *Network) updateQueueWant(nd *nodeState, q *queueState) {
	want := -1
	if pkt := q.out.NextReady(); pkt != nil {
		want = pkt.Dst
		if pkt.ReadyAt < 0 {
			pkt.ReadyAt = n.now
			n.emitTap(EvHeadReady, pkt)
		}
	}
	if want == q.want {
		return
	}
	if q.want >= 0 {
		row := n.wantRows[q.want]
		row[nd.id]--
		if row[nd.id] < 0 {
			panic("core: negative want count")
		}
		if row[nd.id] == 0 {
			n.wantNodes[q.want]--
			n.wantMask[q.want] &^= 1 << uint(nd.id)
		}
	}
	if want >= 0 {
		row := n.wantRows[want]
		if row[nd.id] == 0 {
			n.chans[want].fair.OnRequest(nd.id)
			n.wantNodes[want]++
			n.wantMask[want] |= 1 << uint(nd.id)
		}
		row[nd.id]++
	}
	q.want = want
}

// checkInvariants asserts the protocol's flow-control conservation
// invariant and the channel-occupancy invariant every cycle, reporting the
// scheme by its registry name so diagnostics stay correct for any future
// registered scheme.
func (n *Network) checkInvariants() {
	maxFlight := n.cfg.RoundTrip + 2
	for i := range n.chans {
		c := &n.chans[i]
		if c.invariant != nil {
			if err := c.invariant(); err != nil {
				panic(fmt.Sprintf("core: scheme %s: %v", n.spec.Name, err))
			}
		}
		if f := c.data.InFlight(); f > maxFlight {
			panic(fmt.Sprintf("core: scheme %s: channel %d has %d flits in flight (max %d)",
				n.spec.Name, c.home, f, maxFlight))
		}
	}
}

// Backlog reports the exact number of injected-but-undelivered packets
// the network currently holds, locating each packet exactly once: in an
// injection pipeline, in an output queue, on a waveguide, in a home input
// buffer, or orphaned — its only live copy destroyed (NACK-dropped with
// the retransmission still owed, or fault-discarded with the sender's
// retention copy awaiting its timeout). Duplicate copies launched by
// timeout recovery are subtracted from the in-flight count so each packet
// is still counted once; on fault-free runs orphans == Drops - Retransmits
// and the duplicate count is zero, reducing to the seed formula.
// Sent-but-unACKed retention copies are deliberately *not* counted — the
// real packet is already located downstream (or delivered, with its ACK
// still in flight) — so the conservation identity
// Injected == Delivered + Backlog + QueueRejected + Lost holds at every
// cycle; internal/check audits it.
func (n *Network) Backlog() int {
	total := n.injPipe.Len() + n.orphans - n.dupsInFlight
	for i := range n.queues {
		total += n.queues[i].out.QueueLen()
	}
	for i := range n.chans {
		total += n.chans[i].data.InFlight() + n.chans[i].in.Occupied()
	}
	return total
}

// Outstanding reports everything the network still *owns*, retention
// copies included: queued, sent-but-unACKed, in flight, buffered at homes,
// or in injection pipelines. It over-counts packets relative to Backlog
// (a HoldHead/Setaside sender keeps a copy while the packet flies) but is
// the correct quiescence predicate: zero means no node holds any protocol
// state, so Drain stops on it.
func (n *Network) Outstanding() int {
	total := n.injPipe.Len()
	for i := range n.queues {
		total += n.queues[i].out.Backlog()
	}
	for i := range n.chans {
		total += n.chans[i].data.InFlight() + n.chans[i].in.Occupied()
	}
	return total
}

// ErrDrainStalled tags every *DrainError for errors.Is, so callers can
// test "did the drain hit its cap" without unpacking the details.
var ErrDrainStalled = errors.New("core: drain stalled before quiescence")

// DrainError reports a Drain that hit its quiescence cap: after Cycles
// drain cycles the network still owned Outstanding packets. Before this
// error existed a stranded packet (a fault with recovery disabled, or a
// protocol hole) was indistinguishable from a clean drain that merely
// returned late — a hang and a pass looked the same. Scheme is the
// registry name of the scheme that stalled, so multi-scheme batteries
// report the culprit directly.
type DrainError struct {
	Scheme      string
	Cycles      int64
	Outstanding int
}

func (e *DrainError) Error() string {
	return fmt.Sprintf("core: %s network not quiescent after %d drain cycles: %d packets still outstanding",
		e.Scheme, e.Cycles, e.Outstanding)
}

// Is makes errors.Is(err, ErrDrainStalled) match any *DrainError.
func (e *DrainError) Is(target error) bool { return target == ErrDrainStalled }

// Drain keeps stepping (no new injections) until the network is quiescent
// or limit cycles elapse. It returns the remaining outstanding count,
// together with a *DrainError when that count is non-zero.
func (n *Network) Drain(limit int64) (int, error) {
	for i := int64(0); i < limit && n.Outstanding() > 0; i++ {
		n.Step()
	}
	if left := n.Outstanding(); left > 0 {
		return left, &DrainError{Scheme: n.spec.Name, Cycles: limit, Outstanding: left}
	}
	return 0, nil
}

// Result finalises and returns the run's measurements.
func (n *Network) Result() Result {
	n.stats.TokensYielded = 0
	for i := range n.chans {
		n.stats.TokensYielded += n.chans[i].fair.Yields()
	}
	return n.stats.Finish(n.cfg.Scheme)
}

// ChannelDiagnostics summarises one channel's low-level counters (tests and
// the verbose CLI mode use it).
type ChannelDiagnostics struct {
	Home          int
	Launches      int64
	Reinjections  int64
	PeakInFlight  int
	PeakInputBuf  int
	TokenCaptures int64
	TokensEmitted int64
	TokensExpired int64
	AcksSent      int64
	NacksSent     int64
	FairYields    int64
}

// Diagnostics returns per-channel low-level counters.
func (n *Network) Diagnostics() []ChannelDiagnostics {
	out := make([]ChannelDiagnostics, len(n.chans))
	for i := range n.chans {
		c := &n.chans[i]
		d := ChannelDiagnostics{
			Home:         c.home,
			Launches:     c.data.Launches(),
			Reinjections: c.data.Reinjections(),
			PeakInFlight: c.data.PeakInFlight(),
			PeakInputBuf: c.in.Peak(),
			FairYields:   c.fair.Yields(),
		}
		if c.glob != nil {
			d.TokenCaptures = c.glob.Captures()
		}
		if c.slot != nil {
			d.TokensEmitted, d.TokenCaptures, d.TokensExpired = c.slot.Stats()
		}
		if c.hs != nil {
			d.AcksSent, d.NacksSent = c.hs.Sent()
		}
		out[i] = d
	}
	return out
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
