package core

import (
	"errors"
	"fmt"

	"photon/internal/arbiter"
	"photon/internal/fault"
	"photon/internal/flow"
	"photon/internal/ring"
	"photon/internal/router"
	"photon/internal/sim"
)

// Network is one cycle-accurate instance of the 64-node MWSR optical ring
// under a single scheme. It simulates all Nodes channels together because
// sender-side queues couple them: a node's per-core output queue may hold
// packets for many destinations, and a pending (un-ACKed) head blocks
// followers bound elsewhere — the head-of-line effect the paper's setaside
// and circulation techniques exist to cure.
//
// Architecture per node (paper Fig. 7): CoresPerNode output queues (one per
// attached core) feed a single E/O launch port through the router's SA
// stage, so a node launches at most one packet per cycle; each queue owns
// its private setaside slots; the node's own channel ends in an input
// buffer of BufferDepth slots drained at EjectRate packets per cycle.
//
// Cycle phase order (the determinism contract documented in DESIGN.md):
//
//  1. optical arrivals at home nodes (accept / drop+NACK / reinject)
//  2. handshake pulses reach senders (ACK frees, NACK arms retransmit)
//     2b. retransmit timers expire (recovery only; after pulse delivery so
//     an answer arriving exactly at the deadline wins over the timeout)
//  3. ejection from home buffers to cores (frees credits)
//  4. token motion and capture (watchdog regeneration first)
//  5. launches onto data channels
//  6. electrical injection pipeline delivers new packets to output queues
//  7. invariant checks
//
// Identical Config (including Seed) and identical injection sequences give
// bit-identical results.
type Network struct {
	cfg    Config
	geom   *ring.Geometry
	window sim.Window
	now    int64
	nextID uint64

	nodes []*nodeState
	chans []*channel

	grants []grant

	stats *Stats
	rng   *sim.RNG

	// OnDeliver, when set, is invoked for every delivered packet in the
	// cycle it reaches its destination core — the hook closed-loop
	// workloads (the CMP model) use to complete transactions.
	OnDeliver func(*router.Packet)

	// onEvent is the protocol observer installed with Trace.
	onEvent func(Event)

	injPipe *sim.DelayLine[*router.Packet]

	// Fault injection and recovery. faults is nil on fault-free runs —
	// every hook in the hot path is gated on that nil check, so the
	// fault-free cycle costs nothing extra.
	faults     *fault.Injector
	recoveryOn bool
	retxBase   int64 // sender timeout base (cycles)
	backoffCap int   // max backoff shift
	watchdog   int64 // global-token silence window (cycles)
	onTimeout  func(*router.Packet)

	// orphans counts logical packets whose only live copy was destroyed
	// (NACK-dropped awaiting retransmit, or fault-discarded with a sender
	// retention copy); dupsInFlight counts extra copies of already-accepted
	// packets launched by timeout recovery. Both keep Backlog exact under
	// faults; on fault-free runs orphans == Drops - Retransmits and
	// dupsInFlight == 0.
	orphans      int
	dupsInFlight int
}

// nodeState is the electrical side of one ring node.
type nodeState struct {
	id     int
	queues []*queueState
	// wantCount[h] is how many of this node's queues currently want
	// channel h (their next-ready packet is bound for home h).
	wantCount []int16
	// granted marks that the node's launch port is already claimed this
	// cycle (by a distributed token capture).
	granted bool
	// holding is the home id of the global token this node holds, or -1.
	holding int
	// rr rotates queue service order (the SA stage's round-robin).
	rr int
}

// queueState is one per-core output queue with its send-policy state.
type queueState struct {
	out  *router.OutPort
	want int // home id of the channel this queue's next-ready packet wants, or -1
}

// channel is the optical machinery of one home node.
type channel struct {
	home int
	data *ring.DataChannel[*router.Packet]
	hs   *ring.HandshakeChannel // handshake schemes only
	glob *arbiter.GlobalToken   // global arbitration only
	slot *arbiter.SlotEmitter   // distributed arbitration only
	rc   *flow.RelayedCredits   // Token Channel only
	sc   *flow.SlotCredits      // Token Slot only
	in   *router.InPort
	fair *arbiter.Fairness

	// suppress blocks this cycle's token emission after a reinjection
	// (DHS with circulation: the home "virtually consumes" the token).
	suppress bool
	// holdCount counts consecutive sends under the current global grab.
	holdCount int

	// Fault-injection state. lastActivity is the last cycle the home node
	// observed arbitration life on a global channel (a token pass or a
	// data arrival) — the watchdog's silence reference. regen (Token Slot
	// under fault injection only) schedules the reclaim of a credit that
	// left home aboard a token that died, at the token's nominal expiry
	// window. faultDiscards counts data flits destroyed on arrival;
	// dupsDiscarded counts recognised duplicate arrivals.
	lastActivity  int64
	regen         *sim.DelayLine[int64]
	faultDiscards int64
	dupsDiscarded int64

	capture arbiter.CaptureFunc
	gate    func() bool
	onHome  func()
	expire  func()
}

type grant struct {
	node *nodeState
	ch   *channel
}

// NewNetwork builds a network from cfg, measuring over window.
func NewNetwork(cfg Config, window sim.Window) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom, err := ring.NewGeometry(cfg.Nodes, cfg.RoundTrip)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:     cfg,
		geom:    geom,
		window:  window,
		stats:   NewStats(window, cfg.Nodes, cfg.Cores()),
		rng:     sim.NewRNG(cfg.Seed),
		injPipe: sim.NewDelayLine[*router.Packet](cfg.RouterPipeline + 2),
	}
	if cfg.Fault.Enabled {
		fcfg := cfg.Fault
		if fcfg.Seed == 0 {
			fcfg.Seed = sim.DeriveSeed(cfg.Seed, faultSeedStream)
		}
		n.faults = fault.NewInjector(fcfg, cfg.Nodes)
	}
	if cfg.Recovery.Enabled {
		n.recoveryOn = true
		n.retxBase = cfg.retxTimeoutBase()
		n.backoffCap = cfg.retxBackoffCap()
		n.watchdog = cfg.watchdogWindow()
		n.onTimeout = func(pkt *router.Packet) {
			n.stats.TimeoutRetransmits++
			n.emit(EvTimeout, pkt)
		}
	}

	n.nodes = make([]*nodeState, cfg.Nodes)
	for i := range n.nodes {
		nd := &nodeState{
			id:        i,
			queues:    make([]*queueState, cfg.CoresPerNode),
			wantCount: make([]int16, cfg.Nodes),
			holding:   -1,
		}
		for q := range nd.queues {
			nd.queues[q] = &queueState{
				out:  router.NewOutPort(cfg.Scheme.SendPolicy(), cfg.QueueCap, cfg.SetasideSize),
				want: -1,
			}
		}
		n.nodes[i] = nd
	}

	n.chans = make([]*channel, cfg.Nodes)
	for h := range n.chans {
		c := &channel{
			home: h,
			data: ring.NewDataChannel[*router.Packet](geom),
			in:   router.NewInPort(cfg.BufferDepth, cfg.EjectRate, cfg.EjectStallProb, n.rng.Fork(uint64(h)+1000)),
			fair: arbiter.NewFairness(cfg.Nodes, cfg.Fairness),
		}
		switch {
		case cfg.Scheme.Global():
			c.glob = arbiter.NewGlobalToken(cfg.Nodes, geom.NodesPerCycle())
		default:
			c.slot = arbiter.NewSlotEmitter(cfg.Nodes, cfg.RoundTrip, geom.NodesPerCycle())
		}
		switch cfg.Scheme {
		case TokenChannel:
			c.rc = flow.NewRelayedCredits(cfg.BufferDepth)
		case TokenSlot:
			c.sc = flow.NewSlotCredits(cfg.BufferDepth)
		}
		if cfg.Scheme.Handshake() {
			c.hs = ring.NewHandshakeChannel(geom)
		}
		if n.faults != nil {
			if c.hs != nil {
				c.hs.SetLoss(n.pulseLoss(c))
			}
			if c.sc != nil {
				c.regen = sim.NewDelayLine[int64](cfg.RoundTrip + 2)
			}
		}
		n.chans[h] = c
		n.wireChannel(c)
	}
	return n, nil
}

// faultSeedStream is the DeriveSeed stream id reserved for the fault
// injector when Fault.Seed is left 0 (derive from the network seed).
const faultSeedStream = 0xFA017

// faultAux encodes a packet-less fault event's (class, element) pair into
// the digest aux word.
func faultAux(cl fault.Class, element int) uint64 {
	return uint64(cl)<<32 | uint64(uint32(element))
}

// pulseLoss builds channel c's handshake-pulse fault filter.
func (n *Network) pulseLoss(c *channel) ring.LossFunc {
	return func(now int64, a ring.Ack) bool {
		if !n.faults.KillPulse(c.home, now) {
			return false
		}
		n.stats.FaultsInjected++
		if a.Positive {
			n.stats.AcksLost++
		} else {
			n.stats.NacksLost++
		}
		n.emitMeta(EvFault, faultAux(fault.PulseLoss, c.home))
		return true
	}
}

// wireChannel pre-builds the per-channel closures so the hot loop performs
// no per-cycle allocation.
func (n *Network) wireChannel(c *channel) {
	c.capture = func(off int) bool {
		id := n.geom.NodeAt(c.home, off)
		nd := n.nodes[id]
		if n.faults != nil && n.faults.Stalled(id) {
			// Resonator drift: the node's rings are off-channel and cannot
			// divert the token, however badly it wants one.
			return false
		}
		if nd.wantCount[c.home] == 0 {
			return false
		}
		if nd.granted || nd.holding >= 0 {
			return false
		}
		if c.rc != nil && c.rc.OnToken() == 0 {
			// Token Channel: an empty token cannot authorise a send.
			return false
		}
		if !c.fair.Allow(id) {
			return false
		}
		c.fair.OnCapture(id)
		if c.glob != nil {
			nd.holding = c.home
			c.holdCount = 0
			return true
		}
		nd.granted = true
		if c.sc != nil {
			c.sc.Capture()
		}
		n.grants = append(n.grants, grant{node: nd, ch: c})
		return true
	}

	switch {
	case c.sc != nil: // Token Slot: emission gated on credits.
		c.gate = func() bool {
			if !c.sc.CanEmit() {
				return false
			}
			c.sc.Emit()
			if n.faults != nil && n.faults.KillToken(c.home, n.now) {
				// The token dies leaving home with a credit aboard; the
				// credit is stranded until the watchdog reclaims it at the
				// token's nominal expiry window (recovery enabled), or
				// forever (recovery disabled — a real availability loss).
				n.tokenFault(c)
				return false
			}
			return true
		}
		c.expire = c.sc.Expire
	case n.cfg.Scheme.Circulating(): // DHS-cir: reinjection suppresses.
		c.gate = func() bool {
			if c.suppress {
				c.suppress = false
				return false
			}
			if n.faults != nil && n.faults.KillToken(c.home, n.now) {
				n.tokenFault(c)
				return false
			}
			return true
		}
	default: // DHS: a token every cycle, unconditionally.
		c.gate = func() bool {
			if n.faults != nil && n.faults.KillToken(c.home, n.now) {
				n.tokenFault(c)
				return false
			}
			return true
		}
	}

	if c.rc != nil {
		c.onHome = c.rc.PassHome
	}
}

// tokenFault accounts a distributed-token (slot) death and, with recovery
// on, schedules the stranded credit's reclaim for the cycle the token
// would nominally have expired back at home (age R+1) — the earliest
// moment the home node can *know* the token is not coming back.
func (n *Network) tokenFault(c *channel) {
	n.stats.FaultsInjected++
	n.emitMeta(EvFault, faultAux(fault.TokenLoss, c.home))
	if c.sc != nil && n.recoveryOn && c.regen != nil {
		c.regen.Schedule(n.now+int64(n.cfg.RoundTrip)+1, n.now)
	}
}

// Geometry exposes the loop timing model (read-only).
func (n *Network) Geometry() *ring.Geometry { return n.geom }

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Window returns the measurement window.
func (n *Network) Window() sim.Window { return n.window }

// Stats exposes the live statistics collector.
func (n *Network) Stats() *Stats { return n.stats }

// Inject hands a packet from srcCore (a global core id) to its node's
// router at the current cycle; it surfaces in an output queue after the
// electrical pipeline delay. Destination is a node id (a cache bank's or
// core cluster's network attachment). Packets whose destination is the
// source's own node never enter the optical ring: they are delivered
// locally after the router latency, as in the paper's concentrated S-NUCA
// layout.
func (n *Network) Inject(srcCore, dstNode int, class router.Class, tag uint64) *router.Packet {
	if srcCore < 0 || srcCore >= n.cfg.Cores() {
		panic(fmt.Sprintf("core: Inject from invalid core %d", srcCore))
	}
	if dstNode < 0 || dstNode >= n.cfg.Nodes {
		panic(fmt.Sprintf("core: Inject to invalid node %d", dstNode))
	}
	srcNode := srcCore / n.cfg.CoresPerNode
	pkt := router.NewPacket(n.nextID, srcNode, dstNode, n.now)
	n.nextID++
	pkt.Class = class
	pkt.Tag = tag | uint64(srcCore)<<40 // keep the core for local queue routing
	n.stats.onInjected(pkt)
	n.emit(EvInject, pkt)
	n.injPipe.Schedule(n.now+int64(n.cfg.RouterPipeline), pkt)
	return pkt
}

// Digest returns the current value of the run's protocol-event
// fingerprint (finalised into Result.Digest at the end of the run).
func (n *Network) Digest() uint64 { return n.stats.digest.value() }

// queueOf returns the per-core output queue a packet belongs to.
func (n *Network) queueOf(pkt *router.Packet) (*nodeState, *queueState) {
	nd := n.nodes[pkt.Src]
	core := int(pkt.Tag>>40) % n.cfg.CoresPerNode
	return nd, nd.queues[core]
}

// Step advances the network by one cycle, executing the seven phases.
func (n *Network) Step() {
	now := n.now
	if n.faults != nil {
		n.faults.BeginCycle(now, func(node int) {
			n.stats.FaultsInjected++
			n.emitMeta(EvFault, faultAux(fault.NodeStall, node))
		})
	}
	for _, c := range n.chans {
		n.phaseArrive(c, now)
	}
	for _, c := range n.chans {
		n.phaseHandshake(c, now)
	}
	if n.recoveryOn {
		n.phaseTimeouts(now)
	}
	for _, c := range n.chans {
		n.phaseEject(c, now)
	}
	// Rotate channel order so cross-channel capture priority (an artefact
	// of sequential simulation, not physics) carries no systematic bias.
	start := int(now) % len(n.chans)
	for i := range n.chans {
		n.phaseTokens(n.chans[(start+i)%len(n.chans)], now)
	}
	n.phaseLaunch(now)
	n.phasePipeline(now)
	if n.cfg.CheckInvariants {
		n.checkInvariants()
	}
	n.now++
}

// RunCycles advances the network by k cycles.
func (n *Network) RunCycles(k int64) {
	for i := int64(0); i < k; i++ {
		n.Step()
	}
}

// phaseArrive processes the at-most-one packet landing at channel c's home.
func (n *Network) phaseArrive(c *channel, now int64) {
	pkt, ok := c.data.Arrival(now)
	if !ok {
		return
	}
	if c.glob != nil {
		// Any arrival proves the arbitration loop is alive (someone held
		// the token recently) — watchdog activity.
		c.lastActivity = now
	}
	if n.faults != nil && n.faults.KillData(c.home, now) {
		n.dataFault(c, pkt)
		return
	}
	switch {
	case c.rc != nil:
		must(c.rc.Arrive())
		if !c.in.Accept(pkt) {
			panic("core: credit-guaranteed arrival rejected by home buffer (token channel)")
		}
		pkt.AcceptedAt = now
		n.emit(EvAccept, pkt)
	case c.sc != nil:
		must(c.sc.Arrive())
		if !c.in.Accept(pkt) {
			panic("core: credit-guaranteed arrival rejected by home buffer (token slot)")
		}
		pkt.AcceptedAt = now
		n.emit(EvAccept, pkt)
	case n.cfg.Scheme.Circulating():
		if c.in.Accept(pkt) {
			pkt.AcceptedAt = now
			n.emit(EvAccept, pkt)
		} else {
			pkt.Circulations++
			n.stats.Circulations++
			if _, err := c.data.Reinject(now, pkt); err != nil {
				panic(err)
			}
			c.suppress = true
			n.emit(EvReinject, pkt)
		}
	default: // handshake with ACK/NACK
		off := n.geom.Offset(c.home, pkt.Src)
		if pkt.AcceptedAt >= 0 {
			// Duplicate of an already-accepted packet: its ACK was lost and
			// the sender's timeout re-sent a copy. The home's dedup registry
			// recognises the id, discards the copy, and repeats the ACK.
			n.dupsInFlight--
			if n.dupsInFlight < 0 {
				panic("core: negative duplicate-in-flight count")
			}
			c.dupsDiscarded++
			n.stats.DupsDiscarded++
			n.emit(EvDupDrop, pkt)
			c.hs.Send(now, off, ring.Ack{To: pkt.Src, PacketID: pkt.ID, Positive: true})
			return
		}
		accepted := c.in.Accept(pkt)
		if accepted {
			pkt.AcceptedAt = now
			n.emit(EvAccept, pkt)
		} else {
			n.stats.Drops++
			n.orphans++
			n.emit(EvDrop, pkt)
		}
		c.hs.Send(now, off, ring.Ack{To: pkt.Src, PacketID: pkt.ID, Positive: accepted})
	}
}

// dataFault applies a data-loss fault to an arriving flit: the home cannot
// read it (header included), so it is discarded with no handshake answer.
// What happens to the *packet* depends on who still remembers it.
func (n *Network) dataFault(c *channel, pkt *router.Packet) {
	n.stats.FaultsInjected++
	c.faultDiscards++
	n.emit(EvFault, pkt)
	// Credit schemes reserved a buffer slot for this arrival; the slot is
	// claimed and immediately freed so the credit ledger stays exact (the
	// credit travels home through the usual reimbursement path).
	if c.rc != nil {
		must(c.rc.Arrive())
		must(c.rc.Eject())
	}
	if c.sc != nil {
		must(c.sc.Arrive())
		must(c.sc.Eject())
	}
	switch {
	case pkt.AcceptedAt >= 0:
		// A duplicate copy died; the real packet is safe downstream.
		n.dupsInFlight--
		if n.dupsInFlight < 0 {
			panic("core: negative duplicate-in-flight count")
		}
	case n.cfg.Scheme.SendPolicy() == router.FireAndForget:
		// No sender retention and no receiver copy: the packet is gone.
		// Credits and circulation cannot recover from data loss — the
		// paper-side argument for handshake robustness, made measurable.
		n.stats.Lost++
	default:
		// The sender still holds a retention copy; its retransmit timeout
		// will re-send (recovery on) or strand it visibly (recovery off).
		n.orphans++
	}
}

// phaseTimeouts expires armed retransmit timers (recovery only). It runs
// after phaseHandshake by contract: an answer delivered in this very cycle
// has already resolved its entry, so a timer never fires against an
// answer that actually arrived — including one arriving exactly at the
// deadline cycle.
func (n *Network) phaseTimeouts(now int64) {
	for _, nd := range n.nodes {
		for _, q := range nd.queues {
			if q.out.Unacked() == 0 {
				continue
			}
			if q.out.ExpireTimeouts(now, n.onTimeout) > 0 {
				n.updateQueueWant(nd, q)
			}
		}
	}
}

// phaseHandshake applies ACK/NACK pulses reaching senders this cycle.
func (n *Network) phaseHandshake(c *channel, now int64) {
	if c.hs == nil {
		return
	}
	for _, ack := range c.hs.Deliver(now) {
		nd := n.nodes[ack.To]
		var hit bool
		for _, q := range nd.queues {
			var err error
			var pkt *router.Packet
			if ack.Positive {
				pkt, err = q.out.Ack(ack.PacketID)
			} else {
				pkt, err = q.out.Nack(ack.PacketID)
			}
			if err == nil {
				hit = true
				if ack.Positive {
					n.emit(EvAck, pkt)
				} else {
					n.emit(EvNack, pkt)
				}
				n.updateQueueWant(nd, q)
				break
			}
		}
		if !hit {
			panic(fmt.Sprintf("core: handshake for unknown packet %d at node %d", ack.PacketID, ack.To))
		}
	}
}

// phaseEject drains the home buffer to the cores and frees credits.
func (n *Network) phaseEject(c *channel, now int64) {
	for _, pkt := range c.in.Eject() {
		if c.rc != nil {
			must(c.rc.Eject())
		}
		if c.sc != nil {
			must(c.sc.Eject())
		}
		pkt.DeliveredAt = now + int64(n.cfg.EjectLatency)
		n.stats.onDelivered(pkt, false)
		n.emit(EvDeliver, pkt)
		if n.OnDeliver != nil {
			n.OnDeliver(pkt)
		}
	}
}

// phaseTokens advances channel c's arbitration by one cycle.
func (n *Network) phaseTokens(c *channel, now int64) {
	if c.fair.BeginCycle(now) {
		// A new fairness window opened: re-register the still-backlogged
		// requesters so sustained contention is counted, not just newly
		// arriving heads.
		for id, nd := range n.nodes {
			if nd.wantCount[c.home] > 0 {
				c.fair.OnRequest(id)
			}
		}
	}
	if c.glob != nil {
		if n.faults != nil && !c.glob.Lost() {
			if _, held := c.glob.Held(); !held && n.faults.KillToken(c.home, now) {
				// The free circulating token dies in the waveguide.
				c.glob.Invalidate()
				n.stats.FaultsInjected++
				n.emitMeta(EvFault, faultAux(fault.TokenLoss, c.home))
			}
		}
		if n.recoveryOn && now-c.lastActivity > n.watchdog {
			// Watchdog: the home node has seen neither a token pass nor an
			// arrival for a full silence window — re-emit the token. The
			// arbiter's duplicate-token guard refuses if the token is in
			// fact alive (e.g. parked at a holder the home cannot observe),
			// so a misjudged firing is harmless.
			if c.glob.Regenerate() {
				n.stats.TokensRegenerated++
				n.emitMeta(EvTokenRegen, uint64(c.home))
			}
			c.lastActivity = now // re-arm the window either way
		}
		if _, held := c.glob.Held(); !held {
			before := c.glob.HomePasses()
			c.glob.Advance(c.capture, c.onHome)
			if c.glob.HomePasses() != before {
				c.lastActivity = now
			}
		}
		return
	}
	if c.regen != nil {
		// Credits stranded aboard dead slot tokens come back at the
		// token's nominal expiry window.
		for range c.regen.PopDue(now) {
			c.expire()
			n.stats.TokensRegenerated++
			n.emitMeta(EvTokenRegen, uint64(c.home))
		}
	}
	c.slot.Advance(now, c.gate, c.capture, c.expire)
}

// phaseLaunch fires this cycle's granted and held sends.
func (n *Network) phaseLaunch(now int64) {
	// Distributed-token grants: exactly one packet per grant.
	for _, g := range n.grants {
		nd, q, pkt := n.pickQueue(g.node, g.ch.home)
		if pkt == nil {
			panic("core: token grant with no eligible packet")
		}
		n.launch(nd, q, g.ch, pkt)
		g.node.granted = false
	}
	n.grants = n.grants[:0]

	// Global token holders: one packet per cycle while eligible, then
	// release back onto the loop.
	for _, c := range n.chans {
		if c.glob == nil {
			continue
		}
		off, held := c.glob.Held()
		if !held {
			continue
		}
		nd := n.nodes[n.geom.NodeAt(c.home, off)]
		if n.faults != nil && n.faults.Stalled(nd.id) {
			// Resonator drift hit the holder mid-grab: it cannot modulate,
			// so it releases the token rather than sit on it silently.
			c.glob.Release()
			nd.holding = -1
			continue
		}
		canHold := n.cfg.MaxTokenHold == 0 || c.holdCount < n.cfg.MaxTokenHold
		var (
			q   *queueState
			pkt *router.Packet
		)
		if canHold {
			_, q, pkt = n.pickQueue(nd, c.home)
		}
		if pkt != nil && (c.rc == nil || c.rc.Spend()) {
			n.launch(nd, q, c, pkt)
			c.holdCount++
			// Wave-pipelined release: the re-emitted token rides just
			// behind the data flit, so a holder with nothing more to send
			// frees the token in the send cycle rather than one cycle
			// later — without this, global arbitration caps at half the
			// channel's wave-pipelined capacity.
			keep := nd.wantCount[c.home] > 0 &&
				(n.cfg.MaxTokenHold == 0 || c.holdCount < n.cfg.MaxTokenHold) &&
				(c.rc == nil || c.rc.OnToken() > 0)
			if !keep {
				c.glob.Release()
				nd.holding = -1
			}
		} else {
			c.glob.Release()
			nd.holding = -1
		}
	}
}

// pickQueue selects, round-robin from the node's SA pointer, a queue whose
// next-ready packet is bound for home h.
func (n *Network) pickQueue(nd *nodeState, h int) (*nodeState, *queueState, *router.Packet) {
	k := len(nd.queues)
	for i := 0; i < k; i++ {
		q := nd.queues[(nd.rr+i)%k]
		if q.want != h {
			continue
		}
		pkt := q.out.NextReady()
		if pkt == nil || pkt.Dst != h {
			panic("core: queue want out of sync with its ready packet")
		}
		nd.rr = (nd.rr + i + 1) % k
		return nd, q, pkt
	}
	return nd, nil, nil
}

// launch sends pkt from node nd's queue q onto channel c.
func (n *Network) launch(nd *nodeState, q *queueState, c *channel, pkt *router.Packet) {
	retx := pkt.FirstSentAt >= 0
	off := n.geom.Offset(c.home, nd.id)
	q.out.MarkSent(pkt, n.now)
	var err error
	if c.glob != nil {
		_, err = c.data.LaunchStream(n.now, off, pkt)
	} else {
		_, err = c.data.Launch(n.now, off, pkt)
	}
	if err != nil {
		panic(err)
	}
	n.stats.Launches++
	if retx {
		n.stats.Retransmits++
		if pkt.AcceptedAt >= 0 {
			// Timeout re-send of a packet the home already accepted (the
			// ACK died): this copy is a duplicate the home will discard.
			n.dupsInFlight++
		} else {
			n.orphans--
			if n.orphans < 0 {
				panic("core: negative orphan count")
			}
		}
	}
	if n.recoveryOn && q.out.Policy() != router.FireAndForget {
		q.out.Arm(pkt, n.now, n.retxBase, n.backoffCap)
	}
	n.emit(EvLaunch, pkt)
	n.updateQueueWant(nd, q)
}

// phasePipeline moves packets out of the electrical injection pipeline into
// their output queues (or delivers node-local traffic directly).
func (n *Network) phasePipeline(now int64) {
	for _, pkt := range n.injPipe.PopDue(now) {
		srcNode := pkt.Src
		if pkt.Dst == srcNode {
			pkt.DeliveredAt = now + int64(n.cfg.EjectLatency)
			n.stats.onDelivered(pkt, true)
			n.emit(EvDeliver, pkt)
			if n.OnDeliver != nil {
				n.OnDeliver(pkt)
			}
			continue
		}
		nd, q := n.queueOf(pkt)
		if !q.out.Enqueue(pkt) {
			n.stats.QueueRejected++
			continue
		}
		pkt.EnqueuedAt = now
		n.emit(EvEnqueue, pkt)
		n.updateQueueWant(nd, q)
	}
}

// updateQueueWant re-derives which channel queue q requests and maintains
// the node-level want counts the capture callbacks read.
func (n *Network) updateQueueWant(nd *nodeState, q *queueState) {
	want := -1
	if pkt := q.out.NextReady(); pkt != nil {
		want = pkt.Dst
		if pkt.ReadyAt < 0 {
			pkt.ReadyAt = n.now
		}
	}
	if want == q.want {
		return
	}
	if q.want >= 0 {
		nd.wantCount[q.want]--
		if nd.wantCount[q.want] < 0 {
			panic("core: negative want count")
		}
	}
	if want >= 0 {
		if nd.wantCount[want] == 0 {
			n.chans[want].fair.OnRequest(nd.id)
		}
		nd.wantCount[want]++
	}
	q.want = want
}

// checkInvariants asserts the credit-conservation and channel-occupancy
// invariants every cycle.
func (n *Network) checkInvariants() {
	maxFlight := n.cfg.RoundTrip + 2
	for _, c := range n.chans {
		if c.rc != nil {
			must(c.rc.Invariant())
		}
		if c.sc != nil {
			must(c.sc.Invariant())
		}
		if f := c.data.InFlight(); f > maxFlight {
			panic(fmt.Sprintf("core: channel %d has %d flits in flight (max %d)", c.home, f, maxFlight))
		}
	}
}

// Backlog reports the exact number of injected-but-undelivered packets
// the network currently holds, locating each packet exactly once: in an
// injection pipeline, in an output queue, on a waveguide, in a home input
// buffer, or orphaned — its only live copy destroyed (NACK-dropped with
// the retransmission still owed, or fault-discarded with the sender's
// retention copy awaiting its timeout). Duplicate copies launched by
// timeout recovery are subtracted from the in-flight count so each packet
// is still counted once; on fault-free runs orphans == Drops - Retransmits
// and the duplicate count is zero, reducing to the seed formula.
// Sent-but-unACKed retention copies are deliberately *not* counted — the
// real packet is already located downstream (or delivered, with its ACK
// still in flight) — so the conservation identity
// Injected == Delivered + Backlog + QueueRejected + Lost holds at every
// cycle; internal/check audits it.
func (n *Network) Backlog() int {
	total := n.injPipe.Len() + n.orphans - n.dupsInFlight
	for _, nd := range n.nodes {
		for _, q := range nd.queues {
			total += q.out.QueueLen()
		}
	}
	for _, c := range n.chans {
		total += c.data.InFlight() + c.in.Occupied()
	}
	return total
}

// Outstanding reports everything the network still *owns*, retention
// copies included: queued, sent-but-unACKed, in flight, buffered at homes,
// or in injection pipelines. It over-counts packets relative to Backlog
// (a HoldHead/Setaside sender keeps a copy while the packet flies) but is
// the correct quiescence predicate: zero means no node holds any protocol
// state, so Drain stops on it.
func (n *Network) Outstanding() int {
	total := n.injPipe.Len()
	for _, nd := range n.nodes {
		for _, q := range nd.queues {
			total += q.out.Backlog()
		}
	}
	for _, c := range n.chans {
		total += c.data.InFlight() + c.in.Occupied()
	}
	return total
}

// ErrDrainStalled tags every *DrainError for errors.Is, so callers can
// test "did the drain hit its cap" without unpacking the details.
var ErrDrainStalled = errors.New("core: drain stalled before quiescence")

// DrainError reports a Drain that hit its quiescence cap: after Cycles
// drain cycles the network still owned Outstanding packets. Before this
// error existed a stranded packet (a fault with recovery disabled, or a
// protocol hole) was indistinguishable from a clean drain that merely
// returned late — a hang and a pass looked the same.
type DrainError struct {
	Cycles      int64
	Outstanding int
}

func (e *DrainError) Error() string {
	return fmt.Sprintf("core: network not quiescent after %d drain cycles: %d packets still outstanding",
		e.Cycles, e.Outstanding)
}

// Is makes errors.Is(err, ErrDrainStalled) match any *DrainError.
func (e *DrainError) Is(target error) bool { return target == ErrDrainStalled }

// Drain keeps stepping (no new injections) until the network is quiescent
// or limit cycles elapse. It returns the remaining outstanding count,
// together with a *DrainError when that count is non-zero.
func (n *Network) Drain(limit int64) (int, error) {
	for i := int64(0); i < limit && n.Outstanding() > 0; i++ {
		n.Step()
	}
	if left := n.Outstanding(); left > 0 {
		return left, &DrainError{Cycles: limit, Outstanding: left}
	}
	return 0, nil
}

// Result finalises and returns the run's measurements.
func (n *Network) Result() Result {
	n.stats.TokensYielded = 0
	for _, c := range n.chans {
		n.stats.TokensYielded += c.fair.Yields()
	}
	return n.stats.Finish(n.cfg.Scheme)
}

// ChannelDiagnostics summarises one channel's low-level counters (tests and
// the verbose CLI mode use it).
type ChannelDiagnostics struct {
	Home          int
	Launches      int64
	Reinjections  int64
	PeakInFlight  int
	PeakInputBuf  int
	TokenCaptures int64
	TokensEmitted int64
	TokensExpired int64
	AcksSent      int64
	NacksSent     int64
	FairYields    int64
}

// Diagnostics returns per-channel low-level counters.
func (n *Network) Diagnostics() []ChannelDiagnostics {
	out := make([]ChannelDiagnostics, len(n.chans))
	for i, c := range n.chans {
		d := ChannelDiagnostics{
			Home:         c.home,
			Launches:     c.data.Launches(),
			Reinjections: c.data.Reinjections(),
			PeakInFlight: c.data.PeakInFlight(),
			PeakInputBuf: c.in.Peak(),
			FairYields:   c.fair.Yields(),
		}
		if c.glob != nil {
			d.TokenCaptures = c.glob.Captures()
		}
		if c.slot != nil {
			d.TokensEmitted, d.TokenCaptures, d.TokensExpired = c.slot.Stats()
		}
		if c.hs != nil {
			d.AcksSent, d.NacksSent = c.hs.Sent()
		}
		out[i] = d
	}
	return out
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
