package core

import (
	"fmt"

	"photon/internal/arbiter"
	"photon/internal/flow"
	"photon/internal/ring"
	"photon/internal/router"
	"photon/internal/sim"
)

// Network is one cycle-accurate instance of the 64-node MWSR optical ring
// under a single scheme. It simulates all Nodes channels together because
// sender-side queues couple them: a node's per-core output queue may hold
// packets for many destinations, and a pending (un-ACKed) head blocks
// followers bound elsewhere — the head-of-line effect the paper's setaside
// and circulation techniques exist to cure.
//
// Architecture per node (paper Fig. 7): CoresPerNode output queues (one per
// attached core) feed a single E/O launch port through the router's SA
// stage, so a node launches at most one packet per cycle; each queue owns
// its private setaside slots; the node's own channel ends in an input
// buffer of BufferDepth slots drained at EjectRate packets per cycle.
//
// Cycle phase order (the determinism contract documented in DESIGN.md):
//
//  1. optical arrivals at home nodes (accept / drop+NACK / reinject)
//  2. handshake pulses reach senders (ACK frees, NACK arms retransmit)
//  3. ejection from home buffers to cores (frees credits)
//  4. token motion and capture
//  5. launches onto data channels
//  6. electrical injection pipeline delivers new packets to output queues
//  7. invariant checks
//
// Identical Config (including Seed) and identical injection sequences give
// bit-identical results.
type Network struct {
	cfg    Config
	geom   *ring.Geometry
	window sim.Window
	now    int64
	nextID uint64

	nodes []*nodeState
	chans []*channel

	grants []grant

	stats *Stats
	rng   *sim.RNG

	// OnDeliver, when set, is invoked for every delivered packet in the
	// cycle it reaches its destination core — the hook closed-loop
	// workloads (the CMP model) use to complete transactions.
	OnDeliver func(*router.Packet)

	// onEvent is the protocol observer installed with Trace.
	onEvent func(Event)

	injPipe *sim.DelayLine[*router.Packet]
}

// nodeState is the electrical side of one ring node.
type nodeState struct {
	id     int
	queues []*queueState
	// wantCount[h] is how many of this node's queues currently want
	// channel h (their next-ready packet is bound for home h).
	wantCount []int16
	// granted marks that the node's launch port is already claimed this
	// cycle (by a distributed token capture).
	granted bool
	// holding is the home id of the global token this node holds, or -1.
	holding int
	// rr rotates queue service order (the SA stage's round-robin).
	rr int
}

// queueState is one per-core output queue with its send-policy state.
type queueState struct {
	out  *router.OutPort
	want int // home id of the channel this queue's next-ready packet wants, or -1
}

// channel is the optical machinery of one home node.
type channel struct {
	home int
	data *ring.DataChannel[*router.Packet]
	hs   *ring.HandshakeChannel // handshake schemes only
	glob *arbiter.GlobalToken   // global arbitration only
	slot *arbiter.SlotEmitter   // distributed arbitration only
	rc   *flow.RelayedCredits   // Token Channel only
	sc   *flow.SlotCredits      // Token Slot only
	in   *router.InPort
	fair *arbiter.Fairness

	// suppress blocks this cycle's token emission after a reinjection
	// (DHS with circulation: the home "virtually consumes" the token).
	suppress bool
	// holdCount counts consecutive sends under the current global grab.
	holdCount int

	capture arbiter.CaptureFunc
	gate    func() bool
	onHome  func()
	expire  func()
}

type grant struct {
	node *nodeState
	ch   *channel
}

// NewNetwork builds a network from cfg, measuring over window.
func NewNetwork(cfg Config, window sim.Window) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom, err := ring.NewGeometry(cfg.Nodes, cfg.RoundTrip)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:     cfg,
		geom:    geom,
		window:  window,
		stats:   NewStats(window, cfg.Nodes, cfg.Cores()),
		rng:     sim.NewRNG(cfg.Seed),
		injPipe: sim.NewDelayLine[*router.Packet](cfg.RouterPipeline + 2),
	}

	n.nodes = make([]*nodeState, cfg.Nodes)
	for i := range n.nodes {
		nd := &nodeState{
			id:        i,
			queues:    make([]*queueState, cfg.CoresPerNode),
			wantCount: make([]int16, cfg.Nodes),
			holding:   -1,
		}
		for q := range nd.queues {
			nd.queues[q] = &queueState{
				out:  router.NewOutPort(cfg.Scheme.SendPolicy(), cfg.QueueCap, cfg.SetasideSize),
				want: -1,
			}
		}
		n.nodes[i] = nd
	}

	n.chans = make([]*channel, cfg.Nodes)
	for h := range n.chans {
		c := &channel{
			home: h,
			data: ring.NewDataChannel[*router.Packet](geom),
			in:   router.NewInPort(cfg.BufferDepth, cfg.EjectRate, cfg.EjectStallProb, n.rng.Fork(uint64(h)+1000)),
			fair: arbiter.NewFairness(cfg.Nodes, cfg.Fairness),
		}
		switch {
		case cfg.Scheme.Global():
			c.glob = arbiter.NewGlobalToken(cfg.Nodes, geom.NodesPerCycle())
		default:
			c.slot = arbiter.NewSlotEmitter(cfg.Nodes, cfg.RoundTrip, geom.NodesPerCycle())
		}
		switch cfg.Scheme {
		case TokenChannel:
			c.rc = flow.NewRelayedCredits(cfg.BufferDepth)
		case TokenSlot:
			c.sc = flow.NewSlotCredits(cfg.BufferDepth)
		}
		if cfg.Scheme.Handshake() {
			c.hs = ring.NewHandshakeChannel(geom)
		}
		n.chans[h] = c
		n.wireChannel(c)
	}
	return n, nil
}

// wireChannel pre-builds the per-channel closures so the hot loop performs
// no per-cycle allocation.
func (n *Network) wireChannel(c *channel) {
	c.capture = func(off int) bool {
		id := n.geom.NodeAt(c.home, off)
		nd := n.nodes[id]
		if nd.wantCount[c.home] == 0 {
			return false
		}
		if nd.granted || nd.holding >= 0 {
			return false
		}
		if c.rc != nil && c.rc.OnToken() == 0 {
			// Token Channel: an empty token cannot authorise a send.
			return false
		}
		if !c.fair.Allow(id) {
			return false
		}
		c.fair.OnCapture(id)
		if c.glob != nil {
			nd.holding = c.home
			c.holdCount = 0
			return true
		}
		nd.granted = true
		if c.sc != nil {
			c.sc.Capture()
		}
		n.grants = append(n.grants, grant{node: nd, ch: c})
		return true
	}

	switch {
	case c.sc != nil: // Token Slot: emission gated on credits.
		c.gate = func() bool {
			if c.sc.CanEmit() {
				c.sc.Emit()
				return true
			}
			return false
		}
		c.expire = c.sc.Expire
	case n.cfg.Scheme.Circulating(): // DHS-cir: reinjection suppresses.
		c.gate = func() bool {
			if c.suppress {
				c.suppress = false
				return false
			}
			return true
		}
	default: // DHS: a token every cycle, unconditionally.
		c.gate = func() bool { return true }
	}

	if c.rc != nil {
		c.onHome = c.rc.PassHome
	}
}

// Geometry exposes the loop timing model (read-only).
func (n *Network) Geometry() *ring.Geometry { return n.geom }

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Window returns the measurement window.
func (n *Network) Window() sim.Window { return n.window }

// Stats exposes the live statistics collector.
func (n *Network) Stats() *Stats { return n.stats }

// Inject hands a packet from srcCore (a global core id) to its node's
// router at the current cycle; it surfaces in an output queue after the
// electrical pipeline delay. Destination is a node id (a cache bank's or
// core cluster's network attachment). Packets whose destination is the
// source's own node never enter the optical ring: they are delivered
// locally after the router latency, as in the paper's concentrated S-NUCA
// layout.
func (n *Network) Inject(srcCore, dstNode int, class router.Class, tag uint64) *router.Packet {
	if srcCore < 0 || srcCore >= n.cfg.Cores() {
		panic(fmt.Sprintf("core: Inject from invalid core %d", srcCore))
	}
	if dstNode < 0 || dstNode >= n.cfg.Nodes {
		panic(fmt.Sprintf("core: Inject to invalid node %d", dstNode))
	}
	srcNode := srcCore / n.cfg.CoresPerNode
	pkt := router.NewPacket(n.nextID, srcNode, dstNode, n.now)
	n.nextID++
	pkt.Class = class
	pkt.Tag = tag | uint64(srcCore)<<40 // keep the core for local queue routing
	n.stats.onInjected(pkt)
	n.emit(EvInject, pkt)
	n.injPipe.Schedule(n.now+int64(n.cfg.RouterPipeline), pkt)
	return pkt
}

// Digest returns the current value of the run's protocol-event
// fingerprint (finalised into Result.Digest at the end of the run).
func (n *Network) Digest() uint64 { return n.stats.digest.value() }

// queueOf returns the per-core output queue a packet belongs to.
func (n *Network) queueOf(pkt *router.Packet) (*nodeState, *queueState) {
	nd := n.nodes[pkt.Src]
	core := int(pkt.Tag>>40) % n.cfg.CoresPerNode
	return nd, nd.queues[core]
}

// Step advances the network by one cycle, executing the seven phases.
func (n *Network) Step() {
	now := n.now
	for _, c := range n.chans {
		n.phaseArrive(c, now)
	}
	for _, c := range n.chans {
		n.phaseHandshake(c, now)
	}
	for _, c := range n.chans {
		n.phaseEject(c, now)
	}
	// Rotate channel order so cross-channel capture priority (an artefact
	// of sequential simulation, not physics) carries no systematic bias.
	start := int(now) % len(n.chans)
	for i := range n.chans {
		n.phaseTokens(n.chans[(start+i)%len(n.chans)], now)
	}
	n.phaseLaunch(now)
	n.phasePipeline(now)
	if n.cfg.CheckInvariants {
		n.checkInvariants()
	}
	n.now++
}

// RunCycles advances the network by k cycles.
func (n *Network) RunCycles(k int64) {
	for i := int64(0); i < k; i++ {
		n.Step()
	}
}

// phaseArrive processes the at-most-one packet landing at channel c's home.
func (n *Network) phaseArrive(c *channel, now int64) {
	pkt, ok := c.data.Arrival(now)
	if !ok {
		return
	}
	switch {
	case c.rc != nil:
		must(c.rc.Arrive())
		if !c.in.Accept(pkt) {
			panic("core: credit-guaranteed arrival rejected by home buffer (token channel)")
		}
		n.emit(EvAccept, pkt)
	case c.sc != nil:
		must(c.sc.Arrive())
		if !c.in.Accept(pkt) {
			panic("core: credit-guaranteed arrival rejected by home buffer (token slot)")
		}
		n.emit(EvAccept, pkt)
	case n.cfg.Scheme.Circulating():
		if c.in.Accept(pkt) {
			n.emit(EvAccept, pkt)
		} else {
			pkt.Circulations++
			n.stats.Circulations++
			if _, err := c.data.Reinject(now, pkt); err != nil {
				panic(err)
			}
			c.suppress = true
			n.emit(EvReinject, pkt)
		}
	default: // handshake with ACK/NACK
		off := n.geom.Offset(c.home, pkt.Src)
		accepted := c.in.Accept(pkt)
		if accepted {
			n.emit(EvAccept, pkt)
		} else {
			n.stats.Drops++
			n.emit(EvDrop, pkt)
		}
		c.hs.Send(now, off, ring.Ack{To: pkt.Src, PacketID: pkt.ID, Positive: accepted})
	}
}

// phaseHandshake applies ACK/NACK pulses reaching senders this cycle.
func (n *Network) phaseHandshake(c *channel, now int64) {
	if c.hs == nil {
		return
	}
	for _, ack := range c.hs.Deliver(now) {
		nd := n.nodes[ack.To]
		var hit bool
		for _, q := range nd.queues {
			var err error
			var pkt *router.Packet
			if ack.Positive {
				pkt, err = q.out.Ack(ack.PacketID)
			} else {
				pkt, err = q.out.Nack(ack.PacketID)
			}
			if err == nil {
				hit = true
				if ack.Positive {
					n.emit(EvAck, pkt)
				} else {
					n.emit(EvNack, pkt)
				}
				n.updateQueueWant(nd, q)
				break
			}
		}
		if !hit {
			panic(fmt.Sprintf("core: handshake for unknown packet %d at node %d", ack.PacketID, ack.To))
		}
	}
}

// phaseEject drains the home buffer to the cores and frees credits.
func (n *Network) phaseEject(c *channel, now int64) {
	for _, pkt := range c.in.Eject() {
		if c.rc != nil {
			must(c.rc.Eject())
		}
		if c.sc != nil {
			must(c.sc.Eject())
		}
		pkt.DeliveredAt = now + int64(n.cfg.EjectLatency)
		n.stats.onDelivered(pkt, false)
		n.emit(EvDeliver, pkt)
		if n.OnDeliver != nil {
			n.OnDeliver(pkt)
		}
	}
}

// phaseTokens advances channel c's arbitration by one cycle.
func (n *Network) phaseTokens(c *channel, now int64) {
	if c.fair.BeginCycle(now) {
		// A new fairness window opened: re-register the still-backlogged
		// requesters so sustained contention is counted, not just newly
		// arriving heads.
		for id, nd := range n.nodes {
			if nd.wantCount[c.home] > 0 {
				c.fair.OnRequest(id)
			}
		}
	}
	if c.glob != nil {
		if _, held := c.glob.Held(); !held {
			c.glob.Advance(c.capture, c.onHome)
		}
		return
	}
	c.slot.Advance(now, c.gate, c.capture, c.expire)
}

// phaseLaunch fires this cycle's granted and held sends.
func (n *Network) phaseLaunch(now int64) {
	// Distributed-token grants: exactly one packet per grant.
	for _, g := range n.grants {
		nd, q, pkt := n.pickQueue(g.node, g.ch.home)
		if pkt == nil {
			panic("core: token grant with no eligible packet")
		}
		n.launch(nd, q, g.ch, pkt)
		g.node.granted = false
	}
	n.grants = n.grants[:0]

	// Global token holders: one packet per cycle while eligible, then
	// release back onto the loop.
	for _, c := range n.chans {
		if c.glob == nil {
			continue
		}
		off, held := c.glob.Held()
		if !held {
			continue
		}
		nd := n.nodes[n.geom.NodeAt(c.home, off)]
		canHold := n.cfg.MaxTokenHold == 0 || c.holdCount < n.cfg.MaxTokenHold
		var (
			q   *queueState
			pkt *router.Packet
		)
		if canHold {
			_, q, pkt = n.pickQueue(nd, c.home)
		}
		if pkt != nil && (c.rc == nil || c.rc.Spend()) {
			n.launch(nd, q, c, pkt)
			c.holdCount++
			// Wave-pipelined release: the re-emitted token rides just
			// behind the data flit, so a holder with nothing more to send
			// frees the token in the send cycle rather than one cycle
			// later — without this, global arbitration caps at half the
			// channel's wave-pipelined capacity.
			keep := nd.wantCount[c.home] > 0 &&
				(n.cfg.MaxTokenHold == 0 || c.holdCount < n.cfg.MaxTokenHold) &&
				(c.rc == nil || c.rc.OnToken() > 0)
			if !keep {
				c.glob.Release()
				nd.holding = -1
			}
		} else {
			c.glob.Release()
			nd.holding = -1
		}
	}
}

// pickQueue selects, round-robin from the node's SA pointer, a queue whose
// next-ready packet is bound for home h.
func (n *Network) pickQueue(nd *nodeState, h int) (*nodeState, *queueState, *router.Packet) {
	k := len(nd.queues)
	for i := 0; i < k; i++ {
		q := nd.queues[(nd.rr+i)%k]
		if q.want != h {
			continue
		}
		pkt := q.out.NextReady()
		if pkt == nil || pkt.Dst != h {
			panic("core: queue want out of sync with its ready packet")
		}
		nd.rr = (nd.rr + i + 1) % k
		return nd, q, pkt
	}
	return nd, nil, nil
}

// launch sends pkt from node nd's queue q onto channel c.
func (n *Network) launch(nd *nodeState, q *queueState, c *channel, pkt *router.Packet) {
	retx := pkt.FirstSentAt >= 0
	off := n.geom.Offset(c.home, nd.id)
	q.out.MarkSent(pkt, n.now)
	var err error
	if c.glob != nil {
		_, err = c.data.LaunchStream(n.now, off, pkt)
	} else {
		_, err = c.data.Launch(n.now, off, pkt)
	}
	if err != nil {
		panic(err)
	}
	n.stats.Launches++
	if retx {
		n.stats.Retransmits++
	}
	n.emit(EvLaunch, pkt)
	n.updateQueueWant(nd, q)
}

// phasePipeline moves packets out of the electrical injection pipeline into
// their output queues (or delivers node-local traffic directly).
func (n *Network) phasePipeline(now int64) {
	for _, pkt := range n.injPipe.PopDue(now) {
		srcNode := pkt.Src
		if pkt.Dst == srcNode {
			pkt.DeliveredAt = now + int64(n.cfg.EjectLatency)
			n.stats.onDelivered(pkt, true)
			n.emit(EvDeliver, pkt)
			if n.OnDeliver != nil {
				n.OnDeliver(pkt)
			}
			continue
		}
		nd, q := n.queueOf(pkt)
		if !q.out.Enqueue(pkt) {
			n.stats.QueueRejected++
			continue
		}
		pkt.EnqueuedAt = now
		n.emit(EvEnqueue, pkt)
		n.updateQueueWant(nd, q)
	}
}

// updateQueueWant re-derives which channel queue q requests and maintains
// the node-level want counts the capture callbacks read.
func (n *Network) updateQueueWant(nd *nodeState, q *queueState) {
	want := -1
	if pkt := q.out.NextReady(); pkt != nil {
		want = pkt.Dst
		if pkt.ReadyAt < 0 {
			pkt.ReadyAt = n.now
		}
	}
	if want == q.want {
		return
	}
	if q.want >= 0 {
		nd.wantCount[q.want]--
		if nd.wantCount[q.want] < 0 {
			panic("core: negative want count")
		}
	}
	if want >= 0 {
		if nd.wantCount[want] == 0 {
			n.chans[want].fair.OnRequest(nd.id)
		}
		nd.wantCount[want]++
	}
	q.want = want
}

// checkInvariants asserts the credit-conservation and channel-occupancy
// invariants every cycle.
func (n *Network) checkInvariants() {
	maxFlight := n.cfg.RoundTrip + 2
	for _, c := range n.chans {
		if c.rc != nil {
			must(c.rc.Invariant())
		}
		if c.sc != nil {
			must(c.sc.Invariant())
		}
		if f := c.data.InFlight(); f > maxFlight {
			panic(fmt.Sprintf("core: channel %d has %d flits in flight (max %d)", c.home, f, maxFlight))
		}
	}
}

// Backlog reports the exact number of injected-but-undelivered packets
// the network currently holds, locating each packet exactly once: in an
// injection pipeline, in an output queue, on a waveguide, in a home input
// buffer, or dropped with its retransmission still owed (Drops -
// Retransmits covers both the NACK flight and the awaiting-retransmit
// states). Sent-but-unACKed retention copies are deliberately *not*
// counted — the real packet is already located downstream (or delivered,
// with its ACK still in flight) — so the conservation identity
// Injected == Delivered + Backlog + QueueRejected holds at every cycle;
// internal/check audits it.
func (n *Network) Backlog() int {
	total := n.injPipe.Len() + int(n.stats.Drops-n.stats.Retransmits)
	for _, nd := range n.nodes {
		for _, q := range nd.queues {
			total += q.out.QueueLen()
		}
	}
	for _, c := range n.chans {
		total += c.data.InFlight() + c.in.Occupied()
	}
	return total
}

// Outstanding reports everything the network still *owns*, retention
// copies included: queued, sent-but-unACKed, in flight, buffered at homes,
// or in injection pipelines. It over-counts packets relative to Backlog
// (a HoldHead/Setaside sender keeps a copy while the packet flies) but is
// the correct quiescence predicate: zero means no node holds any protocol
// state, so Drain stops on it.
func (n *Network) Outstanding() int {
	total := n.injPipe.Len()
	for _, nd := range n.nodes {
		for _, q := range nd.queues {
			total += q.out.Backlog()
		}
	}
	for _, c := range n.chans {
		total += c.data.InFlight() + c.in.Occupied()
	}
	return total
}

// Drain keeps stepping (no new injections) until the network is quiescent
// or limit cycles elapse; it returns the remaining outstanding count.
func (n *Network) Drain(limit int64) int {
	for i := int64(0); i < limit && n.Outstanding() > 0; i++ {
		n.Step()
	}
	return n.Outstanding()
}

// Result finalises and returns the run's measurements.
func (n *Network) Result() Result {
	n.stats.TokensYielded = 0
	for _, c := range n.chans {
		n.stats.TokensYielded += c.fair.Yields()
	}
	return n.stats.Finish(n.cfg.Scheme)
}

// ChannelDiagnostics summarises one channel's low-level counters (tests and
// the verbose CLI mode use it).
type ChannelDiagnostics struct {
	Home          int
	Launches      int64
	Reinjections  int64
	PeakInFlight  int
	PeakInputBuf  int
	TokenCaptures int64
	TokensEmitted int64
	TokensExpired int64
	AcksSent      int64
	NacksSent     int64
	FairYields    int64
}

// Diagnostics returns per-channel low-level counters.
func (n *Network) Diagnostics() []ChannelDiagnostics {
	out := make([]ChannelDiagnostics, len(n.chans))
	for i, c := range n.chans {
		d := ChannelDiagnostics{
			Home:         c.home,
			Launches:     c.data.Launches(),
			Reinjections: c.data.Reinjections(),
			PeakInFlight: c.data.PeakInFlight(),
			PeakInputBuf: c.in.Peak(),
			FairYields:   c.fair.Yields(),
		}
		if c.glob != nil {
			d.TokenCaptures = c.glob.Captures()
		}
		if c.slot != nil {
			d.TokensEmitted, d.TokenCaptures, d.TokensExpired = c.slot.Stats()
		}
		if c.hs != nil {
			d.AcksSent, d.NacksSent = c.hs.Sent()
		}
		out[i] = d
	}
	return out
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
