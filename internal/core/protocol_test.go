package core_test

import (
	"testing"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// TestDeterminism: identical configuration and seed must give bit-identical
// results — the repeatability contract of the whole simulator.
func TestDeterminism(t *testing.T) {
	for _, s := range core.Schemes() {
		run := func() core.Result {
			cfg := core.DefaultConfig(s)
			cfg.EjectStallProb = 0.2 // exercise the stochastic path too
			net, err := core.NewNetwork(cfg, sim.ShortWindow())
			if err != nil {
				t.Fatal(err)
			}
			inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.08, cfg.Nodes, cfg.CoresPerNode, 11)
			if err != nil {
				t.Fatal(err)
			}
			return inj.Run(net)
		}
		a, b := run(), run()
		if a != b {
			t.Fatalf("%v: identical runs diverged:\n%+v\n%+v", s, a, b)
		}
	}
}

// TestPacketConservation: at every point of a run, every injected packet is
// delivered, dropped-and-retried (still owned), or in the backlog.
func TestPacketConservation(t *testing.T) {
	for _, s := range core.Schemes() {
		cfg := core.DefaultConfig(s)
		cfg.EjectStallProb = 0.3 // force drops/circulation
		net, err := core.NewNetwork(cfg, sim.ShortWindow())
		if err != nil {
			t.Fatal(err)
		}
		inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.10, cfg.Nodes, cfg.CoresPerNode, 5)
		if err != nil {
			t.Fatal(err)
		}
		for cyc := 0; cyc < 2000; cyc++ {
			inj.Tick(net)
			net.Step()
			st := net.Stats()
			if st.Delivered > st.Injected {
				t.Fatalf("%v cycle %d: delivered %d exceeds injected %d", s, cyc, st.Delivered, st.Injected)
			}
			// Backlog locates every undelivered packet exactly once, so
			// conservation is an equality at every cycle boundary.
			if int64(net.Backlog()) != st.Injected-st.Delivered {
				t.Fatalf("%v cycle %d: backlog %d != %d undelivered packets",
					s, cyc, net.Backlog(), st.Injected-st.Delivered)
			}
			// Outstanding (retention copies included) can only over-count.
			if net.Outstanding() < net.Backlog() {
				t.Fatalf("%v cycle %d: outstanding %d under-counts backlog %d",
					s, cyc, net.Outstanding(), net.Backlog())
			}
		}
		// Everything must drain once injection stops.
		if left, err := net.Drain(20_000); err != nil {
			t.Fatalf("%v: %d packets stuck after drain: %v", s, left, err)
		}
		st := net.Stats()
		if st.Delivered != st.Injected {
			t.Fatalf("%v: delivered %d of %d", s, st.Delivered, st.Injected)
		}
	}
}

// TestHandshakeRecoversFromDrops: with heavy receiver-side stalls the
// handshake schemes must drop (NACK) packets and still deliver every one
// via retransmission — the reliability contract of §III.
func TestHandshakeRecoversFromDrops(t *testing.T) {
	for _, s := range []core.Scheme{core.GHS, core.GHSSetaside, core.DHS, core.DHSSetaside} {
		cfg := core.DefaultConfig(s)
		cfg.EjectStallProb = 0.5
		cfg.BufferDepth = 2
		net, err := core.NewNetwork(cfg, sim.ShortWindow())
		if err != nil {
			t.Fatal(err)
		}
		inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.08, cfg.Nodes, cfg.CoresPerNode, 3)
		if err != nil {
			t.Fatal(err)
		}
		for cyc := 0; cyc < 3000; cyc++ {
			inj.Tick(net)
			net.Step()
		}
		net.Drain(50_000)
		st := net.Stats()
		if st.Drops == 0 {
			t.Errorf("%v: no drops under 50%% eject stalls and depth 2 — NACK path untested", s)
		}
		if st.Retransmits < st.Drops {
			t.Errorf("%v: %d drops but only %d retransmissions", s, st.Drops, st.Retransmits)
		}
		if st.Delivered != st.Injected {
			t.Errorf("%v: lost packets: delivered %d of %d", s, st.Delivered, st.Injected)
		}
	}
}

// TestCirculationRecovers: same reliability contract for DHS-circulation,
// via reinjection instead of drops.
func TestCirculationRecovers(t *testing.T) {
	cfg := core.DefaultConfig(core.DHSCirculation)
	cfg.EjectStallProb = 0.5
	cfg.BufferDepth = 2
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.08, cfg.Nodes, cfg.CoresPerNode, 3)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 3000; cyc++ {
		inj.Tick(net)
		net.Step()
	}
	net.Drain(50_000)
	st := net.Stats()
	if st.Circulations == 0 {
		t.Error("no circulations under heavy stalls")
	}
	if st.Drops != 0 || st.Retransmits != 0 {
		t.Errorf("circulation scheme dropped (%d) or retransmitted (%d)", st.Drops, st.Retransmits)
	}
	if st.Delivered != st.Injected {
		t.Errorf("lost packets: delivered %d of %d", st.Delivered, st.Injected)
	}
}

// TestDropRateBelowOnePercent reproduces the paper's §V-B claim: "even with
// high injection rates, the packet dropping and retransmission rates are
// below 1%" — under the evaluation's default (uncontended-receiver)
// configuration.
func TestDropRateBelowOnePercent(t *testing.T) {
	for _, s := range []core.Scheme{core.GHSSetaside, core.DHSSetaside, core.DHSCirculation} {
		cfg := core.DefaultConfig(s)
		net, err := core.NewNetwork(cfg, sim.ShortWindow())
		if err != nil {
			t.Fatal(err)
		}
		inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.21, cfg.Nodes, cfg.CoresPerNode, 13)
		if err != nil {
			t.Fatal(err)
		}
		res := inj.Run(net)
		if res.DropRate > 0.01 {
			t.Errorf("%v: drop rate %.4f above 1%% at high load", s, res.DropRate)
		}
		if res.CirculationRate > 0.01 {
			t.Errorf("%v: circulation rate %.4f above 1%%", s, res.CirculationRate)
		}
	}
}

// TestFig2aPathology reconstructs the motivating example of Figure 2(a):
// under Token Channel, a sender that finds the token drained by an
// upstream competitor must wait for the token to complete a loop, be
// reimbursed at the home, and come around again; GHS decouples arbitration
// from flow control and cuts that wait (Figure 4).
func TestFig2aPathology(t *testing.T) {
	wait := func(scheme core.Scheme) int64 {
		cfg := core.DefaultConfig(scheme)
		cfg.Nodes = 8
		cfg.CoresPerNode = 1
		cfg.RoundTrip = 8 // light moves 1 node/cycle, like the figure
		cfg.BufferDepth = 2
		cfg.EjectStallProb = 0.9 // the home frees buffers slowly
		cfg.Fairness.Enabled = false
		net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
		if err != nil {
			t.Fatal(err)
		}
		// S1 (node 1) floods the home (node 0) and drains the credits;
		// S2 (node 2) then wants to send one packet.
		for i := 0; i < 4; i++ {
			net.Inject(1, 0, router.ClassData, 0)
		}
		var probe *router.Packet
		for cyc := 0; cyc < 400; cyc++ {
			if cyc == 6 {
				probe = net.Inject(2, 0, router.ClassData, 0)
			}
			net.Step()
			if probe != nil && probe.FirstSentAt >= 0 {
				return probe.FirstSentAt - probe.ReadyAt
			}
		}
		t.Fatalf("%v: probe never launched", scheme)
		return 0
	}
	tc := wait(core.TokenChannel)
	ghs := wait(core.GHS)
	if tc <= ghs {
		t.Fatalf("Token Channel wait %d not above GHS wait %d (Fig 2a vs Fig 4)", tc, ghs)
	}
	// The Token Channel wait must include at least one extra loop.
	if tc-ghs < 4 {
		t.Fatalf("credit pathology too small: TC %d vs GHS %d", tc, ghs)
	}
}

// TestZeroLoadLatencyFormula pins the exact end-to-end timing of one DHS
// packet on an idle network: router pipeline (2) + first token capture (1)
// + optical flight + ejection (1 cycle + EjectLatency 1).
func TestZeroLoadLatencyFormula(t *testing.T) {
	cfg := core.DefaultConfig(core.DHS)
	cfg.Fairness.Enabled = false
	for _, src := range []int{1, 8, 9, 32, 63} {
		net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
		if err != nil {
			t.Fatal(err)
		}
		// Let the token stream fill the loop first (cold start aside, a
		// token of every age is in flight in steady state).
		net.RunCycles(int64(cfg.RoundTrip))
		pkt := net.Inject(src*cfg.CoresPerNode, 0, router.ClassData, 0)
		for i := 0; i < 50 && pkt.DeliveredAt < 0; i++ {
			net.Step()
		}
		if pkt.DeliveredAt < 0 {
			t.Fatalf("src %d: never delivered", src)
		}
		off := net.Geometry().Offset(0, src)
		want := int64(cfg.RouterPipeline) + 1 + int64(net.Geometry().FlightToHome(off)) + int64(cfg.EjectLatency)
		if pkt.Latency() != want {
			t.Errorf("src %d: latency %d, want %d", src, pkt.Latency(), want)
		}
	}
}

// TestLocalTrafficBypassesRing: a packet to the source's own node never
// touches the optical channels and completes in router time.
func TestLocalTrafficBypassesRing(t *testing.T) {
	cfg := core.DefaultConfig(core.DHSSetaside)
	net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	pkt := net.Inject(12, 3, router.ClassData, 0) // core 12 is on node 3
	for i := 0; i < 10 && pkt.DeliveredAt < 0; i++ {
		net.Step()
	}
	want := int64(cfg.RouterPipeline + cfg.EjectLatency)
	if pkt.Latency() != want {
		t.Fatalf("local latency %d, want %d", pkt.Latency(), want)
	}
	if net.Stats().Launches != 0 {
		t.Fatal("local packet was launched optically")
	}
	if net.Stats().LocalDelivered != 1 {
		t.Fatal("local delivery not counted")
	}
}

// TestCreditIndependence is Figure 11's property as a test: the handshake
// schemes' latency must be (nearly) independent of the credit count, while
// Token Slot's saturation visibly depends on it (Figure 2(b)).
func TestCreditIndependence(t *testing.T) {
	latency := func(s core.Scheme, credits int) float64 {
		cfg := core.DefaultConfig(s)
		cfg.BufferDepth = credits
		net, err := core.NewNetwork(cfg, sim.ShortWindow())
		if err != nil {
			t.Fatal(err)
		}
		inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.11, cfg.Nodes, cfg.CoresPerNode, 17)
		if err != nil {
			t.Fatal(err)
		}
		return inj.Run(net).AvgLatency
	}
	for _, s := range []core.Scheme{core.GHSSetaside, core.DHSSetaside, core.DHSCirculation} {
		l4, l32 := latency(s, 4), latency(s, 32)
		if ratio := l4 / l32; ratio > 1.25 || ratio < 0.8 {
			t.Errorf("%v: latency 4 credits %.1f vs 32 credits %.1f — not credit-independent", s, l4, l32)
		}
	}
	// The baseline, by contrast, collapses at 4 credits under 0.11 load.
	l4, l32 := latency(core.TokenSlot, 4), latency(core.TokenSlot, 32)
	if l4 < 3*l32 {
		t.Errorf("Token Slot with 4 credits (%.1f) should be far worse than with 32 (%.1f)", l4, l32)
	}
}

// TestFairnessPolicyPreventsStarvation: node 1, just downstream of the
// home, saturates the home's channel; every token is polled at node 1
// first, so a single probe packet from node 2 starves forever without the
// fairness quota and is served within one quota window with it (§III-D).
// The quota is window-granular: the hog is entitled to its allowance
// (Window/2 with two contenders) before it must yield, so the bound is
// about half a window, not immediate service.
func TestFairnessPolicyPreventsStarvation(t *testing.T) {
	probeWait := func(enabled bool) int64 {
		cfg := core.DefaultConfig(core.DHSSetaside)
		cfg.Fairness.Enabled = enabled
		net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
		if err != nil {
			t.Fatal(err)
		}
		var probe *router.Packet
		for cyc := 0; cyc < 600; cyc++ {
			// Node 1 floods home 0 from all four cores, every cycle.
			for q := 0; q < cfg.CoresPerNode; q++ {
				net.Inject(1*cfg.CoresPerNode+q, 0, router.ClassData, 0)
			}
			if cyc == 100 {
				probe = net.Inject(2*cfg.CoresPerNode, 0, router.ClassData, 0)
			}
			net.Step()
			if probe != nil && probe.FirstSentAt >= 0 {
				return probe.FirstSentAt - probe.ReadyAt
			}
		}
		return 1 << 30 // starved for the whole run
	}
	with, without := probeWait(true), probeWait(false)
	if without < 400 {
		t.Errorf("without the policy the probe was served in %d cycles — contention scenario broken", without)
	}
	window := core.DefaultConfig(core.DHSSetaside).Fairness.Window
	if with > window {
		t.Errorf("with the policy the probe waited %d cycles, beyond one %d-cycle quota window", with, window)
	}
}

// TestBoundedQueueThrottles: with a finite output queue the network rejects
// excess injections instead of queueing unboundedly.
func TestBoundedQueueThrottles(t *testing.T) {
	cfg := core.DefaultConfig(core.TokenChannel)
	cfg.QueueCap = 4
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.25, cfg.Nodes, cfg.CoresPerNode, 29)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 2000; cyc++ {
		inj.Tick(net)
		net.Step()
	}
	if net.Stats().QueueRejected == 0 {
		t.Fatal("overloaded bounded queues rejected nothing")
	}
	// Queue occupancy must respect the bound.
	for _, d := range net.Diagnostics() {
		_ = d
	}
}

// TestMeasurementWindowing: packets injected before the warmup or after the
// measurement window must not contribute to measured statistics.
func TestMeasurementWindowing(t *testing.T) {
	cfg := core.DefaultConfig(core.DHSSetaside)
	w := sim.Window{Warmup: 100, Measure: 200, Drain: 100}
	net, err := core.NewNetwork(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// One packet in each phase.
	net.Inject(4, 9, router.ClassData, 0) // warmup
	for net.Now() < 150 {
		net.Step()
	}
	net.Inject(4, 9, router.ClassData, 0) // measure
	for net.Now() < 320 {
		net.Step()
	}
	net.Inject(4, 9, router.ClassData, 0) // drain
	for net.Now() < w.Total() {
		net.Step()
	}
	st := net.Stats()
	if st.Injected != 3 || st.InjectedMeasured != 1 {
		t.Fatalf("injected %d measured %d, want 3/1", st.Injected, st.InjectedMeasured)
	}
	if st.DeliveredMeasured != 1 {
		t.Fatalf("delivered measured %d, want 1", st.DeliveredMeasured)
	}
}

// TestGHSBurstBoundedBySetaside: a GHS token holder streams consecutive
// packets while its setaside has room, then must release.
func TestGHSBurstBoundedBySetaside(t *testing.T) {
	cfg := core.DefaultConfig(core.GHSSetaside)
	cfg.Nodes = 8
	cfg.CoresPerNode = 1
	cfg.RoundTrip = 8
	cfg.SetasideSize = 3
	cfg.Fairness.Enabled = false
	net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 has 6 packets for home 0 ready before the token arrives.
	var pkts []*router.Packet
	for i := 0; i < 6; i++ {
		pkts = append(pkts, net.Inject(1, 0, router.ClassData, 0))
	}
	// The token marches one node per cycle on this 8-node loop and comes
	// back to node 1 after a full revolution; run long enough to see the
	// whole first burst.
	for i := 0; i < 2*cfg.RoundTrip; i++ {
		net.Step()
	}
	// Count consecutive-cycle launches in the first burst.
	burst := 1
	for i := 1; i < len(pkts); i++ {
		if pkts[i].FirstSentAt >= 0 && pkts[i-1].FirstSentAt >= 0 &&
			pkts[i].FirstSentAt == pkts[i-1].FirstSentAt+1 {
			burst++
		} else {
			break
		}
	}
	if burst != cfg.SetasideSize {
		t.Fatalf("first burst %d launches, want setaside size %d", burst, cfg.SetasideSize)
	}
}

// TestMaxTokenHoldCapsBurst: the explicit hold cap must bound a Token
// Channel holder's burst even when credits would allow more.
func TestMaxTokenHoldCapsBurst(t *testing.T) {
	cfg := core.DefaultConfig(core.TokenChannel)
	cfg.Nodes = 8
	cfg.CoresPerNode = 1
	cfg.RoundTrip = 8
	cfg.MaxTokenHold = 2
	cfg.Fairness.Enabled = false
	net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	var pkts []*router.Packet
	for i := 0; i < 6; i++ {
		pkts = append(pkts, net.Inject(1, 0, router.ClassData, 0))
	}
	for i := 0; i < 2*cfg.RoundTrip; i++ {
		net.Step()
	}
	burst := 1
	for i := 1; i < len(pkts); i++ {
		if pkts[i].FirstSentAt >= 0 && pkts[i-1].FirstSentAt >= 0 &&
			pkts[i].FirstSentAt == pkts[i-1].FirstSentAt+1 {
			burst++
		} else {
			break
		}
	}
	if burst != 2 {
		t.Fatalf("burst %d launches, want MaxTokenHold 2", burst)
	}
}

// TestOnDeliverHook: the delivery callback fires exactly once per packet.
func TestOnDeliverHook(t *testing.T) {
	cfg := core.DefaultConfig(core.TokenSlot)
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	net.OnDeliver = func(p *router.Packet) { seen[p.ID]++ }
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.05, cfg.Nodes, cfg.CoresPerNode, 31)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 1000; cyc++ {
		inj.Tick(net)
		net.Step()
	}
	net.Drain(5000)
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("packet %d delivered %d times", id, n)
		}
	}
	if int64(len(seen)) != net.Stats().Delivered {
		t.Fatalf("hook saw %d, stats say %d", len(seen), net.Stats().Delivered)
	}
}

// TestInjectPanicsOnBadArgs: out-of-range cores and nodes are programming
// errors and must fail loudly.
func TestInjectPanicsOnBadArgs(t *testing.T) {
	cfg := core.DefaultConfig(core.DHS)
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(){
		"core": func() { net.Inject(cfg.Cores(), 0, router.ClassData, 0) },
		"node": func() { net.Inject(0, cfg.Nodes, router.ClassData, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad Inject did not panic", name)
				}
			}()
			f()
		}()
	}
}
