package core_test

import (
	"testing"

	"photon/internal/core"
	"photon/internal/sim"
)

func TestPresetsAllValidAndRunnable(t *testing.T) {
	for _, p := range core.Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Config.Validate(); err != nil {
				t.Fatalf("preset invalid: %v", err)
			}
			net, err := core.NewNetwork(p.Config, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
			if err != nil {
				t.Fatal(err)
			}
			net.RunCycles(100) // must tick without panicking
			if p.Description == "" {
				t.Error("preset lacks a description")
			}
		})
	}
}

func TestPresetByName(t *testing.T) {
	if _, ok := core.PresetByName("paper"); !ok {
		t.Fatal("paper preset missing")
	}
	if _, ok := core.PresetByName("nope"); ok {
		t.Fatal("unknown preset resolved")
	}
}
