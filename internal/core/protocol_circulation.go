package core

import (
	"photon/internal/arbiter"
	"photon/internal/phys"
	"photon/internal/router"
)

// DHS with circulation: the receiver takes responsibility for every packet
// — one it cannot buffer is reinjected onto the data waveguide for another
// loop instead of being dropped, and the home "virtually consumes" its own
// next token to make room. Senders fire and forget, and no handshake
// waveguide exists.

func init() {
	RegisterProtocol(ProtocolSpec{
		Scheme:      DHSCirculation,
		Name:        "dhs-circulation",
		PaperName:   "DHS w/ Circulation",
		Family:      "circulation",
		Circulating: true,
		SendPolicy:  router.FireAndForget,
		Hardware:    phys.SchemeHardware{Name: "DHS_Cir", Arbitration: phys.DistributedArbitration, Circulation: true},
		New:         func() Protocol { return circulationProtocol{} },
	})
}

type circulationProtocol struct{}

func (circulationProtocol) Wire(n *Network, c *channel) {
	c.slot = arbiter.NewSlotEmitter(n.cfg.Nodes, n.cfg.RoundTrip, n.geom.NodesPerCycle())
}

func (circulationProtocol) Arbitrate(n *Network, c *channel) func(now int64) {
	// DHS-cir: reinjection suppresses this cycle's token emission.
	gate := func() bool {
		if c.suppress {
			c.suppress = false
			return false
		}
		if n.faults != nil && n.faults.KillToken(c.home, n.now) {
			n.tokenFault(c)
			return false
		}
		return true
	}
	return bindSlotArbitrate(n, c, gate, nil, nil)
}

func (circulationProtocol) LaunchHeld(n *Network, c *channel) func(now int64) { return nil }

func (circulationProtocol) Arrive(n *Network, c *channel) func(now int64, pkt *router.Packet) {
	return func(now int64, pkt *router.Packet) {
		if c.in.Accept(pkt) {
			pkt.AcceptedAt = now
			n.emit(EvAccept, pkt)
		} else {
			pkt.Circulations++
			n.stats.Circulations++
			if _, err := c.data.Reinject(now, pkt); err != nil {
				panic(err)
			}
			c.suppress = true
			n.emit(EvReinject, pkt)
		}
	}
}

func (circulationProtocol) Handshake(n *Network, c *channel) func(now int64) { return nil }

func (circulationProtocol) Eject(n *Network, c *channel) func() { return nil }

func (circulationProtocol) RecoverData(n *Network, c *channel) func(pkt *router.Packet) {
	// No credit ledger to reconcile; the destroyed copy was the only one
	// (fire and forget), so the packet is gone unless it was a duplicate.
	return n.classifyDataLoss
}

func (circulationProtocol) Invariant(n *Network, c *channel) func() error { return nil }
