package core_test

import (
	"errors"
	"fmt"
	"testing"

	"photon/internal/core"
	"photon/internal/fault"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// chaosWindow matches the quick battery's window.
var chaosWindow = sim.Window{Warmup: 300, Measure: 1000, Drain: 1000}

// runFaulty replays a UR tape through one faulty, recovery-enabled network
// and returns the result plus the network for accounting.
func runFaulty(t *testing.T, s core.Scheme, fc fault.Config, recovery bool, load float64, seed uint64) (core.Result, *core.Network) {
	t.Helper()
	cfg := core.DefaultConfig(s)
	cfg.Seed = seed
	cfg.Fault = fc
	cfg.Recovery.Enabled = recovery
	net, err := core.NewNetwork(cfg, chaosWindow)
	if err != nil {
		t.Fatal(err)
	}
	tape, err := traffic.RecordTape(traffic.UniformRandom{}, load, cfg.Nodes, cfg.CoresPerNode,
		sim.DeriveSeed(seed, 99), chaosWindow.Warmup+chaosWindow.Measure)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tape.Run(net)
	if err != nil {
		t.Fatal(err)
	}
	return res, net
}

func classConfig(cl fault.Class, rate float64, burst int) fault.Config {
	fc := fault.Config{Enabled: true, Warmup: chaosWindow.Warmup}
	return fc.SetClass(cl, fault.ClassConfig{Rate: rate, Burst: burst})
}

// TestRateZeroReproducesSeedDigests pins the acceptance criterion from
// EXPERIMENTS.md: an enabled injector with every rate at zero, plus the
// recovery machinery armed, must reproduce the fault-free quick-grid
// digests (UR @ 0.13, seed 1, windows 300/1000/1000) bit for bit. The
// hex values are the EXPERIMENTS.md "UR @ 0.13" column; a shift here is a
// behaviour shift in the fault-free protocol.
func TestRateZeroReproducesSeedDigests(t *testing.T) {
	want := map[core.Scheme]string{
		core.TokenChannel:   "9fa40151ac8c907c",
		core.TokenSlot:      "4ebced9eeaf9a211",
		core.GHS:            "52e0408d1b0d60e3",
		core.GHSSetaside:    "3318d9bec3d24eef",
		core.DHS:            "bd11d19c4b7206f4",
		core.DHSSetaside:    "236b458c65ca1419",
		core.DHSCirculation: "73671dbfc58a4992",
	}
	// The quick battery's UR @ 0.13 tape is the second one recorded:
	// DeriveSeed(1, 1).
	cfg0 := core.DefaultConfig(core.TokenChannel)
	tape, err := traffic.RecordTape(traffic.UniformRandom{}, 0.13, cfg0.Nodes, cfg0.CoresPerNode,
		sim.DeriveSeed(1, 1), chaosWindow.Warmup+chaosWindow.Measure)
	if err != nil {
		t.Fatal(err)
	}
	for s, wantHex := range want {
		cfg := core.DefaultConfig(s)
		cfg.Seed = 1
		cfg.Fault = fault.Config{Enabled: true} // all rates zero
		cfg.Recovery.Enabled = true
		net, err := core.NewNetwork(cfg, chaosWindow)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tape.Run(net)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%016x", res.Digest); got != wantHex {
			t.Errorf("%s: rate-0 digest %s != EXPERIMENTS.md seed digest %s", s, got, wantHex)
		}
		if res.FaultsInjected != 0 {
			t.Errorf("%s: rate-0 run injected %d faults", s, res.FaultsInjected)
		}
	}
}

// TestFaultDeterminism: same (seed, fault config) must give bit-identical
// results, fault schedule included.
func TestFaultDeterminism(t *testing.T) {
	fc := fault.Config{
		Enabled: true,
		Warmup:  chaosWindow.Warmup,
		Token:   fault.ClassConfig{Rate: 0.01, Burst: 2},
		Pulse:   fault.ClassConfig{Rate: 0.01, Burst: 2},
		Data:    fault.ClassConfig{Rate: 0.01, Burst: 2},
		Stall:   fault.ClassConfig{Rate: 0.005, Burst: 4},
	}
	for _, s := range []core.Scheme{core.GHS, core.DHSSetaside} {
		a, _ := runFaulty(t, s, fc, true, 0.05, 5)
		b, _ := runFaulty(t, s, fc, true, 0.05, 5)
		if a != b {
			t.Errorf("%s: faulty runs diverged: digest %016x vs %016x (faults %d vs %d)",
				s, a.Digest, b.Digest, a.FaultsInjected, b.FaultsInjected)
		}
		if a.FaultsInjected == 0 {
			t.Errorf("%s: no faults fired; determinism under faults was not exercised", s)
		}
	}
}

// drainAndAssertRecovered drains and asserts zero permanent loss.
func drainAndAssertRecovered(t *testing.T, s core.Scheme, net *core.Network, label string) {
	t.Helper()
	if left, err := net.Drain(60_000); err != nil {
		t.Fatalf("%s/%s: %d packets stuck: %v", s, label, left, err)
	}
	a := net.Accounting()
	if a.Lost != 0 || a.Delivered+a.QueueRejected != a.Injected {
		t.Fatalf("%s/%s: permanent loss: injected %d, delivered %d, rejected %d, lost %d",
			s, label, a.Injected, a.Delivered, a.QueueRejected, a.Lost)
	}
}

// TestRecoveryFromAckLoss: lost ACKs leave the sender holding an already
// accepted packet; the timeout retransmits, the home discards the
// duplicate and re-ACKs, and nothing is lost.
func TestRecoveryFromAckLoss(t *testing.T) {
	for _, s := range []core.Scheme{core.GHS, core.GHSSetaside, core.DHS, core.DHSSetaside} {
		res, net := runFaulty(t, s, classConfig(fault.PulseLoss, 0.05, 2), true, 0.02, 1)
		if res.FaultsInjected == 0 {
			t.Fatalf("%s: no pulse faults fired", s)
		}
		drainAndAssertRecovered(t, s, net, "pulse-loss")
		a := net.Accounting()
		if a.AcksLost > 0 && a.DupsDiscarded == 0 {
			t.Errorf("%s: %d ACKs lost but no duplicate was ever discarded", s, a.AcksLost)
		}
		if a.TimeoutRetransmits == 0 {
			t.Errorf("%s: pulses were lost but no timeout ever fired", s)
		}
	}
}

// TestRecoveryFromDataLoss: destroyed data flits are retransmitted from
// the sender's retained copy after the timeout (the home cannot NACK an
// unreadable arrival).
func TestRecoveryFromDataLoss(t *testing.T) {
	for _, s := range []core.Scheme{core.GHS, core.DHS, core.DHSSetaside} {
		res, net := runFaulty(t, s, classConfig(fault.DataLoss, 0.05, 2), true, 0.02, 1)
		if res.FaultsInjected == 0 {
			t.Fatalf("%s: no data faults fired", s)
		}
		drainAndAssertRecovered(t, s, net, "data-loss")
		if net.Accounting().TimeoutRetransmits == 0 {
			t.Errorf("%s: data was destroyed but no timeout ever fired", s)
		}
	}
}

// TestRecoveryFromTokenLoss: the home watchdog re-emits a lost global
// token, and a credit-slot scheme's stranded credit is reclaimed at
// nominal expiry. DHS slot tokens carry no strandable state — a killed
// grant suppresses one capture and the next cycle emits a fresh slot — so
// those schemes must drain clean with zero regenerations.
func TestRecoveryFromTokenLoss(t *testing.T) {
	needsRegen := map[core.Scheme]bool{
		core.TokenChannel: true, core.TokenSlot: true,
		core.GHS: true, core.GHSSetaside: true,
	}
	for _, s := range core.Schemes() {
		res, net := runFaulty(t, s, classConfig(fault.TokenLoss, 0.01, 1), true, 0.02, 1)
		if res.FaultsInjected == 0 {
			t.Fatalf("%s: no token faults fired", s)
		}
		drainAndAssertRecovered(t, s, net, "token-loss")
		if needsRegen[s] && res.TokensRegenerated == 0 {
			t.Errorf("%s: tokens were lost but none regenerated", s)
		}
		if !needsRegen[s] && res.TokensRegenerated != 0 {
			t.Errorf("%s: %d regenerations on a scheme with stateless slot grants",
				s, res.TokensRegenerated)
		}
	}
}

// TestRecoveryFromStalls: resonator drift only delays; every scheme must
// drain clean with no recovery action beyond waiting.
func TestRecoveryFromStalls(t *testing.T) {
	for _, s := range core.Schemes() {
		res, net := runFaulty(t, s, classConfig(fault.NodeStall, 0.01, 8), true, 0.02, 1)
		if res.FaultsInjected == 0 {
			t.Fatalf("%s: no stalls fired", s)
		}
		drainAndAssertRecovered(t, s, net, "node-stall")
	}
}

// TestRecoveryOffStrands: with recovery disabled, data loss strands the
// sender's retained copy forever and Drain reports the named error.
func TestRecoveryOffStrands(t *testing.T) {
	res, net := runFaulty(t, core.DHS, classConfig(fault.DataLoss, 0.05, 2), false, 0.02, 1)
	if res.FaultsInjected == 0 {
		t.Fatal("no data faults fired")
	}
	left, err := net.Drain(20_000)
	if !errors.Is(err, core.ErrDrainStalled) {
		t.Fatalf("expected ErrDrainStalled, got %v (left %d)", err, left)
	}
	var de *core.DrainError
	if !errors.As(err, &de) {
		t.Fatalf("drain error is not a *DrainError: %v", err)
	}
	if de.Outstanding != left || left == 0 {
		t.Fatalf("DrainError outstanding %d, returned left %d", de.Outstanding, left)
	}
}

// TestFireAndForgetPermanentLoss: a scheme with no sender retention counts
// destroyed data as Lost; conservation holds through the Lost term and the
// drain still quiesces.
func TestFireAndForgetPermanentLoss(t *testing.T) {
	res, net := runFaulty(t, core.TokenChannel, classConfig(fault.DataLoss, 0.05, 2), true, 0.02, 1)
	if res.FaultsInjected == 0 {
		t.Fatal("no data faults fired")
	}
	if left, err := net.Drain(60_000); err != nil {
		t.Fatalf("drain: %v (left %d)", err, left)
	}
	a := net.Accounting()
	if a.Lost == 0 {
		t.Fatal("data faults fired on a fire-and-forget scheme but nothing was recorded lost")
	}
	if a.Delivered+a.QueueRejected+a.Lost != a.Injected {
		t.Fatalf("conservation with loss: injected %d != delivered %d + rejected %d + lost %d",
			a.Injected, a.Delivered, a.QueueRejected, a.Lost)
	}
}

// TestWatchdogDuplicateGuard: a watchdog window shorter than the token's
// natural silence period (long transmissions hold the token off the loop)
// would fire spuriously; the duplicate-token guard must refuse every such
// firing, leaving the fault-free digest untouched.
func TestWatchdogDuplicateGuard(t *testing.T) {
	run := func(window int) core.Result {
		cfg := core.DefaultConfig(core.GHS)
		cfg.Seed = 1
		cfg.Fault = fault.Config{Enabled: true} // no faults: nothing is ever lost
		cfg.Recovery.Enabled = true
		cfg.Recovery.WatchdogWindow = window
		net, err := core.NewNetwork(cfg, chaosWindow)
		if err != nil {
			t.Fatal(err)
		}
		tape, err := traffic.RecordTape(traffic.UniformRandom{}, 0.10, cfg.Nodes, cfg.CoresPerNode,
			sim.DeriveSeed(1, 7), chaosWindow.Warmup+chaosWindow.Measure)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tape.Run(net)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// An aggressively short window fires the watchdog often; the guard
	// must refuse every regeneration and keep the digest identical to the
	// default-window run.
	aggressive, relaxed := run(2), run(0)
	if aggressive.TokensRegenerated != 0 {
		t.Fatalf("guard admitted %d regenerations with no token ever lost", aggressive.TokensRegenerated)
	}
	if aggressive.Digest != relaxed.Digest {
		t.Fatalf("spurious watchdog firings changed the digest: %016x vs %016x",
			aggressive.Digest, relaxed.Digest)
	}
}

// TestConfigValidateFaultBlock: the network-level Validate must reject
// malformed fault and recovery blocks.
func TestConfigValidateFaultBlock(t *testing.T) {
	base := func() core.Config {
		cfg := core.DefaultConfig(core.DHS)
		cfg.Fault.Enabled = true
		cfg.Recovery.Enabled = true
		return cfg
	}
	nan := 0.0
	nan /= nan
	cases := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"rate above one", func(c *core.Config) { c.Fault.Token.Rate = 1.5 }},
		{"negative rate", func(c *core.Config) { c.Fault.Data.Rate = -0.1 }},
		{"nan rate", func(c *core.Config) { c.Fault.Pulse.Rate = nan }},
		{"negative warmup", func(c *core.Config) { c.Fault.Warmup = -5 }},
		{"timeout below answer delay", func(c *core.Config) { c.Recovery.RetxTimeout = 3 }},
		{"negative timeout", func(c *core.Config) { c.Recovery.RetxTimeout = -1 }},
		{"backoff cap out of range", func(c *core.Config) { c.Recovery.RetxBackoffCap = 64 }},
		{"negative watchdog", func(c *core.Config) { c.Recovery.WatchdogWindow = -1 }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %s", tc.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid fault/recovery config rejected: %v", err)
	}
	// A disabled fault block is inert: invalid rates inside it are ignored.
	off := base()
	off.Fault = fault.Config{Token: fault.ClassConfig{Rate: 99}}
	if err := off.Validate(); err != nil {
		t.Fatalf("disabled fault block was validated anyway: %v", err)
	}
}
