package core

// Preset names a ready-made configuration from the paper or its reference
// designs, for CLI convenience and documentation.
type Preset struct {
	// Name is the CLI label.
	Name string
	// Description explains the design point.
	Description string
	// Config is the full configuration (Scheme set to the preset's
	// subject; override freely).
	Config Config
}

// Presets returns the named configurations.
func Presets() []Preset {
	paper := DefaultConfig(DHSSetaside)

	corona := DefaultConfig(TokenChannel)
	// Corona (ISCA'08): 64 nodes on a 576 mm^2 die, 8-cycle round trip,
	// MWSR crossbar with token arbitration.
	corona.BufferDepth = 8

	bigRing := DefaultConfig(DHSSetaside)
	bigRing.RoundTrip = 16

	smallCmp := DefaultConfig(DHSSetaside)
	smallCmp.Nodes = 16
	smallCmp.RoundTrip = 4
	smallCmp.CoresPerNode = 2

	return []Preset{
		{
			Name:        "paper",
			Description: "the paper's evaluation platform: 64 nodes x 4 cores, R=8, 8 credits, 4 setaside slots",
			Config:      paper,
		},
		{
			Name:        "corona",
			Description: "Corona-like token-arbitrated MWSR crossbar (the Token Channel baseline's home design)",
			Config:      corona,
		},
		{
			Name:        "bigring",
			Description: "a 16-cycle round-trip loop (larger die / slower clock): the regime where credit flow control collapses",
			Config:      bigRing,
		},
		{
			Name:        "smallcmp",
			Description: "a 32-core part: 16 nodes x 2 cores, R=4",
			Config:      smallCmp,
		},
	}
}

// PresetByName resolves a preset label.
func PresetByName(name string) (Preset, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}
