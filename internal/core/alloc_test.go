package core_test

import (
	"testing"

	"photon/internal/core"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// TestStepZeroAlloc is the hot-path alloc guard: after warmup, a network
// cycle must allocate nothing for any scheme — every per-cycle container
// (grant queue, delay-line buckets, eject scratch, setaside slots) is
// preallocated or bucket-reused. Injection is excluded: packets themselves
// are necessarily heap-allocated, so the guard measures Step over the
// warmed backlog as production sweeps drive it (invariants off).
//
// The window is all warmup so no packet is marked measured: the latency
// histograms never record during the guard, removing their amortised bin
// growth — the only legitimate allocation Step could otherwise perform.
func TestStepZeroAlloc(t *testing.T) {
	for _, s := range core.Schemes() {
		t.Run(s.String(), func(t *testing.T) {
			cfg := core.DefaultConfig(s)
			cfg.CheckInvariants = false
			net, err := core.NewNetwork(cfg, sim.Window{Warmup: 1 << 40})
			if err != nil {
				t.Fatalf("NewNetwork: %v", err)
			}
			inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.10, cfg.Nodes, cfg.CoresPerNode, cfg.Seed)
			if err != nil {
				t.Fatalf("NewInjector: %v", err)
			}
			for i := 0; i < 2000; i++ {
				inj.Tick(net)
				net.Step()
			}
			if avg := testing.AllocsPerRun(200, func() { net.Step() }); avg != 0 {
				t.Errorf("Step allocates %.2f times per cycle on the warmed hot path; want 0", avg)
			}
		})
	}
}

// TestRunCyclesZeroAlloc extends the guard to the idle fast path: once the
// network drains, skip-ahead cycles must be allocation-free too.
func TestRunCyclesZeroAlloc(t *testing.T) {
	for _, s := range core.Schemes() {
		t.Run(s.String(), func(t *testing.T) {
			cfg := core.DefaultConfig(s)
			cfg.CheckInvariants = false
			net, err := core.NewNetwork(cfg, sim.Window{Warmup: 1 << 40})
			if err != nil {
				t.Fatalf("NewNetwork: %v", err)
			}
			inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.10, cfg.Nodes, cfg.CoresPerNode, cfg.Seed)
			if err != nil {
				t.Fatalf("NewInjector: %v", err)
			}
			for i := 0; i < 500; i++ {
				inj.Tick(net)
				net.Step()
			}
			net.RunCycles(4096) // drain into quiescence
			if out := net.Outstanding(); out != 0 {
				t.Fatalf("network not quiescent after drain: %d outstanding", out)
			}
			if avg := testing.AllocsPerRun(50, func() { net.RunCycles(64) }); avg != 0 {
				t.Errorf("idle RunCycles allocates %.2f times per 64-cycle block; want 0", avg)
			}
		})
	}
}

// BenchmarkIdleRunCycles measures the idle fast path per scheme:
// nanoseconds per skipped cycle on a fully drained network — the cost a
// tape gap or drain tail pays per cycle after quiescence.
func BenchmarkIdleRunCycles(b *testing.B) {
	for _, s := range core.Schemes() {
		b.Run(s.String(), func(b *testing.B) {
			cfg := core.DefaultConfig(s)
			cfg.CheckInvariants = false
			net, err := core.NewNetwork(cfg, sim.Window{Warmup: 1 << 40})
			if err != nil {
				b.Fatal(err)
			}
			inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.05, cfg.Nodes, cfg.CoresPerNode, cfg.Seed)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 500; i++ {
				inj.Tick(net)
				net.Step()
			}
			net.RunCycles(4096)
			if net.Outstanding() != 0 {
				b.Fatal("network not quiescent")
			}
			b.ResetTimer()
			net.RunCycles(int64(b.N))
		})
	}
}
