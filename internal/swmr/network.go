package swmr

import (
	"fmt"

	"photon/internal/ring"
	"photon/internal/router"
	"photon/internal/sim"
)

// Network is one cycle-accurate SWMR simulation instance. Each node owns
// the channel it writes (no sender arbitration, at most one launch per
// node per cycle); receivers bound simultaneous arrivals with RxPorts and
// a shared input buffer.
type Network struct {
	cfg    Config
	geom   *ring.Geometry
	window sim.Window
	now    int64
	nextID uint64

	nodes []*nodeState
	rxs   []*rxState

	stats *Stats
	rng   *sim.RNG

	injPipe *sim.DelayLine[*router.Packet]

	// pendingGrants are reservation grants in flight back to senders.
	pendingGrants []pendingGrant

	// OnDeliver fires for every delivered packet.
	OnDeliver func(*router.Packet)
}

// nodeState is the sender side of one node.
type nodeState struct {
	id     int
	queues []*router.OutPort
	rr     int

	// Reservation state: at most one outstanding request per node. The
	// serialisation is deliberate — it keeps the receiver's arrival-slot
	// bookkeeping exact (the grant fixes the launch cycle), and it is
	// faithful to per-message circuit-setup flow control, whose setup
	// round trip per packet is exactly the inefficiency the handshake
	// disciplines remove.
	reqOutstanding bool
	reqQueue       int   // queue whose head the request covers
	reqIssuedAt    int64 // for reservation-wait statistics
	granted        bool  // a grant arrived; launch this cycle
}

// rxState is the receiver side of one node.
type rxState struct {
	in *router.InPort
	// arrivals carries data flits addressed to this node (any sender's
	// channel), possibly several per cycle.
	arrivals *sim.DelayLine[*router.Packet]
	// acks carries handshake answers back out of this receiver; keyed by
	// the cycle they reach their sender.
	acks *sim.DelayLine[ring.Ack]
	// requests carries reservation requests inbound to this receiver.
	requests *sim.DelayLine[requestMsg]
	// deferred holds requests that could not be granted yet (FIFO).
	deferred *sim.Queue[requestMsg]

	// Reservation accounting: every buffer slot is free, promised (grant
	// issued, data not yet arrived), or occupied.
	free     int
	promised int
	// portsReserved[cycle % len] counts reserved arrival ports.
	portsReserved []int8
}

type requestMsg struct {
	sender   int
	queue    int
	issuedAt int64
}

// NewNetwork builds an SWMR network measuring over window.
func NewNetwork(cfg Config, window sim.Window) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom, err := ring.NewGeometry(cfg.Nodes, cfg.RoundTrip)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:     cfg,
		geom:    geom,
		window:  window,
		stats:   newStats(window, cfg.Cores()),
		rng:     sim.NewRNG(cfg.Seed),
		injPipe: sim.NewDelayLine[*router.Packet](cfg.RouterPipeline + 2),
	}
	horizon := 2*cfg.RoundTrip + 6
	n.nodes = make([]*nodeState, cfg.Nodes)
	n.rxs = make([]*rxState, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		nd := &nodeState{id: i, queues: make([]*router.OutPort, cfg.CoresPerNode)}
		for q := range nd.queues {
			nd.queues[q] = router.NewOutPort(cfg.Scheme.sendPolicy(), cfg.QueueCap, cfg.SetasideSize)
		}
		n.nodes[i] = nd
		n.rxs[i] = &rxState{
			in:            router.NewInPort(cfg.BufferDepth, cfg.EjectRate, cfg.EjectStallProb, n.rng.Fork(uint64(i)+2000)),
			arrivals:      sim.NewDelayLine[*router.Packet](horizon),
			acks:          sim.NewDelayLine[ring.Ack](horizon),
			requests:      sim.NewDelayLine[requestMsg](horizon),
			deferred:      sim.NewQueue[requestMsg](0),
			free:          cfg.BufferDepth,
			portsReserved: make([]int8, horizon+1),
		}
	}
	return n, nil
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Window returns the measurement window.
func (n *Network) Window() sim.Window { return n.window }

// Stats exposes the live collector.
func (n *Network) Stats() *Stats { return n.stats }

// flightTo returns the data flight time from src to dst on src's channel.
func (n *Network) flightTo(src, dst int) int {
	return n.geom.Segment(n.geom.Offset(src, dst))
}

// Inject hands a packet from srcCore to the router, as in the MWSR
// network; node-local packets bypass the optics.
func (n *Network) Inject(srcCore, dstNode int, class router.Class, tag uint64) *router.Packet {
	if srcCore < 0 || srcCore >= n.cfg.Cores() {
		panic(fmt.Sprintf("swmr: Inject from invalid core %d", srcCore))
	}
	if dstNode < 0 || dstNode >= n.cfg.Nodes {
		panic(fmt.Sprintf("swmr: Inject to invalid node %d", dstNode))
	}
	src := srcCore / n.cfg.CoresPerNode
	pkt := router.NewPacket(n.nextID, src, dstNode, n.now)
	n.nextID++
	pkt.Class = class
	pkt.Tag = tag | uint64(srcCore)<<40
	n.stats.Injected++
	if n.window.InMeasure(pkt.CreatedAt) {
		pkt.Measured = true
		n.stats.InjectedMeasured++
	}
	n.injPipe.Schedule(n.now+int64(n.cfg.RouterPipeline), pkt)
	return pkt
}

// Step advances the network one cycle.
func (n *Network) Step() {
	now := n.now
	n.phaseArrivals(now)
	n.phaseAcksAndGrants(now)
	n.phaseEject(now)
	n.phaseRequests(now)
	n.phaseLaunch(now)
	n.phasePipeline(now)
	n.now++
}

// RunCycles advances k cycles.
func (n *Network) RunCycles(k int64) {
	for i := int64(0); i < k; i++ {
		n.Step()
	}
}

// phaseArrivals lands this cycle's data flits at each receiver. Arrival
// service order rotates with the cycle so no sender gets a systematic
// port-priority advantage.
func (n *Network) phaseArrivals(now int64) {
	for _, rx := range n.rxs {
		flits := rx.arrivals.PopDue(now)
		if n.cfg.Scheme == Reservation {
			// This cycle's port reservations are consumed by this
			// cycle's arrivals; recycle the slot for future bookings.
			rx.portsReserved[now%int64(len(rx.portsReserved))] = 0
		}
		if len(flits) == 0 {
			continue
		}
		start := int(now) % len(flits)
		ports := 0
		for i := range flits {
			pkt := flits[(start+i)%len(flits)]
			switch n.cfg.Scheme {
			case Reservation:
				// Ports and a buffer slot were reserved at grant time.
				if ports >= n.cfg.RxPorts {
					panic("swmr: reservation overbooked rx ports")
				}
				if !rx.in.Accept(pkt) {
					panic("swmr: reservation overbooked the input buffer")
				}
				rx.promised--
				if rx.promised < 0 {
					panic("swmr: arrival without a promise")
				}
				ports++
			default: // handshake flavours
				ok := ports < n.cfg.RxPorts && rx.in.HasSpace()
				portDrop := ports >= n.cfg.RxPorts
				if ok {
					if !rx.in.Accept(pkt) {
						panic("swmr: HasSpace lied")
					}
					ports++
				} else {
					n.stats.Drops++
					if portDrop {
						n.stats.PortDrops++
					}
				}
				back := int64(n.geom.Segment(n.geom.Offset(pkt.Dst, pkt.Src)))
				rx.acks.Schedule(now+back, ring.Ack{To: pkt.Src, PacketID: pkt.ID, Positive: ok})
			}
		}
	}
}

// phaseAcksAndGrants delivers handshake answers and reservation grants to
// senders.
func (n *Network) phaseAcksAndGrants(now int64) {
	for _, rx := range n.rxs {
		for _, ack := range rx.acks.PopDue(now) {
			nd := n.nodes[ack.To]
			var done bool
			for _, q := range nd.queues {
				var err error
				if ack.Positive {
					_, err = q.Ack(ack.PacketID)
				} else {
					_, err = q.Nack(ack.PacketID)
				}
				if err == nil {
					done = true
					break
				}
			}
			if !done {
				panic(fmt.Sprintf("swmr: handshake for unknown packet %d at node %d", ack.PacketID, ack.To))
			}
		}
	}
}

// phaseEject drains receiver buffers.
func (n *Network) phaseEject(now int64) {
	for _, rx := range n.rxs {
		for _, pkt := range rx.in.Eject() {
			if n.cfg.Scheme == Reservation {
				rx.free++
			}
			pkt.DeliveredAt = now + int64(n.cfg.EjectLatency)
			n.onDelivered(pkt)
		}
	}
}

func (n *Network) onDelivered(pkt *router.Packet) {
	n.stats.Delivered++
	if n.window.InMeasure(pkt.DeliveredAt) {
		n.stats.DeliveredInWindow++
	}
	if pkt.Measured {
		n.stats.Latency.Add(pkt.Latency())
	}
	if n.OnDeliver != nil {
		n.OnDeliver(pkt)
	}
}

// phaseRequests processes reservation requests reaching receivers and
// issues grants when a buffer slot and the arrival cycle's port are free.
func (n *Network) phaseRequests(now int64) {
	if n.cfg.Scheme != Reservation {
		return
	}
	for dst, rx := range n.rxs {
		for _, req := range rx.requests.PopDue(now) {
			rx.deferred.PushBack(req)
		}
		// Grant in FIFO order while resources allow.
		for {
			req, ok := rx.deferred.Peek()
			if !ok {
				break
			}
			backDelay := int64(n.geom.Segment(n.geom.Offset(dst, req.sender)))
			grantAt := now + backDelay
			launchAt := grantAt // the sender launches the cycle the grant lands
			arriveAt := launchAt + int64(n.flightTo(req.sender, dst))
			slot := arriveAt % int64(len(rx.portsReserved))
			if rx.free == 0 || rx.portsReserved[slot] >= int8(n.cfg.RxPorts) {
				break // head-of-line defer; retry next cycle
			}
			rx.deferred.PopFront()
			rx.free--
			rx.promised++
			rx.portsReserved[slot]++
			n.pendingGrants = append(n.pendingGrants, pendingGrant{
				at: grantAt, sender: req.sender, queue: req.queue, issuedAt: req.issuedAt,
			})
		}
	}
	// Deliver grants due this cycle.
	kept := n.pendingGrants[:0]
	for _, g := range n.pendingGrants {
		if g.at != now {
			kept = append(kept, g)
			continue
		}
		nd := n.nodes[g.sender]
		if !nd.reqOutstanding || nd.reqQueue != g.queue {
			panic("swmr: grant for a request that is not outstanding")
		}
		nd.granted = true
		n.stats.Reservations++
		n.stats.ResWait.Add(now - g.issuedAt)
	}
	n.pendingGrants = kept
}

type pendingGrant struct {
	at       int64
	sender   int
	queue    int
	issuedAt int64
}

// phaseLaunch issues this cycle's sends and, under reservation, new
// requests.
func (n *Network) phaseLaunch(now int64) {
	for _, nd := range n.nodes {
		switch n.cfg.Scheme {
		case Reservation:
			if nd.granted {
				q := nd.queues[nd.reqQueue]
				pkt := q.NextReady()
				if pkt == nil {
					panic("swmr: grant arrived for an empty queue")
				}
				n.launch(nd, q, pkt, now)
				nd.granted = false
				nd.reqOutstanding = false
			}
			if !nd.reqOutstanding {
				// Issue a request for the next ready head (SA round-robin).
				k := len(nd.queues)
				for i := 0; i < k; i++ {
					qi := (nd.rr + i) % k
					pkt := nd.queues[qi].NextReady()
					if pkt == nil {
						continue
					}
					if pkt.ReadyAt < 0 {
						pkt.ReadyAt = now
					}
					nd.rr = (qi + 1) % k
					nd.reqOutstanding = true
					nd.reqQueue = qi
					nd.reqIssuedAt = now
					dst := pkt.Dst
					reach := int64(n.geom.Segment(n.geom.Offset(nd.id, dst)))
					n.rxs[dst].requests.Schedule(now+reach, requestMsg{sender: nd.id, queue: qi, issuedAt: now})
					break
				}
			}
		default: // handshake flavours: launch the SA-selected ready head
			k := len(nd.queues)
			for i := 0; i < k; i++ {
				qi := (nd.rr + i) % k
				q := nd.queues[qi]
				pkt := q.NextReady()
				if pkt == nil {
					continue
				}
				if pkt.ReadyAt < 0 {
					pkt.ReadyAt = now
				}
				nd.rr = (qi + 1) % k
				n.launch(nd, q, pkt, now)
				break
			}
		}
	}
}

// launch puts pkt onto nd's own channel.
func (n *Network) launch(nd *nodeState, q *router.OutPort, pkt *router.Packet, now int64) {
	retx := pkt.FirstSentAt >= 0
	q.MarkSent(pkt, now)
	n.rxs[pkt.Dst].arrivals.Schedule(now+int64(n.flightTo(nd.id, pkt.Dst)), pkt)
	n.stats.Launches++
	if retx {
		n.stats.Retransmits++
	}
}

// phasePipeline moves injected packets into output queues.
func (n *Network) phasePipeline(now int64) {
	for _, pkt := range n.injPipe.PopDue(now) {
		if pkt.Dst == pkt.Src {
			pkt.DeliveredAt = now + int64(n.cfg.EjectLatency)
			n.stats.LocalDelivered++
			n.onDelivered(pkt)
			continue
		}
		nd := n.nodes[pkt.Src]
		core := int(pkt.Tag>>40) % n.cfg.CoresPerNode
		if !nd.queues[core].Enqueue(pkt) {
			continue // bounded queue refusal
		}
		pkt.EnqueuedAt = now
	}
}

// Backlog reports packets still owned anywhere.
func (n *Network) Backlog() int {
	total := n.injPipe.Len()
	for _, nd := range n.nodes {
		for _, q := range nd.queues {
			total += q.Backlog()
		}
	}
	for _, rx := range n.rxs {
		total += rx.arrivals.Len() + rx.in.Occupied()
	}
	return total
}

// Drain steps without new traffic until empty or limit.
func (n *Network) Drain(limit int64) int {
	for i := int64(0); i < limit && n.Backlog() > 0; i++ {
		n.Step()
	}
	return n.Backlog()
}

// Result finalises the run.
func (n *Network) Result() Result { return n.stats.finish(n.cfg.Scheme) }

// CheckInvariants verifies reservation conservation at every receiver:
// free + promised + occupied slots account for the whole buffer, and no
// future arrival cycle is overbooked. It panics on violation (tests call
// it between steps).
func (n *Network) CheckInvariants() {
	if n.cfg.Scheme != Reservation {
		return
	}
	for id, rx := range n.rxs {
		sum := rx.free + rx.promised + rx.in.Occupied()
		if sum != n.cfg.BufferDepth {
			panic(fmt.Sprintf("swmr: receiver %d leaks buffer slots: free %d + promised %d + occupied %d != depth %d",
				id, rx.free, rx.promised, rx.in.Occupied(), n.cfg.BufferDepth))
		}
		for slot, c := range rx.portsReserved {
			if int(c) > n.cfg.RxPorts {
				panic(fmt.Sprintf("swmr: receiver %d overbooked slot %d (%d > %d ports)", id, slot, c, n.cfg.RxPorts))
			}
			if c < 0 {
				panic(fmt.Sprintf("swmr: receiver %d negative port reservation at slot %d", id, slot))
			}
		}
	}
}
