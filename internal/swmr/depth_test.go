package swmr

import "testing"

// TestHandshakeBufferIndependence mirrors Figure 11's property on the SWMR
// extension: the handshake disciplines' latency barely moves with the
// receiver buffer depth, while the reservation baseline's throughput is
// directly gated by it (fewer slots = fewer concurrent grants).
func TestHandshakeBufferIndependence(t *testing.T) {
	lat := func(s Scheme, depth int) float64 {
		res, _ := drive(t, s, 0.02, func(c *Config) { c.BufferDepth = depth })
		return res.AvgLatency
	}
	shallow, deep := lat(HandshakeSetaside, 2), lat(HandshakeSetaside, 32)
	if ratio := shallow / deep; ratio > 1.2 || ratio < 0.8 {
		t.Errorf("SWMR handshake latency depends on depth: %.1f vs %.1f", shallow, deep)
	}
}

// TestRxPortsScaleThroughput: more buffer-write ports let the handshake
// receiver absorb clashing arrivals, reducing NACKs.
func TestRxPortsScaleThroughput(t *testing.T) {
	drops := func(ports int) float64 {
		res, _ := drive(t, HandshakeSetaside, 0.08, func(c *Config) { c.RxPorts = ports })
		return res.PortDropRate
	}
	one, four := drops(1), drops(4)
	if four >= one {
		t.Errorf("port drops did not fall with more rx ports: 1 port %.4f vs 4 ports %.4f", one, four)
	}
}

// TestReservationWaitTracksLoad: the request-grant wait grows with load
// (grants defer when slots or ports are booked).
func TestReservationWaitTracksLoad(t *testing.T) {
	wait := func(rate float64) float64 {
		res, _ := drive(t, Reservation, rate, nil)
		return res.AvgReservation
	}
	// At light loads the wait is the bare notification round trip; near
	// the per-node serialisation limit grants defer and the wait grows.
	light, heavy := wait(0.005), wait(0.025)
	if heavy < light-0.1 {
		t.Errorf("reservation wait fell with load: %.1f -> %.1f", light, heavy)
	}
	// The floor is about one notification round trip.
	if light < float64(DefaultConfig(Reservation).RoundTrip)/2 {
		t.Errorf("reservation wait %.1f below any plausible notification trip", light)
	}
}
