package swmr

import (
	"testing"

	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/traffic"
)

// drive runs an SWMR network under UR traffic at the given rate.
func drive(t testing.TB, scheme Scheme, rate float64, mod func(*Config)) (Result, *Network) {
	t.Helper()
	cfg := DefaultConfig(scheme)
	if mod != nil {
		mod(&cfg)
	}
	net, err := NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(77)
	pat := traffic.UniformRandom{}
	w := net.Window()
	for cyc := int64(0); cyc < w.Warmup+w.Measure; cyc++ {
		for c := 0; c < cfg.Cores(); c++ {
			if rng.Bernoulli(rate) {
				net.Inject(c, pat.Dest(c/cfg.CoresPerNode, cfg.Nodes, rng), router.ClassData, 0)
			}
		}
		net.Step()
	}
	net.Drain(w.Drain + 50_000)
	return net.Result(), net
}

func TestSchemeParse(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("nope"); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Nodes = 1 },
		func(c *Config) { c.CoresPerNode = 0 },
		func(c *Config) { c.RoundTrip = 7 },
		func(c *Config) { c.Scheme = Scheme(9) },
		func(c *Config) { c.BufferDepth = 0 },
		func(c *Config) { c.RxPorts = 0 },
		func(c *Config) { c.EjectRate = 0 },
		func(c *Config) { c.EjectStallProb = 1 },
		func(c *Config) { c.QueueCap = -1 },
	}
	for i, mod := range mods {
		cfg := DefaultConfig(Handshake)
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	cfg := DefaultConfig(HandshakeSetaside)
	cfg.SetasideSize = 0
	if err := cfg.Validate(); err == nil {
		t.Error("setaside without slots accepted")
	}
}

// TestAllSchemesDeliver: every discipline completes a light-load run with
// full delivery and plausible latency.
func TestAllSchemesDeliver(t *testing.T) {
	for _, s := range Schemes() {
		res, _ := drive(t, s, 0.02, nil)
		if res.Delivered == 0 {
			t.Fatalf("%v: nothing delivered", s)
		}
		if res.Unfinished != 0 {
			t.Fatalf("%v: %d unfinished", s, res.Unfinished)
		}
		if res.AvgLatency < 4 || res.AvgLatency > 60 {
			t.Fatalf("%v: implausible latency %.1f", s, res.AvgLatency)
		}
	}
}

// TestHandshakeBeatsReservationLatency: the paper's argument transplanted —
// at low load the reservation round trip costs a full loop per packet,
// while handshake sends immediately.
func TestHandshakeBeatsReservationLatency(t *testing.T) {
	res, _ := drive(t, Reservation, 0.02, nil)
	hs, _ := drive(t, HandshakeSetaside, 0.02, nil)
	if hs.AvgLatency >= res.AvgLatency {
		t.Fatalf("handshake %.1f not below reservation %.1f at low load", hs.AvgLatency, res.AvgLatency)
	}
	// The gap must be about the notification round trip.
	if res.AvgLatency-hs.AvgLatency < 4 {
		t.Fatalf("reservation overhead only %.1f cycles", res.AvgLatency-hs.AvgLatency)
	}
	if res.AvgReservation <= 0 {
		t.Fatal("reservation scheme recorded no request-grant waits")
	}
}

// TestReservationInvariants steps a loaded reservation network and checks
// the conservation invariant every cycle.
func TestReservationInvariants(t *testing.T) {
	cfg := DefaultConfig(Reservation)
	cfg.EjectStallProb = 0.3
	cfg.BufferDepth = 3
	net, err := NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(31)
	pat := traffic.UniformRandom{}
	for cyc := 0; cyc < 2000; cyc++ {
		for c := 0; c < cfg.Cores(); c++ {
			if rng.Bernoulli(0.05) {
				net.Inject(c, pat.Dest(c/cfg.CoresPerNode, cfg.Nodes, rng), router.ClassData, 0)
			}
		}
		net.Step()
		net.CheckInvariants()
	}
}

// TestReservationNeverDrops: reservations guarantee a buffer slot and an
// rx port, so the receiver must never see an unacceptable arrival.
func TestReservationNeverDrops(t *testing.T) {
	res, net := drive(t, Reservation, 0.10, func(c *Config) { c.EjectStallProb = 0.3 })
	if res.DropRate != 0 || net.Stats().Drops != 0 {
		t.Fatalf("reservation dropped packets: %+v", res)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished", res.Unfinished)
	}
}

// TestHandshakeRecovers: NACKed SWMR packets must all be retransmitted to
// delivery, including port-contention drops.
func TestHandshakeRecovers(t *testing.T) {
	res, net := drive(t, HandshakeSetaside, 0.12, func(c *Config) {
		c.RxPorts = 1
		c.BufferDepth = 2
		c.EjectStallProb = 0.4
	})
	st := net.Stats()
	if st.Drops == 0 {
		t.Fatal("no drops under rx-port pressure")
	}
	if st.PortDrops == 0 {
		t.Fatal("no port-contention drops — the SWMR-specific NACK cause untested")
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished after drain", res.Unfinished)
	}
	if st.Delivered != st.Injected {
		t.Fatalf("delivered %d of %d", st.Delivered, st.Injected)
	}
}

// TestSenderNeverArbitrates: SWMR's structural win — at low load the
// sender-side wait (ready -> launch) is zero for handshake schemes: the
// sender owns its channel.
func TestSenderNeverArbitrates(t *testing.T) {
	cfg := DefaultConfig(HandshakeSetaside)
	net, err := NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	net.RunCycles(10)
	pkt := net.Inject(4, 9, router.ClassData, 0)
	for i := 0; i < 40 && pkt.DeliveredAt < 0; i++ {
		net.Step()
	}
	if pkt.DeliveredAt < 0 {
		t.Fatal("never delivered")
	}
	if wait := pkt.ArbitrationWait(); wait != 0 {
		t.Fatalf("sender waited %d cycles on its own channel", wait)
	}
}

// TestRxPortContentionThrottles: with a single rx port, a 2-senders-1-
// receiver clash must produce NACKs for the loser and still deliver all.
func TestRxPortContentionThrottles(t *testing.T) {
	cfg := DefaultConfig(HandshakeSetaside)
	cfg.RxPorts = 1
	net, err := NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 8 and 16 are equidistant choices; pick sources whose flights
	// to node 0 collide in the same cycle: src 8 (flight seg(56)=7) and
	// src 16 (flight seg(48)=6) launched one cycle apart would collide;
	// simplest: saturate both senders and let the port fight happen.
	for cyc := 0; cyc < 300; cyc++ {
		net.Inject(8*cfg.CoresPerNode, 0, router.ClassData, 0)
		net.Inject(16*cfg.CoresPerNode, 0, router.ClassData, 0)
		net.Step()
	}
	net.Drain(20_000)
	st := net.Stats()
	if st.PortDrops == 0 {
		t.Fatal("no port drops in a forced 2:1 clash")
	}
	if st.Delivered != st.Injected {
		t.Fatalf("delivered %d of %d", st.Delivered, st.Injected)
	}
}

// TestDeterminism: SWMR runs are reproducible.
func TestDeterminism(t *testing.T) {
	for _, s := range Schemes() {
		a, _ := drive(t, s, 0.05, func(c *Config) { c.EjectStallProb = 0.2 })
		b, _ := drive(t, s, 0.05, func(c *Config) { c.EjectStallProb = 0.2 })
		if a != b {
			t.Fatalf("%v: runs diverged", s)
		}
	}
}

// TestLocalBypass: node-local traffic never uses the optics.
func TestLocalBypass(t *testing.T) {
	cfg := DefaultConfig(Handshake)
	net, err := NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	pkt := net.Inject(12, 3, router.ClassData, 0)
	for i := 0; i < 10 && pkt.DeliveredAt < 0; i++ {
		net.Step()
	}
	if pkt.Latency() != int64(cfg.RouterPipeline+cfg.EjectLatency) {
		t.Fatalf("local latency %d", pkt.Latency())
	}
	if net.Stats().Launches != 0 {
		t.Fatal("local packet launched optically")
	}
}
