// Package swmr implements the paper's stated extension target: handshake
// flow control on a Single-Write-Multiple-Read optical interconnect
// (§II-B: "Although our handshake schemes can be applied to both MWSR and
// SWMR, we choose MWSR as our interconnect pattern for its simplicity and
// low cost").
//
// In SWMR every node *owns* the channel it writes (Firefly-style), so
// sender-side arbitration disappears — a sender launches whenever it
// likes. The contention moves to the receiver: before data arrives the
// receiver must have been notified to tune its detector rings, and a node
// can only capture a bounded number of simultaneous arrivals (RxPorts
// buffer-write ports) into a bounded input buffer. Two flow-control
// disciplines are modelled:
//
//   - Reservation — the conservative baseline: a sender first requests a
//     slot on the receiver's notification wavelength; the receiver grants
//     (reserving one buffer slot and the arrival cycle's port) or defers.
//     A packet is sent only after its grant returns, costing a full
//     notification round trip per packet before any data moves — the SWMR
//     analogue of credit/reservation flow control (cf. the circuit-setup
//     networks of §VI).
//
//   - Handshake — the paper's idea transplanted: send immediately, let the
//     receiver ACK/NACK. A NACK (no free buffer slot or no free rx port in
//     the arrival cycle) drops the flit and the sender retransmits.
//     Optionally with setaside buffers, exactly as in MWSR.
//
// The timing model reuses the ring geometry: notifications, grants, data
// and handshake pulses all travel at NodesPerCycle node positions per
// cycle on the unidirectional loop.
package swmr

import (
	"fmt"

	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/stats"
)

// Scheme selects the SWMR flow-control discipline.
type Scheme int

const (
	// Reservation requests a buffer slot before sending (baseline).
	Reservation Scheme = iota
	// Handshake sends immediately and retransmits on NACK, holding the
	// queue head until the ACK (basic, HOL-prone).
	Handshake
	// HandshakeSetaside is Handshake with setaside buffers.
	HandshakeSetaside

	numSchemes
)

func (s Scheme) String() string {
	switch s {
	case Reservation:
		return "swmr-reservation"
	case Handshake:
		return "swmr-handshake"
	case HandshakeSetaside:
		return "swmr-handshake-setaside"
	default:
		return fmt.Sprintf("swmr.Scheme(%d)", int(s))
	}
}

// ParseScheme resolves a CLI name.
func ParseScheme(name string) (Scheme, error) {
	for s := Reservation; s < numSchemes; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("swmr: unknown scheme %q", name)
}

// Schemes lists the implemented SWMR disciplines.
func Schemes() []Scheme { return []Scheme{Reservation, Handshake, HandshakeSetaside} }

// sendPolicy maps the discipline to the sender-side retention policy.
func (s Scheme) sendPolicy() router.SendPolicy {
	switch s {
	case Handshake:
		return router.HoldHead
	case HandshakeSetaside:
		return router.Setaside
	default:
		return router.FireAndForget // reservation guarantees delivery
	}
}

// Config describes one SWMR network.
type Config struct {
	// Nodes, CoresPerNode and RoundTrip as in the MWSR configuration.
	Nodes        int
	CoresPerNode int
	RoundTrip    int

	Scheme Scheme

	// BufferDepth is each node's input buffer (shared across all senders).
	BufferDepth int
	// RxPorts bounds simultaneous arrivals buffered per cycle; extra
	// arrivals are NACKed (handshake) or never happen (reservation
	// reserves the arrival cycle's port).
	RxPorts int
	// SetasideSize for HandshakeSetaside.
	SetasideSize int
	// QueueCap bounds output queues (0 = unbounded).
	QueueCap int
	// EjectRate drains the input buffer to the cores.
	EjectRate int
	// EjectStallProb models receiver-side contention.
	EjectStallProb float64
	// RouterPipeline and EjectLatency as in MWSR.
	RouterPipeline int
	EjectLatency   int

	Seed uint64
}

// DefaultConfig mirrors the paper's 64-node CMP for SWMR.
func DefaultConfig(s Scheme) Config {
	return Config{
		Nodes:          64,
		CoresPerNode:   4,
		RoundTrip:      8,
		Scheme:         s,
		BufferDepth:    8,
		RxPorts:        2,
		SetasideSize:   4,
		EjectRate:      2,
		RouterPipeline: 2,
		EjectLatency:   1,
		Seed:           1,
	}
}

// Cores returns the total core count.
func (c Config) Cores() int { return c.Nodes * c.CoresPerNode }

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("swmr: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.CoresPerNode < 1 {
		return fmt.Errorf("swmr: cores per node must be >= 1")
	}
	if c.RoundTrip < 1 || c.Nodes%c.RoundTrip != 0 {
		return fmt.Errorf("swmr: round trip %d must divide node count %d", c.RoundTrip, c.Nodes)
	}
	if c.Scheme < 0 || c.Scheme >= numSchemes {
		return fmt.Errorf("swmr: invalid scheme %d", int(c.Scheme))
	}
	if c.BufferDepth < 1 {
		return fmt.Errorf("swmr: buffer depth must be >= 1")
	}
	if c.RxPorts < 1 {
		return fmt.Errorf("swmr: rx ports must be >= 1")
	}
	if c.Scheme == HandshakeSetaside && c.SetasideSize < 1 {
		return fmt.Errorf("swmr: setaside scheme needs SetasideSize >= 1")
	}
	if c.EjectRate < 1 {
		return fmt.Errorf("swmr: eject rate must be >= 1")
	}
	if c.EjectStallProb < 0 || c.EjectStallProb >= 1 {
		return fmt.Errorf("swmr: eject stall probability must be in [0,1)")
	}
	if c.RouterPipeline < 0 || c.EjectLatency < 0 {
		return fmt.Errorf("swmr: negative pipeline latency")
	}
	if c.QueueCap < 0 {
		return fmt.Errorf("swmr: queue cap must be >= 0")
	}
	return nil
}

// Stats collects SWMR run measurements (the subset of the MWSR statistics
// that applies; SWMR has no token waits).
type Stats struct {
	window sim.Window
	cores  int

	Injected          int64
	InjectedMeasured  int64
	Delivered         int64
	DeliveredInWindow int64
	LocalDelivered    int64

	Launches     int64
	Drops        int64 // NACKed arrivals (port or buffer)
	PortDrops    int64 // subset of Drops due to rx-port contention
	Retransmits  int64
	Reservations int64 // grant round trips performed (reservation scheme)

	Latency *stats.Histogram
	ResWait *stats.Histogram // request->grant wait, reservation only
}

func newStats(w sim.Window, cores int) *Stats {
	return &Stats{
		window:  w,
		cores:   cores,
		Latency: stats.NewHistogram(0),
		ResWait: stats.NewHistogram(0),
	}
}

// Result condenses an SWMR run.
type Result struct {
	Scheme         Scheme
	AvgLatency     float64
	P99Latency     int64
	Throughput     float64
	OfferedLoad    float64
	DropRate       float64
	PortDropRate   float64
	RetransmitRate float64
	AvgReservation float64
	Unfinished     int64
	Delivered      int64
}

func (s *Stats) finish(scheme Scheme) Result {
	mc := float64(s.window.Measure)
	res := Result{
		Scheme:      scheme,
		AvgLatency:  s.Latency.Mean(),
		P99Latency:  s.Latency.Quantile(0.99),
		Throughput:  float64(s.DeliveredInWindow) / mc / float64(s.cores),
		OfferedLoad: float64(s.InjectedMeasured) / mc / float64(s.cores),
		Delivered:   s.Delivered,
	}
	if s.Launches > 0 {
		res.DropRate = float64(s.Drops) / float64(s.Launches)
		res.PortDropRate = float64(s.PortDrops) / float64(s.Launches)
		res.RetransmitRate = float64(s.Retransmits) / float64(s.Launches)
	}
	res.AvgReservation = s.ResWait.Mean()
	var deliveredMeasured int64 = s.Latency.Count()
	res.Unfinished = s.InjectedMeasured - deliveredMeasured
	return res
}
