package mesh

import (
	"fmt"

	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/stats"
)

// flit is one single-flit packet in transit through the mesh.
type flit struct {
	pkt        *router.Packet
	dx, dy     int   // destination coordinates
	hops       int   // links traversed so far
	eligibleAt int64 // cycle the router pipeline releases it for switching
	// from is the port this flit occupies at its current router; credits
	// return toward that direction's upstream neighbour when it leaves.
	from Port
}

// routerState is one mesh router: five input buffers with credit counts
// toward each neighbour.
type routerState struct {
	x, y int
	in   [numPorts]*sim.Queue[*flit]
	// credits[p] counts free slots in the p-side neighbour's opposite
	// input buffer.
	credits [numPorts]int
	// arrivals carries flits in flight on the incoming links.
	arrivals *sim.DelayLine[*flit]
	// creditReturns carries credits in flight back from neighbours,
	// tagged by the local output port they replenish.
	creditReturns *sim.DelayLine[Port]
	// rr rotates the switch-allocation input priority.
	rr int
}

// Network is one cycle-accurate electrical-mesh simulation instance.
type Network struct {
	cfg    Config
	window sim.Window
	now    int64
	nextID uint64

	routers []*routerState
	stats   *Stats

	// OnDeliver fires for every delivered packet.
	OnDeliver func(*router.Packet)
}

// NewNetwork builds a mesh measuring over window.
func NewNetwork(cfg Config, window sim.Window) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		cfg:    cfg,
		window: window,
		stats: &Stats{
			window:  window,
			cores:   cfg.Cores(),
			Latency: stats.NewHistogram(0),
		},
	}
	n.routers = make([]*routerState, cfg.Nodes())
	for i := range n.routers {
		r := &routerState{
			x:             i % cfg.Width,
			y:             i / cfg.Width,
			arrivals:      sim.NewDelayLine[*flit](cfg.LinkLatency + 2),
			creditReturns: sim.NewDelayLine[Port](cfg.LinkLatency + 2),
		}
		for p := Port(0); p < numPorts; p++ {
			cap0 := cfg.BufferDepth
			if p == Local {
				cap0 = cfg.InjectionQueueCap
			}
			r.in[p] = sim.NewQueue[*flit](cap0)
			r.credits[p] = cfg.BufferDepth
		}
		n.routers[i] = r
	}
	return n, nil
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Window returns the measurement window.
func (n *Network) Window() sim.Window { return n.window }

// Stats exposes the live collector.
func (n *Network) Stats() *Stats { return n.stats }

// nodeAt returns the router index for grid coordinates.
func (n *Network) nodeAt(x, y int) int { return y*n.cfg.Width + x }

// neighbour returns the router index adjacent via port p, or -1 at an edge.
func (n *Network) neighbour(r *routerState, p Port) int {
	switch p {
	case North:
		if r.y == 0 {
			return -1
		}
		return n.nodeAt(r.x, r.y-1)
	case South:
		if r.y == n.cfg.Height-1 {
			return -1
		}
		return n.nodeAt(r.x, r.y+1)
	case East:
		if r.x == n.cfg.Width-1 {
			return -1
		}
		return n.nodeAt(r.x+1, r.y)
	case West:
		if r.x == 0 {
			return -1
		}
		return n.nodeAt(r.x-1, r.y)
	default:
		return -1
	}
}

// opposite returns the port a flit sent via p arrives on at the neighbour.
func opposite(p Port) Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return Local
	}
}

// route returns the XY dimension-order output port for a flit at router r.
func route(r *routerState, f *flit) Port {
	switch {
	case f.dx > r.x:
		return East
	case f.dx < r.x:
		return West
	case f.dy > r.y:
		return South
	case f.dy < r.y:
		return North
	default:
		return Local
	}
}

// Inject hands a packet from srcCore to its router's injection queue. It
// reports false when a bounded injection queue refuses the packet.
func (n *Network) Inject(srcCore, dstNode int, class router.Class, tag uint64) (*router.Packet, bool) {
	if srcCore < 0 || srcCore >= n.cfg.Cores() {
		panic(fmt.Sprintf("mesh: Inject from invalid core %d", srcCore))
	}
	if dstNode < 0 || dstNode >= n.cfg.Nodes() {
		panic(fmt.Sprintf("mesh: Inject to invalid node %d", dstNode))
	}
	src := srcCore / n.cfg.CoresPerNode
	pkt := router.NewPacket(n.nextID, src, dstNode, n.now)
	n.nextID++
	pkt.Class = class
	pkt.Tag = tag
	f := &flit{
		pkt:        pkt,
		dx:         dstNode % n.cfg.Width,
		dy:         dstNode / n.cfg.Width,
		eligibleAt: n.now + int64(n.cfg.RouterPipeline),
		from:       Local,
	}
	if !n.routers[src].in[Local].PushBack(f) {
		return pkt, false
	}
	n.stats.Injected++
	if n.window.InMeasure(pkt.CreatedAt) {
		pkt.Measured = true
		n.stats.InjectedMeasured++
	}
	pkt.EnqueuedAt = n.now
	return pkt, true
}

// Step advances the mesh one cycle.
func (n *Network) Step() {
	now := n.now
	// 1. Link arrivals enter input buffers (credits guarantee space).
	for _, r := range n.routers {
		for _, f := range r.arrivals.PopDue(now) {
			if !r.in[f.from].PushBack(f) {
				panic("mesh: credited arrival found a full buffer")
			}
		}
	}
	// 2. Credit returns replenish output credit counts.
	for _, r := range n.routers {
		for _, p := range r.creditReturns.PopDue(now) {
			r.credits[p]++
			if r.credits[p] > n.cfg.BufferDepth {
				panic("mesh: credit overflow")
			}
		}
	}
	// 3. Switch allocation and traversal: per router, each output port
	// accepts at most one flit; inputs are served in rotating order.
	for _, r := range n.routers {
		var outUsed [numPorts]bool
		for i := 0; i < int(numPorts); i++ {
			p := Port((r.rr + i) % int(numPorts))
			f, ok := r.in[p].Peek()
			if !ok || f.eligibleAt > now {
				continue
			}
			out := route(r, f)
			if outUsed[out] {
				continue
			}
			if out == Local {
				// Ejection: deliver to the attached cores.
				outUsed[out] = true
				r.in[p].PopFront()
				n.afterDequeue(r, p)
				n.deliver(f, now)
				continue
			}
			if r.credits[out] == 0 {
				continue
			}
			nb := n.neighbour(r, out)
			if nb < 0 {
				panic(fmt.Sprintf("mesh: XY routing chose an edge port %v at (%d,%d)", out, r.x, r.y))
			}
			outUsed[out] = true
			r.in[p].PopFront()
			n.afterDequeue(r, p)
			r.credits[out]--
			f.from = opposite(out)
			f.hops++
			f.eligibleAt = now + int64(n.cfg.LinkLatency) + int64(n.cfg.RouterPipeline)
			if f.pkt.FirstSentAt < 0 {
				f.pkt.FirstSentAt = now
				f.pkt.SentAt = now
			}
			n.routers[nb].arrivals.Schedule(now+int64(n.cfg.LinkLatency), f)
		}
		r.rr = (r.rr + 1) % int(numPorts)
	}
	n.now++
}

// afterDequeue returns a credit to the upstream router once a flit leaves
// input buffer p of router r.
func (n *Network) afterDequeue(r *routerState, p Port) {
	if p == Local {
		return // injection queues are not credited
	}
	up := n.neighbour(r, p)
	if up < 0 {
		panic("mesh: flit arrived through an edge")
	}
	// The upstream router's credit counter for its port facing us.
	n.routers[up].creditReturns.Schedule(n.now+int64(n.cfg.LinkLatency), opposite(p))
}

// deliver completes a packet at its destination.
func (n *Network) deliver(f *flit, now int64) {
	pkt := f.pkt
	pkt.DeliveredAt = now + 1 // ejection link
	n.stats.Delivered++
	n.stats.HopsSum += int64(f.hops)
	if f.hops == 0 {
		n.stats.LocalDelivered++
	}
	if n.window.InMeasure(pkt.DeliveredAt) {
		n.stats.DeliveredInWindow++
	}
	if pkt.Measured {
		n.stats.Latency.Add(pkt.Latency())
	}
	if n.OnDeliver != nil {
		n.OnDeliver(pkt)
	}
}

// RunCycles advances k cycles.
func (n *Network) RunCycles(k int64) {
	for i := int64(0); i < k; i++ {
		n.Step()
	}
}

// Backlog reports flits still owned anywhere.
func (n *Network) Backlog() int {
	total := 0
	for _, r := range n.routers {
		total += r.arrivals.Len()
		for p := Port(0); p < numPorts; p++ {
			total += r.in[p].Len()
		}
	}
	return total
}

// Drain steps without new traffic until empty or limit.
func (n *Network) Drain(limit int64) int {
	for i := int64(0); i < limit && n.Backlog() > 0; i++ {
		n.Step()
	}
	return n.Backlog()
}

// Result finalises the run.
func (n *Network) Result() Result { return n.stats.finish() }
