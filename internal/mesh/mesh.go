// Package mesh implements the electrical baseline the paper's introduction
// argues against: a conventional 2D-mesh network-on-chip with hop-by-hop
// credit-based flow control (§I–II: "In electrical interconnects, nodes
// are connected to its neighboring nodes using separate electrical links,
// such as a 2D Mesh network ... many-core systems using electrical
// interconnects may not be able to meet scalability and high bandwidth").
//
// The model is a cycle-accurate single-flit wormhole mesh with
// dimension-order (XY) routing — deadlock-free by construction — a
// two-stage router pipeline matching the optical side's electrical
// assumptions (RC+SA, then ST), one-cycle link traversal, and per-link
// credit counts. It exists so the repository can quantify the paper's
// motivating comparison: multi-hop electrical latency/energy versus the
// one-hop optical ring, on identical workloads and with the same packet
// and statistics vocabulary.
package mesh

import (
	"fmt"

	"photon/internal/sim"
	"photon/internal/stats"
)

// Config describes one mesh network.
type Config struct {
	// Width and Height of the router grid (8x8 matches the 64-node ring).
	Width, Height int
	// CoresPerNode is the concentration degree (4, as in the ring).
	CoresPerNode int
	// BufferDepth is each input port's buffer (credits granted upstream).
	BufferDepth int
	// InjectionQueueCap bounds per-node injection queues (0 = unbounded).
	InjectionQueueCap int
	// RouterPipeline is the per-hop router delay in cycles before switch
	// traversal (2: RC+SA then ST, as in the paper's electrical router).
	RouterPipeline int
	// LinkLatency is the inter-router wire delay in cycles.
	LinkLatency int
	Seed        uint64
}

// DefaultConfig returns the 64-node electrical baseline.
func DefaultConfig() Config {
	return Config{
		Width:          8,
		Height:         8,
		CoresPerNode:   4,
		BufferDepth:    8,
		RouterPipeline: 2,
		LinkLatency:    1,
		Seed:           1,
	}
}

// Nodes returns the router count.
func (c Config) Nodes() int { return c.Width * c.Height }

// Cores returns the total core count.
func (c Config) Cores() int { return c.Nodes() * c.CoresPerNode }

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.Width < 2 || c.Height < 2 {
		return fmt.Errorf("mesh: grid must be at least 2x2, got %dx%d", c.Width, c.Height)
	}
	if c.CoresPerNode < 1 {
		return fmt.Errorf("mesh: cores per node must be >= 1")
	}
	if c.BufferDepth < 1 {
		return fmt.Errorf("mesh: buffer depth must be >= 1")
	}
	if c.InjectionQueueCap < 0 {
		return fmt.Errorf("mesh: injection queue cap must be >= 0")
	}
	if c.RouterPipeline < 1 {
		return fmt.Errorf("mesh: router pipeline must be >= 1 cycle")
	}
	if c.LinkLatency < 1 {
		return fmt.Errorf("mesh: link latency must be >= 1 cycle")
	}
	return nil
}

// Port identifies one of a router's five directions.
type Port int

// The five router ports.
const (
	North Port = iota
	South
	East
	West
	Local
	numPorts
)

func (p Port) String() string {
	switch p {
	case North:
		return "N"
	case South:
		return "S"
	case East:
		return "E"
	case West:
		return "W"
	case Local:
		return "L"
	default:
		return "?"
	}
}

// Stats collects mesh run measurements.
type Stats struct {
	window sim.Window
	cores  int

	Injected          int64
	InjectedMeasured  int64
	Delivered         int64
	DeliveredInWindow int64
	LocalDelivered    int64
	HopsSum           int64

	Latency *stats.Histogram
}

// Result condenses a mesh run.
type Result struct {
	AvgLatency  float64
	P99Latency  int64
	Throughput  float64
	OfferedLoad float64
	AvgHops     float64
	Unfinished  int64
	Delivered   int64
}

func (s *Stats) finish() Result {
	mc := float64(s.window.Measure)
	res := Result{
		AvgLatency:  s.Latency.Mean(),
		P99Latency:  s.Latency.Quantile(0.99),
		Throughput:  float64(s.DeliveredInWindow) / mc / float64(s.cores),
		OfferedLoad: float64(s.InjectedMeasured) / mc / float64(s.cores),
		Delivered:   s.Delivered,
	}
	if s.Delivered > 0 {
		res.AvgHops = float64(s.HopsSum) / float64(s.Delivered)
	}
	res.Unfinished = s.InjectedMeasured - s.Latency.Count()
	return res
}
