package mesh

import (
	"math"
	"testing"

	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/traffic"
)

func newNet(t testing.TB, mod func(*Config)) *Network {
	t.Helper()
	cfg := DefaultConfig()
	if mod != nil {
		mod(&cfg)
	}
	net, err := NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestConfigValidation(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Width = 1 },
		func(c *Config) { c.Height = 0 },
		func(c *Config) { c.CoresPerNode = 0 },
		func(c *Config) { c.BufferDepth = 0 },
		func(c *Config) { c.InjectionQueueCap = -1 },
		func(c *Config) { c.RouterPipeline = 0 },
		func(c *Config) { c.LinkLatency = 0 },
	}
	for i, mod := range mods {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if DefaultConfig().Nodes() != 64 || DefaultConfig().Cores() != 256 {
		t.Fatal("default shape is not the 64-node/256-core CMP")
	}
}

// TestZeroLoadLatencyFormula pins the exact per-hop timing: router pipeline
// + (link + pipeline) per hop + ejection.
func TestZeroLoadLatencyFormula(t *testing.T) {
	cfg := DefaultConfig()
	for _, tc := range []struct{ src, dst int }{
		{0, 0},   // local
		{0, 1},   // one hop east
		{0, 7},   // seven hops east
		{0, 56},  // seven hops south
		{0, 63},  // 7+7 hops
		{63, 0},  // reverse corner
		{27, 36}, // interior
	} {
		net, err := NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 20, Drain: 0})
		if err != nil {
			t.Fatal(err)
		}
		pkt, ok := net.Inject(tc.src*cfg.CoresPerNode, tc.dst, router.ClassData, 0)
		if !ok {
			t.Fatal("injection refused")
		}
		for i := 0; i < 200 && pkt.DeliveredAt < 0; i++ {
			net.Step()
		}
		hops := manhattan(tc.src, tc.dst, cfg.Width)
		want := int64(cfg.RouterPipeline + hops*(cfg.LinkLatency+cfg.RouterPipeline) + 1)
		if pkt.DeliveredAt < 0 {
			t.Fatalf("%d->%d never delivered", tc.src, tc.dst)
		}
		if pkt.Latency() != want {
			t.Errorf("%d->%d: latency %d, want %d (%d hops)", tc.src, tc.dst, pkt.Latency(), want, hops)
		}
	}
}

func manhattan(a, b, w int) int {
	ax, ay := a%w, a/w
	bx, by := b%w, b/w
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TestHopCountsAreManhattan: XY routing takes exactly the Manhattan path.
func TestHopCountsAreManhattan(t *testing.T) {
	net := newNet(t, nil)
	cfg := net.Config()
	rng := sim.NewRNG(5)
	type probe struct {
		pkt  *router.Packet
		hops int
	}
	var probes []probe
	net.OnDeliver = func(p *router.Packet) {}
	for i := 0; i < 50; i++ {
		src, dst := rng.Intn(cfg.Nodes()), rng.Intn(cfg.Nodes())
		pkt, ok := net.Inject(src*cfg.CoresPerNode, dst, router.ClassData, 0)
		if ok {
			probes = append(probes, probe{pkt, manhattan(src, dst, cfg.Width)})
		}
		net.RunCycles(3)
	}
	net.Drain(5000)
	var sumWant int64
	for _, pr := range probes {
		if pr.pkt.DeliveredAt < 0 {
			t.Fatal("probe undelivered")
		}
		sumWant += int64(pr.hops)
	}
	if net.Stats().HopsSum != sumWant {
		t.Fatalf("hops sum %d, want Manhattan total %d", net.Stats().HopsSum, sumWant)
	}
}

// TestConservationUnderLoad: heavy uniform traffic, everything delivered
// exactly once after drain; credits never corrupt.
func TestConservationUnderLoad(t *testing.T) {
	net := newNet(t, nil)
	cfg := net.Config()
	rng := sim.NewRNG(9)
	ur := traffic.UniformRandom{}
	for cyc := 0; cyc < 3000; cyc++ {
		for c := 0; c < cfg.Cores(); c++ {
			if rng.Bernoulli(0.08) {
				net.Inject(c, ur.Dest(c/cfg.CoresPerNode, cfg.Nodes(), rng), router.ClassData, 0)
			}
		}
		net.Step()
	}
	if left := net.Drain(50_000); left != 0 {
		t.Fatalf("%d flits stuck (deadlock?)", left)
	}
	st := net.Stats()
	if st.Delivered != st.Injected {
		t.Fatalf("delivered %d of %d", st.Delivered, st.Injected)
	}
}

// TestMeshSaturatesBelowRing: the motivating comparison — the mesh's UR
// saturation (bisection-limited) sits well below the optical ring's
// wave-pipelined channels, and its zero-load latency is higher (multi-hop).
func TestMeshSaturatesBelowRing(t *testing.T) {
	run := func(rate float64) Result {
		net := newNet(t, nil)
		cfg := net.Config()
		rng := sim.NewRNG(3)
		ur := traffic.UniformRandom{}
		w := net.Window()
		for cyc := int64(0); cyc < w.Warmup+w.Measure; cyc++ {
			for c := 0; c < cfg.Cores(); c++ {
				if rng.Bernoulli(rate) {
					net.Inject(c, ur.Dest(c/cfg.CoresPerNode, cfg.Nodes(), rng), router.ClassData, 0)
				}
			}
			net.Step()
		}
		net.Drain(w.Drain)
		return net.Result()
	}
	low := run(0.01)
	// Multi-hop electrical zero-load latency: ~ 2 + 5.33*3 + 1 = 19.
	if low.AvgLatency < 12 || low.AvgLatency > 30 {
		t.Fatalf("zero-load mesh latency %.1f implausible", low.AvgLatency)
	}
	high := run(0.12)
	if high.Throughput > 0.10 {
		t.Fatalf("mesh accepted %.3f pkt/cycle/core at 0.12 — should saturate below the ring's 0.2", high.Throughput)
	}
}

// TestBoundedInjectionQueue: a full injection queue refuses politely.
func TestBoundedInjectionQueue(t *testing.T) {
	net := newNet(t, func(c *Config) { c.InjectionQueueCap = 2 })
	refused := false
	for i := 0; i < 10; i++ {
		if _, ok := net.Inject(0, 63, router.ClassData, 0); !ok {
			refused = true
		}
	}
	if !refused {
		t.Fatal("bounded injection queue never refused")
	}
}

// TestDeterminism: identical runs agree.
func TestDeterminism(t *testing.T) {
	run := func() Result {
		net := newNet(t, nil)
		cfg := net.Config()
		rng := sim.NewRNG(11)
		ur := traffic.UniformRandom{}
		for cyc := 0; cyc < 1500; cyc++ {
			for c := 0; c < cfg.Cores(); c++ {
				if rng.Bernoulli(0.05) {
					net.Inject(c, ur.Dest(c/cfg.CoresPerNode, cfg.Nodes(), rng), router.ClassData, 0)
				}
			}
			net.Step()
		}
		net.Drain(20_000)
		return net.Result()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestAccessorsAndBadInject covers the small API surface.
func TestAccessorsAndBadInject(t *testing.T) {
	net := newNet(t, nil)
	if net.Now() != 0 {
		t.Fatal("fresh network not at cycle 0")
	}
	net.Step()
	if net.Now() != 1 {
		t.Fatal("Now did not advance")
	}
	if net.Window() != (sim.ShortWindow()) {
		t.Fatal("Window accessor wrong")
	}
	for name, f := range map[string]func(){
		"core": func() { net.Inject(net.Config().Cores(), 0, router.ClassData, 0) },
		"node": func() { net.Inject(0, net.Config().Nodes(), router.ClassData, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad Inject did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestEdgeNeighbours: edge routers have no neighbours beyond the grid.
func TestEdgeNeighbours(t *testing.T) {
	net := newNet(t, nil)
	corners := []struct {
		node int
		dirs []Port
	}{
		{0, []Port{North, West}},
		{7, []Port{North, East}},
		{56, []Port{South, West}},
		{63, []Port{South, East}},
	}
	for _, c := range corners {
		r := net.routers[c.node]
		for _, d := range c.dirs {
			if nb := net.neighbour(r, d); nb != -1 {
				t.Errorf("node %d: %v neighbour = %d, want edge", c.node, d, nb)
			}
		}
	}
	if net.neighbour(net.routers[0], Local) != -1 {
		t.Error("Local has no neighbour")
	}
	if opposite(Local) != Local {
		t.Error("opposite(Local) wrong")
	}
}

// TestPortLabels covers the Stringer.
func TestPortLabels(t *testing.T) {
	want := map[Port]string{North: "N", South: "S", East: "E", West: "W", Local: "L", Port(9): "?"}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("Port(%d) = %q", int(p), p.String())
		}
	}
}

// TestTornadoOnMesh exercises non-minimal-distance permutation traffic on
// the grid and checks math.IsNaN never leaks into results.
func TestTornadoOnMesh(t *testing.T) {
	net := newNet(t, nil)
	cfg := net.Config()
	rng := sim.NewRNG(13)
	tor := traffic.Tornado{}
	w := net.Window()
	for cyc := int64(0); cyc < w.Warmup+w.Measure; cyc++ {
		for c := 0; c < cfg.Cores(); c++ {
			if rng.Bernoulli(0.02) {
				net.Inject(c, tor.Dest(c/cfg.CoresPerNode, cfg.Nodes(), rng), router.ClassData, 0)
			}
		}
		net.Step()
	}
	net.Drain(w.Drain + 20_000)
	res := net.Result()
	if math.IsNaN(res.AvgLatency) || res.Delivered == 0 || res.Unfinished != 0 {
		t.Fatalf("bad result: %+v", res)
	}
}
