package traffic

import (
	"fmt"
	"math"

	"photon/internal/sim"
)

// ClientMap models the client side of a serving workload: N logical
// clients (think millions of users) hashed onto the cores that inject on
// their behalf. A uniform hash reproduces per-core homogeneity, so the
// interesting knob is the hot cohort: a fraction Hot of the clients is
// pinned onto HotCores cores (chosen by a seeded permutation, not always
// cores 0..k, so hotspot position interacts honestly with ring geometry).
//
// The map resolves to one weight per core — that core's share of the
// client population relative to a uniform spread, averaging 1 across
// cores — and arrival processes scale their per-core rate by it. A core
// hosting 3x its fair share of clients injects at 3x the nominal rate
// (clamped at 1 packet/cycle by the Bernoulli draw). Hashing is fully
// deterministic in (spec, seed, cores): tapes, replays and differential
// runs all see the same skew.
type ClientMap struct {
	N        int64   // logical client population
	Hot      float64 // fraction of clients in the hot cohort
	HotCores int     // cores the hot cohort is pinned onto
}

// maxClients bounds the hashed population (64M hashes resolve in well
// under a second; a fuzzed spec must not demand more).
const maxClients = 1 << 26

// Validate rejects malformed client maps.
func (cm *ClientMap) Validate() error {
	if cm.N < 1 || cm.N > maxClients {
		return fmt.Errorf("traffic: client population %d outside [1,%d]", cm.N, maxClients)
	}
	if math.IsNaN(cm.Hot) || cm.Hot < 0 || cm.Hot > 1 {
		return fmt.Errorf("traffic: hot-client fraction %g outside [0,1]", cm.Hot)
	}
	if cm.HotCores < 0 || cm.HotCores > 1<<20 {
		return fmt.Errorf("traffic: hot core count %d outside [0,%d]", cm.HotCores, 1<<20)
	}
	if cm.Hot > 0 && cm.HotCores < 1 {
		return fmt.Errorf("traffic: hot fraction %g needs at least one hot core", cm.Hot)
	}
	return nil
}

// String renders the canonical spec form.
func (cm *ClientMap) String() string {
	return fmt.Sprintf("clients(n=%d,hot=%g,cores=%d)", cm.N, cm.Hot, cm.HotCores)
}

// clientStream is the DeriveSeed stream id reserved for client hashing,
// so the map's randomness never aliases the per-core injection streams.
const clientStream = 0xC11E57

// Weights hashes the client population onto cores and returns the
// per-core rate multipliers (mean exactly 1 over cores with uniform
// residue handling; a zero-client core gets weight 0). HotCores is
// clamped to the actual core count.
func (cm *ClientMap) Weights(cores int, seed uint64) []float64 {
	counts := make([]int64, cores)
	hotCores := cm.HotCores
	if hotCores > cores {
		hotCores = cores
	}
	rng := sim.NewRNG(sim.DeriveSeed(seed, clientStream))
	hot := rng.Perm(cores)[:hotCores]
	for i := int64(0); i < cm.N; i++ {
		h := sim.DeriveSeed(seed^0xC11E, uint64(i))
		// Top 53 bits as a uniform [0,1) variate decide cohort
		// membership (the same mapping sim.RNG.Float64 uses).
		if hotCores > 0 && float64(h>>11)/(1<<53) < cm.Hot {
			counts[hot[sim.DeriveSeed(h, 1)%uint64(hotCores)]]++
		} else {
			counts[int(sim.DeriveSeed(h, 2)%uint64(cores))]++
		}
	}
	fair := float64(cm.N) / float64(cores)
	weights := make([]float64, cores)
	for c, n := range counts {
		weights[c] = float64(n) / fair
	}
	return weights
}
