package traffic

import (
	"fmt"

	"photon/internal/core"
	"photon/internal/router"
)

// A Tape is a pre-generated injection schedule: the exact (cycle, core,
// destination) sequence an injector would produce for one
// (workload, pattern, seed) triple. Tapes make traffic a first-class
// value that can be replayed, unchanged, through networks running
// *different* schemes — the basis of the differential tests in
// internal/check, which must prove that two schemes saw byte-identical
// offered traffic before comparing their packet accounting.
//
// Because RecordTape and Injector.Tick share one generation routine
// (Injector.generate), replaying a tape through a network is
// bit-equivalent to driving it live with the injector it was recorded
// from; TestTapeMatchesInjector pins that equivalence. Generalized
// workloads (phased schedules, bursty/flash arrivals, client skew)
// record exactly the same way: the tape captures the realized draw
// sequence, so replay needs no workload state at all.
type Tape struct {
	// Pattern/Rate/Seed identify the generator the tape was recorded from.
	Pattern string
	Rate    float64
	Seed    uint64

	// Workload is the canonical workload spec the tape was recorded from
	// (a single bernoulli(rate=...) phase for legacy tapes).
	// Informational: replay never re-evaluates it.
	Workload string

	// Nodes/CoresPerNode fix the geometry the entries are valid for.
	Nodes        int
	CoresPerNode int

	// Cycles is the recorded horizon: entries cover cycles [0, Cycles).
	Cycles int64

	// Entries are the injections in nondecreasing cycle order.
	Entries []TapeEntry
}

// TapeEntry is one scheduled injection.
type TapeEntry struct {
	Cycle int64
	Core  int
	Dst   int
}

// RecordTape pre-generates cycles worth of injections for the given
// pattern, per-core Bernoulli rate and seed.
func RecordTape(pattern Pattern, rate float64, nodes, coresPerNode int, seed uint64, cycles int64) (*Tape, error) {
	in, err := NewInjector(pattern, rate, nodes, coresPerNode, seed)
	if err != nil {
		return nil, err
	}
	return record(in, seed, cycles)
}

// RecordWorkloadTape pre-generates cycles worth of injections for a
// generalized workload. The schedule is bound to the recorded horizon, so
// a tape replayed through a window whose injection span equals cycles is
// bit-identical to driving that window live.
func RecordWorkloadTape(w *Workload, pattern Pattern, nodes, coresPerNode int, seed uint64, cycles int64) (*Tape, error) {
	in, err := NewWorkloadInjector(w, pattern, nodes, coresPerNode, seed)
	if err != nil {
		return nil, err
	}
	return record(in, seed, cycles)
}

// record drains the injector's generator into a tape.
func record(in *Injector, seed uint64, cycles int64) (*Tape, error) {
	if cycles < 0 {
		return nil, fmt.Errorf("traffic: negative tape length %d", cycles)
	}
	t := &Tape{
		Pattern:      in.pattern.Name(),
		Rate:         in.Rate(),
		Seed:         seed,
		Nodes:        in.nodes,
		CoresPerNode: in.coresPerNode,
		Cycles:       cycles,
		Workload:     in.workload.String(),
	}
	in.Prepare(cycles)
	for cyc := int64(0); cyc < cycles; cyc++ {
		c := cyc
		in.generate(func(core, dst int) {
			t.Entries = append(t.Entries, TapeEntry{Cycle: c, Core: core, Dst: dst})
		})
	}
	return t, nil
}

// Compatible reports whether the tape's geometry matches cfg.
func (t *Tape) Compatible(cfg core.Config) error {
	if cfg.Nodes != t.Nodes || cfg.CoresPerNode != t.CoresPerNode {
		return fmt.Errorf("traffic: tape recorded for %dx%d, network is %dx%d",
			t.Nodes, t.CoresPerNode, cfg.Nodes, cfg.CoresPerNode)
	}
	return nil
}

// Run replays the tape through net over its window — entries are injected
// at their recorded cycles during warmup+measure, then the network runs
// its drain phase — and returns the result. The tape must cover the
// window's injection span (warmup+measure cycles); a shorter tape is an
// error because the run would silently under-offer load.
func (t *Tape) Run(net *core.Network) (core.Result, error) {
	if err := t.Compatible(net.Config()); err != nil {
		return core.Result{}, err
	}
	w := net.Window()
	if span := w.Warmup + w.Measure; t.Cycles < span {
		return core.Result{}, fmt.Errorf("traffic: tape covers %d cycles, window injects for %d", t.Cycles, span)
	}
	i := 0
	span := w.Warmup + w.Measure
	for cyc := int64(0); cyc < span; {
		for i < len(t.Entries) && t.Entries[i].Cycle == cyc {
			e := t.Entries[i]
			net.Inject(e.Core, e.Dst, router.ClassData, 0)
			i++
		}
		net.Step()
		cyc++
		// Cover the gap to the next recorded injection (or the span end)
		// with one RunCycles call: bit-identical to stepping it, but a
		// sparse tape lets the idle fast path skip the dead cycles.
		next := span
		if i < len(t.Entries) && t.Entries[i].Cycle < span {
			next = t.Entries[i].Cycle
		}
		if next > cyc {
			net.RunCycles(next - cyc)
			cyc = next
		}
	}
	net.RunCycles(w.Drain)
	return net.Result(), nil
}
