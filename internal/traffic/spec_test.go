package traffic_test

import (
	"reflect"
	"strings"
	"testing"

	"photon/internal/traffic"
)

// TestWorkloadSpecRoundTrip pins the canonical form: parsing a spec and
// rendering it back must be a fixed point (ParseWorkload ∘ String = id),
// including non-canonical input spellings collapsing onto the canonical
// one.
func TestWorkloadSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical; "" means in is already canonical
	}{
		{"bernoulli(rate=0.1)", ""},
		{"burst(rate=0.3,on=400,off=1200)", ""},
		{"flash(base=0.04,peak=0.32,at=0.5,width=0.15)|clients(n=1000000,hot=0.25,cores=4)", ""},
		{"0.25@bernoulli(rate=0.05);0.55@diurnal(mean=0.11,amp=0.8,period=2500);0.2@bernoulli(rate=0.03)", ""},
		{"500c@bernoulli(rate=0.2);0.5@burst(rate=0.4,on=100,off=300);0.5@bernoulli(rate=0.01)", ""},
		// Whitespace, parameter order and redundant duration collapse.
		{" bernoulli( rate = 0.1 ) ", "bernoulli(rate=0.1)"},
		{"burst(off=1200,rate=0.3,on=400)", "burst(rate=0.3,on=400,off=1200)"},
		{"1@bernoulli(rate=0.1)", "bernoulli(rate=0.1)"},
		// Flash defaults materialize in the canonical form.
		{"flash(base=0.05,peak=0.4)", "flash(base=0.05,peak=0.4,at=0.5,width=0.1)"},
		{"bernoulli(rate=0.1)|clients(n=100)", "bernoulli(rate=0.1)|clients(n=100,hot=0,cores=1)"},
	}
	for _, tc := range cases {
		w, err := traffic.ParseWorkload(tc.in)
		if err != nil {
			t.Errorf("ParseWorkload(%q): %v", tc.in, err)
			continue
		}
		want := tc.want
		if want == "" {
			want = tc.in
		}
		got := w.String()
		if got != want {
			t.Errorf("ParseWorkload(%q).String() = %q, want %q", tc.in, got, want)
			continue
		}
		again, err := traffic.ParseWorkload(got)
		if err != nil {
			t.Errorf("canonical form %q does not reparse: %v", got, err)
			continue
		}
		if !reflect.DeepEqual(w, again) {
			t.Errorf("round trip of %q changed the workload", tc.in)
		}
	}
}

// TestWorkloadSpecErrors pins the reject paths: every malformed spec
// must produce an error mentioning the offending piece, never a panic or
// a silently-defaulted workload.
func TestWorkloadSpecErrors(t *testing.T) {
	cases := []struct {
		in      string
		errPart string
	}{
		{"", "empty workload spec"},
		{"bernoulli", "expected name(params)"},
		{"bernoulli()", `missing required parameter "rate"`},
		{"bernoulli(rate=2)", "outside [0,1]"},
		{"bernoulli(rate=0.1,rate=0.2)", "duplicate parameter"},
		{"bernoulli(rate=0.1,bogus=3)", `unknown parameter "bogus"`},
		{"mystery(rate=0.1)", "unknown arrival process"},
		{"bernoulli(rate=0.1);bernoulli(rate=0.2)", "needs a duration on every phase"},
		{"0.5@bernoulli(rate=0.1);0.7@bernoulli(rate=0.2)", ""}, // fractions may overshoot: shares are proportional
		{"0c@bernoulli(rate=0.1);1@bernoulli(rate=0.1)", "must be >= 1"},
		{"-0.3@bernoulli(rate=0.1);1@bernoulli(rate=0.1)", "outside (0,1]"},
		{"x@bernoulli(rate=0.1)", "bad duration"},
		{"burst(rate=0.3,on=0.5,off=10)", "outside [1,"},
		{"diurnal(mean=0.9,amp=0.5,period=100)", "exceeds 1"},
		{"bernoulli(rate=0.1)|clients(hot=0.5)", `missing required parameter "n"`},
		{"bernoulli(rate=0.1)|clients(n=0)", "outside [1,"},
		{"bernoulli(rate=0.1)|clients(n=100,hot=0.5,cores=0)", "at least one hot core"},
		{"bernoulli(rate=0.1)|hotspot(n=100)", "expected clients"},
	}
	for _, tc := range cases {
		_, err := traffic.ParseWorkload(tc.in)
		if tc.errPart == "" {
			if err != nil {
				t.Errorf("ParseWorkload(%q) unexpectedly failed: %v", tc.in, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseWorkload(%q) succeeded, want error containing %q", tc.in, tc.errPart)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("ParseWorkload(%q) = %v, want error containing %q", tc.in, err, tc.errPart)
		}
	}
}

// TestPresetWorkloadsParse pins that every named preset is valid and
// already written in canonical form — the preset table doubles as
// documentation of the grammar, so it must not drift from it.
func TestPresetWorkloadsParse(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range traffic.PresetWorkloads() {
		if seen[p.Name] {
			t.Errorf("duplicate preset name %q", p.Name)
		}
		seen[p.Name] = true
		w, err := traffic.ParseWorkload(p.Spec)
		if err != nil {
			t.Errorf("preset %s: %v", p.Name, err)
			continue
		}
		if got := w.String(); got != p.Spec {
			t.Errorf("preset %s is not canonical: spec %q, canonical %q", p.Name, p.Spec, got)
		}
		byName, spec, err := traffic.PresetWorkload(p.Name)
		if err != nil || spec != p.Spec || !reflect.DeepEqual(byName, w) {
			t.Errorf("PresetWorkload(%q) did not resolve the preset (err %v)", p.Name, err)
		}
	}
	if len(seen) < 3 {
		t.Fatalf("want at least 3 presets (bursty, flash, diurnal), got %d", len(seen))
	}
	// Raw specs resolve too, with the canonical form echoed back.
	if _, spec, err := traffic.PresetWorkload("bernoulli(rate=0.25)"); err != nil || spec != "bernoulli(rate=0.25)" {
		t.Errorf("PresetWorkload on a raw spec: spec %q, err %v", spec, err)
	}
	if _, _, err := traffic.PresetWorkload("no-such-preset"); err == nil {
		t.Error("PresetWorkload accepted garbage")
	}
}

// FuzzWorkloadSpec hammers the spec parser. Contract: ParseWorkload
// either errors or returns a validated workload whose canonical string
// form reparses to the bit-identical workload, and whose schedule
// resolves totally (monotone bounds ending exactly at the span) for any
// span.
func FuzzWorkloadSpec(f *testing.F) {
	for _, p := range traffic.PresetWorkloads() {
		f.Add(p.Spec)
	}
	f.Add("bernoulli(rate=0.1)")
	f.Add("500c@bernoulli(rate=0.2);0.5@burst(rate=0.4,on=100,off=300);0.5@bernoulli(rate=0.01)")
	f.Add("1e300@bernoulli(rate=0.1)")
	f.Add("bernoulli(rate=NaN)")
	f.Add("9223372036854775807c@bernoulli(rate=1)")
	f.Add("bernoulli(rate=0.1)|clients(n=1e18)")
	f.Add(";;;|||")
	f.Fuzz(func(t *testing.T, spec string) {
		w, err := traffic.ParseWorkload(spec)
		if err != nil {
			return // rejected up front — the fail-fast contract is met
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("ParseWorkload(%q) returned an invalid workload: %v", spec, err)
		}
		canon := w.String()
		again, err := traffic.ParseWorkload(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, spec, err)
		}
		if !reflect.DeepEqual(w, again) {
			t.Fatalf("round trip of %q via %q changed the workload", spec, canon)
		}
		if c2 := again.String(); c2 != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", canon, c2)
		}
		for _, span := range []int64{0, 1, 63, 5000} {
			bounds := w.Resolve(span)
			if len(bounds) != len(w.Segments) {
				t.Fatalf("Resolve(%d) returned %d bounds for %d segments", span, len(bounds), len(w.Segments))
			}
			at := int64(0)
			for _, b := range bounds {
				if b < at || b > span {
					t.Fatalf("Resolve(%d) bounds %v are not monotone within the span", span, bounds)
				}
				at = b
			}
			if bounds[len(bounds)-1] != span {
				t.Fatalf("Resolve(%d) ends at %d, not the span", span, bounds[len(bounds)-1])
			}
		}
	})
}
