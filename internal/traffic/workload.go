package traffic

import (
	"fmt"
	"math"

	"photon/internal/sim"
)

// This file is the arrival layer of the Workload subsystem: the paper's
// single fixed-rate Bernoulli injector, generalised into pluggable
// open-loop arrival processes composed into phased schedules (see
// DESIGN.md "Workload layer"). The layering:
//
//	ArrivalSpec — immutable, validated description of one arrival
//	              process (parsed from the workload spec grammar);
//	Arrival     — that process instantiated for one run: per-core state,
//	              one Draw per (core, cycle) on the core's private RNG;
//	Segment     — an ArrivalSpec plus a duration (fraction of the
//	              injection span, or absolute cycles);
//	Workload    — an ordered list of Segments plus an optional ClientMap
//	              skewing per-core rates by hashed client population.
//
// Digest-compatibility contract: BernoulliSpec instantiated with weight
// 1.0 consumes exactly one rng.Bernoulli(rate) per core per cycle —
// bit-identical to the pre-workload injector — so every pinned quick-grid,
// chaos and golden digest reproduces unchanged through this layer
// (TestWorkloadBernoulliCompat pins it). Draw implementations must not
// allocate: the injection tick sits on the engine's zero-alloc hot path
// (TestGenerateZeroAlloc).

// Arrival is one instantiated arrival process. Draw returns how many
// packets core c injects this cycle; t is the cycle offset within the
// current schedule segment and w the core's ClientMap weight (1 when the
// workload carries no client skew). Draws use only c's private RNG
// stream, so results are insensitive to core iteration order.
type Arrival interface {
	Draw(c int, t int64, w float64, rng *sim.RNG) int
}

// ArrivalSpec is the immutable description of an arrival process. A spec
// is shared freely (workloads are parsed once and reused across runs);
// all mutable per-run state lives in the Arrival returned by New.
type ArrivalSpec interface {
	// Kind is the process name in the spec grammar.
	Kind() string
	// MeanRate is the expected long-run injection rate in
	// packets/cycle/core (the value the binomial-tolerance property test
	// checks realized schedules against).
	MeanRate() float64
	// Validate rejects out-of-range parameters.
	Validate() error
	// New instantiates the process for one run segment: cores independent
	// state slots, span resolved segment length in cycles.
	New(cores int, span int64) Arrival
	// canonParams returns the canonical "k=v,..." parameter string; the
	// spec grammar round-trips through it (ParseWorkload ∘ String = id).
	canonParams() string
}

// maxDuration caps mean regime durations and periods so fuzzed specs
// cannot demand astronomically long schedules.
const maxDuration = 1e9

// BernoulliSpec is the paper's traffic model: every cycle, every core
// injects independently with probability Rate. It is the digest-identical
// default the legacy NewInjector routes through.
type BernoulliSpec struct {
	Rate float64
}

// Kind implements ArrivalSpec.
func (s BernoulliSpec) Kind() string { return "bernoulli" }

// MeanRate implements ArrivalSpec.
func (s BernoulliSpec) MeanRate() float64 { return s.Rate }

// Validate implements ArrivalSpec.
func (s BernoulliSpec) Validate() error {
	if math.IsNaN(s.Rate) || s.Rate < 0 || s.Rate > 1 {
		return fmt.Errorf("traffic: rate %g outside [0,1] packets/cycle/core", s.Rate)
	}
	return nil
}

func (s BernoulliSpec) canonParams() string { return fmt.Sprintf("rate=%g", s.Rate) }

// New implements ArrivalSpec.
func (s BernoulliSpec) New(cores int, span int64) Arrival { return bernoulliArrival{rate: s.Rate} }

type bernoulliArrival struct{ rate float64 }

func (a bernoulliArrival) Draw(c int, t int64, w float64, rng *sim.RNG) int {
	// w == 1 keeps rate*w bit-identical to rate (IEEE multiplication by
	// 1.0 is exact), preserving the pre-workload digest stream.
	if rng.Bernoulli(a.rate * w) {
		return 1
	}
	return 0
}

// BurstSpec is a two-state on/off (MMPP-2-style) source: each core
// alternates between an ON regime, where it injects Bernoulli(Rate), and
// a silent OFF regime. Regime durations are geometric with means On and
// Off cycles, drawn per core, so cores burst independently — the bursty
// cohort traffic under which admission fairness and handshake backpressure
// actually differentiate (cf. PAPERS.md, arXiv 1512.04106).
type BurstSpec struct {
	Rate float64 // injection probability while ON
	On   float64 // mean ON duration, cycles
	Off  float64 // mean OFF duration, cycles
}

// Kind implements ArrivalSpec.
func (s BurstSpec) Kind() string { return "burst" }

// MeanRate implements ArrivalSpec.
func (s BurstSpec) MeanRate() float64 { return s.Rate * s.On / (s.On + s.Off) }

// Validate implements ArrivalSpec.
func (s BurstSpec) Validate() error {
	if math.IsNaN(s.Rate) || s.Rate < 0 || s.Rate > 1 {
		return fmt.Errorf("traffic: burst rate %g outside [0,1]", s.Rate)
	}
	if math.IsNaN(s.On) || s.On < 1 || s.On > maxDuration {
		return fmt.Errorf("traffic: burst mean ON duration %g outside [1,%g]", s.On, float64(maxDuration))
	}
	if math.IsNaN(s.Off) || s.Off < 1 || s.Off > maxDuration {
		return fmt.Errorf("traffic: burst mean OFF duration %g outside [1,%g]", s.Off, float64(maxDuration))
	}
	return nil
}

func (s BurstSpec) canonParams() string {
	return fmt.Sprintf("rate=%g,on=%g,off=%g", s.Rate, s.On, s.Off)
}

// New implements ArrivalSpec.
func (s BurstSpec) New(cores int, span int64) Arrival {
	return &burstArrival{spec: s, st: make([]burstState, cores)}
}

type burstState struct {
	started bool
	on      bool
	left    int64
}

type burstArrival struct {
	spec BurstSpec
	st   []burstState
}

// regime draws a fresh regime duration (>= 1 cycle, geometric with the
// given mean).
func regime(mean float64, rng *sim.RNG) int64 {
	return 1 + rng.Geometric(1/mean)
}

func (a *burstArrival) Draw(c int, t int64, w float64, rng *sim.RNG) int {
	s := &a.st[c]
	if !s.started {
		// Start each core in a random regime weighted by the duty cycle,
		// so the source is stationary from cycle 0 (no synchronized
		// all-ON transient).
		s.started = true
		s.on = rng.Bernoulli(a.spec.On / (a.spec.On + a.spec.Off))
		if s.on {
			s.left = regime(a.spec.On, rng)
		} else {
			s.left = regime(a.spec.Off, rng)
		}
	}
	for s.left == 0 {
		s.on = !s.on
		if s.on {
			s.left = regime(a.spec.On, rng)
		} else {
			s.left = regime(a.spec.Off, rng)
		}
	}
	s.left--
	if s.on && rng.Bernoulli(a.spec.Rate*w) {
		return 1
	}
	return 0
}

// FlashSpec is a flash-crowd profile: Bernoulli at Base, spiking to Peak
// for the window [At, At+Width) expressed as fractions of the segment —
// the "everyone refreshes at once" shape of serving workloads.
type FlashSpec struct {
	Base  float64 // rate outside the spike
	Peak  float64 // rate inside the spike
	At    float64 // spike start, fraction of the segment
	Width float64 // spike width, fraction of the segment
}

// Kind implements ArrivalSpec.
func (s FlashSpec) Kind() string { return "flash" }

// MeanRate implements ArrivalSpec.
func (s FlashSpec) MeanRate() float64 {
	width := s.Width
	if s.At+width > 1 {
		width = 1 - s.At // the spike clips at the segment end
	}
	return s.Base + (s.Peak-s.Base)*width
}

// Validate implements ArrivalSpec.
func (s FlashSpec) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"base", s.Base}, {"peak", s.Peak}, {"at", s.At}} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("traffic: flash %s %g outside [0,1]", p.name, p.v)
		}
	}
	if math.IsNaN(s.Width) || s.Width <= 0 || s.Width > 1 {
		return fmt.Errorf("traffic: flash width %g outside (0,1]", s.Width)
	}
	return nil
}

func (s FlashSpec) canonParams() string {
	return fmt.Sprintf("base=%g,peak=%g,at=%g,width=%g", s.Base, s.Peak, s.At, s.Width)
}

// New implements ArrivalSpec.
func (s FlashSpec) New(cores int, span int64) Arrival {
	from := int64(s.At * float64(span))
	to := int64((s.At + s.Width) * float64(span))
	return flashArrival{base: s.Base, peak: s.Peak, from: from, to: to}
}

type flashArrival struct {
	base, peak float64
	from, to   int64
}

func (a flashArrival) Draw(c int, t int64, w float64, rng *sim.RNG) int {
	rate := a.base
	if t >= a.from && t < a.to {
		rate = a.peak
	}
	if rng.Bernoulli(rate * w) {
		return 1
	}
	return 0
}

// DiurnalSpec modulates a Bernoulli source sinusoidally around Mean with
// relative amplitude Amp and the given period in cycles — the compressed
// day/night demand curve of a serving fleet. The instantaneous rate is
// clamped to [0,1].
type DiurnalSpec struct {
	Mean   float64 // average rate
	Amp    float64 // relative amplitude in [0,1]
	Period float64 // cycles per full oscillation
}

// Kind implements ArrivalSpec.
func (s DiurnalSpec) Kind() string { return "diurnal" }

// MeanRate implements ArrivalSpec.
func (s DiurnalSpec) MeanRate() float64 { return s.Mean }

// Validate implements ArrivalSpec.
func (s DiurnalSpec) Validate() error {
	if math.IsNaN(s.Mean) || s.Mean < 0 || s.Mean > 1 {
		return fmt.Errorf("traffic: diurnal mean %g outside [0,1]", s.Mean)
	}
	if math.IsNaN(s.Amp) || s.Amp < 0 || s.Amp > 1 {
		return fmt.Errorf("traffic: diurnal amplitude %g outside [0,1]", s.Amp)
	}
	if math.IsNaN(s.Period) || s.Period < 2 || s.Period > maxDuration {
		return fmt.Errorf("traffic: diurnal period %g outside [2,%g]", s.Period, float64(maxDuration))
	}
	if s.Mean*(1+s.Amp) > 1 {
		return fmt.Errorf("traffic: diurnal peak rate %g exceeds 1 (mean %g, amp %g)", s.Mean*(1+s.Amp), s.Mean, s.Amp)
	}
	return nil
}

func (s DiurnalSpec) canonParams() string {
	return fmt.Sprintf("mean=%g,amp=%g,period=%g", s.Mean, s.Amp, s.Period)
}

// New implements ArrivalSpec.
func (s DiurnalSpec) New(cores int, span int64) Arrival {
	return diurnalArrival{mean: s.Mean, amp: s.Amp, omega: 2 * math.Pi / s.Period}
}

type diurnalArrival struct {
	mean, amp, omega float64
}

func (a diurnalArrival) Draw(c int, t int64, w float64, rng *sim.RNG) int {
	rate := a.mean * (1 + a.amp*math.Sin(a.omega*float64(t)))
	if rate < 0 {
		rate = 0
	}
	if rng.Bernoulli(rate * w) {
		return 1
	}
	return 0
}

// Segment is one phase of a schedule: an arrival process active for a
// duration given either as a fraction of the injection span (Frac > 0) or
// as absolute cycles (Cycles > 0). Exactly one of the two is set; a
// single-segment workload conventionally uses Frac = 1.
type Segment struct {
	Frac   float64
	Cycles int64
	Proc   ArrivalSpec
}

// validate rejects malformed segment durations and processes.
func (s Segment) validate() error {
	switch {
	case s.Proc == nil:
		return fmt.Errorf("traffic: segment with nil arrival process")
	case s.Frac > 0 && s.Cycles > 0:
		return fmt.Errorf("traffic: segment sets both fraction %g and cycles %d", s.Frac, s.Cycles)
	case s.Frac == 0 && s.Cycles == 0:
		return fmt.Errorf("traffic: segment with no duration")
	case s.Frac != 0 && (math.IsNaN(s.Frac) || s.Frac < 0 || s.Frac > 1):
		return fmt.Errorf("traffic: segment fraction %g outside (0,1]", s.Frac)
	case s.Cycles < 0 || s.Cycles > int64(maxDuration):
		return fmt.Errorf("traffic: segment cycles %d outside [1,%g]", s.Cycles, float64(maxDuration))
	}
	return s.Proc.Validate()
}

// maxSegments bounds a schedule's phase count (fuzz guard).
const maxSegments = 64

// Workload is a complete traffic description: a phased schedule of
// arrival processes plus an optional client population skewing per-core
// rates. The zero-config equivalent of the legacy injector is a single
// full-span Bernoulli segment and a nil ClientMap.
type Workload struct {
	Segments []Segment
	Clients  *ClientMap
}

// Bernoulli returns the workload equivalent of the legacy fixed-rate
// injector: one full-span Bernoulli segment, no client skew.
func Bernoulli(rate float64) *Workload {
	return &Workload{Segments: []Segment{{Frac: 1, Proc: BernoulliSpec{Rate: rate}}}}
}

// Validate rejects malformed workloads.
func (w *Workload) Validate() error {
	if len(w.Segments) == 0 {
		return fmt.Errorf("traffic: workload with no segments")
	}
	if len(w.Segments) > maxSegments {
		return fmt.Errorf("traffic: workload with %d segments (max %d)", len(w.Segments), maxSegments)
	}
	for i, s := range w.Segments {
		if err := s.validate(); err != nil {
			return fmt.Errorf("segment %d: %w", i+1, err)
		}
	}
	if w.Clients != nil {
		if err := w.Clients.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MeanRate returns the schedule's expected packets/cycle/core over an
// injection span of the given length (segment means weighted by resolved
// segment lengths). The ClientMap preserves the mean by construction
// (weights average 1) except where skewed per-core rates clamp at 1.
func (w *Workload) MeanRate(span int64) float64 {
	if span <= 0 {
		return 0
	}
	bounds := w.Resolve(span)
	var sum float64
	from := int64(0)
	for i, to := range bounds {
		sum += float64(to-from) * w.Segments[i].Proc.MeanRate()
		from = to
	}
	return sum / float64(span)
}

// Resolve maps the schedule onto an injection span of the given length,
// returning the exclusive end cycle of each segment (the last entry is
// always span). Fixed-cycle segments claim their cycles in order, clamped
// to what remains; fractional segments share the span left after all
// fixed claims, proportionally to their fractions; the final segment
// absorbs any rounding remainder. The mapping is total — any schedule
// resolves against any span, degenerate segments simply get zero cycles —
// so replaying a workload against a shorter window cannot fail, only
// truncate.
func (w *Workload) Resolve(span int64) []int64 {
	if span < 0 {
		span = 0
	}
	var fixed int64
	var fracSum float64
	for _, s := range w.Segments {
		fixed += s.Cycles
		fracSum += s.Frac
	}
	pool := span - fixed
	if pool < 0 {
		pool = 0
	}
	bounds := make([]int64, len(w.Segments))
	at := int64(0)
	for i, s := range w.Segments {
		var length int64
		if s.Cycles > 0 {
			length = s.Cycles
		} else if fracSum > 0 {
			length = int64(s.Frac / fracSum * float64(pool))
		}
		at += length
		if at > span {
			at = span
		}
		bounds[i] = at
	}
	bounds[len(bounds)-1] = span
	return bounds
}

// String renders the workload in the canonical spec grammar; see
// ParseWorkload. ParseWorkload(w.String()) reproduces w exactly
// (TestWorkloadSpecRoundTrip and FuzzWorkloadSpec pin the round trip).
func (w *Workload) String() string {
	var b []byte
	for i, s := range w.Segments {
		if i > 0 {
			b = append(b, ';')
		}
		if s.Cycles > 0 {
			b = append(b, fmt.Sprintf("%dc@", s.Cycles)...)
		} else if !(len(w.Segments) == 1 && s.Frac == 1) {
			b = append(b, fmt.Sprintf("%g@", s.Frac)...)
		}
		b = append(b, s.Proc.Kind()...)
		b = append(b, '(')
		b = append(b, s.Proc.canonParams()...)
		b = append(b, ')')
	}
	if w.Clients != nil {
		b = append(b, '|')
		b = append(b, w.Clients.String()...)
	}
	return string(b)
}
