package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"photon/internal/core"
	"photon/internal/sim"
)

func TestUniformRandomExcludesSelf(t *testing.T) {
	rng := sim.NewRNG(1)
	p := UniformRandom{}
	counts := make([]int, 8)
	for i := 0; i < 10000; i++ {
		d := p.Dest(3, 8, rng)
		if d == 3 {
			t.Fatal("UR returned the source")
		}
		counts[d]++
	}
	for d, c := range counts {
		if d == 3 {
			continue
		}
		want := 10000.0 / 7
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("dest %d hit %d times, want about %.0f", d, c, want)
		}
	}
}

func TestBitComplement(t *testing.T) {
	p := BitComplement{}
	// For power-of-two node counts this is the bitwise complement.
	for src := 0; src < 64; src++ {
		if got := p.Dest(src, 64, nil); got != (^src)&63 {
			t.Fatalf("BC(%d) = %d, want %d", src, got, (^src)&63)
		}
	}
	// Involution: BC(BC(x)) == x.
	for src := 0; src < 64; src++ {
		if p.Dest(p.Dest(src, 64, nil), 64, nil) != src {
			t.Fatalf("BC not an involution at %d", src)
		}
	}
}

func TestTornadoDistance(t *testing.T) {
	p := Tornado{}
	for src := 0; src < 64; src++ {
		d := p.Dest(src, 64, nil)
		dist := ((d - src) + 64) % 64
		if dist != 31 {
			t.Fatalf("TOR(%d) distance %d, want 31", src, dist)
		}
	}
}

func TestTransposeOnSquare(t *testing.T) {
	p := Transpose{}
	// 64 nodes = 8x8 grid; transpose twice is identity.
	for src := 0; src < 64; src++ {
		if p.Dest(p.Dest(src, 64, nil), 64, nil) != src {
			t.Fatalf("TP not an involution at %d", src)
		}
	}
	// (x,y) -> (y,x): node 1 = (1,0) -> (0,1) = node 8.
	if p.Dest(1, 64, nil) != 8 {
		t.Fatalf("TP(1) = %d, want 8", p.Dest(1, 64, nil))
	}
}

func TestNeighbor(t *testing.T) {
	p := Neighbor{}
	if p.Dest(63, 64, nil) != 0 || p.Dest(0, 64, nil) != 1 {
		t.Fatal("NBR wraparound wrong")
	}
}

func TestHotspotConcentration(t *testing.T) {
	rng := sim.NewRNG(2)
	p := Hotspot{Hot: 5, Fraction: 0.5}
	hot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if p.Dest(0, 64, rng) == 5 {
			hot++
		}
	}
	got := float64(hot) / draws
	// 0.5 direct plus 0.5/63 from the uniform remainder.
	want := 0.5 + 0.5/63
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("hot fraction %.3f, want about %.3f", got, want)
	}
}

func TestAllPatternsInRange(t *testing.T) {
	rng := sim.NewRNG(3)
	pats := []Pattern{UniformRandom{}, BitComplement{}, Tornado{}, Transpose{}, Neighbor{}, Hotspot{Hot: 1, Fraction: 0.3}}
	f := func(srcRaw uint8) bool {
		src := int(srcRaw) % 64
		for _, p := range pats {
			d := p.Dest(src, 64, rng)
			if d < 0 || d >= 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"UR", "BC", "TOR", "TP", "NBR", "ur", "tornado"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown pattern accepted")
	}
	if len(PaperPatterns()) != 3 {
		t.Error("PaperPatterns should return UR, BC, TOR")
	}
}

func TestInjectorValidation(t *testing.T) {
	if _, err := NewInjector(UniformRandom{}, -0.1, 64, 4, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewInjector(UniformRandom{}, 1.5, 64, 4, 1); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := NewInjector(nil, 0.1, 64, 4, 1); err == nil {
		t.Error("nil pattern accepted")
	}
}

func TestInjectorRateAccuracy(t *testing.T) {
	cfg := core.DefaultConfig(core.DHSSetaside)
	net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 5000, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(UniformRandom{}, 0.05, cfg.Nodes, cfg.CoresPerNode, 9)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 5000
	for i := 0; i < cycles; i++ {
		inj.Tick(net)
		net.Step()
	}
	got := float64(net.Stats().Injected) / float64(cycles) / float64(cfg.Cores())
	if math.Abs(got-0.05) > 0.002 {
		t.Fatalf("injected rate %.4f, want 0.05", got)
	}
}

func TestInjectorStop(t *testing.T) {
	cfg := core.DefaultConfig(core.TokenSlot)
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(UniformRandom{}, 0.5, cfg.Nodes, cfg.CoresPerNode, 9)
	if err != nil {
		t.Fatal(err)
	}
	inj.Stop()
	for i := 0; i < 100; i++ {
		inj.Tick(net)
		net.Step()
	}
	if net.Stats().Injected != 0 {
		t.Fatalf("stopped injector injected %d packets", net.Stats().Injected)
	}
}

func TestInjectorAccessors(t *testing.T) {
	inj, err := NewInjector(Tornado{}, 0.07, 64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Rate() != 0.07 || inj.Pattern().Name() != "TOR" {
		t.Fatal("accessors wrong")
	}
}
