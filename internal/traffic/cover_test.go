package traffic

import (
	"testing"

	"photon/internal/core"
	"photon/internal/sim"
)

func TestPatternNames(t *testing.T) {
	want := map[string]Pattern{
		"UR": UniformRandom{}, "BC": BitComplement{}, "TOR": Tornado{},
		"TP": Transpose{}, "NBR": Neighbor{},
	}
	for label, p := range want {
		if p.Name() != label {
			t.Errorf("%T.Name() = %q, want %q", p, p.Name(), label)
		}
	}
	hs := Hotspot{Hot: 3, Fraction: 0.25}
	if hs.Name() != "HS3@25%" {
		t.Errorf("hotspot label %q", hs.Name())
	}
}

func TestTransposeFallbackNonSquare(t *testing.T) {
	p := Transpose{}
	// 48 nodes is not a perfect square: the fallback must stay in range
	// and remain an involution.
	for src := 0; src < 48; src++ {
		d := p.Dest(src, 48, nil)
		if d < 0 || d >= 48 {
			t.Fatalf("TP(%d) = %d out of range", src, d)
		}
		if p.Dest(d, 48, nil) != src {
			t.Fatalf("fallback not an involution at %d", src)
		}
	}
}

func TestInjectorRunCompletes(t *testing.T) {
	cfg := core.DefaultConfig(core.TokenSlot)
	net, err := core.NewNetwork(cfg, sim.Window{Warmup: 100, Measure: 400, Drain: 400})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(Neighbor{}, 0.03, cfg.Nodes, cfg.CoresPerNode, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := inj.Run(net)
	if res.Delivered == 0 || res.Unfinished != 0 {
		t.Fatalf("Run result: %+v", res)
	}
}

func TestMultiFlitStop(t *testing.T) {
	cfg := core.DefaultConfig(core.DHSSetaside)
	net, err := core.NewNetwork(cfg, sim.ShortWindow())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewMultiFlitInjector(UniformRandom{}, 0.5, 2, cfg.Nodes, cfg.CoresPerNode, 8)
	if err != nil {
		t.Fatal(err)
	}
	inj.Stop()
	for i := 0; i < 50; i++ {
		inj.Tick(net)
		net.Step()
	}
	if inj.MessagesBegun != 0 {
		t.Fatalf("stopped injector began %d messages", inj.MessagesBegun)
	}
}
