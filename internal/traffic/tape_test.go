package traffic_test

import (
	"reflect"
	"testing"

	"photon/internal/core"
	"photon/internal/sim"
	"photon/internal/traffic"
)

func tapeWindow() sim.Window {
	return sim.Window{Warmup: 200, Measure: 600, Drain: 600}
}

// TestTapeMatchesInjector: replaying a recorded tape must be
// bit-equivalent to driving the network live with the injector the tape
// was recorded from — same Result, same digest.
func TestTapeMatchesInjector(t *testing.T) {
	w := tapeWindow()
	cfg := core.DefaultConfig(core.DHSSetaside)
	cfg.Seed = 11

	live, err := core.NewNetwork(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, 0.10, cfg.Nodes, cfg.CoresPerNode, 77)
	if err != nil {
		t.Fatal(err)
	}
	liveRes := inj.Run(live)

	tape, err := traffic.RecordTape(traffic.UniformRandom{}, 0.10, cfg.Nodes, cfg.CoresPerNode, 77, w.Warmup+w.Measure)
	if err != nil {
		t.Fatal(err)
	}
	if len(tape.Entries) == 0 {
		t.Fatal("empty tape at 10% load")
	}
	replayed, err := core.NewNetwork(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	tapeRes, err := tape.Run(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if liveRes.Digest != tapeRes.Digest {
		t.Fatalf("tape digest %016x != live digest %016x", tapeRes.Digest, liveRes.Digest)
	}
	if !reflect.DeepEqual(liveRes, tapeRes) {
		t.Fatalf("tape result diverges from live run:\nlive: %+v\ntape: %+v", liveRes, tapeRes)
	}
}

// TestTapeEntriesOrdered: entries come out in nondecreasing cycle order
// with in-range cores and destinations (the replay loop depends on it).
func TestTapeEntriesOrdered(t *testing.T) {
	tape, err := traffic.RecordTape(traffic.Tornado{}, 0.2, 16, 2, 3, 500)
	if err != nil {
		t.Fatal(err)
	}
	last := int64(0)
	for _, e := range tape.Entries {
		if e.Cycle < last {
			t.Fatalf("entry cycle %d after %d", e.Cycle, last)
		}
		last = e.Cycle
		if e.Core < 0 || e.Core >= 32 {
			t.Fatalf("core %d out of range", e.Core)
		}
		if e.Dst < 0 || e.Dst >= 16 {
			t.Fatalf("dst %d out of range", e.Dst)
		}
	}
}

// TestTapeRunRejectsMismatch: wrong geometry and short tapes are errors,
// not silent misbehaviour.
func TestTapeRunRejectsMismatch(t *testing.T) {
	w := tapeWindow()
	cfg := core.DefaultConfig(core.TokenSlot)

	short, err := traffic.RecordTape(traffic.UniformRandom{}, 0.05, cfg.Nodes, cfg.CoresPerNode, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.NewNetwork(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := short.Run(net); err == nil {
		t.Fatal("short tape accepted")
	}

	other, err := traffic.RecordTape(traffic.UniformRandom{}, 0.05, 16, 2, 1, w.Warmup+w.Measure)
	if err != nil {
		t.Fatal(err)
	}
	net2, err := core.NewNetwork(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Run(net2); err == nil {
		t.Fatal("geometry-mismatched tape accepted")
	}
}

// TestInjectorRejectsMalformed: NewInjector must fail fast on the inputs
// the fuzz target explores, never panic.
func TestInjectorRejectsMalformed(t *testing.T) {
	ur := traffic.UniformRandom{}
	nan := 0.0
	nan = nan / nan // quiet NaN without importing math
	cases := []struct {
		name         string
		pattern      traffic.Pattern
		rate         float64
		nodes, cores int
	}{
		{"negative rate", ur, -0.1, 64, 4},
		{"rate above 1", ur, 1.5, 64, 4},
		{"NaN rate", ur, nan, 64, 4},
		{"nil pattern", nil, 0.1, 64, 4},
		{"zero nodes", ur, 0.1, 0, 4},
		{"negative nodes", ur, 0.1, -3, 4},
		{"huge nodes", ur, 0.1, 1 << 30, 4},
		{"zero cores", ur, 0.1, 64, 0},
		{"huge cores", ur, 0.1, 64, 1 << 30},
	}
	for _, c := range cases {
		if _, err := traffic.NewInjector(c.pattern, c.rate, c.nodes, c.cores, 1); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
