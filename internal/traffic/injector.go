package traffic

import (
	"fmt"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/sim"
)

// Injector drives a network with Bernoulli arrivals: every cycle, every
// core independently injects a packet with probability Rate (the paper's
// load axis, packets/cycle/core). Each core owns a private RNG stream so
// results are reproducible and insensitive to core iteration order.
type Injector struct {
	pattern      Pattern
	rate         float64
	nodes        int
	coresPerNode int
	rngs         []*sim.RNG
	stopped      bool
}

// NewInjector builds an injector for the given pattern and per-core rate.
func NewInjector(pattern Pattern, rate float64, nodes, coresPerNode int, seed uint64) (*Injector, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("traffic: rate %g outside [0,1] packets/cycle/core", rate)
	}
	if pattern == nil {
		return nil, fmt.Errorf("traffic: nil pattern")
	}
	cores := nodes * coresPerNode
	root := sim.NewRNG(seed)
	rngs := make([]*sim.RNG, cores)
	for i := range rngs {
		rngs[i] = root.Fork(uint64(i))
	}
	return &Injector{
		pattern:      pattern,
		rate:         rate,
		nodes:        nodes,
		coresPerNode: coresPerNode,
		rngs:         rngs,
	}, nil
}

// Rate returns the configured per-core injection rate.
func (in *Injector) Rate() float64 { return in.rate }

// Pattern returns the destination pattern.
func (in *Injector) Pattern() Pattern { return in.pattern }

// Stop halts further injection (used during the drain phase).
func (in *Injector) Stop() { in.stopped = true }

// Tick performs one cycle of injections into net. Call it immediately
// before net.Step().
func (in *Injector) Tick(net *core.Network) {
	if in.stopped {
		return
	}
	for c, rng := range in.rngs {
		if !rng.Bernoulli(in.rate) {
			continue
		}
		src := c / in.coresPerNode
		dst := in.pattern.Dest(src, in.nodes, rng)
		net.Inject(c, dst, router.ClassData, 0)
	}
}

// Run drives net through its full window (warmup+measure with injection,
// then drain without) and returns the result. This is the standard
// open-loop evaluation loop used by every synthetic-workload experiment.
func (in *Injector) Run(net *core.Network) core.Result {
	w := net.Window()
	for cyc := int64(0); cyc < w.Warmup+w.Measure; cyc++ {
		in.Tick(net)
		net.Step()
	}
	// Drain: stop injecting, let tagged packets finish.
	for cyc := int64(0); cyc < w.Drain; cyc++ {
		net.Step()
	}
	return net.Result()
}
