package traffic

import (
	"fmt"
	"math"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/sim"
)

// Injector drives a network with Bernoulli arrivals: every cycle, every
// core independently injects a packet with probability Rate (the paper's
// load axis, packets/cycle/core). Each core owns a private RNG stream so
// results are reproducible and insensitive to core iteration order; the
// streams live in one contiguous slice because generate touches every one
// of them every cycle.
type Injector struct {
	pattern      Pattern
	rate         float64
	nodes        int
	coresPerNode int
	rngs         []sim.RNG
	stopped      bool
}

// NewInjector builds an injector for the given pattern and per-core rate.
// All parameters are validated so that malformed sweep points fail fast
// with an error here instead of panicking mid-run (the caps mirror
// core.Config.Validate's structural limits).
func NewInjector(pattern Pattern, rate float64, nodes, coresPerNode int, seed uint64) (*Injector, error) {
	if math.IsNaN(rate) || rate < 0 || rate > 1 {
		return nil, fmt.Errorf("traffic: rate %g outside [0,1] packets/cycle/core", rate)
	}
	if pattern == nil {
		return nil, fmt.Errorf("traffic: nil pattern")
	}
	// Two nodes minimum, matching ring.NewGeometry: patterns that exclude
	// self-traffic (UR) have no destination to draw on a one-node ring.
	if nodes < 2 || nodes > core.MaxNodes {
		return nil, fmt.Errorf("traffic: node count %d outside [2, %d]", nodes, core.MaxNodes)
	}
	if coresPerNode < 1 || coresPerNode > core.MaxCoresPerNode {
		return nil, fmt.Errorf("traffic: cores per node %d outside [1, %d]", coresPerNode, core.MaxCoresPerNode)
	}
	cores := nodes * coresPerNode
	root := sim.NewRNG(seed)
	rngs := make([]sim.RNG, cores)
	for i := range rngs {
		rngs[i] = *root.Fork(uint64(i))
	}
	return &Injector{
		pattern:      pattern,
		rate:         rate,
		nodes:        nodes,
		coresPerNode: coresPerNode,
		rngs:         rngs,
	}, nil
}

// Rate returns the configured per-core injection rate.
func (in *Injector) Rate() float64 { return in.rate }

// Pattern returns the destination pattern.
func (in *Injector) Pattern() Pattern { return in.pattern }

// Stop halts further injection (used during the drain phase).
func (in *Injector) Stop() { in.stopped = true }

// Tick performs one cycle of injections into net. Call it immediately
// before net.Step().
func (in *Injector) Tick(net *core.Network) {
	if in.stopped {
		return
	}
	in.generate(func(c, dst int) {
		net.Inject(c, dst, router.ClassData, 0)
	})
}

// generate draws one cycle's injections and hands each (core, dst) pair to
// emit. It is the single source of injection randomness, shared by Tick
// and by tape recording (tape.go), so a recorded tape is bit-identical to
// what the live injector would have produced.
func (in *Injector) generate(emit func(core, dst int)) {
	for c := range in.rngs {
		rng := &in.rngs[c]
		if !rng.Bernoulli(in.rate) {
			continue
		}
		src := c / in.coresPerNode
		emit(c, in.pattern.Dest(src, in.nodes, rng))
	}
}

// Run drives net through its full window (warmup+measure with injection,
// then drain without) and returns the result. This is the standard
// open-loop evaluation loop used by every synthetic-workload experiment.
func (in *Injector) Run(net *core.Network) core.Result {
	w := net.Window()
	for cyc := int64(0); cyc < w.Warmup+w.Measure; cyc++ {
		in.Tick(net)
		net.Step()
	}
	// Drain: stop injecting, let tagged packets finish. RunCycles engages
	// the idle fast path once the tail has fully drained.
	net.RunCycles(w.Drain)
	return net.Result()
}
