package traffic

import (
	"fmt"
	"math"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/sim"
)

// Injector drives a network with an open-loop Workload: every cycle, the
// active schedule segment's arrival process draws "packets this cycle"
// for each core, and each drawn packet's destination comes from the
// Pattern. The legacy constructor wraps a fixed-rate Bernoulli workload
// — the paper's traffic model — and is bit-identical to the pre-workload
// injector (TestWorkloadBernoulliCompat).
//
// Each core owns a private RNG stream so results are reproducible and
// insensitive to core iteration order; the streams live in one contiguous
// slice because generate touches every one of them every cycle.
type Injector struct {
	pattern      Pattern
	workload     *Workload
	nodes        int
	coresPerNode int
	rngs         []sim.RNG
	// weights is the resolved per-core ClientMap skew (nil = uniform; the
	// nil fast path keeps the legacy Bernoulli stream bit-identical).
	weights []float64
	stopped bool

	// Schedule state, resolved by Prepare against the injection span.
	bound    bool
	span     int64
	cursor   int64 // next injection cycle, 0-based
	seg      int   // active segment index
	segStart []int64
	segEnd   []int64
	arrivals []Arrival
}

// NewInjector builds the legacy fixed-rate Bernoulli injector for the
// given pattern and per-core rate — a single full-span Bernoulli segment
// routed through the Workload layer. All parameters are validated so that
// malformed sweep points fail fast with an error here instead of
// panicking mid-run (the caps mirror core.Config.Validate's structural
// limits).
func NewInjector(pattern Pattern, rate float64, nodes, coresPerNode int, seed uint64) (*Injector, error) {
	if math.IsNaN(rate) || rate < 0 || rate > 1 {
		return nil, fmt.Errorf("traffic: rate %g outside [0,1] packets/cycle/core", rate)
	}
	return NewWorkloadInjector(Bernoulli(rate), pattern, nodes, coresPerNode, seed)
}

// NewWorkloadInjector builds an injector driving the given workload's
// phased schedule. The workload is not mutated and may be shared across
// injectors; all per-run state (arrival regimes, schedule cursor) lives
// in the injector.
func NewWorkloadInjector(w *Workload, pattern Pattern, nodes, coresPerNode int, seed uint64) (*Injector, error) {
	if w == nil {
		return nil, fmt.Errorf("traffic: nil workload")
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if pattern == nil {
		return nil, fmt.Errorf("traffic: nil pattern")
	}
	// Two nodes minimum, matching ring.NewGeometry: patterns that exclude
	// self-traffic (UR) have no destination to draw on a one-node ring.
	if nodes < 2 || nodes > core.MaxNodes {
		return nil, fmt.Errorf("traffic: node count %d outside [2, %d]", nodes, core.MaxNodes)
	}
	if coresPerNode < 1 || coresPerNode > core.MaxCoresPerNode {
		return nil, fmt.Errorf("traffic: cores per node %d outside [1, %d]", coresPerNode, core.MaxCoresPerNode)
	}
	cores := nodes * coresPerNode
	root := sim.NewRNG(seed)
	rngs := make([]sim.RNG, cores)
	for i := range rngs {
		rngs[i] = *root.Fork(uint64(i))
	}
	in := &Injector{
		pattern:      pattern,
		workload:     w,
		nodes:        nodes,
		coresPerNode: coresPerNode,
		rngs:         rngs,
	}
	if w.Clients != nil {
		in.weights = w.Clients.Weights(cores, seed)
	}
	return in, nil
}

// Workload returns the injector's workload description.
func (in *Injector) Workload() *Workload { return in.workload }

// Rate returns the workload's expected mean injection rate in
// packets/cycle/core: the configured rate for the legacy Bernoulli
// injector, the span-weighted schedule mean otherwise. Before the
// schedule is bound to a span, fractional segments are weighted by their
// fractions alone.
func (in *Injector) Rate() float64 {
	span := in.span
	if !in.bound {
		span = 1 << 20 // nominal span: fixed-cycle segments are tiny against it
	}
	return in.workload.MeanRate(span)
}

// Pattern returns the destination pattern.
func (in *Injector) Pattern() Pattern { return in.pattern }

// Stop halts further injection (used during the drain phase).
func (in *Injector) Stop() { in.stopped = true }

// Prepare resolves the phased schedule against an injection span of the
// given length (cycles of Tick the run will perform) and instantiates
// per-segment arrival state. Run, Tick and tape recording call it
// automatically; call it directly only to read Boundaries before
// driving the network manually. Preparing an already-bound injector is a
// no-op, so a Run after an explicit Prepare keeps the resolved schedule.
func (in *Injector) Prepare(span int64) {
	if in.bound {
		return
	}
	in.bound = true
	in.span = span
	in.segEnd = in.workload.Resolve(span)
	in.segStart = make([]int64, len(in.segEnd))
	in.arrivals = make([]Arrival, len(in.segEnd))
	at := int64(0)
	for i, end := range in.segEnd {
		in.segStart[i] = at
		in.arrivals[i] = in.workload.Segments[i].Proc.New(len(in.rngs), end-at)
		at = end
	}
}

// Boundaries returns the resolved exclusive end cycle of each schedule
// segment (the conservation battery audits the network at each). Valid
// after Prepare.
func (in *Injector) Boundaries() []int64 {
	if !in.bound {
		return nil
	}
	return in.segEnd
}

// Tick performs one cycle of injections into net. Call it immediately
// before net.Step(). The first Tick binds the schedule to the network's
// injection span (warmup+measure).
func (in *Injector) Tick(net *core.Network) {
	if in.stopped {
		return
	}
	if !in.bound {
		w := net.Window()
		in.Prepare(w.Warmup + w.Measure)
	}
	in.generate(func(c, dst int) {
		net.Inject(c, dst, router.ClassData, 0)
	})
}

// generate draws one cycle's injections and hands each (core, dst) pair to
// emit. It is the single source of injection randomness, shared by Tick
// and by tape recording (tape.go), so a recorded tape is bit-identical to
// what the live injector would have produced. The draw loop is
// allocation-free (TestGenerateZeroAlloc): arrival state is preallocated
// by Prepare and the per-cycle work is pure arithmetic on it.
func (in *Injector) generate(emit func(core, dst int)) {
	for in.seg < len(in.segEnd)-1 && in.cursor >= in.segEnd[in.seg] {
		in.seg++
	}
	a := in.arrivals[in.seg]
	t := in.cursor - in.segStart[in.seg]
	in.cursor++
	for c := range in.rngs {
		rng := &in.rngs[c]
		w := 1.0
		if in.weights != nil {
			w = in.weights[c]
		}
		for n := a.Draw(c, t, w, rng); n > 0; n-- {
			src := c / in.coresPerNode
			emit(c, in.pattern.Dest(src, in.nodes, rng))
		}
	}
}

// Run drives net through its full window (warmup+measure with injection,
// then drain without) and returns the result. This is the open-loop
// synthetic evaluation loop used by every synthetic-workload experiment:
// arrivals are drawn from the configured schedule regardless of network
// state, so offered load never self-throttles (contrast the closed-loop
// CMP study, where MSHR-limited cores stall on outstanding misses — see
// DESIGN.md "Open-loop vs closed-loop").
func (in *Injector) Run(net *core.Network) core.Result {
	w := net.Window()
	for cyc := int64(0); cyc < w.Warmup+w.Measure; cyc++ {
		in.Tick(net)
		net.Step()
	}
	// Drain: stop injecting, let tagged packets finish. RunCycles engages
	// the idle fast path once the tail has fully drained.
	net.RunCycles(w.Drain)
	return net.Result()
}
