package traffic

import (
	"testing"

	"photon/internal/core"
	"photon/internal/sim"
)

func TestMultiFlitValidation(t *testing.T) {
	if _, err := NewMultiFlitInjector(UniformRandom{}, 0.01, 0, 64, 4, 1); err == nil {
		t.Error("zero flits accepted")
	}
	if _, err := NewMultiFlitInjector(nil, 0.01, 2, 64, 4, 1); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := NewMultiFlitInjector(UniformRandom{}, 2, 2, 64, 4, 1); err == nil {
		t.Error("rate > 1 accepted")
	}
}

func TestMultiFlitReassembly(t *testing.T) {
	cfg := core.DefaultConfig(core.DHSSetaside)
	net, err := core.NewNetwork(cfg, sim.Window{Warmup: 200, Measure: 1500, Drain: 1500})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewMultiFlitInjector(UniformRandom{}, 0.01, 4, cfg.Nodes, cfg.CoresPerNode, 5)
	if err != nil {
		t.Fatal(err)
	}
	avgLat, thr := inj.Run(net)
	if inj.MessagesBegun == 0 {
		t.Fatal("no messages injected")
	}
	if inj.Pending() != 0 {
		t.Fatalf("%d messages never reassembled", inj.Pending())
	}
	if inj.MessagesDone != inj.MessagesBegun {
		t.Fatalf("completed %d of %d messages", inj.MessagesDone, inj.MessagesBegun)
	}
	if avgLat <= 0 || thr <= 0 {
		t.Fatalf("latency %.1f throughput %.5f", avgLat, thr)
	}
	// Flit conservation: every flit of every message delivered.
	st := net.Stats()
	if st.Delivered != 4*inj.MessagesBegun {
		t.Fatalf("delivered %d flits, want %d", st.Delivered, 4*inj.MessagesBegun)
	}
}

// TestMultiFlitLatencyGrowsWithSize: a 4-flit message serialises through
// the sender's injection port and channel, so its completion latency must
// exceed a single-flit message's.
func TestMultiFlitLatencyGrowsWithSize(t *testing.T) {
	run := func(flits int) float64 {
		cfg := core.DefaultConfig(core.DHSSetaside)
		net, err := core.NewNetwork(cfg, sim.Window{Warmup: 200, Measure: 1500, Drain: 1500})
		if err != nil {
			t.Fatal(err)
		}
		inj, err := NewMultiFlitInjector(UniformRandom{}, 0.005, flits, cfg.Nodes, cfg.CoresPerNode, 5)
		if err != nil {
			t.Fatal(err)
		}
		lat, _ := inj.Run(net)
		return lat
	}
	l1, l4 := run(1), run(4)
	if l4 <= l1+2 {
		t.Fatalf("4-flit message latency %.1f not clearly above single-flit %.1f", l4, l1)
	}
}
