// Package traffic provides the synthetic workloads of the evaluation: the
// paper's three patterns (Uniform Random, Bit Complement, Tornado) plus the
// standard extras (Transpose, Neighbor, Hotspot) used by the extended
// sensitivity studies, and a Bernoulli injector that drives a core.Network
// at a configured load in packets/cycle/core.
package traffic

import (
	"fmt"

	"photon/internal/sim"
)

// Pattern maps a source node to a destination node. Patterns are defined
// over nodes (the network attachment points of the concentrated S-NUCA
// layout); every core of a node draws destinations from the same pattern.
type Pattern interface {
	// Name is the pattern's CLI/figure label.
	Name() string
	// Dest returns the destination node for a packet injected at node src.
	// rng is used only by randomized patterns.
	Dest(src, nodes int, rng *sim.RNG) int
}

// UniformRandom spreads traffic uniformly over all nodes except the source
// (self-traffic never enters the ring, so including it would dilute load).
type UniformRandom struct{}

// Name implements Pattern.
func (UniformRandom) Name() string { return "UR" }

// Dest implements Pattern.
func (UniformRandom) Dest(src, nodes int, rng *sim.RNG) int {
	d := rng.Intn(nodes - 1)
	if d >= src {
		d++
	}
	return d
}

// BitComplement sends node i to node (N-1)-i — for power-of-two node counts
// exactly the bitwise complement of the node id. Every destination has a
// single sender, the peer-to-peer pattern where the paper shows basic
// handshake's HOL blocking at its worst.
type BitComplement struct{}

// Name implements Pattern.
func (BitComplement) Name() string { return "BC" }

// Dest implements Pattern.
func (BitComplement) Dest(src, nodes int, _ *sim.RNG) int {
	return nodes - 1 - src
}

// Tornado sends node i to the node half-way (minus one) around the ring:
// (i + ceil(N/2) - 1) mod N — the classic adversarial pattern for ring
// topologies, every packet travelling the maximal common distance.
type Tornado struct{}

// Name implements Pattern.
func (Tornado) Name() string { return "TOR" }

// Dest implements Pattern.
func (Tornado) Dest(src, nodes int, _ *sim.RNG) int {
	return (src + (nodes+1)/2 - 1) % nodes
}

// Transpose treats the node id as coordinates on a sqrt(N) x sqrt(N) grid
// and swaps them; node counts that are not perfect squares fall back to a
// digit-reversal permutation. Used in the extended studies.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "TP" }

// Dest implements Pattern.
func (Transpose) Dest(src, nodes int, _ *sim.RNG) int {
	side := 1
	for side*side < nodes {
		side++
	}
	if side*side == nodes {
		x, y := src%side, src/side
		return x*side + y
	}
	// Fallback: reverse the position within the ring.
	return (nodes - src) % nodes
}

// Neighbor sends each node to its immediate downstream neighbor — the
// friendliest pattern for a unidirectional ring (1-cycle flights for the
// farthest senders' segment, maximal wave-pipelining).
type Neighbor struct{}

// Name implements Pattern.
func (Neighbor) Name() string { return "NBR" }

// Dest implements Pattern.
func (Neighbor) Dest(src, nodes int, _ *sim.RNG) int {
	return (src + 1) % nodes
}

// Hotspot sends a fraction of traffic to a single hot node and the rest
// uniformly — models a contended directory/memory controller.
type Hotspot struct {
	// Hot is the hot node id.
	Hot int
	// Fraction of traffic addressed to Hot (e.g. 0.2).
	Fraction float64
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("HS%d@%.0f%%", h.Hot, h.Fraction*100) }

// Dest implements Pattern.
func (h Hotspot) Dest(src, nodes int, rng *sim.RNG) int {
	if src != h.Hot && rng.Bernoulli(h.Fraction) {
		return h.Hot
	}
	return UniformRandom{}.Dest(src, nodes, rng)
}

// ByName resolves a CLI pattern label.
func ByName(name string) (Pattern, error) {
	switch name {
	case "UR", "ur", "uniform":
		return UniformRandom{}, nil
	case "BC", "bc", "bitcomp":
		return BitComplement{}, nil
	case "TOR", "tor", "tornado":
		return Tornado{}, nil
	case "TP", "tp", "transpose":
		return Transpose{}, nil
	case "NBR", "nbr", "neighbor":
		return Neighbor{}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q (UR, BC, TOR, TP, NBR)", name)
	}
}

// PaperPatterns returns the three patterns of Figures 8 and 9, in order.
func PaperPatterns() []Pattern {
	return []Pattern{UniformRandom{}, BitComplement{}, Tornado{}}
}
