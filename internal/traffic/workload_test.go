package traffic

import (
	"math"
	"reflect"
	"testing"

	"photon/internal/sim"
)

// TestWorkloadBernoulliCompat pins the refactor's core compatibility
// guarantee: the legacy Bernoulli injector routed through the Workload
// layer draws the bit-identical (cycle, core, dst) sequence the
// pre-workload injector produced. The expected side is a literal
// transcription of the old generate loop — fork per-core RNGs from the
// root, one Bernoulli(rate) per core per cycle, destination from the
// pattern on a hit.
func TestWorkloadBernoulliCompat(t *testing.T) {
	const (
		rate  = 0.17
		nodes = 16
		cores = 2
		seed  = 99
		span  = 400
	)
	tape, err := RecordTape(UniformRandom{}, rate, nodes, cores, seed, span)
	if err != nil {
		t.Fatal(err)
	}
	root := sim.NewRNG(seed)
	rngs := make([]sim.RNG, nodes*cores)
	for i := range rngs {
		rngs[i] = *root.Fork(uint64(i))
	}
	var want []TapeEntry
	for cyc := int64(0); cyc < span; cyc++ {
		for c := range rngs {
			rng := &rngs[c]
			if !rng.Bernoulli(rate) {
				continue
			}
			src := c / cores
			want = append(want, TapeEntry{Cycle: cyc, Core: c, Dst: UniformRandom{}.Dest(src, nodes, rng)})
		}
	}
	if len(want) == 0 {
		t.Fatal("legacy replica drew nothing; test is vacuous")
	}
	if !reflect.DeepEqual(tape.Entries, want) {
		t.Fatalf("workload-layer Bernoulli diverged from the legacy loop: got %d entries, want %d (first got %+v)",
			len(tape.Entries), len(want), tape.Entries[0])
	}
}

// TestGenerateZeroAlloc guards the injection tick's zero-alloc contract
// across every arrival process: once Prepare has run, a generate cycle
// performs no heap allocation (the packets a real Tick injects are
// excluded by construction — the emit callback here is a no-op, matching
// the core package's alloc-guard convention).
func TestGenerateZeroAlloc(t *testing.T) {
	specs := map[string]*Workload{"legacy": Bernoulli(0.2)}
	for _, p := range PresetWorkloads() {
		specs[p.Name] = MustParseWorkload(p.Spec)
	}
	for name, w := range specs {
		in, err := NewWorkloadInjector(w, UniformRandom{}, 16, 2, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in.Prepare(4096)
		emit := func(c, dst int) {}
		in.generate(emit) // settle any first-cycle regime draws
		if n := testing.AllocsPerRun(200, func() { in.generate(emit) }); n != 0 {
			t.Errorf("%s: generate allocates %.1f times per cycle, want 0", name, n)
		}
	}
}

// TestWorkloadResolve pins the schedule resolution rules: fixed-cycle
// claims in order clamped to the span, fractional segments sharing the
// remaining pool, and the final segment absorbing the remainder.
func TestWorkloadResolve(t *testing.T) {
	b := BernoulliSpec{Rate: 0.1}
	cases := []struct {
		name string
		w    Workload
		span int64
		want []int64
	}{
		{"single-frac", Workload{Segments: []Segment{{Frac: 1, Proc: b}}}, 1000, []int64{1000}},
		{"even-split", Workload{Segments: []Segment{{Frac: 0.5, Proc: b}, {Frac: 0.5, Proc: b}}}, 1000, []int64{500, 1000}},
		{"fixed-then-frac", Workload{Segments: []Segment{{Cycles: 300, Proc: b}, {Frac: 1, Proc: b}}}, 1000, []int64{300, 1000}},
		{"fixed-overruns", Workload{Segments: []Segment{{Cycles: 1500, Proc: b}, {Frac: 1, Proc: b}}}, 1000, []int64{1000, 1000}},
		{"rounding-remainder", Workload{Segments: []Segment{{Frac: 1, Proc: b}, {Frac: 1, Proc: b}, {Frac: 1, Proc: b}}}, 1000, []int64{333, 666, 1000}},
		{"zero-span", Workload{Segments: []Segment{{Frac: 1, Proc: b}}}, 0, []int64{0}},
	}
	for _, tc := range cases {
		if got := tc.w.Resolve(tc.span); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: Resolve(%d) = %v, want %v", tc.name, tc.span, got, tc.want)
		}
	}
}

// instRate is the property test's independent oracle for the expected
// injection probability of one (cycle, weight) slot: the arrival
// processes' rate laws restated from their definitions, with the
// Bernoulli clamp at 1 applied. Burst is Markov-modulated, so its oracle
// is the stationary duty-cycle mean (its tolerance is inflated below).
func instRate(spec ArrivalSpec, t, span int64, w float64) float64 {
	var rate float64
	switch s := spec.(type) {
	case BernoulliSpec:
		rate = s.Rate
	case FlashSpec:
		rate = s.Base
		if t >= int64(s.At*float64(span)) && t < int64((s.At+s.Width)*float64(span)) {
			rate = s.Peak
		}
	case DiurnalSpec:
		rate = s.Mean * (1 + s.Amp*math.Sin(2*math.Pi/s.Period*float64(t)))
		if rate < 0 {
			rate = 0
		}
	case BurstSpec:
		rate = s.MeanRate()
	}
	p := rate * w
	if p > 1 {
		p = 1
	}
	return p
}

// TestWorkloadPhaseRates is the property test over realized schedules:
// the injections a recorded tape lands inside each resolved phase must
// match that phase's expected count within binomial tolerance, where the
// expectation sums the oracle rate over every (cycle, core) slot —
// including client-map skew and the clamp at 1 packet/cycle. For the
// Markov-modulated burst source the draws are correlated across cycles,
// so its tolerance is inflated by the regime correlation factor
// sqrt(1+2*tau) with tau the two-state correlation time — gross rate
// errors (a flipped duty cycle, a misrouted weight) still land far
// outside it. Seeds are fixed: the check is deterministic, not a flake.
func TestWorkloadPhaseRates(t *testing.T) {
	const (
		nodes = 16
		cores = 4
		span  = 20000
	)
	ncores := nodes * cores
	for _, p := range PresetWorkloads() {
		w := MustParseWorkload(p.Spec)
		for seed := uint64(1); seed <= 3; seed++ {
			tape, err := RecordWorkloadTape(w, UniformRandom{}, nodes, cores, seed, span)
			if err != nil {
				t.Fatal(err)
			}
			weights := make([]float64, ncores)
			for i := range weights {
				weights[i] = 1
			}
			if w.Clients != nil {
				weights = w.Clients.Weights(ncores, seed)
			}
			bounds := w.Resolve(span)
			counts := make([]int64, len(bounds))
			seg := 0
			for _, e := range tape.Entries {
				for seg < len(bounds)-1 && e.Cycle >= bounds[seg] {
					seg++
				}
				counts[seg]++
			}
			from := int64(0)
			for i, to := range bounds {
				var expect, varsum float64
				segSpan := to - from
				for cyc := int64(0); cyc < segSpan; cyc++ {
					for _, wt := range weights {
						pr := instRate(w.Segments[i].Proc, cyc, segSpan, wt)
						expect += pr
						varsum += pr * (1 - pr)
					}
				}
				sigma := math.Sqrt(varsum)
				if bs, ok := w.Segments[i].Proc.(BurstSpec); ok {
					tau := 1 / (1/bs.On + 1/bs.Off)
					sigma *= math.Sqrt(1 + 2*tau)
				}
				tol := 6 * sigma
				if got := float64(counts[i]); math.Abs(got-expect) > tol {
					t.Errorf("%s seed %d phase %d [%d,%d): %.0f injections, want %.0f ± %.0f",
						p.Name, seed, i+1, from, to, got, expect, tol)
				}
				from = to
			}
		}
	}
}

// TestClientMapWeights checks the client-hashing invariants: weights are
// deterministic in (spec, seed), average exactly the fair share, and the
// hot cohort's cores carry well above it.
func TestClientMapWeights(t *testing.T) {
	cm := &ClientMap{N: 200000, Hot: 0.5, HotCores: 4}
	if err := cm.Validate(); err != nil {
		t.Fatal(err)
	}
	const cores = 64
	w1 := cm.Weights(cores, 42)
	w2 := cm.Weights(cores, 42)
	if !reflect.DeepEqual(w1, w2) {
		t.Fatal("Weights is not deterministic for a fixed seed")
	}
	if w3 := cm.Weights(cores, 43); reflect.DeepEqual(w1, w3) {
		t.Fatal("Weights ignored the seed")
	}
	var sum float64
	hot := 0
	for _, w := range w1 {
		sum += w
		// Half the population on 4 of 64 cores: hot weight ≈ 0.5*64/4 + 0.5
		// = 8.5, cold ≈ 0.5. Anything above 4 is unambiguously hot.
		if w > 4 {
			hot++
		}
	}
	if math.Abs(sum-cores) > 1e-9 {
		t.Errorf("weights sum to %g, want %d (mean exactly 1)", sum, cores)
	}
	if hot != cm.HotCores {
		t.Errorf("%d cores look hot, want %d", hot, cm.HotCores)
	}
}

// TestWorkloadMeanRate spot-checks the span-weighted schedule mean used
// by Injector.Rate and the property test.
func TestWorkloadMeanRate(t *testing.T) {
	w := MustParseWorkload("0.5@bernoulli(rate=0.2);0.5@bernoulli(rate=0.1)")
	if got, want := w.MeanRate(1000), 0.15; math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanRate = %g, want %g", got, want)
	}
	b := MustParseWorkload("burst(rate=0.3,on=400,off=1200)")
	if got, want := b.MeanRate(1000), 0.075; math.Abs(got-want) > 1e-12 {
		t.Errorf("burst MeanRate = %g, want %g", got, want)
	}
}
