package traffic

import (
	"fmt"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/sim"
	"photon/internal/stats"
)

// MultiFlitInjector drives a network with multi-flit packets, following
// the paper's own prescription for them: "with a multi-flit packet, we can
// add the header information into each flit" (§III, fn. 6) — i.e. each
// flit carries its own header and traverses the network as an independent
// single-flit unit; the packet completes when its last flit is delivered.
//
// The injector tracks reassembly and reports *message* latency (creation
// of the first flit to delivery of the last), the metric that matters for
// multi-flit transfers such as cache lines wider than the channel.
type MultiFlitInjector struct {
	pattern       Pattern
	rate          float64 // messages/cycle/core
	flitsPerMsg   int
	nodes         int
	coresPerNode  int
	rngs          []sim.RNG
	stopped       bool
	nextMsg       uint64
	remaining     map[uint64]int
	created       map[uint64]int64
	MsgLatency    *stats.Histogram
	MessagesDone  int64
	MessagesBegun int64
}

// NewMultiFlitInjector builds an injector sending flitsPerMsg flits per
// message at rate messages/cycle/core.
func NewMultiFlitInjector(pattern Pattern, rate float64, flitsPerMsg, nodes, coresPerNode int, seed uint64) (*MultiFlitInjector, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("traffic: message rate %g outside [0,1]", rate)
	}
	if flitsPerMsg < 1 {
		return nil, fmt.Errorf("traffic: flits per message must be >= 1, got %d", flitsPerMsg)
	}
	if pattern == nil {
		return nil, fmt.Errorf("traffic: nil pattern")
	}
	cores := nodes * coresPerNode
	root := sim.NewRNG(seed)
	rngs := make([]sim.RNG, cores)
	for i := range rngs {
		rngs[i] = *root.Fork(uint64(i))
	}
	return &MultiFlitInjector{
		pattern:      pattern,
		rate:         rate,
		flitsPerMsg:  flitsPerMsg,
		nodes:        nodes,
		coresPerNode: coresPerNode,
		rngs:         rngs,
		remaining:    map[uint64]int{},
		created:      map[uint64]int64{},
		MsgLatency:   stats.NewHistogram(0),
	}, nil
}

// Install hooks the injector's reassembly tracking into net.OnDeliver.
// Call once before driving the network.
func (in *MultiFlitInjector) Install(net *core.Network) {
	prev := net.OnDeliver
	net.OnDeliver = func(p *router.Packet) {
		if prev != nil {
			prev(p)
		}
		msg := p.Tag & 0xFFFFFFFFFF // the network reserves bits 40+ for queue routing
		left, ok := in.remaining[msg]
		if !ok {
			return
		}
		left--
		if left == 0 {
			delete(in.remaining, msg)
			in.MsgLatency.Add(p.DeliveredAt - in.created[msg])
			delete(in.created, msg)
			in.MessagesDone++
			return
		}
		in.remaining[msg] = left
	}
}

// Stop halts injection.
func (in *MultiFlitInjector) Stop() { in.stopped = true }

// Pending reports messages awaiting reassembly.
func (in *MultiFlitInjector) Pending() int { return len(in.remaining) }

// Tick injects this cycle's messages: all flits of a message are handed to
// the router back-to-back (they serialise through the core's injection
// port over the following cycles via the output queue).
func (in *MultiFlitInjector) Tick(net *core.Network) {
	if in.stopped {
		return
	}
	for c := range in.rngs {
		rng := &in.rngs[c]
		if !rng.Bernoulli(in.rate) {
			continue
		}
		src := c / in.coresPerNode
		dst := in.pattern.Dest(src, in.nodes, rng)
		msg := in.nextMsg
		in.nextMsg++
		in.remaining[msg] = in.flitsPerMsg
		in.created[msg] = net.Now()
		in.MessagesBegun++
		for f := 0; f < in.flitsPerMsg; f++ {
			net.Inject(c, dst, router.ClassData, msg)
		}
	}
}

// Run drives net through its window and returns the mean message latency
// and message throughput (messages/cycle/core over the measure window —
// approximated by completed messages over the full injection span).
func (in *MultiFlitInjector) Run(net *core.Network) (avgMsgLatency float64, msgThroughput float64) {
	w := net.Window()
	in.Install(net)
	for cyc := int64(0); cyc < w.Warmup+w.Measure; cyc++ {
		in.Tick(net)
		net.Step()
	}
	net.RunCycles(w.Drain)
	cores := float64(net.Config().Cores())
	return in.MsgLatency.Mean(), float64(in.MessagesDone) / float64(w.Warmup+w.Measure) / cores
}
