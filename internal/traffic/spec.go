package traffic

import (
	"fmt"
	"strconv"
	"strings"
)

// The workload spec grammar — the one canonical string form shared by
// CLI flags, tapes, farm manifest keys and the grid registry:
//
//	workload := phases [ '|' clients ]
//	phases   := phase { ';' phase }
//	phase    := [ dur '@' ] proc
//	dur      := FLOAT            fraction of the injection span
//	          | INT 'c'          absolute cycles
//	proc     := name '(' [ params ] ')'
//	clients  := 'clients' '(' params ')'
//	params   := key '=' value { ',' key '=' value }
//
// Processes: bernoulli(rate=), burst(rate=,on=,off=),
// flash(base=,peak=,at=,width=), diurnal(mean=,amp=,period=).
// Client maps: clients(n=,hot=,cores=).
//
// A single full-span phase omits its duration: "bernoulli(rate=0.1)".
// Phased example, 40% warm traffic then a bursty regime:
//
//	0.4@bernoulli(rate=0.05);0.6@burst(rate=0.3,on=400,off=1200)
//
// Workload.String() emits the canonical form (params in definition
// order, %g floats); ParseWorkload accepts any parameter order and
// redundant whitespace but round-trips canonically.

// ParseWorkload parses spec into a validated Workload.
func ParseWorkload(spec string) (*Workload, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("traffic: empty workload spec")
	}
	head, clientPart, hasClients := strings.Cut(spec, "|")
	w := &Workload{}
	phases := strings.Split(head, ";")
	if len(phases) > maxSegments {
		return nil, fmt.Errorf("traffic: workload spec has %d phases (max %d)", len(phases), maxSegments)
	}
	for i, ph := range phases {
		seg, err := parsePhase(strings.TrimSpace(ph), len(phases) == 1)
		if err != nil {
			return nil, fmt.Errorf("traffic: phase %d: %w", i+1, err)
		}
		w.Segments = append(w.Segments, seg)
	}
	if hasClients {
		cm, err := parseClients(strings.TrimSpace(clientPart))
		if err != nil {
			return nil, fmt.Errorf("traffic: %w", err)
		}
		w.Clients = cm
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// MustParseWorkload is ParseWorkload for statically known specs (the
// preset table); it panics on error.
func MustParseWorkload(spec string) *Workload {
	w, err := ParseWorkload(spec)
	if err != nil {
		panic(err)
	}
	return w
}

// parsePhase parses "[dur@]proc". single reports whether this is the
// workload's only phase (which may omit its duration, meaning Frac = 1).
func parsePhase(s string, single bool) (Segment, error) {
	seg := Segment{}
	if at := strings.Index(s, "@"); at >= 0 {
		dur := strings.TrimSpace(s[:at])
		s = strings.TrimSpace(s[at+1:])
		if cyc, ok := strings.CutSuffix(dur, "c"); ok {
			n, err := strconv.ParseInt(strings.TrimSpace(cyc), 10, 64)
			if err != nil {
				return seg, fmt.Errorf("bad cycle duration %q: %v", dur, err)
			}
			if n < 1 {
				return seg, fmt.Errorf("cycle duration %d must be >= 1", n)
			}
			seg.Cycles = n
		} else {
			f, err := strconv.ParseFloat(dur, 64)
			if err != nil {
				return seg, fmt.Errorf("bad duration %q: %v", dur, err)
			}
			seg.Frac = f
		}
	} else if single {
		seg.Frac = 1
	} else {
		return seg, fmt.Errorf("multi-phase workload needs a duration on every phase (got %q)", s)
	}
	name, params, err := parseCall(s)
	if err != nil {
		return seg, err
	}
	proc, err := buildProc(name, params)
	if err != nil {
		return seg, err
	}
	seg.Proc = proc
	return seg, nil
}

// parseCall splits "name(k=v,...)" into the name and its parameter map.
func parseCall(s string) (string, map[string]float64, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("expected name(params), got %q", s)
	}
	name := strings.TrimSpace(s[:open])
	body := s[open+1 : len(s)-1]
	params := map[string]float64{}
	if strings.TrimSpace(body) == "" {
		return name, params, nil
	}
	for _, kv := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", nil, fmt.Errorf("bad parameter %q (want key=value)", kv)
		}
		k = strings.TrimSpace(k)
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return "", nil, fmt.Errorf("bad value for %q: %v", k, err)
		}
		if _, dup := params[k]; dup {
			return "", nil, fmt.Errorf("duplicate parameter %q", k)
		}
		params[k] = f
	}
	return name, params, nil
}

// take pops a parameter, substituting def if absent (NaN = required).
func take(params map[string]float64, key string, def float64, missing *error) float64 {
	if v, ok := params[key]; ok {
		delete(params, key)
		return v
	}
	if def != def && *missing == nil { // def is NaN: required
		*missing = fmt.Errorf("missing required parameter %q", key)
	}
	return def
}

// leftover flags unknown parameters after all known ones were taken.
func leftover(name string, params map[string]float64) error {
	for k := range params {
		return fmt.Errorf("unknown parameter %q for %s", k, name)
	}
	return nil
}

var required = func() float64 { var nan float64; nan /= nan; return nan }() // NaN sentinel

// buildProc constructs the ArrivalSpec for a parsed process call.
func buildProc(name string, params map[string]float64) (ArrivalSpec, error) {
	var missing error
	var proc ArrivalSpec
	switch name {
	case "bernoulli":
		proc = BernoulliSpec{Rate: take(params, "rate", required, &missing)}
	case "burst":
		proc = BurstSpec{
			Rate: take(params, "rate", required, &missing),
			On:   take(params, "on", required, &missing),
			Off:  take(params, "off", required, &missing),
		}
	case "flash":
		proc = FlashSpec{
			Base:  take(params, "base", required, &missing),
			Peak:  take(params, "peak", required, &missing),
			At:    take(params, "at", 0.5, &missing),
			Width: take(params, "width", 0.1, &missing),
		}
	case "diurnal":
		proc = DiurnalSpec{
			Mean:   take(params, "mean", required, &missing),
			Amp:    take(params, "amp", required, &missing),
			Period: take(params, "period", required, &missing),
		}
	default:
		return nil, fmt.Errorf("unknown arrival process %q (bernoulli, burst, flash, diurnal)", name)
	}
	if missing != nil {
		return nil, fmt.Errorf("%s: %w", name, missing)
	}
	if err := leftover(name, params); err != nil {
		return nil, err
	}
	return proc, nil
}

// parseClients parses the "clients(n=,hot=,cores=)" suffix.
func parseClients(s string) (*ClientMap, error) {
	name, params, err := parseCall(s)
	if err != nil {
		return nil, err
	}
	if name != "clients" {
		return nil, fmt.Errorf("expected clients(...) after '|', got %q", name)
	}
	var missing error
	cm := &ClientMap{
		N:        int64(take(params, "n", required, &missing)),
		Hot:      take(params, "hot", 0, &missing),
		HotCores: int(take(params, "cores", 1, &missing)),
	}
	if missing != nil {
		return nil, fmt.Errorf("clients: %w", missing)
	}
	if err := leftover("clients", params); err != nil {
		return nil, err
	}
	return cm, nil
}

// WorkloadPreset is a named workload the CLI, the grid registry and the
// differential battery all share. Presets are the canonical serving
// scenarios of the ROADMAP's open-loop item; their specs are valid by
// construction (TestPresetWorkloadsParse pins it).
type WorkloadPreset struct {
	Name string
	Spec string
}

// PresetWorkloads returns the named workload presets in presentation
// order: a bursty on/off cohort, a flash crowd with a hot client
// population, and a phased diurnal schedule (warm steady phase, then a
// modulated day/night phase, then a cooldown).
func PresetWorkloads() []WorkloadPreset {
	return []WorkloadPreset{
		{Name: "bursty", Spec: "burst(rate=0.3,on=400,off=1200)"},
		{Name: "flash", Spec: "flash(base=0.04,peak=0.32,at=0.5,width=0.15)|clients(n=1000000,hot=0.25,cores=4)"},
		{Name: "diurnal", Spec: "0.25@bernoulli(rate=0.05);0.55@diurnal(mean=0.11,amp=0.8,period=2500);0.2@bernoulli(rate=0.03)"},
	}
}

// PresetWorkload resolves a preset name or, failing that, parses the
// argument as a workload spec — the resolution order behind the CLI
// -workload flag.
func PresetWorkload(nameOrSpec string) (*Workload, string, error) {
	for _, p := range PresetWorkloads() {
		if p.Name == nameOrSpec {
			w, err := ParseWorkload(p.Spec)
			return w, p.Spec, err
		}
	}
	w, err := ParseWorkload(nameOrSpec)
	if err != nil {
		return nil, "", err
	}
	return w, w.String(), nil
}
