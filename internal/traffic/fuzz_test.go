package traffic_test

import (
	"testing"

	"photon/internal/traffic"
)

// FuzzNewInjector hammers the injector constructor with arbitrary
// geometry/rate/pattern combinations. The contract: NewInjector either
// returns an error or an injector whose first cycles draw only in-range
// destinations — it must never panic and never address a node outside
// [0, nodes).
func FuzzNewInjector(f *testing.F) {
	f.Add(0.10, 64, 4, 0, 3, 0.2, uint64(1))
	f.Add(0.0, 1, 1, 1, 0, 0.0, uint64(0))
	f.Add(1.0, 2, 1, 4, 1, 1.0, uint64(9))
	f.Add(-0.5, 64, 4, 2, 0, 0.2, uint64(1))
	f.Add(0.10, -3, 200000, 3, -7, -0.9, uint64(5))
	nan := 0.0
	nan /= nan
	f.Add(nan, 64, 4, 0, 3, nan, uint64(1))

	f.Fuzz(func(t *testing.T, rate float64, nodes, cores, patIdx, hot int, frac float64, seed uint64) {
		patterns := []traffic.Pattern{
			traffic.UniformRandom{},
			traffic.BitComplement{},
			traffic.Tornado{},
			traffic.Transpose{},
			traffic.Neighbor{},
			traffic.Hotspot{Hot: hot, Fraction: frac},
		}
		if patIdx < 0 {
			patIdx = -patIdx
		}
		pat := patterns[patIdx%len(patterns)]
		inj, err := traffic.NewInjector(pat, rate, nodes, cores, seed)
		if err != nil {
			return // rejected up front — the fail-fast contract is met
		}
		if nodes*cores > 1<<16 {
			t.Skip("valid but too large to draw from under fuzzing")
		}
		// Hotspot with an out-of-range hot node may only be rejected by the
		// destination check below, so clamp nothing: draw and verify.
		bad := -1
		tape, err := traffic.RecordTape(inj.Pattern(), rate, nodes, cores, seed, 16)
		if err != nil {
			t.Fatalf("constructor accepted (%g,%d,%d) but RecordTape rejected it: %v", rate, nodes, cores, err)
		}
		for _, e := range tape.Entries {
			if e.Dst < 0 || e.Dst >= nodes {
				bad = e.Dst
			}
			if e.Core < 0 || e.Core >= nodes*cores {
				t.Fatalf("tape drew core %d outside [0,%d)", e.Core, nodes*cores)
			}
		}
		if bad >= 0 {
			// Hotspot is the only pattern that can aim outside the ring;
			// every built-in must stay in range.
			if _, isHS := pat.(traffic.Hotspot); !isHS {
				t.Fatalf("pattern %s drew destination %d outside [0,%d)", pat.Name(), bad, nodes)
			}
		}
	})
}
