package viz

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	c := &Chart{Title: "demo", XLabel: "load", YLabel: "latency", YCap: 100}
	c.Add("a", []float64{0.01, 0.05, 0.1}, []float64{10, 20, 500})
	c.Add("b", []float64{0.01, 0.05, 0.1}, []float64{12, 14, 16})
	out := c.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "100.0") {
		t.Fatalf("y axis not capped at 100:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("missing plot marks")
	}
}

func TestRenderEmptyErrors(t *testing.T) {
	c := &Chart{}
	var b strings.Builder
	if err := c.Render(&b); err == nil {
		t.Fatal("empty chart rendered without error")
	}
	c.Add("flat", []float64{1, 1}, []float64{5, 5})
	if err := c.Render(&b); err == nil {
		t.Fatal("degenerate x range accepted")
	}
}

func TestRenderAutoScale(t *testing.T) {
	c := &Chart{Height: 5, Width: 20}
	c.Add("a", []float64{0, 1}, []float64{0, 50})
	out := c.String()
	if !strings.Contains(out, "50.0") {
		t.Fatalf("auto-scaled max missing:\n%s", out)
	}
	// Marks at both corners.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "50.0") {
		t.Fatalf("top line should carry the max:\n%s", out)
	}
}

func TestManySeriesCycleMarks(t *testing.T) {
	c := &Chart{YCap: 10}
	for i := 0; i < 10; i++ {
		c.Add("s", []float64{0, 1}, []float64{1, 2})
	}
	out := c.String()
	if !strings.Contains(out, "* s") {
		t.Fatal("legend glyphs should cycle")
	}
	_ = out
}
