// Package viz renders latency-vs-load curves as ASCII charts, so the
// sweep tool can show the paper's figures directly in a terminal next to
// the numeric tables.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one plotted curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Chart is an ASCII scatter/line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 20)
	// YCap clips the y axis (the paper clips latency at 100 cycles);
	// 0 = auto-scale to the data.
	YCap   float64
	Series []Series
}

// seriesMarks are the per-series plot glyphs, in order.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Add appends a series.
func (c *Chart) Add(label string, x, y []float64) {
	c.Series = append(c.Series, Series{Label: label, X: x, Y: y})
}

// Render writes the chart.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMax := 0.0
	for _, s := range c.Series {
		for i := range s.X {
			if s.X[i] < xMin {
				xMin = s.X[i]
			}
			if s.X[i] > xMax {
				xMax = s.X[i]
			}
			y := s.Y[i]
			if c.YCap > 0 && y > c.YCap {
				y = c.YCap
			}
			if y > yMax {
				yMax = y
			}
		}
	}
	if math.IsInf(xMin, 1) || xMax <= xMin {
		return fmt.Errorf("viz: nothing to plot")
	}
	if yMax <= 0 {
		yMax = 1
	}
	if c.YCap > 0 {
		yMax = c.YCap
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			col := int(float64(width-1) * (s.X[i] - xMin) / (xMax - xMin))
			y := s.Y[i]
			if c.YCap > 0 && y > c.YCap {
				y = c.YCap
			}
			row := height - 1 - int(float64(height-1)*y/yMax)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r := 0; r < height; r++ {
		yVal := yMax * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%8.1f |%s\n", yVal, string(grid[r]))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*.4g%*.4g\n", "", width/2, xMin, width-width/2, xMax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%8s  x: %s    y: %s\n", "", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%8s  %c %s\n", "", seriesMarks[si%len(seriesMarks)], s.Label)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func (c *Chart) String() string {
	var b strings.Builder
	_ = c.Render(&b)
	return b.String()
}
