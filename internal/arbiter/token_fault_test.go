package arbiter

import "testing"

// TestInvalidateStopsCirculation: a lost token neither moves nor can be
// captured until regenerated.
func TestInvalidateStopsCirculation(t *testing.T) {
	tok := NewGlobalToken(8, 2)
	tok.Invalidate()
	if !tok.Lost() {
		t.Fatal("Invalidate did not mark the token lost")
	}
	polled := 0
	for i := 0; i < 10; i++ {
		tok.Advance(func(off int) bool { polled++; return true }, nil)
	}
	if polled != 0 {
		t.Fatalf("lost token polled %d offsets", polled)
	}
	if _, held := tok.Held(); held {
		t.Fatal("lost token reports a holder")
	}
}

// TestRegenerateDuplicateGuard: Regenerate acts exactly once per loss —
// the guard refuses while a live token exists, so a spurious watchdog
// firing can never put two tokens on the loop.
func TestRegenerateDuplicateGuard(t *testing.T) {
	tok := NewGlobalToken(8, 2)

	// Live, free token: the watchdog fired while the original was merely
	// slow — the epoch filter must refuse.
	if tok.Regenerate() {
		t.Fatal("Regenerate accepted with the original token still circulating")
	}
	if tok.Regenerations() != 0 {
		t.Fatalf("regenerations = %d, want 0", tok.Regenerations())
	}

	// Held token: also not lost; the guard must refuse.
	for i := 0; i < 8; i++ {
		tok.Advance(func(off int) bool { return off == 3 }, nil)
	}
	if _, held := tok.Held(); !held {
		t.Fatal("capture failed; test cannot proceed")
	}
	if tok.Regenerate() {
		t.Fatal("Regenerate accepted while a sender holds the token")
	}
	tok.Release()

	// Actually lost: the first Regenerate succeeds, the second refuses.
	tok.Invalidate()
	if !tok.Regenerate() {
		t.Fatal("Regenerate refused a genuinely lost token")
	}
	if tok.Lost() {
		t.Fatal("token still lost after regeneration")
	}
	if tok.Regenerate() {
		t.Fatal("second Regenerate duplicated the token")
	}
	if tok.Regenerations() != 1 {
		t.Fatalf("regenerations = %d, want 1", tok.Regenerations())
	}

	// The regenerated token circulates from home again.
	captured := -1
	for i := 0; i < 8 && captured < 0; i++ {
		tok.Advance(func(off int) bool { captured = off; return true }, nil)
	}
	if captured < 0 {
		t.Fatal("regenerated token never resumed circulation")
	}
}

// TestInvalidateHeldPanics: a holder's token is latched electrically, not
// travelling the waveguide — killing it is a caller bug.
func TestInvalidateHeldPanics(t *testing.T) {
	tok := NewGlobalToken(4, 1)
	tok.Advance(func(off int) bool { return true }, nil)
	if _, held := tok.Held(); !held {
		t.Fatal("capture failed; test cannot proceed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Invalidate of a held token did not panic")
		}
	}()
	tok.Invalidate()
}
