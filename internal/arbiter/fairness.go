package arbiter

// Fairness implements the "well served nodes sit on their hands for a
// while" policy of Fair Token Channel / Fair Slot (Vantrease et al.,
// MICRO'09), which the paper adopts for its handshake schemes (§III-D):
// nodes close to the home node see tokens first and, once setaside buffers
// or circulation remove the natural throttling of HOL blocking, would
// starve far-downstream senders.
//
// The policy is a per-(channel, node) service quota: within a window of W
// cycles a node may capture at most max(Q, W/requesters) tokens of a given
// channel, where requesters is the channel's live count of distinct
// requesting nodes. The quota binds only while the channel is contended
// (requesters > 1): an uncontended sender keeps the full channel
// bandwidth, so single-writer patterns like Bit Complement pay nothing; a
// lightly shared channel (few requesters) allows each sharer close to the
// full rate; and under a hot-spot pile-up of dozens of senders every
// upstream node is capped at its egalitarian share W/requesters, so tokens
// survive all the way to the farthest segment — no starvation.
type Fairness struct {
	enabled bool
	window  int64
	quota   int

	epoch       int64
	nextRoll    int64 // first cycle of the next window: (epoch+1)*window
	served      []int32
	servedEpoch []int64

	// Distinct requesters per window: reqEpoch stamps a node's first
	// request of the current window; prevReqCount carries the previous
	// window's verdict so allowances are sane right after a boundary.
	reqEpoch     []int64
	reqCount     int
	prevReqCount int

	yields int64
}

// FairnessConfig parameterises the policy.
type FairnessConfig struct {
	// Enabled switches the policy on. The paper enables it for every
	// handshake scheme; basic GHS/DHS are "partially fair" through HOL
	// blocking alone, so disabling it there is faithful too.
	Enabled bool
	// Window is the quota window in cycles (default 512).
	Window int64
	// Quota is the *floor* of the per-window capture allowance under
	// contention; the effective allowance is max(Quota, Window/requesters)
	// (default 8 — the egalitarian share of a fully contended 64-node
	// channel with the default window).
	Quota int
}

// DefaultFairness returns the configuration used in the evaluation. The
// floor of 16 captures per 512-cycle window (3.1% of a channel) sits above
// any single node's fair demand at uniform-traffic saturation — so the
// policy costs the synthetic sweeps nothing — while still starving-proof:
// a node hammering a hot channel beyond 3.1% yields to everyone behind it.
func DefaultFairness() FairnessConfig {
	return FairnessConfig{Enabled: true, Window: 512, Quota: 16}
}

// NewFairness builds the per-node policy state for one channel.
func NewFairness(nodes int, cfg FairnessConfig) *Fairness {
	f := &Fairness{
		enabled: cfg.Enabled,
		window:  cfg.Window,
		quota:   cfg.Quota,
	}
	if f.window <= 0 {
		f.window = 512
	}
	if f.quota <= 0 {
		f.quota = 16
	}
	f.nextRoll = f.window
	if f.enabled {
		f.served = make([]int32, nodes)
		f.servedEpoch = make([]int64, nodes)
		f.reqEpoch = make([]int64, nodes)
		for i := range f.servedEpoch {
			f.servedEpoch[i] = -1
			f.reqEpoch[i] = -1
		}
	}
	return f
}

// BeginCycle advances the policy's clock; the owning channel calls it once
// per cycle before any Allow/OnCapture. It returns true when a new window
// has just started — the caller then re-registers still-backlogged
// requesters via OnRequest so sustained contention is counted across
// window boundaries.
func (f *Fairness) BeginCycle(now int64) bool {
	if f == nil || !f.enabled {
		return false
	}
	if now < f.nextRoll {
		// Inside the current window: the common case pays one compare,
		// not a division.
		return false
	}
	f.epoch = now / f.window
	f.nextRoll = (f.epoch + 1) * f.window
	f.prevReqCount = f.reqCount
	f.reqCount = 0
	// served[] and reqEpoch[] reset lazily via their epoch stamps.
	return true
}

// OnRequest notes that a node wants this channel; the first note per
// window counts it as a distinct contender.
func (f *Fairness) OnRequest(node int) {
	if f == nil || !f.enabled {
		return
	}
	if f.reqEpoch[node] != f.epoch {
		f.reqEpoch[node] = f.epoch
		f.reqCount++
	}
}

// Contenders reports the distinct-requester estimate the allowance uses.
func (f *Fairness) Contenders() int {
	if f.reqCount > f.prevReqCount {
		return f.reqCount
	}
	return f.prevReqCount
}

// Allow is consulted when a requesting node would capture a token. It
// returns false — counting a yield — when the node has exhausted its
// effective allowance, max(Quota, Window/contenders), on a channel with
// more than one distinct requester this window.
func (f *Fairness) Allow(node int) bool {
	if f == nil || !f.enabled {
		return true
	}
	contenders := f.Contenders()
	if contenders <= 1 {
		return true
	}
	allowance := f.window / int64(contenders)
	if allowance < int64(f.quota) {
		allowance = int64(f.quota)
	}
	if f.servedEpoch[node] == f.epoch && int64(f.served[node]) >= allowance {
		f.yields++
		return false
	}
	return true
}

// OnCapture records a successful capture against the node's quota.
func (f *Fairness) OnCapture(node int) {
	if f == nil || !f.enabled {
		return
	}
	if f.servedEpoch[node] != f.epoch {
		f.servedEpoch[node] = f.epoch
		f.served[node] = 0
	}
	f.served[node]++
}

// Yields reports how many capture opportunities were declined by policy.
func (f *Fairness) Yields() int64 { return f.yields }
