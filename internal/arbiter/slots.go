package arbiter

import "fmt"

// SlotEmitter implements distributed arbitration: the home node emits a
// fresh token every cycle (subject to an emission gate), and each live
// token sweeps one loop segment per cycle until it is captured or completes
// the loop and expires.
//
// Because a token of age a sweeps exactly the offsets of segment a, and
// tokens are at distinct ages, each node sees at most one token of a given
// channel per cycle; and because a packet grabbed from the token emitted at
// cycle t always lands at the home at cycle t+R+1, the data channel is
// collision-free by construction. Token Slot gates emission on credits; DHS
// emits unconditionally; DHS-with-circulation suppresses emission on cycles
// where the home reinjects a packet.
type SlotEmitter struct {
	nodes     int
	roundTrip int
	perCycle  int

	// live[emitCycle % len(live)] is true when the token emitted that
	// cycle is still travelling.
	live []bool
	// emitBase tracks which absolute cycles the live window covers.
	lastEmitCheck int64

	emitted  int64
	captured int64
	expired  int64
}

// NewSlotEmitter builds the token-slot machinery for one channel of a loop
// with the given geometry numbers.
func NewSlotEmitter(nodes, roundTrip, perCycle int) *SlotEmitter {
	return &SlotEmitter{
		nodes:     nodes,
		roundTrip: roundTrip,
		perCycle:  perCycle,
		live:      make([]bool, roundTrip+1),
	}
}

// Stats reports cumulative (emitted, captured, expired) token counts.
func (s *SlotEmitter) Stats() (emitted, captured, expired int64) {
	return s.emitted, s.captured, s.expired
}

// Live reports the number of tokens currently travelling.
func (s *SlotEmitter) Live() int {
	n := 0
	for _, l := range s.live {
		if l {
			n++
		}
	}
	return n
}

// Advance performs one cycle of token motion at cycle now:
//
//  1. the token emitted at now-R (if still live) completes the loop and
//     expires — onExpire lets Token Slot reclaim the unused credit;
//  2. every live token of age 1..R sweeps its segment; capture is asked in
//     downstream order and the first true consumes the token;
//  3. a new token is emitted iff emitGate() allows.
//
// Advance must be called exactly once per cycle with strictly increasing
// now values.
func (s *SlotEmitter) Advance(now int64, emitGate func() bool, capture CaptureFunc, onExpire func()) {
	if now <= s.lastEmitCheck && s.emitted+s.expired+s.captured > 0 {
		panic(fmt.Sprintf("arbiter: SlotEmitter.Advance called twice for cycle %d", now))
	}
	s.lastEmitCheck = now

	// 1. Expire the token that has completed the loop (age R+1 this cycle).
	oldIdx := int((now - int64(s.roundTrip) - 1) % int64(len(s.live)))
	if oldIdx >= 0 && s.live[oldIdx] {
		s.live[oldIdx] = false
		s.expired++
		if onExpire != nil {
			onExpire()
		}
	}

	// 2. Sweep every live token. The token emitted at cycle e has age
	// now-e and covers offsets [(age-1)*perCycle+1, age*perCycle].
	for age := 1; age <= s.roundTrip; age++ {
		emit := now - int64(age)
		if emit < 0 {
			break
		}
		idx := int(emit % int64(len(s.live)))
		if !s.live[idx] {
			continue
		}
		start := (age-1)*s.perCycle + 1
		for i := 0; i < s.perCycle; i++ {
			off := start + i
			if off >= s.nodes {
				break
			}
			if capture(off) {
				s.live[idx] = false
				s.captured++
				break
			}
		}
	}

	// 3. Emit this cycle's token.
	if emitGate == nil || emitGate() {
		idx := int(now % int64(len(s.live)))
		if s.live[idx] {
			panic(fmt.Sprintf("arbiter: token slot emitted at cycle %d collides with live token", now))
		}
		s.live[idx] = true
		s.emitted++
	}
}
