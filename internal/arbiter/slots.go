package arbiter

import "fmt"

// SlotEmitter implements distributed arbitration: the home node emits a
// fresh token every cycle (subject to an emission gate), and each live
// token sweeps one loop segment per cycle until it is captured or completes
// the loop and expires.
//
// Because a token of age a sweeps exactly the offsets of segment a, and
// tokens are at distinct ages, each node sees at most one token of a given
// channel per cycle; and because a packet grabbed from the token emitted at
// cycle t always lands at the home at cycle t+R+1, the data channel is
// collision-free by construction. Token Slot gates emission on credits; DHS
// emits unconditionally; DHS-with-circulation suppresses emission on cycles
// where the home reinjects a packet.
type SlotEmitter struct {
	nodes     int
	roundTrip int
	perCycle  int

	// live[emitCycle % len(live)] is true when the token emitted that
	// cycle is still travelling.
	live []bool
	// emitBase tracks which absolute cycles the live window covers.
	lastEmitCheck int64
	// curIdx is now % len(live) for the cycle opened by BeginCycle — the
	// shared ring position of this cycle's emission and expiry (len(live)
	// is exactly roundTrip+1, so the expiring token sits where the new one
	// goes). Caching it makes LiveAt/Consume/Emit division-free.
	curIdx int

	emitted  int64
	captured int64
	expired  int64
}

// NewSlotEmitter builds the token-slot machinery for one channel of a loop
// with the given geometry numbers.
func NewSlotEmitter(nodes, roundTrip, perCycle int) *SlotEmitter {
	return &SlotEmitter{
		nodes:     nodes,
		roundTrip: roundTrip,
		perCycle:  perCycle,
		live:      make([]bool, roundTrip+1),
	}
}

// Stats reports cumulative (emitted, captured, expired) token counts.
func (s *SlotEmitter) Stats() (emitted, captured, expired int64) {
	return s.emitted, s.captured, s.expired
}

// Live reports the number of tokens currently travelling.
func (s *SlotEmitter) Live() int {
	n := 0
	for _, l := range s.live {
		if l {
			n++
		}
	}
	return n
}

// Advance performs one cycle of token motion at cycle now:
//
//  1. the token emitted at now-R (if still live) completes the loop and
//     expires — onExpire lets Token Slot reclaim the unused credit;
//  2. every live token of age 1..R sweeps its segment; capture is asked in
//     downstream order and the first true consumes the token;
//  3. a new token is emitted iff emitGate() allows.
//
// Advance must be called exactly once per cycle with strictly increasing
// now values.
func (s *SlotEmitter) Advance(now int64, emitGate func() bool, capture CaptureFunc, onExpire func()) {
	s.AdvanceSweep(now, emitGate, func(start, end int) int {
		for off := start; off < end; off++ {
			if capture(off) {
				return off
			}
		}
		return -1
	}, onExpire)
}

// AdvanceSweep is Advance with segment-granular capture (see SweepFunc in
// global.go): each live token asks sweep for its whole segment in one call
// instead of one CaptureFunc call per node position. A nil sweep skips the
// capture scan entirely — expiry and emission still run, so a cycle with
// no requesters costs O(1).
//
// The engine's hot path does not use this composed form: it calls the
// BeginCycle / LiveAt / Consume / Emit primitives directly, driving the
// capture scan from its requester table instead of iterating every live
// token (see core's slot arbitration binder). The two decompositions make
// exactly the same stateful calls in the same order.
func (s *SlotEmitter) AdvanceSweep(now int64, emitGate func() bool, sweep SweepFunc, onExpire func()) {
	s.BeginCycle(now, onExpire)

	// Sweep every live token. The token emitted at cycle e has age
	// now-e and covers offsets [(age-1)*perCycle+1, age*perCycle].
	if sweep != nil {
		for age := 1; age <= s.roundTrip; age++ {
			if now-int64(age) < 0 {
				break
			}
			if !s.LiveAt(now, age) {
				continue
			}
			start := (age-1)*s.perCycle + 1
			end := start + s.perCycle
			if end > s.nodes {
				end = s.nodes
			}
			if start >= end {
				continue
			}
			if off := sweep(start, end); off >= 0 {
				s.Consume(now, age)
			}
		}
	}

	s.Emit(now, emitGate)
}

// BeginCycle opens cycle now: it enforces the once-per-cycle contract and
// expires the token that has completed the loop (age R+1 this cycle),
// invoking onExpire so Token Slot can reclaim the unused credit. Must be
// called before any LiveAt/Consume/Emit for the cycle.
//
// The expiring token was emitted exactly len(live) = roundTrip+1 cycles
// ago, so it occupies the same ring position the new token will take —
// before cycle roundTrip+1 that position cannot be live (its emit cycle
// would predate the simulation), so no early-cycle guard is needed.
func (s *SlotEmitter) BeginCycle(now int64, onExpire func()) {
	if now <= s.lastEmitCheck && s.emitted+s.expired+s.captured > 0 {
		panic(fmt.Sprintf("arbiter: SlotEmitter.Advance called twice for cycle %d", now))
	}
	prev := s.lastEmitCheck
	s.lastEmitCheck = now

	if now == prev+1 {
		// Consecutive cycles advance the ring position by one — no
		// division on the hot path.
		if s.curIdx++; s.curIdx == len(s.live) {
			s.curIdx = 0
		}
	} else {
		s.curIdx = int(now % int64(len(s.live)))
	}
	if s.live[s.curIdx] {
		s.live[s.curIdx] = false
		s.expired++
		if onExpire != nil {
			onExpire()
		}
	}
}

// LiveAt reports whether the token of the given age (1..roundTrip) is
// still travelling at cycle now, which must be the cycle opened by
// BeginCycle. Ages older than the simulation start report false.
func (s *SlotEmitter) LiveAt(now int64, age int) bool {
	if int64(age) > now {
		return false
	}
	i := s.curIdx - age
	if i < 0 {
		i += len(s.live)
	}
	return s.live[i]
}

// Consume marks the live token of the given age captured at cycle now
// (the cycle opened by BeginCycle).
func (s *SlotEmitter) Consume(now int64, age int) {
	i := s.curIdx - age
	if i < 0 {
		i += len(s.live)
	}
	s.live[i] = false
	s.captured++
}

// Emit closes cycle now (the cycle opened by BeginCycle) by emitting this
// cycle's token iff emitGate allows (nil = always).
func (s *SlotEmitter) Emit(now int64, emitGate func() bool) {
	if emitGate == nil || emitGate() {
		if s.live[s.curIdx] {
			panic(fmt.Sprintf("arbiter: token slot emitted at cycle %d collides with live token", now))
		}
		s.live[s.curIdx] = true
		s.emitted++
	}
}
