package arbiter

import (
	"testing"
)

// collectSweep records the offsets a token polls.
func collectSweep(t *GlobalToken, rounds int) []int {
	var seen []int
	for i := 0; i < rounds; i++ {
		t.Advance(func(off int) bool {
			seen = append(seen, off)
			return false
		}, nil)
	}
	return seen
}

func TestGlobalTokenSweepOrder(t *testing.T) {
	tok := NewGlobalToken(64, 8)
	seen := collectSweep(tok, 8)
	// One full loop: offsets 1..63 plus the home position skipped (home
	// fires onHome, not capture), in downstream order.
	want := 0
	for _, off := range seen {
		want++
		if want == 64 {
			want = 0 // home position is skipped by capture, so not seen
			want++
		}
		if off != want {
			t.Fatalf("sweep out of order: got %d, want %d", off, want)
		}
	}
	if len(seen) != 63 {
		t.Fatalf("one loop polled %d offsets, want 63", len(seen))
	}
}

func TestGlobalTokenHomePass(t *testing.T) {
	tok := NewGlobalToken(64, 8)
	passes := 0
	for i := 0; i < 16; i++ { // two loops
		tok.Advance(func(int) bool { return false }, func() { passes++ })
	}
	if passes != 2 {
		t.Fatalf("home passes = %d over two loops, want 2", passes)
	}
	if tok.HomePasses() != 2 {
		t.Fatalf("HomePasses = %d", tok.HomePasses())
	}
}

func TestGlobalTokenCaptureParks(t *testing.T) {
	tok := NewGlobalToken(64, 8)
	captured := tok.Advance // silence linters
	_ = captured
	tok.Advance(func(off int) bool { return off == 5 }, nil)
	off, held := tok.Held()
	if !held || off != 5 {
		t.Fatalf("Held = %d,%v, want 5,true", off, held)
	}
	// A held token must not move.
	tok.Advance(func(int) bool {
		t.Fatal("held token polled a node")
		return false
	}, nil)
	// Release resumes from the holder's position.
	tok.Release()
	var next []int
	tok.Advance(func(off int) bool { next = append(next, off); return false }, nil)
	if len(next) == 0 || next[0] != 6 {
		t.Fatalf("after release sweep starts at %v, want 6", next)
	}
	if tok.Captures() != 1 {
		t.Fatalf("Captures = %d", tok.Captures())
	}
}

func TestGlobalTokenDoubleReleasePanics(t *testing.T) {
	tok := NewGlobalToken(64, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a free token did not panic")
		}
	}()
	tok.Release()
}

func TestGlobalTokenCaptureStopsSweep(t *testing.T) {
	tok := NewGlobalToken(64, 8)
	var polled []int
	tok.Advance(func(off int) bool {
		polled = append(polled, off)
		return off == 3
	}, nil)
	if len(polled) != 3 {
		t.Fatalf("sweep after capture continued: polled %v", polled)
	}
}

func TestSlotEmitterTimeline(t *testing.T) {
	s := NewSlotEmitter(64, 8, 8)
	// The token emitted at cycle 0 must poll offset 12 (segment 2) at
	// cycle 2.
	polledAt := map[int64][]int{}
	for now := int64(0); now < 4; now++ {
		gate := func() bool { return now == 0 } // single token
		s.Advance(now, gate, func(off int) bool {
			polledAt[now] = append(polledAt[now], off)
			return false
		}, nil)
	}
	if got := polledAt[1]; len(got) != 8 || got[0] != 1 || got[7] != 8 {
		t.Fatalf("age-1 sweep = %v, want 1..8", got)
	}
	if got := polledAt[2]; len(got) != 8 || got[0] != 9 {
		t.Fatalf("age-2 sweep = %v, want 9..16", got)
	}
}

func TestSlotEmitterExpiry(t *testing.T) {
	s := NewSlotEmitter(64, 8, 8)
	expired := 0
	for now := int64(0); now < 20; now++ {
		gate := func() bool { return now == 0 }
		s.Advance(now, gate, func(int) bool { return false }, func() { expired++ })
		if expired > 0 && now < 9 {
			t.Fatalf("token expired at cycle %d, want 9", now)
		}
	}
	if expired != 1 {
		t.Fatalf("expired = %d, want 1", expired)
	}
	em, cap0, ex := s.Stats()
	if em != 1 || cap0 != 0 || ex != 1 {
		t.Fatalf("Stats = %d,%d,%d", em, cap0, ex)
	}
}

func TestSlotEmitterCaptureConsumes(t *testing.T) {
	s := NewSlotEmitter(64, 8, 8)
	captures := 0
	for now := int64(0); now < 20; now++ {
		gate := func() bool { return now == 0 }
		s.Advance(now, gate, func(off int) bool {
			if off == 12 { // segment 2, polled at cycle 2
				captures++
				return true
			}
			return false
		}, nil)
	}
	if captures != 1 {
		t.Fatalf("captures = %d", captures)
	}
	if s.Live() != 0 {
		t.Fatalf("captured token still live")
	}
	_, capN, exN := s.Stats()
	if capN != 1 || exN != 0 {
		t.Fatalf("captured %d expired %d", capN, exN)
	}
}

func TestSlotEmitterContinuousEmission(t *testing.T) {
	s := NewSlotEmitter(64, 8, 8)
	for now := int64(0); now < 100; now++ {
		s.Advance(now, nil, func(int) bool { return false }, nil)
		if s.Live() > 9 {
			t.Fatalf("cycle %d: %d live tokens (max R+1: R travelling plus this cycle's emission)", now, s.Live())
		}
	}
	em, _, ex := s.Stats()
	if em != 100 {
		t.Fatalf("emitted %d in 100 cycles", em)
	}
	// Tokens live for R+1 cycles (emission through the return sweep), so
	// the last 9 emissions are still travelling at the end.
	if ex != 100-9 {
		t.Fatalf("expired %d, want %d", ex, 100-9)
	}
}

func TestSlotEmitterGateBlocksEmission(t *testing.T) {
	s := NewSlotEmitter(64, 8, 8)
	for now := int64(0); now < 50; now++ {
		s.Advance(now, func() bool { return false }, func(int) bool { return false }, nil)
	}
	em, _, _ := s.Stats()
	if em != 0 {
		t.Fatalf("gated emitter emitted %d tokens", em)
	}
}

func TestFairnessQuota(t *testing.T) {
	f := NewFairness(64, FairnessConfig{Enabled: true, Window: 100, Quota: 2})
	f.BeginCycle(0)
	node := 1
	// Single requester: quota never binds.
	f.OnRequest(node)
	for i := 0; i < 10; i++ {
		if !f.Allow(node) {
			t.Fatalf("uncontended capture %d disallowed", i)
		}
		f.OnCapture(node)
	}
	// Contended in a fresh window with 50 contenders: the egalitarian
	// share 100/50 equals the floor of 2 — two captures, then yields.
	f.BeginCycle(100)
	for n := 0; n < 50; n++ {
		f.OnRequest(n)
	}
	for i := 0; i < 2; i++ {
		if !f.Allow(node) {
			t.Fatalf("capture %d within quota disallowed", i)
		}
		f.OnCapture(node)
	}
	if f.Allow(node) {
		t.Fatal("capture beyond quota allowed under contention")
	}
	// Other nodes keep their own quotas.
	if !f.Allow(2) {
		t.Fatal("unserved node blocked")
	}
	// The next window resets the quota; contention carries over via the
	// previous window's count.
	f.BeginCycle(200)
	if f.Contenders() != 50 {
		t.Fatalf("Contenders = %d after boundary, want carried 50", f.Contenders())
	}
	if !f.Allow(node) {
		t.Fatal("quota did not reset at the window boundary")
	}
	if f.Yields() != 1 {
		t.Fatalf("Yields = %d", f.Yields())
	}
}

func TestFairnessEgalitarianAllowance(t *testing.T) {
	// With few contenders the allowance is Window/contenders, far above
	// the floor: two sharers of a 100-cycle window get 50 each.
	f := NewFairness(8, FairnessConfig{Enabled: true, Window: 100, Quota: 2})
	f.BeginCycle(0)
	f.OnRequest(0)
	f.OnRequest(1)
	for i := 0; i < 50; i++ {
		if !f.Allow(0) {
			t.Fatalf("capture %d under-allowed with 2 contenders", i)
		}
		f.OnCapture(0)
	}
	if f.Allow(0) {
		t.Fatal("51st capture of a 100-cycle window allowed to one of two sharers")
	}
}

func TestFairnessQuotaLazyReset(t *testing.T) {
	f := NewFairness(2, FairnessConfig{Enabled: true, Window: 10, Quota: 1})
	f.BeginCycle(0)
	f.OnRequest(0)
	f.OnRequest(1)
	// Exhaust node 0's floor allowance (window/contenders = 5).
	for i := 0; i < 5; i++ {
		f.OnCapture(0)
	}
	if f.Allow(0) {
		t.Fatal("allowance exceeded")
	}
	// Skip several windows without captures; the stale count must not
	// carry over (contention does carry one window, then decays).
	f.BeginCycle(50)
	f.OnRequest(0)
	f.OnRequest(1)
	if !f.Allow(0) {
		t.Fatal("stale served count survived window skip")
	}
}

func TestFairnessDisabled(t *testing.T) {
	f := NewFairness(4, FairnessConfig{Enabled: false})
	f.BeginCycle(0)
	for i := 0; i < 100; i++ {
		if !f.Allow(2) {
			t.Fatal("disabled policy yielded")
		}
		f.OnCapture(2)
	}
	var nilF *Fairness
	nilF.BeginCycle(0)
	nilF.OnRequest(0)
	if !nilF.Allow(0) {
		t.Fatal("nil policy must allow")
	}
	nilF.OnCapture(0) // must not panic
}

func TestFairnessDefaultsApplied(t *testing.T) {
	f := NewFairness(2, FairnessConfig{Enabled: true})
	if f.window != 512 || f.quota != 16 {
		t.Fatalf("defaults not applied: %d/%d", f.window, f.quota)
	}
}
