// Package arbiter implements optical channel arbitration for MWSR
// nanophotonic rings: the single relayed token of global arbitration
// (Token Channel, GHS) and the per-cycle token slots of distributed
// arbitration (Token Slot, DHS), plus the "well-served nodes sit on their
// hands" fairness policy both inherit from Fair Token Channel / Fair Slot.
//
// The arbiters are deliberately ignorant of packets and buffers: they only
// know node offsets and yes/no capture answers supplied through callbacks.
// Flow-control semantics (credits, handshakes, circulation) are composed on
// top by the network core.
package arbiter

// CaptureFunc is asked, in downstream sweep order, whether the node at the
// given offset captures the token this cycle. Returning true consumes the
// token (distributed) or parks it at the node (global).
type CaptureFunc func(offset int) bool

// SweepFunc is the segment-granular capture interface: scan offsets
// [start, end) in downstream order and return the first offset that
// captures, or -1. Handing the arbiter one callback per token segment —
// instead of one CaptureFunc call per node position — lets the network
// core reject non-requesting nodes with a contiguous array scan, which is
// the difference between ~4096 closure calls per cycle and ~64 on an idle
// 64-node ring. A nil SweepFunc means no node can capture this cycle
// (the caller has proven the channel has no requesters); token motion,
// expiry and emission proceed as usual.
type SweepFunc func(start, end int) int

// GlobalToken is the single arbitration token of a globally arbitrated
// channel. It circulates at light speed — NodesPerCycle node positions per
// cycle — until a sender captures it; the holder parks the token while it
// transmits and releases it back onto the loop when done.
//
// For Token Channel the token also carries the home node's credit count
// (Credits); for GHS the field stays unused, which is exactly the paper's
// point: arbitration without flow-control state.
type GlobalToken struct {
	nodes    int
	perCycle int

	pos    int // last offset swept (0 = home position)
	holder int // offset of current holder, -1 when the token is free

	// Credits is the credit count piggybacked on the token (Token Channel
	// only). The network core decrements it on each send; PassHome adds
	// reimbursements via the onHome callback.
	Credits int

	// lost marks the token destroyed in the waveguide (fault injection):
	// it no longer circulates and can never be captured until the home
	// node's watchdog regenerates it. Physically the loop simply goes
	// silent — no light on the arbitration wavelength.
	lost bool

	captures   int64
	homePasses int64
	regens     int64
}

// NewGlobalToken returns a free token parked at the home position of a loop
// with the given node count and per-cycle light speed.
func NewGlobalToken(nodes, perCycle int) *GlobalToken {
	return &GlobalToken{nodes: nodes, perCycle: perCycle, holder: -1}
}

// Held reports whether a sender currently holds the token, and at which
// offset.
func (t *GlobalToken) Held() (offset int, held bool) {
	return t.holder, t.holder >= 0
}

// Captures reports how many times the token has been captured.
func (t *GlobalToken) Captures() int64 { return t.captures }

// Lost reports whether the token is currently destroyed.
func (t *GlobalToken) Lost() bool { return t.lost }

// Regenerations reports how many times the home node re-emitted the token.
func (t *GlobalToken) Regenerations() int64 { return t.regens }

// Invalidate destroys a free circulating token (fault injection). A held
// token cannot be invalidated — a holder's token is latched electrically
// at the capturing node, not travelling the waveguide — and attempting to
// is a caller bug.
func (t *GlobalToken) Invalidate() {
	if t.holder >= 0 {
		panic("arbiter: invalidating a held global token")
	}
	t.lost = true
}

// Regenerate re-emits a lost token from the home position. This is the
// home node's watchdog action after a bounded silence window; the
// duplicate-token guard makes a spurious firing safe: if the token is not
// actually lost (still circulating, or parked at a holder — the watchdog
// merely failed to observe it), Regenerate refuses and returns false, so
// two tokens can never coexist on the loop. Physically the guard is the
// home node's epoch filter: a re-emission is tagged with a flipped epoch
// bit and the original, had it survived, would be absorbed at home on its
// next pass.
func (t *GlobalToken) Regenerate() bool {
	if !t.lost {
		return false
	}
	t.lost = false
	t.pos = 0
	t.regens++
	return true
}

// HomePasses reports how many times the token has swept past the home node.
func (t *GlobalToken) HomePasses() int64 { return t.homePasses }

// Advance moves a free token one cycle down the loop, sweeping the next
// NodesPerCycle offsets in order. onHome fires when the sweep crosses the
// home position (offset 0) — Token Channel reimburses freed credits there.
// capture is consulted for every non-home offset; the first true parks the
// token at that offset and ends the sweep. A held or lost token does not
// move.
func (t *GlobalToken) Advance(capture CaptureFunc, onHome func()) {
	t.AdvanceSweep(func(start, end int) int {
		for off := start; off < end; off++ {
			if capture(off) {
				return off
			}
		}
		return -1
	}, onHome)
}

// AdvanceSweep is Advance with segment-granular capture (see SweepFunc).
// The cycle's sweep window covers offsets pos+1..pos+perCycle in downstream
// order; it wraps past the home position at most once, so sweep is invoked
// on at most two contiguous ranges with the home crossing between them.
func (t *GlobalToken) AdvanceSweep(sweep SweepFunc, onHome func()) {
	if t.holder >= 0 || t.lost {
		return
	}
	start, end := t.pos+1, t.pos+t.perCycle+1 // absolute, end exclusive
	if end <= t.nodes {
		if sweep != nil {
			if off := sweep(start, end); off >= 0 {
				t.park(off)
				return
			}
		}
	} else {
		if sweep != nil && start < t.nodes {
			if off := sweep(start, t.nodes); off >= 0 {
				t.park(off)
				return
			}
		}
		t.homePasses++
		if onHome != nil {
			onHome()
		}
		if rest := end - t.nodes; rest > 1 && sweep != nil {
			if off := sweep(1, rest); off >= 0 {
				t.park(off)
				return
			}
		}
	}
	t.pos = (t.pos + t.perCycle) % t.nodes
}

// park latches the token at a capturing offset mid-sweep.
func (t *GlobalToken) park(off int) {
	t.holder = off
	t.pos = off
	t.captures++
}

// Release frees a held token; it resumes circulating from the holder's
// position on the next Advance. Release panics if the token is free —
// double releases are arbitration bugs.
func (t *GlobalToken) Release() {
	if t.holder < 0 {
		panic("arbiter: releasing a free global token")
	}
	t.pos = t.holder
	t.holder = -1
}
