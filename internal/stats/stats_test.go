package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(100)
	for _, v := range []int64{1, 2, 2, 3, 100} {
		h.Add(v)
	}
	if h.Count() != 5 || h.Sum() != 108 || h.Max() != 100 {
		t.Fatalf("count %d sum %d max %d", h.Count(), h.Sum(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-21.6) > 1e-9 {
		t.Fatalf("mean %.3f", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0)
	for v := int64(1); v <= 100; v++ {
		h.Add(v)
	}
	cases := []struct {
		q    float64
		want int64
	}{{0.01, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100}}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%.2f) = %d, want %d", c.q, got, c.want)
		}
	}
	// Clamping.
	if h.Quantile(-1) != 1 || h.Quantile(2) != 100 {
		t.Error("quantile clamping wrong")
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(10)
	h.Add(5)
	h.Add(1000) // overflow bin
	if h.Count() != 2 || h.Max() != 1000 {
		t.Fatalf("count %d max %d", h.Count(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-502.5) > 1e-9 {
		t.Fatalf("mean with overflow %.2f", got)
	}
	if got := h.Quantile(1); got != 11 {
		t.Fatalf("overflowed quantile = %d, want capValue+1 = 11", got)
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewHistogram(0).Add(-1)
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(100), NewHistogram(100)
	a.Add(1)
	a.Add(2)
	b.Add(3)
	b.Add(200) // overflow
	a.Merge(b)
	if a.Count() != 4 || a.Sum() != 206 || a.Max() != 200 {
		t.Fatalf("merged: count %d sum %d max %d", a.Count(), a.Sum(), a.Max())
	}
	a.Merge(nil) // no-op
	if a.Count() != 4 {
		t.Fatal("nil merge changed state")
	}
}

func TestHistogramMeanMatchesDirect(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram(1 << 15)
		var sum int64
		for _, v := range vals {
			h.Add(int64(v))
			sum += int64(v)
		}
		if len(vals) == 0 {
			return h.Mean() == 0
		}
		want := float64(sum) / float64(len(vals))
		return math.Abs(h.Mean()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVar(t *testing.T) {
	var m MeanVar
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 || math.Abs(m.Mean()-5) > 1e-12 {
		t.Fatalf("n %d mean %f", m.N(), m.Mean())
	}
	if math.Abs(m.Var()-4) > 1e-12 {
		t.Fatalf("var %f, want 4", m.Var())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("min %f max %f", m.Min(), m.Max())
	}
}

func TestTableText(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", 1)
	tab.AddRow("b", 2.5)
	out := tab.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") || !strings.Contains(out, "2.500") {
		t.Fatalf("rendered:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(`comma,here`, `quote"here`)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"comma,here\",\"quote\"\"here\"\n"
	if b.String() != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", b.String(), want)
	}
}
