// Package stats provides the measurement plumbing shared by the simulator
// and the experiment harness: integer histograms for cycle-valued
// quantities, running mean/variance accumulators, and plain-text/CSV table
// rendering for the figure and table reproductions.
package stats

// Histogram counts occurrences of non-negative integer values (packet
// latencies in cycles, queue depths, ...). Values are binned exactly up to
// a cap; anything above the cap lands in a single overflow bin that still
// contributes to Count/Sum/Max so means stay exact even when the tail is
// clipped.
type Histogram struct {
	bins     []int64
	overflow int64
	count    int64
	sum      int64
	max      int64
	capValue int64
}

// NewHistogram returns a histogram with exact bins for values in
// [0, capValue]; larger values are pooled. capValue <= 0 selects a default
// suited to packet latencies (65535 cycles).
func NewHistogram(capValue int64) *Histogram {
	if capValue <= 0 {
		capValue = 1<<16 - 1
	}
	return &Histogram{capValue: capValue}
}

// Add records one observation. Negative values panic: cycle-valued metrics
// are non-negative by construction, so a negative observation is a
// timestamping bug.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		panic("stats: negative histogram value")
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v > h.capValue {
		h.overflow++
		return
	}
	if int64(len(h.bins)) <= v {
		nb := make([]int64, v+v/2+16)
		copy(nb, h.bins)
		h.bins = nb
	}
	h.bins[v]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the smallest value v such that at least q of the
// observations are <= v. Observations pooled in the overflow bin are
// treated as capValue+1, so quantiles that fall into the clipped tail are
// reported as capValue+1 (a lower bound). q outside (0,1] is clamped.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(h.count) + 0.999999)
	if target > h.count {
		target = h.count
	}
	if target < 1 {
		target = 1
	}
	var seen int64
	for v, c := range h.bins {
		seen += c
		if seen >= target {
			return int64(v)
		}
	}
	return h.capValue + 1
}

// P50 returns the median observation — sugar for Quantile(0.5).
func (h *Histogram) P50() int64 { return h.Quantile(0.5) }

// P99 returns the 99th-percentile observation — sugar for Quantile(0.99).
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// P999 returns the 99.9th-percentile observation — the deep-tail SLO
// quantile of the workload reports; sugar for Quantile(0.999).
func (h *Histogram) P999() int64 { return h.Quantile(0.999) }

// Merge folds other into h (used when aggregating per-channel histograms).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for v, c := range other.bins {
		if c == 0 {
			continue
		}
		if int64(len(h.bins)) <= int64(v) {
			nb := make([]int64, v+v/2+16)
			copy(nb, h.bins)
			h.bins = nb
		}
		h.bins[v] += c
	}
	h.overflow += other.overflow
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// MeanVar accumulates a running mean and variance (Welford's algorithm)
// for float-valued series such as per-node throughputs.
type MeanVar struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (m *MeanVar) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the observation count.
func (m *MeanVar) N() int64 { return m.n }

// Mean returns the running mean.
func (m *MeanVar) Mean() float64 { return m.mean }

// Var returns the (population) variance.
func (m *MeanVar) Var() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// Min returns the smallest observation.
func (m *MeanVar) Min() float64 { return m.min }

// Max returns the largest observation.
func (m *MeanVar) Max() float64 { return m.max }
