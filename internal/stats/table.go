package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them as an aligned plain-text table or
// as CSV — the output format of every figure/table reproduction binary.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 3
// decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len reports the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180 CSV (quoting only when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the text form (for tests and logs).
func (t *Table) String() string {
	var b strings.Builder
	_ = t.WriteText(&b)
	return b.String()
}
