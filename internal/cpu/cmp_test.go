package cpu

import (
	"testing"

	"photon/internal/core"
	"photon/internal/sim"
)

func newNet(t testing.TB, scheme core.Scheme) *core.Network {
	t.Helper()
	cfg := core.DefaultConfig(scheme)
	net, err := core.NewNetwork(cfg, sim.Window{Warmup: 0, Measure: 1 << 30, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestParamsValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.MSHRs = 0 },
		func(p *Params) { p.IssueWidth = 0 },
		func(p *Params) { p.MissPer1kInstr = -1 },
		func(p *Params) { p.BankLatency = 0 },
		func(p *Params) { p.BanksPerNode = 0 },
		func(p *Params) { p.Burstiness = 0.5 },
		func(p *Params) { p.Burstiness = 4; p.MeanBurst = 0 },
		func(p *Params) { p.PhaseSync = 1.5 },
	}
	for i, mod := range bad {
		p := DefaultParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTransactionConservation runs a closed loop and checks every request
// eventually produces a reply: misses == replies once the network drains.
func TestTransactionConservation(t *testing.T) {
	net := newNet(t, core.DHSSetaside)
	p := DefaultParams()
	p.MissPer1kInstr = 20
	m, err := New(p, net)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(3000)
	// Stop issuing, drain outstanding transactions.
	for i := 0; i < 2000 && m.replies < m.misses; i++ {
		now := net.Now()
		for _, r := range m.bankPipe.PopDue(now) {
			net.Inject(r.bankCore, r.dstNode, 2, r.tag)
		}
		net.Step()
	}
	if m.replies != m.misses {
		t.Fatalf("misses %d != replies %d after drain", m.misses, m.replies)
	}
}

// TestMSHRBoundNeverExceeded asserts the self-throttling contract: a core
// never has more than MSHRs outstanding misses.
func TestMSHRBoundNeverExceeded(t *testing.T) {
	net := newNet(t, core.TokenSlot)
	p := DefaultParams()
	p.MissPer1kInstr = 100 // memory-bound on purpose
	p.Burstiness = 4
	p.MeanBurst = 50
	m, err := New(p, net)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		m.Step()
		net.Step()
		for c := range m.cores {
			if m.cores[c].outstanding > p.MSHRs {
				t.Fatalf("core %d has %d outstanding (MSHRs %d)", c, m.cores[c].outstanding, p.MSHRs)
			}
		}
	}
	if m.stallCyc == 0 {
		t.Fatal("memory-bound run never stalled — MSHR window not binding")
	}
}

// TestIPCDecreasesWithMissIntensity: more misses per instruction must cost
// IPC under a fixed network.
func TestIPCDecreasesWithMissIntensity(t *testing.T) {
	run := func(miss float64) float64 {
		net := newNet(t, core.TokenSlot)
		p := DefaultParams()
		p.MissPer1kInstr = miss
		p.Burstiness = 6
		p.MeanBurst = 100
		m, err := New(p, net)
		if err != nil {
			t.Fatal(err)
		}
		return m.Run(5000).IPC
	}
	light, heavy := run(2), run(60)
	if heavy >= light {
		t.Fatalf("IPC did not drop with miss intensity: %.3f vs %.3f", heavy, light)
	}
	if light > float64(DefaultParams().IssueWidth) {
		t.Fatalf("IPC %.3f exceeds issue width", light)
	}
}

// TestSelfThrottlingCapsLoad: the offered network load of the closed loop
// must respect the MSHR/latency product even when miss demand is huge.
func TestSelfThrottlingCapsLoad(t *testing.T) {
	net := newNet(t, core.TokenChannel)
	p := DefaultParams()
	p.MissPer1kInstr = 500
	m, err := New(p, net)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Run(5000)
	// Hard bound: each core at most MSHRs transactions per (min latency)
	// cycles. Min request-reply time is a few cycles; use 6 (bank latency)
	// as an ultra-conservative floor.
	maxPerCore := float64(p.MSHRs) / float64(p.BankLatency)
	perCore := float64(out.Misses) / 5000 / float64(net.Config().Cores())
	if perCore > maxPerCore {
		t.Fatalf("closed loop injected %.3f misses/cycle/core, self-throttling broken", perCore)
	}
	if out.StallFraction == 0 {
		t.Fatal("a 500-miss/1k-instr run should stall")
	}
}

func TestSmoothVsBurstyPhases(t *testing.T) {
	// With equal mean intensity, bursty execution must stall more
	// (synchronised spikes hit the MSHR window harder).
	run := func(burst float64, sync float64) Outcome {
		net := newNet(t, core.TokenSlot)
		p := DefaultParams()
		p.MissPer1kInstr = 30
		p.Burstiness = burst
		p.MeanBurst = 150
		p.PhaseSync = sync
		m, err := New(p, net)
		if err != nil {
			t.Fatal(err)
		}
		return m.Run(6000)
	}
	smooth := run(1, 0)
	bursty := run(8, 0.9)
	if bursty.StallFraction <= smooth.StallFraction {
		t.Fatalf("bursty stall %.4f not above smooth %.4f", bursty.StallFraction, smooth.StallFraction)
	}
}

func TestAppMissIntensity(t *testing.T) {
	if got := AppMissIntensity(0.02, 2); got != 10 {
		t.Fatalf("AppMissIntensity = %g, want 10", got)
	}
}

func TestTagPacking(t *testing.T) {
	for _, c := range []int{0, 1, 255, 1 << 20} {
		for seq := uint64(0); seq < 128; seq += 31 {
			if tagCore(txnTag(c, false, seq)) != c || tagCore(txnTag(c, true, seq)) != c {
				t.Fatalf("core %d did not round-trip", c)
			}
			if tagSeq(txnTag(c, true, seq)) != seq {
				t.Fatalf("seq %d did not round-trip", seq)
			}
		}
	}
	if tagReply(txnTag(3, false, 0)) || !tagReply(txnTag(3, true, 5)) {
		t.Fatal("reply flag wrong")
	}
	// The network's queue-routing bits (40+) must not disturb the fields.
	tag := txnTag(7, true, 99) | uint64(123)<<40
	if tagCore(tag) != 7 || !tagReply(tag) || tagSeq(tag) != 99 {
		t.Fatal("network tag bits clobbered transaction fields")
	}
}

func TestMemLatencyMeasured(t *testing.T) {
	net := newNet(t, core.DHSSetaside)
	p := DefaultParams()
	p.MissPer1kInstr = 15
	m, err := New(p, net)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Run(3000)
	// Round trip >= bank latency + two network traversals' floor.
	if out.AvgMemLatency < float64(p.BankLatency) {
		t.Fatalf("AvgMemLatency %.1f below bank latency %d", out.AvgMemLatency, p.BankLatency)
	}
	if out.AvgMemLatency > 200 {
		t.Fatalf("AvgMemLatency %.1f implausible at light load", out.AvgMemLatency)
	}
}
